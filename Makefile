GO ?= go

.PHONY: all build vet test race ci bench bench-smoke tables

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The CI gate: everything must build, vet clean, and pass under the race
# detector.
ci: build vet race

# Full benchmark suite (3 repetitions, allocation stats); the raw JSON
# event stream lands in BENCH_<date>.json for later comparison.
bench:
	./bench.sh

# One iteration of every benchmark — a fast CI smoke test that the
# benchmarks themselves still run.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

tables:
	$(GO) run ./cmd/benchtables
