GO ?= go

.PHONY: all build vet test race ci bench tables

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The CI gate: everything must build, vet clean, and pass under the race
# detector.
ci: build vet race

bench:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/benchtables
