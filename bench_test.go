package gemini

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (§7). Each benchmark runs the corresponding
// experiment and reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` doubles as the reproduction run. The
// rendered tables come from `go run ./cmd/benchtables`.

import (
	"context"
	"testing"

	"gemini/internal/baselines"
	"gemini/internal/experiments"
	"gemini/internal/failure"
	"gemini/internal/parallel"
	"gemini/internal/placement"
	"gemini/internal/schedule"
	"gemini/internal/simclock"
)

func benchExperiment(b *testing.B, id string) {
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var out string
	for i := 0; i < b.N; i++ {
		out, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(out)), "table-bytes")
}

func BenchmarkTable1InstanceCatalog(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2ModelConfigs(b *testing.B)    { benchExperiment(b, "table2") }

// BenchmarkAllTables regenerates the full evaluation — every table and
// figure — through the concurrent experiment runner, once serially and
// once at GOMAXPROCS workers. The gap between the two sub-benchmarks is
// the wall-clock win of the parallel layer on this machine.
func BenchmarkAllTables(b *testing.B) {
	exps := experiments.All()
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			if bc.workers == 0 && parallel.Workers() == 1 {
				b.Skip("GOMAXPROCS=1: parallel run would duplicate serial")
			}
			var bytes int
			for i := 0; i < b.N; i++ {
				bytes = 0
				for _, r := range experiments.RunAll(context.Background(), exps, bc.workers) {
					if r.Err != nil {
						b.Fatalf("%s: %v", r.ID, r.Err)
					}
					bytes += len(r.Output)
				}
			}
			b.ReportMetric(float64(bytes), "table-bytes")
		})
	}
}

// BenchmarkFig7IterationTime measures the iteration-time overhead of
// per-iteration GEMINI checkpointing on the 100B models (paper: none).
func BenchmarkFig7IterationTime(b *testing.B) {
	job := MustNewJob(JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16})
	var overhead float64
	for i := 0; i < b.N; i++ {
		res, err := job.ExecuteScheme(SchemeGemini)
		if err != nil {
			b.Fatal(err)
		}
		overhead = res.Overhead()
	}
	b.ReportMetric(overhead*100, "overhead-%")
}

// BenchmarkFig8NetworkIdle measures the network idle time left after
// checkpoint insertion (paper: still positive).
func BenchmarkFig8NetworkIdle(b *testing.B) {
	job := MustNewJob(JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16})
	var idle, ckpt simclock.Duration
	for i := 0; i < b.N; i++ {
		res, err := job.ExecuteScheme(SchemeGemini)
		if err != nil {
			b.Fatal(err)
		}
		idle, ckpt = res.NetworkIdle, res.CheckpointTime
	}
	b.ReportMetric(idle.Seconds(), "idle-s")
	b.ReportMetric(ckpt.Seconds(), "ckpt-s")
}

// BenchmarkFig9RecoveryProbability computes the placement probability
// curves (paper: 0.933 / 0.800 at N=16, ring 25% lower).
func BenchmarkFig9RecoveryProbability(b *testing.B) {
	var p2, p3 float64
	for i := 0; i < b.N; i++ {
		var err error
		if p2, err = Corollary1(16, 2, 2); err != nil {
			b.Fatal(err)
		}
		if p3, err = Corollary1(16, 2, 3); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p2, "P(k=2)")
	b.ReportMetric(p3, "P(k=3)")
}

// BenchmarkFig10WastedTime computes the average wasted time per failure
// (paper: GEMINI >13× better than HighFreq).
func BenchmarkFig10WastedTime(b *testing.B) {
	job := MustNewJob(JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16})
	var ratio float64
	for i := 0; i < b.N; i++ {
		gem := job.GeminiSpec().AverageWasted(FromPeerCPU)
		high := job.HighFreqSpec().AverageWasted(FromPersistentRemote)
		ratio = high.Seconds() / gem.Seconds()
	}
	b.ReportMetric(ratio, "speedup-x")
}

// BenchmarkFig11CheckpointTimeReduction computes GEMINI's checkpoint-time
// reduction at 16 machines / 400 Gbps (paper: >250×).
func BenchmarkFig11CheckpointTimeReduction(b *testing.B) {
	job := MustNewJob(JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16})
	var reduction float64
	for i := 0; i < b.N; i++ {
		reduction = job.StrawmanSpec().CheckpointTime.Seconds() / job.GeminiSpec().CheckpointTime.Seconds()
	}
	b.ReportMetric(reduction, "reduction-x")
}

// BenchmarkFig12CheckpointFrequency computes the frequency ratios
// (paper: 8× over HighFreq, >170× over Strawman).
func BenchmarkFig12CheckpointFrequency(b *testing.B) {
	job := MustNewJob(JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16})
	var vsHigh, vsStraw float64
	for i := 0; i < b.N; i++ {
		vsHigh = baselines.FrequencyRatio(job.GeminiSpec(), job.HighFreqSpec())
		vsStraw = baselines.FrequencyRatio(job.GeminiSpec(), job.StrawmanSpec())
	}
	b.ReportMetric(vsHigh, "vs-highfreq-x")
	b.ReportMetric(vsStraw, "vs-strawman-x")
}

// BenchmarkFig13P3dn runs the p3dn generalization sweep.
func BenchmarkFig13P3dn(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14RecoveryTimeline drives the live agent system through a
// hardware failure and reports the end-to-end recovery time
// (paper: ≈12 minutes without standby machines).
func BenchmarkFig14RecoveryTimeline(b *testing.B) {
	job := MustNewJob(JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16})
	var recovery simclock.Duration
	for i := 0; i < b.N; i++ {
		engine, sys, err := job.RecoverySystem(DefaultCloudConfig())
		if err != nil {
			b.Fatal(err)
		}
		sys.Start()
		iter := Time(job.Timeline.Iteration)
		engine.At(3*iter+iter/2, func() { sys.InjectFailure(7, HardwareFailure) })
		engine.Run(30 * iter)
		det, ok1 := sys.Log().Last("failure-detected")
		rec, ok2 := sys.Log().Last("recovery-complete")
		if !ok1 || !ok2 {
			b.Fatal("recovery did not complete")
		}
		recovery = rec.At.Sub(det.At)
	}
	b.ReportMetric(recovery.Seconds()/60, "recovery-min")
}

// BenchmarkFig15aFailureRates runs the failure-rate sweep.
func BenchmarkFig15aFailureRates(b *testing.B) { benchExperiment(b, "fig15a") }

// BenchmarkFig15bScaling runs the cluster-size sweep and reports GEMINI's
// ratio at 1000 instances (paper: ≈0.91).
func BenchmarkFig15bScaling(b *testing.B) {
	job := MustNewJob(JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16})
	horizon := 10 * Day
	var ratio float64
	for i := 0; i < b.N; i++ {
		fs, err := FixedFailureRate(1000, 15, 0, horizon)
		if err != nil {
			b.Fatal(err)
		}
		res, err := job.SimulateRunScaled(job.GeminiSpec(), 1000, fs, horizon, 0)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.EffectiveRatio
	}
	b.ReportMetric(ratio, "effective-ratio")
}

// BenchmarkFig16Interleaving runs the §7.4 scheme ablation and reports
// the blocking scheme's overhead (paper: ≈10%).
func BenchmarkFig16Interleaving(b *testing.B) {
	job := MustNewJob(JobSpec{Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: 16})
	var blocking float64
	for i := 0; i < b.N; i++ {
		res, err := job.ExecuteScheme(SchemeBlocking)
		if err != nil {
			b.Fatal(err)
		}
		blocking = res.Overhead()
	}
	b.ReportMetric(blocking*100, "blocking-overhead-%")
}

// BenchmarkCampaign1000 is the campaign-engine headline (DESIGN.md §12):
// 1000 seeded long-horizon runs spread over 4 job specs, the shape of a
// scenario-campaign sweep where runs differ only in their failure
// schedule. The warm sub-benchmark resolves every job through the
// derivation cache (4 derivations total, 996 hits) and recycles the
// runsim arenas; cold bypasses the cache (JobSpec.NoCache) and pays the
// full derivation per run. warm/cold runs-per-second is the cache's
// campaign speedup; results are bit-identical either way (asserted by
// the determinism suite, and by the checksum metric matching across the
// two sub-benchmarks).
func BenchmarkCampaign1000(b *testing.B) {
	specs := []JobSpec{
		{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16},
		{Model: "RoBERTa 100B", Instance: "p4d.24xlarge", Machines: 16},
		{Model: "BERT 100B", Instance: "p4d.24xlarge", Machines: 16},
		{Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: 16},
	}
	const runs = 1000
	horizon := 10 * Day
	schedules := make([]FailureSchedule, runs)
	model := failure.OPTModel()
	for r := range schedules {
		fs, err := model.Generate(16, horizon, int64(r+1))
		if err != nil {
			b.Fatal(err)
		}
		schedules[r] = fs
	}
	campaign := func(b *testing.B, noCache bool) {
		var sum float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sum = 0
			for r := 0; r < runs; r++ {
				spec := specs[r%len(specs)]
				spec.NoCache = noCache
				job, err := NewJob(spec)
				if err != nil {
					b.Fatal(err)
				}
				res, err := job.SimulateRun(job.GeminiSpec(), schedules[r], horizon, 0)
				if err != nil {
					b.Fatal(err)
				}
				sum += res.EffectiveRatio
				res.Release()
			}
		}
		b.ReportMetric(float64(runs)*float64(b.N)/b.Elapsed().Seconds(), "runs/s")
		b.ReportMetric(sum/runs, "mean-ratio")
	}
	b.Run("cold", func(b *testing.B) { campaign(b, true) })
	b.Run("warm", func(b *testing.B) {
		// Prime the cache so every timed NewJob is a hit.
		for _, s := range specs {
			MustNewJob(s)
		}
		campaign(b, false)
	})
}

// --- Ablations beyond the paper's figures (DESIGN.md §5) ---

// BenchmarkAblationPlacementStrategies compares group vs ring recovery
// probability at k=m=2 for N=16.
func BenchmarkAblationPlacementStrategies(b *testing.B) {
	group := placement.MustMixed(16, 2)
	ring, err := placement.Ring(16, 2)
	if err != nil {
		b.Fatal(err)
	}
	var pg, pr float64
	for i := 0; i < b.N; i++ {
		pg = placement.BitmaskProbability(group, 2)
		pr = placement.BitmaskProbability(ring, 2)
	}
	b.ReportMetric(pg, "group")
	b.ReportMetric(pr, "ring")
}

// BenchmarkAblationPipelineDepth sweeps the sub-buffer count p.
func BenchmarkAblationPipelineDepth(b *testing.B) {
	job := MustNewJob(JobSpec{Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: 16})
	for _, p := range []int{1, 2, 4, 8} {
		p := p
		b.Run(benchName("p", p), func(b *testing.B) {
			var overhead float64
			for i := 0; i < b.N; i++ {
				res, err := job.ExecuteSchemeWithBuffers(SchemeGemini, 8*128e6, p)
				if err != nil {
					b.Fatal(err)
				}
				overhead = res.Overhead()
			}
			b.ReportMetric(overhead*100, "overhead-%")
		})
	}
}

// BenchmarkAblationReplicaCount sweeps m and reports the recovery
// probability at k=3 against the checkpoint traffic volume.
func BenchmarkAblationReplicaCount(b *testing.B) {
	for _, m := range []int{1, 2, 3, 4} {
		m := m
		b.Run(benchName("m", m), func(b *testing.B) {
			var prob float64
			for i := 0; i < b.N; i++ {
				p := placement.MustMixed(16, m)
				prob = placement.BitmaskProbability(p, 3)
			}
			b.ReportMetric(prob, "P(recover|k=3)")
			b.ReportMetric(float64(m-1)*75, "remote-GB-per-iter")
		})
	}
}

// BenchmarkAblationGamma sweeps Algorithm 2's safety coefficient.
func BenchmarkAblationGamma(b *testing.B) {
	job := MustNewJob(JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16})
	for _, gamma := range []float64{0.5, 0.7, 0.9, 1.0} {
		gamma := gamma
		b.Run(benchName("gamma-x100", int(gamma*100)), func(b *testing.B) {
			var fits float64
			for i := 0; i < b.N; i++ {
				plan, err := schedule.Partition(schedule.Params{
					Spans:                job.Profile.Spans,
					CheckpointBytes:      job.Config.ShardBytesPerMachine(),
					Replicas:             2,
					BufferBytes:          8 * 128e6,
					BufferParts:          4,
					BandwidthBytesPerSec: job.Config.Instance.NetworkBytesPerSec,
					Alpha:                job.Config.Calib.CollectiveAlpha,
					Gamma:                gamma,
				})
				if err != nil {
					b.Fatal(err)
				}
				if plan.Fits {
					fits = 1
				} else {
					fits = 0
				}
			}
			b.ReportMetric(fits, "fits")
		})
	}
}

// BenchmarkAblationStandbyMachines quantifies the standby-pool ablation.
func BenchmarkAblationStandbyMachines(b *testing.B) {
	job := MustNewJob(JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16})
	horizon := 5 * Day
	fs, err := FixedFailureRate(16, 6, 1, horizon)
	if err != nil {
		b.Fatal(err)
	}
	var standby, onDemand float64
	for i := 0; i < b.N; i++ {
		a, err := job.SimulateRun(job.GeminiSpec(), fs, horizon, 0)
		if err != nil {
			b.Fatal(err)
		}
		c, err := job.SimulateRun(job.GeminiSpec(), fs, horizon, Duration(5.5*60))
		if err != nil {
			b.Fatal(err)
		}
		standby, onDemand = a.EffectiveRatio, c.EffectiveRatio
	}
	b.ReportMetric(standby, "standby-ratio")
	b.ReportMetric(onDemand, "ondemand-ratio")
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v < 10 {
		return prefix + "=" + digits[v:v+1]
	}
	out := ""
	for v > 0 {
		out = digits[v%10:v%10+1] + out
		v /= 10
	}
	return prefix + "=" + out
}
