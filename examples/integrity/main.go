// Integrity: the checkpoint data plane, byte for byte. Model-state
// shards with real tensor payloads replicate across CPU memory per the
// placement; we then lose machines in increasingly bad ways — a process
// crash, a dead machine, a whole replica group, and a silently corrupted
// replica — and verify each recovery restores the exact bytes (or
// refuses, when the bytes are wrong).
package main

import (
	"fmt"
	"log"

	"gemini/internal/ckpt"
	"gemini/internal/placement"
	"gemini/internal/statemgr"
)

const shardBytes = 64 << 10 // 64 KiB synthetic shards: content, not scale

func main() {
	p := placement.MustMixed(8, 2)
	mgr := statemgr.MustNew(p, shardBytes, 2023)
	tracker := ckpt.MustNewEngine(p, shardBytes)

	healthy := map[int]bool{}
	for i := 0; i < p.N; i++ {
		healthy[i] = true
	}
	isHealthy := func(r int) bool { return healthy[r] }

	train := func(from, to int64) {
		for iter := from; iter <= to; iter++ {
			mgr.Step(iter, isHealthy)
			if err := mgr.Checkpoint(tracker, iter, isHealthy); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Println("training iterations 1..10 with per-iteration in-memory checkpoints")
	train(1, 10)
	if err := mgr.CheckpointRemote(10); err != nil {
		log.Fatal(err)
	}
	train(11, 25)
	must(mgr.VerifyConsistent(25))

	// 1. Software failure: all processes die, CPU memory survives.
	fmt.Println("\n[1] software failure on every machine → local recovery")
	v, ok := tracker.ConsistentVersion(isHealthy)
	if !ok {
		log.Fatal("no consistent version")
	}
	plan, err := tracker.PlanRecovery(v, isHealthy)
	must(err)
	must(mgr.Recover(tracker, plan, v))
	must(mgr.VerifyConsistent(v))
	fmt.Printf("    recovered at iteration %d, all %d shards byte-exact\n", v, p.N)

	// 2. Hardware failure: machine 5's memory is gone; peer retrieval.
	fmt.Println("\n[2] hardware failure on machine 5 → peer retrieval")
	train(v+1, v+5)
	mgr.WipeMachine(5)
	tracker.Wipe(5)
	hasMemory := func(r int) bool { return r != 5 }
	v, ok = tracker.ConsistentVersion(hasMemory)
	if !ok {
		log.Fatal("single machine loss must stay recoverable")
	}
	plan, err = tracker.PlanRecovery(v, hasMemory)
	must(err)
	tracker.RollbackTo(v)
	must(mgr.Recover(tracker, plan, v))
	must(mgr.VerifyConsistent(v))
	for _, r := range plan {
		if r.Rank == 5 {
			fmt.Printf("    machine 5 refetched its shard from peer %d; verified byte-exact\n", r.Peer)
		}
	}

	// 3. Whole group loss: machines 0 and 1 (one placement group) die
	// together; only the remote tier can recover.
	fmt.Println("\n[3] whole replica group {0,1} lost → remote-tier fallback")
	train(v+1, v+5)
	mgr.WipeMachine(0)
	mgr.WipeMachine(1)
	tracker.Wipe(0)
	tracker.Wipe(1)
	groupGone := func(r int) bool { return r >= 2 }
	if _, ok := tracker.ConsistentVersion(groupGone); ok {
		log.Fatal("group loss should break CPU-memory consistency")
	}
	remote := mgr.RemoteIteration()
	tracker.RollbackTo(remote)
	must(mgr.Recover(tracker, tracker.PersistentPlan(), remote))
	must(mgr.VerifyConsistent(remote))
	fmt.Printf("    rolled back to remote checkpoint at iteration %d (lost %d iterations of progress)\n",
		remote, v+5-remote)

	// 4. Silent corruption: a stored replica's bytes flip; the
	// fingerprint check must refuse it.
	fmt.Println("\n[4] silently corrupted replica → recovery refuses")
	train(remote+1, remote+3)
	cur := remote + 3
	mgr.CorruptStoredShard(2, 3, cur) // machine 2's copy of rank 3's shard
	mgr.WipeMachine(3)
	badPlan := []ckpt.Retrieval{{Rank: 3, Source: ckpt.SourceRemoteCPU, Peer: 2, Bytes: shardBytes}}
	if err := mgr.Recover(tracker, badPlan, cur); err == nil {
		log.Fatal("corrupted replica was accepted")
	} else {
		fmt.Printf("    rejected as expected: %v\n", err)
	}
	fmt.Println("\nall integrity scenarios passed")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
