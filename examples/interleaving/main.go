// Interleaving: reproduce the §7.4 ablation interactively. The same
// GPT-2 40B job runs under each checkpoint-traffic scheme on the fluid
// network simulator, where checkpoint chunks and training collectives
// genuinely share the NICs — so blocking slows training, the naive scheme
// runs out of GPU memory, the unpipelined scheme stalls on GPU→CPU
// copies, and GEMINI's pipelined idle-span schedule costs nothing.
package main

import (
	"fmt"
	"log"

	"gemini"
)

func main() {
	job, err := gemini.NewJob(gemini.JobSpec{
		Model:    "GPT-2 40B",
		Instance: "p3dn.24xlarge",
		Machines: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPT-2 40B on 16× p3dn.24xlarge — %.1f GB shard/machine, %.1f s idle per iteration\n\n",
		job.Config.ShardBytesPerMachine()/1e9, job.Timeline.IdleTime().Seconds())

	schemes := []gemini.Scheme{
		gemini.SchemeBaseline,
		gemini.SchemeBlocking,
		gemini.SchemeNaive,
		gemini.SchemeNoPipeline,
		gemini.SchemeGemini,
	}
	fmt.Printf("%-26s %-15s %-10s %-18s %s\n", "scheme", "iteration", "overhead", "ckpt completes in", "GPU buffer")
	for _, s := range schemes {
		res, err := job.ExecuteScheme(s)
		if err != nil {
			log.Fatal(err)
		}
		if res.OOM {
			fmt.Printf("%-26s %-15s %-10s %-18s %.1f GB → OOM\n", s, "—", "—", "—", res.RequiredBufferBytes/1e9)
			continue
		}
		ckpt := "—"
		if res.CheckpointTime > 0 {
			ckpt = fmt.Sprintf("%.1f s", res.CheckpointTime.Seconds())
		}
		fmt.Printf("%-26s %-15s %+.1f%%     %-18s %.1f GB\n",
			s, fmt.Sprintf("%.2f s", res.IterationTime.Seconds()), res.Overhead()*100,
			ckpt, res.RequiredBufferBytes/1e9)
	}

	fmt.Println("\nsub-buffer count ablation (GEMINI pipeline depth p):")
	fmt.Printf("%-6s %-12s %-10s\n", "p", "iteration", "overhead")
	for _, p := range []int{1, 2, 4, 8} {
		res, err := job.ExecuteSchemeWithBuffers(gemini.SchemeGemini, 8*128e6, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-12s %+.2f%%\n", p, fmt.Sprintf("%.2f s", res.IterationTime.Seconds()), res.Overhead()*100)
	}
}
