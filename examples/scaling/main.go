// Scaling: the §7.3 economics study. How much productive training time
// does each checkpointing solution deliver as failures get more frequent
// and the cluster grows to a thousand instances? Reproduces the shape of
// Figures 15a and 15b and quantifies the standby-machine ablation.
package main

import (
	"fmt"
	"log"

	"gemini"
)

func main() {
	job, err := gemini.NewJob(gemini.JobSpec{
		Model:    "GPT-2 100B",
		Instance: "p4d.24xlarge",
		Machines: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	horizon := 10 * gemini.Day
	specs := []gemini.Spec{job.GeminiSpec(), job.HighFreqSpec(), job.StrawmanSpec()}

	fmt.Println("== effective training-time ratio vs failure rate (16 machines) ==")
	fmt.Printf("%-14s %-10s %-10s %-10s\n", "failures/day", "GEMINI", "HighFreq", "Strawman")
	for _, perDay := range []float64{0, 2, 4, 6, 8} {
		// Poisson arrivals avoid phase aliasing between the failure
		// spacing and the solutions' checkpoint intervals.
		model := gemini.FailureModel{PerInstancePerDay: perDay / 16}
		fs, err := model.Generate(16, horizon, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14.0f", perDay)
		for _, spec := range specs {
			res, err := job.SimulateRun(spec, fs, horizon, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %-10.3f", res.EffectiveRatio)
		}
		fmt.Println()
	}

	fmt.Println("\n== scaling to 1000 instances at the OPT-175B failure rate (1.5%/day) ==")
	rate := gemini.OPTFailureModel()
	fmt.Printf("%-11s %-13s %-10s %-10s %-10s\n", "instances", "failures/day", "GEMINI", "HighFreq", "Strawman")
	for _, n := range []int{16, 200, 600, 1000} {
		perDay := rate.ClusterFailuresPerDay(n)
		fs, err := rate.Generate(n, horizon, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11d %-13.1f", n, perDay)
		for _, spec := range specs {
			res, err := job.SimulateRunScaled(spec, n, fs, horizon, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %-10.3f", res.EffectiveRatio)
		}
		fmt.Println()
	}

	fmt.Println("\n== standby machines vs on-demand replacement (hardware failures) ==")
	fs, err := gemini.FixedFailureRate(16, 4, 1.0, horizon)
	if err != nil {
		log.Fatal(err)
	}
	withStandby, err := job.SimulateRun(job.GeminiSpec(), fs, horizon, 0)
	if err != nil {
		log.Fatal(err)
	}
	onDemand, err := job.SimulateRun(job.GeminiSpec(), fs, horizon, gemini.Duration(5.5*60))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standby pool:   ratio %.4f, mean wasted %v\n", withStandby.EffectiveRatio, withStandby.MeanWasted)
	fmt.Printf("on-demand ASG:  ratio %.4f, mean wasted %v\n", onDemand.EffectiveRatio, onDemand.MeanWasted)
}
