// Campaign observability: run a seeded campaign with every observer
// attached, then flight-record its worst run.
//
//   - A CampaignProgress sink counts runs, replayed failures, and
//     simulated coverage as the workers go; an ObsServer exposes it at
//     /progress (JSON) and /metrics (Prometheus) together with a
//     LiveRegistry the workers merge each finished run into.
//   - With Aggregate set, the campaign report carries deterministic
//     cross-run rollups: every run's health registry merged in
//     variation order, so the distribution tables (and the Prometheus
//     exposition WriteAggregatedProm renders) are byte-identical at any
//     worker count — unlike the live registry, which merges in arrival
//     order and is for serving only.
//   - With RecordRuns set, the report keeps one RunRecord per
//     (variation, solution). CampaignOutliers ranks them by badness and
//     ReplayRun re-executes the worst with tracer, metrics and timeline
//     taps attached — asserting the replay reproduces the recorded
//     outcome bit-for-bit, then handing back a Perfetto trace that
//     LintTrace verifies is structurally sound.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"gemini"
)

const scenarioYAML = `
name: campaignobs
description: observability demo campaign
seed: 11
variations: 40
horizon: 5d

job:
  model: GPT-2 100B
  instance: p4d.24xlarge
  machines: 500
  replicas: 2

failures:
  kind: poisson
  per_instance_per_day: 0.02
  hardware_fraction: 0.5

run:
  specs: [gemini, highfreq, strawman]
  simultaneity_window: 10s
`

func main() {
	s, err := gemini.ParseScenario([]byte(scenarioYAML))
	if err != nil {
		log.Fatal(err)
	}
	c, err := s.Compile()
	if err != nil {
		log.Fatal(err)
	}

	// Observability endpoint: ":0" binds a free port. While the campaign
	// runs, /progress serves live JSON, /metrics the merged registry.
	prog := gemini.NewCampaignProgress()
	live := gemini.NewLiveRegistry()
	server, err := gemini.ServeObservability(":0", prog, live)
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	rep, err := gemini.RunCampaign(context.Background(), c, gemini.CampaignOptions{
		Progress:   prog,
		Live:       live,
		Aggregate:  true,
		RecordRuns: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign done: %s\n", prog.Snapshot())

	// The server is still up; scrape our own /progress to show the loop
	// an external dashboard would run.
	resp, err := http.Get("http://" + server.Addr() + "/progress")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET /progress → %s, %d bytes of JSON\n", resp.Status, len(body))

	// The deterministic rollup: same numbers at any worker count.
	var prom bytes.Buffer
	if err := rep.WriteAggregatedProm(&prom); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naggregated campaign registry (%d exposition lines), first families:\n",
		strings.Count(prom.String(), "\n"))
	for i, line := range strings.SplitN(prom.String(), "\n", 7) {
		if i < 6 {
			fmt.Printf("  %s\n", line)
		}
	}

	// Flight-record the worst run by wasted time: replay it with full
	// tracing and prove the re-run lands on the recorded outcome.
	worst, err := gemini.CampaignOutliers(rep, "wasted", 1)
	if err != nil {
		log.Fatal(err)
	}
	rec := worst[0]
	fmt.Printf("\nworst run: variation %d, %s — %.0f s wasted, ratio %.4f\n",
		rec.Variation, rec.Spec, rec.WastedSeconds, rec.EffectiveRatio)
	fr, err := gemini.ReplayRun(c, rec)
	if err != nil {
		log.Fatal(err) // a divergence here falsifies the determinism contract
	}
	var tr bytes.Buffer
	if err := fr.WriteTrace(&tr); err != nil {
		log.Fatal(err)
	}
	issues, err := gemini.LintTrace(tr.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	if len(issues) != 0 {
		log.Fatalf("flight trace has structural issues: %v", issues)
	}
	if err := os.WriteFile("campaignobs-outlier.trace.json", tr.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay reproduced the record exactly; wrote campaignobs-outlier.trace.json (%d bytes, lint-clean)\n",
		tr.Len())
}
