// Chaos: drive the recovery control plane through faults beyond the
// paper's fail-stop model. Phase 1 partitions two machines away and then
// kills their placement-group partners — a correlated failure that hides
// every surviving replica behind the partition, so the root agent
// retries peer retrieval with exponential backoff, exhausts its budget,
// and falls back to remote persistent storage. Phase 2 kills a machine
// whose replica peer is a straggler, showing degraded-but-working peer
// retrieval. The run closes with the placement analysis the scenario
// motivates: group placement is perfect under independent failures and
// hopeless under whole-rack failures, while the rack-aware variant
// trades a little independent-failure probability for rack tolerance.
package main

import (
	"fmt"
	"log"
	"os"

	"gemini"
)

func main() {
	spec := gemini.JobSpec{
		Model:    "GPT-2 40B",
		Instance: "p3dn.24xlarge",
		Machines: 16,
	}

	// Derive the job once to learn the iteration time, then rebuild it
	// with the fault schedule attached; RecoverySystem arms the schedule
	// automatically.
	base, err := gemini.NewJob(spec)
	if err != nil {
		log.Fatal(err)
	}
	iter := gemini.Duration(base.Timeline.Iteration)
	t1 := gemini.Time(4*iter + iter/2) // mid-checkpoint, like the paper's Fig. 14 setup
	t2 := gemini.Time(40 * iter)

	sched, err := gemini.Faults().
		// Phase 1: machines 2 and 4 die together (shared failure domain)
		// while their replica partners 3 and 5 are partitioned away.
		Partition(t1, 8*gemini.Minute, 3, 5).
		CrashGroup(t1, gemini.HardwareFailure, 2, 4).
		// Phase 2: machine 9 dies; its replica peer 8 limps at quarter
		// bandwidth for a while.
		Straggler(t2, 20*iter, 8, 0.25).
		Crash(t2, 9, gemini.HardwareFailure).
		Build(spec.Machines)
	if err != nil {
		log.Fatal(err)
	}

	job, err := gemini.NewJob(spec, gemini.WithFaults(sched))
	if err != nil {
		log.Fatal(err)
	}

	cloudCfg := gemini.DefaultCloudConfig()
	cloudCfg.Standby = 3

	engine, sys, err := job.RecoverySystem(cloudCfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	engine.Run(gemini.Time(60 * iter))

	fmt.Println("== control-plane event trace ==")
	if _, err := sys.Log().WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntraining survived %d recoveries; now at iteration %d, root is rank %d\n",
		sys.Recoveries(), sys.Iteration(), sys.RootRank())
	if sys.Recoveries() != 2 || !sys.Training() {
		log.Fatal("expected two completed recoveries with training running")
	}
	if len(sys.Log().Filter("fallback-remote")) == 0 {
		log.Fatal("phase 1 should have exhausted peer retries and fallen back to remote")
	}
	if last, ok := sys.Log().Last("retrieved"); !ok || last.Detail == "" {
		log.Fatal("no retrieval recorded")
	}

	// Why phase 1 hurt: with racks of size 2, Algorithm 1's groups align
	// exactly with the failure domains. The rack-aware layout spreads
	// every group across racks instead.
	aligned, err := gemini.NewPlacement(spec.Machines, 2)
	if err != nil {
		log.Fatal(err)
	}
	rackAware, err := gemini.NewRackAwarePlacement(spec.Machines, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	racks, err := gemini.Racks(spec.Machines, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== recovery probability: independent failures vs whole racks ==")
	fmt.Println("k   independent   k racks down (group)   k racks down (rack-aware)")
	for k := 1; k <= 4; k++ {
		cg, err := gemini.CorrelatedRecoveryProbability(aligned, racks, k)
		if err != nil {
			log.Fatal(err)
		}
		cr, err := gemini.CorrelatedRecoveryProbability(rackAware, racks, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d   %.3f         %.3f                  %.3f\n",
			k, gemini.RecoveryProbabilityExact(aligned, k), cg, cr)
	}
}
