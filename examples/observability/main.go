// Observability: render one simulated GEMINI run as a Chrome trace-event
// file you can open at ui.perfetto.dev (or chrome://tracing). Two
// independently traced runs merge into one timeline:
//
//   - the fluid interference executor, whose tracks show each machine's
//     forward/backward compute, the collectives, and the checkpoint
//     chunks and GPU→CPU copies stealing the network-idle spans;
//   - the recovery control plane, where a seeded correlated failure
//     drives the §6.2 workflow — the chaos injection, the kvstore
//     re-election, and the serialize → replace → retrieve → warmup
//     recovery phases nested inside one recovery span.
//
// The same control-plane run also carries the run health monitor: a
// metrics registry fills with health.* gauges (replica coverage,
// checkpoint staleness, Eq. 1 wasted time per failure), a recorder
// samples them once per iteration, and the run ends with a Prometheus
// text exposition plus a CSV timeline next to the trace.
//
// Both surfaces are pure observers: a monitored run replays
// bit-identically to an unmonitored one, and with nothing attached the
// instrumentation allocates nothing.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"gemini"
)

func main() {
	spec := gemini.JobSpec{
		Model:    "GPT-2 40B",
		Instance: "p3dn.24xlarge",
		Machines: 16,
	}

	// Run 1: the executor with a tracer attached. Same simulation as an
	// untraced ExecuteScheme — the tracer only watches.
	execTr := gemini.NewTracer()
	job, err := gemini.NewJob(spec, gemini.WithTracer(execTr))
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.ExecuteScheme(gemini.SchemeGemini)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executor: iteration %.2f s, overhead %.1f%%\n",
		res.IterationTime.Seconds(), res.Overhead()*100)

	// Run 2: the control plane under a correlated failure. Machines 2
	// and 3 share a placement group, so killing both forces the root
	// agent past local and peer retrieval down to the remote tier.
	iter := gemini.Duration(job.Timeline.Iteration)
	sched, err := gemini.Faults().
		CrashGroup(gemini.Time(5*iter+iter/2), gemini.HardwareFailure, 2, 3).
		Build(spec.Machines)
	if err != nil {
		log.Fatal(err)
	}
	// The control-plane tracer and the health monitor's registry attach
	// at job construction; RecoverySystem wires them into the run.
	ctl := gemini.NewTracer()
	reg := gemini.NewMetricsRegistry()
	faulty, err := gemini.NewJob(spec,
		gemini.WithFaults(sched), gemini.WithTracer(ctl), gemini.WithMetrics(reg))
	if err != nil {
		log.Fatal(err)
	}
	engine, sys, err := faulty.RecoverySystem(gemini.DefaultCloudConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys.SetRemoteEvery(10)

	// The recorder snapshots the registry's gauges every iteration.
	rec := gemini.NewMetricsRecorder(reg, 1024)
	rec.Watch("health.iteration", "health.replica_coverage",
		"health.ckpt_staleness_local", "health.recoveries")
	rec.Start(engine, iter)

	sys.Start()
	engine.Run(gemini.Time(30 * iter))
	fmt.Printf("control plane: %d recovery, resumed at iteration %d\n",
		sys.Recoveries(), sys.Iteration())
	for _, ev := range sys.WastedEvents() {
		fmt.Printf("  wasted %s on ranks %v: T_lost %s + T_recovery %s, recovered from %s\n",
			ev.Wasted(), ev.Ranks, ev.TLost, ev.TRecovery, ev.Source)
	}

	// Merge both sinks into one Perfetto-loadable document.
	var buf bytes.Buffer
	if err := gemini.WriteTrace(&buf, execTr, ctl); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("gemini-trace.json", buf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}

	st, err := gemini.TraceStatsFromJSON(buf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote gemini-trace.json: %d events across %d process tracks\n",
		st.Events, len(st.Processes))
	for _, cat := range []string{"training", "netsim", "agent", "chaos", "kvstore"} {
		fmt.Printf("  %-9s %6d events\n", cat, st.Categories[cat])
		if st.Categories[cat] == 0 {
			log.Fatalf("subsystem %q emitted nothing — its tracing came unwired", cat)
		}
	}
	// Export the health monitor's two views of the same run: current
	// values for a Prometheus scrape, the sampled series as a timeline.
	var prom bytes.Buffer
	if err := gemini.WriteMetricsProm(&prom, reg); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("gemini-metrics.prom", prom.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	var csv bytes.Buffer
	if err := gemini.WriteTimelineCSV(&csv, rec); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("gemini-timeline.csv", csv.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote gemini-metrics.prom (%d instruments) and gemini-timeline.csv (%d samples)\n",
		len(reg.Snapshot()), rec.Samples())

	fmt.Println("\nopen the trace at ui.perfetto.dev or chrome://tracing")
}
