// Failover: drive the live failure-recovery control plane end to end.
// Training runs with per-iteration in-memory checkpoints while worker
// agents heartbeat into the coordination store; we then kill a machine's
// hardware mid-iteration, watch the root agent detect it through lease
// expiry, replace it through the cloud operator, retrieve the lost shard
// from its placement peer, and resume — and finally kill the root machine
// itself to watch leader election promote a new root.
package main

import (
	"fmt"
	"log"
	"os"

	"gemini"
)

func main() {
	job, err := gemini.NewJob(gemini.JobSpec{
		Model:    "GPT-2 40B",
		Instance: "p3dn.24xlarge",
		Machines: 16,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A cloud operator with one standby machine: the first replacement is
	// nearly instant, later ones pay the 4–7 minute ASG provisioning.
	cloudCfg := gemini.DefaultCloudConfig()
	cloudCfg.Standby = 1

	engine, sys, err := job.RecoverySystem(cloudCfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()

	iter := gemini.Time(job.Timeline.Iteration)

	// Hardware failure on machine 11 during iteration 5.
	engine.At(4*iter+iter/2, func() {
		fmt.Printf("--- injecting hardware failure on machine 11 at %v ---\n", engine.Now())
		sys.InjectFailure(11, gemini.HardwareFailure)
	})
	// Software crash on machine 3 a while later.
	engine.At(40*iter, func() {
		fmt.Printf("--- injecting software failure on machine 3 at %v ---\n", engine.Now())
		sys.InjectFailure(3, gemini.SoftwareFailure)
	})
	// Then the root machine (rank 0) dies: leader election must promote
	// a new root before recovery can even start.
	engine.At(80*iter, func() {
		fmt.Printf("--- killing the root machine (rank %d) at %v ---\n", sys.RootRank(), engine.Now())
		sys.InjectFailure(sys.RootRank(), gemini.HardwareFailure)
	})

	engine.Run(130 * iter)

	fmt.Println("\n== control-plane event trace ==")
	if _, err := sys.Log().WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntraining resumed through %d recoveries; now at iteration %d, root is rank %d\n",
		sys.Recoveries(), sys.Iteration(), sys.RootRank())
	if sys.Recoveries() != 3 || !sys.Training() {
		log.Fatal("expected three completed recoveries with training running")
	}
}
