// Quickstart: set up GEMINI for the paper's flagship job — GPT-2 100B on
// 16 p4d.24xlarge machines — and look at everything the system derives:
// the iteration timeline and its idle spans, the checkpoint placement,
// the Algorithm 2 chunk plan, recovery probabilities, and the headline
// comparison against the remote-storage baselines.
package main

import (
	"fmt"
	"log"

	"gemini"
)

func main() {
	job, err := gemini.NewJob(gemini.JobSpec{
		Model:    "GPT-2 100B",
		Instance: "p4d.24xlarge",
		Machines: 16,
	}, gemini.WithReplicas(2))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== the job ==")
	fmt.Printf("model states: %.1f GB checkpoint, %.1f GB shard per machine\n",
		job.Config.Model.CheckpointBytes()/1e9, job.Config.ShardBytesPerMachine()/1e9)
	fmt.Printf("iteration: %.1f s, of which %.1f s network idle\n",
		job.Timeline.Iteration.Seconds(), job.Timeline.IdleTime().Seconds())

	fmt.Println("\n== checkpoint placement (Algorithm 1) ==")
	fmt.Printf("strategy %s over %d groups; machine 0's shard lives on machines %v\n",
		job.Placement.Kind, len(job.Placement.Groups), job.Placement.Replicas(0))
	for k := 1; k <= 3; k++ {
		fmt.Printf("P(recover from CPU memory | %d simultaneous failures) = %.3f\n",
			k, job.RecoveryProbability(k))
	}

	fmt.Println("\n== checkpoint traffic plan (Algorithm 2) ==")
	fmt.Printf("%d chunks across %d idle spans; fits without touching training: %v\n",
		len(job.Plan.Chunks), len(job.Profile.Spans), job.Plan.Fits)

	fmt.Println("\n== per-iteration checkpointing, measured on the simulator ==")
	res, err := job.ExecuteScheme(gemini.SchemeGemini)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iteration %.1f s vs %.1f s baseline (overhead %.2f%%)\n",
		res.IterationTime.Seconds(), res.BaselineIteration.Seconds(), res.Overhead()*100)
	fmt.Printf("checkpoint completes in %.1f s (remote storage would need %.0f s)\n",
		res.CheckpointTime.Seconds(), job.StrawmanSpec().CheckpointTime.Seconds())

	fmt.Println("\n== wasted time per failure (Equation 1) ==")
	fmt.Printf("GEMINI (software failure):  %8.0f s\n",
		job.GeminiSpec().AverageWasted(gemini.FromLocalCPU).Seconds())
	fmt.Printf("HighFreq:                   %8.0f s\n",
		job.HighFreqSpec().AverageWasted(gemini.FromPersistentRemote).Seconds())
	fmt.Printf("Strawman:                   %8.0f s\n",
		job.StrawmanSpec().AverageWasted(gemini.FromPersistentRemote).Seconds())
}
