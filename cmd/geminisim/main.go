// Command geminisim runs a configurable GEMINI training-with-failures
// simulation and prints a full report: job sizing, checkpoint plan,
// recovery probabilities, the live recovery trace, the run-health
// metrics, and the long-run effective-training-time comparison against
// the baselines.
//
// Example:
//
//	geminisim -model "GPT-2 100B" -instance p4d.24xlarge -machines 16 \
//	          -replicas 2 -days 10 -failures-per-day 4 -hardware 0.5 \
//	          -metrics out.prom -timeline out.csv
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"gemini"
	"gemini/internal/baselines"
	"gemini/internal/failure"
	"gemini/internal/runsim"
	"gemini/internal/simclock"
	"gemini/internal/training"
)

func main() {
	var (
		modelName   = flag.String("model", "GPT-2 100B", "Table 2 model name")
		instance    = flag.String("instance", "p4d.24xlarge", "Table 1 instance type")
		machines    = flag.Int("machines", 16, "number of training machines")
		replicas    = flag.Int("replicas", 2, "checkpoint replicas m")
		days        = flag.Float64("days", 10, "simulated horizon in days")
		perDay      = flag.Float64("failures-per-day", 4, "cluster failure rate")
		hwFraction  = flag.Float64("hardware", 0.5, "fraction of failures needing replacement")
		seed        = flag.Int64("seed", 1, "failure-schedule seed (Poisson mode)")
		poisson     = flag.Bool("poisson", false, "Poisson failure arrivals instead of fixed spacing")
		replacement = flag.Duration("replacement", 0, "machine replacement delay (0 = standby machines)")
		stratName   = flag.String("strategy", "gemini",
			"checkpoint strategy for the monitored control-plane run (one of: "+strings.Join(gemini.StrategyNames(), ", ")+")")
		renderTL    = flag.Bool("render-timeline", false, "render the iteration timeline with the checkpoint plan")
		traceOut    = flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) of a small traced run to this file")
		metricsOut  = flag.String("metrics", "", "write the run's metrics in Prometheus text exposition format to this file")
		timelineOut = flag.String("timeline", "", "write the sampled health-gauge timeline as CSV to this file")
		scenPath    = flag.String("scenario", "", "run a declarative scenario file as a campaign instead (see cmd/campaign for full control)")
	)
	flag.Parse()

	if *scenPath != "" {
		if err := runScenario(*scenPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	job, err := gemini.NewJob(gemini.JobSpec{
		Model: *modelName, Instance: *instance, Machines: *machines, Replicas: *replicas,
	}, gemini.WithStrategy(*stratName))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("job: %s on %d× %s, m=%d replicas, %s checkpoint strategy\n",
		*modelName, *machines, *instance, *replicas, *stratName)
	fmt.Printf("  checkpoint: %.1f GB total, %.1f GB/machine shard\n",
		job.Config.Model.CheckpointBytes()/1e9, job.Config.ShardBytesPerMachine()/1e9)
	fmt.Printf("  iteration: %.1f s (%.1f s network idle)\n",
		job.Timeline.Iteration.Seconds(), job.Timeline.IdleTime().Seconds())
	fmt.Printf("  plan: %d chunks, fits in idle spans: %v\n", len(job.Plan.Chunks), job.Plan.Fits)
	for k := 1; k <= 4 && k <= *machines; k++ {
		fmt.Printf("  P(recover from CPU memory | %d simultaneous failures) = %.3f\n",
			k, job.RecoveryProbability(k))
	}
	if *renderTL {
		fmt.Println()
		fmt.Print(training.RenderTimeline(job.Timeline, job.Plan, 100))
	}

	// One registry spans both runs: the executor fills training.*, the
	// monitored control-plane run below fills health.*.
	reg := gemini.NewMetricsRegistry()
	if res, err := job.ExecuteSchemeObserved(gemini.SchemeGemini, nil, reg); err == nil && !res.OOM {
		fmt.Printf("\nfluid executor (GEMINI schedule): iteration %.2f s, overhead %.1f%%\n",
			res.IterationTime.Seconds(), res.Overhead()*100)
		fmt.Printf("  idle utilization: %.3f of checkpoint bytes inside idle spans\n", res.IdleUtilization)
		fmt.Printf("  fabric: %s\n", res.FabricCounters)
	}

	if err := runHealth(job, reg, *metricsOut, *timelineOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	horizon := simclock.Duration(*days) * simclock.Day
	var fs failure.Schedule
	if *poisson {
		m := failure.Model{PerInstancePerDay: *perDay / float64(*machines), HardwareFraction: *hwFraction}
		fs, err = m.Generate(*machines, horizon, *seed)
	} else {
		fs, err = failure.FixedRate(*machines, *perDay, *hwFraction, horizon)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nfailure schedule: %d failures over %.0f days\n", len(fs), *days)

	fmt.Printf("\n%-10s %-10s %-12s %-12s %-22s\n", "solution", "ratio", "mean wasted", "total wasted", "recoveries (l/p/r)")
	for _, spec := range []baselines.Spec{job.GeminiSpec(), job.HighFreqSpec(), job.StrawmanSpec()} {
		cfg := runsim.Config{
			Spec: spec, Machines: *machines, Failures: fs, Horizon: horizon,
			ReplacementDelay: simclock.Duration(replacement.Seconds()),
		}
		if spec.UsesCPUMemory {
			cfg.Placement = job.Placement
		}
		res, err := runsim.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %-10.3f %-12s %-12s %d/%d/%d\n",
			spec.Name, res.EffectiveRatio, res.MeanWasted, res.TotalWasted,
			res.FromLocal, res.FromPeer, res.FromRemote)
	}

	if *traceOut != "" {
		// job.Spec carries the validated strategy, so the traced
		// control-plane run exercises the same policy as -strategy asked.
		if err := writeTrace(job, job.Spec, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// Every NewJob above (the sized job, the monitored run, the traced
	// run) resolved through the shared derivation cache; one spec means
	// one miss and the rest hits.
	cs := gemini.DerivationCacheStats()
	fmt.Printf("\nderivation cache: %d hits, %d misses, %d evictions, %d entries (hit rate %.2f)\n",
		cs.Hits, cs.Misses, cs.Evictions, cs.Entries, cs.HitRate())
}

// runHealth runs a small deterministic monitored control-plane
// simulation — the same seeded software + hardware failure that the
// -trace export uses — with the run health monitor attached: the agent
// system fills the health.* gauges in reg, a recorder samples them once
// per iteration into a sim-time timeline, and every recovery leaves an
// Eq. 1 wasted-time record. The health report section always prints;
// -metrics and -timeline additionally export the registry as Prometheus
// text and the sampled timeline as CSV.
func runHealth(job *gemini.Job, reg *gemini.MetricsRegistry, promPath, csvPath string) error {
	spec := job.Spec
	iter := gemini.Duration(job.Timeline.Iteration)
	at := gemini.Time(3*iter + iter/2)
	sched, err := gemini.Faults().
		Crash(at, 1, gemini.SoftwareFailure).
		Crash(at, 2%spec.Machines, gemini.HardwareFailure).
		Build(spec.Machines)
	if err != nil {
		return err
	}
	monitored, err := gemini.NewJob(spec, gemini.WithFaults(sched))
	if err != nil {
		return err
	}
	engine, sys, err := monitored.RecoverySystem(gemini.DefaultCloudConfig())
	if err != nil {
		return err
	}
	sys.SetMetrics(reg)
	sys.SetRemoteEvery(10)
	rec := gemini.NewMetricsRecorder(reg, 4096)
	rec.Watch("health.iteration", "health.replica_coverage", "health.min_replicas",
		"health.ckpt_staleness_local", "health.ckpt_staleness_remote", "health.recoveries")
	rec.Start(engine, iter)
	sys.Start()
	engine.Run(gemini.Time(25 * iter))
	rec.Stop()

	fmt.Printf("\nhealth: monitored run (%s strategy, active policy %s), %d failures injected, %d samples at %.1f s cadence\n",
		sys.Strategy().Name(), sys.Strategy().Active(), len(sched), rec.Samples(), iter.Seconds())
	for _, ev := range sys.WastedEvents() {
		fmt.Printf("  failure ranks %v: recovered from %s ckpt v%d, lost %d iters, wasted %s (T_lost %s + T_recovery %s)\n",
			ev.Ranks, ev.Source, ev.Version, ev.LostIterations,
			ev.Wasted(), ev.TLost, ev.TRecovery)
	}
	for _, c := range reg.Snapshot() {
		fmt.Printf("  %s = %g\n", c.Name, c.Value)
	}

	if promPath != "" {
		gemini.ExportDerivationCacheMetrics(reg)
		var buf bytes.Buffer
		if err := gemini.WriteMetricsProm(&buf, reg); err != nil {
			return err
		}
		if err := os.WriteFile(promPath, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s (Prometheus text exposition)\n", promPath)
	}
	if csvPath != "" {
		var buf bytes.Buffer
		if err := gemini.WriteTimelineCSV(&buf, rec); err != nil {
			return err
		}
		if err := os.WriteFile(csvPath, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s (sampled health timeline)\n", csvPath)
	}
	return nil
}

// writeTrace renders one small deterministic traced run as Chrome
// trace-event JSON: a GEMINI-schedule executor run (training compute and
// collectives, checkpoint flows and copies on per-machine tracks) merged
// with a control-plane run where a seeded software + hardware failure
// drives the full §6.2 recovery (chaos injection, kvstore election,
// recovery phases).
func writeTrace(job *gemini.Job, spec gemini.JobSpec, path string) error {
	execTr := gemini.NewTracer()
	res, err := job.ExecuteSchemeTraced(gemini.SchemeGemini, execTr)
	if err != nil {
		return err
	}
	if res.OOM {
		execTr = nil // nothing ran; export the control plane alone
	}

	iter := gemini.Duration(job.Timeline.Iteration)
	at := gemini.Time(3*iter + iter/2)
	sched, err := gemini.Faults().
		Crash(at, 1, gemini.SoftwareFailure).
		Crash(at, 2%spec.Machines, gemini.HardwareFailure).
		Build(spec.Machines)
	if err != nil {
		return err
	}
	traced, err := gemini.NewJob(spec, gemini.WithFaults(sched))
	if err != nil {
		return err
	}
	engine, sys, err := traced.RecoverySystem(gemini.DefaultCloudConfig())
	if err != nil {
		return err
	}
	ctl := gemini.NewTracer()
	sys.SetTracer(ctl)
	sys.SetRemoteEvery(10)
	sys.Start()
	engine.Run(gemini.Time(25 * iter))

	var buf bytes.Buffer
	if err := gemini.WriteTrace(&buf, execTr, ctl); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	st, err := gemini.TraceStatsFromJSON(buf.Bytes())
	if err != nil {
		return err
	}
	fmt.Printf("\ntrace: wrote %s (%d events, %d processes, categories:", path, st.Events, len(st.Processes))
	cats := make([]string, 0, len(st.Categories))
	for c := range st.Categories {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Printf(" %s=%d", c, st.Categories[c])
	}
	fmt.Println(")")
	fmt.Println("  load it at ui.perfetto.dev or chrome://tracing")
	return nil
}

// runScenario is the -scenario path: load, compile, and run the
// campaign with default options, printing the aggregate comparison.
// cmd/campaign is the full-featured front end (worker/seed overrides,
// JSON + HTML reports); this entry point keeps one-file scenarios
// reachable from the main simulator binary.
func runScenario(path string) error {
	s, err := gemini.LoadScenario(path)
	if err != nil {
		return err
	}
	c, err := s.Compile()
	if err != nil {
		return err
	}
	rep, err := gemini.RunCampaign(context.Background(), c, gemini.CampaignOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("campaign %q: %s on %d× %s, %.3g-day horizon × %d variations (seed %d)\n",
		rep.Scenario, rep.Model, rep.Machines, rep.Instance, rep.HorizonDays, rep.Variations, rep.Seed)
	fmt.Printf("\n%-10s %-10s %-12s %-10s %-20s\n", "solution", "ratio", "wasted h", "failures", "recoveries (l/p/r)")
	for _, sp := range rep.Specs {
		fmt.Printf("%-10s %-10.4f %-12.2f %-10d %d/%d/%d\n",
			sp.Name, sp.EffectiveRatio.Mean, sp.WastedHours.Mean, sp.Failures,
			sp.FromLocal, sp.FromPeer, sp.FromRemote)
	}
	fmt.Printf("\nreport hash: %s\n", rep.Hash)
	return nil
}
