// Command placement explores GEMINI's checkpoint placement strategies:
// it prints the Algorithm 1 assignment for a cluster and compares the
// recovery probabilities of the group/mixed and ring strategies across
// simultaneous-failure counts.
//
// Example:
//
//	placement -machines 16 -replicas 2 -maxk 5
package main

import (
	"flag"
	"fmt"
	"os"

	"gemini/internal/placement"
)

func main() {
	var (
		n       = flag.Int("machines", 16, "number of machines N")
		m       = flag.Int("replicas", 2, "checkpoint replicas m")
		maxK    = flag.Int("maxk", 5, "largest simultaneous-failure count to analyze")
		showMap = flag.Bool("map", true, "print the replica assignment")
		search  = flag.Bool("search", false, "exhaustively search ALL placements for the optimum (tiny N only)")
	)
	flag.Parse()

	mixed, err := placement.Mixed(*n, *m)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ring, err := placement.Ring(*n, *m)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("Algorithm 1 for N=%d, m=%d: strategy=%s, %d groups\n", *n, *m, mixed.Kind, len(mixed.Groups))
	if *showMap {
		for _, g := range mixed.Groups {
			fmt.Printf("  group %v\n", g)
		}
		fmt.Println("  replica sets:")
		for rank := 0; rank < *n; rank++ {
			fmt.Printf("    machine %2d → stored on %v\n", rank, mixed.Replicas(rank))
		}
	}

	prob := func(p *placement.Placement, k int) float64 {
		if p.N <= 24 {
			return placement.BitmaskProbability(p, k)
		}
		return placement.MonteCarlo(p, k, 200_000, 1)
	}
	fmt.Printf("\n%-4s %-14s %-14s %-14s %-14s\n", "k", "mixed (exact)", "ring (exact)", "Corollary 1", "ring bound")
	for k := 1; k <= *maxK && k <= *n; k++ {
		c1 := "—"
		if *n%*m == 0 {
			v, err := placement.Corollary1(*n, *m, k)
			if err == nil {
				c1 = fmt.Sprintf("%.4f", v)
			}
		}
		rb, _ := placement.RingBound(*n, *m, k)
		fmt.Printf("%-4d %-14.4f %-14.4f %-14s %-14.4f\n", k, prob(mixed, k), prob(ring, k), c1, rb)
	}
	if *n%*m != 0 {
		fmt.Printf("\nTheorem 1 gap bound for m ∤ N: %.6f\n", placement.Theorem1Gap(*n, *m))
	}

	if *search {
		fmt.Printf("\nexhaustive optimum over all placements at k=m=%d: ", *m)
		func() {
			defer func() {
				if r := recover(); r != nil {
					fmt.Printf("infeasible (%v)\n", r)
				}
			}()
			best := placement.OptimalProbability(*n, *m, *m)
			mixedP := prob(mixed, *m)
			fmt.Printf("%.6f (mixed achieves %.6f, gap %.6f)\n", best, mixedP, best-mixedP)
		}()
	}
}
