// Command campaign runs a declarative scenario file as a seeded
// simulation campaign: the scenario names a training job, a fleet, a
// failure model, a chaos schedule and the solutions to compare; the
// runner expands it into N seeded variations, fans them across worker
// goroutines, and writes aggregate JSON and HTML reports. For a fixed
// scenario seed the reports are byte-identical at any -workers value.
//
// Examples:
//
//	campaign examples/scenarios/smoke-1k.yaml
//	campaign -validate examples/scenarios/chaos-10k.yaml
//	campaign -workers 8 -json out.json -html out.html examples/scenarios/chaos-10k.yaml
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gemini"
	"gemini/internal/scenario"
)

func main() {
	var (
		validate   = flag.Bool("validate", false, "parse, validate and compile the scenario, then exit")
		workers    = flag.Int("workers", 0, "fan-out concurrency (0 = GOMAXPROCS); never affects results")
		seed       = flag.Int64("seed", 0, "override the scenario's base seed (0 = keep)")
		variations = flag.Int("variations", 0, "override the scenario's variation count (0 = keep)")
		jsonOut    = flag.String("json", "", "JSON report path (overrides the scenario's report.json)")
		htmlOut    = flag.String("html", "", "HTML report path (overrides the scenario's report.html)")
		quiet      = flag.Bool("quiet", false, "suppress the stdout summary (reports still written)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: campaign [flags] scenario.{yaml,json}")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *validate, *workers, *seed, *variations, *jsonOut, *htmlOut, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(path string, validate bool, workers int, seed int64, variations int, jsonOut, htmlOut string, quiet bool) error {
	s, err := scenario.Load(path)
	if err != nil {
		return err
	}
	if seed != 0 {
		s.Seed = seed
	}
	c, err := s.Compile()
	if err != nil {
		return err
	}
	if validate {
		fmt.Printf("%s: ok (%d machines, %d variations, %d chaos events, specs %s)\n",
			path, s.Job.Machines, s.Variations, len(c.Chaos), strings.Join(s.Run.Specs, ","))
		return nil
	}

	start := time.Now()
	rep, err := scenario.RunCampaign(context.Background(), c, scenario.CampaignOptions{
		Workers: workers, Variations: variations,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if !quiet {
		printSummary(rep, elapsed)
	}
	if jsonOut == "" {
		jsonOut = s.Report.JSON
	}
	if htmlOut == "" {
		htmlOut = s.Report.HTML
	}
	if jsonOut != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("wrote %s\n", jsonOut)
		}
	}
	if htmlOut != "" {
		f, err := os.Create(htmlOut)
		if err != nil {
			return err
		}
		if err := scenario.WriteHTML(f, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("wrote %s\n", htmlOut)
		}
	}
	return nil
}

// printSummary writes the human summary. Wall-clock throughput goes to
// stdout only — never into the reports, which must stay deterministic.
func printSummary(rep *scenario.Report, elapsed time.Duration) {
	fmt.Printf("campaign %q: %s on %d× %s, %.3g-day horizon × %d variations (seed %d)\n",
		rep.Scenario, rep.Model, rep.Machines, rep.Instance, rep.HorizonDays, rep.Variations, rep.Seed)
	fmt.Printf("background failures: %.4g/day; chaos events: %d\n", rep.FailuresPerDay, rep.ChaosEvents)
	fmt.Printf("\n%-10s %-22s %-14s %-10s %-20s\n", "solution", "ratio mean [min,max]", "wasted h", "failures", "recoveries (l/p/r)")
	for _, sp := range rep.Specs {
		er := sp.EffectiveRatio
		fmt.Printf("%-10s %.4f [%.4f,%.4f] %-14.2f %-10d %d/%d/%d (%.1f%% in-memory)\n",
			sp.Name, er.Mean, er.Min, er.Max, sp.WastedHours.Mean, sp.Failures,
			sp.FromLocal, sp.FromPeer, sp.FromRemote, sp.InMemoryFraction*100)
	}
	cs := gemini.DerivationCacheStats()
	fmt.Printf("\nreport hash: %s\n", rep.Hash)
	fmt.Printf("elapsed: %s (%.1f variations/s); derivation cache hit rate %.2f\n",
		elapsed.Round(time.Millisecond),
		float64(rep.Variations)/elapsed.Seconds(), cs.HitRate())
}
