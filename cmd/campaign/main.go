// Command campaign runs a declarative scenario file as a seeded
// simulation campaign: the scenario names a training job, a fleet, a
// failure model, a chaos schedule and the solutions to compare; the
// runner expands it into N seeded variations, fans them across worker
// goroutines, and writes aggregate JSON and HTML reports. For a fixed
// scenario seed the reports are byte-identical at any -workers value.
//
// Observability:
//
//   - -progress prints live run counts, failure totals and an ETA to
//     stderr while the campaign runs.
//   - -serve addr exposes /metrics (Prometheus), /progress (JSON) and
//     /debug/pprof/ over HTTP for the campaign's duration.
//   - -aggregate merges every run's health registry into per-solution
//     and campaign-wide rollups, landed in the JSON/HTML reports;
//     -prom additionally writes the campaign-wide rollup as a
//     Prometheus text-exposition file.
//   - -flight K re-executes the K worst runs (by -flight-key) with
//     full tracing after the campaign and writes
//     outlier-<k>.{trace.json,timeline.csv,prom} files, asserting each
//     replay reproduces the campaign-recorded outcome exactly.
//
// Examples:
//
//	campaign examples/scenarios/smoke-1k.yaml
//	campaign -validate examples/scenarios/chaos-10k.yaml
//	campaign -workers 8 -json out.json -html out.html examples/scenarios/chaos-10k.yaml
//	campaign -progress -aggregate -prom out.prom examples/scenarios/chaos-10k.yaml
//	campaign -flight 3 -flight-key ratio -flight-dir /tmp examples/scenarios/smoke-1k.yaml
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gemini"
	"gemini/internal/obs"
	"gemini/internal/scenario"
)

// options collects the flag values run needs.
type options struct {
	validate   bool
	workers    int
	seed       int64
	variations int
	jsonOut    string
	htmlOut    string
	quiet      bool

	progress  bool
	serveAddr string
	aggregate bool
	promOut   string
	flight    int
	flightKey string
	flightDir string
}

func main() {
	var o options
	flag.BoolVar(&o.validate, "validate", false, "parse, validate and compile the scenario, then exit")
	flag.IntVar(&o.workers, "workers", 0, "fan-out concurrency (0 = GOMAXPROCS); never affects results")
	flag.Int64Var(&o.seed, "seed", 0, "override the scenario's base seed (0 = keep)")
	flag.IntVar(&o.variations, "variations", 0, "override the scenario's variation count (0 = keep)")
	flag.StringVar(&o.jsonOut, "json", "", "JSON report path (overrides the scenario's report.json)")
	flag.StringVar(&o.htmlOut, "html", "", "HTML report path (overrides the scenario's report.html)")
	flag.BoolVar(&o.quiet, "quiet", false, "suppress the stdout summary (reports still written)")
	flag.BoolVar(&o.progress, "progress", false, "print live progress lines to stderr while the campaign runs")
	flag.StringVar(&o.serveAddr, "serve", "", "serve /metrics, /progress and /debug/pprof on this host:port for the campaign's duration")
	flag.BoolVar(&o.aggregate, "aggregate", false, "merge per-run metric registries into the reports' distribution rollups")
	flag.StringVar(&o.promOut, "prom", "", "write the aggregated campaign registry as Prometheus text exposition (implies -aggregate)")
	flag.IntVar(&o.flight, "flight", 0, "after the campaign, replay the K worst runs with full tracing")
	flag.StringVar(&o.flightKey, "flight-key", "wasted",
		fmt.Sprintf("outlier ranking for -flight, one of %v", scenario.FlightKeys))
	flag.StringVar(&o.flightDir, "flight-dir", ".", "directory for the -flight outlier-<k>.* artifacts")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: campaign [flags] scenario.{yaml,json}")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(path string, o options) error {
	s, err := scenario.Load(path)
	if err != nil {
		return err
	}
	if o.seed != 0 {
		s.Seed = o.seed
	}
	c, err := s.Compile()
	if err != nil {
		return err
	}
	if o.validate {
		fmt.Printf("%s: ok (%d machines, %d variations, %d chaos events, specs %s)\n",
			path, s.Job.Machines, s.Variations, len(c.Chaos), strings.Join(s.Run.Specs, ","))
		return nil
	}

	copts := scenario.CampaignOptions{
		Workers:    o.workers,
		Variations: o.variations,
		Aggregate:  o.aggregate || o.promOut != "",
		RecordRuns: o.flight > 0,
	}
	if o.progress || o.serveAddr != "" {
		copts.Progress = obs.NewProgress()
	}
	var server *obs.Server
	if o.serveAddr != "" {
		live := obs.NewSyncRegistry()
		copts.Live = live
		server, err = obs.NewServer(o.serveAddr, copts.Progress, live)
		if err != nil {
			return err
		}
		defer server.Close()
		fmt.Fprintf(os.Stderr, "serving /metrics /progress /debug/pprof on http://%s\n", server.Addr())
	}
	stopProgress := func() {}
	if o.progress {
		stopProgress = streamProgress(copts.Progress)
	}

	start := time.Now()
	rep, err := scenario.RunCampaign(context.Background(), c, copts)
	stopProgress()
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if o.progress {
		fmt.Fprintln(os.Stderr, copts.Progress.Snapshot().String())
	}

	if !o.quiet {
		printSummary(rep, elapsed)
	}
	if err := writeReports(s, rep, o); err != nil {
		return err
	}
	if o.flight > 0 {
		if err := flightRecord(c, rep, o); err != nil {
			return err
		}
	}
	return nil
}

// streamProgress prints one stderr line per second until stopped.
func streamProgress(p *obs.Progress) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintln(os.Stderr, p.Snapshot().String())
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

func writeReports(s *scenario.Scenario, rep *scenario.Report, o options) error {
	jsonOut, htmlOut := o.jsonOut, o.htmlOut
	if jsonOut == "" {
		jsonOut = s.Report.JSON
	}
	if htmlOut == "" {
		htmlOut = s.Report.HTML
	}
	if jsonOut != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		if !o.quiet {
			fmt.Printf("wrote %s\n", jsonOut)
		}
	}
	if htmlOut != "" {
		f, err := os.Create(htmlOut)
		if err != nil {
			return err
		}
		if err := scenario.WriteHTML(f, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !o.quiet {
			fmt.Printf("wrote %s\n", htmlOut)
		}
	}
	if o.promOut != "" {
		f, err := os.Create(o.promOut)
		if err != nil {
			return err
		}
		if err := rep.WriteAggregatedProm(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !o.quiet {
			fmt.Printf("wrote %s\n", o.promOut)
		}
	}
	return nil
}

// flightRecord replays the worst runs with full observability and lands
// one trace/timeline/prom triple per outlier. Replay errors (including
// a re-run that diverges from the campaign-recorded outcome) abort.
func flightRecord(c *scenario.Compiled, rep *scenario.Report, o options) error {
	worst, err := scenario.Outliers(rep, o.flightKey, o.flight)
	if err != nil {
		return err
	}
	for k, rec := range worst {
		fr, err := c.Replay(rec)
		if err != nil {
			return err
		}
		base := filepath.Join(o.flightDir, fmt.Sprintf("outlier-%d", k))
		for _, out := range []struct {
			path  string
			write func(w io.Writer) error
		}{
			{base + ".trace.json", fr.WriteTrace},
			{base + ".timeline.csv", fr.WriteTimeline},
			{base + ".prom", fr.WriteProm},
		} {
			f, err := os.Create(out.path)
			if err != nil {
				return err
			}
			if err := out.write(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if !o.quiet {
			fmt.Printf("flight %d: variation %d spec %s (%s): wasted %.0fs ratio %.4f → %s.{trace.json,timeline.csv,prom}\n",
				k, rec.Variation, rec.Spec, o.flightKey, rec.WastedSeconds, rec.EffectiveRatio, base)
		}
	}
	return nil
}

// printSummary writes the human summary. Wall-clock throughput goes to
// stdout only — never into the reports, which must stay deterministic.
func printSummary(rep *scenario.Report, elapsed time.Duration) {
	fmt.Printf("campaign %q: %s on %d× %s, %.3g-day horizon × %d variations (seed %d)\n",
		rep.Scenario, rep.Model, rep.Machines, rep.Instance, rep.HorizonDays, rep.Variations, rep.Seed)
	fmt.Printf("background failures: %.4g/day; chaos events: %d\n", rep.FailuresPerDay, rep.ChaosEvents)
	fmt.Printf("\n%-10s %-22s %-14s %-10s %-20s\n", "solution", "ratio mean [min,max]", "wasted h", "failures", "recoveries (l/p/r)")
	for _, sp := range rep.Specs {
		er := sp.EffectiveRatio
		fmt.Printf("%-10s %.4f [%.4f,%.4f] %-14.2f %-10d %d/%d/%d (%.1f%% in-memory)\n",
			sp.Name, er.Mean, er.Min, er.Max, sp.WastedHours.Mean, sp.Failures,
			sp.FromLocal, sp.FromPeer, sp.FromRemote, sp.InMemoryFraction*100)
	}
	cs := gemini.DerivationCacheStats()
	fmt.Printf("\nreport hash: %s\n", rep.Hash)
	fmt.Printf("elapsed: %s (%.1f variations/s); derivation cache hit rate %.2f\n",
		elapsed.Round(time.Millisecond),
		float64(rep.Variations)/elapsed.Seconds(), cs.HitRate())
}
