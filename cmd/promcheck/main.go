// Command promcheck validates the run health monitor's two export
// formats: a Prometheus text-exposition file (-prom) and a sampled
// sim-time timeline CSV (-csv). Beyond line syntax it enforces the
// histogram exposition contract — strictly increasing le bounds ending
// at +Inf, cumulative bucket counts, +Inf bucket equal to _count — for
// every family declared `# TYPE ... histogram`. ci.sh runs it against
// the geminisim -metrics/-timeline smoke outputs and the aggregated
// campaign exposition so a refactor that breaks the exposition syntax
// or stops the recorder sampling fails the build instead of shipping an
// unscrapeable endpoint or an empty timeline.
//
// Usage:
//
//	promcheck -prom out.prom -min-families 5 -csv out.csv -min-rows 10
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
)

var (
	// Metric names per the Prometheus data model; label matching below is
	// deliberately loose — we validate our own exporter, not arbitrary input.
	nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
)

func main() {
	promPath := flag.String("prom", "", "Prometheus text-exposition file to validate")
	minFamilies := flag.Int("min-families", 1, "minimum # TYPE metric families required in -prom")
	csvPath := flag.String("csv", "", "timeline CSV file to validate")
	minRows := flag.Int("min-rows", 1, "minimum data rows required in -csv")
	flag.Parse()
	if *promPath == "" && *csvPath == "" {
		fmt.Fprintln(os.Stderr, "usage: promcheck [-prom file [-min-families n]] [-csv file [-min-rows n]]")
		os.Exit(2)
	}
	if *promPath != "" {
		if err := checkProm(*promPath, *minFamilies); err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", *promPath, err)
			os.Exit(1)
		}
	}
	if *csvPath != "" {
		if err := checkCSV(*csvPath, *minRows); err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", *csvPath, err)
			os.Exit(1)
		}
	}
}

// sample is one parsed exposition line, kept for the post-pass
// histogram checks.
type sample struct {
	name   string
	labels string // raw {...} block, may be empty
	value  float64
	line   int
}

// checkProm enforces the exposition-format shape our exporter promises:
// every non-comment line is `name[{labels}] value` with a parseable
// float, every # TYPE names a valid family with a known kind, at least
// minFamilies families appear, and every histogram family is internally
// consistent (see checkHistogram).
func checkProm(path string, minFamilies int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	families := map[string]string{}
	var samples []sample
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		switch {
		case text == "":
			continue
		case strings.HasPrefix(text, "# TYPE "):
			fields := strings.Fields(text)
			if len(fields) != 4 {
				return fmt.Errorf("line %d: malformed TYPE comment %q", line, text)
			}
			name, kind := fields[2], fields[3]
			if !nameRe.MatchString(name) {
				return fmt.Errorf("line %d: invalid family name %q", line, name)
			}
			switch kind {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				return fmt.Errorf("line %d: unknown family kind %q", line, kind)
			}
			if prev, dup := families[name]; dup {
				return fmt.Errorf("line %d: family %q declared twice (%s, %s)", line, name, prev, kind)
			}
			families[name] = kind
		case strings.HasPrefix(text, "#"):
			continue // HELP or free comment
		default:
			m := sampleRe.FindStringSubmatch(text)
			if m == nil {
				return fmt.Errorf("line %d: malformed sample %q", line, text)
			}
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return fmt.Errorf("line %d: sample %s has non-float value %q", line, m[1], m[3])
			}
			samples = append(samples, sample{name: m[1], labels: m[2], value: v, line: line})
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("no samples")
	}
	if len(families) < minFamilies {
		return fmt.Errorf("%d metric families, want ≥ %d", len(families), minFamilies)
	}
	histograms := 0
	for name, kind := range families {
		if kind != "histogram" {
			continue
		}
		histograms++
		if err := checkHistogram(name, samples); err != nil {
			return err
		}
	}
	fmt.Printf("%s: %d families (%d histograms), %d samples\n", path, len(families), histograms, len(samples))
	return nil
}

// leValue extracts the le label from a _bucket sample's label block.
// +Inf maps to math.Inf(1), which makes the ordering check uniform.
func leValue(labels string) (float64, error) {
	const key = `le="`
	i := strings.Index(labels, key)
	if i < 0 {
		return 0, fmt.Errorf("no le label in %q", labels)
	}
	rest := labels[i+len(key):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, fmt.Errorf("unterminated le label in %q", labels)
	}
	if rest[:j] == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(rest[:j], 64)
}

// checkHistogram enforces the histogram exposition contract for one
// family: at least one _bucket sample plus _sum and _count series,
// strictly increasing le bounds ending at +Inf, cumulative
// (monotonically non-decreasing) bucket counts, and a +Inf bucket that
// equals _count — the invariant scrapers rely on to compute quantiles.
func checkHistogram(name string, samples []sample) error {
	var (
		prevLE    = math.Inf(-1)
		lastLE    float64
		prevCount = -1.0
		infCount  = -1.0
		buckets   int
		count     = -1.0
		hasSum    bool
	)
	for _, s := range samples {
		switch s.name {
		case name + "_bucket":
			le, err := leValue(s.labels)
			if err != nil {
				return fmt.Errorf("line %d: histogram %s: %v", s.line, name, err)
			}
			if le <= prevLE {
				return fmt.Errorf("line %d: histogram %s: le bound %v not above previous %v", s.line, name, le, prevLE)
			}
			if s.value < prevCount {
				return fmt.Errorf("line %d: histogram %s: bucket count %v below previous %v (buckets must be cumulative)",
					s.line, name, s.value, prevCount)
			}
			prevLE, prevCount, lastLE = le, s.value, le
			if math.IsInf(le, 1) {
				infCount = s.value
			}
			buckets++
		case name + "_sum":
			hasSum = true
		case name + "_count":
			count = s.value
		}
	}
	switch {
	case buckets == 0:
		return fmt.Errorf("histogram %s: no _bucket samples", name)
	case !math.IsInf(lastLE, 1):
		return fmt.Errorf("histogram %s: last bucket le=%v, want +Inf", name, lastLE)
	case !hasSum:
		return fmt.Errorf("histogram %s: missing _sum", name)
	case count < 0:
		return fmt.Errorf("histogram %s: missing _count", name)
	case infCount != count:
		return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", name, infCount, count)
	}
	return nil
}

// checkCSV enforces the recorder timeline's shape: a header whose first
// column is "time", uniform column counts, all-float cells, strictly
// increasing time, and at least minRows data rows.
func checkCSV(path string, minRows int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return fmt.Errorf("empty file")
	}
	header := strings.Split(sc.Text(), ",")
	if header[0] != "time" {
		return fmt.Errorf("header starts with %q, want \"time\"", header[0])
	}
	if len(header) < 2 {
		return fmt.Errorf("header has no watched columns")
	}
	rows := 0
	prev := -1.0
	for line := 2; sc.Scan(); line++ {
		cells := strings.Split(sc.Text(), ",")
		if len(cells) != len(header) {
			return fmt.Errorf("line %d: %d columns, header has %d", line, len(cells), len(header))
		}
		for i, cell := range cells {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return fmt.Errorf("line %d: column %q has non-float cell %q", line, header[i], cell)
			}
			if i == 0 {
				if v <= prev {
					return fmt.Errorf("line %d: time %v not after %v", line, v, prev)
				}
				prev = v
			}
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if rows < minRows {
		return fmt.Errorf("%d data rows, want ≥ %d", rows, minRows)
	}
	fmt.Printf("%s: %d columns, %d rows\n", path, len(header), rows)
	return nil
}
