// benchdiff compares two benchmark snapshots produced by bench.sh
// (raw `go test -json` event streams) and prints per-benchmark deltas
// for ns/op, B/op, and allocs/op, averaged across -count repetitions.
//
//	benchdiff [-threshold pct] old.json new.json
//
// With a non-negative -threshold, any benchmark whose ns/op, B/op, or
// allocs/op grew by more than pct percent is a regression: benchdiff
// lists it and exits 1 — the CI shape. Memory metrics are gated only
// when both snapshots report them (the benchmark ran with -benchmem),
// and an allocs/op growth under one allocation per op is tolerated as
// counter noise. A negative threshold disables gating (report only),
// which is the right mode for comparing snapshots from different
// machines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of the go-test-json schema benchdiff reads.
type event struct {
	Action  string
	Package string
	Output  string
}

// metrics holds one benchmark's averaged results.
type metrics struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasBytes    bool
	hasAllocs   bool
	samples     int
}

// parseFile reads a go-test-json stream and returns benchmark name →
// averaged metrics. Benchmark result lines are split across multiple
// "output" events, so the Output fields are concatenated per package
// before line parsing.
func parseFile(path string) (map[string]*metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	byPkg := map[string]*strings.Builder{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate trailing noise
		}
		if ev.Action != "output" {
			continue
		}
		b := byPkg[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			byPkg[ev.Package] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := map[string]*metrics{}
	for pkg, b := range byPkg {
		for _, line := range strings.Split(b.String(), "\n") {
			name, m, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			key := pkg + "." + name
			if prev, ok := out[key]; ok {
				// Running mean across -count repetitions.
				n := float64(prev.samples)
				prev.nsPerOp = (prev.nsPerOp*n + m.nsPerOp) / (n + 1)
				prev.bytesPerOp = (prev.bytesPerOp*n + m.bytesPerOp) / (n + 1)
				prev.allocsPerOp = (prev.allocsPerOp*n + m.allocsPerOp) / (n + 1)
				prev.samples++
			} else {
				m.samples = 1
				out[key] = m
			}
		}
	}
	return out, nil
}

// parseBenchLine parses one `Benchmark<name>-P  N  <value> <unit> ...`
// result line. The GOMAXPROCS suffix is stripped so snapshots from
// machines with different core counts still align.
func parseBenchLine(line string) (string, *metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	m := &metrics{}
	found := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		switch fields[i+1] {
		case "ns/op":
			m.nsPerOp = v
			found = true
		case "B/op":
			m.bytesPerOp = v
			m.hasBytes = true
		case "allocs/op":
			m.allocsPerOp = v
			m.hasAllocs = true
		}
	}
	if !found {
		return "", nil, false
	}
	return name, m, true
}

func pctDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 100
	}
	return (new - old) / old * 100
}

func fmtDelta(old, new float64) string {
	return fmt.Sprintf("%+.1f%%", pctDelta(old, new))
}

func main() {
	threshold := flag.Float64("threshold", 10,
		"ns/op regression threshold in percent; negative disables gating (report only)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold pct] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	old, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(old) == 0 || len(cur) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmark results parsed (old %d, new %d)\n", len(old), len(cur))
		os.Exit(2)
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-64s %14s %14s %8s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns/op", "allocs/op", "Δallocs")

	var regressions []string
	onlyNew := 0
	for _, name := range names {
		n := cur[name]
		o, ok := old[name]
		if !ok {
			onlyNew++
			fmt.Fprintf(w, "%-64s %14s %14.0f %8s %10.1f %8s\n",
				trim(name, 64), "-", n.nsPerOp, "new", n.allocsPerOp, "-")
			continue
		}
		allocsNew := "-"
		allocsDelta := "-"
		if o.hasAllocs && n.hasAllocs {
			allocsNew = fmt.Sprintf("%.1f", n.allocsPerOp)
			allocsDelta = fmtDelta(o.allocsPerOp, n.allocsPerOp)
		}
		fmt.Fprintf(w, "%-64s %14.0f %14.0f %8s %10s %8s\n",
			trim(name, 64), o.nsPerOp, n.nsPerOp, fmtDelta(o.nsPerOp, n.nsPerOp), allocsNew, allocsDelta)
		regressions = append(regressions, gate(name, o, n, *threshold)...)
	}
	dropped := 0
	for name := range old {
		if _, ok := cur[name]; !ok {
			dropped++
		}
	}
	fmt.Fprintf(w, "\n%d benchmarks compared, %d only in new, %d only in old\n",
		len(cur)-onlyNew, onlyNew, dropped)

	if len(regressions) > 0 {
		w.Flush()
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d regression(s):\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
}

// gate returns the regression lines for one benchmark: ns/op always,
// B/op and allocs/op when both snapshots measured them. All three share
// the one threshold. An allocs/op increase below one whole allocation
// per op never gates — tiny averaged counts (0.1 → 0.2) are pool-warmup
// noise, not a leak.
func gate(name string, o, n *metrics, threshold float64) []string {
	if threshold < 0 {
		return nil
	}
	var out []string
	if pctDelta(o.nsPerOp, n.nsPerOp) > threshold {
		out = append(out, fmt.Sprintf("%s: %.0f → %.0f ns/op (%s, threshold %.1f%%)",
			name, o.nsPerOp, n.nsPerOp, fmtDelta(o.nsPerOp, n.nsPerOp), threshold))
	}
	if o.hasBytes && n.hasBytes && pctDelta(o.bytesPerOp, n.bytesPerOp) > threshold {
		out = append(out, fmt.Sprintf("%s: %.0f → %.0f B/op (%s, threshold %.1f%%)",
			name, o.bytesPerOp, n.bytesPerOp, fmtDelta(o.bytesPerOp, n.bytesPerOp), threshold))
	}
	if o.hasAllocs && n.hasAllocs &&
		pctDelta(o.allocsPerOp, n.allocsPerOp) > threshold &&
		n.allocsPerOp-o.allocsPerOp >= 1 {
		out = append(out, fmt.Sprintf("%s: %.1f → %.1f allocs/op (%s, threshold %.1f%%)",
			name, o.allocsPerOp, n.allocsPerOp, fmtDelta(o.allocsPerOp, n.allocsPerOp), threshold))
	}
	return out
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n+1:]
}
