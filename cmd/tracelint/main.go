// Command tracelint validates an exported Chrome trace-event JSON file
// in two passes: coverage (it must parse, contain events, and cover at
// least a minimum number of distinct subsystem categories) and
// structure (balanced Begin/End span nesting, no counter events on
// unnamed threads). ci.sh runs it against the geminisim -trace smoke
// output and against the campaign flight recorder's outlier traces, so
// a refactor that silently unwires a subsystem's tracing — or emits a
// malformed track — fails the build instead of shipping.
//
// Usage:
//
//	tracelint -min-categories 4 out.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gemini/internal/trace"
)

func main() {
	minCats := flag.Int("min-categories", 4, "minimum distinct event categories required")
	minEvents := flag.Int("min-events", 1, "minimum non-metadata events required")
	structOnly := flag.Bool("structure-only", false, "skip the coverage thresholds, keep the structural checks")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracelint [-min-categories n] [-min-events n] [-structure-only] <trace.json>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st, err := trace.StatsFromJSON(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracelint: %s: %v\n", path, err)
		os.Exit(1)
	}
	issues, err := trace.Lint(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracelint: %s: %v\n", path, err)
		os.Exit(1)
	}
	cats := make([]string, 0, len(st.Categories))
	for c := range st.Categories {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	fmt.Printf("%s: %d events, %d processes, %d categories %v, %d structural issues\n",
		path, st.Events, len(st.Processes), len(cats), cats, len(issues))
	if len(issues) > 0 {
		for _, is := range issues {
			fmt.Fprintf(os.Stderr, "tracelint: %s\n", is)
		}
		os.Exit(1)
	}
	if *structOnly {
		return
	}
	if st.Events < *minEvents {
		fmt.Fprintf(os.Stderr, "tracelint: %d events, want ≥ %d\n", st.Events, *minEvents)
		os.Exit(1)
	}
	if len(cats) < *minCats {
		fmt.Fprintf(os.Stderr, "tracelint: %d distinct categories %v, want ≥ %d\n", len(cats), cats, *minCats)
		os.Exit(1)
	}
}
