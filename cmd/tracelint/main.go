// Command tracelint validates an exported Chrome trace-event JSON file:
// it must parse, contain events, and cover at least a minimum number of
// distinct subsystem categories. ci.sh runs it against the geminisim
// -trace smoke output so a refactor that silently unwires a subsystem's
// tracing fails the build instead of shipping an empty track.
//
// Usage:
//
//	tracelint -min-categories 4 out.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gemini/internal/trace"
)

func main() {
	minCats := flag.Int("min-categories", 4, "minimum distinct event categories required")
	minEvents := flag.Int("min-events", 1, "minimum non-metadata events required")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracelint [-min-categories n] [-min-events n] <trace.json>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st, err := trace.StatsFromJSON(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracelint: %s: %v\n", path, err)
		os.Exit(1)
	}
	cats := make([]string, 0, len(st.Categories))
	for c := range st.Categories {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	fmt.Printf("%s: %d events, %d processes, %d categories %v\n",
		path, st.Events, len(st.Processes), len(cats), cats)
	if st.Events < *minEvents {
		fmt.Fprintf(os.Stderr, "tracelint: %d events, want ≥ %d\n", st.Events, *minEvents)
		os.Exit(1)
	}
	if len(cats) < *minCats {
		fmt.Fprintf(os.Stderr, "tracelint: %d distinct categories %v, want ≥ %d\n", len(cats), cats, *minCats)
		os.Exit(1)
	}
}
