// Command benchtables regenerates the paper's evaluation tables and
// figures from the simulator. Experiments run concurrently (they are
// independent), so the full sweep is bounded by the slowest experiment;
// output is still printed in paper order.
//
// Usage:
//
//	benchtables              # run everything
//	benchtables -only fig9   # one experiment
//	benchtables -list        # list experiment IDs
//	benchtables -workers 1   # serial run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"gemini/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment by ID (e.g. fig9, table1, ablation-gamma)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	workers := flag.Int("workers", 0, "number of concurrent experiments (0 = GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, e := range append(experiments.All(), experiments.Ablations()...) {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}
	run := experiments.All()
	if *ablations {
		run = append(run, experiments.Ablations()...)
	}
	if *only != "" {
		e, err := experiments.ByID(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		run = []experiments.Experiment{e}
	}
	failed := false
	for _, r := range experiments.RunAll(context.Background(), run, *workers) {
		fmt.Printf("== %s — %s ==\n", r.ID, r.Title)
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, r.Err)
			failed = true
			continue
		}
		fmt.Println(r.Output)
	}
	if failed {
		os.Exit(1)
	}
}
