// Command benchtables regenerates the paper's evaluation tables and
// figures from the simulator.
//
// Usage:
//
//	benchtables              # run everything
//	benchtables -only fig9   # one experiment
//	benchtables -list        # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"gemini/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment by ID (e.g. fig9, table1, ablation-gamma)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	flag.Parse()

	if *list {
		for _, e := range append(experiments.All(), experiments.Ablations()...) {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}
	run := experiments.All()
	if *ablations {
		run = append(run, experiments.Ablations()...)
	}
	if *only != "" {
		e, err := experiments.ByID(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		run = []experiments.Experiment{e}
	}
	for _, e := range run {
		fmt.Printf("== %s — %s ==\n", e.ID, e.Title)
		out, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}
