// Command benchtables regenerates the paper's evaluation tables and
// figures from the simulator. Experiments run concurrently (they are
// independent), so the full sweep is bounded by the slowest experiment;
// output is still printed in paper order.
//
// Usage:
//
//	benchtables              # run everything
//	benchtables -only fig9   # one experiment
//	benchtables -list        # list experiment IDs
//	benchtables -workers 1   # serial run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"gemini/internal/experiments"
	"gemini/internal/simclock"
	"gemini/internal/trace"
)

func main() {
	only := flag.String("only", "", "run a single experiment by ID (e.g. fig9, table1, ablation-gamma)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	workers := flag.Int("workers", 0, "number of concurrent experiments (0 = GOMAXPROCS)")
	traceOut := flag.String("trace", "", "write a wall-clock Chrome trace of the experiment sweep to this file")
	flag.Parse()

	if *list {
		for _, e := range append(experiments.All(), experiments.Ablations()...) {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}
	run := experiments.All()
	if *ablations {
		run = append(run, experiments.Ablations()...)
	}
	if *only != "" {
		e, err := experiments.ByID(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		run = []experiments.Experiment{e}
	}
	// With -trace, each experiment gets its own tracer (experiments run
	// concurrently; tracers are per-run sinks) recording a wall-clock span
	// per experiment; the sinks merge into one timeline at export.
	var tracers []*trace.Tracer
	if *traceOut != "" {
		epoch := time.Now()
		now := func() simclock.Time { return simclock.Time(time.Since(epoch).Seconds()) }
		for i := range run {
			tr := trace.NewTracer(now)
			tracers = append(tracers, tr)
			tk := tr.Track("benchtables", run[i].ID)
			inner := run[i].Run
			id := run[i].ID
			run[i].Run = func() (string, error) {
				tk.Begin(trace.CatExperiments, id)
				defer tk.End()
				return inner()
			}
		}
	}

	failed := false
	for _, r := range experiments.RunAll(context.Background(), run, *workers) {
		fmt.Printf("== %s — %s ==\n", r.ID, r.Title)
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, r.Err)
			failed = true
			continue
		}
		fmt.Println(r.Output)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		werr := trace.WriteJSON(f, tracers...)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fmt.Printf("trace: wrote %s (%d experiments); load it at ui.perfetto.dev\n", *traceOut, len(tracers))
	}
	if failed {
		os.Exit(1)
	}
}
