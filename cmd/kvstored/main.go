// Command kvstored serves the GEMINI coordination key-value store (the
// etcd stand-in of §3.2) over TCP with a line-oriented protocol:
//
//	PUT <key> <value> [lease]    GET <key>           DEL <key>
//	CAS <key> <rev> <value> [l]  RANGE [prefix]      REV
//	GRANT <ttl-seconds>          KEEPALIVE <lease>   REVOKE <lease>
//	WATCH [prefix]               (streams EVENT lines on the connection)
//
// Try it:
//
//	kvstored -addr 127.0.0.1:2379 &
//	printf 'PUT hello world\nGET hello\n' | nc 127.0.0.1 2379
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"gemini/internal/kvstore"
	"gemini/internal/simclock"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:2379", "listen address")
	flag.Parse()

	start := time.Now()
	store := kvstore.New(func() simclock.Time {
		return simclock.Time(time.Since(start).Seconds())
	})
	srv, err := kvstore.NewServer(store, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("kvstored listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
