package gemini

import (
	"math"
	"testing"
)

// The facade tests exercise the README quickstart path end to end.

func TestQuickstartPath(t *testing.T) {
	job, err := NewJob(JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16})
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	if iter := job.Timeline.Iteration.Seconds(); iter < 55 || iter > 70 {
		t.Fatalf("iteration %.1fs, want ≈62s", iter)
	}
	if p := job.RecoveryProbability(2); math.Abs(p-0.933) > 0.01 {
		t.Fatalf("recovery probability %.3f, want 0.933", p)
	}
	res, err := job.ExecuteScheme(SchemeGemini)
	if err != nil {
		t.Fatal(err)
	}
	if ov := res.Overhead(); ov > 0.02 {
		t.Fatalf("overhead %.2f%%, want ≈0", ov*100)
	}
}

func TestCatalogsExposed(t *testing.T) {
	if len(Models()) != 8 {
		t.Fatalf("Models() has %d rows, want 8 (Table 2)", len(Models()))
	}
	if len(Instances()) != 7 {
		t.Fatalf("Instances() has %d rows, want 7 (Table 1)", len(Instances()))
	}
}

func TestPlacementHelpersExposed(t *testing.T) {
	p, err := NewPlacement(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRingPlacement(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	pg := RecoveryProbabilityExact(p, 3)
	pr := RecoveryProbabilityExact(r, 3)
	if pg <= pr {
		t.Fatalf("group %v should beat ring %v", pg, pr)
	}
	c, err := Corollary1(16, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-0.8) > 1e-9 {
		t.Fatalf("Corollary1 = %v, want 0.8", c)
	}
	if mc := RecoveryProbabilityMonteCarlo(p, 3, 50_000, 1); math.Abs(mc-pg) > 0.02 {
		t.Fatalf("Monte Carlo %v far from exact %v", mc, pg)
	}
}

func TestParallelismExtensionExposed(t *testing.T) {
	job, err := NewJob(JobSpec{
		Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: 16,
		Parallelism: ParallelismData,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !job.Plan.Fits {
		t.Fatal("data-parallel idle time should absorb the checkpoint")
	}
	// The fluid interference executor is ZeRO-3-specific.
	if _, err := job.ExecuteScheme(SchemeGemini); err == nil {
		t.Fatal("executor accepted a non-ZeRO-3 job")
	}
}

func TestOptionsOverrideSpecFields(t *testing.T) {
	job, err := NewJob(JobSpec{Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: 16},
		WithReplicas(3),
		WithRemoteBandwidth(5e9),
		WithParallelism(ParallelismData),
	)
	if err != nil {
		t.Fatal(err)
	}
	if job.Spec.Replicas != 3 || job.Spec.RemoteBandwidth != 5e9 || job.Spec.Parallelism != ParallelismData {
		t.Fatalf("options not applied: %+v", job.Spec)
	}
	if job.Placement.M != 3 {
		t.Fatalf("placement built with m=%d, want 3", job.Placement.M)
	}
}

func TestFaultScheduleValidatedAtJobConstruction(t *testing.T) {
	bad := FaultSchedule{{At: 10, Kind: FaultPartitionHeal}} // heal with no open partition
	if _, err := NewJob(JobSpec{Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: 16},
		WithFaults(bad)); err == nil {
		t.Fatal("invalid fault schedule accepted")
	}
	// Out-of-range rank for this cluster size.
	oob := FaultSchedule{{At: 0, Kind: FaultCrash, Ranks: []int{99}, Machine: HardwareFailure}}
	if _, err := NewJob(JobSpec{Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: 16},
		WithFaults(oob)); err == nil {
		t.Fatal("out-of-range fault rank accepted")
	}
}

func TestFaultsArmAgainstRecoverySystem(t *testing.T) {
	sched, err := Faults().
		Crash(Time(200*Second), 5, HardwareFailure).
		Build(16)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(JobSpec{Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: 16},
		WithFaults(sched))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultCloudConfig()
	cfg.Standby = 1
	engine, sys, err := job.RecoverySystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	engine.Run(Time(40 * job.Timeline.Iteration))
	if sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1 from the armed schedule", sys.Recoveries())
	}
	if evs := sys.Log().Filter("failure"); len(evs) != 1 {
		t.Fatalf("%d injections traced, want 1", len(evs))
	}
	if !sys.Training() {
		t.Fatal("training did not resume after the armed fault")
	}
}

func TestRackAwarePlacementExposed(t *testing.T) {
	aligned, err := NewPlacement(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	rackAware, err := NewRackAwarePlacement(16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	racks, err := Racks(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(racks) != 8 {
		t.Fatalf("%d racks, want 8", len(racks))
	}
	pa, err := CorrelatedRecoveryProbability(aligned, racks, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := CorrelatedRecoveryProbability(rackAware, racks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 0 || pr != 1 {
		t.Fatalf("single-rack loss: aligned %v (want 0), rack-aware %v (want 1)", pa, pr)
	}
	// Under independent failures the two layouts are indistinguishable.
	if a, r := RecoveryProbabilityExact(aligned, 2), RecoveryProbabilityExact(rackAware, 2); a != r {
		t.Fatalf("independent k=2: aligned %v != rack-aware %v", a, r)
	}
}

func TestFailureHelpersExposed(t *testing.T) {
	fs, err := FixedFailureRate(16, 4, 0.5, Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 4 {
		t.Fatalf("%d failures, want 4", len(fs))
	}
	m := OPTFailureModel()
	if m.PerInstancePerDay != 0.015 {
		t.Fatal("OPT model rate wrong")
	}
	cc := DefaultCloudConfig()
	if cc.ProvisionMin != 4*Minute {
		t.Fatal("cloud config wrong")
	}
}

func TestFailSetKernelExposed(t *testing.T) {
	p, err := NewPlacement(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	set := NewFailSet(16)
	// Ranks 0 and 1 form a group under Algorithm 1 at N=16, m=2: losing
	// both erases their shards; losing 0 and 2 does not.
	set.Set(0)
	set.Set(2)
	if !p.SurvivesFailed([]int{0, 2}, set) {
		t.Fatal("cross-group pair should survive")
	}
	set.Clear(2)
	set.Set(1)
	if p.SurvivesFailed([]int{0, 1}, set) {
		t.Fatal("whole-group failure should not survive")
	}
	if !p.Survives(map[int]bool{0: true, 2: true}) {
		t.Fatal("map wrapper should agree")
	}
}
