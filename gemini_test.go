package gemini

import (
	"math"
	"testing"
)

// The facade tests exercise the README quickstart path end to end.

func TestQuickstartPath(t *testing.T) {
	job, err := NewJob(JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16})
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	if iter := job.Timeline.Iteration.Seconds(); iter < 55 || iter > 70 {
		t.Fatalf("iteration %.1fs, want ≈62s", iter)
	}
	if p := job.RecoveryProbability(2); math.Abs(p-0.933) > 0.01 {
		t.Fatalf("recovery probability %.3f, want 0.933", p)
	}
	res, err := job.ExecuteScheme(SchemeGemini)
	if err != nil {
		t.Fatal(err)
	}
	if ov := res.Overhead(); ov > 0.02 {
		t.Fatalf("overhead %.2f%%, want ≈0", ov*100)
	}
}

func TestCatalogsExposed(t *testing.T) {
	if len(Models()) != 8 {
		t.Fatalf("Models() has %d rows, want 8 (Table 2)", len(Models()))
	}
	if len(Instances()) != 7 {
		t.Fatalf("Instances() has %d rows, want 7 (Table 1)", len(Instances()))
	}
}

func TestPlacementHelpersExposed(t *testing.T) {
	p, err := NewPlacement(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRingPlacement(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	pg := RecoveryProbabilityExact(p, 3)
	pr := RecoveryProbabilityExact(r, 3)
	if pg <= pr {
		t.Fatalf("group %v should beat ring %v", pg, pr)
	}
	c, err := Corollary1(16, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-0.8) > 1e-9 {
		t.Fatalf("Corollary1 = %v, want 0.8", c)
	}
	if mc := RecoveryProbabilityMonteCarlo(p, 3, 50_000, 1); math.Abs(mc-pg) > 0.02 {
		t.Fatalf("Monte Carlo %v far from exact %v", mc, pg)
	}
}

func TestParallelismExtensionExposed(t *testing.T) {
	job, err := NewJob(JobSpec{
		Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: 16,
		Parallelism: ParallelismData,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !job.Plan.Fits {
		t.Fatal("data-parallel idle time should absorb the checkpoint")
	}
	// The fluid interference executor is ZeRO-3-specific.
	if _, err := job.ExecuteScheme(SchemeGemini); err == nil {
		t.Fatal("executor accepted a non-ZeRO-3 job")
	}
}

func TestFailureHelpersExposed(t *testing.T) {
	fs, err := FixedFailureRate(16, 4, 0.5, Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 4 {
		t.Fatalf("%d failures, want 4", len(fs))
	}
	m := OPTFailureModel()
	if m.PerInstancePerDay != 0.015 {
		t.Fatal("OPT model rate wrong")
	}
	cc := DefaultCloudConfig()
	if cc.ProvisionMin != 4*Minute {
		t.Fatal("cloud config wrong")
	}
}
