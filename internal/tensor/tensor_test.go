package tensor

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleState() *State {
	return &State{
		Iteration: 310,
		Shard:     3,
		Tensors: []Tensor{
			{Name: "layer.0.weight", DType: FP32, Shape: []int64{4, 2}, Data: make([]byte, 32)},
			{Name: "layer.0.bias", DType: FP16, Shape: []int64{8}, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}},
			{Name: "step", DType: INT64, Shape: []int64{1}, Data: make([]byte, 8)},
		},
	}
}

func TestDTypeSizes(t *testing.T) {
	cases := map[DType]int{FP32: 4, FP16: 2, BF16: 2, INT64: 8}
	for d, want := range cases {
		if d.Size() != want {
			t.Errorf("%v.Size() = %d, want %d", d, d.Size(), want)
		}
	}
	names := map[DType]string{FP32: "fp32", FP16: "fp16", BF16: "bf16", INT64: "int64"}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%v name wrong", d)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown dtype Size did not panic")
		}
	}()
	DType(99).Size()
}

func TestTensorValidate(t *testing.T) {
	good := Tensor{Name: "w", DType: FP32, Shape: []int64{2, 3}, Data: make([]byte, 24)}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid tensor rejected: %v", err)
	}
	bad := []Tensor{
		{Name: "", DType: FP32, Shape: []int64{1}, Data: make([]byte, 4)},
		{Name: "w", DType: FP32, Shape: []int64{-1}, Data: nil},
		{Name: "w", DType: FP32, Shape: []int64{2}, Data: make([]byte, 7)},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad tensor %d accepted", i)
		}
	}
}

func TestStateValidateRejectsDuplicates(t *testing.T) {
	s := sampleState()
	s.Tensors = append(s.Tensors, s.Tensors[0])
	if err := s.Validate(); err == nil {
		t.Fatal("duplicate tensor names accepted")
	}
}

func TestStateBytesAndFind(t *testing.T) {
	s := sampleState()
	if got := s.Bytes(); got != 32+16+8 {
		t.Fatalf("Bytes = %d, want 56", got)
	}
	if s.Find("layer.0.bias") == nil {
		t.Fatal("Find missed existing tensor")
	}
	if s.Find("nope") != nil {
		t.Fatal("Find invented a tensor")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := sampleState()
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Tensors[0].Data[0] = 0xFF
	c.Tensors[0].Shape[0] = 99
	if s.Tensors[0].Data[0] == 0xFF || s.Tensors[0].Shape[0] == 99 {
		t.Fatal("clone shares storage with original")
	}
	if s.Equal(c) {
		t.Fatal("mutated clone still equal")
	}
}

func TestEqualDiscriminates(t *testing.T) {
	s := sampleState()
	cases := []func(*State){
		func(o *State) { o.Iteration++ },
		func(o *State) { o.Shard++ },
		func(o *State) { o.Tensors = o.Tensors[:2] },
		func(o *State) { o.Tensors[1].Name = "x" },
		func(o *State) { o.Tensors[1].DType = BF16 },
		func(o *State) { o.Tensors[0].Shape = []int64{2, 4} },
		func(o *State) { o.Tensors[1].Data[3] ^= 1 },
	}
	for i, mutate := range cases {
		o := s.Clone()
		mutate(o)
		if s.Equal(o) {
			t.Errorf("mutation %d not detected by Equal", i)
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	s := sampleState()
	base := s.Fingerprint()
	o := s.Clone()
	o.Tensors[0].Data[5] ^= 0x80
	if o.Fingerprint() == base {
		t.Fatal("fingerprint ignored data flip")
	}
	o2 := s.Clone()
	o2.Iteration = 311
	if o2.Fingerprint() == base {
		t.Fatal("fingerprint ignored iteration change")
	}
	if s.Clone().Fingerprint() != base {
		t.Fatal("fingerprint not deterministic")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleState()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if int64(buf.Len()) != EncodedSize(s) {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", buf.Len(), EncodedSize(s))
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !s.Equal(got) {
		t.Fatal("round trip changed state")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	s := sampleState()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	raw := buf.Bytes()

	// Flip one byte at several positions; decode must fail with ErrCorrupt
	// (or at minimum not return a state equal to the original).
	for _, pos := range []int{0, 8, 20, len(raw) / 2, len(raw) - 2} {
		cp := append([]byte(nil), raw...)
		cp[pos] ^= 0xA5
		got, err := Decode(bytes.NewReader(cp))
		if err == nil && got.Equal(s) {
			t.Errorf("flip at %d silently accepted", pos)
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Errorf("flip at %d: error %v does not wrap ErrCorrupt", pos, err)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	s := sampleState()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{0, 4, 8, 16, len(raw) / 2, len(raw) - 1} {
		if _, err := Decode(bytes.NewReader(raw[:n])); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestEncodeRejectsInvalidState(t *testing.T) {
	s := sampleState()
	s.Tensors[0].Data = s.Tensors[0].Data[:5]
	var buf bytes.Buffer
	if err := Encode(&buf, s); err == nil {
		t.Fatal("invalid state encoded")
	}
}

func TestSyntheticStateDeterministic(t *testing.T) {
	a := NewSyntheticState(100, 3, 1<<16, 42)
	b := NewSyntheticState(100, 3, 1<<16, 42)
	if !a.Equal(b) {
		t.Fatal("same seed produced different states")
	}
	c := NewSyntheticState(100, 3, 1<<16, 43)
	if a.Equal(c) {
		t.Fatal("different seed produced identical states")
	}
	d := NewSyntheticState(101, 3, 1<<16, 42)
	if a.Equal(d) {
		t.Fatal("different iteration produced identical states")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("synthetic state invalid: %v", err)
	}
	if a.Bytes() == 0 || a.Bytes() > 1<<16 {
		t.Fatalf("synthetic state %d bytes, want (0, %d]", a.Bytes(), 1<<16)
	}
	if len(a.Tensors) != 3 {
		t.Fatalf("synthetic state has %d tensors, want 3 (params + 2 moments)", len(a.Tensors))
	}
}

func TestCostModelCalibration(t *testing.T) {
	m := DefaultCostModel()
	// Two replicas of a 16-machine GPT-2 100B shard: 2 × 75 GB at the
	// calibrated rate should take ≈161 s (the paper reports 162 s).
	shard := 1.2e12 / 16
	got := m.SerializeTime(2 * shard).Seconds()
	if math.Abs(got-162) > 10 {
		t.Errorf("serialize(2 shards) = %.0fs, want ≈162s", got)
	}
	// One shard ≈ 81 s (HighFreq's per-checkpoint serialization).
	got = m.SerializeTime(shard).Seconds()
	if math.Abs(got-81) > 5 {
		t.Errorf("serialize(1 shard) = %.0fs, want ≈81s", got)
	}
	if m.DeserializeTime(shard) >= m.SerializeTime(shard) {
		t.Error("deserialize should be faster than serialize")
	}
	zero := CostModel{}
	if zero.SerializeTime(1e9) != 0 || zero.DeserializeTime(1e9) != 0 {
		t.Error("zero cost model should cost nothing")
	}
}

// Property: encode→decode is the identity on randomly generated states.
func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(seed int64, iter uint16, shard uint8, size uint16) bool {
		s := NewSyntheticState(int64(iter), int(shard), int64(size), seed)
		var buf bytes.Buffer
		if err := Encode(&buf, s); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return got.Equal(s) && got.Fingerprint() == s.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: any single random byte flip in the encoding is either detected
// or yields a state identical to the original (flips in dead padding do
// not exist in this format, but equality is the safety condition).
func TestPropertyCorruptionDetected(t *testing.T) {
	s := NewSyntheticState(7, 1, 4096, 99)
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	f := func(posRaw uint16, bit uint8) bool {
		pos := int(posRaw) % len(raw)
		cp := append([]byte(nil), raw...)
		cp[pos] ^= 1 << (bit % 8)
		got, err := Decode(bytes.NewReader(cp))
		if err != nil {
			return true
		}
		return got.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(1)),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestElems(t *testing.T) {
	tt := Tensor{Shape: []int64{3, 4, 5}}
	if tt.Elems() != 60 {
		t.Fatalf("Elems = %d, want 60", tt.Elems())
	}
	scalar := Tensor{Shape: nil}
	if scalar.Elems() != 1 {
		t.Fatalf("scalar Elems = %d, want 1", scalar.Elems())
	}
}

func TestNegativeSyntheticSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	NewSyntheticState(0, 0, -1, 0)
}
