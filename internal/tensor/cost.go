package tensor

import "gemini/internal/simclock"

// CostModel captures the time cost of checkpoint (de)serialization — the
// torch.save/torch.load blocking work the paper measures in §7.3:
// serializing two replicas of a GPT-2 100B machine shard (2 × 75 GB) took
// 162 s, and HighFreq's single-shard serialization took 81 s, both
// implying roughly 0.93 GB/s per machine.
type CostModel struct {
	// SerializeBytesPerSec is the torch.save throughput per machine.
	SerializeBytesPerSec float64
	// DeserializeBytesPerSec is the torch.load throughput per machine.
	DeserializeBytesPerSec float64
}

// DefaultCostModel is calibrated to the paper's measurements.
func DefaultCostModel() CostModel {
	return CostModel{
		SerializeBytesPerSec:   0.93e9,
		DeserializeBytesPerSec: 1.5e9, // loads are lighter than saves
	}
}

// SerializeTime returns how long serializing the given bytes takes.
func (m CostModel) SerializeTime(bytes float64) simclock.Duration {
	if m.SerializeBytesPerSec <= 0 {
		return 0
	}
	return simclock.Duration(bytes / m.SerializeBytesPerSec)
}

// DeserializeTime returns how long loading the given bytes takes.
func (m CostModel) DeserializeTime(bytes float64) simclock.Duration {
	if m.DeserializeBytesPerSec <= 0 {
		return 0
	}
	return simclock.Duration(bytes / m.DeserializeBytesPerSec)
}
