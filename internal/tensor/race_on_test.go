//go:build race

package tensor

// raceEnabled reports whether the race detector is instrumenting this
// build; its bookkeeping inflates allocation counts.
const raceEnabled = true
