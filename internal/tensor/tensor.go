// Package tensor represents model states — the learnable parameters and
// optimizer moments that a checkpoint captures — as named, typed tensors,
// and provides the binary serialization GEMINI uses in place of
// torch.save/torch.load. Checkpoint integrity across failures is verified
// through per-tensor and whole-state checksums.
package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
)

// DType is the element type of a tensor.
type DType uint8

const (
	FP32 DType = iota
	FP16
	BF16
	INT64
)

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case FP32:
		return 4
	case FP16, BF16:
		return 2
	case INT64:
		return 8
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %d", uint8(d)))
	}
}

func (d DType) String() string {
	switch d {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	case BF16:
		return "bf16"
	case INT64:
		return "int64"
	default:
		return fmt.Sprintf("DType(%d)", uint8(d))
	}
}

// Tensor is a named block of typed data.
type Tensor struct {
	Name  string
	DType DType
	Shape []int64
	Data  []byte
}

// Elems returns the number of elements implied by the shape.
func (t *Tensor) Elems() int64 {
	n := int64(1)
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Validate checks that the data length matches shape × dtype.
func (t *Tensor) Validate() error {
	if t.Name == "" {
		return errors.New("tensor: empty tensor name")
	}
	for _, d := range t.Shape {
		if d < 0 {
			return fmt.Errorf("tensor: %s has negative dimension %d", t.Name, d)
		}
	}
	want := t.Elems() * int64(t.DType.Size())
	if int64(len(t.Data)) != want {
		return fmt.Errorf("tensor: %s has %d data bytes, shape wants %d", t.Name, len(t.Data), want)
	}
	return nil
}

// Checksum returns the CRC-32C of the tensor's data.
func (t *Tensor) Checksum() uint32 {
	return crc32.Checksum(t.Data, castagnoli)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// State is a complete set of model states for one shard: the unit GEMINI
// checkpoints. Iteration stamps which training step the state belongs to;
// all shards of a consistent checkpoint carry the same iteration.
type State struct {
	Iteration int64
	Shard     int // which machine rank this shard belongs to
	Tensors   []Tensor
}

// Bytes returns the total data payload in bytes (excluding metadata).
func (s *State) Bytes() int64 {
	var n int64
	for i := range s.Tensors {
		n += int64(len(s.Tensors[i].Data))
	}
	return n
}

// Validate checks every tensor and that names are unique.
func (s *State) Validate() error {
	seen := make(map[string]bool, len(s.Tensors))
	for i := range s.Tensors {
		t := &s.Tensors[i]
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.Name] {
			return fmt.Errorf("tensor: duplicate tensor name %q", t.Name)
		}
		seen[t.Name] = true
	}
	return nil
}

// Fingerprint returns a checksum over the entire state, including
// iteration, shard, names, shapes and data. Two states are
// interchangeable for recovery iff their fingerprints match.
func (s *State) Fingerprint() uint32 {
	h := crc32.New(castagnoli)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(s.Iteration))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(s.Shard))
	h.Write(buf[:])
	for i := range s.Tensors {
		t := &s.Tensors[i]
		h.Write([]byte(t.Name))
		h.Write([]byte{byte(t.DType)})
		for _, d := range t.Shape {
			binary.LittleEndian.PutUint64(buf[:], uint64(d))
			h.Write(buf[:])
		}
		h.Write(t.Data)
	}
	return h.Sum32()
}

// Find returns the tensor with the given name, or nil.
func (s *State) Find(name string) *Tensor {
	for i := range s.Tensors {
		if s.Tensors[i].Name == name {
			return &s.Tensors[i]
		}
	}
	return nil
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	out := &State{Iteration: s.Iteration, Shard: s.Shard, Tensors: make([]Tensor, len(s.Tensors))}
	for i := range s.Tensors {
		t := s.Tensors[i]
		out.Tensors[i] = Tensor{
			Name:  t.Name,
			DType: t.DType,
			Shape: append([]int64(nil), t.Shape...),
			Data:  append([]byte(nil), t.Data...),
		}
	}
	return out
}

// Equal reports whether two states are byte-for-byte identical.
func (s *State) Equal(o *State) bool {
	if s.Iteration != o.Iteration || s.Shard != o.Shard || len(s.Tensors) != len(o.Tensors) {
		return false
	}
	for i := range s.Tensors {
		a, b := &s.Tensors[i], &o.Tensors[i]
		if a.Name != b.Name || a.DType != b.DType || len(a.Shape) != len(b.Shape) {
			return false
		}
		for j := range a.Shape {
			if a.Shape[j] != b.Shape[j] {
				return false
			}
		}
		if string(a.Data) != string(b.Data) {
			return false
		}
	}
	return true
}

// NewSyntheticState builds a deterministic pseudo-random model-state shard
// of approximately targetBytes, structured like a ZeRO-3 shard: fp32
// master parameters and two fp32 Adam moments in equal thirds. The same
// (iteration, shard, seed) always yields identical contents, so recovery
// tests can verify byte-exact restoration.
func NewSyntheticState(iteration int64, shard int, targetBytes int64, seed int64) *State {
	if targetBytes < 0 {
		panic(fmt.Sprintf("tensor: negative target size %d", targetBytes))
	}
	rng := rand.New(rand.NewSource(seed ^ iteration<<20 ^ int64(shard)<<40))
	elemsPerPart := targetBytes / 3 / 4 // three fp32 tensors
	mk := func(name string) Tensor {
		data := make([]byte, elemsPerPart*4)
		for i := int64(0); i < elemsPerPart; i++ {
			binary.LittleEndian.PutUint32(data[i*4:], math.Float32bits(rng.Float32()))
		}
		return Tensor{Name: name, DType: FP32, Shape: []int64{elemsPerPart}, Data: data}
	}
	return &State{
		Iteration: iteration,
		Shard:     shard,
		Tensors: []Tensor{
			mk("optimizer.master_params"),
			mk("optimizer.exp_avg"),
			mk("optimizer.exp_avg_sq"),
		},
	}
}
