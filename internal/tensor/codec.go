package tensor

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strings"
	"sync"

	"gemini/internal/parallel"
)

// Binary checkpoint format, the stand-in for torch.save/torch.load:
//
//	magic   [8]byte  "GEMCKPT1"
//	iter    int64
//	shard   int64
//	ntensor uint32
//	tensors:
//	  nameLen uint16, name, dtype uint8, ndim uint8, dims []int64,
//	  dataLen uint64, data, crc32c(data) uint32
//	footer  crc32c of everything after the magic, uint32
//
// Every length is validated against hard limits during decode so that a
// truncated or corrupted checkpoint is detected rather than misread —
// GEMINI must never resume training from a half-written checkpoint.
//
// The codec is pooled and allocation-free on its hot path: encodings are
// assembled in a sync.Pool-backed buffer pre-sized by EncodedSize and
// written to w in a single call, per-tensor CRC32Cs are computed
// concurrently for large states, and decodes reuse pooled bufio.Readers.
// The wire format is byte-identical to the original streaming encoder
// (pinned by TestEncodeGoldenBytes).

var magic = [8]byte{'G', 'E', 'M', 'C', 'K', 'P', 'T', '1'}

const (
	maxTensors    = 1 << 20
	maxNameLen    = 1 << 12
	maxDims       = 16
	maxTensorData = int64(1) << 40

	// streamBufSize is the bufio buffer size for the streaming fallback
	// paths (encodings too large to pool).
	streamBufSize = 1 << 16
	// maxPooledEncodeBytes caps the output buffers the encoder retains in
	// its pool; larger encodings stream through a pooled bufio.Writer
	// instead of holding tens of megabytes in the pool.
	maxPooledEncodeBytes = 1 << 26
	// concurrentCRCBytes is the payload size at which per-tensor CRCs are
	// computed across goroutines rather than inline.
	concurrentCRCBytes = 1 << 20
)

// ErrCorrupt is wrapped by all decode failures caused by damaged input.
var ErrCorrupt = errors.New("tensor: corrupt checkpoint")

var (
	encBufPool = sync.Pool{New: func() any { b := make([]byte, 0, streamBufSize); return &b }}
	crcPool    = sync.Pool{New: func() any { c := make([]uint32, 0, 16); return &c }}
	writerPool = sync.Pool{New: func() any { return bufio.NewWriterSize(io.Discard, streamBufSize) }}
)

// drained is the placeholder source pooled readers are parked on so they
// never retain a caller's reader.
var drained = strings.NewReader("")

// tensorChecksums fills crcs[i] with tensor i's data CRC32C, hashing
// concurrently when the payload is large enough to amortize the workers.
func tensorChecksums(s *State, crcs []uint32) {
	workers := 1
	if len(s.Tensors) > 1 && s.Bytes() >= concurrentCRCBytes {
		workers = 0 // GOMAXPROCS
	}
	parallel.ForEach(workers, len(s.Tensors), func(i int) {
		crcs[i] = crc32.Checksum(s.Tensors[i].Data, castagnoli)
	})
}

// checkEncodeLimits rejects states the wire format cannot represent,
// before a single byte is written.
func checkEncodeLimits(s *State) error {
	for i := range s.Tensors {
		t := &s.Tensors[i]
		if len(t.Name) > maxNameLen {
			return fmt.Errorf("tensor: name %q exceeds %d bytes", t.Name[:32], maxNameLen)
		}
		if len(t.Shape) > maxDims {
			return fmt.Errorf("tensor: %s has %d dims, max %d", t.Name, len(t.Shape), maxDims)
		}
	}
	return nil
}

// Encode serializes the state to w. Small and medium states (up to
// maxPooledEncodeBytes) are assembled in a pooled buffer sized exactly by
// EncodedSize and handed to w in one Write — nothing reaches w unless the
// whole encoding succeeded; larger states stream through a pooled
// bufio.Writer.
func Encode(w io.Writer, s *State) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if err := checkEncodeLimits(s); err != nil {
		return err
	}
	cp := crcPool.Get().(*[]uint32)
	crcs := *cp
	if cap(crcs) < len(s.Tensors) {
		crcs = make([]uint32, len(s.Tensors))
	} else {
		crcs = crcs[:len(s.Tensors)]
	}
	defer func() {
		*cp = crcs[:0]
		crcPool.Put(cp)
	}()
	tensorChecksums(s, crcs)
	if size := EncodedSize(s); size <= maxPooledEncodeBytes {
		return encodeBuffered(w, s, int(size), crcs)
	}
	return encodeStreaming(w, s, crcs)
}

// encodeBuffered writes the entire encoding into a pooled buffer of the
// exact final size and flushes it with a single w.Write.
func encodeBuffered(w io.Writer, s *State, size int, crcs []uint32) error {
	bp := encBufPool.Get().(*[]byte)
	buf := *bp
	if cap(buf) < size {
		buf = make([]byte, size)
	} else {
		buf = buf[:size]
	}
	defer func() {
		*bp = buf[:0]
		encBufPool.Put(bp)
	}()

	copy(buf, magic[:])
	off := len(magic)
	binary.LittleEndian.PutUint64(buf[off:], uint64(s.Iteration))
	binary.LittleEndian.PutUint64(buf[off+8:], uint64(s.Shard))
	binary.LittleEndian.PutUint32(buf[off+16:], uint32(len(s.Tensors)))
	off += 20
	for i := range s.Tensors {
		t := &s.Tensors[i]
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(t.Name)))
		off += 2
		off += copy(buf[off:], t.Name)
		buf[off] = byte(t.DType)
		buf[off+1] = byte(len(t.Shape))
		off += 2
		for _, d := range t.Shape {
			binary.LittleEndian.PutUint64(buf[off:], uint64(d))
			off += 8
		}
		binary.LittleEndian.PutUint64(buf[off:], uint64(len(t.Data)))
		off += 8
		off += copy(buf[off:], t.Data)
		binary.LittleEndian.PutUint32(buf[off:], crcs[i])
		off += 4
	}
	// Footer: CRC of everything after the magic, per-tensor CRCs included.
	binary.LittleEndian.PutUint32(buf[off:], crc32.Checksum(buf[len(magic):off], castagnoli))
	_, err := w.Write(buf)
	return err
}

// crcWriter folds everything written through it into a running CRC32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

// encodeStreaming handles encodings too large to pool, streaming through
// a pooled bufio.Writer.
func encodeStreaming(w io.Writer, s *State, crcs []uint32) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	cw := &crcWriter{w: w}
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(cw)
	defer func() {
		bw.Reset(io.Discard)
		writerPool.Put(bw)
	}()

	var scratch [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		bw.Write(scratch[:8])
	}
	writeU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		bw.Write(scratch[:4])
	}

	writeU64(uint64(s.Iteration))
	writeU64(uint64(s.Shard))
	writeU32(uint32(len(s.Tensors)))
	for i := range s.Tensors {
		t := &s.Tensors[i]
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(t.Name)))
		bw.Write(scratch[:2])
		bw.WriteString(t.Name)
		bw.WriteByte(byte(t.DType))
		bw.WriteByte(byte(len(t.Shape)))
		for _, d := range t.Shape {
			writeU64(uint64(d))
		}
		writeU64(uint64(len(t.Data)))
		bw.Write(t.Data)
		writeU32(crcs[i])
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], cw.crc)
	_, err := w.Write(foot[:])
	return err
}

// decoder bundles every piece of decode scratch state — the buffered
// reader, fixed-size read buffers, and the per-tensor CRC and mismatch
// slices — into one pooled object, so a steady-state Decode allocates
// nothing beyond the tensors it returns.
type decoder struct {
	br      *bufio.Reader
	scratch [8]byte
	nameBuf [maxNameLen]byte
	crcs    []uint32
	bad     []bool
}

var decoderPool = sync.Pool{New: func() any {
	return &decoder{br: bufio.NewReaderSize(drained, streamBufSize)}
}}

func (d *decoder) readU64() (uint64, error) {
	if _, err := io.ReadFull(d.br, d.scratch[:8]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(d.scratch[:8]), nil
}

func (d *decoder) readU32() (uint32, error) {
	if _, err := io.ReadFull(d.br, d.scratch[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(d.scratch[:4]), nil
}

func (d *decoder) readU16() (uint16, error) {
	if _, err := io.ReadFull(d.br, d.scratch[:2]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(d.scratch[:2]), nil
}

// Decode reads a state from r, verifying all checksums. All scratch
// state — the buffered reader, read buffers, CRC bookkeeping — comes
// from a pooled decoder, and per-tensor CRC verification runs
// concurrently for large states.
func Decode(r io.Reader) (*State, error) {
	d := decoderPool.Get().(*decoder)
	d.br.Reset(r)
	s, err := d.decodeAll()
	d.br.Reset(drained)
	d.crcs = d.crcs[:0]
	decoderPool.Put(d)
	return s, err
}

// decodeAll parses the magic and everything after it.
func (d *decoder) decodeAll() (*State, error) {
	br := d.br
	if _, err := io.ReadFull(br, d.scratch[:8]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrCorrupt, err)
	}
	if d.scratch != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, d.scratch[:8])
	}
	// body is the running CRC32C of the raw bytes between the magic and
	// the footer, folded in as each field is read — the exact bytes the
	// encoder hashed, with no re-serialization pass at the end.
	body := uint32(0)
	iter, err := d.readU64()
	if err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	body = crc32.Update(body, castagnoli, d.scratch[:8])
	shard, err := d.readU64()
	if err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	body = crc32.Update(body, castagnoli, d.scratch[:8])
	n, err := d.readU32()
	if err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	body = crc32.Update(body, castagnoli, d.scratch[:4])
	if n > maxTensors {
		return nil, fmt.Errorf("%w: %d tensors exceeds limit", ErrCorrupt, n)
	}
	d.crcs = d.crcs[:0]
	s := &State{Iteration: int64(iter), Shard: int(shard), Tensors: make([]Tensor, 0, n)}
	for i := uint32(0); i < n; i++ {
		nameLen, err := d.readU16()
		if err != nil {
			return nil, fmt.Errorf("%w: tensor %d: %v", ErrCorrupt, i, err)
		}
		body = crc32.Update(body, castagnoli, d.scratch[:2])
		if int(nameLen) > maxNameLen {
			return nil, fmt.Errorf("%w: tensor %d name length %d", ErrCorrupt, i, nameLen)
		}
		if _, err := io.ReadFull(br, d.nameBuf[:nameLen]); err != nil {
			return nil, fmt.Errorf("%w: tensor %d name: %v", ErrCorrupt, i, err)
		}
		body = crc32.Update(body, castagnoli, d.nameBuf[:nameLen])
		dtypeB, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: tensor %d dtype: %v", ErrCorrupt, i, err)
		}
		if DType(dtypeB) > INT64 {
			return nil, fmt.Errorf("%w: tensor %d bad dtype %d", ErrCorrupt, i, dtypeB)
		}
		ndim, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: tensor %d ndim: %v", ErrCorrupt, i, err)
		}
		if int(ndim) > maxDims {
			return nil, fmt.Errorf("%w: tensor %d has %d dims", ErrCorrupt, i, ndim)
		}
		d.scratch[0], d.scratch[1] = dtypeB, ndim
		body = crc32.Update(body, castagnoli, d.scratch[:2])
		shape := make([]int64, ndim)
		for j := range shape {
			dim, err := d.readU64()
			if err != nil {
				return nil, fmt.Errorf("%w: tensor %d shape: %v", ErrCorrupt, i, err)
			}
			body = crc32.Update(body, castagnoli, d.scratch[:8])
			if dim > math.MaxInt64 {
				return nil, fmt.Errorf("%w: tensor %d dimension overflow", ErrCorrupt, i)
			}
			shape[j] = int64(dim)
		}
		dataLen, err := d.readU64()
		if err != nil {
			return nil, fmt.Errorf("%w: tensor %d data length: %v", ErrCorrupt, i, err)
		}
		body = crc32.Update(body, castagnoli, d.scratch[:8])
		// Unsigned comparison: a corrupt dataLen ≥ 2^63 must not wrap
		// negative and slip past the limit (it did before this codec).
		if dataLen > uint64(maxTensorData) {
			return nil, fmt.Errorf("%w: tensor %d data length %d exceeds limit", ErrCorrupt, i, dataLen)
		}
		data, err := readData(br, dataLen)
		if err != nil {
			return nil, fmt.Errorf("%w: tensor %d data: %v", ErrCorrupt, i, err)
		}
		body = crc32.Update(body, castagnoli, data)
		crc, err := d.readU32()
		if err != nil {
			return nil, fmt.Errorf("%w: tensor %d crc: %v", ErrCorrupt, i, err)
		}
		body = crc32.Update(body, castagnoli, d.scratch[:4])
		d.crcs = append(d.crcs, crc)
		t := Tensor{Name: string(d.nameBuf[:nameLen]), DType: DType(dtypeB), Shape: shape, Data: data}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		s.Tensors = append(s.Tensors, t)
	}
	if bad := d.verifyChecksums(s); bad >= 0 {
		t := &s.Tensors[bad]
		return nil, fmt.Errorf("%w: tensor %q crc mismatch %08x != %08x",
			ErrCorrupt, t.Name, t.Checksum(), d.crcs[bad])
	}
	// The footer CRC covers the whole body, which was folded into body
	// field by field as the raw bytes were read.
	if _, err := io.ReadFull(br, d.scratch[:4]); err != nil {
		return nil, fmt.Errorf("%w: footer: %v", ErrCorrupt, err)
	}
	if want := binary.LittleEndian.Uint32(d.scratch[:4]); body != want {
		return nil, fmt.Errorf("%w: body crc mismatch %08x != %08x", ErrCorrupt, body, want)
	}
	return s, nil
}

// readData reads a length-prefixed payload. Small payloads get one exact
// allocation; large ones grow incrementally in chunks so that a corrupt
// length field on a truncated stream errors out instead of committing a
// terabyte-sized allocation up front.
func readData(br *bufio.Reader, length uint64) ([]byte, error) {
	const chunk = 1 << 20
	if length <= chunk {
		data := make([]byte, length)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, err
		}
		return data, nil
	}
	data := make([]byte, 0, chunk)
	for remaining := length; remaining > 0; {
		n := uint64(chunk)
		if n > remaining {
			n = remaining
		}
		off := len(data)
		data = append(data, make([]byte, n)...)
		if _, err := io.ReadFull(br, data[off:]); err != nil {
			return nil, err
		}
		remaining -= n
	}
	return data, nil
}

// verifyChecksums recomputes every tensor's data CRC against the stored
// d.crcs — concurrently for large payloads — and returns the lowest
// mismatching tensor index or -1. Scanning the mismatch slice serially
// keeps the reported tensor deterministic under any worker count.
func (d *decoder) verifyChecksums(s *State) int {
	if len(s.Tensors) < 2 || s.Bytes() < concurrentCRCBytes {
		for i := range s.Tensors {
			if crc32.Checksum(s.Tensors[i].Data, castagnoli) != d.crcs[i] {
				return i
			}
		}
		return -1
	}
	if cap(d.bad) < len(s.Tensors) {
		d.bad = make([]bool, len(s.Tensors))
	}
	bad := d.bad[:len(s.Tensors)]
	crcs := d.crcs
	parallel.ForEach(0, len(s.Tensors), func(i int) {
		bad[i] = crc32.Checksum(s.Tensors[i].Data, castagnoli) != crcs[i]
	})
	for i, b := range bad {
		if b {
			return i
		}
	}
	return -1
}

// EncodedSize returns the exact number of bytes Encode will produce — the
// accounting pass that lets the encoder pre-size its output buffer and
// callers pre-grow their destinations.
func EncodedSize(s *State) int64 {
	n := int64(len(magic)) + 8 + 8 + 4 + 4 // magic, iter, shard, count, footer
	for i := range s.Tensors {
		t := &s.Tensors[i]
		n += 2 + int64(len(t.Name)) + 1 + 1 + int64(len(t.Shape))*8 + 8 + int64(len(t.Data)) + 4
	}
	return n
}
