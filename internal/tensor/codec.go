package tensor

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary checkpoint format, the stand-in for torch.save/torch.load:
//
//	magic   [8]byte  "GEMCKPT1"
//	iter    int64
//	shard   int64
//	ntensor uint32
//	tensors:
//	  nameLen uint16, name, dtype uint8, ndim uint8, dims []int64,
//	  dataLen uint64, data, crc32c(data) uint32
//	footer  crc32c of everything after the magic, uint32
//
// Every length is validated against hard limits during decode so that a
// truncated or corrupted checkpoint is detected rather than misread —
// GEMINI must never resume training from a half-written checkpoint.

var magic = [8]byte{'G', 'E', 'M', 'C', 'K', 'P', 'T', '1'}

const (
	maxTensors    = 1 << 20
	maxNameLen    = 1 << 12
	maxDims       = 16
	maxTensorData = int64(1) << 40
)

// ErrCorrupt is wrapped by all decode failures caused by damaged input.
var ErrCorrupt = errors.New("tensor: corrupt checkpoint")

// Encode serializes the state to w.
func Encode(w io.Writer, s *State) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	h := crc32.New(castagnoli)
	mw := io.MultiWriter(w, h)
	bw := bufio.NewWriterSize(mw, 1<<16)

	writeU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		bw.Write(b[:])
	}
	writeU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		bw.Write(b[:])
	}
	writeU16 := func(v uint16) {
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], v)
		bw.Write(b[:])
	}

	writeU64(uint64(s.Iteration))
	writeU64(uint64(s.Shard))
	writeU32(uint32(len(s.Tensors)))
	for i := range s.Tensors {
		t := &s.Tensors[i]
		if len(t.Name) > maxNameLen {
			return fmt.Errorf("tensor: name %q exceeds %d bytes", t.Name[:32], maxNameLen)
		}
		if len(t.Shape) > maxDims {
			return fmt.Errorf("tensor: %s has %d dims, max %d", t.Name, len(t.Shape), maxDims)
		}
		writeU16(uint16(len(t.Name)))
		bw.WriteString(t.Name)
		bw.WriteByte(byte(t.DType))
		bw.WriteByte(byte(len(t.Shape)))
		for _, d := range t.Shape {
			writeU64(uint64(d))
		}
		writeU64(uint64(len(t.Data)))
		bw.Write(t.Data)
		writeU32(t.Checksum())
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], h.Sum32())
	_, err := w.Write(foot[:])
	return err
}

// Decode reads a state from r, verifying all checksums.
func Decode(r io.Reader) (*State, error) {
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrCorrupt, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, m[:])
	}
	br := bufio.NewReaderSize(r, 1<<16)

	readU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	readU16 := func() (uint16, error) {
		var b [2]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint16(b[:]), nil
	}

	iter, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	shard, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	n, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if n > maxTensors {
		return nil, fmt.Errorf("%w: %d tensors exceeds limit", ErrCorrupt, n)
	}
	s := &State{Iteration: int64(iter), Shard: int(shard), Tensors: make([]Tensor, 0, n)}
	for i := uint32(0); i < n; i++ {
		nameLen, err := readU16()
		if err != nil {
			return nil, fmt.Errorf("%w: tensor %d: %v", ErrCorrupt, i, err)
		}
		if int(nameLen) > maxNameLen {
			return nil, fmt.Errorf("%w: tensor %d name length %d", ErrCorrupt, i, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("%w: tensor %d name: %v", ErrCorrupt, i, err)
		}
		dtypeB, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: tensor %d dtype: %v", ErrCorrupt, i, err)
		}
		if DType(dtypeB) > INT64 {
			return nil, fmt.Errorf("%w: tensor %d bad dtype %d", ErrCorrupt, i, dtypeB)
		}
		ndim, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: tensor %d ndim: %v", ErrCorrupt, i, err)
		}
		if int(ndim) > maxDims {
			return nil, fmt.Errorf("%w: tensor %d has %d dims", ErrCorrupt, i, ndim)
		}
		shape := make([]int64, ndim)
		for j := range shape {
			d, err := readU64()
			if err != nil {
				return nil, fmt.Errorf("%w: tensor %d shape: %v", ErrCorrupt, i, err)
			}
			if d > math.MaxInt64 {
				return nil, fmt.Errorf("%w: tensor %d dimension overflow", ErrCorrupt, i)
			}
			shape[j] = int64(d)
		}
		dataLen, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("%w: tensor %d data length: %v", ErrCorrupt, i, err)
		}
		if int64(dataLen) > maxTensorData {
			return nil, fmt.Errorf("%w: tensor %d data length %d exceeds limit", ErrCorrupt, i, dataLen)
		}
		data := make([]byte, dataLen)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, fmt.Errorf("%w: tensor %d data: %v", ErrCorrupt, i, err)
		}
		wantCRC, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("%w: tensor %d crc: %v", ErrCorrupt, i, err)
		}
		t := Tensor{Name: string(name), DType: DType(dtypeB), Shape: shape, Data: data}
		if got := t.Checksum(); got != wantCRC {
			return nil, fmt.Errorf("%w: tensor %q crc mismatch %08x != %08x", ErrCorrupt, t.Name, got, wantCRC)
		}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		s.Tensors = append(s.Tensors, t)
	}
	// The footer CRC covers the whole body; recompute it from the decoded
	// state (buffered readahead makes hashing the raw stream inexact).
	var foot [4]byte
	if _, err := io.ReadFull(br, foot[:]); err != nil {
		return nil, fmt.Errorf("%w: footer: %v", ErrCorrupt, err)
	}
	want := binary.LittleEndian.Uint32(foot[:])
	if got := bodyChecksum(s); got != want {
		return nil, fmt.Errorf("%w: body crc mismatch %08x != %08x", ErrCorrupt, got, want)
	}
	return s, nil
}

// bodyChecksum recomputes the footer CRC from a decoded state by
// re-serializing the body portion through the hash.
func bodyChecksum(s *State) uint32 {
	h := crc32.New(castagnoli)
	var b8 [8]byte
	var b4 [4]byte
	var b2 [2]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(s.Iteration))
	h.Write(b8[:])
	binary.LittleEndian.PutUint64(b8[:], uint64(s.Shard))
	h.Write(b8[:])
	binary.LittleEndian.PutUint32(b4[:], uint32(len(s.Tensors)))
	h.Write(b4[:])
	for i := range s.Tensors {
		t := &s.Tensors[i]
		binary.LittleEndian.PutUint16(b2[:], uint16(len(t.Name)))
		h.Write(b2[:])
		h.Write([]byte(t.Name))
		h.Write([]byte{byte(t.DType), byte(len(t.Shape))})
		for _, d := range t.Shape {
			binary.LittleEndian.PutUint64(b8[:], uint64(d))
			h.Write(b8[:])
		}
		binary.LittleEndian.PutUint64(b8[:], uint64(len(t.Data)))
		h.Write(b8[:])
		h.Write(t.Data)
		binary.LittleEndian.PutUint32(b4[:], t.Checksum())
		h.Write(b4[:])
	}
	return h.Sum32()
}

// EncodedSize returns the exact number of bytes Encode will produce.
func EncodedSize(s *State) int64 {
	n := int64(len(magic)) + 8 + 8 + 4 + 4 // magic, iter, shard, count, footer
	for i := range s.Tensors {
		t := &s.Tensors[i]
		n += 2 + int64(len(t.Name)) + 1 + 1 + int64(len(t.Shape))*8 + 8 + int64(len(t.Data)) + 4
	}
	return n
}
