package tensor

import (
	"bytes"
	"hash/crc32"
	"testing"
)

// The pooled encoder must produce byte-identical output to the original
// streaming encoder. These (length, CRC32) pairs were captured from the
// pre-pool serial implementation; any drift is a wire-format break that
// would orphan every checkpoint already written.
func TestEncodeGoldenBytes(t *testing.T) {
	cases := []struct {
		iter    int64
		shard   int
		size    int64
		seed    int64
		wantLen int
		wantCRC uint32
	}{
		{7, 2, 512, 99, 668, 0x8d2a1fe0},
		{3, 1, 4096, 123, 4256, 0x5ec63c21},
		{0, 0, 0, 0, 164, 0x3479a03f},
	}
	for _, c := range cases {
		s := NewSyntheticState(c.iter, c.shard, c.size, c.seed)
		var buf bytes.Buffer
		if err := Encode(&buf, s); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != c.wantLen {
			t.Errorf("state(%d,%d,%d,%d): encoded %d bytes, want %d",
				c.iter, c.shard, c.size, c.seed, buf.Len(), c.wantLen)
		}
		if got := crc32.ChecksumIEEE(buf.Bytes()); got != c.wantCRC {
			t.Errorf("state(%d,%d,%d,%d): encoding crc %08x, want %08x",
				c.iter, c.shard, c.size, c.seed, got, c.wantCRC)
		}
	}
}

// Repeated encodes through the pool must be stable: same bytes every
// time, including when interleaved with decodes that share the pools.
func TestEncodePooledStability(t *testing.T) {
	big := NewSyntheticState(5, 3, 1<<16, 7)
	small := NewSyntheticState(6, 1, 256, 8)
	var want bytes.Buffer
	if err := Encode(&want, big); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if err := Encode(&buf, small); err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		buf.Reset()
		if err := Encode(&buf, big); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want.Bytes()) {
			t.Fatalf("iteration %d: pooled encode drifted", i)
		}
	}
}

// The perf contract of the pooled zero-copy pipeline. The pre-pool codec
// measured 20 allocs/op for Encode and 43 for Decode (63 per round trip)
// on this state shape; the pooled codec must stay at least 5× below that.
func TestCodecAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector bookkeeping inflates allocation counts")
	}
	s := NewSyntheticState(1, 0, 48<<10, 42)
	var buf bytes.Buffer
	buf.Grow(int(EncodedSize(s)))

	encAllocs := testing.AllocsPerRun(100, func() {
		buf.Reset()
		if err := Encode(&buf, s); err != nil {
			t.Fatal(err)
		}
	})
	// Old encoder: 20 allocs/op. 5× reduction bound: 4.
	if encAllocs > 4 {
		t.Errorf("Encode allocates %.1f times per op, want ≤ 4 (old codec: 20)", encAllocs)
	}

	raw := append([]byte(nil), buf.Bytes()...)
	rd := bytes.NewReader(raw)
	rtAllocs := testing.AllocsPerRun(100, func() {
		buf.Reset()
		if err := Encode(&buf, s); err != nil {
			t.Fatal(err)
		}
		rd.Reset(raw)
		if _, err := Decode(rd); err != nil {
			t.Fatal(err)
		}
	})
	// Old codec: 63 allocs per round trip. 5× reduction bound: 12.
	if rtAllocs > 12 {
		t.Errorf("round trip allocates %.1f times per op, want ≤ 12 (old codec: 63)", rtAllocs)
	}
}

// The streaming fallback (encodings larger than the pool cap) and the
// buffered path must agree byte for byte. Exercised by comparing a state
// right at the boundary against a forced streaming encode.
func TestEncodeStreamingMatchesBuffered(t *testing.T) {
	s := NewSyntheticState(9, 4, 1<<20, 31)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	crcs := make([]uint32, len(s.Tensors))
	tensorChecksums(s, crcs)

	var buffered bytes.Buffer
	if err := encodeBuffered(&buffered, s, int(EncodedSize(s)), crcs); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	if err := encodeStreaming(&streamed, s, crcs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buffered.Bytes(), streamed.Bytes()) {
		t.Fatal("buffered and streaming encoders disagree")
	}
	if _, err := Decode(bytes.NewReader(streamed.Bytes())); err != nil {
		t.Fatalf("streamed encoding does not decode: %v", err)
	}
}

func BenchmarkEncodePooled(b *testing.B) {
	s := NewSyntheticState(1, 0, 1<<20, 42)
	var buf bytes.Buffer
	buf.Grow(int(EncodedSize(s)))
	b.SetBytes(s.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Encode(&buf, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundTrip(b *testing.B) {
	s := NewSyntheticState(1, 0, 1<<20, 42)
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	rd := bytes.NewReader(raw)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(raw)
		if _, err := Decode(rd); err != nil {
			b.Fatal(err)
		}
	}
}
