package tensor

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the checkpoint codec against arbitrary input: a
// decoder crash on corrupted bytes would take down recovery exactly when
// it is needed. Decode must either return an error or a state that
// re-encodes cleanly.
func FuzzDecode(f *testing.F) {
	// Seed corpus: a valid encoding, truncations, and flipped bytes.
	s := NewSyntheticState(7, 2, 512, 99)
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("GEMCKPT1 but then garbage"))
	f.Add([]byte{})
	flipped := append([]byte(nil), valid...)
	flipped[10] ^= 0xFF
	f.Add(flipped)

	// Corpus for the pooled/concurrent-CRC codec paths: footers truncated
	// mid-u32 (the incremental body CRC must report corruption, not
	// misread), a corrupted per-tensor CRC field (last tensor's stored
	// checksum sits in the 4 bytes before the footer), and a zeroed
	// footer with intact tensors (body-CRC mismatch after every
	// per-tensor check passed).
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:len(valid)-4])
	badTensorCRC := append([]byte(nil), valid...)
	badTensorCRC[len(badTensorCRC)-8] ^= 0x01
	f.Add(badTensorCRC)
	badFooter := append([]byte(nil), valid...)
	for i := len(badFooter) - 4; i < len(badFooter); i++ {
		badFooter[i] = 0
	}
	f.Add(badFooter)
	// Data flipped with the per-tensor CRC left stale: the concurrent
	// verify pass must catch it before the footer check runs.
	badData := append([]byte(nil), valid...)
	badData[len(badData)/3] ^= 0x80
	f.Add(badData)

	f.Fuzz(func(t *testing.T, data []byte) {
		state, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the decoder accepts must be internally valid and
		// re-encodable.
		if err := state.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid state: %v", err)
		}
		var out bytes.Buffer
		if err := Encode(&out, state); err != nil {
			t.Fatalf("accepted state failed to re-encode: %v", err)
		}
		again, err := Decode(&out)
		if err != nil {
			t.Fatalf("re-encoded state failed to decode: %v", err)
		}
		if !state.Equal(again) {
			t.Fatal("re-encode round trip changed the state")
		}
	})
}

func BenchmarkEncode(b *testing.B) {
	s := NewSyntheticState(1, 0, 1<<20, 42) // 1 MiB shard
	var buf bytes.Buffer
	b.SetBytes(s.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Encode(&buf, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	s := NewSyntheticState(1, 0, 1<<20, 42)
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFingerprint(b *testing.B) {
	s := NewSyntheticState(1, 0, 1<<20, 42)
	b.SetBytes(s.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Fingerprint()
	}
}
