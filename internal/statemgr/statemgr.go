// Package statemgr is the checkpoint data plane: where the ckpt package
// tracks *which* shard versions live where, statemgr moves the actual
// bytes. Each machine owns a tensor.State shard of the model states;
// checkpoints replicate serialized shards into per-machine CPU-memory
// stores according to the placement, and recovery reassembles byte-exact
// shards — verified by content fingerprints — from local memory, peers,
// or the remote persistent store.
package statemgr

import (
	"bytes"
	"fmt"

	"gemini/internal/ckpt"
	"gemini/internal/placement"
	"gemini/internal/storage"
	"gemini/internal/tensor"
)

// Manager moves checkpoint bytes for one training cluster.
type Manager struct {
	placement *placement.Placement
	shardSize int64
	seed      int64

	// live[i] is machine i's current in-GPU model state shard.
	live []*tensor.State
	// cpu[i] is machine i's CPU-memory checkpoint area, holding encoded
	// shards under keys "owner/<rank>/<generation>".
	cpu []*storage.MemoryStore
	// remote holds the persistent-tier encodings (keyed by shard rank);
	// nil when the manager runs without a remote tier.
	remote map[int][]byte
	// remoteIteration is the iteration the remote tier captures.
	remoteIteration int64
}

// New creates a manager whose machines each own a synthetic model-state
// shard of shardSize bytes, deterministically derived from seed. Each
// machine's CPU store is sized for the double-buffered replicas the
// placement requires (2 generations × m shards, encoded).
func New(p *placement.Placement, shardSize int64, seed int64) (*Manager, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if shardSize <= 0 {
		return nil, fmt.Errorf("statemgr: shard size must be positive, got %d", shardSize)
	}
	m := &Manager{
		placement: p,
		shardSize: shardSize,
		seed:      seed,
		live:      make([]*tensor.State, p.N),
		cpu:       make([]*storage.MemoryStore, p.N),
		remote:    make(map[int][]byte),
	}
	// Encoded shards carry a small framing overhead; budget 2 generations
	// of m shards with 1 KiB of headroom each.
	capacity := float64(2*p.M) * (float64(shardSize) + 1024)
	for i := range m.cpu {
		store, err := storage.NewMemoryStore(capacity)
		if err != nil {
			return nil, err
		}
		m.cpu[i] = store
		m.live[i] = tensor.NewSyntheticState(0, i, shardSize, seed)
	}
	return m, nil
}

// MustNew is New for known-good arguments.
func MustNew(p *placement.Placement, shardSize int64, seed int64) *Manager {
	m, err := New(p, shardSize, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// Placement returns the replica placement the manager follows.
func (m *Manager) Placement() *placement.Placement { return m.placement }

// Live returns machine rank's current in-GPU shard.
func (m *Manager) Live(rank int) *tensor.State { return m.live[rank] }

// Step advances every healthy machine's live state to the next iteration
// — the synthetic stand-in for an optimizer step. Failed machines
// (healthy(rank) == false) do not advance; synchronous training never
// lets that happen outside a failure window.
func (m *Manager) Step(iteration int64, healthy func(int) bool) {
	for rank := range m.live {
		if healthy != nil && !healthy(rank) {
			continue
		}
		m.live[rank] = tensor.NewSyntheticState(iteration, rank, m.shardSize, m.seed)
	}
}

// ckptKey names a shard generation in a CPU store. Two generations per
// owner rotate, mirroring the ckpt package's double buffer.
func ckptKey(owner int, generation int64) string {
	return fmt.Sprintf("owner/%04d/gen%d", owner, generation%2)
}

// Checkpoint replicates every healthy machine's live shard into the CPU
// stores of its replica set and registers the commit with the version
// tracker. The shard is serialized once and the same bytes land on every
// holder, so all replicas are bit-identical.
func (m *Manager) Checkpoint(tracker *ckpt.Engine, iteration int64, healthy func(int) bool) error {
	for owner := range m.live {
		if healthy != nil && !healthy(owner) {
			continue
		}
		state := m.live[owner]
		if state.Iteration != iteration {
			return fmt.Errorf("statemgr: machine %d live state at iteration %d, checkpointing %d",
				owner, state.Iteration, iteration)
		}
		var buf bytes.Buffer
		buf.Grow(int(tensor.EncodedSize(state)))
		if err := tensor.Encode(&buf, state); err != nil {
			return err
		}
		encoded := buf.Bytes()
		fp := state.Fingerprint()
		for _, holder := range m.placement.Replicas(owner) {
			if healthy != nil && !healthy(holder) {
				continue
			}
			if err := m.cpu[holder].Put(storage.Object{
				Key:       ckptKey(owner, iteration),
				Bytes:     float64(len(encoded)),
				Iteration: iteration,
				Shard:     owner,
				Payload:   mustDecode(encoded),
			}); err != nil {
				return err
			}
			tracker.Begin(holder, owner, iteration)
			tracker.Receive(holder, owner, iteration, tracker.ShardBytes())
			tracker.Commit(holder, owner, iteration, fp)
		}
	}
	return nil
}

// mustDecode round-trips an encoding, guaranteeing the stored payload is
// an independent copy that later mutation of the live state cannot touch,
// and that what we stored actually decodes.
func mustDecode(encoded []byte) *tensor.State {
	s, err := tensor.Decode(bytes.NewReader(encoded))
	if err != nil {
		panic(fmt.Sprintf("statemgr: self-decode failed: %v", err))
	}
	return s
}

// CheckpointRemote captures every live shard into the remote persistent
// tier (the low-frequency checkpoint kept for fallback recovery).
func (m *Manager) CheckpointRemote(iteration int64) error {
	for owner := range m.live {
		state := m.live[owner]
		if state.Iteration != iteration {
			return fmt.Errorf("statemgr: machine %d live state at iteration %d, checkpointing %d remotely",
				owner, state.Iteration, iteration)
		}
		var buf bytes.Buffer
		buf.Grow(int(tensor.EncodedSize(state)))
		if err := tensor.Encode(&buf, state); err != nil {
			return err
		}
		m.remote[owner] = append([]byte(nil), buf.Bytes()...)
	}
	m.remoteIteration = iteration
	return nil
}

// RemoteIteration returns the iteration captured in the remote tier.
func (m *Manager) RemoteIteration() int64 { return m.remoteIteration }

// WipeMachine simulates a hardware failure: the machine's CPU store and
// live state vanish.
func (m *Manager) WipeMachine(rank int) {
	m.cpu[rank].Wipe()
	m.live[rank] = nil
}

// Recover restores every machine's live shard to the given version,
// following a recovery plan from the version tracker: local decode, a
// byte copy from a peer's CPU store, or the remote tier. Every restored
// shard is checksum-verified against the tracker's recorded fingerprint.
func (m *Manager) Recover(tracker *ckpt.Engine, plan []ckpt.Retrieval, version int64) error {
	for _, r := range plan {
		var obj storage.Object
		var ok bool
		switch r.Source {
		case ckpt.SourceLocal:
			obj, ok = m.cpu[r.Rank].Get(ckptKey(r.Rank, version))
		case ckpt.SourceRemoteCPU:
			obj, ok = m.cpu[r.Peer].Get(ckptKey(r.Rank, version))
		case ckpt.SourcePersistent:
			encoded, has := m.remote[r.Rank]
			if !has {
				return fmt.Errorf("statemgr: no remote shard for rank %d", r.Rank)
			}
			state, err := tensor.Decode(bytes.NewReader(encoded))
			if err != nil {
				return fmt.Errorf("statemgr: remote shard for rank %d: %w", r.Rank, err)
			}
			if state.Iteration != version {
				return fmt.Errorf("statemgr: remote shard for rank %d at iteration %d, want %d",
					r.Rank, state.Iteration, version)
			}
			m.live[r.Rank] = state
			continue
		default:
			return fmt.Errorf("statemgr: unknown retrieval source %v", r.Source)
		}
		if !ok || obj.Iteration != version {
			return fmt.Errorf("statemgr: shard for rank %d at version %d not found via %v",
				r.Rank, version, r.Source)
		}
		state := obj.Payload.Clone()
		// Verify content integrity against the tracked fingerprint.
		if sh, tracked := trackedShard(tracker, r, version); tracked && sh.Fingerprint != 0 &&
			state.Fingerprint() != sh.Fingerprint {
			return fmt.Errorf("statemgr: shard for rank %d failed fingerprint verification", r.Rank)
		}
		m.live[r.Rank] = state
		// A machine that fetched from a peer reseeds its own local copy.
		if r.Source == ckpt.SourceRemoteCPU {
			var buf bytes.Buffer
			buf.Grow(int(tensor.EncodedSize(state)))
			if err := tensor.Encode(&buf, state); err != nil {
				return err
			}
			if err := m.cpu[r.Rank].Put(storage.Object{
				Key:       ckptKey(r.Rank, version),
				Bytes:     float64(buf.Len()),
				Iteration: version,
				Shard:     r.Rank,
				Payload:   state.Clone(),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func trackedShard(tracker *ckpt.Engine, r ckpt.Retrieval, version int64) (ckpt.Shard, bool) {
	holder := r.Rank
	if r.Source == ckpt.SourceRemoteCPU {
		holder = r.Peer
	}
	for _, sh := range tracker.CompletedVersions(holder, r.Rank) {
		if sh.Iteration == version {
			return sh, true
		}
	}
	return ckpt.Shard{}, false
}

// CorruptStoredShard flips bytes in holder's stored copy of owner's shard
// at the given iteration — a fault-injection hook for integrity tests.
// It panics if no such replica exists.
func (m *Manager) CorruptStoredShard(holder, owner int, iteration int64) {
	obj, ok := m.cpu[holder].Get(ckptKey(owner, iteration))
	if !ok || obj.Iteration != iteration {
		panic(fmt.Sprintf("statemgr: machine %d holds no shard of rank %d at iteration %d", holder, owner, iteration))
	}
	corrupted := obj.Payload.Clone()
	corrupted.Tensors[0].Data[0] ^= 0xFF
	obj.Payload = corrupted
	if err := m.cpu[holder].Put(obj); err != nil {
		panic(err)
	}
}

// VerifyConsistent checks that every machine's live shard is at the given
// iteration and matches the canonical synthetic content for that
// (iteration, rank, seed) — the end-to-end byte-exactness criterion.
func (m *Manager) VerifyConsistent(iteration int64) error {
	for rank, state := range m.live {
		if state == nil {
			return fmt.Errorf("statemgr: machine %d has no live state", rank)
		}
		if state.Iteration != iteration {
			return fmt.Errorf("statemgr: machine %d at iteration %d, want %d", rank, state.Iteration, iteration)
		}
		want := tensor.NewSyntheticState(iteration, rank, m.shardSize, m.seed)
		if !state.Equal(want) {
			return fmt.Errorf("statemgr: machine %d shard content diverged at iteration %d", rank, iteration)
		}
	}
	return nil
}
