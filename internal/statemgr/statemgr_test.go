package statemgr

import (
	"testing"
	"testing/quick"

	"gemini/internal/ckpt"
	"gemini/internal/placement"
)

const shardSize = 6 << 10

type fixture struct {
	p       *placement.Placement
	mgr     *Manager
	tracker *ckpt.Engine
	healthy map[int]bool
}

func newFixture(t *testing.T, n, m int) *fixture {
	t.Helper()
	p := placement.MustMixed(n, m)
	mgr, err := New(p, shardSize, 42)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	f := &fixture{p: p, mgr: mgr, tracker: ckpt.MustNewEngine(p, shardSize), healthy: map[int]bool{}}
	for i := 0; i < n; i++ {
		f.healthy[i] = true
	}
	return f
}

func (f *fixture) isHealthy(rank int) bool { return f.healthy[rank] }

// train advances and checkpoints through the given iterations.
func (f *fixture) train(t *testing.T, from, to int64) {
	t.Helper()
	for iter := from; iter <= to; iter++ {
		f.mgr.Step(iter, f.isHealthy)
		if err := f.mgr.Checkpoint(f.tracker, iter, f.isHealthy); err != nil {
			t.Fatalf("Checkpoint(%d): %v", iter, err)
		}
	}
}

func TestTrainingAndVerify(t *testing.T) {
	f := newFixture(t, 4, 2)
	f.train(t, 1, 5)
	if err := f.mgr.VerifyConsistent(5); err != nil {
		t.Fatal(err)
	}
	v, ok := f.tracker.ConsistentVersion(f.isHealthy)
	if !ok || v != 5 {
		t.Fatalf("tracker version %d/%v, want 5", v, ok)
	}
}

func TestSoftwareFailureByteExactLocalRecovery(t *testing.T) {
	f := newFixture(t, 4, 2)
	f.train(t, 1, 7)
	// Software failure: processes die, memory survives; all machines
	// reload locally at the consistent version.
	v, ok := f.tracker.ConsistentVersion(f.isHealthy)
	if !ok {
		t.Fatal("no consistent version")
	}
	plan, err := f.tracker.PlanRecovery(v, f.isHealthy)
	if err != nil {
		t.Fatal(err)
	}
	// Clobber the live states to prove recovery actually restores bytes.
	for rank := 0; rank < 4; rank++ {
		f.mgr.live[rank] = nil
	}
	if err := f.mgr.Recover(f.tracker, plan, v); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if err := f.mgr.VerifyConsistent(7); err != nil {
		t.Fatal(err)
	}
}

func TestHardwareFailurePeerRecoveryByteExact(t *testing.T) {
	f := newFixture(t, 4, 2)
	f.train(t, 1, 9)
	// Machine 1's hardware dies: CPU store and live state gone.
	f.mgr.WipeMachine(1)
	f.tracker.Wipe(1)
	f.healthy[1] = false
	// Replacement arrives (healthy again, empty memory).
	f.healthy[1] = true
	hasMemory := func(rank int) bool { return rank != 1 }
	v, ok := f.tracker.ConsistentVersion(hasMemory)
	if !ok || v != 9 {
		t.Fatalf("version %d/%v, want 9", v, ok)
	}
	plan, err := f.tracker.PlanRecovery(v, hasMemory)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.mgr.Recover(f.tracker, plan, v); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if err := f.mgr.VerifyConsistent(9); err != nil {
		t.Fatal(err)
	}
	// The replacement reseeded its own local replica: another immediate
	// software failure recovers locally.
	if _, ok := f.mgr.cpu[1].Get(ckptKey(1, v)); !ok {
		t.Fatal("peer recovery did not reseed the local replica")
	}
	// Training continues from v.
	f.train(t, v+1, v+3)
	if err := f.mgr.VerifyConsistent(v + 3); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteFallbackByteExact(t *testing.T) {
	f := newFixture(t, 4, 2)
	f.train(t, 1, 4)
	if err := f.mgr.CheckpointRemote(4); err != nil {
		t.Fatal(err)
	}
	if f.mgr.RemoteIteration() != 4 {
		t.Fatal("remote iteration not recorded")
	}
	f.train(t, 5, 11)
	// Whole group {0,1} dies: CPU-memory recovery impossible.
	f.mgr.WipeMachine(0)
	f.mgr.WipeMachine(1)
	f.tracker.Wipe(0)
	f.tracker.Wipe(1)
	hasMemory := func(rank int) bool { return rank >= 2 }
	if _, ok := f.tracker.ConsistentVersion(hasMemory); ok {
		t.Fatal("group loss should break CPU-memory consistency")
	}
	// Fall back: everyone reloads the remote tier at iteration 4.
	f.tracker.RollbackTo(4)
	plan := f.tracker.PersistentPlan()
	if err := f.mgr.Recover(f.tracker, plan, 4); err != nil {
		t.Fatalf("remote Recover: %v", err)
	}
	if err := f.mgr.VerifyConsistent(4); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverDetectsCorruption(t *testing.T) {
	f := newFixture(t, 4, 2)
	f.train(t, 1, 3)
	// Corrupt machine 0's stored copy of rank 1's shard, then force a
	// peer recovery of rank 1 from machine 0.
	obj, ok := f.mgr.cpu[0].Get(ckptKey(1, 3))
	if !ok {
		t.Fatal("expected stored shard")
	}
	obj.Payload.Tensors[0].Data[0] ^= 0xFF
	if err := f.mgr.cpu[0].Put(obj); err != nil {
		t.Fatal(err)
	}
	f.mgr.WipeMachine(1)
	// ckpt tracker still believes machine 0 holds a good copy; recovery
	// must catch the fingerprint mismatch.
	plan := []ckpt.Retrieval{{Rank: 1, Source: ckpt.SourceRemoteCPU, Peer: 0, Bytes: shardSize}}
	if err := f.mgr.Recover(f.tracker, plan, 3); err == nil {
		t.Fatal("corrupted shard passed fingerprint verification")
	}
}

func TestRecoverMissingShardFails(t *testing.T) {
	f := newFixture(t, 4, 2)
	f.train(t, 1, 2)
	plan := []ckpt.Retrieval{{Rank: 0, Source: ckpt.SourceLocal}}
	if err := f.mgr.Recover(f.tracker, plan, 99); err == nil {
		t.Fatal("recovery of a nonexistent version succeeded")
	}
	planRemote := []ckpt.Retrieval{{Rank: 0, Source: ckpt.SourcePersistent}}
	if err := f.mgr.Recover(f.tracker, planRemote, 2); err == nil {
		t.Fatal("remote recovery without a remote checkpoint succeeded")
	}
}

func TestCheckpointRejectsStaleLiveState(t *testing.T) {
	f := newFixture(t, 4, 2)
	f.mgr.Step(3, f.isHealthy)
	if err := f.mgr.Checkpoint(f.tracker, 4, f.isHealthy); err == nil {
		t.Fatal("checkpoint of mismatched iteration accepted")
	}
	if err := f.mgr.CheckpointRemote(4); err == nil {
		t.Fatal("remote checkpoint of mismatched iteration accepted")
	}
}

func TestDoubleBufferKeysRotate(t *testing.T) {
	// Generations alternate between two keys, so the CPU footprint stays
	// at two generations per owner.
	f := newFixture(t, 4, 2)
	f.train(t, 1, 20)
	store := f.mgr.cpu[0]
	// Machine 0 holds shards of its group {0,1}: 2 owners × 2 generations.
	if got := store.Len(); got != 4 {
		t.Fatalf("CPU store holds %d objects, want 4 (2 owners × 2 generations)", got)
	}
	if store.Used() > store.Capacity() {
		t.Fatal("store over capacity")
	}
}

func TestAccessorsAndCorruptionHook(t *testing.T) {
	f := newFixture(t, 4, 2)
	if f.mgr.Placement().N != 4 {
		t.Fatal("Placement accessor wrong")
	}
	f.train(t, 1, 2)
	if live := f.mgr.Live(3); live == nil || live.Iteration != 2 {
		t.Fatalf("Live(3) = %+v", live)
	}
	// CorruptStoredShard flips bytes without touching other replicas.
	f.mgr.CorruptStoredShard(0, 1, 2)
	a, _ := f.mgr.cpu[0].Get(ckptKey(1, 2))
	b, _ := f.mgr.cpu[1].Get(ckptKey(1, 2))
	if a.Payload.Equal(b.Payload) {
		t.Fatal("corruption did not change the stored bytes")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("corrupting a missing shard did not panic")
		}
	}()
	f.mgr.CorruptStoredShard(0, 1, 99)
}

func TestVerifyConsistentFailures(t *testing.T) {
	f := newFixture(t, 4, 2)
	f.train(t, 1, 3)
	if err := f.mgr.VerifyConsistent(2); err == nil {
		t.Fatal("wrong iteration accepted")
	}
	f.mgr.live[2] = nil
	if err := f.mgr.VerifyConsistent(3); err == nil {
		t.Fatal("nil live state accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(placement.MustMixed(4, 2), 0, 1); err == nil {
		t.Error("zero shard size accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad size did not panic")
		}
	}()
	MustNew(placement.MustMixed(4, 2), -1, 1)
}

// Property: for any failure pattern the placement survives, the recovery
// round-trip restores byte-exact state; for patterns it does not survive,
// the remote fallback does.
func TestPropertyRecoveryAlwaysByteExact(t *testing.T) {
	fn := func(nRaw, mRaw uint8, failMask uint8, itersRaw uint8) bool {
		n := int(nRaw%5) + 3
		m := 2 + int(mRaw%2)
		if m > n {
			m = n
		}
		p := placement.MustMixed(n, m)
		mgr := MustNew(p, 2048, 7)
		tracker := ckpt.MustNewEngine(p, 2048)
		last := int64(itersRaw%5) + 2
		for iter := int64(1); iter <= last; iter++ {
			mgr.Step(iter, nil)
			if err := mgr.Checkpoint(tracker, iter, nil); err != nil {
				return false
			}
		}
		if err := mgr.CheckpointRemote(last); err != nil {
			return false
		}
		failed := map[int]bool{}
		for r := 0; r < n; r++ {
			if failMask&(1<<uint(r)) != 0 {
				failed[r] = true
				mgr.WipeMachine(r)
				tracker.Wipe(r)
			}
		}
		hasMemory := func(r int) bool { return !failed[r] }
		if v, ok := tracker.ConsistentVersion(hasMemory); ok {
			plan, err := tracker.PlanRecovery(v, hasMemory)
			if err != nil {
				return false
			}
			tracker.RollbackTo(v)
			if err := mgr.Recover(tracker, plan, v); err != nil {
				return false
			}
			return mgr.VerifyConsistent(v) == nil
		}
		tracker.RollbackTo(last)
		if err := mgr.Recover(tracker, tracker.PersistentPlan(), last); err != nil {
			return false
		}
		return mgr.VerifyConsistent(last) == nil
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
