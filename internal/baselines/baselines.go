// Package baselines describes checkpointing solutions — the paper's two
// baselines (§7.1) and GEMINI itself — in one uniform Spec that the
// long-run simulator consumes:
//
//   - Strawman: checkpoint to remote persistent storage every three hours
//     (the BLOOM training setup).
//   - HighFreq: saturate the remote store's bandwidth — checkpoint every
//     ⌈t_ckpt/T_iter⌉ iterations; the best any remote-storage solution
//     can do.
//   - GEMINI: checkpoint to CPU memory every iteration, falling back to a
//     three-hourly remote checkpoint only when CPU-memory recovery is
//     impossible.
package baselines

import (
	"fmt"
	"math"

	"gemini/internal/simclock"
	"gemini/internal/tensor"
	"gemini/internal/training"
)

// Recovery anchor constants measured in §7.3 (Fig. 14).
const (
	// DetectionTime is how long the root agent takes to notice a failure.
	DetectionTime = 15 * simclock.Second
	// RestartWarmup is the framework restart time before training resumes.
	RestartWarmup = 4 * simclock.Minute
	// RemoteCheckpointInterval is the Strawman / fallback cadence.
	RemoteCheckpointInterval = 3 * simclock.Hour
	// DefaultRemoteBandwidth is the FSx aggregate bandwidth (20 Gbps).
	DefaultRemoteBandwidth = 20e9 / 8
)

// Spec describes one checkpointing solution's behavior for a given
// training job, in the terms Equation 1 needs plus recovery overheads.
type Spec struct {
	Name string
	// Interval is 1/f: wall time between checkpoint starts.
	Interval simclock.Duration
	// CheckpointTime is t_ckpt: the standalone time to write one
	// checkpoint to its storage tier.
	CheckpointTime simclock.Duration
	// CompletionLag is the wall time between a checkpoint's logical point
	// (the iteration it captures) and its completion. For the remote
	// baselines this equals CheckpointTime; for GEMINI the chunks are
	// spread over the following iteration's idle spans, so the lag is one
	// iteration — which is why §7.2 reports the software-failure wasted
	// time as 1.5× the iteration time.
	CompletionLag simclock.Duration
	// PerCheckpointStall is the training stall each checkpoint imposes
	// (torch.save serialization for remote-storage solutions; zero for
	// GEMINI, which serializes only on recovery).
	PerCheckpointStall simclock.Duration
	// SerializeOnRecovery is the stall to serialize CPU-memory
	// checkpoints when a failure occurs (GEMINI's 162 s; zero for
	// remote-storage solutions).
	SerializeOnRecovery simclock.Duration
	// RetrievalLocal/Peer/Remote are t_rtvl by recovery source.
	RetrievalLocal  simclock.Duration
	RetrievalPeer   simclock.Duration
	RetrievalRemote simclock.Duration
	// UsesCPUMemory marks GEMINI-style solutions that can recover from
	// local/peer CPU memory; others always pay RetrievalRemote.
	UsesCPUMemory bool
	// RemoteInterval is the cadence of the persistent-storage checkpoint
	// that backs the CPU-memory tier (equals Interval for the baselines).
	RemoteInterval simclock.Duration
}

// Validate checks internal consistency.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("baselines: spec needs a name")
	case s.Interval <= 0:
		return fmt.Errorf("baselines: %s interval %v must be positive", s.Name, s.Interval)
	case s.CheckpointTime < 0 || s.CompletionLag < 0 || s.PerCheckpointStall < 0 || s.SerializeOnRecovery < 0:
		return fmt.Errorf("baselines: %s has negative cost", s.Name)
	case s.RetrievalLocal < 0 || s.RetrievalPeer < 0 || s.RetrievalRemote < 0:
		return fmt.Errorf("baselines: %s has negative retrieval time", s.Name)
	case s.RemoteInterval <= 0:
		return fmt.Errorf("baselines: %s remote interval %v must be positive", s.Name, s.RemoteInterval)
	}
	return nil
}

// remoteCheckpointTime is the time to push a full checkpoint through the
// remote store's aggregate bandwidth.
func remoteCheckpointTime(cfg training.Config, remoteBW float64) simclock.Duration {
	return simclock.Duration(cfg.Model.CheckpointBytes() / remoteBW)
}

// serializeStall is the per-machine torch.save stall for one shard.
func serializeStall(cfg training.Config, costs tensor.CostModel) simclock.Duration {
	return costs.SerializeTime(cfg.ShardBytesPerMachine())
}

// Strawman builds the three-hourly remote-storage baseline.
func Strawman(cfg training.Config, remoteBW float64, costs tensor.CostModel) (Spec, error) {
	if remoteBW <= 0 {
		return Spec{}, fmt.Errorf("baselines: remote bandwidth must be positive, got %v", remoteBW)
	}
	tCkpt := remoteCheckpointTime(cfg, remoteBW)
	s := Spec{
		Name:               "Strawman",
		Interval:           RemoteCheckpointInterval,
		CheckpointTime:     tCkpt,
		CompletionLag:      tCkpt,
		PerCheckpointStall: serializeStall(cfg, costs),
		RetrievalLocal:     tCkpt, // never used: no CPU tier
		RetrievalPeer:      tCkpt,
		RetrievalRemote:    tCkpt,
		RemoteInterval:     RemoteCheckpointInterval,
	}
	return s, s.Validate()
}

// HighFreq builds the saturate-the-remote-store baseline: checkpoint
// every ⌈t_ckpt/T_iter⌉ iterations (§7.1). The timeline must be the
// job's actual iteration timeline — under an alternative parallelism
// the cadence follows that parallelism's iteration, not ZeRO-3's.
func HighFreq(cfg training.Config, tl *training.Timeline, remoteBW float64, costs tensor.CostModel) (Spec, error) {
	if remoteBW <= 0 {
		return Spec{}, fmt.Errorf("baselines: remote bandwidth must be positive, got %v", remoteBW)
	}
	if tl == nil {
		return Spec{}, fmt.Errorf("baselines: HighFreq needs the job's iteration timeline")
	}
	tCkpt := remoteCheckpointTime(cfg, remoteBW)
	iters := math.Ceil(float64(tCkpt / tl.Iteration))
	if iters < 1 {
		iters = 1
	}
	s := Spec{
		Name:               "HighFreq",
		Interval:           simclock.Duration(iters) * tl.Iteration,
		CheckpointTime:     tCkpt,
		CompletionLag:      tCkpt,
		PerCheckpointStall: serializeStall(cfg, costs),
		RetrievalLocal:     tCkpt,
		RetrievalPeer:      tCkpt,
		RetrievalRemote:    tCkpt,
		RemoteInterval:     simclock.Duration(iters) * tl.Iteration,
	}
	return s, s.Validate()
}

// Gemini builds GEMINI's spec: per-iteration CPU-memory checkpoints with
// m replicas, peer retrieval in seconds, and a three-hourly remote
// checkpoint as the last-resort tier.
func Gemini(cfg training.Config, tl *training.Timeline, replicas int, remoteBW float64, costs tensor.CostModel) (Spec, error) {
	if replicas < 1 {
		return Spec{}, fmt.Errorf("baselines: GEMINI needs at least one replica, got %d", replicas)
	}
	if remoteBW <= 0 {
		return Spec{}, fmt.Errorf("baselines: remote bandwidth must be positive, got %v", remoteBW)
	}
	if tl == nil {
		return Spec{}, fmt.Errorf("baselines: GEMINI needs the job's iteration timeline")
	}
	shard := cfg.ShardBytesPerMachine()
	s := Spec{
		Name:           "GEMINI",
		Interval:       tl.Iteration, // every iteration
		CheckpointTime: training.StandaloneCheckpointTime(cfg, replicas, 8*128e6, 4),
		CompletionLag:  tl.Iteration, // interleaved across the next iteration
		// Serialization of the two resident checkpoint generations with
		// torch.save when a failure occurs (§7.3 measures 162 s).
		SerializeOnRecovery: costs.SerializeTime(2 * shard),
		RetrievalLocal:      costs.DeserializeTime(shard) / 8, // local load, no network
		RetrievalPeer:       simclock.Duration(shard / cfg.Instance.NetworkBytesPerSec),
		RetrievalRemote:     remoteCheckpointTime(cfg, remoteBW),
		UsesCPUMemory:       true,
		RemoteInterval:      RemoteCheckpointInterval,
	}
	return s, s.Validate()
}

// CheckpointsPerDay returns the solution's checkpoint frequency per day.
func (s Spec) CheckpointsPerDay() float64 {
	return simclock.Day.Seconds() / s.Interval.Seconds()
}

// FrequencyRatio returns how many times more frequently a checkpoints
// than b.
func FrequencyRatio(a, b Spec) float64 {
	return b.Interval.Seconds() / a.Interval.Seconds()
}
