package baselines

import (
	"math"
	"testing"

	"gemini/internal/cluster"
	"gemini/internal/model"
	"gemini/internal/simclock"
	"gemini/internal/tensor"
	"gemini/internal/training"
)

func job(t *testing.T) training.Config {
	t.Helper()
	return training.MustNewConfig(model.MustByName("GPT-2 100B"), cluster.MustInstance("p4d.24xlarge"), 16)
}

func allSpecs(t *testing.T) (Spec, Spec, Spec) {
	t.Helper()
	costs := tensor.DefaultCostModel()
	cfg := job(t)
	tl, err := training.BuildTimeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	straw, err := Strawman(cfg, DefaultRemoteBandwidth, costs)
	if err != nil {
		t.Fatal(err)
	}
	high, err := HighFreq(cfg, tl, DefaultRemoteBandwidth, costs)
	if err != nil {
		t.Fatal(err)
	}
	gem, err := Gemini(cfg, tl, 2, DefaultRemoteBandwidth, costs)
	if err != nil {
		t.Fatal(err)
	}
	return straw, high, gem
}

func TestStrawmanMatchesBLOOMSetup(t *testing.T) {
	straw, _, _ := allSpecs(t)
	if straw.Interval != 3*simclock.Hour {
		t.Fatalf("Strawman interval %v, want 3h", straw.Interval)
	}
	// 1.2 TB over 20 Gbps = 480 s.
	if math.Abs(straw.CheckpointTime.Seconds()-480) > 1 {
		t.Fatalf("Strawman t_ckpt %v, want 480s", straw.CheckpointTime)
	}
	if straw.UsesCPUMemory {
		t.Fatal("Strawman should not use CPU memory")
	}
}

func TestHighFreqSaturatesRemoteStore(t *testing.T) {
	_, high, _ := allSpecs(t)
	// §7.3: HighFreq checkpoints every ⌈t_ckpt/T_iter⌉ ≈ 8–9 iterations,
	// with a per-checkpoint serialization stall ≈ 81 s.
	iters := high.Interval.Seconds() / 60.3
	if iters < 7 || iters > 10 {
		t.Fatalf("HighFreq interval ≈ %.1f iterations, want 8–9", iters)
	}
	if s := high.PerCheckpointStall.Seconds(); math.Abs(s-81) > 8 {
		t.Fatalf("HighFreq stall %.0fs, want ≈81s", s)
	}
	if high.Interval < high.CheckpointTime {
		t.Fatal("HighFreq violates Equation 2: interval below t_ckpt")
	}
}

func TestGeminiSpecMatchesPaper(t *testing.T) {
	_, _, gem := allSpecs(t)
	// Per-iteration checkpointing.
	if iter := gem.Interval.Seconds(); iter < 55 || iter > 70 {
		t.Fatalf("GEMINI interval %.1fs, want one iteration ≈62s", iter)
	}
	// Checkpoint time < 3 s (§7.2).
	if ck := gem.CheckpointTime.Seconds(); ck <= 0 || ck > 3 {
		t.Fatalf("GEMINI t_ckpt %.2fs, want < 3s", ck)
	}
	// Serialization on recovery ≈ 162 s (§7.3).
	if s := gem.SerializeOnRecovery.Seconds(); math.Abs(s-162) > 15 {
		t.Fatalf("GEMINI recovery serialization %.0fs, want ≈162s", s)
	}
	// Peer retrieval < 3 s (§7.2: "less than three seconds").
	if p := gem.RetrievalPeer.Seconds(); p <= 0 || p > 3 {
		t.Fatalf("GEMINI peer retrieval %.2fs, want < 3s", p)
	}
	if !gem.UsesCPUMemory {
		t.Fatal("GEMINI must use CPU memory")
	}
}

func TestFrequencyRatiosMatchFigure12(t *testing.T) {
	straw, high, gem := allSpecs(t)
	// Fig. 12: GEMINI ≈8× HighFreq and >170× Strawman.
	if r := FrequencyRatio(gem, high); r < 6 || r > 10 {
		t.Fatalf("GEMINI/HighFreq frequency ratio %.1f, want ≈8", r)
	}
	if r := FrequencyRatio(gem, straw); r < 150 {
		t.Fatalf("GEMINI/Strawman frequency ratio %.1f, want >170", r)
	}
	if cpd := straw.CheckpointsPerDay(); math.Abs(cpd-8) > 1e-9 {
		t.Fatalf("Strawman %.1f checkpoints/day, want 8", cpd)
	}
}

func TestCheckpointTimeReductionMatchesFigure11(t *testing.T) {
	// At 16 machines and a 400 Gbps network, GEMINI's checkpoint time is
	// >250× shorter than the remote-storage baselines'.
	straw, _, gem := allSpecs(t)
	reduction := straw.CheckpointTime.Seconds() / gem.CheckpointTime.Seconds()
	if reduction < 200 {
		t.Fatalf("checkpoint-time reduction %.0f×, want >250× (Fig. 11)", reduction)
	}
}

func TestAverageWastedMatchesFigure10(t *testing.T) {
	straw, high, gem := allSpecs(t)
	// GEMINI software failure: ≈1.5× the iteration time (§7.2).
	soft := gem.AverageWasted(FromLocal).Seconds()
	iter := gem.Interval.Seconds()
	if soft < 1.3*iter || soft > 1.7*iter {
		t.Fatalf("GEMINI software wasted %.0fs, want ≈1.5×%.0fs", soft, iter)
	}
	// GEMINI peer recovery beats HighFreq by >13× (§7.2).
	peer := gem.AverageWasted(FromPeer).Seconds()
	if ratio := high.AverageWasted(FromRemote).Seconds() / peer; ratio < 13 {
		t.Fatalf("HighFreq/GEMINI wasted ratio %.1f, want >13", ratio)
	}
	// When CPU memory cannot recover, GEMINI degrades to Strawman.
	fallback := gem.AverageWasted(FromRemote).Seconds()
	if math.Abs(fallback-straw.AverageWasted(FromRemote).Seconds()) > 60 {
		t.Fatalf("GEMINI fallback wasted %.0fs, Strawman %.0fs — should degrade to Strawman",
			fallback, straw.AverageWasted(FromRemote).Seconds())
	}
	// Ordering: GEMINI ≪ HighFreq < Strawman.
	if !(peer < high.AverageWasted(FromRemote).Seconds() &&
		high.AverageWasted(FromRemote).Seconds() < straw.AverageWasted(FromRemote).Seconds()) {
		t.Fatal("wasted-time ordering violated")
	}
}

func TestRecoveryDowntimeAnchors(t *testing.T) {
	// §7.3: total recovery overhead ≈7 min for software failures and
	// ≈12 min for hardware failures (without standby machines).
	_, _, gem := allSpecs(t)
	soft := gem.RecoveryDowntime(FromLocal, 0)
	if m := soft.Seconds() / 60; m < 6 || m > 8.5 {
		t.Fatalf("software recovery downtime %.1f min, want ≈7 min", m)
	}
	hw := gem.RecoveryDowntime(FromPeer, 330*simclock.Second) // 5.5 min replacement
	if m := hw.Seconds() / 60; m < 11 || m > 14 {
		t.Fatalf("hardware recovery downtime %.1f min, want ≈12 min", m)
	}
}

func TestSpecValidation(t *testing.T) {
	costs := tensor.DefaultCostModel()
	if _, err := Strawman(job(t), 0, costs); err == nil {
		t.Error("zero remote bandwidth accepted")
	}
	tl, err := training.BuildTimeline(job(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := HighFreq(job(t), tl, -1, costs); err == nil {
		t.Error("negative remote bandwidth accepted")
	}
	if _, err := HighFreq(job(t), nil, DefaultRemoteBandwidth, costs); err == nil {
		t.Error("nil timeline accepted for HighFreq")
	}
	if _, err := Gemini(job(t), tl, 0, DefaultRemoteBandwidth, costs); err == nil {
		t.Error("zero replicas accepted")
	}
	if _, err := Gemini(job(t), tl, 2, 0, costs); err == nil {
		t.Error("zero remote bandwidth accepted for GEMINI")
	}
	if _, err := Gemini(job(t), nil, 2, DefaultRemoteBandwidth, costs); err == nil {
		t.Error("nil timeline accepted for GEMINI")
	}
	bad := Spec{}
	if err := bad.Validate(); err == nil {
		t.Error("empty spec accepted")
	}
	bad = Spec{Name: "x", Interval: -1, RemoteInterval: 1}
	if err := bad.Validate(); err == nil {
		t.Error("negative interval accepted")
	}
}

func TestRecoverySourceString(t *testing.T) {
	names := map[RecoverySource]string{
		FromLocal: "local", FromPeer: "peer", FromRemote: "remote",
		RecoverySource(9): "RecoverySource(9)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestBaselineRetrievalIgnoresSource(t *testing.T) {
	straw, _, _ := allSpecs(t)
	if straw.Retrieval(FromLocal) != straw.Retrieval(FromRemote) {
		t.Fatal("remote-storage solution should pay remote retrieval regardless of source")
	}
}
