package baselines

import (
	"fmt"

	"gemini/internal/metrics"
	"gemini/internal/simclock"
)

// RecoverySource says which storage tier a recovery reads from.
type RecoverySource int

const (
	// FromLocal: checkpoints are in the machine's own CPU memory
	// (software failures under GEMINI).
	FromLocal RecoverySource = iota
	// FromPeer: fetched from another machine's CPU memory (hardware
	// failure, replicas survive).
	FromPeer
	// FromRemote: fetched from the remote persistent store (baselines
	// always; GEMINI only when a whole replica group was lost).
	FromRemote
)

func (s RecoverySource) String() string {
	switch s {
	case FromLocal:
		return "local"
	case FromPeer:
		return "peer"
	case FromRemote:
		return "remote"
	default:
		return fmt.Sprintf("RecoverySource(%d)", int(s))
	}
}

// Retrieval returns the spec's t_rtvl for a recovery source. Solutions
// without a CPU-memory tier always pay the remote cost.
func (s Spec) Retrieval(src RecoverySource) simclock.Duration {
	if !s.UsesCPUMemory {
		return s.RetrievalRemote
	}
	switch src {
	case FromLocal:
		return s.RetrievalLocal
	case FromPeer:
		return s.RetrievalPeer
	default:
		return s.RetrievalRemote
	}
}

// WastedModel returns the Equation 1 model for a recovery source. When a
// CPU-memory solution falls back to the remote tier, the effective
// checkpoint interval is the remote cadence, not the per-iteration one.
func (s Spec) WastedModel(src RecoverySource) metrics.WastedTimeModel {
	interval := s.Interval
	lag := s.CompletionLag
	if s.UsesCPUMemory && src == FromRemote {
		interval = s.RemoteInterval
		lag = s.RetrievalRemote // remote push takes its own transfer time
	}
	return metrics.WastedTimeModel{
		CheckpointTime: lag,
		Interval:       interval,
		RetrievalTime:  s.Retrieval(src),
	}
}

// AverageWasted is Equation 1's expected wasted time for a failure
// recovered from the given source.
func (s Spec) AverageWasted(src RecoverySource) simclock.Duration {
	return s.WastedModel(src).Average()
}

// RecoveryDowntime is the non-Equation-1 overhead of one recovery
// (§7.3 / Fig. 14): detection, serialization of the in-memory
// checkpoints, machine replacement when hardware failed, and the
// framework restart warmup. replacementDelay is zero for software
// failures or when a standby machine absorbs the replacement.
func (s Spec) RecoveryDowntime(src RecoverySource, replacementDelay simclock.Duration) simclock.Duration {
	d := DetectionTime + s.Retrieval(src) + replacementDelay + RestartWarmup
	if s.UsesCPUMemory {
		d += s.SerializeOnRecovery
	}
	return d
}
