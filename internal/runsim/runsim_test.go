package runsim

import (
	"testing"

	"gemini/internal/baselines"
	"gemini/internal/cluster"
	"gemini/internal/failure"
	"gemini/internal/model"
	"gemini/internal/placement"
	"gemini/internal/simclock"
	"gemini/internal/tensor"
	"gemini/internal/training"
)

func specs(t *testing.T, machines int) (straw, high, gem baselines.Spec) {
	t.Helper()
	cfg := training.MustNewConfig(model.MustByName("GPT-2 100B"), cluster.MustInstance("p4d.24xlarge"), machines)
	costs := tensor.DefaultCostModel()
	tl, err := training.BuildTimeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	straw, err = baselines.Strawman(cfg, baselines.DefaultRemoteBandwidth, costs)
	if err != nil {
		t.Fatal(err)
	}
	high, err = baselines.HighFreq(cfg, tl, baselines.DefaultRemoteBandwidth, costs)
	if err != nil {
		t.Fatal(err)
	}
	gem, err = baselines.Gemini(cfg, tl, 2, baselines.DefaultRemoteBandwidth, costs)
	if err != nil {
		t.Fatal(err)
	}
	return straw, high, gem
}

func softwareFailures(t *testing.T, machines int, perDay float64, horizon simclock.Duration) failure.Schedule {
	t.Helper()
	s, err := failure.FixedRate(machines, perDay, 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func run(t *testing.T, spec baselines.Spec, machines int, fs failure.Schedule, horizon simclock.Duration) *Result {
	t.Helper()
	cfg := Config{
		Spec:     spec,
		Machines: machines,
		Failures: fs,
		Horizon:  horizon,
	}
	if spec.UsesCPUMemory {
		cfg.Placement = placement.MustMixed(machines, 2)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNoFailuresRatios(t *testing.T) {
	// Fig. 15a at x=0: GEMINI and Strawman ≈1.0; HighFreq loses ≈14.5%
	// to checkpoint serialization even without failures.
	straw, high, gem := specs(t, 16)
	horizon := 10 * simclock.Day
	if r := run(t, gem, 16, nil, horizon).EffectiveRatio; r < 0.999 {
		t.Errorf("GEMINI no-failure ratio %.4f, want ≈1", r)
	}
	if r := run(t, straw, 16, nil, horizon).EffectiveRatio; r < 0.95 {
		t.Errorf("Strawman no-failure ratio %.4f, want ≈1", r)
	}
	hf := run(t, high, 16, nil, horizon).EffectiveRatio
	if hf < 0.82 || hf > 0.90 {
		t.Errorf("HighFreq no-failure ratio %.4f, want ≈0.855 (14.5%% serialization)", hf)
	}
}

func TestFigure15aShape(t *testing.T) {
	// With 8 software failures/day on 16 machines: GEMINI stays close to
	// the no-failure baseline; HighFreq is visibly hurt; Strawman is the
	// worst.
	straw, high, gem := specs(t, 16)
	horizon := 10 * simclock.Day
	fs := softwareFailures(t, 16, 8, horizon)
	g := run(t, gem, 16, fs, horizon).EffectiveRatio
	h := run(t, high, 16, fs, horizon).EffectiveRatio
	s := run(t, straw, 16, fs, horizon).EffectiveRatio
	if g < 0.90 {
		t.Errorf("GEMINI at 8 failures/day: %.3f, want ≥0.90 (Fig. 15a)", g)
	}
	if !(g > h && h > s) {
		t.Errorf("ordering violated: GEMINI %.3f, HighFreq %.3f, Strawman %.3f", g, h, s)
	}
	if s > 0.55 {
		t.Errorf("Strawman at 8 failures/day: %.3f, want badly degraded", s)
	}
}

func TestFigure15aMonotoneInFailureRate(t *testing.T) {
	_, _, gem := specs(t, 16)
	horizon := 10 * simclock.Day
	prev := 2.0
	for _, perDay := range []float64{0, 2, 4, 6, 8} {
		fs := softwareFailures(t, 16, perDay, horizon)
		r := run(t, gem, 16, fs, horizon).EffectiveRatio
		if r > prev+1e-9 {
			t.Fatalf("ratio increased with failure rate at %v/day: %.4f > %.4f", perDay, r, prev)
		}
		prev = r
	}
}

func TestFigure15bThousandInstances(t *testing.T) {
	// Fig. 15b: at 1000 instances and 1.5%/day per-instance failures
	// (15/day), GEMINI keeps ≈91% effective time — ≈54% above HighFreq —
	// while Strawman can hardly proceed. Following the paper's
	// methodology, the per-failure overheads are the ones measured on the
	// 16-instance testbed; only the failure frequency scales with N.
	straw, high, gem := specs(t, 16)
	horizon := 10 * simclock.Day
	fs, err := failure.FixedRate(1000, failure.OPTModel().ClusterFailuresPerDay(1000), 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	g := run(t, gem, 1000, fs, horizon).EffectiveRatio
	h := run(t, high, 1000, fs, horizon).EffectiveRatio
	s := run(t, straw, 1000, fs, horizon).EffectiveRatio
	if g < 0.87 || g > 0.95 {
		t.Errorf("GEMINI at 1000 instances: %.3f, want ≈0.91", g)
	}
	if rel := g/h - 1; rel < 0.30 {
		t.Errorf("GEMINI %.3f vs HighFreq %.3f: relative gap %.0f%%, want large (paper: 54%%)", g, h, rel*100)
	}
	if s > 0.25 {
		t.Errorf("Strawman at 1000 instances: %.3f, want near-stalled", s)
	}
}

func TestHardwareFailuresUsePeerRecovery(t *testing.T) {
	_, _, gem := specs(t, 16)
	horizon := 5 * simclock.Day
	fs, err := failure.FixedRate(16, 4, 1.0, horizon) // all hardware
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, gem, 16, fs, horizon)
	if res.FromPeer == 0 {
		t.Fatal("hardware failures never recovered from peers")
	}
	if res.FromRemote != 0 {
		t.Fatalf("%d isolated hardware failures fell back to remote storage", res.FromRemote)
	}
	if res.FromLocal != 0 {
		t.Fatal("hardware failures should not recover locally")
	}
}

func TestSoftwareFailuresRecoverLocally(t *testing.T) {
	_, _, gem := specs(t, 16)
	horizon := 5 * simclock.Day
	fs := softwareFailures(t, 16, 4, horizon)
	res := run(t, gem, 16, fs, horizon)
	if res.FromLocal == 0 || res.FromPeer != 0 || res.FromRemote != 0 {
		t.Fatalf("software failures recovered %d/%d/%d (local/peer/remote), want all local",
			res.FromLocal, res.FromPeer, res.FromRemote)
	}
}

func TestWholeGroupLossFallsBackToRemote(t *testing.T) {
	// Two hardware failures in the same placement group within the
	// simultaneity window lose both replicas: GEMINI degrades to the
	// remote tier (§6.2 case 2).
	_, _, gem := specs(t, 16)
	horizon := simclock.Day
	fs := failure.Schedule{
		{At: simclock.Time(simclock.Hour), Rank: 0, Kind: cluster.HardwareFailed},
		{At: simclock.Time(simclock.Hour + simclock.Second), Rank: 1, Kind: cluster.HardwareFailed},
	}
	cfg := Config{
		Spec:      gem,
		Placement: placement.MustMixed(16, 2), // group {0,1}
		Failures:  fs,
		Horizon:   horizon,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FromRemote != 1 || res.FromPeer != 0 {
		t.Fatalf("group loss recovered %d/%d/%d (local/peer/remote), want one remote recovery",
			res.FromLocal, res.FromPeer, res.FromRemote)
	}
	// Cross-group simultaneous failures survive.
	fs[1].Rank = 2
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FromPeer != 1 || res.FromRemote != 0 {
		t.Fatalf("cross-group loss recovered %d/%d/%d, want one peer recovery",
			res.FromLocal, res.FromPeer, res.FromRemote)
	}
}

func TestReplacementDelayHurts(t *testing.T) {
	_, _, gem := specs(t, 16)
	horizon := 5 * simclock.Day
	fs, err := failure.FixedRate(16, 6, 1.0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Spec: gem, Placement: placement.MustMixed(16, 2), Failures: fs, Horizon: horizon}
	withStandby := MustRun(base)
	slow := base
	slow.ReplacementDelay = 5 * simclock.Minute
	withASG := MustRun(slow)
	if withASG.EffectiveRatio >= withStandby.EffectiveRatio {
		t.Fatalf("replacement delay did not hurt: %.4f vs %.4f",
			withASG.EffectiveRatio, withStandby.EffectiveRatio)
	}
}

func TestResultAccounting(t *testing.T) {
	_, _, gem := specs(t, 16)
	horizon := 2 * simclock.Day
	fs := softwareFailures(t, 16, 3, horizon)
	res := run(t, gem, 16, fs, horizon)
	if res.Failures != len(fs) {
		t.Fatalf("processed %d failures, schedule has %d", res.Failures, len(fs))
	}
	if res.TotalWasted <= 0 || res.MeanWasted <= 0 {
		t.Fatal("wasted-time accounting empty")
	}
	if res.EffectiveRatio <= 0 || res.EffectiveRatio >= 1 {
		t.Fatalf("ratio %.4f out of (0,1) with failures present", res.EffectiveRatio)
	}
}

func TestWastedSamplesDistribution(t *testing.T) {
	_, _, gem := specs(t, 16)
	horizon := 5 * simclock.Day
	fs := softwareFailures(t, 16, 4, horizon)
	res := run(t, gem, 16, fs, horizon)
	if len(res.WastedSamples) == 0 {
		t.Fatal("no wasted samples recorded")
	}
	sum := res.WastedSummary()
	if sum.N != len(res.WastedSamples) {
		t.Fatalf("summary over %d samples, want %d", sum.N, len(res.WastedSamples))
	}
	if sum.Min <= 0 || sum.Max < sum.Min {
		t.Fatalf("degenerate summary %+v", sum)
	}
	// The mean of the samples must reconcile with MeanWasted.
	if diff := sum.Mean - res.MeanWasted.Seconds(); diff > 1 || diff < -1 {
		t.Fatalf("sample mean %.1f disagrees with MeanWasted %v", sum.Mean, res.MeanWasted)
	}
}

func TestRunValidation(t *testing.T) {
	_, _, gem := specs(t, 16)
	if _, err := Run(Config{Spec: gem, Horizon: simclock.Day}); err == nil {
		t.Error("CPU-memory spec without placement accepted")
	}
	if _, err := Run(Config{Spec: gem, Placement: placement.MustMixed(16, 2), Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := Config{Spec: gem, Placement: placement.MustMixed(16, 2), Horizon: simclock.Day, ReplacementDelay: -1}
	if _, err := Run(bad); err == nil {
		t.Error("negative replacement delay accepted")
	}
	outOfRange := Config{
		Spec:      gem,
		Placement: placement.MustMixed(16, 2),
		Horizon:   simclock.Day,
		Failures:  failure.Schedule{{At: 1, Rank: 99, Kind: cluster.SoftwareFailed}},
	}
	if _, err := Run(outOfRange); err == nil {
		t.Error("out-of-range failure rank accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRun on bad config did not panic")
		}
	}()
	MustRun(outOfRange)
}

// TotalLost and TotalDowntime are Eq. 1's two terms; they must always
// reconstruct TotalWasted exactly, and both must be exercised by a
// failure schedule.
func TestWastedBreakdownSumsToTotal(t *testing.T) {
	_, _, gem := specs(t, 16)
	horizon := 10 * simclock.Day
	fs := softwareFailures(t, 16, 8, horizon)
	res := run(t, gem, 16, fs, horizon)
	if res.Failures == 0 {
		t.Fatal("schedule produced no failures")
	}
	// The three sums accumulate independently, so allow float association
	// noise — relative, not exact.
	sum := res.TotalLost + res.TotalDowntime
	if diff := (sum - res.TotalWasted).Seconds(); diff > 1e-6*res.TotalWasted.Seconds() || -diff > 1e-6*res.TotalWasted.Seconds() {
		t.Fatalf("TotalLost %v + TotalDowntime %v != TotalWasted %v",
			res.TotalLost, res.TotalDowntime, res.TotalWasted)
	}
	if res.TotalDowntime <= 0 {
		t.Fatal("failures happened but no downtime accrued")
	}
	if res.TotalLost < 0 {
		t.Fatalf("negative lost progress %v", res.TotalLost)
	}
	// Without failures both terms are zero.
	clean := run(t, gem, 16, nil, horizon)
	if clean.TotalLost != 0 || clean.TotalDowntime != 0 || clean.TotalWasted != 0 {
		t.Fatalf("clean run wasted %v/%v/%v, want zeros",
			clean.TotalLost, clean.TotalDowntime, clean.TotalWasted)
	}
}

// TestSimultaneityTableSharedWithAnalyzer pins the one grouping
// definition (failure.GroupEnd: windows anchored at the group's first
// event, inclusive edge, no chaining) for both consumers: the schedule
// analyzer's Corollary-1 k-counts and the simulator's recovery walk must
// read every table row identically. Placement is Mixed(16, 2), so ranks
// {0,1} share a replica group (losing both ⇒ remote) while {0,2} span
// groups (⇒ peer).
func TestSimultaneityTableSharedWithAnalyzer(t *testing.T) {
	_, _, gem := specs(t, 16)
	const w = 10 * simclock.Second
	cases := []struct {
		name     string
		fs       failure.Schedule
		groups   []int // distinct machines per window (SimultaneousGroups)
		hwGroups []int // distinct hardware machines per window (the k)
		local    int
		peer     int
		remote   int
	}{
		{
			name: "no-chaining",
			fs: failure.Schedule{
				{At: 0, Rank: 0, Kind: cluster.SoftwareFailed},
				{At: simclock.Time(6 * simclock.Second), Rank: 1, Kind: cluster.SoftwareFailed},
				{At: simclock.Time(12 * simclock.Second), Rank: 2, Kind: cluster.SoftwareFailed},
			},
			groups: []int{2, 1}, hwGroups: []int{0, 0}, local: 2,
		},
		{
			name: "same-replica-group-loss",
			fs: failure.Schedule{
				{At: 0, Rank: 0, Kind: cluster.HardwareFailed},
				{At: simclock.Time(simclock.Second), Rank: 1, Kind: cluster.HardwareFailed},
			},
			groups: []int{2}, hwGroups: []int{2}, remote: 1,
		},
		{
			name: "cross-group-survival",
			fs: failure.Schedule{
				{At: 0, Rank: 0, Kind: cluster.HardwareFailed},
				{At: simclock.Time(simclock.Second), Rank: 2, Kind: cluster.HardwareFailed},
			},
			groups: []int{2}, hwGroups: []int{2}, peer: 1,
		},
		{
			name: "software-does-not-raise-k",
			fs: failure.Schedule{
				{At: 0, Rank: 0, Kind: cluster.SoftwareFailed},
				{At: simclock.Time(simclock.Second), Rank: 1, Kind: cluster.HardwareFailed},
			},
			groups: []int{2}, hwGroups: []int{1}, peer: 1,
		},
		{
			name: "same-machine-twice-is-k1",
			fs: failure.Schedule{
				{At: 0, Rank: 0, Kind: cluster.HardwareFailed},
				{At: simclock.Time(simclock.Second), Rank: 0, Kind: cluster.HardwareFailed},
			},
			groups: []int{1}, hwGroups: []int{1}, peer: 1,
		},
		{
			name: "inclusive-window-edge",
			fs: failure.Schedule{
				{At: 0, Rank: 0, Kind: cluster.HardwareFailed},
				{At: simclock.Time(w), Rank: 1, Kind: cluster.HardwareFailed},
			},
			groups: []int{1, 1}[:1], hwGroups: []int{2}, remote: 1,
		},
	}
	cases[len(cases)-1].groups = []int{2}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.fs.Validate(16); err != nil {
				t.Fatal(err)
			}
			// Analyzer side.
			if got := tc.fs.SimultaneousGroups(w); !equalInts(got, tc.groups) {
				t.Errorf("SimultaneousGroups = %v, want %v", got, tc.groups)
			}
			if got := tc.fs.SimultaneousHardwareGroups(w); !equalInts(got, tc.hwGroups) {
				t.Errorf("SimultaneousHardwareGroups = %v, want %v", got, tc.hwGroups)
			}
			// Simulator side: same windows, same k, so the recovery
			// sources follow.
			res, err := Run(Config{
				Spec:               gem,
				Placement:          placement.MustMixed(16, 2),
				Failures:           tc.fs,
				Horizon:            simclock.Day,
				SimultaneityWindow: w,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.FromLocal != tc.local || res.FromPeer != tc.peer || res.FromRemote != tc.remote {
				t.Errorf("recoveries %d/%d/%d (local/peer/remote), want %d/%d/%d",
					res.FromLocal, res.FromPeer, res.FromRemote, tc.local, tc.peer, tc.remote)
			}
			if want := len(tc.groups); len(res.WastedSamples) != want {
				t.Errorf("%d recovery windows, analyzer sees %d groups", len(res.WastedSamples), want)
			}
			if res.Failures != len(tc.fs) {
				t.Errorf("processed %d events, schedule has %d", res.Failures, len(tc.fs))
			}
		})
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMachinesValidation pins the satellite fix: remote-storage specs
// (nil placement) must state the cluster size, and out-of-range ranks
// are rejected for every spec kind instead of being waved through by a
// 2^30 placeholder.
func TestMachinesValidation(t *testing.T) {
	straw, _, gem := specs(t, 16)
	badRank := failure.Schedule{{At: 1, Rank: 999, Kind: cluster.SoftwareFailed}}

	// Remote-storage spec without Machines: rejected outright.
	if _, err := Run(Config{Spec: straw, Horizon: simclock.Day}); err == nil {
		t.Error("remote-storage config without Machines accepted")
	}
	// Remote-storage spec with Machines: out-of-range ranks now caught.
	if _, err := Run(Config{Spec: straw, Machines: 16, Horizon: simclock.Day, Failures: badRank}); err == nil {
		t.Error("rank 999 accepted against a 16-machine remote-storage run")
	}
	// In-range schedule passes.
	ok := failure.Schedule{{At: 1, Rank: 15, Kind: cluster.SoftwareFailed}}
	if _, err := Run(Config{Spec: straw, Machines: 16, Horizon: simclock.Day, Failures: ok}); err != nil {
		t.Errorf("in-range remote-storage run rejected: %v", err)
	}
	// Machines and Placement must agree when both are given.
	if _, err := Run(Config{Spec: gem, Machines: 8, Placement: placement.MustMixed(16, 2), Horizon: simclock.Day}); err == nil {
		t.Error("Machines=8 with a 16-machine placement accepted")
	}
	if _, err := Run(Config{Spec: gem, Machines: -1, Placement: placement.MustMixed(16, 2), Horizon: simclock.Day}); err == nil {
		t.Error("negative Machines accepted")
	}
	if _, err := Run(Config{Spec: gem, Machines: 16, Placement: placement.MustMixed(16, 2), Horizon: simclock.Day}); err != nil {
		t.Errorf("agreeing Machines and placement rejected: %v", err)
	}
}
