package runsim

import (
	"fmt"
	"testing"

	"gemini/internal/metrics"
	"gemini/internal/placement"
	"gemini/internal/simclock"
	"gemini/internal/trace"
)

const day = simclock.Duration(24 * 3600)

func observedRun(t *testing.T, obs Observer) *Result {
	t.Helper()
	_, _, gem := specs(t, 16)
	cfg := Config{
		Spec:      gem,
		Placement: placement.MustMixed(16, 2),
		Machines:  16,
		Failures:  softwareFailures(t, 16, 8, 10*day),
		Horizon:   10 * day,
		Obs:       obs,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The flight-recorder contract: attaching taps never changes the walk.
func TestObserverIsPure(t *testing.T) {
	plain := observedRun(t, Observer{})
	observed := observedRun(t, Observer{
		Tracer:  trace.NewTracer(nil),
		Metrics: metrics.NewRegistry(),
		Wasted:  metrics.NewSeries("wasted", 4096),
		Ratio:   metrics.NewSeries("ratio", 4096),
	})
	// Compare everything but the (pooled) sample slices, which hold the
	// same values in fresh backing arrays.
	p, o := *plain, *observed
	if len(p.WastedSamples) != len(o.WastedSamples) {
		t.Fatalf("sample counts diverged: %d vs %d", len(p.WastedSamples), len(o.WastedSamples))
	}
	for i := range p.WastedSamples {
		if p.WastedSamples[i] != o.WastedSamples[i] {
			t.Fatalf("sample %d diverged: %v vs %v", i, p.WastedSamples[i], o.WastedSamples[i])
		}
	}
	p.WastedSamples, o.WastedSamples = nil, nil
	if got, want := fmt.Sprintf("%+v", o), fmt.Sprintf("%+v", p); got != want {
		t.Fatalf("observed run diverged:\n%s\nvs\n%s", got, want)
	}
}

func TestObserverMetricsMatchResult(t *testing.T) {
	reg := metrics.NewRegistry()
	res := observedRun(t, Observer{Metrics: reg})
	if res.Failures == 0 {
		t.Fatal("fixture produced no failures")
	}
	cs := reg.Snapshot()
	recoveries := res.FromLocal + res.FromPeer + res.FromRemote
	for name, want := range map[string]float64{
		"run.failures":             float64(res.Failures),
		"run.recoveries":           float64(recoveries),
		"run.from_local":           float64(res.FromLocal),
		"run.from_peer":            float64(res.FromPeer),
		"run.from_remote":          float64(res.FromRemote),
		"run.wasted_seconds.count": float64(recoveries),
		"run.effective_ratio.mean": res.EffectiveRatio,
		"run.stall_seconds.mean":   res.StallTime.Seconds(),
	} {
		if got, ok := cs.Get(name); !ok || got != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, got, ok, want)
		}
	}
	// The histogram sums reproduce the scalar totals exactly: the taps
	// observe the same float adds the walk performs.
	var wastedSum float64
	reg.Visit(func(name string, _ *metrics.CounterVar, _ *metrics.Gauge, h *metrics.Histogram) {
		if name == "run.wasted_seconds" {
			wastedSum = h.Sum()
		}
	})
	if want := res.TotalWasted.Seconds(); wastedSum != want {
		t.Errorf("run.wasted_seconds sum = %v, want %v", wastedSum, want)
	}
}

func TestObserverTraceAndTimeline(t *testing.T) {
	tr := trace.NewTracer(nil)
	wasted := metrics.NewSeries("wasted_seconds", 4096)
	ratio := metrics.NewSeries("effective_ratio", 4096)
	res := observedRun(t, Observer{Tracer: tr, Wasted: wasted, Ratio: ratio})
	recoveries := res.FromLocal + res.FromPeer + res.FromRemote

	tracks := tr.Tracks()
	if len(tracks) != 1 {
		t.Fatalf("%d tracks, want 1", len(tracks))
	}
	tk := tracks[0]
	if tk.OpenSpans() != 0 {
		t.Fatalf("%d spans left open", tk.OpenSpans())
	}
	if got := len(tk.Spans()); got != recoveries {
		t.Fatalf("%d recovery spans, want %d", got, recoveries)
	}
	if got := len(tk.Instants()); got != res.Failures {
		t.Fatalf("%d failure instants, want %d", got, res.Failures)
	}
	if got := len(tk.Samples()); got != recoveries {
		t.Fatalf("%d counter samples, want %d", got, recoveries)
	}

	if wasted.Len() != recoveries || ratio.Len() != recoveries {
		t.Fatalf("timeline lengths %d/%d, want %d", wasted.Len(), ratio.Len(), recoveries)
	}
	// Resumption times are strictly increasing and wasted is cumulative.
	for i := 1; i < wasted.Len(); i++ {
		if wasted.Point(i).At <= wasted.Point(i-1).At {
			t.Fatalf("timeline time not strictly increasing at %d: %v then %v",
				i, wasted.Point(i-1).At, wasted.Point(i).At)
		}
		if wasted.Point(i).Value < wasted.Point(i-1).Value {
			t.Fatalf("cumulative wasted decreased at %d", i)
		}
	}
	if last, ok := wasted.Last(); !ok || last.Value != res.TotalWasted.Seconds() {
		t.Fatalf("final cumulative wasted %v, want %v", last.Value, res.TotalWasted.Seconds())
	}
}

// A zero Observer must not add allocations to the walk — the campaign
// hot loop passes it unconditionally. Gated in ci.sh.
func TestRunZeroObserverAllocs(t *testing.T) {
	_, _, gem := specs(t, 16)
	fs := softwareFailures(t, 16, 8, 10*day)
	cfg := Config{Spec: gem, Machines: 16, Failures: fs, Horizon: 10 * day}
	cfg.Placement = placement.MustMixed(16, 2)
	// Warm the pools.
	for i := 0; i < 3; i++ {
		res := MustRun(cfg)
		res.Release()
	}
	n := testing.AllocsPerRun(50, func() {
		res := MustRun(cfg)
		res.Release()
	})
	// The walk itself is pooled; the steady-state allocations are the
	// *Result header and Release's pool pointer — exactly what Run cost
	// before observation existed, so a zero Observer adds nothing.
	if n > 2 {
		t.Fatalf("Run with zero Observer allocates %.1f/op, want ≤ 2", n)
	}
}
