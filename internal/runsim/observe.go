package runsim

// Observation taps for the event walk. The flight recorder's promise —
// "re-run the outlier and the deep observability is free" — rests on
// Run being a *pure observer* host: attaching any combination of taps
// never changes Result, and the zero Observer adds no allocations to
// the walk (gated by an alloc test, like the nil tracer and nil
// registry before it).

import (
	"fmt"

	"gemini/internal/baselines"
	"gemini/internal/failure"
	"gemini/internal/metrics"
	"gemini/internal/simclock"
	"gemini/internal/trace"
)

// Observer collects what a run can tell about itself. Every field is
// optional; the zero Observer is fully disabled.
type Observer struct {
	// Tracer receives the Perfetto view: a run/recovery track with one
	// span per recovery (category "recovery", named by source), an
	// instant per injected failure, and a cumulative wasted-seconds
	// counter sampled at each resumption.
	Tracer *trace.Tracer
	// Metrics receives run.* instruments: failure/recovery/source
	// counters, per-recovery wasted/lost/downtime histograms, and
	// single-observation effective-ratio and stall histograms (so
	// cross-run merges yield distributions).
	Metrics *metrics.Registry
	// Wasted and Ratio receive one point per recovery at its resumption
	// time: cumulative wasted seconds, and progress-so-far divided by
	// elapsed sim time. Resumption times are strictly increasing
	// (downtime is always positive), so the timeline CSV these render
	// into is strictly time-ordered. Callers size the rings.
	Wasted *metrics.Series
	Ratio  *metrics.Series
}

// runTaps holds the resolved per-run instruments. Resolving them once
// up front keeps the walk free of map lookups; on a disabled observer
// every field is nil and every call below no-ops without allocating.
type runTaps struct {
	track *trace.Track
	reg   *metrics.Registry

	failures, recoveries            *metrics.CounterVar
	fromLocal, fromPeer, fromRemote *metrics.CounterVar
	wastedH, lostH, downH           *metrics.Histogram

	wastedSeries, ratioSeries *metrics.Series
	cumWasted                 float64
}

func (o Observer) taps() runTaps {
	reg := o.Metrics
	return runTaps{
		track:        o.Tracer.Track("run", "recovery"),
		reg:          reg,
		failures:     reg.Counter("run.failures"),
		recoveries:   reg.Counter("run.recoveries"),
		fromLocal:    reg.Counter("run.from_local"),
		fromPeer:     reg.Counter("run.from_peer"),
		fromRemote:   reg.Counter("run.from_remote"),
		wastedH:      reg.Histogram("run.wasted_seconds"),
		lostH:        reg.Histogram("run.lost_seconds"),
		downH:        reg.Histogram("run.downtime_seconds"),
		wastedSeries: o.Wasted,
		ratioSeries:  o.Ratio,
	}
}

func (t *runTaps) failure(ev failure.Event) {
	t.failures.Add(1)
	if t.track.Enabled() {
		t.track.InstantArgsAt("failure", ev.Kind.String(), ev.At,
			fmt.Sprintf("rank=%d", ev.Rank))
	}
}

func (t *runTaps) recovery(src baselines.RecoverySource, start, resume simclock.Time,
	rollback float64, down simclock.Duration, progress float64) {
	t.recoveries.Add(1)
	switch src {
	case baselines.FromLocal:
		t.fromLocal.Add(1)
	case baselines.FromPeer:
		t.fromPeer.Add(1)
	default:
		t.fromRemote.Add(1)
	}
	wasted := rollback + down.Seconds()
	t.wastedH.Observe(wasted)
	t.lostH.Observe(rollback)
	t.downH.Observe(down.Seconds())
	t.cumWasted += wasted
	if t.track.Enabled() {
		t.track.SpanArgs("recovery", src.String(), start, resume,
			fmt.Sprintf("lost=%.0fs down=%s", rollback, down))
		t.track.SampleAt("wasted_seconds", resume, t.cumWasted)
	}
	t.wastedSeries.Append(resume, t.cumWasted)
	t.ratioSeries.Append(resume, progress/float64(resume))
}

// finish lands the whole-run outcomes. They are histograms with a
// single observation (not gauges) so that merging many runs' registries
// yields their cross-run distribution instead of last-merged-wins.
func (t *runTaps) finish(res *Result) {
	t.reg.Histogram("run.effective_ratio").Observe(res.EffectiveRatio)
	t.reg.Histogram("run.stall_seconds").Observe(res.StallTime.Seconds())
}
