// Package runsim is the long-horizon training simulator behind §7.3:
// given a checkpointing solution, a failure schedule, and a cluster
// placement, it walks the schedule and accounts for every second —
// productive training, per-checkpoint serialization stalls, rolled-back
// progress, and recovery downtime — producing the effective
// training-time ratio of Figures 15a and 15b.
package runsim

import (
	"fmt"
	"sync"

	"gemini/internal/baselines"
	"gemini/internal/cluster"
	"gemini/internal/failure"
	"gemini/internal/metrics"
	"gemini/internal/placement"
	"gemini/internal/simclock"
)

// runScratch is the pooled per-run arena for the failure-window walk: a
// FailSet sized to the largest cluster seen plus its rank list. Run
// returns it to the pool with every bit cleared, so a warm campaign run
// allocates nothing for window state.
type runScratch struct {
	hwSet   placement.FailSet
	hwRanks []int
}

var scratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// samplesPool recycles WastedSamples backing arrays handed back through
// Result.Release.
var samplesPool = sync.Pool{New: func() any { return new([]float64) }}

// Config describes one simulated run.
type Config struct {
	// Spec is the checkpointing solution under test.
	Spec baselines.Spec
	// Placement decides CPU-memory survival for GEMINI-style specs; it
	// may be nil for remote-storage solutions.
	Placement *placement.Placement
	// Machines is the real cluster size N the failure schedule is
	// validated against. Zero defaults to Placement.N when a placement
	// is present; remote-storage specs (nil Placement) must state it
	// explicitly so schedules with out-of-range ranks are rejected
	// instead of silently accepted. When both are set they must agree.
	Machines int
	// Failures is the injected failure schedule.
	Failures failure.Schedule
	// Horizon is the simulated wall-clock length.
	Horizon simclock.Duration
	// ReplacementDelay is the machine-provisioning delay paid per
	// hardware failure (zero when standby machines absorb it).
	ReplacementDelay simclock.Duration
	// SimultaneityWindow groups failures that land within it into one
	// recovery (they are "simultaneous" in the Corollary 1 sense).
	// Zero selects the recovery downtime itself as the window.
	SimultaneityWindow simclock.Duration
	// Obs optionally taps the walk (tracer spans, run.* metrics,
	// per-recovery timelines). Pure observer: Result is bit-identical
	// with or without it, and the zero Observer costs nothing.
	Obs Observer
}

func (c Config) validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("runsim: horizon %v must be positive", c.Horizon)
	}
	if c.ReplacementDelay < 0 || c.SimultaneityWindow < 0 {
		return fmt.Errorf("runsim: negative delays")
	}
	if c.Spec.UsesCPUMemory && c.Placement == nil {
		return fmt.Errorf("runsim: CPU-memory solution needs a placement")
	}
	if c.Machines < 0 {
		return fmt.Errorf("runsim: negative machine count %d", c.Machines)
	}
	n := c.Machines
	if c.Placement != nil {
		if n == 0 {
			n = c.Placement.N
		} else if n != c.Placement.N {
			return fmt.Errorf("runsim: Machines %d disagrees with placement over %d machines", n, c.Placement.N)
		}
	}
	if n == 0 {
		return fmt.Errorf("runsim: remote-storage config needs Machines set to validate failure ranks")
	}
	return c.Failures.Validate(n)
}

// Result is the outcome of a run.
type Result struct {
	// EffectiveRatio is productive progress divided by the horizon.
	EffectiveRatio float64
	// Failures processed (grouped recoveries count each member).
	Failures int
	// Recoveries by source.
	FromLocal, FromPeer, FromRemote int
	// TotalWasted is Σ (lost progress + recovery downtime).
	TotalWasted simclock.Duration
	// TotalLost and TotalDowntime split TotalWasted into Eq. 1's two
	// terms: rolled-back progress vs detection-to-resumption downtime.
	TotalLost, TotalDowntime simclock.Duration
	// MeanWasted is TotalWasted over the number of recoveries.
	MeanWasted simclock.Duration
	// StallTime is the cumulative per-checkpoint serialization stall.
	StallTime simclock.Duration
	// WastedSamples holds the per-recovery wasted time in seconds, in
	// occurrence order, for distribution analysis.
	WastedSamples []float64
}

// Release recycles the WastedSamples backing array into the run pool.
// Optional: call it when the caller is done with the result (campaign
// loops that only read the scalar fields), never while WastedSamples is
// still referenced. The result remains valid except for WastedSamples,
// which becomes nil.
func (r *Result) Release() {
	if r.WastedSamples == nil {
		return
	}
	s := r.WastedSamples[:0]
	r.WastedSamples = nil
	samplesPool.Put(&s)
}

// WastedSummary returns order statistics over the per-recovery wasted
// times. It panics when no recoveries happened.
func (r *Result) WastedSummary() metrics.Summary {
	return metrics.Summarize(r.WastedSamples)
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := cfg.Spec
	// Productive fraction while up: each Interval of progress costs
	// Interval + Stall of wall time.
	period := s.Interval + s.PerCheckpointStall
	phi := float64(s.Interval / period)

	res := &Result{}
	// Wasted-sample backing from the pool, pre-sized to the worst case
	// (one recovery per failure event).
	sp := samplesPool.Get().(*[]float64)
	res.WastedSamples = (*sp)[:0]
	if cap(res.WastedSamples) < len(cfg.Failures) {
		res.WastedSamples = make([]float64, 0, len(cfg.Failures))
	}
	var progress float64 // seconds of productive training achieved
	var resume simclock.Time
	// lastRemote tracks the newest remote-tier checkpoint: the progress
	// value it captured. Remote checkpoints fire on the RemoteInterval
	// grid while training is up.
	var lastRemoteProgress float64
	var nextRemote simclock.Time = simclock.Time(s.RemoteInterval)

	horizon := simclock.Time(cfg.Horizon)
	recoveries := 0

	// advanceUptime accrues progress over [resume, until) and fires
	// remote-tier checkpoints on their grid.
	advanceUptime := func(until simclock.Time) {
		if until <= resume {
			return
		}
		for nextRemote < until {
			if nextRemote >= resume {
				lastRemoteProgress = progress + float64(nextRemote.Sub(resume))*phi
			}
			nextRemote = nextRemote.Add(s.RemoteInterval)
		}
		up := until.Sub(resume)
		progress += float64(up) * phi
		res.StallTime += simclock.Duration(float64(up) * (1 - phi))
	}

	events := cfg.Failures
	i := 0
	taps := cfg.Obs.taps()
	// Failure-window scratch for the bitset survival kernel, reused
	// across windows and pooled across runs: a rank list plus a FailSet
	// sized to the cluster. The pool invariant is all-bits-clear, so a
	// recycled set behaves like a fresh one.
	sc := scratchPool.Get().(*runScratch)
	hwRanks := sc.hwRanks[:0]
	var hwSet placement.FailSet
	if cfg.Placement != nil {
		words := (cfg.Placement.N + 63) >> 6
		if cap(sc.hwSet) < words {
			sc.hwSet = make(placement.FailSet, words)
		}
		hwSet = sc.hwSet[:words]
	}
	for i < len(events) {
		if events[i].At >= horizon {
			break
		}
		// Group simultaneous failures. The window is anchored at the
		// group's first event and never chains — failure.GroupEnd is the
		// shared definition, so the analyzer's SimultaneousGroups counts
		// and this walk always agree on the Corollary 1 k.
		window := cfg.SimultaneityWindow
		if window == 0 {
			window = s.RecoveryDowntime(baselines.FromPeer, cfg.ReplacementDelay)
		}
		j := events.GroupEnd(i, window)
		for _, r := range hwRanks {
			hwSet.Clear(r)
		}
		hwRanks = hwRanks[:0]
		hardware := false
		for _, ev := range events[i:j] {
			if ev.Kind == cluster.HardwareFailed {
				hardware = true
				if hwSet != nil && !hwSet.Has(ev.Rank) {
					hwSet.Set(ev.Rank)
					hwRanks = append(hwRanks, ev.Rank)
				}
			}
			res.Failures++
			taps.failure(ev)
		}
		at := events[i].At
		if at < resume {
			at = resume // failure landed during a recovery; handle after
		}
		advanceUptime(at)

		// Decide the recovery source.
		src := baselines.FromRemote
		if s.UsesCPUMemory {
			switch {
			case !hardware:
				src = baselines.FromLocal
			case cfg.Placement.SurvivesFailed(hwRanks, hwSet):
				src = baselines.FromPeer
			default:
				src = baselines.FromRemote
			}
		}
		switch src {
		case baselines.FromLocal:
			res.FromLocal++
		case baselines.FromPeer:
			res.FromPeer++
		default:
			res.FromRemote++
		}

		// Roll back progress to the newest usable checkpoint.
		var rollback float64
		if s.UsesCPUMemory && src != baselines.FromRemote {
			// CPU tier: the newest complete checkpoint lags CompletionLag
			// behind and captures progress on the Interval grid.
			rollback = lostSinceCheckpoint(progress, s.Interval, s.CompletionLag, phi)
		} else if !s.UsesCPUMemory {
			rollback = lostSinceCheckpoint(progress, s.Interval, s.CompletionLag, phi)
		} else {
			rollback = progress - lastRemoteProgress
		}
		if rollback < 0 {
			rollback = 0
		}
		if rollback > progress {
			rollback = progress
		}
		progress -= rollback

		replacement := simclock.Duration(0)
		if hardware {
			replacement = cfg.ReplacementDelay
		}
		down := s.RecoveryDowntime(src, replacement)
		wasted := simclock.Duration(rollback) + down
		res.TotalWasted += wasted
		res.TotalLost += simclock.Duration(rollback)
		res.TotalDowntime += down
		res.WastedSamples = append(res.WastedSamples, wasted.Seconds())
		resume = at.Add(down)
		taps.recovery(src, at, resume, rollback, down, progress)
		recoveries++
		i = j
	}
	// Restore the pool invariant (clear exactly the bits the last window
	// set) and hand the scratch back.
	for _, r := range hwRanks {
		hwSet.Clear(r)
	}
	sc.hwRanks = hwRanks[:0]
	scratchPool.Put(sc)
	if resume < horizon {
		advanceUptime(horizon)
	}
	res.EffectiveRatio = progress / float64(cfg.Horizon)
	if recoveries > 0 {
		res.MeanWasted = res.TotalWasted / simclock.Duration(recoveries)
	}
	taps.finish(res)
	return res, nil
}

// lostSinceCheckpoint estimates the progress rolled back when recovering
// from the per-interval checkpoint tier: on average half an interval of
// progress plus the completion lag (the Equation 1 structure), bounded by
// the current progress. The deterministic walk uses the progress phase
// within the interval instead of the expectation.
func lostSinceCheckpoint(progress float64, interval, lag simclock.Duration, phi float64) float64 {
	if interval <= 0 {
		return 0
	}
	phase := progress - float64(interval)*float64(int(progress/float64(interval)))
	return phase + float64(lag)*phi
}

// MustRun is Run for known-good configs.
func MustRun(cfg Config) *Result {
	res, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return res
}
