package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	prog := NewProgress()
	prog.Begin(10, 1000)
	prog.RunStarted()
	prog.RunDone(4, 1000)
	reg := NewSyncRegistry()
	reg.Observe("campaign.wasted_seconds", 300)

	srv, err := NewServer("127.0.0.1:0", prog, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE campaign_total_runs gauge\ncampaign_total_runs 10\n",
		"campaign_done_runs 1\n",
		"campaign_failures_replayed 4\n",
		"# TYPE campaign_wasted_seconds histogram\n",
		`campaign_wasted_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = getBody(t, base+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if snap.TotalRuns != 10 || snap.DoneRuns != 1 || snap.Failures != 4 {
		t.Fatalf("/progress snapshot %+v", snap)
	}

	if code, _ := getBody(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

// Nil progress and registry must serve empty-but-valid endpoints.
func TestServerNilSources(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, body := getBody(t, base+"/metrics"); code != http.StatusOK || body != "" {
		t.Fatalf("/metrics with nil sources: status %d body %q", code, body)
	}
	code, body := getBody(t, base+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil || snap != (Snapshot{}) {
		t.Fatalf("/progress with nil progress: %v %+v", err, snap)
	}
}
