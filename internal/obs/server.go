package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"

	"gemini/internal/metrics"
)

// Server is the campaign observability endpoint: /metrics serves the
// live progress counters plus the aggregated registry in Prometheus
// text exposition format, /progress serves the Snapshot as JSON, and
// /debug/pprof/* exposes the standard profiler handlers. It binds its
// own listener so callers can pass ":0" and discover the port — the
// first brick of the service-mode daemon on the ROADMAP.
type Server struct {
	prog *Progress
	reg  *SyncRegistry
	ln   net.Listener
	srv  *http.Server
}

// NewServer starts serving on addr (host:port; ":0" picks a free port).
// prog and reg may each be nil — the endpoints then render only what
// exists. The server runs until Close.
func NewServer(addr string, prog *Progress, reg *SyncRegistry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{prog: prog, reg: reg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close.
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if s.prog != nil {
		snap := s.prog.Snapshot()
		cs := metrics.CounterSet{
			{Name: "campaign.total_runs", Value: float64(snap.TotalRuns)},
			{Name: "campaign.started_runs", Value: float64(snap.StartedRuns)},
			{Name: "campaign.done_runs", Value: float64(snap.DoneRuns)},
			{Name: "campaign.failures_replayed", Value: float64(snap.Failures)},
			{Name: "campaign.sim_seconds_done", Value: snap.SimSecondsDone},
			{Name: "campaign.elapsed_seconds", Value: snap.ElapsedSeconds},
			{Name: "campaign.eta_seconds", Value: snap.ETASeconds},
		}
		if err := metrics.WritePromSnapshot(w, cs); err != nil {
			return
		}
	}
	s.reg.WriteProm(w) //nolint:errcheck // best effort: client may hang up
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.prog.Snapshot()) //nolint:errcheck // best effort
}
