package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"gemini/internal/metrics"
)

// The -race satellite: workers observe and merge concurrently while a
// reader snapshots and serves /metrics-style expositions.
func TestSyncRegistryConcurrentObserveSnapshotMerge(t *testing.T) {
	s := NewSyncRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Add("runs", 1)
				s.Set("coverage", float64(w))
				s.Observe("wasted", float64(i))
				run := metrics.NewRegistry()
				run.Counter("merged").Inc()
				run.Histogram("wasted").Observe(float64(i))
				s.Merge(run)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = s.Snapshot()
			var buf bytes.Buffer
			if err := s.WriteProm(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	cs := s.Snapshot()
	if v, ok := cs.Get("runs"); !ok || v != 200 {
		t.Fatalf("runs = %v/%v, want 200", v, ok)
	}
	if v, ok := cs.Get("merged"); !ok || v != 200 {
		t.Fatalf("merged = %v/%v, want 200", v, ok)
	}
	if v, ok := cs.Get("wasted.count"); !ok || v != 400 {
		t.Fatalf("wasted.count = %v/%v, want 400 (200 direct + 200 merged)", v, ok)
	}
}

func TestSyncRegistryWriteProm(t *testing.T) {
	s := NewSyncRegistry()
	s.Add("campaign.runs", 3)
	s.Observe("campaign.wasted", 100)
	var buf bytes.Buffer
	if err := s.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE campaign_runs counter\ncampaign_runs 3\n",
		"# TYPE campaign_wasted histogram\n",
		`campaign_wasted_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNilSyncRegistryIsDisabled(t *testing.T) {
	var s *SyncRegistry
	s.Add("x", 1)
	s.Set("y", 2)
	s.Observe("z", 3)
	s.Merge(metrics.NewRegistry())
	if s.Snapshot() != nil {
		t.Fatal("nil SyncRegistry snapshot not nil")
	}
	var buf bytes.Buffer
	if err := s.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteProm: err=%v bytes=%d", err, buf.Len())
	}
}
