// Package obs is the campaign-scale observability layer: a live
// Progress sink the parallel fan-out updates from worker goroutines, a
// mutex-guarded SyncRegistry for cross-run aggregation served while a
// campaign runs, and an HTTP server exposing both (plus pprof) — the
// first brick of the ROADMAP's service-mode daemon.
//
// Everything here follows the repo's nil-is-disabled convention: a nil
// *Progress or *SyncRegistry no-ops without allocating, so hot paths
// update observability unconditionally (gated by alloc tests, like the
// nil tracer and nil registry before it).
package obs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Progress counts campaign work as it happens. Unlike metrics.Registry
// (a per-run, single-goroutine sink) Progress is updated concurrently
// by every worker, so it is built from atomics and safe for any number
// of writers and readers. The zero value is ready; a nil *Progress is
// the disabled sink.
type Progress struct {
	startNanos atomic.Int64  // wall-clock start, unix nanos (0 = not begun)
	totalRuns  atomic.Int64  // runs expected this campaign
	started    atomic.Int64  // runs handed to a worker
	done       atomic.Int64  // runs completed
	failures   atomic.Int64  // failures replayed across completed runs
	simDone    atomic.Uint64 // float64 bits: simulated seconds completed
	simPerRun  atomic.Uint64 // float64 bits: simulated seconds per run
}

// NewProgress returns an enabled progress sink.
func NewProgress() *Progress { return &Progress{} }

// Begin marks the campaign start: totalRuns runs, each simulating
// simSecondsPerRun of cluster time. The ETA estimator weights completed
// work by that simulated cost. Begin resets all counters, so one sink
// can serve consecutive campaigns.
func (p *Progress) Begin(totalRuns int, simSecondsPerRun float64) {
	if p == nil {
		return
	}
	p.totalRuns.Store(int64(totalRuns))
	p.started.Store(0)
	p.done.Store(0)
	p.failures.Store(0)
	p.simDone.Store(0)
	p.simPerRun.Store(math.Float64bits(simSecondsPerRun))
	p.startNanos.Store(time.Now().UnixNano())
}

// RunStarted records a run being handed to a worker.
func (p *Progress) RunStarted() {
	if p == nil {
		return
	}
	p.started.Add(1)
}

// RunDone records a completed run: the failures it replayed and the
// simulated seconds it covered.
func (p *Progress) RunDone(failures int, simSeconds float64) {
	if p == nil {
		return
	}
	p.done.Add(1)
	p.failures.Add(int64(failures))
	for {
		old := p.simDone.Load()
		next := math.Float64bits(math.Float64frombits(old) + simSeconds)
		if p.simDone.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot is a point-in-time view of campaign progress.
type Snapshot struct {
	TotalRuns       int64   `json:"total_runs"`
	StartedRuns     int64   `json:"started_runs"`
	DoneRuns        int64   `json:"done_runs"`
	Failures        int64   `json:"failures_replayed"`
	SimSecondsDone  float64 `json:"sim_seconds_done"`
	SimSecondsTotal float64 `json:"sim_seconds_total"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	ETASeconds      float64 `json:"eta_seconds"` // 0 until a run completes
}

// Snapshot reads the current counters. The ETA scales elapsed wall time
// by the ratio of remaining to completed simulated seconds — i.e. it
// assumes wall cost is proportional to simulated cost, which holds for
// the event-walk kernel. Nil yields the zero snapshot.
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	s := Snapshot{
		TotalRuns:      p.totalRuns.Load(),
		StartedRuns:    p.started.Load(),
		DoneRuns:       p.done.Load(),
		Failures:       p.failures.Load(),
		SimSecondsDone: math.Float64frombits(p.simDone.Load()),
	}
	s.SimSecondsTotal = math.Float64frombits(p.simPerRun.Load()) * float64(s.TotalRuns)
	if start := p.startNanos.Load(); start > 0 {
		s.ElapsedSeconds = time.Since(time.Unix(0, start)).Seconds()
	}
	if s.SimSecondsDone > 0 && s.SimSecondsTotal > s.SimSecondsDone {
		s.ETASeconds = s.ElapsedSeconds * (s.SimSecondsTotal - s.SimSecondsDone) / s.SimSecondsDone
	}
	return s
}

// String renders the snapshot as the one-line form cmd/campaign prints
// to stderr: runs done/total, failures replayed, simulated coverage,
// elapsed wall time, and the ETA once one run has completed.
func (s Snapshot) String() string {
	pct := 0.0
	if s.TotalRuns > 0 {
		pct = 100 * float64(s.DoneRuns) / float64(s.TotalRuns)
	}
	out := fmt.Sprintf("runs %d/%d (%.0f%%) · failures %d · sim %.3gs · elapsed %.1fs",
		s.DoneRuns, s.TotalRuns, pct, s.Failures, s.SimSecondsDone, s.ElapsedSeconds)
	if s.ETASeconds > 0 {
		out += fmt.Sprintf(" · eta %.1fs", s.ETASeconds)
	}
	return out
}
