package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestProgressCounts(t *testing.T) {
	p := NewProgress()
	p.Begin(4, 1000)
	p.RunStarted()
	p.RunStarted()
	p.RunDone(3, 1000)
	p.RunDone(5, 1000)
	s := p.Snapshot()
	if s.TotalRuns != 4 || s.StartedRuns != 2 || s.DoneRuns != 2 || s.Failures != 8 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.SimSecondsDone != 2000 || s.SimSecondsTotal != 4000 {
		t.Fatalf("sim seconds %v/%v, want 2000/4000", s.SimSecondsDone, s.SimSecondsTotal)
	}
	if s.ElapsedSeconds < 0 {
		t.Fatalf("elapsed %v", s.ElapsedSeconds)
	}
	// Half the simulated work is done, so ETA ≈ elapsed.
	if s.ETASeconds < 0 || s.ETASeconds > 10*s.ElapsedSeconds+1 {
		t.Fatalf("eta %v vs elapsed %v", s.ETASeconds, s.ElapsedSeconds)
	}
	line := s.String()
	for _, want := range []string{"runs 2/4 (50%)", "failures 8"} {
		if !strings.Contains(line, want) {
			t.Errorf("String() = %q, missing %q", line, want)
		}
	}
}

func TestProgressConcurrentUpdates(t *testing.T) {
	p := NewProgress()
	p.Begin(64, 100)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				p.RunStarted()
				p.RunDone(2, 100)
				_ = p.Snapshot() // readers race writers under -race
			}
		}()
	}
	wg.Wait()
	s := p.Snapshot()
	if s.StartedRuns != 64 || s.DoneRuns != 64 || s.Failures != 128 {
		t.Fatalf("snapshot after concurrent updates: %+v", s)
	}
	if s.SimSecondsDone != 6400 {
		t.Fatalf("sim seconds %v, want 6400 (float adds of equal values are exact)", s.SimSecondsDone)
	}
}

func TestNilProgressIsDisabled(t *testing.T) {
	var p *Progress
	p.Begin(10, 100)
	p.RunStarted()
	p.RunDone(1, 100)
	if s := p.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil progress snapshot %+v, want zero", s)
	}
}

// Both the disabled (nil) and enabled paths must be allocation-free —
// RunStarted/RunDone sit inside the campaign's per-run loop. Gated in
// ci.sh outside the race detector.
func TestProgressAllocsZero(t *testing.T) {
	var disabled *Progress
	if n := testing.AllocsPerRun(200, func() {
		disabled.RunStarted()
		disabled.RunDone(3, 1000)
	}); n != 0 {
		t.Fatalf("disabled progress allocates %.1f/op, want 0", n)
	}
	enabled := NewProgress()
	enabled.Begin(1<<20, 1000)
	if n := testing.AllocsPerRun(200, func() {
		enabled.RunStarted()
		enabled.RunDone(3, 1000)
	}); n != 0 {
		t.Fatalf("enabled progress allocates %.1f/op, want 0", n)
	}
}

func TestBeginResetsCounters(t *testing.T) {
	p := NewProgress()
	p.Begin(4, 100)
	p.RunStarted()
	p.RunDone(7, 100)
	p.Begin(2, 50)
	s := p.Snapshot()
	if s.TotalRuns != 2 || s.StartedRuns != 0 || s.DoneRuns != 0 || s.Failures != 0 || s.SimSecondsDone != 0 {
		t.Fatalf("Begin did not reset: %+v", s)
	}
	if s.SimSecondsTotal != 100 {
		t.Fatalf("sim total %v, want 100", s.SimSecondsTotal)
	}
}
