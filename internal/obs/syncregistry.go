package obs

import (
	"io"
	"sync"

	"gemini/internal/metrics"
)

// SyncRegistry wraps a metrics.Registry with a mutex so many goroutines
// can observe and merge while a reader snapshots or serves /metrics.
// metrics.Registry itself stays lock-free by design (it is a per-run
// sink on the hot path); SyncRegistry is the shared aggregation point
// the campaign server hangs off. A nil *SyncRegistry is disabled.
//
// Note the determinism split: the campaign's *reported* aggregates are
// merged post-barrier in variation order (see scenario.RunCampaign) and
// are byte-identical at any worker count; a SyncRegistry merged live
// from workers reflects arrival order and is for serving, not for
// golden files.
type SyncRegistry struct {
	mu sync.Mutex
	r  *metrics.Registry
}

// NewSyncRegistry returns an enabled, empty registry.
func NewSyncRegistry() *SyncRegistry {
	return &SyncRegistry{r: metrics.NewRegistry()}
}

// Add increases the named counter by delta.
func (s *SyncRegistry) Add(name string, delta float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.r.Counter(name).Add(delta)
	s.mu.Unlock()
}

// Set records the named gauge's current value.
func (s *SyncRegistry) Set(name string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.r.Gauge(name).Set(v)
	s.mu.Unlock()
}

// Observe records one histogram observation under name.
func (s *SyncRegistry) Observe(name string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.r.Histogram(name).Observe(v)
	s.mu.Unlock()
}

// Merge folds a finished run's registry in (counters add, histograms
// merge, gauges last-merged-wins — metrics.Registry.Merge semantics).
func (s *SyncRegistry) Merge(src *metrics.Registry) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.r.Merge(src)
	s.mu.Unlock()
}

// Snapshot flattens the current state into a CounterSet (instruments in
// first-registration order). Nil yields nil.
func (s *SyncRegistry) Snapshot() metrics.CounterSet {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Snapshot()
}

// WriteProm renders the current state in Prometheus text exposition
// format, holding the lock for the duration of the write. Nil writes
// nothing.
func (s *SyncRegistry) WriteProm(w io.Writer) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return metrics.WriteProm(w, s.r)
}
