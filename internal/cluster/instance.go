// Package cluster models the GPU machines GEMINI trains on: the instance
// catalog of Table 1, per-machine CPU-memory accounting for checkpoint
// buffers, and the machine lifecycle (healthy → failed → replaced) that
// drives failure recovery.
package cluster

import "fmt"

// InstanceType describes a GPU machine model. Memory figures are Table 1
// of the paper; bandwidth and compute figures come from §7.1 and public
// instance specifications.
type InstanceType struct {
	Name  string
	Cloud string
	// GPUs per machine and per-GPU memory in bytes.
	GPUs        int
	GPUMemBytes int64
	// CPUMemBytes is the host memory, the resource GEMINI checkpoints into.
	CPUMemBytes int64
	// NetworkBytesPerSec is the inter-machine network bandwidth
	// (e.g. 400 Gbps EFA on p4d.24xlarge).
	NetworkBytesPerSec float64
	// GPUToCPUBytesPerSec is the aggregate device-to-host copy bandwidth;
	// on p4d it is comparable to the network bandwidth (§5.2 footnote).
	GPUToCPUBytesPerSec float64
	// PeakFLOPsPerGPU is the per-GPU fp16 peak used by the compute model.
	PeakFLOPsPerGPU float64
}

const (
	gib  = int64(1) << 30
	gbps = 1e9 / 8 // bytes/sec per Gbit/s
)

// Validate checks the instance description.
func (it InstanceType) Validate() error {
	switch {
	case it.Name == "":
		return fmt.Errorf("cluster: instance type needs a name")
	case it.GPUs <= 0:
		return fmt.Errorf("cluster: %s has %d GPUs", it.Name, it.GPUs)
	case it.GPUMemBytes <= 0 || it.CPUMemBytes <= 0:
		return fmt.Errorf("cluster: %s has nonpositive memory", it.Name)
	case it.NetworkBytesPerSec <= 0:
		return fmt.Errorf("cluster: %s has nonpositive network bandwidth", it.Name)
	case it.GPUToCPUBytesPerSec <= 0:
		return fmt.Errorf("cluster: %s has nonpositive copy bandwidth", it.Name)
	case it.PeakFLOPsPerGPU <= 0:
		return fmt.Errorf("cluster: %s has nonpositive peak FLOPs", it.Name)
	}
	return nil
}

// TotalGPUMemBytes returns the machine's aggregate GPU memory.
func (it InstanceType) TotalGPUMemBytes() int64 {
	return int64(it.GPUs) * it.GPUMemBytes
}

// CPUOverGPURatio returns CPU memory divided by total GPU memory — the
// headroom observation of Table 1 that motivates in-memory checkpoints.
func (it InstanceType) CPUOverGPURatio() float64 {
	return float64(it.CPUMemBytes) / float64(it.TotalGPUMemBytes())
}

const (
	v100FLOPs = 125e12 // fp16 tensor-core peak
	a100FLOPs = 312e12
)

// Table1 returns the instance catalog of Table 1, in paper order.
func Table1() []InstanceType {
	return []InstanceType{
		{Name: "p3dn.24xlarge", Cloud: "AWS", GPUs: 8, GPUMemBytes: 32 * gib, CPUMemBytes: 768 * gib,
			NetworkBytesPerSec: 100 * gbps, GPUToCPUBytesPerSec: 100 * gbps, PeakFLOPsPerGPU: v100FLOPs},
		{Name: "p4d.24xlarge", Cloud: "AWS", GPUs: 8, GPUMemBytes: 40 * gib, CPUMemBytes: 1152 * gib,
			NetworkBytesPerSec: 400 * gbps, GPUToCPUBytesPerSec: 400 * gbps, PeakFLOPsPerGPU: a100FLOPs},
		{Name: "ND40rs_v2", Cloud: "Azure", GPUs: 8, GPUMemBytes: 32 * gib, CPUMemBytes: 672 * gib,
			NetworkBytesPerSec: 100 * gbps, GPUToCPUBytesPerSec: 100 * gbps, PeakFLOPsPerGPU: v100FLOPs},
		{Name: "ND96asr_v4", Cloud: "Azure", GPUs: 8, GPUMemBytes: 40 * gib, CPUMemBytes: 900 * gib,
			NetworkBytesPerSec: 200 * gbps, GPUToCPUBytesPerSec: 200 * gbps, PeakFLOPsPerGPU: a100FLOPs},
		{Name: "n1-8-v100", Cloud: "GCP", GPUs: 8, GPUMemBytes: 32 * gib, CPUMemBytes: 624 * gib,
			NetworkBytesPerSec: 100 * gbps, GPUToCPUBytesPerSec: 100 * gbps, PeakFLOPsPerGPU: v100FLOPs},
		{Name: "a2-highgpu-8g", Cloud: "GCP", GPUs: 8, GPUMemBytes: 40 * gib, CPUMemBytes: 640 * gib,
			NetworkBytesPerSec: 100 * gbps, GPUToCPUBytesPerSec: 100 * gbps, PeakFLOPsPerGPU: a100FLOPs},
		{Name: "DGX A100", Cloud: "NVIDIA", GPUs: 8, GPUMemBytes: 80 * gib, CPUMemBytes: 2048 * gib,
			NetworkBytesPerSec: 200 * gbps, GPUToCPUBytesPerSec: 400 * gbps, PeakFLOPsPerGPU: a100FLOPs},
	}
}

// InstanceByName returns the catalog entry with the given name.
func InstanceByName(name string) (InstanceType, error) {
	for _, it := range Table1() {
		if it.Name == name {
			return it, nil
		}
	}
	return InstanceType{}, fmt.Errorf("cluster: no instance type named %q", name)
}

// MustInstance is InstanceByName for statically-known names.
func MustInstance(name string) InstanceType {
	it, err := InstanceByName(name)
	if err != nil {
		panic(err)
	}
	return it
}
