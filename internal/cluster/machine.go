package cluster

import (
	"fmt"

	"gemini/internal/simclock"
)

// MachineState is a machine's health.
type MachineState int

const (
	// Healthy means the machine is training normally.
	Healthy MachineState = iota
	// SoftwareFailed means the training process crashed but the hardware
	// and CPU memory survive (§6.1): checkpoints remain accessible.
	SoftwareFailed
	// HardwareFailed means the machine is gone — its CPU-memory
	// checkpoints are lost and the machine must be replaced.
	HardwareFailed
)

func (s MachineState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case SoftwareFailed:
		return "software-failed"
	case HardwareFailed:
		return "hardware-failed"
	default:
		return fmt.Sprintf("MachineState(%d)", int(s))
	}
}

// Machine is one rank slot in the training cluster. Replacement machines
// reuse the slot's rank (§6.2 case 1) but carry a new incarnation number,
// so stale references to the dead machine are detectable.
type Machine struct {
	Rank        int
	Incarnation int
	Type        InstanceType
	state       MachineState
	stateSince  simclock.Time

	cpuMemUsed int64
}

// State returns the machine's health state.
func (m *Machine) State() MachineState { return m.state }

// StateSince returns when the machine entered its current state.
func (m *Machine) StateSince() simclock.Time { return m.stateSince }

// Healthy reports whether the machine is training normally.
func (m *Machine) Healthy() bool { return m.state == Healthy }

// CPUMemUsed returns bytes of host memory reserved through ReserveCPUMem.
func (m *Machine) CPUMemUsed() int64 { return m.cpuMemUsed }

// CPUMemFree returns the remaining host memory.
func (m *Machine) CPUMemFree() int64 { return m.Type.CPUMemBytes - m.cpuMemUsed }

// ReserveCPUMem claims bytes of host memory (for checkpoint buffers),
// failing if the machine does not have that much free.
func (m *Machine) ReserveCPUMem(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("cluster: negative reservation %d", bytes)
	}
	if m.cpuMemUsed+bytes > m.Type.CPUMemBytes {
		return fmt.Errorf("cluster: rank %d out of CPU memory: want %d, free %d",
			m.Rank, bytes, m.CPUMemFree())
	}
	m.cpuMemUsed += bytes
	return nil
}

// ReleaseCPUMem returns previously reserved host memory.
func (m *Machine) ReleaseCPUMem(bytes int64) {
	if bytes < 0 || bytes > m.cpuMemUsed {
		panic(fmt.Sprintf("cluster: rank %d releasing %d of %d reserved bytes", m.Rank, bytes, m.cpuMemUsed))
	}
	m.cpuMemUsed -= bytes
}

// Cluster is a fixed-size set of rank slots, each occupied by a machine.
// GEMINI targets static synchronous training, so the slot count never
// changes; failed machines are replaced in place.
type Cluster struct {
	machines []*Machine
	itype    InstanceType
	now      func() simclock.Time
}

// New creates a cluster of n machines of the given type. The now function
// supplies the virtual clock for state-change timestamps; nil means all
// timestamps are zero.
func New(n int, itype InstanceType, now func() simclock.Time) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one machine, got %d", n)
	}
	if err := itype.Validate(); err != nil {
		return nil, err
	}
	if now == nil {
		now = func() simclock.Time { return 0 }
	}
	c := &Cluster{machines: make([]*Machine, n), itype: itype, now: now}
	for i := range c.machines {
		c.machines[i] = &Machine{Rank: i, Type: itype, state: Healthy}
	}
	return c, nil
}

// MustNew is New for statically-known-good parameters.
func MustNew(n int, itype InstanceType, now func() simclock.Time) *Cluster {
	c, err := New(n, itype, now)
	if err != nil {
		panic(err)
	}
	return c
}

// Size returns the number of rank slots.
func (c *Cluster) Size() int { return len(c.machines) }

// InstanceType returns the machine model used by the cluster.
func (c *Cluster) InstanceType() InstanceType { return c.itype }

// Machine returns the machine currently occupying the given rank slot.
func (c *Cluster) Machine(rank int) *Machine {
	if rank < 0 || rank >= len(c.machines) {
		panic(fmt.Sprintf("cluster: rank %d out of range [0,%d)", rank, len(c.machines)))
	}
	return c.machines[rank]
}

// HealthyCount returns the number of healthy machines.
func (c *Cluster) HealthyCount() int {
	n := 0
	for _, m := range c.machines {
		if m.Healthy() {
			n++
		}
	}
	return n
}

// HealthyRanks returns the ranks of healthy machines in ascending order.
func (c *Cluster) HealthyRanks() []int {
	var out []int
	for _, m := range c.machines {
		if m.Healthy() {
			out = append(out, m.Rank)
		}
	}
	return out
}

// FailedRanks returns the ranks of machines in either failed state.
func (c *Cluster) FailedRanks() []int {
	var out []int
	for _, m := range c.machines {
		if !m.Healthy() {
			out = append(out, m.Rank)
		}
	}
	return out
}

// Fail transitions a machine into the given failed state.
func (c *Cluster) Fail(rank int, state MachineState) {
	if state != SoftwareFailed && state != HardwareFailed {
		panic(fmt.Sprintf("cluster: Fail with non-failure state %v", state))
	}
	m := c.Machine(rank)
	// A hardware failure dominates a software failure; the reverse
	// transition is meaningless.
	if m.state == HardwareFailed {
		return
	}
	m.state = state
	m.stateSince = c.now()
}

// Restart clears a software failure: the same machine resumes training.
// Restarting a hardware-failed machine is an error — it needs Replace.
func (c *Cluster) Restart(rank int) error {
	m := c.Machine(rank)
	switch m.state {
	case SoftwareFailed:
		m.state = Healthy
		m.stateSince = c.now()
		return nil
	case Healthy:
		return nil
	default:
		return fmt.Errorf("cluster: rank %d is %v and cannot simply restart", rank, m.state)
	}
}

// Replace installs a fresh machine in the rank slot, bumping the
// incarnation. The new machine starts healthy with empty CPU memory:
// whatever checkpoints the old machine held are gone.
func (c *Cluster) Replace(rank int) *Machine {
	old := c.Machine(rank)
	fresh := &Machine{
		Rank:        rank,
		Incarnation: old.Incarnation + 1,
		Type:        c.itype,
		state:       Healthy,
		stateSince:  c.now(),
	}
	c.machines[rank] = fresh
	return fresh
}
