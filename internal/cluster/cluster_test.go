package cluster

import (
	"testing"
	"testing/quick"

	"gemini/internal/simclock"
)

func TestTable1MatchesPaper(t *testing.T) {
	// CPU-memory figures straight out of Table 1.
	wantCPU := map[string]int64{
		"p3dn.24xlarge": 768 * gib,
		"p4d.24xlarge":  1152 * gib,
		"ND40rs_v2":     672 * gib,
		"ND96asr_v4":    900 * gib,
		"n1-8-v100":     624 * gib,
		"a2-highgpu-8g": 640 * gib,
		"DGX A100":      2048 * gib,
	}
	rows := Table1()
	if len(rows) != len(wantCPU) {
		t.Fatalf("Table 1 has %d rows, want %d", len(rows), len(wantCPU))
	}
	for _, it := range rows {
		if err := it.Validate(); err != nil {
			t.Errorf("%s invalid: %v", it.Name, err)
		}
		if it.CPUMemBytes != wantCPU[it.Name] {
			t.Errorf("%s CPU mem %d, want %d", it.Name, it.CPUMemBytes, wantCPU[it.Name])
		}
		if it.GPUs != 8 {
			t.Errorf("%s has %d GPUs, want 8", it.Name, it.GPUs)
		}
		// The motivating observation: CPU memory exceeds total GPU memory
		// on every instance type in the table.
		if it.CPUOverGPURatio() <= 1 {
			t.Errorf("%s CPU/GPU memory ratio %.2f, want > 1", it.Name, it.CPUOverGPURatio())
		}
	}
}

func TestInstanceBandwidths(t *testing.T) {
	p4d := MustInstance("p4d.24xlarge")
	if p4d.NetworkBytesPerSec != 400*gbps {
		t.Errorf("p4d network %v, want 400 Gbps", p4d.NetworkBytesPerSec)
	}
	if p4d.GPUToCPUBytesPerSec != p4d.NetworkBytesPerSec {
		t.Error("p4d copy bandwidth should match network bandwidth (§5.2 footnote)")
	}
	p3dn := MustInstance("p3dn.24xlarge")
	if p3dn.NetworkBytesPerSec != 100*gbps {
		t.Errorf("p3dn network %v, want 100 Gbps", p3dn.NetworkBytesPerSec)
	}
}

func TestInstanceByNameUnknown(t *testing.T) {
	if _, err := InstanceByName("x1e.32xlarge"); err == nil {
		t.Fatal("unknown instance accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustInstance on unknown name did not panic")
		}
	}()
	MustInstance("nope")
}

func TestInstanceValidate(t *testing.T) {
	good := MustInstance("p4d.24xlarge")
	mutations := []func(*InstanceType){
		func(it *InstanceType) { it.Name = "" },
		func(it *InstanceType) { it.GPUs = 0 },
		func(it *InstanceType) { it.GPUMemBytes = 0 },
		func(it *InstanceType) { it.CPUMemBytes = -1 },
		func(it *InstanceType) { it.NetworkBytesPerSec = 0 },
		func(it *InstanceType) { it.GPUToCPUBytesPerSec = 0 },
		func(it *InstanceType) { it.PeakFLOPsPerGPU = 0 },
	}
	for i, mutate := range mutations {
		it := good
		mutate(&it)
		if err := it.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func newTestCluster(t *testing.T, n int) (*simclock.Engine, *Cluster) {
	t.Helper()
	e := simclock.NewEngine()
	c, err := New(n, MustInstance("p4d.24xlarge"), e.Now)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e, c
}

func TestClusterLifecycle(t *testing.T) {
	e, c := newTestCluster(t, 4)
	if c.Size() != 4 || c.HealthyCount() != 4 {
		t.Fatalf("fresh cluster size=%d healthy=%d", c.Size(), c.HealthyCount())
	}
	e.At(100, func() {
		c.Fail(1, SoftwareFailed)
		c.Fail(2, HardwareFailed)
	})
	e.RunAll()
	if got := c.FailedRanks(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("failed ranks %v, want [1 2]", got)
	}
	if got := c.HealthyRanks(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("healthy ranks %v, want [0 3]", got)
	}
	if c.Machine(1).StateSince() != 100 {
		t.Fatalf("state timestamp %v, want 100", c.Machine(1).StateSince())
	}

	// Software failure restarts in place.
	if err := c.Restart(1); err != nil {
		t.Fatalf("Restart(1): %v", err)
	}
	if !c.Machine(1).Healthy() || c.Machine(1).Incarnation != 0 {
		t.Fatal("software restart should keep the same incarnation")
	}

	// Hardware failure needs replacement.
	if err := c.Restart(2); err == nil {
		t.Fatal("restart of hardware-failed machine accepted")
	}
	fresh := c.Replace(2)
	if fresh.Incarnation != 1 || !fresh.Healthy() || fresh.Rank != 2 {
		t.Fatalf("replacement machine wrong: %+v", fresh)
	}
	if c.Machine(2) != fresh {
		t.Fatal("slot does not hold the replacement")
	}
	if c.HealthyCount() != 4 {
		t.Fatalf("healthy count %d after recovery, want 4", c.HealthyCount())
	}
}

func TestHardwareFailureDominatesSoftware(t *testing.T) {
	_, c := newTestCluster(t, 2)
	c.Fail(0, HardwareFailed)
	c.Fail(0, SoftwareFailed) // must not downgrade
	if c.Machine(0).State() != HardwareFailed {
		t.Fatalf("state %v, want hardware-failed", c.Machine(0).State())
	}
}

func TestRestartHealthyIsNoop(t *testing.T) {
	_, c := newTestCluster(t, 1)
	if err := c.Restart(0); err != nil {
		t.Fatalf("restart of healthy machine errored: %v", err)
	}
}

func TestFailWithHealthyStatePanics(t *testing.T) {
	_, c := newTestCluster(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Fail(Healthy) did not panic")
		}
	}()
	c.Fail(0, Healthy)
}

func TestCPUMemAccounting(t *testing.T) {
	_, c := newTestCluster(t, 1)
	m := c.Machine(0)
	total := m.Type.CPUMemBytes
	if err := m.ReserveCPUMem(total / 2); err != nil {
		t.Fatalf("reserve half: %v", err)
	}
	if m.CPUMemUsed() != total/2 || m.CPUMemFree() != total-total/2 {
		t.Fatalf("used=%d free=%d", m.CPUMemUsed(), m.CPUMemFree())
	}
	if err := m.ReserveCPUMem(total); err == nil {
		t.Fatal("over-reservation accepted")
	}
	if err := m.ReserveCPUMem(-1); err == nil {
		t.Fatal("negative reservation accepted")
	}
	m.ReleaseCPUMem(total / 2)
	if m.CPUMemUsed() != 0 {
		t.Fatalf("used %d after release, want 0", m.CPUMemUsed())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	m.ReleaseCPUMem(1)
}

func TestReplacementClearsMemory(t *testing.T) {
	_, c := newTestCluster(t, 1)
	if err := c.Machine(0).ReserveCPUMem(1 << 30); err != nil {
		t.Fatal(err)
	}
	c.Fail(0, HardwareFailed)
	fresh := c.Replace(0)
	if fresh.CPUMemUsed() != 0 {
		t.Fatalf("replacement has %d bytes reserved, want 0", fresh.CPUMemUsed())
	}
}

func TestClusterConstructorErrors(t *testing.T) {
	if _, err := New(0, MustInstance("p4d.24xlarge"), nil); err == nil {
		t.Error("zero machines accepted")
	}
	if _, err := New(2, InstanceType{}, nil); err == nil {
		t.Error("invalid instance type accepted")
	}
	c := MustNew(2, MustInstance("p4d.24xlarge"), nil)
	if c.Machine(0).StateSince() != 0 {
		t.Error("nil clock should timestamp zero")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range rank did not panic")
		}
	}()
	c.Machine(5)
}

// Property: any sequence of fail/restart/replace operations keeps the
// invariant that every slot holds exactly one machine with the slot's
// rank, and incarnations never decrease.
func TestPropertyLifecycleInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		c := MustNew(4, MustInstance("p3dn.24xlarge"), nil)
		inc := make([]int, 4)
		for _, op := range ops {
			rank := int(op) % 4
			switch (op / 4) % 4 {
			case 0:
				c.Fail(rank, SoftwareFailed)
			case 1:
				c.Fail(rank, HardwareFailed)
			case 2:
				_ = c.Restart(rank)
			case 3:
				c.Replace(rank)
			}
			for r := 0; r < 4; r++ {
				m := c.Machine(r)
				if m.Rank != r || m.Incarnation < inc[r] {
					return false
				}
				inc[r] = m.Incarnation
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMachineStateString(t *testing.T) {
	cases := map[MachineState]string{
		Healthy: "healthy", SoftwareFailed: "software-failed",
		HardwareFailed: "hardware-failed", MachineState(7): "MachineState(7)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
