package cluster

import (
	"reflect"
	"testing"
)

func TestTopology(t *testing.T) {
	top, err := NewTopology(8, 2)
	if err != nil {
		t.Fatalf("NewTopology: %v", err)
	}
	if top.Racks() != 4 || top.Machines() != 8 || top.RackSize() != 2 {
		t.Fatalf("dimensions: racks=%d machines=%d size=%d", top.Racks(), top.Machines(), top.RackSize())
	}
	if top.Rack(0) != 0 || top.Rack(1) != 0 || top.Rack(2) != 1 || top.Rack(7) != 3 {
		t.Fatal("rank→rack mapping wrong")
	}
	if got := top.RackMembers(1); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("RackMembers(1) = %v", got)
	}
	all := top.AllRacks()
	if len(all) != 4 || !reflect.DeepEqual(all[3], []int{6, 7}) {
		t.Fatalf("AllRacks = %v", all)
	}
}

func TestTopologyErrors(t *testing.T) {
	for _, tc := range []struct{ n, size int }{{0, 1}, {8, 0}, {8, 3}, {-4, 2}} {
		if _, err := NewTopology(tc.n, tc.size); err == nil {
			t.Errorf("NewTopology(%d,%d) accepted", tc.n, tc.size)
		}
	}
}
