package cluster

import "fmt"

// Topology maps machine ranks onto racks (placement groups that share a
// failure domain — a power feed, a top-of-rack switch, an AZ spread
// group). Correlated-failure injection and rack-aware placement both
// consume it. Ranks fill racks contiguously: rack r holds ranks
// [r*rackSize, (r+1)*rackSize).
type Topology struct {
	n        int
	rackSize int
}

// NewTopology builds a topology of n machines in racks of rackSize.
// rackSize must divide n so every rack is full.
func NewTopology(n, rackSize int) (Topology, error) {
	if n <= 0 {
		return Topology{}, fmt.Errorf("cluster: machine count must be positive, got %d", n)
	}
	if rackSize <= 0 {
		return Topology{}, fmt.Errorf("cluster: rack size must be positive, got %d", rackSize)
	}
	if n%rackSize != 0 {
		return Topology{}, fmt.Errorf("cluster: rack size %d does not divide machine count %d", rackSize, n)
	}
	return Topology{n: n, rackSize: rackSize}, nil
}

// MustNewTopology is NewTopology, panicking on error.
func MustNewTopology(n, rackSize int) Topology {
	t, err := NewTopology(n, rackSize)
	if err != nil {
		panic(err)
	}
	return t
}

// Machines returns the number of machines.
func (t Topology) Machines() int { return t.n }

// RackSize returns the number of machines per rack.
func (t Topology) RackSize() int { return t.rackSize }

// Racks returns the number of racks.
func (t Topology) Racks() int { return t.n / t.rackSize }

// Rack returns the rack holding the given rank.
func (t Topology) Rack(rank int) int {
	if rank < 0 || rank >= t.n {
		panic(fmt.Sprintf("cluster: rank %d out of range [0,%d)", rank, t.n))
	}
	return rank / t.rackSize
}

// RackMembers returns the ranks in a rack, ascending.
func (t Topology) RackMembers(rack int) []int {
	if rack < 0 || rack >= t.Racks() {
		panic(fmt.Sprintf("cluster: rack %d out of range [0,%d)", rack, t.Racks()))
	}
	out := make([]int, t.rackSize)
	for i := range out {
		out[i] = rack*t.rackSize + i
	}
	return out
}

// AllRacks returns every rack's members, rack by rack.
func (t Topology) AllRacks() [][]int {
	out := make([][]int, t.Racks())
	for r := range out {
		out[r] = t.RackMembers(r)
	}
	return out
}
