// Package failure models the failures that interrupt large-model
// training (§6.1): software failures (process crashes; hardware and CPU
// memory survive) and hardware failures (the machine is lost and must be
// replaced). It generates deterministic failure schedules from the rate
// models the paper uses — e.g. OPT-175B's observation that 1.5% of
// instances fail per day (§7.3).
package failure

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gemini/internal/cluster"
	"gemini/internal/simclock"
)

// Event is one injected failure.
type Event struct {
	At   simclock.Time
	Rank int
	Kind cluster.MachineState // SoftwareFailed or HardwareFailed
}

// Schedule is a time-ordered list of failure events.
type Schedule []Event

// Validate checks ordering and event sanity. Same-timestamp events must
// be in ascending rank order and a rank may fail at most once per
// instant, so injection order — and therefore the simulation — is fully
// determined by the schedule's contents.
func (s Schedule) Validate(n int) error {
	for i, ev := range s {
		if ev.Rank < 0 || ev.Rank >= n {
			return fmt.Errorf("failure: event %d rank %d out of range [0,%d)", i, ev.Rank, n)
		}
		if ev.Kind != cluster.SoftwareFailed && ev.Kind != cluster.HardwareFailed {
			return fmt.Errorf("failure: event %d has non-failure kind %v", i, ev.Kind)
		}
		if i > 0 {
			prev := s[i-1]
			if ev.At < prev.At {
				return fmt.Errorf("failure: events out of order at %d", i)
			}
			if ev.At == prev.At {
				if ev.Rank == prev.Rank {
					return fmt.Errorf("failure: duplicate events for rank %d at t=%v (index %d)", ev.Rank, ev.At, i)
				}
				if ev.Rank < prev.Rank {
					return fmt.Errorf("failure: same-timestamp events at t=%v out of rank order (index %d)", ev.At, i)
				}
			}
		}
	}
	return nil
}

// Model is a stochastic failure model for a cluster.
type Model struct {
	// PerInstancePerDay is the probability that a given machine fails in
	// a day (OPT-175B: 0.015).
	PerInstancePerDay float64
	// HardwareFraction is the share of failures that are hardware
	// failures needing machine replacement; the paper observes most
	// failures are software or single-machine hardware (§6.2).
	HardwareFraction float64
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.PerInstancePerDay < 0 || m.PerInstancePerDay > 1 {
		return fmt.Errorf("failure: per-instance daily rate %v out of [0,1]", m.PerInstancePerDay)
	}
	if m.HardwareFraction < 0 || m.HardwareFraction > 1 {
		return fmt.Errorf("failure: hardware fraction %v out of [0,1]", m.HardwareFraction)
	}
	return nil
}

// OPTModel is the failure model from the OPT-175B logbook: 1.5% of
// instances fail per day, with half the failures needing replacement.
func OPTModel() Model {
	return Model{PerInstancePerDay: 0.015, HardwareFraction: 0.5}
}

// ClusterFailuresPerDay returns the expected cluster-wide failure rate.
func (m Model) ClusterFailuresPerDay(machines int) float64 {
	return m.PerInstancePerDay * float64(machines)
}

// Generate draws a Poisson failure schedule over [0, horizon) for a
// cluster of n machines. The schedule is deterministic for a fixed seed.
func (m Model) Generate(n int, horizon simclock.Duration, seed int64) (Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("failure: need at least one machine, got %d", n)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("failure: negative horizon %v", horizon)
	}
	rate := m.ClusterFailuresPerDay(n) / simclock.Day.Seconds() // events per second
	rng := rand.New(rand.NewSource(seed))
	var out Schedule
	if rate > 0 {
		t := simclock.Time(0)
		for {
			// Exponential inter-arrival times.
			t = t.Add(simclock.Duration(rng.ExpFloat64() / rate))
			if t >= simclock.Time(horizon) {
				break
			}
			kind := cluster.SoftwareFailed
			if rng.Float64() < m.HardwareFraction {
				kind = cluster.HardwareFailed
			}
			out = append(out, Event{At: t, Rank: rng.Intn(n), Kind: kind})
		}
	}
	return out, nil
}

// FixedRate builds a deterministic schedule with exactly failuresPerDay
// failures per day, evenly spaced, round-robin over machines and
// alternating kinds per the hardware fraction. Used by the §7.3
// failure-rate sweep so every solution sees identical failures.
//
// Accounting is exact in event-index space: event i lands at
// (i+0.5)/failuresPerDay days, the event count is decided once from the
// half-open horizon (an event landing exactly at the horizon is
// excluded, and no accumulated float interval can drift one across that
// boundary), and the i-th event is hardware exactly when
// ⌊(i+1)·hwFraction⌋ > ⌊i·hwFraction⌋ — so the first c events always
// contain ⌊c·hwFraction⌋ hardware failures, with no running-debt drift
// over long horizons.
func FixedRate(n int, failuresPerDay float64, hwFraction float64, horizon simclock.Duration) (Schedule, error) {
	if n <= 0 {
		return nil, fmt.Errorf("failure: need at least one machine, got %d", n)
	}
	if failuresPerDay < 0 || hwFraction < 0 || hwFraction > 1 {
		return nil, fmt.Errorf("failure: bad rate %v / fraction %v", failuresPerDay, hwFraction)
	}
	if failuresPerDay == 0 || horizon <= 0 {
		return nil, nil
	}
	// Event i is inside [0, horizon) iff i + 0.5 < failuresPerDay·days,
	// i.e. i < X with X = failuresPerDay·days − 0.5; the count is ⌈X⌉
	// for both integer and fractional X.
	days := horizon.Seconds() / simclock.Day.Seconds()
	count := int(math.Ceil(failuresPerDay*days - 0.5))
	if count <= 0 {
		return nil, nil
	}
	out := make(Schedule, 0, count)
	for i := 0; i < count; i++ {
		at := simclock.Time((float64(i) + 0.5) / failuresPerDay * simclock.Day.Seconds())
		if at >= simclock.Time(horizon) {
			// The index-space decision is authoritative; if the time
			// computation rounded the last event onto the boundary, snap
			// it just inside instead of dropping or leaking it.
			at = simclock.Time(math.Nextafter(horizon.Seconds(), 0))
		}
		kind := cluster.SoftwareFailed
		if math.Floor(float64(i+1)*hwFraction) > math.Floor(float64(i)*hwFraction) {
			kind = cluster.HardwareFailed
		}
		out = append(out, Event{At: at, Rank: i % n, Kind: kind})
	}
	return out, nil
}

// GroupEnd returns the exclusive end of the simultaneity group anchored
// at s[i] under window w: the first index j > i with s[j].At − s[i].At
// beyond w. This is the one grouping definition shared by the schedule
// analyzers (SimultaneousGroups, SimultaneousHardwareGroups) and the
// long-run simulator (runsim): windows are anchored at the group's
// first event and never chain — an event more than w after the anchor
// starts a new group even when it lands within w of the group's last
// member. The schedule must be time-ordered (Validate checks this).
func (s Schedule) GroupEnd(i int, w simclock.Duration) int {
	j := i + 1
	for j < len(s) && s[j].At.Sub(s[i].At) <= w {
		j++
	}
	return j
}

// SimultaneousGroups extracts, for a window w, the maximal sets of
// distinct machines failing within w of each other — the k of
// Corollary 1. Used to study correlated failures. Windows follow the
// GroupEnd anchoring semantics, identical to the simulator's walk.
func (s Schedule) SimultaneousGroups(w simclock.Duration) []int {
	if len(s) == 0 {
		return nil
	}
	var sizes []int
	ranks := map[int]bool{}
	for i := 0; i < len(s); {
		j := s.GroupEnd(i, w)
		clear(ranks)
		for _, ev := range s[i:j] {
			ranks[ev.Rank] = true
		}
		sizes = append(sizes, len(ranks))
		i = j
	}
	return sizes
}

// SimultaneousHardwareGroups is SimultaneousGroups restricted to
// hardware failures: the same GroupEnd windows, but each count is the
// number of distinct machines that lost their CPU memory inside the
// window — exactly the k the simulator's survival check feeds to the
// Corollary 1 placement kernel. Software failures still open and
// populate windows (they trigger recoveries) but do not count toward k;
// a window of pure software failures reports 0.
func (s Schedule) SimultaneousHardwareGroups(w simclock.Duration) []int {
	if len(s) == 0 {
		return nil
	}
	var sizes []int
	ranks := map[int]bool{}
	for i := 0; i < len(s); {
		j := s.GroupEnd(i, w)
		clear(ranks)
		for _, ev := range s[i:j] {
			if ev.Kind == cluster.HardwareFailed {
				ranks[ev.Rank] = true
			}
		}
		sizes = append(sizes, len(ranks))
		i = j
	}
	return sizes
}

// ExpectedSimultaneousProbability returns the probability that two or
// more machines are simultaneously down, given the per-instance daily
// failure rate and a mean repair window — the back-of-envelope behind
// "it is rare to have two or more machine failures at the same time"
// (§6.2).
func (m Model) ExpectedSimultaneousProbability(machines int, repairWindow simclock.Duration) float64 {
	lambda := m.ClusterFailuresPerDay(machines) * repairWindow.Seconds() / simclock.Day.Seconds()
	// P(≥2 overlapping) under Poisson arrivals within the window.
	return 1 - math.Exp(-lambda) - lambda*math.Exp(-lambda)
}

// Merge combines schedules into one deterministically ordered schedule:
// by time, then rank, then kind. The result is independent of both the
// argument order and the ordering within each input. When the same rank
// appears twice at the same instant, the events are collapsed to one and
// HardwareFailed wins — a machine that lost its hardware is down
// regardless of what its software did at the same moment.
func Merge(schedules ...Schedule) Schedule {
	var out Schedule
	for _, s := range schedules {
		out = append(out, s...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Kind < out[j].Kind
	})
	dedup := out[:0]
	for _, ev := range out {
		if n := len(dedup); n > 0 && dedup[n-1].At == ev.At && dedup[n-1].Rank == ev.Rank {
			if ev.Kind == cluster.HardwareFailed {
				dedup[n-1].Kind = cluster.HardwareFailed
			}
			continue
		}
		dedup = append(dedup, ev)
	}
	return dedup
}
