package failure

import (
	"math"
	"testing"
	"testing/quick"

	"gemini/internal/cluster"
	"gemini/internal/simclock"
)

func TestOPTModelMatchesPaper(t *testing.T) {
	m := OPTModel()
	if m.PerInstancePerDay != 0.015 {
		t.Fatalf("per-instance rate %v, want 0.015 (OPT-175B: 1.5%%/day)", m.PerInstancePerDay)
	}
	// 1000 instances ⇒ 15 failures/day, the Fig. 15b regime.
	if got := m.ClusterFailuresPerDay(1000); math.Abs(got-15) > 1e-12 {
		t.Fatalf("cluster rate %v, want 15/day", got)
	}
}

func TestGenerateDeterministicAndOrdered(t *testing.T) {
	m := OPTModel()
	a, err := m.Generate(16, 30*simclock.Day, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Generate(16, 30*simclock.Day, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed gave %d and %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d", i)
		}
	}
	if err := a.Validate(16); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	c, _ := m.Generate(16, 30*simclock.Day, 43)
	if len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical schedules")
		}
	}
}

func TestGenerateRateIsPlausible(t *testing.T) {
	// 16 machines at 1.5%/day ⇒ 0.24/day ⇒ ≈72 events in 300 days.
	m := OPTModel()
	s, err := m.Generate(16, 300*simclock.Day, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := m.ClusterFailuresPerDay(16) * 300
	if got := float64(len(s)); got < want*0.6 || got > want*1.4 {
		t.Fatalf("%v events over 300 days, want ≈%v", got, want)
	}
	hw := 0
	for _, ev := range s {
		if ev.Kind == cluster.HardwareFailed {
			hw++
		}
	}
	frac := float64(hw) / float64(len(s))
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("hardware fraction %v, want ≈0.5", frac)
	}
}

func TestGenerateZeroRate(t *testing.T) {
	m := Model{PerInstancePerDay: 0}
	s, err := m.Generate(16, simclock.Day, 1)
	if err != nil || len(s) != 0 {
		t.Fatalf("zero-rate schedule: %d events, err %v", len(s), err)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := (Model{PerInstancePerDay: -1}).Generate(4, simclock.Day, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := (Model{HardwareFraction: 2}).Generate(4, simclock.Day, 1); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := OPTModel().Generate(0, simclock.Day, 1); err == nil {
		t.Error("zero machines accepted")
	}
	if _, err := OPTModel().Generate(4, -1, 1); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestFixedRateExactCount(t *testing.T) {
	s, err := FixedRate(16, 8, 0.5, simclock.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 8 {
		t.Fatalf("%d events in one day, want 8", len(s))
	}
	if err := s.Validate(16); err != nil {
		t.Fatal(err)
	}
	hw := 0
	for _, ev := range s {
		if ev.Kind == cluster.HardwareFailed {
			hw++
		}
	}
	if hw != 4 {
		t.Fatalf("%d hardware failures of 8, want 4", hw)
	}
	// Ranks round-robin.
	if s[0].Rank == s[1].Rank {
		t.Fatal("round-robin ranks repeated immediately")
	}
}

func TestFixedRateZero(t *testing.T) {
	s, err := FixedRate(16, 0, 0.5, simclock.Day)
	if err != nil || s != nil {
		t.Fatalf("zero rate: %v events, err %v", len(s), err)
	}
	if _, err := FixedRate(0, 1, 0.5, simclock.Day); err == nil {
		t.Error("zero machines accepted")
	}
	if _, err := FixedRate(4, -1, 0.5, simclock.Day); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestValidateCatchesBadSchedules(t *testing.T) {
	bad := Schedule{{At: 5, Rank: 99, Kind: cluster.SoftwareFailed}}
	if err := bad.Validate(4); err == nil {
		t.Error("out-of-range rank accepted")
	}
	bad = Schedule{{At: 5, Rank: 0, Kind: cluster.Healthy}}
	if err := bad.Validate(4); err == nil {
		t.Error("healthy kind accepted")
	}
	bad = Schedule{{At: 5, Rank: 0, Kind: cluster.SoftwareFailed}, {At: 1, Rank: 1, Kind: cluster.SoftwareFailed}}
	if err := bad.Validate(4); err == nil {
		t.Error("out-of-order schedule accepted")
	}
	bad = Schedule{{At: 5, Rank: 1, Kind: cluster.SoftwareFailed}, {At: 5, Rank: 1, Kind: cluster.HardwareFailed}}
	if err := bad.Validate(4); err == nil {
		t.Error("duplicate (timestamp, rank) accepted")
	}
	bad = Schedule{{At: 5, Rank: 2, Kind: cluster.SoftwareFailed}, {At: 5, Rank: 1, Kind: cluster.SoftwareFailed}}
	if err := bad.Validate(4); err == nil {
		t.Error("same-timestamp events out of rank order accepted")
	}
	ok := Schedule{{At: 5, Rank: 1, Kind: cluster.SoftwareFailed}, {At: 5, Rank: 2, Kind: cluster.HardwareFailed}}
	if err := ok.Validate(4); err != nil {
		t.Errorf("tie broken by rank rejected: %v", err)
	}
}

func TestSimultaneousGroups(t *testing.T) {
	s := Schedule{
		{At: 0, Rank: 0, Kind: cluster.HardwareFailed},
		{At: 1, Rank: 1, Kind: cluster.HardwareFailed},
		{At: 2, Rank: 1, Kind: cluster.HardwareFailed}, // same rank, not counted twice
		{At: 100, Rank: 2, Kind: cluster.SoftwareFailed},
	}
	groups := s.SimultaneousGroups(10)
	if len(groups) != 2 || groups[0] != 2 || groups[1] != 1 {
		t.Fatalf("groups %v, want [2 1]", groups)
	}
	if got := Schedule(nil).SimultaneousGroups(10); got != nil {
		t.Fatalf("empty schedule groups %v", got)
	}
}

func TestExpectedSimultaneousProbabilitySmall(t *testing.T) {
	// §6.2: even at thousand-instance scale, simultaneous multi-machine
	// failures are rare with short repair windows.
	m := OPTModel()
	p := m.ExpectedSimultaneousProbability(1000, 12*simclock.Minute)
	if p <= 0 || p > 0.01 {
		t.Fatalf("simultaneous probability %v, want small but positive", p)
	}
	// Probability grows with the repair window.
	p2 := m.ExpectedSimultaneousProbability(1000, 2*simclock.Hour)
	if p2 <= p {
		t.Fatalf("longer window probability %v not above %v", p2, p)
	}
}

func TestMergeOrders(t *testing.T) {
	a := Schedule{{At: 5, Rank: 0, Kind: cluster.SoftwareFailed}}
	b := Schedule{{At: 1, Rank: 1, Kind: cluster.HardwareFailed}, {At: 9, Rank: 2, Kind: cluster.SoftwareFailed}}
	merged := Merge(a, b)
	if len(merged) != 3 || merged[0].At != 1 || merged[1].At != 5 || merged[2].At != 9 {
		t.Fatalf("merged %v", merged)
	}
	if err := merged.Validate(4); err != nil {
		t.Fatal(err)
	}
}

// Merge must be insensitive to argument order, break timestamp ties by
// rank, and collapse duplicate (timestamp, rank) pairs with hardware
// failures dominating.
func TestMergeDeterministicTies(t *testing.T) {
	a := Schedule{{At: 5, Rank: 3, Kind: cluster.SoftwareFailed}, {At: 5, Rank: 3, Kind: cluster.HardwareFailed}}
	b := Schedule{{At: 5, Rank: 1, Kind: cluster.SoftwareFailed}}
	m1 := Merge(a, b)
	m2 := Merge(b, a)
	if len(m1) != 2 || len(m2) != 2 {
		t.Fatalf("merged lengths %d/%d, want 2 (duplicates collapsed)", len(m1), len(m2))
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("merge depends on argument order: %v vs %v", m1, m2)
		}
	}
	if m1[0].Rank != 1 || m1[1].Rank != 3 {
		t.Fatalf("tie not broken by rank: %v", m1)
	}
	if m1[1].Kind != cluster.HardwareFailed {
		t.Fatalf("hardware failure did not dominate duplicate: %v", m1)
	}
	if err := m1.Validate(4); err != nil {
		t.Fatalf("merged schedule invalid: %v", err)
	}
}

// Property: generated schedules are always ordered, in range, and within
// the horizon.
func TestPropertyGeneratedSchedulesValid(t *testing.T) {
	f := func(seed int64, nRaw, daysRaw uint8) bool {
		n := int(nRaw%100) + 1
		days := simclock.Duration(daysRaw%60+1) * simclock.Day
		s, err := OPTModel().Generate(n, days, seed)
		if err != nil {
			return false
		}
		if err := s.Validate(n); err != nil {
			return false
		}
		for _, ev := range s {
			if ev.At < 0 || ev.At >= simclock.Time(days) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedRateBoundaryExclusion(t *testing.T) {
	// One failure per day over half a day: the single candidate event
	// lands exactly at the horizon and must be excluded — the schedule
	// covers [0, horizon).
	s, err := FixedRate(16, 1, 0, simclock.Day/2)
	if err != nil || len(s) != 0 {
		t.Fatalf("event at the horizon leaked in: %d events, err %v", len(s), err)
	}
	// Nudge the horizon past the event and it appears.
	s, err = FixedRate(16, 1, 0, simclock.Day/2+simclock.Second)
	if err != nil || len(s) != 1 {
		t.Fatalf("event just inside the horizon missing: %d events, err %v", len(s), err)
	}
	// Negative and zero horizons are empty, not errors (nothing can land
	// inside an empty interval).
	for _, h := range []simclock.Duration{0, -simclock.Day} {
		if s, err := FixedRate(16, 4, 0.5, h); err != nil || len(s) != 0 {
			t.Fatalf("horizon %v: %d events, err %v", h, len(s), err)
		}
	}
}

func TestFixedRateHighRateExactAccounting(t *testing.T) {
	// One failure per second for a day: 86400 candidate half-interval
	// slots, all strictly inside the horizon, no float drift across the
	// boundary at either end.
	const perDay = 86400
	horizon := simclock.Day
	s, err := FixedRate(16, perDay, 0.5, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != perDay {
		t.Fatalf("%d events, want %d", len(s), perDay)
	}
	if err := s.Validate(16); err != nil {
		t.Fatal(err)
	}
	for i, ev := range s {
		if ev.At < 0 || ev.At >= simclock.Time(horizon) {
			t.Fatalf("event %d at %v outside [0, %v)", i, ev.At, horizon)
		}
		if ev.Rank != i%16 {
			t.Fatalf("event %d rank %d, want round-robin %d", i, ev.Rank, i%16)
		}
	}
}

func TestFixedRatePropertyCountAndHardwareExact(t *testing.T) {
	// Property: for any rate, fraction, and horizon, the event count is
	// ⌈rate·days − 0.5⌉, every event is strictly inside the horizon, and
	// the hardware count is exactly ⌊count·fraction⌋ — no accumulated
	// drift at any horizon length.
	check := func(perDay, frac, days float64) {
		t.Helper()
		horizon := simclock.Duration(days) * simclock.Day
		s, err := FixedRate(8, perDay, frac, horizon)
		if err != nil {
			t.Fatal(err)
		}
		want := int(math.Ceil(perDay*days - 0.5))
		if want < 0 {
			want = 0
		}
		if len(s) != want {
			t.Fatalf("rate %v frac %v days %v: %d events, want %d", perDay, frac, days, len(s), want)
		}
		hw := 0
		for _, ev := range s {
			if ev.At >= simclock.Time(horizon) {
				t.Fatalf("rate %v days %v: event at %v beyond horizon", perDay, days, ev.At)
			}
			if ev.Kind == cluster.HardwareFailed {
				hw++
			}
		}
		if wantHW := int(math.Floor(float64(len(s)) * frac)); hw != wantHW {
			t.Fatalf("rate %v frac %v days %v: %d hardware of %d, want %d", perDay, frac, days, hw, len(s), wantHW)
		}
	}
	for _, perDay := range []float64{0.5, 1, 3, 7.3, 100, 12345} {
		for _, frac := range []float64{0, 0.25, 1.0 / 3, 0.5, 0.9, 1} {
			for _, days := range []float64{0.1, 1, 10, 365} {
				check(perDay, frac, days)
			}
		}
	}
}

func TestGenerateEdgeHorizons(t *testing.T) {
	m := OPTModel()
	// A zero horizon is a valid empty interval, not an error.
	s, err := m.Generate(16, 0, 1)
	if err != nil || len(s) != 0 {
		t.Fatalf("zero horizon: %d events, err %v", len(s), err)
	}
	// A vanishing rate over a long horizon terminates promptly with an
	// empty (or nearly empty) schedule instead of spinning.
	tiny := Model{PerInstancePerDay: 1e-12, HardwareFraction: 0.5}
	s, err = tiny.Generate(16, 365*simclock.Day, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) > 1 {
		t.Fatalf("tiny rate produced %d events over a year", len(s))
	}
	if err := s.Validate(16); err != nil {
		t.Fatal(err)
	}
}

func TestSimultaneousHardwareGroupsCountsOnlyHardware(t *testing.T) {
	s := Schedule{
		{At: 0, Rank: 0, Kind: cluster.SoftwareFailed},
		{At: 1, Rank: 1, Kind: cluster.HardwareFailed},
		{At: 2, Rank: 1, Kind: cluster.HardwareFailed}, // same machine, not counted twice
		{At: 100, Rank: 2, Kind: cluster.SoftwareFailed},
		{At: 105, Rank: 3, Kind: cluster.SoftwareFailed},
	}
	if err := s.Validate(8); err != nil {
		t.Fatal(err)
	}
	groups := s.SimultaneousGroups(10)
	hw := s.SimultaneousHardwareGroups(10)
	if len(groups) != len(hw) {
		t.Fatalf("window partitions disagree: %d vs %d groups", len(groups), len(hw))
	}
	if groups[0] != 2 || groups[1] != 2 {
		t.Fatalf("distinct-machine counts %v, want [2 2]", groups)
	}
	if hw[0] != 1 || hw[1] != 0 {
		t.Fatalf("hardware k-counts %v, want [1 0]", hw)
	}
}

func TestGroupEndAnchorsAtFirstEventAndNeverChains(t *testing.T) {
	// Events at 0, 6, 12 with window 10: 6 joins the group anchored at
	// 0, but 12 — within 10 of 6, beyond 10 of the anchor — starts a new
	// group. Chaining would collapse all three into one window.
	s := Schedule{
		{At: 0, Rank: 0, Kind: cluster.SoftwareFailed},
		{At: 6, Rank: 1, Kind: cluster.SoftwareFailed},
		{At: 12, Rank: 2, Kind: cluster.SoftwareFailed},
	}
	if end := s.GroupEnd(0, 10); end != 2 {
		t.Fatalf("group anchored at t=0 ends at %d, want 2 (no chaining)", end)
	}
	if end := s.GroupEnd(2, 10); end != 3 {
		t.Fatalf("group anchored at t=12 ends at %d, want 3", end)
	}
	// The window boundary is inclusive.
	s2 := Schedule{
		{At: 0, Rank: 0, Kind: cluster.HardwareFailed},
		{At: 10, Rank: 1, Kind: cluster.HardwareFailed},
	}
	if end := s2.GroupEnd(0, 10); end != 2 {
		t.Fatalf("event exactly at the window edge excluded: end %d, want 2", end)
	}
	if got := s.SimultaneousGroups(10); len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("groups %v, want [2 1]", got)
	}
}
