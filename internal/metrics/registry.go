package metrics

// Registry unifies the repo's counter story: where CounterSet is a
// finished, ordered snapshot (what Fabric.Stats returns), a Registry
// holds the *live* instruments a run updates — monotonic counters,
// gauges, and streaming histograms — and renders them into a CounterSet
// on demand. Like trace.Tracer it is a per-run sink: not safe for
// concurrent use, give each run its own and merge/print after the run.
//
// A nil *Registry is the disabled registry: it hands out nil instruments
// whose update methods no-op without allocating, so hot paths can update
// metrics unconditionally.

import (
	"fmt"
	"math"
)

// CounterVar is a monotonically increasing counter. Nil no-ops.
type CounterVar struct{ v float64 }

// Inc adds 1.
func (c *CounterVar) Inc() { c.Add(1) }

// Add increases the counter by delta.
func (c *CounterVar) Add(delta float64) {
	if c == nil {
		return
	}
	c.v += delta
}

// Value returns the current count; 0 for nil.
func (c *CounterVar) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins instrument. Nil no-ops.
type Gauge struct{ v float64 }

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the last set value; 0 for nil.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// histBuckets spans 2^-48 … 2^47 in base-2 exponential buckets — wide
// enough for everything the simulator measures (sub-microsecond spans to
// multi-day horizons) in fixed memory.
const (
	histBuckets = 96
	histOffset  = 48
)

// Histogram is a streaming base-2 exponential histogram: Observe is
// O(1), allocation-free, and keeps exact count/sum/min/max alongside
// bucket counts for approximate quantiles (≤ one octave of error,
// clamped to the observed [min, max]). Zero and negative observations
// land in the lowest bucket; NaN observations are counted and ignored.
// Nil no-ops.
type Histogram struct {
	count    uint64
	nans     uint64
	sum      float64
	min, max float64
	buckets  [histBuckets]uint64
}

func bucketIndex(v float64) int {
	if v <= 0 {
		return 0
	}
	i := math.Ilogb(v) + histOffset
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) {
		h.nans++
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketIndex(v)]++
}

// Count returns the number of non-NaN observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// NaNs returns the number of ignored NaN observations.
func (h *Histogram) NaNs() uint64 {
	if h == nil {
		return 0
	}
	return h.nans
}

// Sum returns the sum of observations; 0 for nil or empty.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the exact mean; 0 for nil or empty.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation; 0 for nil or empty.
func (h *Histogram) Min() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation; 0 for nil or empty.
func (h *Histogram) Max() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.max
}

// Merge folds src's observations into h: counts, sums, NaN counts and
// bucket counts add; min/max combine. Merging the same histograms in
// the same order always produces the identical result, which is what
// makes campaign rollups worker-count independent (the campaign merges
// per-run histograms in variation order, after the parallel fan-out).
// Nil receiver or nil src no-ops.
func (h *Histogram) Merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	if src.count > 0 {
		if h.count == 0 || src.min < h.min {
			h.min = src.min
		}
		if h.count == 0 || src.max > h.max {
			h.max = src.max
		}
		h.count += src.count
		h.sum += src.sum
		for i, n := range src.buckets {
			h.buckets[i] += n
		}
	}
	h.nans += src.nans
}

// Quantile returns the approximate p-quantile (p in [0, 1]): the
// geometric midpoint of the bucket holding the p-th observation, clamped
// to the observed range. 0 for nil or empty.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	// Clamp p before the uint64 conversion: a negative product converts
	// implementation-defined (in practice to a huge rank, silently turning
	// Quantile(-0.1) into the maximum).
	if math.IsNaN(p) || p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			// Bucket i spans [2^(i-histOffset), 2^(i-histOffset+1)).
			mid := math.Ldexp(1.5, i-histOffset)
			return math.Min(h.max, math.Max(h.min, mid))
		}
	}
	return h.max
}

type instrumentKind int

const (
	kindCounter instrumentKind = iota
	kindGauge
	kindHistogram
)

type instrument struct {
	name string
	kind instrumentKind
	c    *CounterVar
	g    *Gauge
	h    *Histogram
}

// Registry holds named instruments in registration order.
type Registry struct {
	order []instrument
	index map[string]int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

func (r *Registry) lookup(name string, kind instrumentKind) (instrument, bool) {
	if i, ok := r.index[name]; ok {
		in := r.order[i]
		if in.kind != kind {
			panic(fmt.Sprintf("metrics: %q already registered with a different type", name))
		}
		return in, true
	}
	return instrument{}, false
}

func (r *Registry) add(in instrument) {
	r.index[in.name] = len(r.order)
	r.order = append(r.order, in)
}

// Counter returns the named counter, registering it on first use.
// A nil registry returns a nil (disabled) counter.
func (r *Registry) Counter(name string) *CounterVar {
	if r == nil {
		return nil
	}
	if in, ok := r.lookup(name, kindCounter); ok {
		return in.c
	}
	c := &CounterVar{}
	r.add(instrument{name: name, kind: kindCounter, c: c})
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if in, ok := r.lookup(name, kindGauge); ok {
		return in.g
	}
	g := &Gauge{}
	r.add(instrument{name: name, kind: kindGauge, g: g})
	return g
}

// Histogram returns the named histogram, registering it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if in, ok := r.lookup(name, kindHistogram); ok {
		return in.h
	}
	h := &Histogram{}
	r.add(instrument{name: name, kind: kindHistogram, h: h})
	return h
}

// Merge folds src into r: counters add, histograms merge bucket-wise,
// gauges take src's value (last merged wins). Instruments missing from
// r are registered in src order, so merging the same sources in the
// same order yields a registry whose Snapshot and WriteProm renderings
// are byte-identical — the determinism contract campaign aggregation
// relies on. A name registered with different kinds panics, same as
// the accessors. Nil receiver or nil src no-ops.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	for _, in := range src.order {
		switch in.kind {
		case kindCounter:
			r.Counter(in.name).Add(in.c.Value())
		case kindGauge:
			r.Gauge(in.name).Set(in.g.Value())
		case kindHistogram:
			r.Histogram(in.name).Merge(in.h)
		}
	}
}

// Visit calls f for every instrument in registration order; exactly one
// of c, g, h is non-nil per call. It exposes instrument kinds without
// flattening (Snapshot forgets them), which report builders need to
// render histograms as distribution rows. Nil no-ops.
func (r *Registry) Visit(f func(name string, c *CounterVar, g *Gauge, h *Histogram)) {
	if r == nil {
		return
	}
	for _, in := range r.order {
		f(in.name, in.c, in.g, in.h)
	}
}

// Snapshot renders every instrument into a CounterSet in registration
// order. Counters and gauges emit name=value; a histogram expands to
// name.count, name.mean, name.p50, name.p99, and name.max. Nil yields
// nil.
func (r *Registry) Snapshot() CounterSet {
	if r == nil {
		return nil
	}
	var cs CounterSet
	for _, in := range r.order {
		switch in.kind {
		case kindCounter:
			cs = append(cs, Counter{Name: in.name, Value: in.c.Value()})
		case kindGauge:
			cs = append(cs, Counter{Name: in.name, Value: in.g.Value()})
		case kindHistogram:
			cs = append(cs,
				Counter{Name: in.name + ".count", Value: float64(in.h.Count())},
				Counter{Name: in.name + ".mean", Value: in.h.Mean()},
				Counter{Name: in.name + ".p50", Value: in.h.Quantile(0.50)},
				Counter{Name: in.name + ".p99", Value: in.h.Quantile(0.99)},
				Counter{Name: in.name + ".max", Value: in.h.Max()},
			)
		}
	}
	return cs
}
