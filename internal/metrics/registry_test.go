package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSummarizeEdgeTable(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name      string
		in        []float64
		wantPanic bool
		want      Summary
	}{
		{name: "empty", in: nil, wantPanic: true},
		{name: "all NaN", in: []float64{nan, nan}, wantPanic: true},
		{name: "single", in: []float64{7},
			want: Summary{N: 1, Mean: 7, Min: 7, Max: 7, P50: 7, P90: 7, P99: 7}},
		{name: "single negative", in: []float64{-3},
			want: Summary{N: 1, Mean: -3, Min: -3, Max: -3, P50: -3, P90: -3, P99: -3}},
		{name: "NaN ignored", in: []float64{nan, 2, nan, 4},
			want: Summary{N: 2, Mean: 3, Min: 2, Max: 4, P50: 3, P90: 3.8, P99: 3.98, StdDev: 1}},
		{name: "two equal", in: []float64{5, 5},
			want: Summary{N: 2, Mean: 5, Min: 5, Max: 5, P50: 5, P90: 5, P99: 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.wantPanic {
				defer func() {
					if recover() == nil {
						t.Fatal("no panic")
					}
				}()
				Summarize(tc.in)
				return
			}
			got := Summarize(tc.in)
			fields := []struct {
				name      string
				got, want float64
			}{
				{"Mean", got.Mean, tc.want.Mean}, {"Min", got.Min, tc.want.Min},
				{"Max", got.Max, tc.want.Max}, {"P50", got.P50, tc.want.P50},
				{"P90", got.P90, tc.want.P90}, {"P99", got.P99, tc.want.P99},
				{"StdDev", got.StdDev, tc.want.StdDev},
			}
			if got.N != tc.want.N {
				t.Errorf("N = %d, want %d", got.N, tc.want.N)
			}
			for _, f := range fields {
				if math.IsNaN(f.got) || math.Abs(f.got-f.want) > 1e-9 {
					t.Errorf("%s = %v, want %v", f.name, f.got, f.want)
				}
			}
		})
	}
}

func TestPercentileTable(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"single p0", []float64{3}, 0, 3},
		{"single p100", []float64{3}, 1, 3},
		{"pair p0", []float64{1, 2}, 0, 1},
		{"pair p50", []float64{1, 2}, 0.5, 1.5},
		{"pair p100", []float64{1, 2}, 1, 2},
		{"triple exact index", []float64{1, 2, 3}, 0.5, 2},
		{"triple interpolated", []float64{0, 10, 20}, 0.25, 5},
	}
	for _, tc := range cases {
		if got := percentile(tc.sorted, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: percentile(%v, %v) = %v, want %v", tc.name, tc.sorted, tc.p, got, tc.want)
		}
	}
}

func TestRegistryNilIsDisabled(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Mean() != 0 ||
		h.Min() != 0 || h.Max() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 || h.NaNs() != 0 {
		t.Fatal("nil instruments recorded something")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
}

func TestRegistryDeduplicatesAndSnapshotOrder(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("flows")
	b := r.Counter("flows")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(2)
	r.Gauge("active").Set(7)
	h := r.Histogram("lat")
	h.Observe(1)
	h.Observe(1)
	cs := r.Snapshot()
	wantNames := []string{"flows", "active", "lat.count", "lat.mean", "lat.p50", "lat.p99", "lat.max"}
	if len(cs) != len(wantNames) {
		t.Fatalf("snapshot = %v", cs)
	}
	for i, w := range wantNames {
		if cs[i].Name != w {
			t.Fatalf("snapshot[%d] = %q, want %q (full: %v)", i, cs[i].Name, w, cs)
		}
	}
	if v, _ := cs.Get("flows"); v != 2 {
		t.Fatalf("flows = %v", v)
	}
	if v, _ := cs.Get("lat.count"); v != 2 {
		t.Fatalf("lat.count = %v", v)
	}
	out := cs.String()
	if !strings.Contains(out, "flows=2") || !strings.Contains(out, "active=7") {
		t.Fatalf("String() = %q", out)
	}
}

func TestRegistryTypeClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as gauge did not panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramStreaming(t *testing.T) {
	h := &Histogram{}
	for _, v := range []float64{1, 2, 4, 8, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN())
	if h.Count() != 5 || h.NaNs() != 1 {
		t.Fatalf("count=%d nans=%d", h.Count(), h.NaNs())
	}
	if h.Sum() != 115 || h.Mean() != 23 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("sum=%v mean=%v min=%v max=%v", h.Sum(), h.Mean(), h.Min(), h.Max())
	}
	// Quantiles are octave-approximate: check bucket-level accuracy.
	if q := h.Quantile(0.5); q < 2 || q > 8 {
		t.Fatalf("p50 = %v, want within [2, 8]", q)
	}
	if q := h.Quantile(1); q < 64 || q > 100 {
		t.Fatalf("p100 = %v, want within [64, 100]", q)
	}
	if q := h.Quantile(0); q < 1 || q > 2 {
		t.Fatalf("p0 = %v, want within [1, 2]", q)
	}
	// Zero, negative and extreme values must not fall outside the range.
	h2 := &Histogram{}
	h2.Observe(0)
	h2.Observe(-5)
	h2.Observe(1e300)
	if h2.Count() != 3 || h2.Min() != -5 || h2.Max() != 1e300 {
		t.Fatalf("h2: count=%d min=%v max=%v", h2.Count(), h2.Min(), h2.Max())
	}
	if q := h2.Quantile(0.5); math.IsNaN(q) || q < -5 || q > 1e300 {
		t.Fatalf("h2 p50 = %v outside observed range", q)
	}
}

func TestHistogramObserveAllocsZero(t *testing.T) {
	h := &Histogram{}
	if n := testing.AllocsPerRun(100, func() { h.Observe(3.7) }); n != 0 {
		t.Fatalf("Observe allocates %.1f/op, want 0", n)
	}
}

// Pins the Snapshot ordering contract the Prometheus/CSV exporters rely
// on for byte-stability: instruments appear in registration order,
// whatever their kind and however interleaved their registration, with
// each histogram expanding to its five aggregates in place.
func TestSnapshotOrderIsRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g1")
	r.Counter("c1")
	r.Histogram("h1").Observe(2)
	r.Gauge("g2")
	r.Counter("c2")
	// Re-lookups must not re-order.
	r.Counter("c1")
	r.Gauge("g1")
	want := []string{
		"g1", "c1",
		"h1.count", "h1.mean", "h1.p50", "h1.p99", "h1.max",
		"g2", "c2",
	}
	cs := r.Snapshot()
	if len(cs) != len(want) {
		t.Fatalf("snapshot has %d entries, want %d: %v", len(cs), len(want), cs)
	}
	for i, name := range want {
		if cs[i].Name != name {
			t.Fatalf("snapshot[%d] = %q, want %q (full: %v)", i, cs[i].Name, name, cs)
		}
	}
	// Two snapshots of the same registry render identically — the
	// byte-stability the export golden files build on.
	if a, b := r.Snapshot().String(), r.Snapshot().String(); a != b {
		t.Fatalf("snapshot rendering unstable:\n%s\n%s", a, b)
	}
}

// Quantile edge cases: out-of-range p values clamp, a single observation
// dominates every quantile, and empty histograms yield zeros everywhere.
func TestHistogramQuantileEdgeTable(t *testing.T) {
	single := &Histogram{}
	single.Observe(7)
	many := &Histogram{}
	for _, v := range []float64{1, 2, 4, 8} {
		many.Observe(v)
	}
	cases := []struct {
		name     string
		h        *Histogram
		p        float64
		min, max float64 // acceptable result range
	}{
		{"p<0 clamps to first observation", many, -0.5, 1, 2},
		{"p=0 behaves like the minimum", many, 0, 1, 2},
		{"p=1 is the maximum bucket", many, 1, 4, 8},
		{"p>1 clamps to the maximum", many, 2.5, 4, 8},
		{"single observation, p=0", single, 0, 7, 7},
		{"single observation, p=0.5", single, 0.5, 7, 7},
		{"single observation, p=1", single, 1, 7, 7},
	}
	for _, tc := range cases {
		if q := tc.h.Quantile(tc.p); q < tc.min || q > tc.max {
			t.Errorf("%s: Quantile(%v) = %v, want within [%v, %v]", tc.name, tc.p, q, tc.min, tc.max)
		}
	}
	empty := &Histogram{}
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty Quantile(0.5) = %v, want 0", q)
	}
	if q := empty.Quantile(0); q != 0 {
		t.Errorf("empty Quantile(0) = %v, want 0", q)
	}
	if q := empty.Quantile(1); q != 0 {
		t.Errorf("empty Quantile(1) = %v, want 0", q)
	}
}

// Mean/Min/Max on an empty (or all-NaN) histogram are zero, not NaN —
// the health report prints them unconditionally.
func TestHistogramEmptyAggregates(t *testing.T) {
	for _, tc := range []struct {
		name string
		prep func(*Histogram)
	}{
		{"empty", func(*Histogram) {}},
		{"all-NaN", func(h *Histogram) { h.Observe(math.NaN()); h.Observe(math.NaN()) }},
	} {
		h := &Histogram{}
		tc.prep(h)
		if h.Count() != 0 {
			t.Errorf("%s: count = %d, want 0", tc.name, h.Count())
		}
		for name, got := range map[string]float64{
			"Mean": h.Mean(), "Min": h.Min(), "Max": h.Max(), "Sum": h.Sum(),
		} {
			if got != 0 || math.IsNaN(got) {
				t.Errorf("%s: %s = %v, want 0", tc.name, name, got)
			}
		}
	}
}

// Merge determinism: merging the same per-run registries in the same
// order must yield byte-identical Snapshot/WriteProm renderings however
// the runs were computed — the contract campaign aggregation builds on.
func TestRegistryMergeDeterministic(t *testing.T) {
	mkRun := func(seed int) *Registry {
		r := NewRegistry()
		r.Counter("run.failures").Add(float64(seed))
		r.Gauge("run.effective_ratio").Set(1 / float64(seed+1))
		h := r.Histogram("run.wasted_seconds")
		for i := 0; i < seed+2; i++ {
			h.Observe(float64(30 * (i + seed)))
		}
		return r
	}
	merge := func() string {
		agg := NewRegistry()
		for seed := 0; seed < 4; seed++ {
			agg.Merge(mkRun(seed))
		}
		var buf strings.Builder
		if err := WriteProm(&buf, agg); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := merge(), merge()
	if a != b {
		t.Fatalf("merge rendering unstable:\n%s\nvs:\n%s", a, b)
	}
	if !strings.Contains(a, "run_failures 6") {
		t.Fatalf("counters did not add across merges:\n%s", a)
	}
}

func TestHistogramMergeAggregates(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for _, v := range []float64{1, 8} {
		a.Observe(v)
	}
	for _, v := range []float64{0.25, 100} {
		b.Observe(v)
	}
	b.Observe(math.NaN())
	a.Merge(b)
	if a.Count() != 4 || a.NaNs() != 1 {
		t.Fatalf("count=%d nans=%d, want 4/1", a.Count(), a.NaNs())
	}
	if a.Min() != 0.25 || a.Max() != 100 || a.Sum() != 109.25 {
		t.Fatalf("min=%v max=%v sum=%v", a.Min(), a.Max(), a.Sum())
	}
	// Bucket counts added: p100 must now sit in b's top bucket range.
	if q := a.Quantile(1); q < 64 || q > 100 {
		t.Fatalf("merged p100 = %v, want within [64, 100]", q)
	}
}

// Merging into an empty histogram copies min/max instead of treating
// the receiver's zero values as observations.
func TestHistogramMergeIntoEmpty(t *testing.T) {
	src := &Histogram{}
	src.Observe(5)
	src.Observe(9)
	dst := &Histogram{}
	dst.Merge(src)
	if dst.Count() != 2 || dst.Min() != 5 || dst.Max() != 9 || dst.Sum() != 14 {
		t.Fatalf("merge into empty: count=%d min=%v max=%v sum=%v",
			dst.Count(), dst.Min(), dst.Max(), dst.Sum())
	}
	// Merging an empty source must not disturb the receiver.
	dst.Merge(&Histogram{})
	if dst.Count() != 2 || dst.Min() != 5 {
		t.Fatalf("merge of empty source disturbed receiver: count=%d min=%v",
			dst.Count(), dst.Min())
	}
	// Nil combinations no-op.
	var nilH *Histogram
	nilH.Merge(src)
	dst.Merge(nil)
	if dst.Count() != 2 {
		t.Fatalf("nil merge disturbed receiver: count=%d", dst.Count())
	}
}

func TestRegistryMergeSemantics(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("c").Add(2)
	dst.Gauge("g").Set(1)

	src := NewRegistry()
	src.Counter("c").Add(3)
	src.Gauge("g").Set(0.5)
	src.Histogram("h").Observe(7)
	src.Counter("only_src").Inc()

	dst.Merge(src)
	if v := dst.Counter("c").Value(); v != 5 {
		t.Errorf("counter merged to %v, want 5 (add)", v)
	}
	if v := dst.Gauge("g").Value(); v != 0.5 {
		t.Errorf("gauge merged to %v, want 0.5 (last merged wins)", v)
	}
	if n := dst.Histogram("h").Count(); n != 1 {
		t.Errorf("histogram merged count %d, want 1", n)
	}
	if v := dst.Counter("only_src").Value(); v != 1 {
		t.Errorf("missing instrument not registered: %v", v)
	}
	// New instruments land after dst's own, in src order.
	var names []string
	dst.Visit(func(name string, _ *CounterVar, _ *Gauge, _ *Histogram) {
		names = append(names, name)
	})
	want := []string{"c", "g", "h", "only_src"}
	if len(names) != len(want) {
		t.Fatalf("order %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("order %v, want %v", names, want)
		}
	}
	// Nil combinations no-op.
	var nilR *Registry
	nilR.Merge(src)
	dst.Merge(nil)
	nilR.Visit(func(string, *CounterVar, *Gauge, *Histogram) {
		t.Fatal("nil registry visited an instrument")
	})
}

func TestRegistryMergeKindClashPanics(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("x")
	src := NewRegistry()
	src.Gauge("x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash on merge did not panic")
		}
	}()
	dst.Merge(src)
}
