package metrics

// The run health monitor's time-series layer: where Registry holds the
// *current* value of every instrument, a Series remembers how a value
// evolved over simulated time, and a Recorder samples selected registry
// instruments on a fixed sim-time cadence. Both are pure observers — they
// read the clock and the instruments, never schedule state changes — so a
// monitored run replays bit-identically to an unmonitored one. In steady
// state (after the ring fills) sampling is allocation-free, matching the
// repo's alloc-gate discipline for hot-path observability.

import (
	"fmt"

	"gemini/internal/simclock"
)

// Point is one timestamped observation in a Series.
type Point struct {
	At    simclock.Time
	Value float64
}

// Series is a fixed-capacity ring buffer of sim-time samples. When full,
// Append overwrites the oldest point and counts it as dropped — a bounded
// monitor must never grow without bound on a long horizon. A nil *Series
// is disabled: Append no-ops, accessors return zeros.
type Series struct {
	name    string
	points  []Point
	head    int // index of the oldest live point
	dropped int
}

// NewSeries creates a series holding at most capacity points.
func NewSeries(name string, capacity int) *Series {
	if capacity < 1 {
		panic(fmt.Sprintf("metrics: series capacity %d must be ≥ 1", capacity))
	}
	return &Series{name: name, points: make([]Point, 0, capacity)}
}

// Name returns the series name; "" for nil.
func (s *Series) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Append records one observation, evicting the oldest when full.
func (s *Series) Append(at simclock.Time, v float64) {
	if s == nil {
		return
	}
	if len(s.points) < cap(s.points) {
		s.points = append(s.points, Point{At: at, Value: v})
		return
	}
	s.points[s.head] = Point{At: at, Value: v}
	s.head = (s.head + 1) % len(s.points)
	s.dropped++
}

// Len returns the number of live points.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.points)
}

// Point returns the i-th live point, oldest first.
func (s *Series) Point(i int) Point {
	if s == nil || i < 0 || i >= len(s.points) {
		panic(fmt.Sprintf("metrics: series point %d out of range [0,%d)", i, s.Len()))
	}
	return s.points[(s.head+i)%len(s.points)]
}

// Last returns the most recent point, if any.
func (s *Series) Last() (Point, bool) {
	if s == nil || len(s.points) == 0 {
		return Point{}, false
	}
	return s.Point(len(s.points) - 1), true
}

// Dropped returns how many points eviction has discarded.
func (s *Series) Dropped() int {
	if s == nil {
		return 0
	}
	return s.dropped
}

// column is one watched instrument and the series recording it.
type column struct {
	c *CounterVar
	g *Gauge
	s *Series
}

// Recorder samples selected counters and gauges of one Registry into
// per-instrument Series. Watch the instruments, then either call Sample
// from your own clock hook or Start a ticker on the run's engine; the
// sampling callback only reads, so a recorded run is bit-identical to an
// unrecorded one. A nil *Recorder is disabled and free.
type Recorder struct {
	reg     *Registry
	cap     int
	cols    []column
	samples int
	ticker  *simclock.Ticker
}

// NewRecorder creates a recorder over reg whose series each hold at most
// capacity points. A nil registry yields a nil (disabled) recorder.
func NewRecorder(reg *Registry, capacity int) *Recorder {
	if reg == nil {
		return nil
	}
	if capacity < 1 {
		panic(fmt.Sprintf("metrics: recorder capacity %d must be ≥ 1", capacity))
	}
	return &Recorder{reg: reg, cap: capacity}
}

// Watch adds registry instruments to the sample set, in call order (which
// fixes the CSV column order). A name not yet registered is registered as
// a gauge; watching a histogram panics — sample its Snapshot aggregates
// instead. Watching the same name twice panics.
func (r *Recorder) Watch(names ...string) {
	if r == nil {
		return
	}
	for _, name := range names {
		for _, col := range r.cols {
			if col.s.Name() == name {
				panic(fmt.Sprintf("metrics: %q watched twice", name))
			}
		}
		col := column{s: NewSeries(name, r.cap)}
		if i, ok := r.reg.index[name]; ok {
			switch in := r.reg.order[i]; in.kind {
			case kindCounter:
				col.c = in.c
			case kindGauge:
				col.g = in.g
			default:
				panic(fmt.Sprintf("metrics: cannot watch histogram %q; watch its Snapshot aggregates", name))
			}
		} else {
			col.g = r.reg.Gauge(name)
		}
		r.cols = append(r.cols, col)
	}
}

// Sample appends every watched instrument's current value at the given
// time. Allocation-free once the rings are full.
func (r *Recorder) Sample(at simclock.Time) {
	if r == nil {
		return
	}
	r.samples++
	for i := range r.cols {
		col := &r.cols[i]
		if col.c != nil {
			col.s.Append(at, col.c.Value())
		} else {
			col.s.Append(at, col.g.Value())
		}
	}
}

// Start arms a sim-time ticker that samples every period until Stop (or
// the end of the run). The ticker's callback is read-only, so the
// monitored run's schedule of state-changing events is untouched.
func (r *Recorder) Start(engine *simclock.Engine, every simclock.Duration) {
	if r == nil {
		return
	}
	if r.ticker != nil {
		panic("metrics: recorder already started")
	}
	r.ticker = simclock.NewTicker(engine, every, func(at simclock.Time) { r.Sample(at) })
}

// Stop cancels the ticker armed by Start.
func (r *Recorder) Stop() {
	if r == nil || r.ticker == nil {
		return
	}
	r.ticker.Stop()
}

// Samples returns how many times Sample ran.
func (r *Recorder) Samples() int {
	if r == nil {
		return 0
	}
	return r.samples
}

// Series returns the recorded series in watch order.
func (r *Recorder) Series() []*Series {
	if r == nil {
		return nil
	}
	out := make([]*Series, len(r.cols))
	for i := range r.cols {
		out[i] = r.cols[i].s
	}
	return out
}
