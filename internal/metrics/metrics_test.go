package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"gemini/internal/simclock"
)

func TestWastedTimeEquation1(t *testing.T) {
	// §2.2's MT-NLG example: t_ckpt = 42 min, f = one per t_ckpt (the
	// highest rate remote storage supports), t_rtvl = 42 min... the paper
	// states the average wasted time is 105 min = 42 + 21 + 42.
	m := WastedTimeModel{
		CheckpointTime: 42 * simclock.Minute,
		Interval:       42 * simclock.Minute,
		RetrievalTime:  42 * simclock.Minute,
	}
	if got := m.Average(); math.Abs(got.Seconds()-105*60) > 1e-9 {
		t.Fatalf("average wasted %v, want 105m", got)
	}
	if got := m.Best(); got != 84*simclock.Minute {
		t.Fatalf("best %v, want 84m", got)
	}
	if got := m.Worst(); got != 126*simclock.Minute {
		t.Fatalf("worst %v, want 126m", got)
	}
}

func TestValidateEquation2(t *testing.T) {
	iter := simclock.Duration(62)
	good := WastedTimeModel{CheckpointTime: 3, Interval: 62, RetrievalTime: 1}
	if err := good.Validate(iter); err != nil {
		t.Fatalf("per-iteration checkpointing rejected: %v", err)
	}
	// Interval below iteration time violates 1/f ≥ T_iter.
	bad := good
	bad.Interval = 30
	if err := bad.Validate(iter); err == nil {
		t.Fatal("interval below iteration time accepted")
	}
	// Interval below checkpoint time violates 1/f ≥ t_ckpt.
	bad = WastedTimeModel{CheckpointTime: 100, Interval: 80, RetrievalTime: 0}
	if err := bad.Validate(iter); err == nil {
		t.Fatal("interval below checkpoint time accepted")
	}
	neg := WastedTimeModel{CheckpointTime: -1, Interval: 10}
	if err := neg.Validate(iter); err == nil {
		t.Fatal("negative checkpoint time accepted")
	}
}

func TestEffectiveRatioBounds(t *testing.T) {
	if got := EffectiveRatio(0, 0, 0, 0); got != 1 {
		t.Fatalf("no failures ratio %v, want 1", got)
	}
	// 2 failures/day × 6h each = 12h lost → 0.5.
	if got := EffectiveRatio(2, 6*simclock.Hour, 0, 0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ratio %v, want 0.5", got)
	}
	// Overheads beyond a day clamp to zero.
	if got := EffectiveRatio(10, 24*simclock.Hour, 0, 0); got != 0 {
		t.Fatalf("ratio %v, want 0", got)
	}
	// Checkpoint serialization alone: HighFreq spends 14.5% on
	// serialization (§7.3): 81s per ckpt, every 9×62s → 155 ckpts/day ...
	// checked against the paper's shape: ratio without failures ≈ 0.855.
	perDay := simclock.Day.Seconds() / (9 * 62)
	got := EffectiveRatio(0, 0, perDay, 81)
	if math.Abs(got-0.8548) > 0.01 {
		t.Fatalf("HighFreq zero-failure ratio %v, want ≈0.855", got)
	}
}

func TestEffectiveRatioPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative rate did not panic")
		}
	}()
	EffectiveRatio(-1, 0, 0, 0)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("stddev %v, want √2", s.StdDev)
	}
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.P99 != 7 || one.StdDev != 0 {
		t.Fatalf("single-sample summary %+v", one)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample did not panic")
		}
	}()
	Summarize(nil)
}

// Property: Best ≤ Average ≤ Worst, and Average = (Best+Worst)/2.
func TestPropertyWastedTimeOrdering(t *testing.T) {
	f := func(a, b, c uint16) bool {
		m := WastedTimeModel{
			CheckpointTime: simclock.Duration(a),
			Interval:       simclock.Duration(b) + 1,
			RetrievalTime:  simclock.Duration(c),
		}
		if m.Best() > m.Average() || m.Average() > m.Worst() {
			return false
		}
		mid := (m.Best() + m.Worst()) / 2
		return math.Abs((m.Average() - mid).Seconds()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: effective ratio is nonincreasing in failure rate and in
// per-failure overhead.
func TestPropertyEffectiveRatioMonotone(t *testing.T) {
	f := func(r1, r2, ov uint16) bool {
		lo, hi := float64(r1%20), float64(r2%20)
		if lo > hi {
			lo, hi = hi, lo
		}
		overhead := simclock.Duration(ov)
		return EffectiveRatio(hi, overhead, 0, 0) <= EffectiveRatio(lo, overhead, 0, 0)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are ordered and within [min, max].
func TestPropertySummaryOrdering(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterSet(t *testing.T) {
	cs := CounterSet{
		{Name: "settle_ops", Value: 1234},
		{Name: "dirty_hit_rate", Value: 0.82345},
	}
	if v, ok := cs.Get("settle_ops"); !ok || v != 1234 {
		t.Fatalf("Get(settle_ops) = %v/%v, want 1234", v, ok)
	}
	if _, ok := cs.Get("missing"); ok {
		t.Fatal("Get reported a missing counter present")
	}
	want := "settle_ops=1234 dirty_hit_rate=0.8235"
	if got := cs.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if got := (CounterSet{}).String(); got != "" {
		t.Fatalf("empty set String() = %q, want empty", got)
	}
}
