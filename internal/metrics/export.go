package metrics

// Export formats for the run health monitor: Prometheus text exposition
// (format version 0.0.4) for the point-in-time state of a Registry or
// Snapshot, and CSV for a Recorder's sim-time timeline. Both renderings
// are fully deterministic — instruments in registration order, values in
// shortest-round-trip form — so a fixed-seed run exports byte-identical
// files (pinned by golden tests).

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// promName mangles an instrument name into the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], mapping every other rune ('.', '-', …) to '_'.
func promName(name string) string {
	out := []byte(name)
	for i := 0; i < len(out); i++ {
		c := out[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				out[i] = '_'
			}
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// promValue renders a float the way Prometheus clients do: shortest form
// that round-trips.
func promValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders the registry in Prometheus text exposition format:
// counters as `counter`, gauges as `gauge`, histograms as native
// `histogram` families — cumulative `_bucket{le="..."}` samples over the
// occupied base-2 buckets (each le is the bucket's upper bound), a
// mandatory `+Inf` bucket equal to `_count`, then `_sum` and `_count`.
// Instruments appear in registration order. A nil registry writes
// nothing.
func WriteProm(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	for _, in := range r.order {
		name := promName(in.name)
		var err error
		switch in.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, promValue(in.c.Value()))
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promValue(in.g.Value()))
		case kindHistogram:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			var cum uint64
			for i, n := range in.h.buckets {
				if n == 0 {
					continue
				}
				cum += n
				// Bucket i spans [2^(i-histOffset), 2^(i-histOffset+1)),
				// so its exposition boundary is the upper edge.
				le := math.Ldexp(1, i-histOffset+1)
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promValue(le), cum); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, in.h.Count()); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promValue(in.h.Sum()), name, in.h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WritePromSnapshot renders an already-flattened CounterSet (what
// Registry.Snapshot and Fabric.Stats produce) as Prometheus gauges, in
// set order. Use WriteProm when the live registry is at hand — it keeps
// instrument kinds; a snapshot has forgotten them.
func WritePromSnapshot(w io.Writer, cs CounterSet) error {
	for _, c := range cs {
		name := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promValue(c.Value)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the recorder's timeline as CSV: a `time` column of
// simulated seconds and one column per watched series, in watch order.
// The recorder samples every column at every tick, so rows align; rows
// are emitted oldest first, and only the points still held by the rings
// appear (evicted history is gone by design).
func WriteCSV(w io.Writer, r *Recorder) error {
	if r == nil {
		return nil
	}
	return WriteSeriesCSV(w, r.Series())
}

// WriteSeriesCSV renders hand-assembled series (the flight recorder's
// per-recovery timelines, which have no Recorder behind them) in the
// same CSV shape as WriteCSV: a `time` column from the first series'
// points plus one column per series, all required to be point-aligned.
func WriteSeriesCSV(w io.Writer, series []*Series) error {
	if _, err := io.WriteString(w, "time"); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, ",%s", s.Name()); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	if len(series) == 0 {
		return nil
	}
	rows := series[0].Len()
	for _, s := range series[1:] {
		if s.Len() != rows {
			return fmt.Errorf("metrics: ragged timeline: series %q has %d points, %q has %d",
				series[0].Name(), rows, s.Name(), s.Len())
		}
	}
	for i := 0; i < rows; i++ {
		if _, err := io.WriteString(w, promValue(float64(series[0].Point(i).At))); err != nil {
			return err
		}
		for _, s := range series {
			if _, err := fmt.Fprintf(w, ",%s", promValue(s.Point(i).Value)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
