// Package metrics implements the paper's evaluation arithmetic: the
// wasted-time model of §2.1 (Equation 1 and its frequency constraint,
// Equation 2), the effective training-time ratio of §7.3, and small
// summary-statistics helpers used by the benchmark harness.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"gemini/internal/simclock"
)

// WastedTimeModel captures the three quantities of §2.1.
type WastedTimeModel struct {
	// CheckpointTime is t_ckpt: how long one checkpoint takes to complete.
	CheckpointTime simclock.Duration
	// Interval is 1/f: the time between checkpoint starts.
	Interval simclock.Duration
	// RetrievalTime is t_rtvl: the time to fetch the latest complete
	// checkpoint during recovery.
	RetrievalTime simclock.Duration
}

// Validate enforces Equation 2's constraint 1/f ≥ max(t_ckpt, T_iter):
// a checkpoint cannot start before the previous one finishes, and more
// than one checkpoint per iteration is pointless.
func (m WastedTimeModel) Validate(iterTime simclock.Duration) error {
	if m.CheckpointTime < 0 || m.Interval <= 0 || m.RetrievalTime < 0 {
		return fmt.Errorf("metrics: negative or zero model parameters %+v", m)
	}
	if limit := max(m.CheckpointTime, iterTime); m.Interval < limit {
		return fmt.Errorf("metrics: interval %v below max(t_ckpt=%v, T_iter=%v)",
			m.Interval, m.CheckpointTime, iterTime)
	}
	return nil
}

// Best returns the best-case wasted time: a failure right after a
// checkpoint completes, t_ckpt + t_rtvl.
func (m WastedTimeModel) Best() simclock.Duration {
	return m.CheckpointTime + m.RetrievalTime
}

// Worst returns the worst-case wasted time: a failure right before a
// checkpoint completes, t_ckpt + 1/f + t_rtvl.
func (m WastedTimeModel) Worst() simclock.Duration {
	return m.CheckpointTime + m.Interval + m.RetrievalTime
}

// Average returns Equation 1, T_wasted = t_ckpt + 1/(2f) + t_rtvl, the
// expected wasted time with failures uniform between checkpoints.
func (m WastedTimeModel) Average() simclock.Duration {
	return m.CheckpointTime + m.Interval/2 + m.RetrievalTime
}

// EffectiveRatio is the §7.3 metric: the fraction of wall-clock time that
// makes training progress, given a failure rate and the overheads each
// failure (and each checkpoint) imposes.
//
//	failuresPerDay          – expected failures per day over the cluster
//	perFailureOverhead      – wasted time per failure (Equation 1 plus
//	                          detection / serialization / restart)
//	checkpointsPerDay       – checkpoints taken per day
//	perCheckpointOverhead   – training stall per checkpoint (e.g. the
//	                          torch.save serialization of HighFreq)
//
// The ratio is clamped to [0, 1]; overheads beyond 24 h/day mean training
// cannot progress at all.
func EffectiveRatio(failuresPerDay float64, perFailureOverhead simclock.Duration,
	checkpointsPerDay float64, perCheckpointOverhead simclock.Duration) float64 {
	if failuresPerDay < 0 || checkpointsPerDay < 0 {
		panic(fmt.Sprintf("metrics: negative rates %v / %v", failuresPerDay, checkpointsPerDay))
	}
	day := simclock.Day.Seconds()
	lost := failuresPerDay*perFailureOverhead.Seconds() + checkpointsPerDay*perCheckpointOverhead.Seconds()
	return math.Max(0, math.Min(1, (day-lost)/day))
}

// Counter is one named engine counter or derived gauge.
type Counter struct {
	Name  string
	Value float64
}

// CounterSet is an ordered collection of counters. Order is presentation
// order: producers list the most interesting counters first.
type CounterSet []Counter

// Get returns the named counter's value and whether it is present.
func (cs CounterSet) Get(name string) (float64, bool) {
	for _, c := range cs {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// String renders the set as space-separated name=value pairs; integral
// values print without a fraction.
func (cs CounterSet) String() string {
	var b []byte
	for i, c := range cs {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, c.Name...)
		b = append(b, '=')
		if c.Value == math.Trunc(c.Value) && math.Abs(c.Value) < 1e15 {
			b = appendf(b, "%.0f", c.Value)
		} else {
			b = appendf(b, "%.4g", c.Value)
		}
	}
	return string(b)
}

func appendf(b []byte, format string, v float64) []byte {
	return fmt.Appendf(b, format, v)
}

// Summary holds order statistics of a sample.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
	StdDev         float64
}

// Summarize computes summary statistics. NaN inputs are ignored — one
// poisoned measurement must not poison every statistic of the run. It
// panics when nothing remains (empty or all-NaN sample): summarizing
// nothing is always a harness bug.
func Summarize(xs []float64) Summary {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			sorted = append(sorted, x)
		}
	}
	if len(sorted) == 0 {
		panic("metrics: empty sample")
	}
	sort.Float64s(sorted)
	var sum, sq float64
	for _, x := range sorted {
		sum += x
		sq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	s := Summary{
		N:    len(sorted),
		Mean: mean,
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		P50:  percentile(sorted, 0.50),
		P90:  percentile(sorted, 0.90),
		P99:  percentile(sorted, 0.99),
	}
	if variance := sq/n - mean*mean; variance > 0 {
		s.StdDev = math.Sqrt(variance)
	}
	return s
}

// percentile interpolates the p-quantile of a sorted sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
