package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// monitorFixture builds a deterministic registry + recorder resembling
// what a monitored run produces: counters, gauges (including a name that
// needs Prometheus mangling), a histogram, and a sampled timeline.
func monitorFixture() (*Registry, *Recorder) {
	reg := NewRegistry()
	rec := reg.Counter("health.recoveries")
	cov := reg.Gauge("health.replica_coverage")
	stale := reg.Gauge("health.ckpt_staleness_local")
	wasted := reg.Histogram("health.wasted_seconds")

	r := NewRecorder(reg, 16)
	r.Watch("health.replica_coverage", "health.ckpt_staleness_local", "health.recoveries")

	cov.Set(1)
	stale.Set(0)
	r.Sample(60)
	stale.Set(1)
	r.Sample(120)
	// A failure: coverage drops, a recovery completes, wasted time lands.
	cov.Set(0.75)
	stale.Set(3)
	rec.Inc()
	wasted.Observe(241.5)
	wasted.Observe(388)
	r.Sample(180)
	cov.Set(1)
	stale.Set(0)
	r.Sample(240)
	return reg, r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (run with -update if intentional)\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// The Prometheus exposition must be byte-stable: registration order,
// shortest-round-trip values, deterministic quantiles.
func TestWritePromGolden(t *testing.T) {
	reg, _ := monitorFixture()
	var buf bytes.Buffer
	if err := WriteProm(&buf, reg); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_metrics.prom", buf.Bytes())

	out := buf.String()
	for _, want := range []string{
		"# TYPE health_recoveries counter\n",
		"# TYPE health_replica_coverage gauge\nhealth_replica_coverage 1\n",
		"# TYPE health_wasted_seconds histogram\n",
		// 241.5 lands in [128,256), 388 in [256,512): two cumulative
		// buckets, then the mandatory +Inf bucket equal to _count.
		`health_wasted_seconds_bucket{le="256"} 1` + "\n",
		`health_wasted_seconds_bucket{le="512"} 2` + "\n",
		`health_wasted_seconds_bucket{le="+Inf"} 2` + "\n",
		"health_wasted_seconds_sum 629.5\n",
		"health_wasted_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// The CSV timeline must be byte-stable too.
func TestWriteCSVGolden(t *testing.T) {
	_, rec := monitorFixture()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rec); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_timeline.csv", buf.Bytes())

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "time,health.replica_coverage,health.ckpt_staleness_local,health.recoveries" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("%d lines, want header + 4 rows", len(lines))
	}
	if lines[3] != "180,0.75,3,1" {
		t.Fatalf("failure row %q, want 180,0.75,3,1", lines[3])
	}
}

func TestWritePromNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, nil); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry: err=%v bytes=%d", err, buf.Len())
	}
	if err := WriteCSV(&buf, nil); err != nil || buf.Len() != 0 {
		t.Fatalf("nil recorder: err=%v bytes=%d", err, buf.Len())
	}
}

func TestWritePromSnapshot(t *testing.T) {
	cs := CounterSet{
		{Name: "fabric.settles", Value: 42},
		{Name: "fabric.dirty-hit-rate", Value: 0.875},
	}
	var buf bytes.Buffer
	if err := WritePromSnapshot(&buf, cs); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE fabric_settles gauge\nfabric_settles 42\n" +
		"# TYPE fabric_dirty_hit_rate gauge\nfabric_dirty_hit_rate 0.875\n"
	if buf.String() != want {
		t.Fatalf("snapshot exposition:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestWriteCSVRaggedSeriesErrors(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, 4)
	rec.Watch("a", "b")
	rec.Sample(1)
	// Corrupt alignment by appending directly to one series.
	rec.Series()[0].Append(2, 5)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rec); err == nil {
		t.Fatal("ragged timeline did not error")
	}
}

func TestPromNameMangling(t *testing.T) {
	cases := map[string]string{
		"health.replica_coverage": "health_replica_coverage",
		"nic·2":                   "nic__2", // multi-byte rune: every byte mangles
		"9lives":                  "_lives",
		"ok_name:sub":             "ok_name:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
