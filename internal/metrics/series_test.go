package metrics

import (
	"testing"

	"gemini/internal/simclock"
)

func TestSeriesRingEviction(t *testing.T) {
	s := NewSeries("x", 3)
	if s.Len() != 0 || s.Dropped() != 0 {
		t.Fatalf("fresh series: len=%d dropped=%d", s.Len(), s.Dropped())
	}
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty series reported a point")
	}
	for i := 0; i < 5; i++ {
		s.Append(simclock.Time(i), float64(i*10))
	}
	if s.Len() != 3 {
		t.Fatalf("len %d after 5 appends at capacity 3, want 3", s.Len())
	}
	if s.Dropped() != 2 {
		t.Fatalf("dropped %d, want 2", s.Dropped())
	}
	for i, want := range []Point{{2, 20}, {3, 30}, {4, 40}} {
		if got := s.Point(i); got != want {
			t.Errorf("point %d = %+v, want %+v", i, got, want)
		}
	}
	last, ok := s.Last()
	if !ok || last != (Point{4, 40}) {
		t.Fatalf("Last = %+v/%v, want {4 40}", last, ok)
	}
}

func TestSeriesPointOutOfRangePanics(t *testing.T) {
	s := NewSeries("x", 2)
	s.Append(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Point did not panic")
		}
	}()
	s.Point(1)
}

func TestNilSeriesIsDisabled(t *testing.T) {
	var s *Series
	s.Append(1, 2) // must not panic
	if s.Len() != 0 || s.Dropped() != 0 || s.Name() != "" {
		t.Fatal("nil series not inert")
	}
	if _, ok := s.Last(); ok {
		t.Fatal("nil series has a last point")
	}
}

func TestRecorderSamplesCountersAndGauges(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("recoveries")
	g := reg.Gauge("coverage")
	rec := NewRecorder(reg, 8)
	rec.Watch("coverage", "recoveries", "fresh") // "fresh" registered as a gauge
	g.Set(1.0)
	rec.Sample(10)
	c.Inc()
	g.Set(0.75)
	rec.Sample(20)

	series := rec.Series()
	if len(series) != 3 {
		t.Fatalf("%d series, want 3", len(series))
	}
	names := []string{series[0].Name(), series[1].Name(), series[2].Name()}
	want := []string{"coverage", "recoveries", "fresh"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("series order %v, want %v", names, want)
		}
	}
	if p := series[0].Point(1); p != (Point{20, 0.75}) {
		t.Fatalf("coverage sample %+v, want {20 0.75}", p)
	}
	if p := series[1].Point(0); p != (Point{10, 0}) {
		t.Fatalf("recoveries sample %+v, want {10 0}", p)
	}
	if p := series[1].Point(1); p != (Point{20, 1}) {
		t.Fatalf("recoveries sample %+v, want {20 1}", p)
	}
	if rec.Samples() != 2 {
		t.Fatalf("%d samples, want 2", rec.Samples())
	}
}

func TestRecorderWatchHistogramPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("lat")
	rec := NewRecorder(reg, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("watching a histogram did not panic")
		}
	}()
	rec.Watch("lat")
}

func TestRecorderWatchTwicePanics(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, 4)
	rec.Watch("x")
	defer func() {
		if recover() == nil {
			t.Fatal("double watch did not panic")
		}
	}()
	rec.Watch("x")
}

func TestNilRecorderIsDisabled(t *testing.T) {
	rec := NewRecorder(nil, 8)
	if rec != nil {
		t.Fatal("recorder over a nil registry must be nil")
	}
	rec.Watch("x")
	rec.Sample(5)
	rec.Stop()
	if rec.Samples() != 0 || rec.Series() != nil {
		t.Fatal("nil recorder not inert")
	}
}

func TestRecorderStartSamplesOnCadence(t *testing.T) {
	engine := simclock.NewEngine()
	reg := NewRegistry()
	g := reg.Gauge("iteration")
	rec := NewRecorder(reg, 16)
	rec.Watch("iteration")
	// A producer updates the gauge every 3 s; the recorder samples every
	// 10 s.
	simclock.NewTicker(engine, 3, func(at simclock.Time) { g.Set(float64(at)) })
	rec.Start(engine, 10)
	engine.Run(35)
	if rec.Samples() != 3 {
		t.Fatalf("%d samples over 35 s at 10 s cadence, want 3", rec.Samples())
	}
	s := rec.Series()[0]
	// At t=10 the last producer tick was t=9; at t=20, t=18. At t=30 both
	// fire, but the recorder's event was scheduled earlier (at t=20, vs
	// the producer's at t=27), so the sample still sees the t=27 value.
	for i, want := range []Point{{10, 9}, {20, 18}, {30, 27}} {
		if got := s.Point(i); got != want {
			t.Errorf("sample %d = %+v, want %+v", i, got, want)
		}
	}
	rec.Stop()
	engine.Run(100)
	if rec.Samples() != 3 {
		t.Fatalf("recorder sampled after Stop: %d", rec.Samples())
	}
}

func TestRecorderDoubleStartPanics(t *testing.T) {
	engine := simclock.NewEngine()
	reg := NewRegistry()
	rec := NewRecorder(reg, 4)
	rec.Start(engine, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	rec.Start(engine, 10)
}

// The monitor's steady-state sampling must be allocation-free, like the
// other hot-path observability (disabled tracing, histogram Observe).
// ci.sh runs this outside the race detector.
func TestRecorderSampleAllocsZero(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("events")
	g := reg.Gauge("coverage")
	rec := NewRecorder(reg, 32)
	rec.Watch("events", "coverage")
	// Fill the rings so sampling is in eviction mode.
	for i := 0; i < 64; i++ {
		rec.Sample(simclock.Time(i))
	}
	var at simclock.Time = 100
	if n := testing.AllocsPerRun(200, func() {
		c.Add(1)
		g.Set(0.5)
		rec.Sample(at)
		at++
	}); n != 0 {
		t.Fatalf("Recorder.Sample allocates %v bytes/op in steady state, want 0", n)
	}
}

// Ring-drop counting at exact capacity boundaries: filling to exactly
// capacity drops nothing, the very next append drops exactly one, and a
// capacity-1 ring degenerates to "keep last, drop the rest".
func TestSeriesDropCountAtCapacityBoundary(t *testing.T) {
	s := NewSeries("x", 4)
	for i := 0; i < 4; i++ {
		s.Append(simclock.Time(i), float64(i))
		if s.Dropped() != 0 {
			t.Fatalf("dropped %d after %d appends at capacity 4, want 0", s.Dropped(), i+1)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("len %d at exact capacity, want 4", s.Len())
	}
	if got := s.Point(0); got != (Point{0, 0}) {
		t.Fatalf("oldest point %+v at exact capacity, want {0 0}", got)
	}
	s.Append(4, 4)
	if s.Len() != 4 || s.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d one past capacity, want 4/1", s.Len(), s.Dropped())
	}
	if got := s.Point(0); got != (Point{1, 1}) {
		t.Fatalf("oldest point %+v after first eviction, want {1 1}", got)
	}
	s.Append(5, 5)
	if s.Dropped() != 2 {
		t.Fatalf("dropped %d after second eviction, want 2", s.Dropped())
	}

	one := NewSeries("y", 1)
	one.Append(1, 10)
	if one.Len() != 1 || one.Dropped() != 0 {
		t.Fatalf("capacity-1 fresh: len=%d dropped=%d", one.Len(), one.Dropped())
	}
	for i := 2; i <= 5; i++ {
		one.Append(simclock.Time(i), float64(i*10))
	}
	if one.Len() != 1 || one.Dropped() != 4 {
		t.Fatalf("capacity-1 after 5 appends: len=%d dropped=%d, want 1/4", one.Len(), one.Dropped())
	}
	if last, ok := one.Last(); !ok || last != (Point{5, 50}) {
		t.Fatalf("capacity-1 last = %+v/%v, want {5 50}", last, ok)
	}
}
