package derive

import (
	"reflect"
	"sync"
	"testing"

	"gemini/internal/baselines"
	"gemini/internal/metrics"
)

func validKey() Key {
	return Key{
		Model:           "GPT-2 100B",
		Instance:        "p4d.24xlarge",
		Machines:        16,
		Replicas:        2,
		RemoteBandwidth: baselines.DefaultRemoteBandwidth,
	}
}

func TestGetMatchesBuild(t *testing.T) {
	c := NewCache(8)
	k := validKey()
	cached, err := c.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached.Config, fresh.Config) {
		t.Error("cached Config differs from a fresh Build")
	}
	if !reflect.DeepEqual(cached.Profile, fresh.Profile) {
		t.Error("cached Profile differs from a fresh Build")
	}
	if !reflect.DeepEqual(cached.Plan, fresh.Plan) {
		t.Error("cached Plan differs from a fresh Build")
	}
	if cached.Gemini != fresh.Gemini || cached.Strawman != fresh.Strawman || cached.HighFreq != fresh.HighFreq {
		t.Error("cached baseline specs differ from a fresh Build")
	}
}

func TestWarmHitSharesArtifacts(t *testing.T) {
	c := NewCache(8)
	k := validKey()
	a1, err := c.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("warm hit returned a different Artifacts pointer")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := NewCache(8)
	k := validKey()
	k.Model = "no-such-model"
	if _, err := c.Get(k); err == nil {
		t.Fatal("expected an error for an unknown model")
	}
	s := c.Stats()
	if s.Entries != 0 {
		t.Fatalf("failed build left %d entries in the cache", s.Entries)
	}
	// A retry misses again (no poisoned slot) and still errors.
	if _, err := c.Get(k); err == nil {
		t.Fatal("expected the retry to error too")
	}
	if s := c.Stats(); s.Misses != 2 || s.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 misses / 0 hits", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewCache(2)
	keys := []Key{validKey(), validKey(), validKey()}
	keys[1].Replicas = 3
	keys[2].Model = "RoBERTa 100B"
	for _, k := range keys {
		if _, err := c.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", s)
	}
	// keys[0] was least recently used and must have been evicted: getting
	// it again is a miss, while keys[2] stays warm.
	if _, err := c.Get(keys[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(keys[0]); err != nil {
		t.Fatal(err)
	}
	s = c.Stats()
	if s.Hits != 1 || s.Misses != 4 {
		t.Fatalf("stats = %+v, want 1 hit / 4 misses after LRU re-fetch", s)
	}
}

func TestLRUOrderFollowsUse(t *testing.T) {
	c := NewCache(2)
	a, b := validKey(), validKey()
	b.Replicas = 3
	third := validKey()
	third.Model = "BERT 100B"
	for _, k := range []Key{a, b} {
		if _, err := c.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b becomes the LRU victim.
	if _, err := c.Get(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(third); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(a); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	// a: miss, hit, hit; b: miss; third: miss; b evicted.
	if s.Hits != 2 || s.Misses != 3 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 3 misses / 1 eviction", s)
	}
}

func TestSingleflightConcurrentMisses(t *testing.T) {
	c := NewCache(8)
	k := validKey()
	const goroutines = 16
	got := make([]*Artifacts, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := c.Get(k)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = a
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent gets returned different Artifacts pointers")
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("concurrent gets on one key built %d times, want 1 (singleflight)", s.Misses)
	}
	if s.Hits != goroutines-1 {
		t.Fatalf("stats = %+v, want %d hits", s, goroutines-1)
	}
}

func TestDistinctKeysAreDistinctEntries(t *testing.T) {
	c := NewCache(8)
	a := validKey()
	b := validKey()
	b.RemoteBandwidth = 2 * a.RemoteBandwidth
	ra, err := c.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := c.Get(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra == rb {
		t.Fatal("different keys returned the same Artifacts")
	}
	if ra.Strawman.CheckpointTime == rb.Strawman.CheckpointTime {
		t.Error("remote bandwidth change did not affect the derived spec")
	}
}

func TestClearResets(t *testing.T) {
	c := NewCache(8)
	if _, err := c.Get(validKey()); err != nil {
		t.Fatal(err)
	}
	c.Clear()
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("stats after Clear = %+v, want zeroes", s)
	}
	if _, err := c.Get(validKey()); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 1 {
		t.Fatalf("get after Clear was not a miss: %+v", s)
	}
}

func TestExportSnapshotsCounters(t *testing.T) {
	c := NewCache(8)
	for i := 0; i < 3; i++ {
		if _, err := c.Get(validKey()); err != nil {
			t.Fatal(err)
		}
	}
	reg := metrics.NewRegistry()
	c.Export(reg)
	if v := reg.Counter("derive.cache.hits").Value(); v != 2 {
		t.Errorf("exported hits = %v, want 2", v)
	}
	if v := reg.Counter("derive.cache.misses").Value(); v != 1 {
		t.Errorf("exported misses = %v, want 1", v)
	}
	if v := reg.Gauge("derive.cache.entries").Value(); v != 1 {
		t.Errorf("exported entries = %v, want 1", v)
	}
	// Re-export after more traffic refreshes monotonically.
	if _, err := c.Get(validKey()); err != nil {
		t.Fatal(err)
	}
	c.Export(reg)
	if v := reg.Counter("derive.cache.hits").Value(); v != 3 {
		t.Errorf("re-exported hits = %v, want 3", v)
	}
	// Export into a nil registry must no-op.
	c.Export(nil)
}

func TestHitRate(t *testing.T) {
	if r := (Stats{}).HitRate(); r != 0 {
		t.Fatalf("empty hit rate = %v, want 0", r)
	}
	if r := (Stats{Hits: 3, Misses: 1}).HitRate(); r != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", r)
	}
}
