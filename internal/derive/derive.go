// Package derive is the content-keyed cache for the immutable derivation
// pipeline behind core.NewJob. Deriving a job — model and instance lookup,
// training config, Algorithm 1 placement, iteration timeline, §5.4 profile,
// Algorithm 2 plan, cost model, and the three baseline specs — is a pure
// function of six spec fields, yet a campaign re-derives it for every run.
// This package computes that derivation once per distinct Key and shares
// the read-only Artifacts across all jobs (and goroutines) that name it,
// so a warm-key core.NewJob does zero derivation work.
//
// The immutability contract: everything inside Artifacts is read-only
// after Build. Placement, Timeline, Profile, and Plan are never written
// past construction anywhere in the repo (the executor and runsim keep
// their mutable state in per-run arenas), and the guard test in
// internal/core fails if a run ever violates that.
package derive

import (
	"fmt"
	"sync"

	"gemini/internal/baselines"
	"gemini/internal/cluster"
	"gemini/internal/metrics"
	"gemini/internal/model"
	"gemini/internal/placement"
	"gemini/internal/profile"
	"gemini/internal/schedule"
	"gemini/internal/tensor"
	"gemini/internal/training"
)

// Key is the canonical cache key: exactly the JobSpec fields the
// derivation pipeline reads. Faults, strategy, and observability sinks
// (tracer, metrics) deliberately do not appear — they configure runs,
// not derivations, so jobs differing only in those collapse onto one
// cache entry.
type Key struct {
	Model           string
	Instance        string
	Machines        int
	Replicas        int
	RemoteBandwidth float64
	Parallelism     training.Parallelism
}

// Artifacts is everything the pipeline derives from a Key. All fields
// are shared and read-only; see the package comment for the contract.
type Artifacts struct {
	Key       Key
	Config    training.Config
	Placement *placement.Placement
	Timeline  *training.Timeline
	Profile   *profile.Profile
	Plan      *schedule.Plan
	Costs     tensor.CostModel

	Gemini, Strawman, HighFreq baselines.Spec
}

// Build runs the full derivation pipeline for a key, uncached. Replicas
// and RemoteBandwidth must already carry their defaults (core's
// withDefaults applies them before keying).
func Build(k Key) (*Artifacts, error) {
	m, err := model.ByName(k.Model)
	if err != nil {
		return nil, err
	}
	it, err := cluster.InstanceByName(k.Instance)
	if err != nil {
		return nil, err
	}
	cfg, err := training.NewConfig(m, it, k.Machines)
	if err != nil {
		return nil, err
	}
	if !cfg.FitsInGPUMemory() {
		return nil, fmt.Errorf("derive: %s does not fit in GPU memory on %d× %s (needs %.1f GB/GPU of %.1f GB)",
			k.Model, k.Machines, k.Instance,
			cfg.GPUMemoryDemandBytes()/1e9, float64(it.GPUMemBytes)/1e9)
	}
	plc, err := placement.Mixed(k.Machines, k.Replicas)
	if err != nil {
		return nil, err
	}
	// The checkpoint double buffers must fit in host memory.
	needed := 2 * float64(k.Replicas) * cfg.ShardBytesPerMachine()
	if needed > float64(it.CPUMemBytes) {
		return nil, fmt.Errorf("derive: m=%d needs %.0f GB of CPU memory per machine, %s has %.0f GB",
			k.Replicas, needed/1e9, k.Instance, float64(it.CPUMemBytes)/1e9)
	}
	tl, err := training.BuildTimelineFor(cfg, k.Parallelism)
	if err != nil {
		return nil, err
	}
	prof, err := tl.Profile(20)
	if err != nil {
		return nil, err
	}
	plan, err := schedule.Partition(schedule.Params{
		Spans:                prof.Spans,
		CheckpointBytes:      cfg.ShardBytesPerMachine(),
		Replicas:             k.Replicas,
		BufferBytes:          8 * 128e6,
		BufferParts:          4,
		BandwidthBytesPerSec: it.NetworkBytesPerSec,
		Alpha:                cfg.Calib.CollectiveAlpha,
		Gamma:                0.9,
	})
	if err != nil {
		return nil, err
	}
	a := &Artifacts{Key: k, Config: cfg, Placement: plc, Timeline: tl, Profile: prof, Plan: plan, Costs: tensor.DefaultCostModel()}
	// The specs take the parallelism-aware timeline built above: the
	// checkpoint cadence and completion lag follow the job's actual
	// iteration, not an assumed ZeRO-3 one.
	if a.Gemini, err = baselines.Gemini(cfg, tl, k.Replicas, k.RemoteBandwidth, a.Costs); err != nil {
		return nil, err
	}
	if a.Strawman, err = baselines.Strawman(cfg, k.RemoteBandwidth, a.Costs); err != nil {
		return nil, err
	}
	if a.HighFreq, err = baselines.HighFreq(cfg, tl, k.RemoteBandwidth, a.Costs); err != nil {
		return nil, err
	}
	return a, nil
}

// entry is one cache slot. ready closes when the build finishes; hits
// arriving mid-build wait on it instead of re-deriving (singleflight).
// The intrusive prev/next links form the LRU list.
type entry struct {
	key        Key
	ready      chan struct{}
	art        *Artifacts
	err        error
	prev, next *entry
}

// Cache is a concurrency-safe, content-keyed LRU over Build. Concurrent
// misses on the same key build once; builds for different keys proceed
// in parallel (the derivation runs outside the lock). Failed builds are
// not cached, so a transiently invalid key does not poison the slot.
type Cache struct {
	mu         sync.Mutex
	cap        int
	entries    map[Key]*entry
	head, tail *entry // head = most recently used

	hits, misses, evictions uint64
}

// DefaultCapacity bounds the shared cache. An Artifacts is a few tens of
// kilobytes (spans, chunks, placement groups), so even the full catalog
// of model × instance × size sweeps fits comfortably.
const DefaultCapacity = 256

// NewCache creates a cache holding at most capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, entries: make(map[Key]*entry, capacity)}
}

var shared = NewCache(DefaultCapacity)

// Shared returns the process-wide cache core.NewJob resolves against.
func Shared() *Cache { return shared }

// Get returns the artifacts for k, building them on first use. The warm
// path — key present and built — takes the lock briefly and allocates
// nothing. The returned Artifacts is shared: callers must treat it as
// read-only.
func (c *Cache) Get(k Key) (*Artifacts, error) {
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		c.hits++
		c.moveToFront(e)
		c.mu.Unlock()
		<-e.ready
		return e.art, e.err
	}
	c.misses++
	e := &entry{key: k, ready: make(chan struct{})}
	c.entries[k] = e
	c.pushFront(e)
	c.evictOverCap()
	c.mu.Unlock()

	e.art, e.err = Build(k)
	if e.err != nil {
		c.mu.Lock()
		if cur, ok := c.entries[k]; ok && cur == e {
			c.unlink(e)
			delete(c.entries, k)
		}
		c.mu.Unlock()
	}
	close(e.ready)
	return e.art, e.err
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// HitRate returns hits / (hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: len(c.entries)}
}

// Clear drops every entry and zeroes the counters. In-flight builds
// complete for their waiters but are not re-admitted.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Key]*entry, c.cap)
	c.head, c.tail = nil, nil
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// Export writes a snapshot of the counters into a metrics registry as
// derive.cache.* instruments. The registry is a per-run, single-threaded
// sink, so Export copies values instead of wiring live instruments into
// the concurrent cache; calling it again refreshes the counters
// monotonically. A nil registry no-ops.
func (c *Cache) Export(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s := c.Stats()
	raise := func(name string, v float64) {
		ctr := reg.Counter(name)
		if d := v - ctr.Value(); d > 0 {
			ctr.Add(d)
		}
	}
	raise("derive.cache.hits", float64(s.Hits))
	raise("derive.cache.misses", float64(s.Misses))
	raise("derive.cache.evictions", float64(s.Evictions))
	reg.Gauge("derive.cache.entries").Set(float64(s.Entries))
}

// --- intrusive LRU list (callers hold c.mu) ---

func (c *Cache) pushFront(e *entry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// evictOverCap drops least-recently-used entries until the cache fits.
// Evicting a still-building entry is safe: its waiters hold the pointer
// and see the result; only the map slot is reclaimed.
func (c *Cache) evictOverCap() {
	for len(c.entries) > c.cap && c.tail != nil {
		e := c.tail
		c.unlink(e)
		delete(c.entries, e.key)
		c.evictions++
	}
}
