package ckpt

import (
	"fmt"
	"testing"

	"gemini/internal/placement"
)

// benchEngine builds a fully checkpointed n-machine engine with one
// hardware failure (rank 0 wiped), so PlanRecovery exercises both the
// local and remote-CPU paths.
func benchEngine(n int) (*Engine, func(int) bool) {
	e := MustNewEngine(placement.MustMixed(n, 2), shardSize)
	checkpointAll(e, 100)
	e.Wipe(0)
	return e, allAlive
}

// The parallel plan (n ≥ planParallelRanks forces the pool) must be
// identical to the inline plan, retrieval for retrieval.
func TestPlanRecoveryParallelMatchesInline(t *testing.T) {
	n := planParallelRanks + 17 // odd size: last pool shard is short
	e, alive := benchEngine(n)
	want := make([]Retrieval, 0, n)
	for rank := 0; rank < n; rank++ {
		r, err := e.planRank(rank, 100, alive)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	got, err := e.PlanRecovery(100, alive)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parallel plan has %d retrievals, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: parallel %+v != inline %+v", i, got[i], want[i])
		}
	}
	if got[0].Source != SourceRemoteCPU {
		t.Fatalf("wiped rank 0 plans %v, want remote-cpu", got[0].Source)
	}
}

// An inconsistent version must report the lowest failing rank, exactly
// as the serial loop did, regardless of scheduling.
func TestPlanRecoveryDeterministicError(t *testing.T) {
	n := planParallelRanks
	e, _ := benchEngine(n)
	// Kill rank 3 and all its replica holders: ranks 3 and 7 both become
	// unplannable; the error must name rank 3.
	dead := map[int]bool{3: true}
	for _, h := range e.Placement().Replicas(3) {
		dead[h] = true
	}
	for _, h := range e.Placement().Replicas(7) {
		dead[h] = true
	}
	dead[7] = true
	alive := func(r int) bool { return !dead[r] }
	want := ""
	for rank := 0; rank < n; rank++ {
		if _, err := e.planRank(rank, 100, alive); err != nil {
			want = err.Error()
			break
		}
	}
	if want == "" {
		t.Fatal("expected at least one unplannable rank")
	}
	for trial := 0; trial < 20; trial++ {
		_, err := e.PlanRecovery(100, alive)
		if err == nil || err.Error() != want {
			t.Fatalf("trial %d: err %v, want %q", trial, err, want)
		}
	}
}

func BenchmarkPlanRecovery(b *testing.B) {
	for _, n := range []int{64, 1024, 4096} {
		e, alive := benchEngine(n)
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.PlanRecovery(100, alive); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkConsistentVersion(b *testing.B) {
	for _, n := range []int{64, 1024} {
		e, alive := benchEngine(n)
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := e.ConsistentVersion(alive); !ok {
					b.Fatal("no consistent version")
				}
			}
		})
	}
}
