package ckpt

import (
	"testing"
	"testing/quick"

	"gemini/internal/placement"
)

const shardSize = 1000.0

func newEngine(t *testing.T, n, m int) *Engine {
	t.Helper()
	return MustNewEngine(placement.MustMixed(n, m), shardSize)
}

// checkpointAll runs a full checkpoint of the given iteration: every
// owner's shard lands committed on every machine in its replica set.
func checkpointAll(e *Engine, iteration int64) {
	p := e.Placement()
	for owner := 0; owner < p.N; owner++ {
		for _, holder := range p.Replicas(owner) {
			e.Begin(holder, owner, iteration)
			e.Receive(holder, owner, iteration, e.ShardBytes())
			e.Commit(holder, owner, iteration, 0)
		}
	}
}

func allAlive(int) bool { return true }

func TestCheckpointCommitAndConsistency(t *testing.T) {
	e := newEngine(t, 4, 2)
	checkpointAll(e, 100)
	v, ok := e.ConsistentVersion(allAlive)
	if !ok || v != 100 {
		t.Fatalf("consistent version %d/%v, want 100/true", v, ok)
	}
	checkpointAll(e, 101)
	v, ok = e.ConsistentVersion(allAlive)
	if !ok || v != 101 {
		t.Fatalf("consistent version %d/%v after second checkpoint, want 101", v, ok)
	}
}

func TestInProgressNeverVisible(t *testing.T) {
	e := newEngine(t, 4, 2)
	checkpointAll(e, 100)
	// Start iteration 101 everywhere but commit nowhere.
	p := e.Placement()
	for owner := 0; owner < p.N; owner++ {
		for _, holder := range p.Replicas(owner) {
			e.Begin(holder, owner, 101)
			e.Receive(holder, owner, 101, shardSize/2)
		}
	}
	v, ok := e.ConsistentVersion(allAlive)
	if !ok || v != 100 {
		t.Fatalf("half-written checkpoint leaked: version %d/%v, want 100", v, ok)
	}
}

func TestCommitRequiresAllBytes(t *testing.T) {
	e := newEngine(t, 4, 2)
	e.Begin(0, 0, 1)
	e.Receive(0, 0, 1, shardSize/2)
	defer func() {
		if recover() == nil {
			t.Fatal("incomplete commit did not panic")
		}
	}()
	e.Commit(0, 0, 1, 0)
}

func TestAbortDiscardsOnlyInProgress(t *testing.T) {
	e := newEngine(t, 4, 2)
	checkpointAll(e, 5)
	e.Begin(0, 0, 6)
	e.Receive(0, 0, 6, 10)
	e.Abort(0, 0, 6)
	sh, ok := e.Completed(0, 0)
	if !ok || sh.Iteration != 5 {
		t.Fatalf("completed shard %+v/%v, want iteration 5 intact", sh, ok)
	}
	// Abort of a non-matching iteration is a no-op.
	e.Begin(0, 0, 7)
	e.Abort(0, 0, 99)
	e.Receive(0, 0, 7, shardSize)
	e.Commit(0, 0, 7, 0)
}

func TestMisroutedShardPanics(t *testing.T) {
	e := newEngine(t, 4, 2) // groups {0,1}, {2,3}
	defer func() {
		if recover() == nil {
			t.Fatal("misrouted Begin did not panic")
		}
	}()
	e.Begin(2, 0, 1) // machine 2 does not hold rank 0's shard
}

func TestStaleBeginPanics(t *testing.T) {
	e := newEngine(t, 4, 2)
	checkpointAll(e, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("Begin at an old iteration did not panic")
		}
	}()
	e.Begin(0, 0, 10)
}

func TestOverReceivePanics(t *testing.T) {
	e := newEngine(t, 4, 2)
	e.Begin(0, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("over-receive did not panic")
		}
	}()
	e.Receive(0, 0, 1, shardSize*2)
}

func TestReceiveWithoutBeginPanics(t *testing.T) {
	e := newEngine(t, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Receive without Begin did not panic")
		}
	}()
	e.Receive(0, 0, 1, 10)
}

func TestWipeLosesShards(t *testing.T) {
	e := newEngine(t, 4, 2)
	checkpointAll(e, 100)
	e.Wipe(1)
	if _, ok := e.Completed(1, 0); ok {
		t.Fatal("wiped machine still holds shards")
	}
	// Rank 0's shard survives on machine 0 (its own local copy) so the
	// version remains consistent with machine 1 alive-but-empty.
	v, ok := e.ConsistentVersion(allAlive)
	if !ok || v != 100 {
		t.Fatalf("version %d/%v after single wipe, want 100", v, ok)
	}
	// Wiping the whole group {0,1} loses rank 0 and 1's shards entirely.
	e.Wipe(0)
	if _, ok := e.ConsistentVersion(allAlive); ok {
		t.Fatal("version still consistent after losing a whole group")
	}
}

func TestConsistencyRequiresSameIterationEverywhere(t *testing.T) {
	// §6.2 case 2: survivors at mixed iterations are useless.
	e := newEngine(t, 4, 2)
	checkpointAll(e, 100)
	// Advance only rank 0/1's group to 101.
	for _, owner := range []int{0, 1} {
		for _, holder := range e.Placement().Replicas(owner) {
			e.Begin(holder, owner, 101)
			e.Receive(holder, owner, 101, shardSize)
			e.Commit(holder, owner, 101, 0)
		}
	}
	v, ok := e.ConsistentVersion(allAlive)
	if !ok || v != 100 {
		t.Fatalf("version %d/%v with mixed iterations, want 100 (both groups hold 100)", v, ok)
	}
}

func TestConsistentVersionWithDeadMachines(t *testing.T) {
	e := newEngine(t, 4, 2)
	checkpointAll(e, 50)
	dead := map[int]bool{1: true}
	alive := func(r int) bool { return !dead[r] }
	e.Wipe(1)
	v, ok := e.ConsistentVersion(alive)
	if !ok || v != 50 {
		t.Fatalf("version %d/%v with one dead machine, want 50", v, ok)
	}
	// Kill the whole group.
	dead[0] = true
	e.Wipe(0)
	if _, ok := e.ConsistentVersion(alive); ok {
		t.Fatal("group loss should break CPU-memory consistency")
	}
}

func TestDoubleBufferHoldsTwoGenerationsUntilNextBegin(t *testing.T) {
	e := newEngine(t, 4, 2)
	checkpointAll(e, 1)
	checkpointAll(e, 2)
	// Between Commit(2) and Begin(3), both generations are resident.
	versions := e.CompletedVersions(0, 0)
	if len(versions) != 2 || versions[0].Iteration != 2 || versions[1].Iteration != 1 {
		t.Fatalf("resident versions %+v, want [2 1]", versions)
	}
	// Begin(3) reclaims the buffer holding generation 1.
	e.Begin(0, 0, 3)
	versions = e.CompletedVersions(0, 0)
	if len(versions) != 1 || versions[0].Iteration != 2 {
		t.Fatalf("after Begin(3) versions %+v, want [2]", versions)
	}
}

func TestConsistentVersionDuringStaggeredCommits(t *testing.T) {
	// The window the double buffer exists for: half the cluster has
	// committed v+1, half is still mid-transfer. A consistent version (v)
	// must still exist.
	e := newEngine(t, 4, 2)
	checkpointAll(e, 10)
	for owner := 0; owner < 4; owner++ {
		for _, holder := range e.Placement().Replicas(owner) {
			e.Begin(holder, owner, 11)
			e.Receive(holder, owner, 11, shardSize)
		}
	}
	// Only group {0,1} commits 11.
	for _, owner := range []int{0, 1} {
		for _, holder := range e.Placement().Replicas(owner) {
			e.Commit(holder, owner, 11, 0)
		}
	}
	v, ok := e.ConsistentVersion(allAlive)
	if !ok || v != 10 {
		t.Fatalf("staggered commit: version %d/%v, want 10", v, ok)
	}
	// The rest commits: 11 becomes consistent.
	for _, owner := range []int{2, 3} {
		for _, holder := range e.Placement().Replicas(owner) {
			e.Commit(holder, owner, 11, 0)
		}
	}
	v, ok = e.ConsistentVersion(allAlive)
	if !ok || v != 11 {
		t.Fatalf("after all commits: version %d/%v, want 11", v, ok)
	}
}

func TestPlanRecoverySoftwareFailure(t *testing.T) {
	// All machines alive with local shards: everyone recovers locally.
	e := newEngine(t, 4, 2)
	checkpointAll(e, 7)
	plan, err := e.PlanRecovery(7, allAlive)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 4 {
		t.Fatalf("plan has %d entries, want 4", len(plan))
	}
	for _, r := range plan {
		if r.Source != SourceLocal || r.Bytes != 0 {
			t.Fatalf("rank %d plan %+v, want local", r.Rank, r)
		}
	}
}

func TestPlanRecoveryHardwareCase1(t *testing.T) {
	// Machine 1 replaced: its slot is wiped, it fetches from its group
	// peer machine 0 (Fig. 6c).
	e := newEngine(t, 4, 2)
	checkpointAll(e, 7)
	e.Wipe(1)
	plan, err := e.PlanRecovery(7, allAlive)
	if err != nil {
		t.Fatal(err)
	}
	var r1 Retrieval
	for _, r := range plan {
		if r.Rank == 1 {
			r1 = r
		} else if r.Source != SourceLocal {
			t.Fatalf("rank %d should recover locally, got %+v", r.Rank, r)
		}
	}
	if r1.Source != SourceRemoteCPU || r1.Peer != 0 || r1.Bytes != shardSize {
		t.Fatalf("replaced machine plan %+v, want remote fetch from peer 0", r1)
	}
}

func TestPlanRecoveryFailsWhenNotConsistent(t *testing.T) {
	e := newEngine(t, 4, 2)
	checkpointAll(e, 7)
	e.Wipe(0)
	e.Wipe(1) // whole group gone
	if _, err := e.PlanRecovery(7, allAlive); err == nil {
		t.Fatal("recovery planned for an inconsistent version")
	}
}

func TestPersistentPlan(t *testing.T) {
	e := newEngine(t, 3, 2)
	plan := e.PersistentPlan()
	if len(plan) != 3 {
		t.Fatalf("plan has %d entries", len(plan))
	}
	for i, r := range plan {
		if r.Rank != i || r.Source != SourcePersistent || r.Bytes != shardSize {
			t.Fatalf("entry %d = %+v", i, r)
		}
	}
}

func TestCPUMemoryRequirement(t *testing.T) {
	e := newEngine(t, 4, 2)
	// Two buffers × m shards.
	if got := e.CPUMemoryRequiredPerMachine(); got != 2*2*shardSize {
		t.Fatalf("CPU requirement %v, want %v", got, 2*2*shardSize)
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(placement.MustMixed(4, 2), -1); err == nil {
		t.Fatal("negative shard size accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewEngine on bad args did not panic")
		}
	}()
	MustNewEngine(placement.MustMixed(4, 2), -5)
}

func TestSourceString(t *testing.T) {
	names := map[Source]string{
		SourceLocal: "local-cpu", SourceRemoteCPU: "remote-cpu",
		SourcePersistent: "persistent", Source(9): "Source(9)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

// Property: after checkpointing iterations 1..k and wiping a random set
// of machines, ConsistentVersion is k iff the placement survives that
// failure set, and any consistent version always yields a valid recovery
// plan whose remote fetches name alive holders.
func TestPropertyConsistencyMatchesPlacementSurvival(t *testing.T) {
	f := func(nRaw, mRaw uint8, failMask uint16) bool {
		n := int(nRaw%6) + 3
		m := 2 + int(mRaw%2)
		if m > n {
			m = n
		}
		p := placement.MustMixed(n, m)
		e := MustNewEngine(p, 100)
		for iter := int64(1); iter <= 3; iter++ {
			checkpointAll(e, iter)
		}
		failed := make(map[int]bool)
		for r := 0; r < n; r++ {
			if failMask&(1<<uint(r)) != 0 {
				failed[r] = true
				e.Wipe(r)
			}
		}
		alive := func(r int) bool { return !failed[r] }
		v, ok := e.ConsistentVersion(alive)
		if p.Survives(failed) != ok {
			return false
		}
		if !ok {
			return true
		}
		if v != 3 {
			return false
		}
		plan, err := e.PlanRecovery(v, alive)
		if err != nil || len(plan) != n {
			return false
		}
		for _, r := range plan {
			switch r.Source {
			case SourceLocal:
				if failed[r.Rank] {
					return false
				}
			case SourceRemoteCPU:
				if failed[r.Peer] || r.Peer == r.Rank {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Coverage is the health monitor's view of Theorem 1: covered tracks
// data survival (owners with a committed copy on an alive machine),
// minReplicas tracks redundancy capacity (alive holders per owner) — the
// two degrade independently, and the gauges must show both.
func TestCoverageReactsToFailures(t *testing.T) {
	e := newEngine(t, 4, 2) // groups {0,1}, {2,3}

	// Before any checkpoint: no data anywhere, full redundancy.
	covered, minReplicas := e.Coverage(allAlive)
	if covered != 0 || minReplicas != 2 {
		t.Fatalf("fresh engine: covered=%d minReplicas=%d, want 0/2", covered, minReplicas)
	}

	checkpointAll(e, 100)
	covered, minReplicas = e.Coverage(allAlive)
	if covered != 4 || minReplicas != 2 {
		t.Fatalf("after checkpoint: covered=%d minReplicas=%d, want 4/2", covered, minReplicas)
	}

	// One machine down: every shard still survives somewhere, but the
	// group that lost a member is one failure from data loss.
	oneDown := func(r int) bool { return r != 1 }
	covered, minReplicas = e.Coverage(oneDown)
	if covered != 4 || minReplicas != 1 {
		t.Fatalf("one down: covered=%d minReplicas=%d, want 4/1", covered, minReplicas)
	}

	// The whole group {0,1} down: ranks 0 and 1 lose their shards.
	groupDown := func(r int) bool { return r >= 2 }
	covered, minReplicas = e.Coverage(groupDown)
	if covered != 2 || minReplicas != 0 {
		t.Fatalf("group down: covered=%d minReplicas=%d, want 2/0", covered, minReplicas)
	}
}

func TestCoverageSeesOnlyCommittedData(t *testing.T) {
	e := newEngine(t, 4, 2)
	// In-progress bytes are not coverage.
	e.Begin(0, 0, 1)
	e.Receive(0, 0, 1, shardSize)
	if covered, _ := e.Coverage(allAlive); covered != 0 {
		t.Fatalf("uncommitted shard counted as coverage: covered=%d", covered)
	}
	e.Commit(0, 0, 1, 0)
	if covered, _ := e.Coverage(allAlive); covered != 1 {
		t.Fatalf("after commit: covered=%d, want 1", covered)
	}
	// A wiped holder no longer contributes data, even while alive.
	e.Wipe(0)
	if covered, _ := e.Coverage(allAlive); covered != 0 {
		t.Fatalf("after wipe: covered=%d, want 0", covered)
	}
}

// NewestCommitted backs the per-machine staleness gauge: it must track
// the newest surviving generation, skipping dead holders.
func TestNewestCommitted(t *testing.T) {
	e := newEngine(t, 4, 2)
	if _, ok := e.NewestCommitted(0, allAlive); ok {
		t.Fatal("fresh engine reported a committed generation")
	}
	checkpointAll(e, 100)
	if v, ok := e.NewestCommitted(0, allAlive); !ok || v != 100 {
		t.Fatalf("NewestCommitted = %d/%v, want 100/true", v, ok)
	}
	// Commit 101 only on holder 1; the owner-wide newest advances.
	e.Begin(1, 0, 101)
	e.Receive(1, 0, 101, shardSize)
	e.Commit(1, 0, 101, 0)
	if v, ok := e.NewestCommitted(0, allAlive); !ok || v != 101 {
		t.Fatalf("after partial 101: NewestCommitted = %d/%v, want 101/true", v, ok)
	}
	// With holder 1 dead the newest surviving generation is back to 100.
	oneDown := func(r int) bool { return r != 1 }
	if v, ok := e.NewestCommitted(0, oneDown); !ok || v != 100 {
		t.Fatalf("holder 1 dead: NewestCommitted = %d/%v, want 100/true", v, ok)
	}
	// With the whole replica group dead there is nothing left.
	groupDown := func(r int) bool { return r >= 2 }
	if _, ok := e.NewestCommitted(0, groupDown); ok {
		t.Fatal("NewestCommitted found data with every holder dead")
	}
}
