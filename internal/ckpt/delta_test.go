package ckpt

import "testing"

func TestDeltaCommitNeedsOnlyDeltaBytes(t *testing.T) {
	e := newEngine(t, 4, 2)
	checkpointAll(e, 1)
	delta := shardSize / 4
	e.BeginDelta(0, 0, 2, delta)
	e.Receive(0, 0, 2, delta)
	e.Commit(0, 0, 2, 0)
	sh, ok := e.Completed(0, 0)
	if !ok || sh.Iteration != 2 {
		t.Fatalf("delta commit landed as %+v/%v, want iteration 2", sh, ok)
	}
	if sh.Bytes != shardSize {
		t.Errorf("delta-committed shard reports %v bytes, want the full logical size %v", sh.Bytes, shardSize)
	}
}

func TestDeltaCommitStillRequiresItsBytes(t *testing.T) {
	e := newEngine(t, 4, 2)
	checkpointAll(e, 1)
	e.BeginDelta(0, 0, 2, shardSize/4)
	e.Receive(0, 0, 2, shardSize/8)
	defer func() {
		if recover() == nil {
			t.Fatal("half-received delta committed without panic")
		}
	}()
	e.Commit(0, 0, 2, 0)
}

func TestDeltaRequiresImmediatelyPreviousBase(t *testing.T) {
	e := newEngine(t, 4, 2)
	checkpointAll(e, 1)
	// Base is iteration 1; a delta to 3 skips a generation.
	defer func() {
		if recover() == nil {
			t.Fatal("delta on a stale base did not panic")
		}
	}()
	e.BeginDelta(0, 0, 3, shardSize/4)
}

func TestRefreshRestampsWithoutBytes(t *testing.T) {
	e := newEngine(t, 4, 2)
	checkpointAll(e, 1)
	moved := e.BytesReceived()
	e.Refresh(0, 0, 2)
	if e.BytesReceived() != moved {
		t.Errorf("refresh moved bytes: %v → %v", moved, e.BytesReceived())
	}
	sh, ok := e.Completed(0, 0)
	if !ok || sh.Iteration != 2 {
		t.Fatalf("refreshed shard %+v/%v, want iteration 2", sh, ok)
	}
	// The old stamp survives as the previous generation (double-buffer
	// overlap), so both versions stay recoverable.
	vs := e.CompletedVersions(0, 0)
	if len(vs) != 2 || vs[0].Iteration != 2 || vs[1].Iteration != 1 {
		t.Fatalf("generations after refresh = %v, want [2 1]", vs)
	}
}

func TestRefreshNeedsACommittedShard(t *testing.T) {
	e := newEngine(t, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("refresh of an empty slot did not panic")
		}
	}()
	e.Refresh(0, 0, 1)
}

func TestBytesReceivedAccumulates(t *testing.T) {
	e := newEngine(t, 4, 2)
	if e.BytesReceived() != 0 {
		t.Fatalf("fresh engine reports %v bytes", e.BytesReceived())
	}
	checkpointAll(e, 1)
	pairs := 0
	p := e.Placement()
	for owner := 0; owner < p.N; owner++ {
		pairs += len(p.Replicas(owner))
	}
	if want := float64(pairs) * shardSize; e.BytesReceived() != want {
		t.Fatalf("BytesReceived = %v, want %v", e.BytesReceived(), want)
	}
}
