// Package ckpt is GEMINI's checkpoint engine: it tracks which machine's
// CPU memory holds which checkpoint shards at which training iteration,
// enforces the double-buffer discipline (one buffer for the completed
// checkpoint, one for the in-progress one, §7.1) so a crash mid-write
// never corrupts the recoverable version, and answers the recovery
// queries — what is the newest globally consistent version, and from
// where should each machine fetch its shard (§3.1's hierarchy: local CPU
// memory, then remote CPU memory, then remote persistent storage).
package ckpt

import (
	"context"
	"fmt"
	"sort"

	"gemini/internal/parallel"
	"gemini/internal/placement"
)

// Shard identifies one machine's checkpoint shard at one iteration.
type Shard struct {
	Owner     int   // rank whose model states these are
	Iteration int64 // training iteration the shard captures
	Bytes     float64
	// Fingerprint is the content checksum (tensor.State.Fingerprint) when
	// payloads are simulated with real bytes; zero in pure-timing runs.
	Fingerprint uint32
}

// slot is the double buffer holding one owner's shards on one machine.
// The two physical buffers cycle through three logical roles: newest
// complete shard, previous complete shard, and in-progress shard. Between
// Commit(v+1) and Begin(v+2), both v and v+1 are complete and resident —
// that overlap is what guarantees a globally consistent version always
// exists while machines commit at slightly different instants within an
// iteration. Begin(v+2) reclaims the buffer holding v.
type slot struct {
	newest     *Shard // latest committed shard
	prev       *Shard // previously committed shard, until the next Begin
	inProgress *Shard
	received   float64 // bytes of inProgress received so far
	expect     float64 // bytes inProgress needs before Commit (shard or delta)
}

// machineStore is the checkpoint area of one machine's CPU memory.
type machineStore struct {
	slots map[int]*slot // keyed by owner rank
}

// Source says where a shard can be retrieved from during recovery.
type Source int

const (
	// SourceLocal means the machine's own CPU memory has the shard
	// (software failures recover this way, Fig. 6b).
	SourceLocal Source = iota
	// SourceRemoteCPU means a peer machine's CPU memory has the shard
	// (hardware failure case 1, Fig. 6c).
	SourceRemoteCPU
	// SourcePersistent means only the remote persistent store can supply
	// the shard (hardware failure case 2, Fig. 6a).
	SourcePersistent
)

func (s Source) String() string {
	switch s {
	case SourceLocal:
		return "local-cpu"
	case SourceRemoteCPU:
		return "remote-cpu"
	case SourcePersistent:
		return "persistent"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Retrieval is one machine's recovery instruction.
type Retrieval struct {
	Rank   int
	Source Source
	// Peer is the machine to fetch from when Source == SourceRemoteCPU.
	Peer int
	// Bytes to move (zero when the shard is already local).
	Bytes float64
}

// Engine tracks checkpoint shard placement and versions for a cluster.
type Engine struct {
	n         int
	placement *placement.Placement
	machines  []*machineStore
	shardSize float64
	traffic   float64 // cumulative bytes accepted by Receive
}

// NewEngine creates an engine for the given placement; shardBytes is the
// per-machine checkpoint shard size.
func NewEngine(p *placement.Placement, shardBytes float64) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if shardBytes < 0 {
		return nil, fmt.Errorf("ckpt: negative shard size %v", shardBytes)
	}
	e := &Engine{n: p.N, placement: p, machines: make([]*machineStore, p.N), shardSize: shardBytes}
	for i := range e.machines {
		e.machines[i] = &machineStore{slots: make(map[int]*slot)}
	}
	return e, nil
}

// MustNewEngine is NewEngine for known-good arguments.
func MustNewEngine(p *placement.Placement, shardBytes float64) *Engine {
	e, err := NewEngine(p, shardBytes)
	if err != nil {
		panic(err)
	}
	return e
}

// Placement returns the placement the engine operates under.
func (e *Engine) Placement() *placement.Placement { return e.placement }

// ShardBytes returns the per-machine shard size.
func (e *Engine) ShardBytes() float64 { return e.shardSize }

// CPUMemoryRequiredPerMachine returns the host memory each machine must
// reserve: two buffers (completed + in-progress) for each of the m shards
// it stores.
func (e *Engine) CPUMemoryRequiredPerMachine() float64 {
	return 2 * float64(e.placement.M) * e.shardSize
}

func (e *Engine) store(rank int) *machineStore {
	if rank < 0 || rank >= e.n {
		panic(fmt.Sprintf("ckpt: rank %d out of range [0,%d)", rank, e.n))
	}
	return e.machines[rank]
}

func (e *Engine) slotFor(holder, owner int) *slot {
	ms := e.store(holder)
	sl := ms.slots[owner]
	if sl == nil {
		sl = &slot{}
		ms.slots[owner] = sl
	}
	return sl
}

// checkPlacementPair panics unless holder is in owner's replica set —
// misrouted shards indicate an agent bug, not a runtime condition.
func (e *Engine) checkPlacementPair(holder, owner int) {
	for _, r := range e.placement.Replicas(owner) {
		if r == holder {
			return
		}
	}
	panic(fmt.Sprintf("ckpt: machine %d is not a replica holder for rank %d", holder, owner))
}

// Begin opens the in-progress buffer on holder for owner's shard at the
// given iteration, reclaiming the buffer that held the previous complete
// generation. An unfinished shard in the slot is discarded — only
// complete checkpoints ever become recoverable. Iterations must be
// monotonically increasing per slot.
func (e *Engine) Begin(holder, owner int, iteration int64) {
	e.checkPlacementPair(holder, owner)
	sl := e.slotFor(holder, owner)
	if sl.newest != nil && iteration <= sl.newest.Iteration {
		panic(fmt.Sprintf("ckpt: machine %d beginning iteration %d but already completed %d for rank %d",
			holder, iteration, sl.newest.Iteration, owner))
	}
	sl.prev = nil // its buffer now holds the new in-progress shard
	sl.inProgress = &Shard{Owner: owner, Iteration: iteration, Bytes: e.shardSize}
	sl.received = 0
	sl.expect = e.shardSize
}

// BeginDelta opens the in-progress buffer for a delta commit: only
// deltaBytes need arrive, applied on top of the holder's newest
// committed copy of the immediately previous iteration, and the result
// is a full logical shard at the new iteration. The base requirement is
// what makes delta chains recoverable — a delta on a stale base would
// commit a shard that never existed.
func (e *Engine) BeginDelta(holder, owner int, iteration int64, deltaBytes float64) {
	e.checkPlacementPair(holder, owner)
	sl := e.slotFor(holder, owner)
	if sl.newest == nil || sl.newest.Iteration != iteration-1 {
		base := int64(-1)
		if sl.newest != nil {
			base = sl.newest.Iteration
		}
		panic(fmt.Sprintf("ckpt: machine %d delta to iteration %d for rank %d needs base %d, has %d",
			holder, iteration, owner, iteration-1, base))
	}
	if deltaBytes < 0 || deltaBytes > e.shardSize*(1+1e-9) {
		panic(fmt.Sprintf("ckpt: delta size %v outside [0, shard %v]", deltaBytes, e.shardSize))
	}
	sl.prev = nil
	sl.inProgress = &Shard{Owner: owner, Iteration: iteration, Bytes: e.shardSize}
	sl.received = 0
	sl.expect = deltaBytes
}

// Refresh re-stamps the holder's newest committed copy at a new, later
// iteration without moving any bytes — the shard did not change, so the
// resident buffer IS the new version. The old stamp survives in the
// previous-generation role, preserving the double-buffer overlap.
func (e *Engine) Refresh(holder, owner int, iteration int64) {
	e.checkPlacementPair(holder, owner)
	sl := e.slotFor(holder, owner)
	if sl.newest == nil {
		panic(fmt.Sprintf("ckpt: machine %d refreshing rank %d with no committed shard", holder, owner))
	}
	if iteration <= sl.newest.Iteration {
		panic(fmt.Sprintf("ckpt: machine %d refreshing rank %d to iteration %d but already at %d",
			holder, owner, iteration, sl.newest.Iteration))
	}
	old := *sl.newest
	fresh := old
	fresh.Iteration = iteration
	sl.prev = &old
	sl.newest = &fresh
	sl.inProgress = nil
	sl.received = 0
	sl.expect = 0
}

// BytesReceived returns the cumulative replication traffic the engine
// has accepted through Receive — the bytes-moved side of a strategy's
// cost, read by the experiments harness.
func (e *Engine) BytesReceived() float64 { return e.traffic }

// Receive records bytes of the in-progress shard arriving at holder.
func (e *Engine) Receive(holder, owner int, iteration int64, bytes float64) {
	sl := e.slotFor(holder, owner)
	if sl.inProgress == nil || sl.inProgress.Iteration != iteration {
		panic(fmt.Sprintf("ckpt: machine %d receiving iteration %d for rank %d without matching Begin",
			holder, iteration, owner))
	}
	if bytes < 0 {
		panic(fmt.Sprintf("ckpt: negative receive %v", bytes))
	}
	sl.received += bytes
	e.traffic += bytes
	if sl.received > sl.expect*(1+1e-9) {
		panic(fmt.Sprintf("ckpt: machine %d over-received shard of rank %d: %v of %v bytes",
			holder, owner, sl.received, sl.expect))
	}
}

// Commit atomically promotes the in-progress shard to the completed
// buffer. It requires all bytes to have arrived. fingerprint may be zero
// in timing-only simulations.
func (e *Engine) Commit(holder, owner int, iteration int64, fingerprint uint32) {
	sl := e.slotFor(holder, owner)
	if sl.inProgress == nil || sl.inProgress.Iteration != iteration {
		panic(fmt.Sprintf("ckpt: machine %d committing iteration %d for rank %d without matching Begin",
			holder, iteration, owner))
	}
	if sl.received < sl.expect*(1-1e-9) {
		panic(fmt.Sprintf("ckpt: machine %d committing incomplete shard of rank %d: %v of %v bytes",
			holder, owner, sl.received, sl.expect))
	}
	sl.inProgress.Fingerprint = fingerprint
	sl.prev = sl.newest
	sl.newest = sl.inProgress
	sl.inProgress = nil
	sl.received = 0
}

// Abort discards the in-progress shard, leaving the completed buffer
// untouched — what happens when a sender dies mid-checkpoint.
func (e *Engine) Abort(holder, owner int, iteration int64) {
	sl := e.slotFor(holder, owner)
	if sl.inProgress != nil && sl.inProgress.Iteration == iteration {
		sl.inProgress = nil
		sl.received = 0
	}
}

// Completed returns the newest committed shard of owner held by holder.
func (e *Engine) Completed(holder, owner int) (Shard, bool) {
	sl := e.store(holder).slots[owner]
	if sl == nil || sl.newest == nil {
		return Shard{}, false
	}
	return *sl.newest, true
}

// CompletedVersions returns every committed generation of owner's shard
// resident on holder (at most two: newest and previous), newest first.
func (e *Engine) CompletedVersions(holder, owner int) []Shard {
	sl := e.store(holder).slots[owner]
	if sl == nil {
		return nil
	}
	var out []Shard
	if sl.newest != nil {
		out = append(out, *sl.newest)
	}
	if sl.prev != nil {
		out = append(out, *sl.prev)
	}
	return out
}

// hasVersion reports whether holder has a committed copy of owner's shard
// at exactly iteration v.
func (e *Engine) hasVersion(holder, owner int, v int64) bool {
	for _, sh := range e.CompletedVersions(holder, owner) {
		if sh.Iteration == v {
			return true
		}
	}
	return false
}

// RollbackTo drops every shard generation newer than the given iteration
// on all machines, plus any in-progress shards. Recovery calls this after
// choosing the rollback version so the whole cluster's checkpoint state
// is consistent with the resumed training position.
func (e *Engine) RollbackTo(iteration int64) {
	for _, ms := range e.machines {
		for _, sl := range ms.slots {
			if sl.newest != nil && sl.newest.Iteration > iteration {
				sl.newest = sl.prev
				sl.prev = nil
			}
			if sl.newest != nil && sl.newest.Iteration > iteration {
				sl.newest = nil
			}
			if sl.prev != nil && sl.prev.Iteration > iteration {
				sl.prev = nil
			}
			sl.inProgress = nil
			sl.received = 0
		}
	}
}

// Wipe erases everything a machine held — both buffers of every slot.
// Called when the machine hardware-fails or is replaced.
func (e *Engine) Wipe(rank int) {
	e.store(rank).slots = make(map[int]*slot)
}

// holderIterations returns every committed generation of owner's shard on
// alive holders, newest first.
func (e *Engine) holderIterations(owner int, alive func(int) bool) []Shard {
	var out []Shard
	for _, holder := range e.placement.Replicas(owner) {
		if alive != nil && !alive(holder) {
			continue
		}
		out = append(out, e.CompletedVersions(holder, owner)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Iteration > out[j].Iteration })
	return out
}

// ConsistentVersion returns the newest iteration v such that every rank's
// shard at exactly v is committed on at least one alive machine. ok is
// false when no common version exists — recovery must fall back to the
// remote persistent store (§6.2 case 2: partial survivors at mixed
// iterations are useless because all ranks must roll back together).
func (e *Engine) ConsistentVersion(alive func(int) bool) (int64, bool) {
	versions := make(map[int64]int) // iteration → ranks covered
	for owner := 0; owner < e.n; owner++ {
		seen := make(map[int64]bool)
		for _, sh := range e.holderIterations(owner, alive) {
			if !seen[sh.Iteration] {
				seen[sh.Iteration] = true
				versions[sh.Iteration]++
			}
		}
	}
	best := int64(-1)
	found := false
	for v, covered := range versions {
		if covered == e.n && (!found || v > best) {
			best, found = v, true
		}
	}
	return best, found
}

// NewestCommitted returns the newest committed generation of owner's
// shard resident on any alive holder — the basis of the health monitor's
// per-machine staleness gauge. ok is false when no alive holder has any
// committed generation (the shard is only recoverable from the remote
// persistent tier).
func (e *Engine) NewestCommitted(owner int, alive func(int) bool) (int64, bool) {
	best := int64(0)
	found := false
	for _, holder := range e.placement.Replicas(owner) {
		if alive != nil && !alive(holder) {
			continue
		}
		for _, sh := range e.CompletedVersions(holder, owner) {
			if !found || sh.Iteration > best {
				best, found = sh.Iteration, true
			}
		}
	}
	return best, found
}

// Coverage summarizes in-memory replica survival for the health monitor
// (the quantity Theorem 1 reasons about): covered counts owners with at
// least one committed shard generation on an alive holder, and
// minReplicas is the smallest number of alive holders any single owner
// has left — the cluster's distance from losing a shard entirely.
// Before any checkpoint commits, covered is 0 and minReplicas counts
// alive holders regardless (placement survival, not data survival, is
// what degrades first).
func (e *Engine) Coverage(alive func(int) bool) (covered, minReplicas int) {
	minReplicas = -1
	for owner := 0; owner < e.n; owner++ {
		holders := 0
		hasData := false
		for _, holder := range e.placement.Replicas(owner) {
			if alive != nil && !alive(holder) {
				continue
			}
			holders++
			if !hasData {
				sl := e.store(holder).slots[owner]
				hasData = sl != nil && sl.newest != nil
			}
		}
		if hasData {
			covered++
		}
		if minReplicas < 0 || holders < minReplicas {
			minReplicas = holders
		}
	}
	if minReplicas < 0 {
		minReplicas = 0
	}
	return covered, minReplicas
}

// planParallelRanks gates parallel recovery planning: below this many
// ranks the per-rank lookups are too cheap to amortize goroutine
// startup, so planning stays inline.
const planParallelRanks = 512

// PlanRecovery produces each rank's retrieval instruction for recovering
// at version v (as returned by ConsistentVersion). Machines whose local
// slot has the shard read locally; others fetch from the lowest-ranked
// alive peer holding it. An error means v is not actually consistent.
//
// Each rank's instruction depends only on the engine's committed state
// (read-only here), so large clusters plan ranks concurrently; results
// stay in rank order and the reported error is the lowest failing rank,
// identical to the serial plan.
func (e *Engine) PlanRecovery(v int64, alive func(int) bool) ([]Retrieval, error) {
	workers := 1
	if e.n >= planParallelRanks {
		workers = 0 // GOMAXPROCS
	}
	plan, err := parallel.Map(context.Background(), workers, e.n, func(rank int) (Retrieval, error) {
		return e.planRank(rank, v, alive)
	})
	if err != nil {
		return nil, err
	}
	return plan, nil
}

// planRank resolves one rank's retrieval source for version v.
func (e *Engine) planRank(rank int, v int64, alive func(int) bool) (Retrieval, error) {
	if (alive == nil || alive(rank)) && e.hasVersion(rank, rank, v) {
		return Retrieval{Rank: rank, Source: SourceLocal}, nil
	}
	for _, holder := range e.placement.Replicas(rank) {
		if holder == rank || (alive != nil && !alive(holder)) {
			continue
		}
		if e.hasVersion(holder, rank, v) {
			return Retrieval{Rank: rank, Source: SourceRemoteCPU, Peer: holder, Bytes: e.shardSize}, nil
		}
	}
	return Retrieval{}, fmt.Errorf("ckpt: version %d not consistent: rank %d has no alive holder", v, rank)
}

// PersistentPlan returns the all-from-persistent-storage recovery plan
// (what existing solutions always do, Fig. 6a).
func (e *Engine) PersistentPlan() []Retrieval {
	plan := make([]Retrieval, 0, e.n)
	for rank := 0; rank < e.n; rank++ {
		plan = append(plan, Retrieval{Rank: rank, Source: SourcePersistent, Bytes: e.shardSize})
	}
	return plan
}
