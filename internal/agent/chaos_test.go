package agent

import (
	"strings"
	"testing"

	"gemini/internal/ckpt"
	"gemini/internal/cloud"
	"gemini/internal/cluster"
	"gemini/internal/placement"
	"gemini/internal/simclock"
	"gemini/internal/trace"
)

// chaosOpts keeps chaos scenarios fast: short serialize/warmup, standby
// replacements, and a small retry budget.
func chaosOpts() Options {
	o := DefaultOptions(iterTime)
	o.SerializeTime = 10 * simclock.Second
	o.WarmupTime = 30 * simclock.Second
	o.RetryBase = 2 * simclock.Second
	o.RetryMax = 3
	return o
}

func newChaosFixture(t *testing.T, n, m int, opts Options, cloudCfg cloud.Config) *fixture {
	t.Helper()
	engine := simclock.NewEngine()
	clus := cluster.MustNew(n, cluster.MustInstance("p4d.24xlarge"), engine.Now)
	ck := ckpt.MustNewEngine(placement.MustMixed(n, m), 75e9)
	op := cloud.MustNewOperator(engine, cloudCfg)
	log := trace.NewLog(engine.Now)
	sys, err := NewSystem(engine, clus, ck, op, opts, log)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return &fixture{engine: engine, clus: clus, ck: ck, op: op, sys: sys, log: log}
}

// A hardware failure whose only surviving replica holder is partitioned
// away: the root retries with backoff, the partition heals mid-retry,
// and recovery completes via the peer path — no remote fallback.
func TestRetryBackoffThenPeerAfterHeal(t *testing.T) {
	f := newChaosFixture(t, 4, 2, chaosOpts(), cloud.Config{Standby: 2, StandbyActivation: 10 * simclock.Second})
	f.sys.Start()
	at := simclock.Time(3*iterTime + 10)
	f.engine.At(at, func() {
		f.sys.StartPartition(3)
		f.sys.InjectFailure(2, cluster.HardwareFailed)
	})
	// Heal ~40s later: after detection (10–20s) + serialize (10s) +
	// standby replacement (10s) + a retry or two, but before the retry
	// budget (2+4+8s past replacement) runs out.
	f.engine.At(at.Add(40*simclock.Second), func() { f.sys.HealPartition() })
	f.engine.Run(simclock.Time(20 * iterTime))

	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", f.sys.Recoveries())
	}
	retries := f.log.Filter("retry-backoff")
	if len(retries) == 0 || len(retries) > 3 {
		t.Fatalf("%d retry-backoff events, want 1..3", len(retries))
	}
	if evs := f.log.Filter("fallback-remote"); len(evs) != 0 {
		t.Fatal("fell back to remote despite the heal")
	}
	ret, ok := f.log.Last("retrieved")
	if !ok || !strings.Contains(ret.Detail, "from peer") {
		t.Fatalf("retrieval %+v, want peer source", ret)
	}
	if evs := f.log.Filter("partition-heal"); len(evs) != 1 {
		t.Fatalf("%d partition-heal events, want 1", len(evs))
	}
	// Everyone is back: training advances and the healed rank is healthy.
	if !f.sys.Training() || !f.clus.Machine(3).Healthy() {
		t.Fatal("cluster did not fully rejoin after heal")
	}
}

// The partition never heals in time: retries exhaust and the root falls
// back to remote persistent storage.
func TestRetryExhaustionFallsBackToRemote(t *testing.T) {
	f := newChaosFixture(t, 4, 2, chaosOpts(), cloud.Config{Standby: 2, StandbyActivation: 10 * simclock.Second})
	f.sys.Start()
	f.sys.SetRemoteEvery(2)
	at := simclock.Time(3*iterTime + 10)
	f.engine.At(at, func() {
		f.sys.StartPartition(3)
		f.sys.InjectFailure(2, cluster.HardwareFailed)
	})
	// Heal during the long remote retrieval so rank 3 rejoins cleanly.
	f.engine.At(at.Add(3*simclock.Minute), func() { f.sys.HealPartition() })
	f.engine.Run(simclock.Time(30 * iterTime))

	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", f.sys.Recoveries())
	}
	if got := len(f.log.Filter("retry-backoff")); got != 3 {
		t.Fatalf("%d retry-backoff events, want RetryMax=3", got)
	}
	fb := f.log.Filter("fallback-remote")
	if len(fb) != 1 {
		t.Fatalf("%d fallback-remote events, want 1", len(fb))
	}
	ret, ok := f.log.Last("retrieved")
	if !ok || !strings.Contains(ret.Detail, "from remote") {
		t.Fatalf("retrieval %+v, want remote source", ret)
	}
	// Rolled back to the last remote checkpoint (multiple of 2).
	rec, _ := f.log.Last("recovery-complete")
	if !strings.Contains(rec.Detail, "iteration 2") {
		t.Fatalf("recovery detail %q, want resume at remote iteration 2", rec.Detail)
	}
}

// Partitioning the root: its lease expires, the leader key vanishes, and
// a reachable worker takes over.
func TestRootPartitionFailsOver(t *testing.T) {
	f := newChaosFixture(t, 4, 2, chaosOpts(), cloud.DefaultConfig())
	f.sys.Start()
	at := simclock.Time(2*iterTime + 10)
	f.engine.At(at, func() { f.sys.StartPartition(0) })
	f.engine.At(at.Add(5*simclock.Minute), func() { f.sys.HealPartition() })
	f.engine.Run(simclock.Time(20 * iterTime))

	fo, ok := f.log.Last("failover")
	if !ok {
		t.Fatal("no failover event after root partition")
	}
	if !strings.Contains(fo.Detail, "0 → 1") {
		t.Fatalf("failover detail %q, want root moving 0 → 1", fo.Detail)
	}
	if f.sys.RootRank() != 1 {
		t.Fatalf("root rank %d after failover, want 1", f.sys.RootRank())
	}
	if !f.sys.Training() {
		t.Fatal("training stalled after root failover")
	}
}

// A partition shorter than the root's lease TTL must be invisible: the
// old root's lease outlives the partition, no failover happens, and no
// spurious recovery is declared — the false-positive guard.
func TestRootLeaseOutlivesPartition(t *testing.T) {
	opts := chaosOpts()
	opts.LeaseTTL = 60 * simclock.Second
	f := newChaosFixture(t, 4, 2, opts, cloud.DefaultConfig())
	f.sys.Start()
	at := simclock.Time(iterTime + 10)
	f.engine.At(at, func() { f.sys.StartPartition(0) })
	f.engine.At(at.Add(30*simclock.Second), func() { f.sys.HealPartition() })
	f.engine.Run(simclock.Time(10 * iterTime))

	if evs := f.log.Filter("failover"); len(evs) != 0 {
		t.Fatalf("%d failovers for a sub-TTL partition, want 0", len(evs))
	}
	if evs := f.log.Filter("failure-detected"); len(evs) != 0 {
		t.Fatalf("%d detections for a sub-TTL partition, want 0", len(evs))
	}
	if f.sys.Recoveries() != 0 {
		t.Fatalf("%d recoveries, want 0", f.sys.Recoveries())
	}
	if f.sys.RootRank() != 0 {
		t.Fatalf("root moved to %d, want 0 to keep the lease", f.sys.RootRank())
	}
	if got := f.sys.Iteration(); got != 10 {
		t.Fatalf("iteration %d, want 10 (training never paused)", got)
	}
}

// A store outage longer than every lease TTL: leases freeze rather than
// expire, so the restored control plane sees a healthy cluster and
// declares nothing failed.
func TestKVOutageFreezesDetection(t *testing.T) {
	f := newChaosFixture(t, 4, 2, chaosOpts(), cloud.DefaultConfig())
	f.sys.Start()
	at := simclock.Time(iterTime + 10)
	f.engine.At(at, func() { f.sys.SetKVAvailable(false) })
	f.engine.At(at.Add(2*simclock.Minute), func() { f.sys.SetKVAvailable(true) })
	f.engine.Run(simclock.Time(10 * iterTime))

	if evs := f.log.Filter("failure-detected"); len(evs) != 0 {
		t.Fatalf("%d detections during/after the outage, want 0", len(evs))
	}
	if f.sys.Recoveries() != 0 {
		t.Fatalf("%d recoveries, want 0", f.sys.Recoveries())
	}
	if got := f.sys.Iteration(); got != 10 {
		t.Fatalf("iteration %d, want 10 (training unaffected by control-plane outage)", got)
	}
	outage := f.log.Filter("kv-outage")
	restore := f.log.Filter("kv-restore")
	if len(outage) != 1 || len(restore) != 1 {
		t.Fatalf("outage/restore events %d/%d, want 1/1", len(outage), len(restore))
	}
}

// A failure during a store outage is detected only after the store
// returns, then recovered normally (classification falls back to the
// cluster state because the detector's report was lost).
func TestFailureDuringKVOutageRecoversAfterRestore(t *testing.T) {
	f := newChaosFixture(t, 4, 2, chaosOpts(), cloud.Config{Standby: 2, StandbyActivation: 10 * simclock.Second})
	f.sys.Start()
	at := simclock.Time(iterTime + 10)
	f.engine.At(at, func() { f.sys.SetKVAvailable(false) })
	f.engine.At(at.Add(30*simclock.Second), func() {
		f.sys.InjectFailure(2, cluster.HardwareFailed)
	})
	f.engine.At(at.Add(2*simclock.Minute), func() { f.sys.SetKVAvailable(true) })
	f.engine.Run(simclock.Time(20 * iterTime))

	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", f.sys.Recoveries())
	}
	det, ok := f.log.Last("failure-detected")
	if !ok {
		t.Fatal("failure never detected")
	}
	if det.At < at.Add(2*simclock.Minute) {
		t.Fatalf("detection at %v, before the store was restored at %v", det.At, at.Add(2*simclock.Minute))
	}
	// Hardware classification survived the lost report: a replacement ran.
	if evs := f.log.Filter("replaced"); len(evs) != 1 {
		t.Fatalf("%d replacements, want 1 (classification fell back to cluster state)", len(evs))
	}
}

// A straggling peer slows peer retrieval proportionally.
func TestStragglerSlowsPeerRetrieval(t *testing.T) {
	recoveryTime := func(factor float64) simclock.Duration {
		f := newChaosFixture(t, 4, 2, chaosOpts(), cloud.Config{Standby: 2, StandbyActivation: 10 * simclock.Second})
		f.sys.Start()
		if factor < 1 {
			f.sys.SetStraggler(0, factor)
		}
		f.engine.At(simclock.Time(2*iterTime+10), func() {
			f.sys.InjectFailure(1, cluster.HardwareFailed)
		})
		f.engine.Run(simclock.Time(20 * iterTime))
		if f.sys.Recoveries() != 1 {
			t.Fatalf("%d recoveries, want 1", f.sys.Recoveries())
		}
		ret, ok := f.log.Last("retrieved")
		if !ok || !strings.Contains(ret.Detail, "from peer") {
			t.Fatalf("retrieval %+v, want peer source", ret)
		}
		det, _ := f.log.Last("failure-detected")
		rec, _ := f.log.Last("recovery-complete")
		return rec.At.Sub(det.At)
	}
	full := recoveryTime(1)
	slow := recoveryTime(0.5)
	// Shard is 75 GB over 50 GB/s: 1.5 s at full speed, 3 s at half.
	extra := slow - full
	if extra < simclock.Duration(1.0) || extra > simclock.Duration(2.0) {
		t.Fatalf("straggler added %v to recovery, want ≈1.5s", extra)
	}
}

// Mixed software + hardware failure: the software-failed machine must be
// restarted even though a hardware replacement is in flight (regression
// test: it used to stay down forever).
func TestMixedSoftwareHardwareFailure(t *testing.T) {
	f := newChaosFixture(t, 6, 2, chaosOpts(), cloud.Config{Standby: 2, StandbyActivation: 10 * simclock.Second})
	f.sys.Start()
	f.engine.At(simclock.Time(2*iterTime+10), func() {
		f.sys.InjectFailure(1, cluster.SoftwareFailed)
		f.sys.InjectFailure(2, cluster.HardwareFailed)
	})
	f.engine.Run(simclock.Time(20 * iterTime))

	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", f.sys.Recoveries())
	}
	for rank := 0; rank < 6; rank++ {
		if !f.clus.Machine(rank).Healthy() {
			t.Fatalf("rank %d is %v after recovery", rank, f.clus.Machine(rank).State())
		}
	}
	// Both failed machines checkpoint again: training reaches a new
	// consistent version including ranks 1 and 2.
	v, ok := f.ck.ConsistentVersion(allHealthy(f))
	if !ok || v <= 2 {
		t.Fatalf("consistent version %d/%v after mixed recovery, want > 2", v, ok)
	}
}

// Correlated failures of a whole replica group land in one detection and
// recover from remote in a single pass.
func TestCorrelatedGroupFailure(t *testing.T) {
	f := newChaosFixture(t, 6, 2, chaosOpts(), cloud.Config{Standby: 2, StandbyActivation: 10 * simclock.Second})
	f.sys.Start()
	f.sys.SetRemoteEvery(2)
	f.engine.At(simclock.Time(3*iterTime+10), func() {
		f.sys.InjectCorrelated(cluster.HardwareFailed, 2, 3)
	})
	f.engine.Run(simclock.Time(30 * iterTime))

	if evs := f.log.Filter("correlated-failure"); len(evs) != 1 {
		t.Fatalf("%d correlated-failure events, want 1", len(evs))
	}
	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", f.sys.Recoveries())
	}
	ret, _ := f.log.Last("retrieved")
	if !strings.Contains(ret.Detail, "from remote") {
		t.Fatalf("retrieval %q, want remote (whole group lost)", ret.Detail)
	}
	// No retries: the group's data is gone, waiting cannot bring it back.
	if evs := f.log.Filter("retry-backoff"); len(evs) != 0 {
		t.Fatalf("%d pointless retries for an unrecoverable group", len(evs))
	}
}

// Two hardware replacements must be requested in deterministic (rank)
// order so the operator's seeded random delays reproduce run to run.
func TestReplacementOrderDeterministic(t *testing.T) {
	run := func() []string {
		f := newChaosFixture(t, 6, 3, chaosOpts(), cloud.DefaultConfig())
		f.sys.Start()
		f.engine.At(simclock.Time(2*iterTime+10), func() {
			f.sys.InjectCorrelated(cluster.HardwareFailed, 1, 4)
		})
		f.engine.Run(simclock.Time(40 * iterTime))
		var out []string
		for _, ev := range f.log.Filter("replaced") {
			out = append(out, ev.Detail)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("replacement counts %d/%d, want 2", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replacement %d differs between runs: %q vs %q", i, a[i], b[i])
		}
	}
}

// Lease jitter must not break steady-state health checking.
func TestLeaseJitterHarmless(t *testing.T) {
	f := newChaosFixture(t, 4, 2, chaosOpts(), cloud.DefaultConfig())
	f.sys.Start()
	f.sys.SetLeaseJitter(3 * simclock.Second)
	f.engine.Run(simclock.Time(10 * iterTime))
	if f.sys.Recoveries() != 0 {
		t.Fatalf("%d recoveries under jitter alone, want 0", f.sys.Recoveries())
	}
	if got := f.sys.Iteration(); got != 10 {
		t.Fatalf("iteration %d, want 10", got)
	}
}
