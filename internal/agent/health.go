package agent

// Run health monitor: the control plane's self-observation layer. It
// tracks the quantities the paper reasons about — replica coverage
// (Theorem 1), checkpoint staleness against both storage tiers, and the
// Eq. 1 wasted-time breakdown per failure (T_lost + T_recovery) — as
// metrics gauges/histograms and as Perfetto counter samples. Like
// tracing, it is a pure observer: it reads simulation state and never
// schedules events, so a monitored run replays bit-identically.

import (
	"gemini/internal/metrics"
	"gemini/internal/simclock"
	"gemini/internal/strategy"
	"gemini/internal/trace"
)

// WastedEvent is one failure's Eq. 1 accounting: the wall-clock window
// from detection to resumption (TRecovery) plus the recomputation debt
// of rolling back to the recovered version (TLost).
type WastedEvent struct {
	// Detected is when the root agent began recovery; Resumed is when
	// training restarted.
	Detected, Resumed simclock.Time
	// Ranks are the machines the root declared failed.
	Ranks []int
	// Source is where the checkpoint came from: local, peer, or remote.
	Source string
	// Version is the iteration training resumed from.
	Version int64
	// LostIterations is how many committed iterations the rollback
	// discarded (Eq. 1's lost progress).
	LostIterations int64
	// TLost is the recomputation cost of those iterations; TRecovery is
	// the detection-to-resumption downtime.
	TLost, TRecovery simclock.Duration
}

// Wasted returns the event's total Eq. 1 wasted time.
func (ev WastedEvent) Wasted() simclock.Duration { return ev.TLost + ev.TRecovery }

// healthMonitor holds the control plane's registered instruments.
type healthMonitor struct {
	iteration   *metrics.Gauge
	coverage    *metrics.Gauge
	minReplicas *metrics.Gauge
	staleLocal  *metrics.Gauge
	staleRemote *metrics.Gauge
	recoveries  *metrics.CounterVar
	wasted      *metrics.Histogram
	lost        *metrics.Histogram
	downtime    *metrics.Histogram
	// Strategy observability: switches counts adaptive policy changes;
	// active encodes the policy in force as its index in the sorted
	// registry names.
	stratSwitches *metrics.CounterVar
	stratActive   *metrics.Gauge
}

// SetMetrics attaches a health monitor publishing into reg under the
// health.* namespace. Call before Start; a nil registry leaves
// monitoring disabled and free.
func (s *System) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s.health = &healthMonitor{
		iteration:   reg.Gauge("health.iteration"),
		coverage:    reg.Gauge("health.replica_coverage"),
		minReplicas: reg.Gauge("health.min_replicas"),
		staleLocal:  reg.Gauge("health.ckpt_staleness_local"),
		staleRemote: reg.Gauge("health.ckpt_staleness_remote"),
		recoveries:  reg.Counter("health.recoveries"),
		wasted:      reg.Histogram("health.wasted_seconds"),
		lost:        reg.Histogram("health.lost_seconds"),
		downtime:    reg.Histogram("health.recovery_seconds"),

		stratSwitches: reg.Counter("strategy.switches"),
		stratActive:   reg.Gauge("strategy.active"),
	}
	s.observeHealth()
}

// WastedEvents returns the per-failure Eq. 1 records in completion
// order. Recorded whether or not a metrics registry is attached.
func (s *System) WastedEvents() []WastedEvent { return s.wastedEvents }

// observeHealth refreshes the coverage and staleness gauges from the
// checkpoint engine's placement state. Called at every gauge-moving
// control-plane transition: iteration completion, failure injection,
// recovery completion. Reads state only — never schedules events.
func (s *System) observeHealth() {
	if s.health == nil && !s.rootTrack.Enabled() {
		return
	}
	alive := func(rank int) bool { return s.cluster.Machine(rank).Healthy() }
	covered, minReplicas := s.ckpt.Coverage(alive)
	coverage := float64(covered) / float64(s.placement.N)

	// Local staleness: the worst owner's distance from its newest
	// surviving in-memory generation; an owner with nothing surviving is
	// as stale as the run is long.
	var staleLocal int64
	for owner := 0; owner < s.placement.N; owner++ {
		stale := s.iteration
		if v, ok := s.ckpt.NewestCommitted(owner, alive); ok {
			stale = s.iteration - v
		}
		if stale < 0 {
			stale = 0
		}
		if stale > staleLocal {
			staleLocal = stale
		}
	}
	staleRemote := s.iteration - s.lastRemoteIteration()
	if staleRemote < 0 {
		staleRemote = 0
	}

	if h := s.health; h != nil {
		h.iteration.Set(float64(s.iteration))
		h.coverage.Set(coverage)
		h.minReplicas.Set(float64(minReplicas))
		h.staleLocal.Set(float64(staleLocal))
		h.staleRemote.Set(float64(staleRemote))
		h.stratActive.Set(float64(strategy.Index(s.strategy.Active())))
	}
	if s.rootTrack.Enabled() {
		s.rootTrack.Sample("replica_coverage", coverage)
		s.rootTrack.Sample("min_replicas", float64(minReplicas))
		s.rootTrack.Sample("ckpt_staleness_local", float64(staleLocal))
	}
}

// recordRecovery appends the failure's WastedEvent and feeds the wasted-
// time histograms. Called once per completed recovery, just before
// training resumes.
func (s *System) recordRecovery(failed []int, source string, version, lostIters int64) {
	now := s.engine.Now()
	ev := WastedEvent{
		Detected:       s.recoveryStart,
		Resumed:        now,
		Ranks:          append([]int(nil), failed...),
		Source:         source,
		Version:        version,
		LostIterations: lostIters,
		TLost:          simclock.Duration(lostIters) * s.opts.IterationTime,
		TRecovery:      now.Sub(s.recoveryStart),
	}
	s.wastedEvents = append(s.wastedEvents, ev)
	if h := s.health; h != nil {
		h.recoveries.Inc()
		h.wasted.Observe(ev.Wasted().Seconds())
		h.lost.Observe(ev.TLost.Seconds())
		h.downtime.Observe(ev.TRecovery.Seconds())
	}
	if s.rootTrack.Enabled() {
		s.rootTrack.Sample("wasted_seconds", ev.Wasted().Seconds())
		s.rootTrack.InstantArgs(trace.CatAgent, "wasted-time",
			"source="+source+" t_lost="+ev.TLost.String()+" t_recovery="+ev.TRecovery.String())
	}
}
