// Package agent implements GEMINI's failure recovery module (§3.2, §6):
// per-machine worker agents that heartbeat into the distributed key-value
// store under leases, a root agent that polls health and orchestrates
// recovery, lease-based root failover, and the three recovery paths —
// software restart from local CPU memory, hardware replacement with peer
// retrieval, and the remote-persistent-storage fallback when a whole
// replica group is lost.
package agent

import (
	"fmt"
	"strconv"
	"strings"

	"gemini/internal/ckpt"
	"gemini/internal/cloud"
	"gemini/internal/cluster"
	"gemini/internal/kvstore"
	"gemini/internal/placement"
	"gemini/internal/simclock"
	"gemini/internal/statemgr"
	"gemini/internal/strategy"
	"gemini/internal/trace"
)

// Store key layout.
const (
	hbPrefix      = "gemini/hb/"       // hb/<rank> = incarnation, under the worker's lease
	failurePrefix = "gemini/failures/" // failures/<rank> = kind, posted by the detector
	leaderKey     = "gemini/root"      // election key
	iterationKey  = "gemini/iteration" // committed training iteration
)

// Options configures the recovery system.
type Options struct {
	// HeartbeatInterval is how often workers renew their lease.
	HeartbeatInterval simclock.Duration
	// LeaseTTL is the heartbeat lease TTL; a silent machine is declared
	// failed once it expires (the paper's 15 s detection).
	LeaseTTL simclock.Duration
	// CheckInterval is the root agent's health-poll period.
	CheckInterval simclock.Duration
	// IterationTime advances the training loop.
	IterationTime simclock.Duration
	// RetrievalPeerBandwidth is the inter-machine bandwidth for peer
	// checkpoint retrieval.
	RetrievalPeerBandwidth float64
	// RetrievalRemoteBandwidth is the remote persistent store bandwidth
	// (aggregate) for fallback retrieval.
	RetrievalRemoteBandwidth float64
	// SerializeTime stalls all machines to torch.save the in-memory
	// checkpoints before recovery (§7.3: 162 s).
	SerializeTime simclock.Duration
	// WarmupTime is the framework restart time before training resumes.
	WarmupTime simclock.Duration
	// RetryBase is the first retry delay when no consistent checkpoint
	// version is reachable (e.g. the peers holding it are partitioned
	// away); subsequent retries back off exponentially.
	RetryBase simclock.Duration
	// RetryMax bounds the retry attempts before the root agent gives up
	// on peer retrieval and falls back to remote persistent storage.
	RetryMax int
}

// DefaultOptions mirrors the paper's measured values.
func DefaultOptions(iterTime simclock.Duration) Options {
	return Options{
		HeartbeatInterval:        5 * simclock.Second,
		LeaseTTL:                 15 * simclock.Second,
		CheckInterval:            5 * simclock.Second,
		IterationTime:            iterTime,
		RetrievalPeerBandwidth:   400e9 / 8,
		RetrievalRemoteBandwidth: 20e9 / 8,
		SerializeTime:            162 * simclock.Second,
		WarmupTime:               4 * simclock.Minute,
		RetryBase:                2 * simclock.Second,
		RetryMax:                 4,
	}
}

func (o Options) validate() error {
	switch {
	case o.HeartbeatInterval <= 0 || o.LeaseTTL <= 0 || o.CheckInterval <= 0:
		return fmt.Errorf("agent: heartbeat/lease/check intervals must be positive")
	case o.LeaseTTL <= o.HeartbeatInterval:
		return fmt.Errorf("agent: lease TTL %v must exceed heartbeat interval %v", o.LeaseTTL, o.HeartbeatInterval)
	case o.IterationTime <= 0:
		return fmt.Errorf("agent: iteration time must be positive")
	case o.RetrievalPeerBandwidth <= 0 || o.RetrievalRemoteBandwidth <= 0:
		return fmt.Errorf("agent: retrieval bandwidths must be positive")
	case o.SerializeTime < 0 || o.WarmupTime < 0:
		return fmt.Errorf("agent: negative recovery costs")
	case o.RetryBase < 0 || o.RetryMax < 0:
		return fmt.Errorf("agent: negative retry parameters")
	}
	return nil
}

// worker is one machine's agent.
type worker struct {
	rank        int
	incarnation int
	lease       kvstore.LeaseID
	ticker      *simclock.Ticker
	alive       bool
}

// System wires the whole failure-recovery control plane together on one
// simulation engine.
type System struct {
	engine    *simclock.Engine
	store     *kvstore.Store
	cluster   *cluster.Cluster
	ckpt      *ckpt.Engine
	operator  *cloud.Operator
	placement *placement.Placement
	opts      Options
	log       *trace.Log

	workers  []*worker
	election *kvstore.Election
	rootRank int
	rootTick *simclock.Ticker

	iteration        int64
	remoteEveryIters int64
	// lastRemoteCommitted is the newest iteration actually written to the
	// remote persistent tier — recorded at commit time, so recovery never
	// derives it from the current cadence (which SetRemoteEvery may have
	// changed since the last commit).
	lastRemoteCommitted int64
	training            bool
	recovering          bool
	iterEv              simclock.EventID
	data                *statemgr.Manager // optional byte-level data plane

	// strategy owns checkpoint placement/cadence and recovery-source
	// policy; the system keeps the mechanism (leases, detection,
	// scheduling, rollback). Defaults to the gemini strategy.
	strategy strategy.Strategy
	// retrievedBytes/remoteBytes account recovery and remote-tier
	// traffic; replication traffic lives in the ckpt engine.
	retrievedBytes float64
	remoteBytes    float64

	recoveries int
	sweepEv    simclock.EventID

	// Health monitor (nil = disabled): coverage/staleness gauges plus the
	// per-failure Eq. 1 wasted-time ledger. recoveryStart anchors the
	// TRecovery measurement of the recovery in flight.
	health        *healthMonitor
	wastedEvents  []WastedEvent
	recoveryStart simclock.Time

	// Structured tracing (nil = disabled): recovery phases and iterations
	// on rootTrack, injections on chaosTrack, elections on kvTrack.
	rootTrack  *trace.Track
	chaosTrack *trace.Track
	kvTrack    *trace.Track

	// Chaos state: ranks cut off from the network (heartbeats and peer
	// retrieval both fail) and per-rank bandwidth factors for stragglers.
	partitioned map[int]bool
	stragglers  map[int]float64
}

// NewSystem builds the control plane for an n-machine cluster.
func NewSystem(engine *simclock.Engine, cl *cluster.Cluster, ck *ckpt.Engine,
	op *cloud.Operator, opts Options, log *trace.Log) (*System, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if cl.Size() != ck.Placement().N {
		return nil, fmt.Errorf("agent: cluster size %d != placement size %d", cl.Size(), ck.Placement().N)
	}
	if log == nil {
		log = trace.NewLog(engine.Now)
	}
	s := &System{
		engine:      engine,
		store:       kvstore.New(engine.Now),
		cluster:     cl,
		ckpt:        ck,
		operator:    op,
		placement:   ck.Placement(),
		opts:        opts,
		log:         log,
		rootRank:    -1,
		partitioned: make(map[int]bool),
		stragglers:  make(map[int]float64),
	}
	el, err := kvstore.NewElection(s.store, leaderKey)
	if err != nil {
		return nil, err
	}
	s.election = el
	s.strategy = strategy.NewGemini()
	s.bindStrategy()
	return s, nil
}

// SetStrategy installs a checkpoint strategy (a fresh, unbound instance
// from the strategy registry). Call before Start; the default is the
// paper's gemini scheme.
func (s *System) SetStrategy(st strategy.Strategy) {
	if st == nil {
		panic("agent: nil strategy")
	}
	if s.data != nil && st.Name() != "gemini" {
		panic(fmt.Sprintf("agent: the byte-level data plane implements gemini semantics only, not %q", st.Name()))
	}
	s.strategy = st
	s.bindStrategy()
}

// Strategy returns the installed checkpoint strategy.
func (s *System) Strategy() strategy.Strategy { return s.strategy }

// bindStrategy attaches the system's control surface to the strategy.
func (s *System) bindStrategy() {
	s.strategy.Bind(strategy.Env{
		Ckpt:          s.ckpt,
		Placement:     s.placement,
		IterationTime: s.opts.IterationTime,
		Now:           s.engine.Now,
		RemoteEvery:   s.remoteEvery,
		Emit:          s.emitStrategyEvent,
	})
}

// emitStrategyEvent lands a strategy-level event (adaptive switches) in
// the run log, the trace, and the metrics registry.
func (s *System) emitStrategyEvent(event, detail string) {
	s.log.Add("strategy", event, "%s", detail)
	if s.rootTrack.Enabled() {
		s.rootTrack.InstantArgs(trace.CatAgent, event, detail)
	}
	if h := s.health; h != nil && event == "strategy-switch" {
		h.stratSwitches.Inc()
	}
}

// Log returns the system's event log.
func (s *System) Log() *trace.Log { return s.log }

// SetTracer attaches a structured tracer: recovery phases (§6.2 steps
// 1–5) and control-plane iterations land on a "control-plane/root-agent"
// track, chaos injections and kvstore elections on their own tracks.
// Call before Start; a nil tracer leaves tracing disabled and free.
func (s *System) SetTracer(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	tr.SetNow(s.engine.Now)
	s.rootTrack = tr.Track("control-plane", "root-agent")
	s.chaosTrack = tr.Track("control-plane", "chaos")
	s.kvTrack = tr.Track("control-plane", "kvstore")
}

// SetDataPlane attaches a byte-level checkpoint data plane: every
// iteration moves real shard payloads, every recovery restores and
// fingerprint-verifies them. The manager must share the system's
// placement and shard size. Call before Start.
func (s *System) SetDataPlane(mgr *statemgr.Manager) {
	if mgr.Placement().N != s.placement.N || mgr.Placement().M != s.placement.M {
		panic("agent: data plane placement does not match the system's")
	}
	if s.strategy.Name() != "gemini" {
		panic(fmt.Sprintf("agent: the byte-level data plane implements gemini semantics only, not %q", s.strategy.Name()))
	}
	s.data = mgr
	// Seed the remote tier with the initial states so a fallback before
	// the first remote checkpoint has something to load.
	if err := mgr.CheckpointRemote(0); err != nil {
		panic(err)
	}
}

// Iteration returns the last completed training iteration.
func (s *System) Iteration() int64 { return s.iteration }

// Training reports whether the training loop is running.
func (s *System) Training() bool { return s.training }

// RootRank returns the current root machine's rank, or -1.
func (s *System) RootRank() int { return s.rootRank }

// Recoveries returns how many recoveries have completed.
func (s *System) Recoveries() int { return s.recoveries }

// Start boots every worker agent, elects the initial root, and begins
// training at iteration 0.
func (s *System) Start() {
	s.workers = make([]*worker, s.cluster.Size())
	for rank := range s.workers {
		s.startWorker(rank, 0)
	}
	s.promoteRoot()
	s.WatchRootFailover()
	s.training = true
	s.scheduleIteration()
	s.scheduleSweep()
	s.log.Add("system", "started", "%d machines, m=%d", s.cluster.Size(), s.placement.M)
}

// scheduleSweep keeps lease expiry timely: the store expires lazily, so
// the system arms an event at the next lease deadline.
func (s *System) scheduleSweep() {
	s.sweepEv.Cancel()
	next := s.store.NextExpiry()
	if next == simclock.Forever {
		return
	}
	if next <= s.engine.Now() {
		next = s.engine.Now()
	}
	s.sweepEv = s.engine.AtPriority(next, 5, func() {
		s.store.Sweep()
		s.scheduleSweep()
	})
}

func (s *System) startWorker(rank, incarnation int) {
	w := &worker{rank: rank, incarnation: incarnation, alive: true}
	s.workers[rank] = w
	// The store may be unavailable (chaos): leave the lease at zero and
	// let the heartbeat ticker repair it once the store returns.
	s.refreshLease(w)
	w.ticker = simclock.NewTicker(s.engine, s.opts.HeartbeatInterval, func(simclock.Time) {
		if !w.alive || s.partitioned[w.rank] {
			// A partitioned agent is running but cannot reach the store;
			// its lease expires and the root declares it failed — exactly
			// the ambiguity real partitions create.
			return
		}
		s.refreshLease(w)
		s.scheduleSweep()
	})
}

// refreshLease renews w's heartbeat lease, re-granting it (and
// re-publishing the heartbeat key) if it was lost to expiry or a store
// outage. It reports whether the worker holds a live lease afterwards.
func (s *System) refreshLease(w *worker) bool {
	if w.lease != 0 {
		if err := s.store.KeepAlive(w.lease); err == nil {
			return true
		}
	}
	lease, err := s.store.Grant(s.opts.LeaseTTL)
	if err != nil {
		w.lease = 0
		return false
	}
	w.lease = lease
	if _, err := s.store.Put(hbKey(w.rank), strconv.Itoa(w.incarnation), lease); err != nil {
		w.lease = 0
		return false
	}
	return true
}

func hbKey(rank int) string { return hbPrefix + fmt.Sprintf("%04d", rank) }

// promoteRoot elects a root among alive, reachable workers (lowest such
// rank campaigns first and wins) and starts its health-check loop.
func (s *System) promoteRoot() {
	for rank, w := range s.workers {
		if w == nil || !w.alive || s.partitioned[rank] {
			continue
		}
		// The candidate's lease may have lapsed (partition, store outage);
		// campaigning with a dead lease can only fail.
		if !s.refreshLease(w) {
			continue
		}
		won, err := s.election.Campaign(fmt.Sprintf("rank-%d", rank), w.lease)
		if err != nil {
			continue // lease raced expiry or store went down; next candidate
		}
		if won {
			s.rootRank = rank
			s.log.Add("root-agent", "elected", "rank %d is root", rank)
			if s.kvTrack.Enabled() {
				s.kvTrack.InstantArgs(trace.CatKVStore, "elected", fmt.Sprintf("rank=%d", rank))
			}
			break
		}
	}
	if s.rootTick != nil {
		s.rootTick.Stop()
	}
	s.rootTick = simclock.NewTicker(s.engine, s.opts.CheckInterval, func(simclock.Time) {
		s.rootCheck()
	})
}

// InjectFailure delivers a failure to a machine: its agent stops
// heartbeating, its cluster state flips, and — for hardware failures —
// its CPU-memory checkpoints vanish. The failure kind is published where
// the cloud detector would put it (SageMaker-style tooling, §6.2).
func (s *System) InjectFailure(rank int, kind cluster.MachineState) {
	w := s.workers[rank]
	if w == nil || !w.alive {
		return
	}
	w.alive = false
	w.ticker.Stop()
	s.cluster.Fail(rank, kind)
	if kind == cluster.HardwareFailed {
		s.ckpt.Wipe(rank)
		if s.data != nil {
			s.data.WipeMachine(rank)
		}
	}
	// Physical tier state dies with the machine, whatever the policy:
	// hardware failures take the GPU-buffer snapshots with them.
	s.strategy.OnFailure(rank, kind == cluster.HardwareFailed)
	// A store outage loses the detector's report; beginRecovery falls
	// back to the cluster's own state to classify the failure.
	_, _ = s.store.Put(failurePrefix+strconv.Itoa(rank), kind.String(), 0)
	s.log.Add("injector", "failure", "rank %d: %v", rank, kind)
	if s.chaosTrack.Enabled() {
		s.chaosTrack.InstantArgs(trace.CatChaos, "failure", fmt.Sprintf("rank=%d kind=%v", rank, kind))
	}
	// Coverage degrades the instant the machine (and, for hardware, its
	// CPU memory) is gone — not at the next iteration boundary.
	s.observeHealth()
	s.scheduleSweep()
}

// rootCheck is the root agent's periodic health poll: every expected
// heartbeat must be present; a missing one starts recovery. The root also
// verifies its own machine is alive — a dead root's ticker dies with it.
func (s *System) rootCheck() {
	if s.rootRank < 0 || s.recovering {
		return
	}
	root := s.workers[s.rootRank]
	if root == nil || !root.alive {
		// The root machine itself died; its lease will expire and a
		// worker will take over via watchRootFailure.
		s.rootTick.Stop()
		return
	}
	if !s.store.Available() || s.partitioned[s.rootRank] {
		// The root cannot reach the store: it sees nothing, not even its
		// own heartbeat, and must not declare the whole cluster dead. It
		// keeps polling; either the outage heals or its own lease expires
		// and another machine takes over.
		return
	}
	entries := s.store.Range(hbPrefix)
	seen := make(map[int]bool, len(entries))
	for _, e := range entries {
		rank, err := strconv.Atoi(strings.TrimPrefix(e.Key, hbPrefix))
		if err != nil {
			continue
		}
		seen[rank] = true
	}
	var failed []int
	for rank := range s.workers {
		if !seen[rank] {
			failed = append(failed, rank)
		}
	}
	if len(failed) > 0 {
		s.beginRecovery(failed)
	} else {
		// Heartbeats are healthy; check for a vanished root key (lease
		// hiccup) and re-campaign.
		if _, ok := s.election.Leader(); !ok {
			s.promoteRoot()
		}
	}
}

// WatchRootFailover arms every worker to notice the root key vanishing
// (the root machine died) and promote a new root. In etcd terms this is
// a watch on the election key.
func (s *System) WatchRootFailover() {
	s.store.Watch(leaderKey, func(ev kvstore.Event) {
		if ev.Type != kvstore.EventDelete {
			return
		}
		// Defer to an event so the promotion happens outside the watch
		// delivery path.
		s.engine.After(0, func() {
			if _, ok := s.election.Leader(); ok {
				return
			}
			prevRoot := s.rootRank
			s.rootRank = -1
			s.promoteRoot()
			if s.rootRank >= 0 && s.rootRank != prevRoot {
				s.log.Add("root-agent", "failover", "root moved %d → %d", prevRoot, s.rootRank)
				if s.kvTrack.Enabled() {
					s.kvTrack.InstantArgs(trace.CatKVStore, "failover",
						fmt.Sprintf("from=%d to=%d", prevRoot, s.rootRank))
				}
				// The new root immediately checks cluster health: the old
				// root's machine is typically the failed one.
				s.rootCheck()
			}
		})
	})
}
