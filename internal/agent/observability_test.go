package agent

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gemini/internal/cloud"
	"gemini/internal/cluster"
	"gemini/internal/simclock"
	"gemini/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// Pins the lastRemoteIteration bugfix: the remote-fallback version must
// be the iteration actually committed to the remote tier, not one derived
// from the cadence in force at recovery time. Before the fix, shrinking
// the cadence mid-run made recovery claim a remote checkpoint (here 21)
// that was never written; the newest real commit is 20.
func TestSetRemoteEveryMidRunUsesCommittedVersion(t *testing.T) {
	f := newFixture(t, 4, 2, cloud.DefaultConfig())
	f.sys.SetRemoteEvery(10) // commits at iterations 10, 20, …
	f.sys.Start()
	// After iteration 22 the newest remote commit is 20. Tighten the
	// cadence to 7: the next commit would land at 28, but the whole
	// group {2,3} dies at iteration 25 — before any commit under the
	// new cadence exists.
	f.engine.At(simclock.Time(22*iterTime+1), func() {
		f.sys.SetRemoteEvery(7)
	})
	f.engine.At(simclock.Time(25*iterTime+10), func() {
		f.sys.InjectFailure(2, cluster.HardwareFailed)
		f.sys.InjectFailure(3, cluster.HardwareFailed)
	})
	f.engine.Run(simclock.Time(60 * iterTime))
	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", f.sys.Recoveries())
	}
	ret, _ := f.log.Last("retrieved")
	if !strings.Contains(ret.Detail, "from remote") {
		t.Fatalf("retrieval detail %q, want remote fallback", ret.Detail)
	}
	rec, _ := f.log.Last("recovery-complete")
	if strings.Contains(rec.Detail, "iteration 21") {
		t.Fatalf("recovery claims the phantom cadence-derived version: %q", rec.Detail)
	}
	if !strings.Contains(rec.Detail, "iteration 20") {
		t.Fatalf("recovery detail %q, want the committed remote iteration 20", rec.Detail)
	}
}

// spanNames collects the names recorded on a track.
func spanNames(tk *trace.Track) map[string]int {
	out := make(map[string]int)
	for _, sp := range tk.Spans() {
		out[sp.Name]++
	}
	return out
}

func TestRecoveryPhasesTraced(t *testing.T) {
	f := newFixture(t, 4, 2, cloud.DefaultConfig())
	f.sys.SetRemoteEvery(10)
	tr := trace.NewTracer(nil)
	f.sys.SetTracer(tr)
	f.sys.Start()
	f.engine.At(simclock.Time(5*iterTime+10), func() {
		f.sys.InjectFailure(2, cluster.HardwareFailed)
	})
	f.engine.Run(simclock.Time(20 * iterTime))
	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", f.sys.Recoveries())
	}

	root := tr.Track("control-plane", "root-agent")
	names := spanNames(root)
	for _, want := range []string{"recovery", "serialize", "replace", "retrieve", "warmup", "iteration"} {
		if names[want] == 0 {
			t.Errorf("no %q span on root-agent track (got %v)", want, names)
		}
	}
	if root.OpenSpans() != 0 {
		t.Fatalf("%d spans left open after recovery completed", root.OpenSpans())
	}
	// The §6.2 phases nest inside the recovery span and are ordered.
	var rec, ser, rtv, wu trace.Span
	for _, sp := range root.Spans() {
		switch sp.Name {
		case "recovery":
			rec = sp
		case "serialize":
			ser = sp
		case "retrieve":
			rtv = sp
		case "warmup":
			wu = sp
		}
	}
	if !(rec.Start <= ser.Start && ser.End <= rtv.Start && rtv.End <= wu.Start && wu.End <= rec.End) {
		t.Fatalf("phase spans out of order: recovery=%+v serialize=%+v retrieve=%+v warmup=%+v",
			rec, ser, rtv, wu)
	}
	if !strings.Contains(rtv.Args, "source=") {
		t.Fatalf("retrieve span args %q missing source", rtv.Args)
	}

	chaosTk := tr.Track("control-plane", "chaos")
	var sawFailure bool
	for _, in := range chaosTk.Instants() {
		if in.Name == "failure" && in.Cat == trace.CatChaos {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatalf("no chaos failure instant (got %+v)", chaosTk.Instants())
	}
	kvTk := tr.Track("control-plane", "kvstore")
	var sawElected bool
	for _, in := range kvTk.Instants() {
		if in.Name == "elected" && in.Cat == trace.CatKVStore {
			sawElected = true
		}
	}
	if !sawElected {
		t.Fatalf("no kvstore election instant (got %+v)", kvTk.Instants())
	}
}

// Pins the exported trace JSON for a small deterministic run, byte for
// byte: a seeded failure, the full recovery, and the export layout
// (pids, tids, lanes, args) must all stay reproducible. Regenerate with
// `go test ./internal/agent -run GoldenTrace -update` after an
// intentional format or instrumentation change.
func TestGoldenTraceJSON(t *testing.T) {
	f := newFixture(t, 4, 2, cloud.DefaultConfig())
	f.sys.SetRemoteEvery(10)
	tr := trace.NewTracer(nil)
	f.sys.SetTracer(tr)
	f.sys.Start()
	f.engine.At(simclock.Time(3*iterTime+10), func() {
		f.sys.InjectFailure(2, cluster.SoftwareFailed)
	})
	f.engine.Run(simclock.Time(12 * iterTime))
	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", f.sys.Recoveries())
	}
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_trace.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exported trace differs from %s (run with -update if intentional)\ngot:  %.400s\nwant: %.400s",
			golden, buf.String(), want)
	}
	// Sanity beyond byte equality: the document is valid and covers the
	// control-plane subsystems.
	st, err := trace.StatsFromJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, cat := range []string{trace.CatAgent, trace.CatChaos, trace.CatKVStore} {
		if st.Categories[cat] == 0 {
			t.Errorf("no %s events in golden trace (categories: %v)", cat, st.Categories)
		}
	}
}

// A traced run must replay bit-identically to an untraced one: tracing
// only observes, never schedules.
func TestTracingDoesNotPerturbDeterminism(t *testing.T) {
	run := func(withTracer bool) []trace.Event {
		f := newFixture(t, 4, 2, cloud.DefaultConfig())
		f.sys.SetRemoteEvery(10)
		if withTracer {
			f.sys.SetTracer(trace.NewTracer(nil))
		}
		f.sys.Start()
		f.engine.At(simclock.Time(5*iterTime+10), func() {
			f.sys.InjectFailure(1, cluster.SoftwareFailed)
			f.sys.InjectFailure(2, cluster.HardwareFailed)
		})
		f.engine.Run(simclock.Time(30 * iterTime))
		return f.log.Events()
	}
	plain, traced := run(false), run(true)
	if len(plain) != len(traced) {
		t.Fatalf("event counts differ: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("event %d differs:\n  plain:  %+v\n  traced: %+v", i, plain[i], traced[i])
		}
	}
}
