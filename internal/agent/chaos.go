package agent

import (
	"fmt"
	"sort"

	"gemini/internal/cluster"
	"gemini/internal/kvstore"
	"gemini/internal/simclock"
	"gemini/internal/trace"
)

// This file is the fault-injection surface of the control plane: network
// partitions, correlated failures, stragglers, and key-value store
// outages. The chaos package drives these from a schedule; tests call
// them directly.

// Store exposes the system's key-value store for chaos injection and
// white-box assertions.
func (s *System) Store() *kvstore.Store { return s.store }

// StartPartition cuts the given ranks off from the network: their agents
// keep running but can no longer reach the store (heartbeats lapse) or
// serve peer checkpoint fetches. Ranks accumulate across calls until
// HealPartition.
func (s *System) StartPartition(ranks ...int) {
	for _, rank := range ranks {
		s.checkRank(rank)
		s.partitioned[rank] = true
	}
	s.log.Add("injector", "partition", "ranks %v isolated", ranks)
	if s.chaosTrack.Enabled() {
		s.chaosTrack.InstantArgs(trace.CatChaos, "partition", fmt.Sprintf("ranks=%v", ranks))
	}
	s.scheduleSweep()
}

// HealPartition reconnects every partitioned rank. Healed agents whose
// processes never died refresh their leases immediately; agents whose
// machines failed while unreachable rejoin through the normal recovery
// path.
func (s *System) HealPartition() {
	healed := make([]int, 0, len(s.partitioned))
	for rank := range s.partitioned {
		healed = append(healed, rank)
	}
	sort.Ints(healed)
	s.partitioned = make(map[int]bool)
	s.log.Add("injector", "partition-heal", "ranks %v reconnected", healed)
	if s.chaosTrack.Enabled() {
		s.chaosTrack.InstantArgs(trace.CatChaos, "partition-heal", fmt.Sprintf("ranks=%v", healed))
	}
	for _, rank := range healed {
		w := s.workers[rank]
		switch {
		case w == nil:
			continue
		case w.alive:
			// The process survived the partition: its next heartbeat is
			// due within HeartbeatInterval, but re-publishing now closes
			// the window where the root would re-detect it as failed.
			s.refreshLease(w)
		case !s.recovering && s.cluster.Machine(rank).Healthy():
			// It was declared failed and replaced/restarted while
			// unreachable, and no recovery is in flight: rejoin.
			s.startWorker(rank, w.incarnation)
		}
	}
	// The root itself may have been partitioned away and deposed.
	s.engine.After(0, func() {
		if _, ok := s.election.Leader(); !ok {
			s.promoteRoot()
		}
	})
	s.scheduleSweep()
}

// Partitioned reports whether a rank is currently cut off.
func (s *System) Partitioned(rank int) bool {
	s.checkRank(rank)
	return s.partitioned[rank]
}

// Reachable reports whether two ranks can currently communicate: both on
// the same side of the partition (the non-partitioned majority counts as
// one side; all partitioned ranks are treated as isolated together).
func (s *System) Reachable(a, b int) bool {
	s.checkRank(a)
	s.checkRank(b)
	return s.partitioned[a] == s.partitioned[b]
}

// SetStraggler degrades a rank's effective network bandwidth to the
// given factor in (0, 1]; factor 1 restores full speed. Peer checkpoint
// retrieval served by a straggler slows proportionally.
func (s *System) SetStraggler(rank int, factor float64) {
	s.checkRank(rank)
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("agent: straggler factor must be in (0,1], got %v", factor))
	}
	if factor == 1 {
		delete(s.stragglers, rank)
		s.log.Add("injector", "straggler-end", "rank %d restored to full bandwidth", rank)
		return
	}
	s.stragglers[rank] = factor
	s.log.Add("injector", "straggler", "rank %d degraded to %.0f%% bandwidth", rank, factor*100)
	if s.chaosTrack.Enabled() {
		s.chaosTrack.InstantArgs(trace.CatChaos, "straggler", fmt.Sprintf("rank=%d factor=%v", rank, factor))
	}
}

// stragglerFactor returns a rank's current bandwidth scale.
func (s *System) stragglerFactor(rank int) float64 {
	if f, ok := s.stragglers[rank]; ok {
		return f
	}
	return 1
}

// SetKVAvailable opens (false) or closes (true) a store unavailability
// window — an etcd quorum loss. While down, nobody can heartbeat, renew,
// or read, and lease TTLs freeze, so the control plane stalls rather
// than mass-declaring the cluster dead.
func (s *System) SetKVAvailable(up bool) {
	if up == s.store.Available() {
		return
	}
	if !up {
		s.store.SetAvailable(false)
		s.sweepEv.Cancel()
		s.log.Add("injector", "kv-outage", "key-value store unavailable")
		s.chaosTrack.Instant(trace.CatChaos, "kv-outage")
		return
	}
	s.store.SetAvailable(true)
	s.log.Add("injector", "kv-restore", "key-value store available again")
	s.chaosTrack.Instant(trace.CatChaos, "kv-restore")
	s.scheduleSweep()
}

// SetLeaseJitter adds deterministic pseudo-random extensions of up to max
// to every future lease grant and renewal, modelling clock skew between
// the agents and the store.
func (s *System) SetLeaseJitter(max simclock.Duration) {
	s.store.SetLeaseJitter(max, 1)
	s.log.Add("injector", "lease-jitter", "lease expiries jittered by up to %v", max)
	s.chaosTrack.Instant(trace.CatChaos, "lease-jitter")
}

// InjectCorrelated fails several machines at the same instant with the
// same kind — a rack losing power, a placement group's switch dying.
func (s *System) InjectCorrelated(kind cluster.MachineState, ranks ...int) {
	sorted := append([]int(nil), ranks...)
	sort.Ints(sorted)
	s.log.Add("injector", "correlated-failure", "ranks %v: %v", sorted, kind)
	for _, rank := range sorted {
		s.InjectFailure(rank, kind)
	}
}

func (s *System) checkRank(rank int) {
	if rank < 0 || rank >= len(s.workers) {
		panic(fmt.Sprintf("agent: rank %d out of range [0,%d)", rank, len(s.workers)))
	}
}
