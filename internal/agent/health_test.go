package agent

import (
	"testing"

	"gemini/internal/ckpt"
	"gemini/internal/cloud"
	"gemini/internal/cluster"
	"gemini/internal/metrics"
	"gemini/internal/placement"
	"gemini/internal/simclock"
	"gemini/internal/strategy"
	"gemini/internal/trace"
)

func gaugeValue(t *testing.T, reg *metrics.Registry, name string) float64 {
	t.Helper()
	v, ok := reg.Snapshot().Get(name)
	if !ok {
		t.Fatalf("metric %q not registered", name)
	}
	return v
}

// The acceptance test for the health monitor: the gauges must visibly
// react to an injected failure — coverage collapses the moment a whole
// replica group's CPU memory is wiped, staleness spikes, and recovery
// restores both.
func TestHealthGaugesReactToFailure(t *testing.T) {
	f := newFixture(t, 4, 2, cloud.DefaultConfig()) // groups {0,1}, {2,3}
	reg := metrics.NewRegistry()
	f.sys.SetMetrics(reg)
	f.sys.SetRemoteEvery(10)
	f.sys.Start()

	// Steady state after 5 iterations: every shard fully replicated,
	// checkpoints fresh, remote tier never written (first commit at 10).
	f.engine.At(simclock.Time(5*iterTime+5), func() {
		if v := gaugeValue(t, reg, "health.replica_coverage"); v != 1 {
			t.Errorf("steady-state coverage %v, want 1", v)
		}
		if v := gaugeValue(t, reg, "health.min_replicas"); v != 2 {
			t.Errorf("steady-state min_replicas %v, want 2", v)
		}
		if v := gaugeValue(t, reg, "health.ckpt_staleness_local"); v != 0 {
			t.Errorf("steady-state local staleness %v, want 0", v)
		}
		if v := gaugeValue(t, reg, "health.ckpt_staleness_remote"); v != 5 {
			t.Errorf("remote staleness %v, want 5 (no remote commit yet)", v)
		}
	})

	// Kill the whole group {2, 3}: ranks 2 and 3 lose every in-memory
	// replica. The gauges must show it immediately, not at the next
	// iteration boundary.
	f.engine.At(simclock.Time(5*iterTime+10), func() {
		f.sys.InjectFailure(2, cluster.HardwareFailed)
		f.sys.InjectFailure(3, cluster.HardwareFailed)
	})
	f.engine.At(simclock.Time(5*iterTime+11), func() {
		if v := gaugeValue(t, reg, "health.replica_coverage"); v != 0.5 {
			t.Errorf("coverage after group loss %v, want 0.5", v)
		}
		if v := gaugeValue(t, reg, "health.min_replicas"); v != 0 {
			t.Errorf("min_replicas after group loss %v, want 0", v)
		}
		if v := gaugeValue(t, reg, "health.ckpt_staleness_local"); v != 5 {
			t.Errorf("local staleness after group loss %v, want 5 (nothing survives)", v)
		}
	})

	f.engine.Run(simclock.Time(40 * iterTime))
	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", f.sys.Recoveries())
	}
	// Recovery reseeded every machine from the remote tier and training
	// resumed: coverage and redundancy are whole again.
	if v := gaugeValue(t, reg, "health.replica_coverage"); v != 1 {
		t.Errorf("post-recovery coverage %v, want 1", v)
	}
	if v := gaugeValue(t, reg, "health.min_replicas"); v != 2 {
		t.Errorf("post-recovery min_replicas %v, want 2", v)
	}
	if v := gaugeValue(t, reg, "health.recoveries"); v != 1 {
		t.Errorf("health.recoveries %v, want 1", v)
	}
	if v := gaugeValue(t, reg, "health.iteration"); v <= 0 {
		t.Errorf("health.iteration %v, want progress after recovery", v)
	}
	if v := gaugeValue(t, reg, "health.wasted_seconds.count"); v != 1 {
		t.Errorf("wasted_seconds count %v, want 1", v)
	}
}

// WastedEvents is the per-failure Eq. 1 ledger: with no remote commit
// yet, the whole-group failure at iteration 5 falls back to remote
// version 0, losing exactly 5 iterations of progress.
func TestWastedEventAccounting(t *testing.T) {
	f := newFixture(t, 4, 2, cloud.DefaultConfig())
	reg := metrics.NewRegistry()
	f.sys.SetMetrics(reg)
	f.sys.SetRemoteEvery(10)
	f.sys.Start()
	injectAt := simclock.Time(5*iterTime + 10)
	f.engine.At(injectAt, func() {
		f.sys.InjectFailure(2, cluster.HardwareFailed)
		f.sys.InjectFailure(3, cluster.HardwareFailed)
	})
	f.engine.Run(simclock.Time(40 * iterTime))

	evs := f.sys.WastedEvents()
	if len(evs) != 1 {
		t.Fatalf("%d wasted events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Source != "remote" || ev.Version != 0 {
		t.Fatalf("source=%q version=%d, want remote fallback to version 0", ev.Source, ev.Version)
	}
	if len(ev.Ranks) != 2 {
		t.Fatalf("event ranks %v, want the 2 failed machines", ev.Ranks)
	}
	if ev.LostIterations != 5 || ev.TLost != 5*iterTime {
		t.Fatalf("lost %d iterations / %v, want 5 / %v", ev.LostIterations, ev.TLost, 5*iterTime)
	}
	// Detection follows the injection by at most lease TTL + checks.
	if ev.Detected < injectAt || ev.Detected.Sub(injectAt) > f.sys.opts.LeaseTTL+2*f.sys.opts.CheckInterval {
		t.Fatalf("Detected=%v, injection at %v", ev.Detected, injectAt)
	}
	if ev.Resumed <= ev.Detected {
		t.Fatalf("Resumed=%v not after Detected=%v", ev.Resumed, ev.Detected)
	}
	if ev.TRecovery != ev.Resumed.Sub(ev.Detected) {
		t.Fatalf("TRecovery=%v, want Resumed-Detected=%v", ev.TRecovery, ev.Resumed.Sub(ev.Detected))
	}
	// Downtime covers at least serialize + warmup.
	if ev.TRecovery < f.sys.opts.SerializeTime+f.sys.opts.WarmupTime {
		t.Fatalf("TRecovery=%v below serialize+warmup floor", ev.TRecovery)
	}
	if ev.Wasted() != ev.TLost+ev.TRecovery {
		t.Fatalf("Wasted()=%v, want TLost+TRecovery=%v", ev.Wasted(), ev.TLost+ev.TRecovery)
	}
	// The histograms saw the same event.
	if v := gaugeValue(t, reg, "health.wasted_seconds.max"); v != ev.Wasted().Seconds() {
		t.Fatalf("wasted_seconds.max=%v, want %v", v, ev.Wasted().Seconds())
	}
}

// The monitor is a pure observer and every named strategy is a pure
// policy: for each registered strategy, a run replays bit-identically
// across repeats, and attaching metrics, a sampling recorder, and a
// tracer must not move a single event. The failure ladder — two spaced
// software crashes then a hardware loss — gives the adaptive selector
// enough observations to switch policies mid-run, so its switching
// path is under the same determinism contract as the fixed policies.
func TestMonitoringDoesNotPerturbDeterminism(t *testing.T) {
	for _, name := range strategy.Names() {
		t.Run(name, func(t *testing.T) {
			run := func(monitored bool) []trace.Event {
				f := newFixture(t, 4, 2, cloud.DefaultConfig())
				f.sys.SetStrategy(strategy.MustNew(name))
				f.sys.SetRemoteEvery(10)
				if monitored {
					reg := metrics.NewRegistry()
					f.sys.SetMetrics(reg)
					f.sys.SetTracer(trace.NewTracer(nil))
					rec := metrics.NewRecorder(reg, 1024)
					rec.Watch("health.iteration", "health.replica_coverage",
						"health.ckpt_staleness_local", "health.recoveries")
					rec.Start(f.engine, 30*simclock.Second)
				}
				f.sys.Start()
				f.engine.At(simclock.Time(5*iterTime+10), func() {
					f.sys.InjectFailure(1, cluster.SoftwareFailed)
				})
				f.engine.At(simclock.Time(15*iterTime+10), func() {
					f.sys.InjectFailure(2, cluster.SoftwareFailed)
				})
				f.engine.At(simclock.Time(28*iterTime+10), func() {
					f.sys.InjectFailure(3, cluster.HardwareFailed)
				})
				f.engine.Run(simclock.Time(55 * iterTime))
				return f.log.Events()
			}
			plain, repeat, monitored := run(false), run(false), run(true)
			if len(plain) != len(repeat) || len(plain) != len(monitored) {
				t.Fatalf("event counts differ: %d plain vs %d repeat vs %d monitored",
					len(plain), len(repeat), len(monitored))
			}
			switched := false
			for i := range plain {
				if plain[i] != repeat[i] {
					t.Fatalf("event %d differs across repeats:\n  first:  %+v\n  second: %+v", i, plain[i], repeat[i])
				}
				if plain[i] != monitored[i] {
					t.Fatalf("event %d differs:\n  plain:     %+v\n  monitored: %+v", i, plain[i], monitored[i])
				}
				if plain[i].Kind == "strategy-switch" {
					switched = true
				}
			}
			if name == "adaptive" && !switched {
				t.Fatal("adaptive never switched: the mid-run switching path went untested")
			}
		})
	}
}

// Monitor-overhead benchmark pair for EXPERIMENTS.md: the same failure
// scenario with the health monitor off and on.
func benchmarkControlPlane(b *testing.B, monitor bool) {
	for i := 0; i < b.N; i++ {
		engine := simclock.NewEngine()
		f := benchFixture(b, engine)
		if monitor {
			reg := metrics.NewRegistry()
			f.SetMetrics(reg)
			rec := metrics.NewRecorder(reg, 1024)
			rec.Watch("health.iteration", "health.replica_coverage",
				"health.ckpt_staleness_local", "health.recoveries")
			rec.Start(engine, 30*simclock.Second)
		}
		f.Start()
		engine.At(simclock.Time(5*iterTime+10), func() {
			f.InjectFailure(2, cluster.HardwareFailed)
		})
		engine.Run(simclock.Time(30 * iterTime))
		if f.Recoveries() != 1 {
			b.Fatalf("%d recoveries, want 1", f.Recoveries())
		}
	}
}

func benchFixture(b *testing.B, engine *simclock.Engine) *System {
	b.Helper()
	clus := cluster.MustNew(4, cluster.MustInstance("p4d.24xlarge"), engine.Now)
	ck := ckpt.MustNewEngine(placement.MustMixed(4, 2), 75e9)
	op := cloud.MustNewOperator(engine, cloud.DefaultConfig())
	sys, err := NewSystem(engine, clus, ck, op, DefaultOptions(iterTime), nil)
	if err != nil {
		b.Fatal(err)
	}
	sys.SetRemoteEvery(10)
	return sys
}

func BenchmarkControlPlaneMonitorOff(b *testing.B) { benchmarkControlPlane(b, false) }
func BenchmarkControlPlaneMonitorOn(b *testing.B)  { benchmarkControlPlane(b, true) }

// Per-strategy overhead benchmark pair for EXPERIMENTS.md: one
// sub-benchmark per registered strategy over the same failure ladder,
// so a policy whose planning work regresses (sparse walks every
// (owner, holder) pair per iteration, adaptive re-evaluates its rule
// at every boundary) shows up against the gemini baseline.
func BenchmarkControlPlaneStrategy(b *testing.B) {
	for _, name := range strategy.Names() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				engine := simclock.NewEngine()
				f := benchFixture(b, engine)
				f.SetStrategy(strategy.MustNew(name))
				f.Start()
				engine.At(simclock.Time(5*iterTime+10), func() {
					f.InjectFailure(1, cluster.SoftwareFailed)
				})
				engine.At(simclock.Time(15*iterTime+10), func() {
					f.InjectFailure(2, cluster.HardwareFailed)
				})
				engine.Run(simclock.Time(30 * iterTime))
				if f.Recoveries() != 2 {
					b.Fatalf("%d recoveries, want 2", f.Recoveries())
				}
			}
		})
	}
}
