package agent

import (
	"testing"

	"gemini/internal/ckpt"
	"gemini/internal/cloud"
	"gemini/internal/cluster"
	"gemini/internal/placement"
	"gemini/internal/simclock"
	"gemini/internal/statemgr"
	"gemini/internal/trace"
)

// Data-plane integration: the live control plane moves real shard bytes
// through every recovery path, fingerprint-verified. The recovery
// workflow panics on any integrity violation, so these tests assert the
// end state; a verification failure would abort the run loudly.

const dpShard = 4096

func newDataPlaneFixture(t *testing.T, n, m int) *fixture {
	t.Helper()
	engine := simclock.NewEngine()
	clus := cluster.MustNew(n, cluster.MustInstance("p4d.24xlarge"), engine.Now)
	p := placement.MustMixed(n, m)
	ck := ckpt.MustNewEngine(p, dpShard)
	op := cloud.MustNewOperator(engine, cloud.DefaultConfig())
	log := trace.NewLog(engine.Now)
	sys, err := NewSystem(engine, clus, ck, op, DefaultOptions(iterTime), log)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetDataPlane(statemgr.MustNew(p, dpShard, 77))
	return &fixture{engine: engine, clus: clus, ck: ck, op: op, sys: sys, log: log}
}

func TestDataPlaneHealthyTraining(t *testing.T) {
	f := newDataPlaneFixture(t, 4, 2)
	f.sys.Start()
	f.engine.Run(simclock.Time(8*iterTime + 5))
	if f.sys.Iteration() != 8 {
		t.Fatalf("iteration %d, want 8", f.sys.Iteration())
	}
	if err := f.sys.data.VerifyConsistent(8); err != nil {
		t.Fatalf("live state inconsistent: %v", err)
	}
}

func TestDataPlaneSoftwareRecoveryVerifiesBytes(t *testing.T) {
	f := newDataPlaneFixture(t, 4, 2)
	f.sys.Start()
	f.engine.At(simclock.Time(5*iterTime+10), func() {
		f.sys.InjectFailure(2, cluster.SoftwareFailed)
	})
	f.engine.Run(simclock.Time(40 * iterTime))
	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", f.sys.Recoveries())
	}
	// Training resumed past the rollback point and the data plane agrees
	// with the control plane's iteration counter.
	if err := f.sys.data.VerifyConsistent(f.sys.Iteration()); err != nil {
		t.Fatalf("post-recovery state: %v", err)
	}
}

func TestDataPlaneHardwareRecoveryVerifiesBytes(t *testing.T) {
	f := newDataPlaneFixture(t, 4, 2)
	f.sys.Start()
	f.engine.At(simclock.Time(4*iterTime+10), func() {
		f.sys.InjectFailure(1, cluster.HardwareFailed)
	})
	f.engine.Run(simclock.Time(50 * iterTime))
	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", f.sys.Recoveries())
	}
	if err := f.sys.data.VerifyConsistent(f.sys.Iteration()); err != nil {
		t.Fatalf("post-recovery state: %v", err)
	}
	if f.clus.Machine(1).Incarnation != 1 {
		t.Fatal("machine not replaced")
	}
}

func TestDataPlaneGroupLossRemoteFallbackVerifiesBytes(t *testing.T) {
	f := newDataPlaneFixture(t, 4, 2)
	f.sys.SetRemoteEvery(10)
	f.sys.Start()
	f.engine.At(simclock.Time(25*iterTime+10), func() {
		f.sys.InjectFailure(2, cluster.HardwareFailed)
		f.sys.InjectFailure(3, cluster.HardwareFailed)
	})
	f.engine.Run(simclock.Time(70 * iterTime))
	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", f.sys.Recoveries())
	}
	rec, ok := f.log.Last("recovery-complete")
	if !ok {
		t.Fatal("no recovery")
	}
	_ = rec
	// The fallback loaded the remote tier (iteration 20) and training
	// moved on; bytes must still verify at the current iteration.
	if err := f.sys.data.VerifyConsistent(f.sys.Iteration()); err != nil {
		t.Fatalf("post-fallback state: %v", err)
	}
	if f.sys.Iteration() <= 20 {
		t.Fatalf("training did not progress past the fallback point: %d", f.sys.Iteration())
	}
}

func TestSetDataPlaneRejectsMismatch(t *testing.T) {
	f := newFixture(t, 4, 2, cloud.DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched data plane accepted")
		}
	}()
	f.sys.SetDataPlane(statemgr.MustNew(placement.MustMixed(6, 2), dpShard, 1))
}
