package agent

import (
	"fmt"
	"sort"
	"strconv"

	"gemini/internal/ckpt"
	"gemini/internal/cluster"
	"gemini/internal/simclock"
	"gemini/internal/strategy"
	"gemini/internal/trace"
)

// RemoteEveryIterations is how often the remote persistent tier gets a
// checkpoint, in iterations. With 62-second iterations, 174 iterations ≈
// 3 hours, matching the Strawman cadence GEMINI keeps for non-recovery
// purposes (§7.1). Configured on the system via SetRemoteEvery.
const defaultRemoteEvery = 174

// scheduleIteration arms the next training-iteration completion.
func (s *System) scheduleIteration() {
	if !s.training || s.recovering {
		return
	}
	start := s.engine.Now()
	s.iterEv = s.engine.After(s.opts.IterationTime, func() {
		s.completeIteration()
		if s.rootTrack.Enabled() {
			s.rootTrack.SpanArgs(trace.CatAgent, "iteration", start, s.engine.Now(),
				fmt.Sprintf("iter=%d", s.iteration))
		}
		s.scheduleIteration()
	})
}

// completeIteration advances training by one iteration and commits the
// checkpoint work the installed strategy planned for it in the
// bookkeeping engine. (The traffic side of checkpointing is exercised
// by the training executor; the control plane tracks versions and
// placement.)
func (s *System) completeIteration() {
	s.iteration++
	iter := s.iteration
	healthy := func(rank int) bool { return s.cluster.Machine(rank).Healthy() }
	var remote bool
	if s.data != nil {
		// Byte-level path: move real payloads; statemgr registers the
		// commits with the version tracker itself (gemini semantics).
		s.data.Step(iter, healthy)
		if err := s.data.Checkpoint(s.ckpt, iter, healthy); err != nil {
			panic(fmt.Sprintf("agent: data-plane checkpoint: %v", err))
		}
		remote = iter%s.remoteEvery() == 0
	} else {
		plan := s.strategy.PlanCommit(iter, healthy)
		for _, c := range plan.Commits {
			switch c.Kind {
			case strategy.CommitFull:
				s.ckpt.Begin(c.Holder, c.Owner, iter)
				s.ckpt.Receive(c.Holder, c.Owner, iter, s.ckpt.ShardBytes())
				s.ckpt.Commit(c.Holder, c.Owner, iter, 0)
			case strategy.CommitDelta:
				s.ckpt.BeginDelta(c.Holder, c.Owner, iter, c.Bytes)
				s.ckpt.Receive(c.Holder, c.Owner, iter, c.Bytes)
				s.ckpt.Commit(c.Holder, c.Owner, iter, 0)
			case strategy.CommitRefresh:
				s.ckpt.Refresh(c.Holder, c.Owner, iter)
			default:
				panic(fmt.Sprintf("agent: unknown commit kind %d", c.Kind))
			}
		}
		remote = plan.Remote
	}
	// The remote persistent tier commits on its own cadence; the commit is
	// recorded so recovery reads what was actually written, not what the
	// current cadence implies (SetRemoteEvery may have changed it since).
	if remote {
		if s.data != nil {
			if err := s.data.CheckpointRemote(iter); err != nil {
				panic(fmt.Sprintf("agent: remote checkpoint: %v", err))
			}
		}
		s.lastRemoteCommitted = iter
		s.remoteBytes += float64(s.placement.N) * s.ckpt.ShardBytes()
		s.rootTrack.Instant(trace.CatAgent, "remote-checkpoint")
	}
	// Best-effort: during a store outage the committed-iteration key lags
	// behind; recovery reads versions from the checkpoint engine, not here.
	_, _ = s.store.Put(iterationKey, strconv.FormatInt(iter, 10), 0)
	s.observeHealth()
}

// remoteEvery returns the remote-tier cadence in iterations.
func (s *System) remoteEvery() int64 {
	if s.remoteEveryIters > 0 {
		return s.remoteEveryIters
	}
	return defaultRemoteEvery
}

// SetRemoteEvery overrides the remote persistent checkpoint cadence.
func (s *System) SetRemoteEvery(iterations int64) {
	if iterations < 1 {
		panic(fmt.Sprintf("agent: remote cadence %d must be ≥ 1", iterations))
	}
	s.remoteEveryIters = iterations
}

// lastRemoteIteration returns the newest iteration actually committed to
// the remote persistent store. Deriving it from the current cadence
// would be wrong: after SetRemoteEvery mid-run it could name an
// iteration no commit ever covered.
func (s *System) lastRemoteIteration() int64 {
	return s.lastRemoteCommitted
}

// Traffic is the run's cumulative checkpoint byte movement, split by
// purpose: Replication is the steady-state commit traffic accepted by
// the checkpoint engine, Retrieval is recovery-time fetch traffic
// (peer and remote), Remote is the persistent-tier commit traffic.
type Traffic struct {
	Replication float64
	Retrieval   float64
	Remote      float64
}

// Traffic returns the bytes-moved accounting — the cost axis of the
// strategy comparison table.
func (s *System) Traffic() Traffic {
	return Traffic{
		Replication: s.ckpt.BytesReceived(),
		Retrieval:   s.retrievedBytes,
		Remote:      s.remoteBytes,
	}
}

// beginRecovery is the root agent's recovery workflow (§6.2):
//
//  1. stop training, classify the failed machines;
//  2. serialize the resident CPU-memory checkpoints (torch.save);
//  3. replace hardware-failed machines through the cloud operator;
//  4. retrieve checkpoints — local, peer, or remote fallback;
//  5. restart and warm up, then resume from the recovered iteration.
func (s *System) beginRecovery(failed []int) {
	s.recovering = true
	s.recoveryStart = s.engine.Now()
	s.iterEv.Cancel()

	hardware := make(map[int]bool)
	for _, rank := range failed {
		entry, ok := s.store.Get(failurePrefix + strconv.Itoa(rank))
		// The detector's report may have been lost to a store outage; the
		// cluster's own state is the ground-truth fallback.
		if (ok && entry.Value == cluster.HardwareFailed.String()) ||
			s.cluster.Machine(rank).State() == cluster.HardwareFailed {
			hardware[rank] = true
		}
		s.store.Delete(failurePrefix + strconv.Itoa(rank))
	}
	s.log.Add("root-agent", "failure-detected", "ranks %v (hardware: %d)", failed, len(hardware))
	if s.rootTrack.Enabled() {
		// Step 1: the whole recovery is one span; phases nest inside it.
		s.rootTrack.BeginArgs(trace.CatAgent, "recovery",
			fmt.Sprintf("ranks=%v hardware=%d", failed, len(hardware)))
	}

	// Step 2: serialize resident checkpoints on all alive machines —
	// unless the strategy's fast tier makes the stall unnecessary (the
	// tiered strategy's GPU snapshots are already materialized).
	serialize := simclock.Duration(0)
	if s.strategy.SerializeNeeded(failed, hardware) {
		serialize = s.opts.SerializeTime
	}
	serStart := s.engine.Now()
	s.engine.After(serialize, func() {
		if serialize > 0 {
			s.rootTrack.Span(trace.CatAgent, "serialize", serStart, s.engine.Now())
			s.log.Add("root-agent", "serialized", "in-memory checkpoints saved in %v", serialize)
		} else {
			s.log.Add("root-agent", "serialize-skipped", "fast-tier snapshots already materialized")
			s.rootTrack.Instant(trace.CatAgent, "serialize-skipped")
		}
		// Software-failed machines restart in place regardless of whether
		// hardware replacements are also in flight (a mixed failure must
		// not leave them down). Partition suspects are Healthy and Restart
		// is a no-op for them.
		for _, rank := range failed {
			if hardware[rank] {
				continue
			}
			if err := s.cluster.Restart(rank); err != nil {
				panic(err)
			}
		}
		// Step 3: replace hardware failures (in parallel; wait for all).
		// Sorted order keeps the operator's randomized provisioning delays
		// deterministic for a given schedule.
		pending := 0
		replStart := s.engine.Now()
		proceed := func() {
			if pending != 0 {
				return
			}
			if len(hardware) > 0 {
				s.rootTrack.Span(trace.CatAgent, "replace", replStart, s.engine.Now())
			}
			s.attemptRetrieval(failed, hardware, 0)
		}
		ranks := make([]int, 0, len(hardware))
		for rank := range hardware {
			ranks = append(ranks, rank)
		}
		sort.Ints(ranks)
		for _, rank := range ranks {
			rank := rank
			pending++
			s.operator.RequestReplacement(rank, func(delay simclock.Duration) {
				s.cluster.Replace(rank)
				s.log.Add("root-agent", "replaced", "rank %d after %v", rank, delay)
				pending--
				proceed()
			})
		}
		if pending == 0 {
			proceed()
		}
	})
}

// attemptRetrieval asks the strategy for a recovery decision and
// executes it. The default ladder (§3.1) looks for a consistent
// checkpoint version among machines that still hold their CPU memory
// AND are reachable (not partitioned away). When the decision is a
// retryable remote fallback it retries with exponential backoff —
// partitions heal — and only after RetryMax attempts actually falls
// back to remote persistent storage.
func (s *System) attemptRetrieval(failed []int, hardware map[int]bool, attempt int) {
	// CPU-memory availability: hardware-failed machines were wiped; the
	// replacements arrive empty. Software-failed machines kept memory.
	// Partitioned survivors hold memory but cannot serve fetches.
	avail := func(rank int) bool { return !hardware[rank] && !s.partitioned[rank] }

	rec := s.strategy.PlanRecovery(strategy.RecoveryContext{
		Failed:        failed,
		Hardware:      hardware,
		Reachable:     avail,
		Surviving:     func(rank int) bool { return !hardware[rank] },
		RemoteVersion: s.lastRemoteIteration(),
		Attempt:       attempt,
	})
	if rec.Tier == strategy.TierRemote && rec.Retryable && attempt < s.opts.RetryMax {
		// Retry only helps when the blocker is reachability: if the data
		// survives somewhere beyond the partition, waiting for a heal can
		// still beat the remote fallback. If the shards are truly gone
		// (whole replica group wiped), go remote immediately.
		delay := s.opts.RetryBase * simclock.Duration(int64(1)<<uint(attempt))
		s.log.Add("root-agent", "retry-backoff",
			"no reachable consistent version (attempt %d/%d); retrying in %v",
			attempt+1, s.opts.RetryMax, delay)
		s.rootTrack.Instant(trace.CatAgent, "retry-backoff")
		s.engine.After(delay, func() {
			s.attemptRetrieval(failed, hardware, attempt+1)
		})
		return
	}
	version := rec.Version
	var retrieval simclock.Duration
	var source string
	switch rec.Tier {
	case strategy.TierGPU:
		// Fast tier: every rank resumes from its own device-resident
		// snapshot of the current iteration — no bytes move, nothing is
		// lost, and the CPU-memory checkpoints stay as they are.
		source = "gpu"
	case strategy.TierMemory:
		plan := rec.Plan
		// Partition suspects keep their own CPU memory: nothing can be
		// delivered to them now, and nothing needs to be — they rejoin
		// with their local copy when the partition heals. A machine that
		// died undetected during this recovery can't take delivery either;
		// it gets its own recovery wave. Only the rest are fetched.
		active := plan[:0:0]
		for _, r := range plan {
			if !s.partitioned[r.Rank] && s.cluster.Machine(r.Rank).Healthy() {
				active = append(active, r)
			}
		}
		plan = active
		// Peer fetches run in parallel; a peer serving several fetches
		// serializes them on its NIC, and a straggling peer serves them at
		// a fraction of its bandwidth.
		perPeer := make(map[int]int)
		anyPeer := false
		for _, r := range plan {
			if r.Source == ckpt.SourceRemoteCPU {
				perPeer[r.Peer]++
				anyPeer = true
			}
		}
		for peer, c := range perPeer {
			t := simclock.Duration(float64(c) * s.ckpt.ShardBytes() / (s.opts.RetrievalPeerBandwidth * s.stragglerFactor(peer)))
			if t > retrieval {
				retrieval = t
			}
			s.retrievedBytes += float64(c) * s.ckpt.ShardBytes()
		}
		source = "local"
		if anyPeer {
			source = "peer"
		}
		// Some survivors may hold generations newer than the common
		// version (staggered commits); drop them so the cluster resumes
		// consistently, then restore replaced machines' local replicas.
		s.ckpt.RollbackTo(version)
		if s.data != nil {
			// Move and fingerprint-verify the real shard bytes before
			// registering the restored replicas.
			if err := s.data.Recover(s.ckpt, plan, version); err != nil {
				panic(fmt.Sprintf("agent: data-plane recovery: %v", err))
			}
			if err := s.data.VerifyConsistent(version); err != nil {
				panic(fmt.Sprintf("agent: post-recovery verification: %v", err))
			}
		}
		for _, r := range plan {
			if r.Source == ckpt.SourceRemoteCPU {
				s.ckpt.Begin(r.Rank, r.Rank, version)
				s.ckpt.Receive(r.Rank, r.Rank, version, s.ckpt.ShardBytes())
				s.ckpt.Commit(r.Rank, r.Rank, version, 0)
			}
		}
	default:
		// §6.2 case 2: a whole replica group died (or its survivors stayed
		// unreachable through every retry) — everyone reloads the newest
		// remote checkpoint through the store's aggregate bandwidth.
		if attempt > 0 {
			s.log.Add("root-agent", "fallback-remote",
				"peer retrieval exhausted after %d attempts; falling back to persistent storage", attempt)
		}
		if s.data != nil {
			version = s.data.RemoteIteration()
		}
		total := float64(s.placement.N) * s.ckpt.ShardBytes()
		retrieval = simclock.Duration(total / s.opts.RetrievalRemoteBandwidth)
		s.retrievedBytes += total
		source = "remote"
		// The survivors' CPU-memory checkpoints are inconsistent with the
		// remote version; drop anything newer and reseed local replicas.
		s.ckpt.RollbackTo(version)
		if s.data != nil {
			if err := s.data.Recover(s.ckpt, s.ckpt.PersistentPlan(), version); err != nil {
				panic(fmt.Sprintf("agent: remote data-plane recovery: %v", err))
			}
			if err := s.data.VerifyConsistent(version); err != nil {
				panic(fmt.Sprintf("agent: post-fallback verification: %v", err))
			}
		}
		for rank := 0; rank < s.placement.N; rank++ {
			// The remote reload reaches live machines only: a rank that died
			// undetected during this recovery stays empty and is reseeded by
			// its own recovery wave once the detector catches up.
			if !s.cluster.Machine(rank).Healthy() {
				continue
			}
			if _, ok := s.ckpt.Completed(rank, rank); !ok {
				s.ckpt.Begin(rank, rank, version)
				s.ckpt.Receive(rank, rank, version, s.ckpt.ShardBytes())
				s.ckpt.Commit(rank, rank, version, 0)
			}
		}
	}
	// Delta-based strategies pay a replay cost reconstructing full state
	// from base + deltas, on top of moving the bytes.
	retrieval += rec.ReplayTime
	rtvStart := s.engine.Now()
	s.engine.After(retrieval, func() {
		if s.rootTrack.Enabled() {
			s.rootTrack.SpanArgs(trace.CatAgent, "retrieve", rtvStart, s.engine.Now(),
				fmt.Sprintf("source=%s version=%d", source, version))
		}
		s.log.Add("root-agent", "retrieved", "version %d from %s in %v", version, source, retrieval)
		wuStart := s.engine.Now()
		s.engine.After(s.opts.WarmupTime, func() {
			s.rootTrack.Span(trace.CatAgent, "warmup", wuStart, s.engine.Now())
			// Roll back any progress past the recovered version and
			// restart agents on the failed machines.
			lostIters := s.iteration - version
			if lostIters < 0 {
				lostIters = 0
			}
			if version < s.iteration {
				s.ckpt.RollbackTo(version)
			}
			s.iteration = version
			for _, rank := range failed {
				if s.partitioned[rank] {
					// Still unreachable: it rejoins when the partition
					// heals, not before.
					continue
				}
				w := s.workers[rank]
				if w.alive {
					// A partition suspect that healed mid-recovery: the
					// process never died, it just needs its lease back.
					s.refreshLease(w)
					continue
				}
				inc := w.incarnation
				if hardware[rank] {
					inc++
				}
				s.startWorker(rank, inc)
			}
			s.recovering = false
			s.recoveries++
			s.recordRecovery(failed, source, version, lostIters)
			ev := s.wastedEvents[len(s.wastedEvents)-1]
			s.strategy.OnRecovered(strategy.Outcome{
				At:             ev.Resumed,
				Source:         ev.Source,
				Version:        ev.Version,
				LostIterations: ev.LostIterations,
				TLost:          ev.TLost,
				TRecovery:      ev.TRecovery,
				Hardware:       len(hardware) > 0,
			})
			s.observeHealth()
			s.log.Add("root-agent", "recovery-complete", "resumed at iteration %d", version)
			s.rootTrack.End() // closes the "recovery" span from beginRecovery
			// The root itself may have been among the failed; ensure a
			// root exists and training restarts.
			if _, ok := s.election.Leader(); !ok {
				s.promoteRoot()
			}
			s.scheduleIteration()
			s.scheduleSweep()
		})
	})
}
