package agent

import (
	"strings"
	"testing"

	"gemini/internal/ckpt"
	"gemini/internal/cloud"
	"gemini/internal/cluster"
	"gemini/internal/failure"
	"gemini/internal/placement"
	"gemini/internal/simclock"
	"gemini/internal/trace"
)

const iterTime = 60 * simclock.Second

type fixture struct {
	engine *simclock.Engine
	clus   *cluster.Cluster
	ck     *ckpt.Engine
	op     *cloud.Operator
	sys    *System
	log    *trace.Log
}

func newFixture(t *testing.T, n, m int, cloudCfg cloud.Config) *fixture {
	t.Helper()
	engine := simclock.NewEngine()
	clus := cluster.MustNew(n, cluster.MustInstance("p4d.24xlarge"), engine.Now)
	ck := ckpt.MustNewEngine(placement.MustMixed(n, m), 75e9)
	op := cloud.MustNewOperator(engine, cloudCfg)
	log := trace.NewLog(engine.Now)
	sys, err := NewSystem(engine, clus, ck, op, DefaultOptions(iterTime), log)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return &fixture{engine: engine, clus: clus, ck: ck, op: op, sys: sys, log: log}
}

func allHealthy(f *fixture) func(int) bool {
	return func(rank int) bool { return f.clus.Machine(rank).Healthy() }
}

func TestHealthyTrainingAdvances(t *testing.T) {
	f := newFixture(t, 4, 2, cloud.DefaultConfig())
	f.sys.Start()
	f.engine.Run(simclock.Time(10*iterTime + 5))
	if got := f.sys.Iteration(); got != 10 {
		t.Fatalf("iteration %d after 10 iteration times, want 10", got)
	}
	v, ok := f.ck.ConsistentVersion(allHealthy(f))
	if !ok || v != 10 {
		t.Fatalf("consistent version %d/%v, want 10", v, ok)
	}
	if f.sys.RootRank() != 0 {
		t.Fatalf("root rank %d, want 0", f.sys.RootRank())
	}
	if f.sys.Recoveries() != 0 {
		t.Fatal("recoveries counted without failures")
	}
}

func TestSoftwareFailureRecoversFromLocal(t *testing.T) {
	f := newFixture(t, 4, 2, cloud.DefaultConfig())
	f.sys.Start()
	f.engine.At(simclock.Time(5*iterTime+10), func() {
		f.sys.InjectFailure(2, cluster.SoftwareFailed)
	})
	f.engine.Run(simclock.Time(30 * iterTime))
	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", f.sys.Recoveries())
	}
	// Detection happened within lease TTL + check interval.
	det, ok := f.log.Last("failure-detected")
	if !ok {
		t.Fatal("no detection event")
	}
	lag := det.At.Sub(simclock.Time(5*iterTime + 10))
	if lag > f.sys.opts.LeaseTTL+2*f.sys.opts.CheckInterval {
		t.Fatalf("detection lag %v exceeds lease TTL + checks", lag)
	}
	// Recovery resumed at iteration 5 (the last committed checkpoint).
	rec, ok := f.log.Last("recovery-complete")
	if !ok {
		t.Fatal("no recovery-complete event")
	}
	if !strings.Contains(rec.Detail, "iteration 5") {
		t.Fatalf("recovery detail %q, want resume at iteration 5", rec.Detail)
	}
	// Software recovery retrieves locally — no replacement events.
	if evs := f.log.Filter("replaced"); len(evs) != 0 {
		t.Fatalf("software failure triggered %d replacements", len(evs))
	}
	ret, _ := f.log.Last("retrieved")
	if !strings.Contains(ret.Detail, "from local") {
		t.Fatalf("retrieval detail %q, want local source", ret.Detail)
	}
	// Total downtime ≈ detection + serialization + warmup ≈ 7 minutes.
	down := rec.At.Sub(det.At)
	if down < 5*simclock.Minute || down > 9*simclock.Minute {
		t.Fatalf("software recovery took %v, want ≈7 min (§7.3)", down)
	}
	// Training continued after recovery.
	if f.sys.Iteration() <= 5 {
		t.Fatalf("training did not resume: iteration %d", f.sys.Iteration())
	}
	if !f.sys.Training() {
		t.Fatal("system not training after recovery")
	}
}

func TestHardwareFailureReplacesAndFetchesFromPeer(t *testing.T) {
	f := newFixture(t, 4, 2, cloud.DefaultConfig())
	f.sys.Start()
	f.engine.At(simclock.Time(3*iterTime+10), func() {
		f.sys.InjectFailure(1, cluster.HardwareFailed)
	})
	f.engine.Run(simclock.Time(40 * iterTime))
	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", f.sys.Recoveries())
	}
	if evs := f.log.Filter("replaced"); len(evs) != 1 {
		t.Fatalf("%d replacement events, want 1", len(evs))
	}
	if f.clus.Machine(1).Incarnation != 1 {
		t.Fatalf("replacement incarnation %d, want 1", f.clus.Machine(1).Incarnation)
	}
	ret, _ := f.log.Last("retrieved")
	if !strings.Contains(ret.Detail, "from peer") {
		t.Fatalf("retrieval detail %q, want peer source", ret.Detail)
	}
	// Hardware recovery ≈ 12 min: detection + serialize + replace (4–7m)
	// + retrieval + warmup.
	det, _ := f.log.Last("failure-detected")
	rec, _ := f.log.Last("recovery-complete")
	down := rec.At.Sub(det.At)
	if down < 10*simclock.Minute || down > 15*simclock.Minute {
		t.Fatalf("hardware recovery took %v, want ≈12 min (§7.3)", down)
	}
	// The replaced machine's local replica was restored.
	if _, ok := f.ck.Completed(1, 1); !ok {
		t.Fatal("replaced machine has no restored local replica")
	}
	// Training resumed and checkpoints are consistent again.
	v, ok := f.ck.ConsistentVersion(allHealthy(f))
	if !ok || v < 3 {
		t.Fatalf("post-recovery consistent version %d/%v", v, ok)
	}
}

func TestStandbyMachinesShortenHardwareRecovery(t *testing.T) {
	slow := newFixture(t, 4, 2, cloud.DefaultConfig())
	cfgFast := cloud.DefaultConfig()
	cfgFast.Standby = 1
	fast := newFixture(t, 4, 2, cfgFast)
	for _, f := range []*fixture{slow, fast} {
		f.sys.Start()
		f.engine.At(simclock.Time(2*iterTime+10), func() {
			f.sys.InjectFailure(3, cluster.HardwareFailed)
		})
		f.engine.Run(simclock.Time(40 * iterTime))
	}
	detS, _ := slow.log.Last("failure-detected")
	recS, _ := slow.log.Last("recovery-complete")
	detF, _ := fast.log.Last("failure-detected")
	recF, _ := fast.log.Last("recovery-complete")
	slowDown := recS.At.Sub(detS.At)
	fastDown := recF.At.Sub(detF.At)
	if fastDown >= slowDown {
		t.Fatalf("standby recovery %v not faster than ASG %v", fastDown, slowDown)
	}
	if slowDown-fastDown < 3*simclock.Minute {
		t.Fatalf("standby saved only %v, want most of the 4–7 min provisioning", slowDown-fastDown)
	}
}

func TestWholeGroupLossFallsBackToRemote(t *testing.T) {
	f := newFixture(t, 4, 2, cloud.DefaultConfig())
	f.sys.SetRemoteEvery(10)
	f.sys.Start()
	// Fail both members of group {2,3} at once, long after a remote
	// checkpoint at iteration 20.
	f.engine.At(simclock.Time(25*iterTime+10), func() {
		f.sys.InjectFailure(2, cluster.HardwareFailed)
		f.sys.InjectFailure(3, cluster.HardwareFailed)
	})
	f.engine.Run(simclock.Time(60 * iterTime))
	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", f.sys.Recoveries())
	}
	ret, _ := f.log.Last("retrieved")
	if !strings.Contains(ret.Detail, "from remote") {
		t.Fatalf("retrieval detail %q, want remote fallback", ret.Detail)
	}
	rec, _ := f.log.Last("recovery-complete")
	if !strings.Contains(rec.Detail, "iteration 20") {
		t.Fatalf("recovery detail %q, want rollback to remote iteration 20", rec.Detail)
	}
	// All machines reseeded; training resumes consistently.
	v, ok := f.ck.ConsistentVersion(allHealthy(f))
	if !ok || v < 20 {
		t.Fatalf("post-fallback consistent version %d/%v", v, ok)
	}
}

func TestCrossGroupSimultaneousFailuresStayInCPUMemory(t *testing.T) {
	f := newFixture(t, 4, 2, cloud.DefaultConfig())
	f.sys.Start()
	f.engine.At(simclock.Time(5*iterTime+10), func() {
		f.sys.InjectFailure(1, cluster.HardwareFailed) // group {0,1}
		f.sys.InjectFailure(2, cluster.HardwareFailed) // group {2,3}
	})
	f.engine.Run(simclock.Time(60 * iterTime))
	ret, _ := f.log.Last("retrieved")
	if !strings.Contains(ret.Detail, "from peer") {
		t.Fatalf("retrieval detail %q, want peer recovery for cross-group failures", ret.Detail)
	}
}

func TestRootFailurePromotesNewRoot(t *testing.T) {
	f := newFixture(t, 4, 2, cloud.DefaultConfig())
	f.sys.Start()
	if f.sys.RootRank() != 0 {
		t.Fatalf("initial root %d, want 0", f.sys.RootRank())
	}
	f.engine.At(simclock.Time(4*iterTime+10), func() {
		f.sys.InjectFailure(0, cluster.HardwareFailed)
	})
	f.engine.Run(simclock.Time(60 * iterTime))
	if f.sys.RootRank() == 0 {
		t.Fatal("root rank still 0 after root machine death")
	}
	if evs := f.log.Filter("failover"); len(evs) == 0 {
		t.Fatal("no failover event recorded")
	}
	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1 (the dead ex-root)", f.sys.Recoveries())
	}
	if !f.sys.Training() {
		t.Fatal("training did not resume under the new root")
	}
	if f.clus.Machine(0).Incarnation != 1 {
		t.Fatal("ex-root machine was not replaced")
	}
}

func TestSequentialFailuresAllRecover(t *testing.T) {
	f := newFixture(t, 6, 2, cloud.DefaultConfig())
	f.sys.Start()
	kinds := []cluster.MachineState{cluster.SoftwareFailed, cluster.HardwareFailed, cluster.SoftwareFailed}
	for i, kind := range kinds {
		rank := (i*2 + 1) % 6
		at := simclock.Time((10 + 40*i)) * simclock.Time(iterTime)
		kind := kind
		f.engine.At(at+10, func() { f.sys.InjectFailure(rank, kind) })
	}
	f.engine.Run(simclock.Time(140 * iterTime))
	if f.sys.Recoveries() != 3 {
		t.Fatalf("%d recoveries, want 3", f.sys.Recoveries())
	}
	if !f.sys.Training() {
		t.Fatal("training stopped")
	}
	if f.sys.Iteration() < 100 {
		t.Fatalf("iteration %d, training barely progressed", f.sys.Iteration())
	}
}

func TestFailureDuringRecoveryHandledAfterward(t *testing.T) {
	// A second machine dies while the first recovery is in flight; the
	// root agent must finish the first recovery and then detect and
	// recover the second failure.
	f := newFixture(t, 6, 2, cloud.DefaultConfig())
	f.sys.Start()
	f.engine.At(simclock.Time(5*iterTime+10), func() {
		f.sys.InjectFailure(2, cluster.HardwareFailed)
	})
	// ~2 minutes later, mid-recovery (serialization + replacement take
	// longer than that), another machine dies.
	f.engine.At(simclock.Time(5*iterTime+10+120), func() {
		f.sys.InjectFailure(4, cluster.SoftwareFailed)
	})
	f.engine.Run(simclock.Time(80 * iterTime))
	if f.sys.Recoveries() != 2 {
		t.Fatalf("%d recoveries, want 2 (sequential handling)", f.sys.Recoveries())
	}
	if !f.sys.Training() {
		t.Fatal("training did not resume after cascaded failures")
	}
	if !f.clus.Machine(2).Healthy() || !f.clus.Machine(4).Healthy() {
		t.Fatal("machines not healthy after recovery")
	}
}

func TestSimultaneousFailuresGroupIntoOneRecovery(t *testing.T) {
	// Two machines die within one heartbeat window (different groups):
	// the root detects both missing heartbeats in one health check and
	// runs a single recovery covering both.
	f := newFixture(t, 6, 2, cloud.DefaultConfig())
	f.sys.Start()
	f.engine.At(simclock.Time(5*iterTime+10), func() {
		f.sys.InjectFailure(1, cluster.HardwareFailed)
		f.sys.InjectFailure(3, cluster.HardwareFailed)
	})
	f.engine.Run(simclock.Time(60 * iterTime))
	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1 grouped recovery", f.sys.Recoveries())
	}
	if evs := f.log.Filter("replaced"); len(evs) != 2 {
		t.Fatalf("%d replacements, want 2", len(evs))
	}
	det := f.log.Filter("failure-detected")
	if len(det) != 1 || !strings.Contains(det[0].Detail, "hardware: 2") {
		t.Fatalf("detection events %+v, want one covering both", det)
	}
}

func TestOptionsValidation(t *testing.T) {
	engine := simclock.NewEngine()
	clus := cluster.MustNew(4, cluster.MustInstance("p4d.24xlarge"), engine.Now)
	ck := ckpt.MustNewEngine(placement.MustMixed(4, 2), 1)
	op := cloud.MustNewOperator(engine, cloud.DefaultConfig())
	bad := []func(*Options){
		func(o *Options) { o.HeartbeatInterval = 0 },
		func(o *Options) { o.LeaseTTL = o.HeartbeatInterval },
		func(o *Options) { o.CheckInterval = -1 },
		func(o *Options) { o.IterationTime = 0 },
		func(o *Options) { o.RetrievalPeerBandwidth = 0 },
		func(o *Options) { o.RetrievalRemoteBandwidth = 0 },
		func(o *Options) { o.SerializeTime = -1 },
		func(o *Options) { o.WarmupTime = -1 },
	}
	for i, mutate := range bad {
		opts := DefaultOptions(iterTime)
		mutate(&opts)
		if _, err := NewSystem(engine, clus, ck, op, opts, nil); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
	// Mismatched sizes rejected.
	small := ckpt.MustNewEngine(placement.MustMixed(3, 1), 1)
	if _, err := NewSystem(engine, clus, small, op, DefaultOptions(iterTime), nil); err == nil {
		t.Error("mismatched cluster/placement accepted")
	}
	sys, err := NewSystem(engine, clus, ck, op, DefaultOptions(iterTime), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("SetRemoteEvery(0) did not panic")
		}
	}()
	sys.SetRemoteEvery(0)
}

func TestLongevityManyRandomFailures(t *testing.T) {
	// A multi-day run with a Poisson failure schedule: every failure —
	// software or hardware, sometimes near-simultaneous, sometimes
	// hitting the root — must be detected and recovered, and training
	// must keep making progress throughout.
	f := newFixture(t, 8, 2, cloud.DefaultConfig())
	f.sys.SetRemoteEvery(50)
	f.sys.Start()
	horizon := 3 * simclock.Day
	model := failure.Model{PerInstancePerDay: 0.5, HardwareFraction: 0.5} // 4 failures/day on 8 machines
	schedule, err := model.Generate(8, horizon, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(schedule) < 5 {
		t.Fatalf("schedule too light for a longevity test: %d events", len(schedule))
	}
	for _, ev := range schedule {
		ev := ev
		f.engine.At(ev.At, func() { f.sys.InjectFailure(ev.Rank, ev.Kind) })
	}
	f.engine.Run(simclock.Time(horizon))

	if !f.sys.Training() && f.sys.Recoveries() == 0 {
		t.Fatal("system wedged without any recovery")
	}
	if f.sys.Recoveries() == 0 {
		t.Fatal("no recoveries despite injected failures")
	}
	// Expected productive iterations: ≈ horizon/iterTime minus recovery
	// downtime; demand at least half to prove sustained progress.
	minIters := int64(horizon.Seconds() / iterTime.Seconds() / 2)
	if f.sys.Iteration() < minIters {
		t.Fatalf("only %d iterations over 3 days with %d recoveries, want ≥ %d",
			f.sys.Iteration(), f.sys.Recoveries(), minIters)
	}
	// A root must exist and all machines must be healthy at the end
	// (unless a failure landed in the final recovery window).
	if f.sys.RootRank() < 0 {
		t.Fatal("no root at the end of the run")
	}
	t.Logf("longevity: %d failures injected, %d recoveries, iteration %d",
		len(schedule), f.sys.Recoveries(), f.sys.Iteration())
}

func TestInjectFailureIdempotent(t *testing.T) {
	f := newFixture(t, 4, 2, cloud.DefaultConfig())
	f.sys.Start()
	f.engine.At(100, func() {
		f.sys.InjectFailure(1, cluster.SoftwareFailed)
		f.sys.InjectFailure(1, cluster.SoftwareFailed) // no-op
	})
	f.engine.Run(simclock.Time(30 * iterTime))
	if f.sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries after duplicate injection, want 1", f.sys.Recoveries())
	}
}
