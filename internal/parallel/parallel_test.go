package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		const n = 500
		var hits [n]atomic.Int32
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
	ran := false
	ForEach(4, 1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("fn(0) not called for n=1")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestForEachErrLowestIndexWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	// Run repeatedly: whichever of index 5 / 95 fails first in wall time,
	// the reported error must always be index 5's.
	for trial := 0; trial < 20; trial++ {
		err := ForEachErr(context.Background(), 8, 100, func(i int) error {
			switch i {
			case 5:
				return errLow
			case 95:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: got %v, want %v", trial, err, errLow)
		}
	}
}

func TestForEachErrContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEachErr(ctx, 4, 1000, func(i int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran.Load() == 1000 {
		t.Fatal("cancelled run still executed every index")
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		out, err := Map(context.Background(), workers, 64, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestSumInt64DeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(i int) int64 { return int64(i)*7 + 3 }
	want := SumInt64(1, 1000, fn)
	for _, workers := range []int{2, 4, 16} {
		if got := SumInt64(workers, 1000, fn); got != want {
			t.Fatalf("workers=%d: sum %d, want %d", workers, got, want)
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}

// Hooks observe every successfully completed index exactly once, from
// any worker count, and Done never fires for a failed index.
func TestForEachErrHooksCountCompletions(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var started, done atomic.Int64
		hooks := RunHooks{
			Started: func(int) { started.Add(1) },
			Done:    func(int) { done.Add(1) },
		}
		err := ForEachErrHooks(context.Background(), workers, 40, hooks, func(i int) error {
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if started.Load() != 40 || done.Load() != 40 {
			t.Fatalf("workers=%d: started=%d done=%d, want 40/40", workers, started.Load(), done.Load())
		}
	}
}

func TestForEachErrHooksSkipDoneOnError(t *testing.T) {
	boom := errors.New("boom")
	var done atomic.Int64
	var doneFailing atomic.Bool
	hooks := RunHooks{Done: func(i int) {
		done.Add(1)
		if i == 7 {
			doneFailing.Store(true)
		}
	}}
	err := ForEachErrHooks(context.Background(), 4, 20, hooks, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if doneFailing.Load() {
		t.Fatal("Done fired for the failing index")
	}
	if done.Load() >= 20 {
		t.Fatalf("done=%d, want < 20 (failing index must not be counted)", done.Load())
	}
}

// The zero RunHooks must not change ForEachErr behaviour or cost.
func TestForEachErrZeroHooksInline(t *testing.T) {
	var calls int
	if err := ForEachErrHooks(context.Background(), 1, 5, RunHooks{}, func(i int) error {
		calls++
		return nil
	}); err != nil || calls != 5 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}
