// Package parallel is the repository's deterministic parallel execution
// layer: a bounded, context-aware, panic-safe worker pool used by the
// Monte-Carlo estimators (internal/placement), the §7 experiment runner
// (internal/experiments, cmd/benchtables), and the checkpoint codec
// (internal/tensor).
//
// Determinism discipline: callers shard their work by a scheme that does
// not depend on the worker count (fixed shard sizes, per-shard PRNG seeds
// of the form seed+shardIndex) and write each shard's result into its own
// slot of a pre-sized slice. The pool then only decides *when* a shard
// runs, never *what* it computes, so results are bit-identical whether
// the pool runs with 1 worker or 64.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the default worker count: GOMAXPROCS, the number of
// OS threads Go will actually run simultaneously.
func Workers() int { return runtime.GOMAXPROCS(0) }

// ForEach runs fn(0) … fn(n-1) across at most workers goroutines and
// waits for all of them. workers ≤ 0 means Workers(). With one worker
// (or n ≤ 1) it runs inline on the calling goroutine — no goroutines,
// no allocations. A panic in any fn is re-raised on the caller.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					// Poison the counter so remaining workers drain.
					next.Store(int64(n))
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}

// RunHooks observes pool lifecycle without influencing it: Started
// fires just before fn(i) runs, Done just after it returns nil. Either
// hook may be nil. Hooks are called from worker goroutines, so they
// must be concurrency-safe (obs.Progress is the intended sink); they
// carry no values out of fn, keeping the determinism contract intact —
// the hooks can count and time work, never reorder it.
type RunHooks struct {
	Started func(i int)
	Done    func(i int)
}

func (h RunHooks) started(i int) {
	if h.Started != nil {
		h.Started(i)
	}
}

func (h RunHooks) done(i int) {
	if h.Done != nil {
		h.Done(i)
	}
}

// ForEachErr is ForEach with context cancellation and error propagation:
// it stops handing out new indices once the context is done or any fn
// has failed, waits for in-flight calls, and returns the error of the
// lowest-numbered failing index (so the reported error is deterministic
// regardless of scheduling), or the context's error if it fired first.
func ForEachErr(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForEachErrHooks(ctx, workers, n, RunHooks{}, fn)
}

// ForEachErrHooks is ForEachErr with lifecycle hooks — the campaign
// runner threads its live progress sink through here. The zero RunHooks
// adds no calls and no allocations to the inline (workers == 1) path.
func ForEachErrHooks(ctx context.Context, workers, n int, hooks RunHooks, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			hooks.started(i)
			if err := fn(i); err != nil {
				return err
			}
			hooks.done(i)
		}
		return nil
	}
	var (
		next   atomic.Int64
		halted atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		errIdx = -1
		errV   error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !halted.Load() {
				if ctx.Err() != nil {
					halted.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				hooks.started(i)
				if err := fn(i); err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, errV = i, err
					}
					mu.Unlock()
					halted.Store(true)
					return
				}
				hooks.done(i)
			}
		}()
	}
	wg.Wait()
	if errV != nil {
		return errV
	}
	return ctx.Err()
}

// Map runs fn over [0,n) with bounded workers and returns the results in
// index order. Like ForEachErr it stops early on the first error or
// context cancellation and reports the lowest failing index's error; on
// error the partial results are still returned for slots that completed.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachErr(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

// SumInt64 evaluates fn over [0,n) with bounded workers and returns the
// sum of the results. Addition is associative and commutative over
// int64, so the sum is independent of scheduling order — the primitive
// behind the sharded Monte-Carlo estimators.
func SumInt64(workers, n int, fn func(i int) int64) int64 {
	if n <= 0 {
		return 0
	}
	parts := make([]int64, n)
	ForEach(workers, n, func(i int) { parts[i] = fn(i) })
	var total int64
	for _, v := range parts {
		total += v
	}
	return total
}
