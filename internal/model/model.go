// Package model describes the transformer language models GEMINI is
// evaluated on (Table 2 of the paper), derives their parameter counts and
// model-state sizes, and computes the per-GPU / per-machine shards that
// ZeRO-3 training produces. Checkpoint sizes — the quantity everything in
// GEMINI revolves around — come from here.
package model

import (
	"fmt"
	"math"
)

// Family is a model architecture family from Table 2.
type Family string

const (
	GPT2    Family = "GPT-2"
	BERT    Family = "BERT"
	RoBERTa Family = "RoBERTa"
)

// Config is one row of Table 2 plus the training hyperparameters used in
// §7.1 (sequence length 512, vocabulary 50265, micro-batch 8, Adam,
// mixed precision with activation recomputation).
type Config struct {
	Family         Family
	NominalParams  int64 // the "10B" in "GPT-2 10B", in parameters
	HiddenSize     int
	Intermediate   int
	Layers         int
	AttentionHeads int
	VocabSize      int
	SeqLen         int
	MicroBatch     int
}

// Name returns the paper's name for the configuration, e.g. "GPT-2 100B".
func (c Config) Name() string {
	return fmt.Sprintf("%s %s", c.Family, FormatParams(c.NominalParams))
}

// FormatParams renders a parameter count the way the paper does (10B, 100B).
func FormatParams(p int64) string {
	switch {
	case p >= 1e9:
		return fmt.Sprintf("%gB", float64(p)/1e9)
	case p >= 1e6:
		return fmt.Sprintf("%gM", float64(p)/1e6)
	default:
		return fmt.Sprintf("%d", p)
	}
}

// Validate checks that the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.HiddenSize <= 0:
		return fmt.Errorf("model: hidden size must be positive, got %d", c.HiddenSize)
	case c.Intermediate <= 0:
		return fmt.Errorf("model: intermediate size must be positive, got %d", c.Intermediate)
	case c.Layers <= 0:
		return fmt.Errorf("model: layer count must be positive, got %d", c.Layers)
	case c.AttentionHeads <= 0:
		return fmt.Errorf("model: attention heads must be positive, got %d", c.AttentionHeads)
	case c.HiddenSize%c.AttentionHeads != 0:
		return fmt.Errorf("model: hidden size %d not divisible by %d heads", c.HiddenSize, c.AttentionHeads)
	case c.NominalParams <= 0:
		return fmt.Errorf("model: nominal parameter count must be positive, got %d", c.NominalParams)
	case c.VocabSize <= 0 || c.SeqLen <= 0 || c.MicroBatch <= 0:
		return fmt.Errorf("model: vocab/seq/batch must be positive, got %d/%d/%d", c.VocabSize, c.SeqLen, c.MicroBatch)
	}
	return nil
}

// DerivedParams counts parameters from the architecture: per transformer
// layer 4·h² attention (Q,K,V,O) + 2·h·intermediate MLP + biases and
// norms, plus token and position embeddings. Table 2's nominal sizes are
// rounded marketing numbers; this is the exact count the config implies.
func (c Config) DerivedParams() int64 {
	h := int64(c.HiddenSize)
	inter := int64(c.Intermediate)
	perLayer := 4*h*h + 4*h + // attention projections + biases
		2*h*inter + h + inter + // MLP weights + biases
		4*h // two layer norms (scale + shift)
	emb := int64(c.VocabSize)*h + int64(c.SeqLen)*h
	return int64(c.Layers)*perLayer + emb + 2*h // final layer norm
}

// Bytes-per-parameter constants for mixed-precision Adam training under
// ZeRO-3 (Rajbhandari et al.): the checkpointed model states are the fp32
// master parameters plus the two fp32 Adam moments (12 bytes/param). The
// resident GPU model states additionally hold fp16 parameters and fp16
// gradients (4 more bytes/param). These reproduce the paper's numbers:
// GPT-2 100B ⇒ 1.2 TB checkpoint ⇒ 9.4 GB per GPU on 128 GPUs.
const (
	CheckpointBytesPerParam = 12
	ResidentBytesPerParam   = 16
)

// CheckpointBytes returns the size of a full model-state checkpoint
// (fp32 master weights + Adam moments), using the nominal parameter count
// so sizes match the paper's reported figures.
func (c Config) CheckpointBytes() float64 {
	return float64(c.NominalParams) * CheckpointBytesPerParam
}

// ResidentStateBytes returns the GPU-resident model state size (adds fp16
// params and grads to the checkpointed states).
func (c Config) ResidentStateBytes() float64 {
	return float64(c.NominalParams) * ResidentBytesPerParam
}

// FP16ParamBytes returns the bytes of fp16 parameters, the payload of the
// per-layer all-gathers ZeRO-3 issues during forward and backward passes.
func (c Config) FP16ParamBytes() float64 {
	return float64(c.NominalParams) * 2
}

// LayerFP16Bytes returns the fp16 parameter bytes of a single transformer
// layer — the unit of ZeRO-3 all-gather traffic.
func (c Config) LayerFP16Bytes() float64 {
	return c.FP16ParamBytes() / float64(c.Layers)
}

// FLOPsPerIteration estimates the compute of one training iteration for
// one data-parallel rank: 6·P·tokens for forward+backward, plus one extra
// forward (2·P·tokens) for activation recomputation, i.e. 8·P·tokens.
func (c Config) FLOPsPerIteration() float64 {
	tokens := float64(c.SeqLen * c.MicroBatch)
	return 8 * float64(c.NominalParams) * tokens
}

// Sharding describes how ZeRO-3 spreads model states over a cluster.
type Sharding struct {
	Machines    int
	GPUsPerNode int
}

// Validate checks the sharding shape.
func (s Sharding) Validate() error {
	if s.Machines <= 0 || s.GPUsPerNode <= 0 {
		return fmt.Errorf("model: sharding needs positive machines and GPUs, got %d×%d", s.Machines, s.GPUsPerNode)
	}
	return nil
}

// GPUs returns the world size.
func (s Sharding) GPUs() int { return s.Machines * s.GPUsPerNode }

// ShardBytesPerGPU returns each GPU's slice of the checkpoint under
// ZeRO-3's flat partitioning. The last rank may hold slightly fewer bytes;
// the simulator uses the ceiling, which is what capacity planning needs.
func (s Sharding) ShardBytesPerGPU(c Config) float64 {
	return math.Ceil(c.CheckpointBytes() / float64(s.GPUs()))
}

// ShardBytesPerMachine returns each machine's slice of the checkpoint —
// the unit GEMINI replicates into CPU memory.
func (s Sharding) ShardBytesPerMachine(c Config) float64 {
	return math.Ceil(c.CheckpointBytes() / float64(s.Machines))
}

// ResidentBytesPerGPU returns each GPU's resident model-state bytes.
func (s Sharding) ResidentBytesPerGPU(c Config) float64 {
	return math.Ceil(c.ResidentStateBytes() / float64(s.GPUs()))
}

// Table2 returns the eight model configurations of Table 2, in paper order.
func Table2() []Config {
	base := func(f Family, nominal int64, hidden, inter, layers, heads int) Config {
		return Config{
			Family: f, NominalParams: nominal,
			HiddenSize: hidden, Intermediate: inter, Layers: layers, AttentionHeads: heads,
			VocabSize: 50265, SeqLen: 512, MicroBatch: 8,
		}
	}
	return []Config{
		base(GPT2, 10e9, 2560, 10240, 46, 40),
		base(GPT2, 20e9, 5120, 20480, 64, 40),
		base(GPT2, 40e9, 5120, 20480, 128, 40),
		base(RoBERTa, 40e9, 5120, 20480, 128, 40),
		base(BERT, 40e9, 5120, 20480, 128, 40),
		base(GPT2, 100e9, 8192, 32768, 124, 64),
		base(RoBERTa, 100e9, 8192, 32768, 124, 64),
		base(BERT, 100e9, 8192, 32768, 124, 64),
	}
}

// ByName returns the Table 2 config with the given paper name
// (e.g. "GPT-2 100B").
func ByName(name string) (Config, error) {
	for _, c := range Table2() {
		if c.Name() == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("model: no Table 2 config named %q", name)
}

// MustByName is ByName for statically-known names.
func MustByName(name string) Config {
	c, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return c
}
