package model

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTable2HasEightRows(t *testing.T) {
	rows := Table2()
	if len(rows) != 8 {
		t.Fatalf("Table 2 has %d rows, want 8", len(rows))
	}
	for _, c := range rows {
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name(), err)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	cases := []struct {
		name                  string
		hidden, inter, layers int
		heads                 int
	}{
		{"GPT-2 10B", 2560, 10240, 46, 40},
		{"GPT-2 20B", 5120, 20480, 64, 40},
		{"GPT-2 40B", 5120, 20480, 128, 40},
		{"RoBERTa 40B", 5120, 20480, 128, 40},
		{"BERT 40B", 5120, 20480, 128, 40},
		{"GPT-2 100B", 8192, 32768, 124, 64},
		{"RoBERTa 100B", 8192, 32768, 124, 64},
		{"BERT 100B", 8192, 32768, 124, 64},
	}
	for _, want := range cases {
		c, err := ByName(want.name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", want.name, err)
		}
		if c.HiddenSize != want.hidden || c.Intermediate != want.inter ||
			c.Layers != want.layers || c.AttentionHeads != want.heads {
			t.Errorf("%s config %+v does not match paper row %+v", want.name, c, want)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("LLaMA 7B"); err == nil {
		t.Fatal("unknown model accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName on unknown model did not panic")
		}
	}()
	MustByName("nope")
}

func TestCheckpointSizeMatchesPaperGPT2100B(t *testing.T) {
	// §5.2: "the checkpoint size of GPT2-100B on each GPU is 9.4GB"
	// with 16 machines × 8 GPUs.
	c := MustByName("GPT-2 100B")
	s := Sharding{Machines: 16, GPUsPerNode: 8}
	perGPU := s.ShardBytesPerGPU(c)
	gib := perGPU / (1 << 30)
	if math.Abs(gib-8.7) > 0.2 { // 1.2e12/128 bytes = 8.73 GiB = 9.375 GB
		t.Errorf("per-GPU shard %.2f GiB, want ≈8.7 GiB", gib)
	}
	gb := perGPU / 1e9
	if math.Abs(gb-9.375) > 0.1 {
		t.Errorf("per-GPU shard %.2f GB, want ≈9.4 GB", gb)
	}
}

func TestDerivedParamsCloseToNominalFor100B(t *testing.T) {
	// The 100B configs follow the standard 12·h²·L scaling, so the derived
	// count should land within a few percent of nominal.
	c := MustByName("GPT-2 100B")
	derived := float64(c.DerivedParams())
	if ratio := derived / float64(c.NominalParams); ratio < 0.95 || ratio > 1.1 {
		t.Errorf("derived/nominal = %.3f, want ≈1 for 100B config", ratio)
	}
}

func TestDerivedParamsPositiveAndMonotone(t *testing.T) {
	small := Config{Family: GPT2, NominalParams: 1, HiddenSize: 8, Intermediate: 32,
		Layers: 2, AttentionHeads: 2, VocabSize: 100, SeqLen: 16, MicroBatch: 1}
	big := small
	big.Layers = 4
	if small.DerivedParams() <= 0 {
		t.Fatal("derived params not positive")
	}
	if big.DerivedParams() <= small.DerivedParams() {
		t.Fatal("more layers did not increase parameter count")
	}
}

func TestShardingMath(t *testing.T) {
	c := MustByName("GPT-2 10B")
	s := Sharding{Machines: 4, GPUsPerNode: 8}
	if s.GPUs() != 32 {
		t.Fatalf("GPUs = %d, want 32", s.GPUs())
	}
	total := c.CheckpointBytes()
	perMachine := s.ShardBytesPerMachine(c)
	perGPU := s.ShardBytesPerGPU(c)
	if perMachine < total/4 || perMachine > total/4+1 {
		t.Errorf("per-machine shard %v, want ≈%v", perMachine, total/4)
	}
	if perGPU < total/32 || perGPU > total/32+1 {
		t.Errorf("per-GPU shard %v, want ≈%v", perGPU, total/32)
	}
	if rb := s.ResidentBytesPerGPU(c); rb < perGPU {
		t.Errorf("resident bytes %v smaller than checkpoint shard %v", rb, perGPU)
	}
}

func TestShardingValidate(t *testing.T) {
	if err := (Sharding{Machines: 0, GPUsPerNode: 8}).Validate(); err == nil {
		t.Error("zero machines accepted")
	}
	if err := (Sharding{Machines: 2, GPUsPerNode: 0}).Validate(); err == nil {
		t.Error("zero GPUs accepted")
	}
	if err := (Sharding{Machines: 16, GPUsPerNode: 8}).Validate(); err != nil {
		t.Errorf("valid sharding rejected: %v", err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	good := MustByName("GPT-2 10B")
	mutations := []func(*Config){
		func(c *Config) { c.HiddenSize = 0 },
		func(c *Config) { c.Intermediate = -1 },
		func(c *Config) { c.Layers = 0 },
		func(c *Config) { c.AttentionHeads = 0 },
		func(c *Config) { c.AttentionHeads = 7 }, // not dividing hidden
		func(c *Config) { c.NominalParams = 0 },
		func(c *Config) { c.VocabSize = 0 },
		func(c *Config) { c.SeqLen = 0 },
		func(c *Config) { c.MicroBatch = 0 },
	}
	for i, mutate := range mutations {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestFormatParams(t *testing.T) {
	cases := []struct {
		p    int64
		want string
	}{
		{100e9, "100B"},
		{10e9, "10B"},
		{1.5e9, "1.5B"},
		{350e6, "350M"},
		{999, "999"},
	}
	for _, c := range cases {
		if got := FormatParams(c.p); got != c.want {
			t.Errorf("FormatParams(%d) = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestNameFormat(t *testing.T) {
	c := MustByName("BERT 100B")
	if !strings.HasPrefix(c.Name(), "BERT") || !strings.HasSuffix(c.Name(), "100B") {
		t.Errorf("Name() = %q", c.Name())
	}
}

func TestFLOPsAndBytesScales(t *testing.T) {
	c := MustByName("GPT-2 100B")
	// 8·P·tokens with 8×512 tokens.
	want := 8 * 100e9 * 8 * 512
	if got := c.FLOPsPerIteration(); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("FLOPs = %v, want %v", got, want)
	}
	if c.FP16ParamBytes() != 200e9 {
		t.Errorf("fp16 bytes = %v, want 200e9", c.FP16ParamBytes())
	}
	perLayer := c.LayerFP16Bytes()
	if math.Abs(perLayer*float64(c.Layers)-c.FP16ParamBytes()) > 1 {
		t.Errorf("layer bytes %v × %d layers != total %v", perLayer, c.Layers, c.FP16ParamBytes())
	}
}

// Property: for any sharding shape, per-GPU × GPUs covers the checkpoint
// and per-machine × machines covers it too (ceiling semantics).
func TestPropertyShardCoverage(t *testing.T) {
	c := MustByName("GPT-2 40B")
	f := func(mRaw, gRaw uint8) bool {
		m := int(mRaw%64) + 1
		g := int(gRaw%8) + 1
		s := Sharding{Machines: m, GPUsPerNode: g}
		total := c.CheckpointBytes()
		if s.ShardBytesPerGPU(c)*float64(s.GPUs()) < total {
			return false
		}
		return s.ShardBytesPerMachine(c)*float64(m) >= total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: checkpoint bytes scale linearly in nominal parameters, and the
// 12/16 bytes-per-param relationship always holds.
func TestPropertyBytesPerParam(t *testing.T) {
	f := func(pRaw uint32) bool {
		p := int64(pRaw%1e6) + 1
		c := Config{Family: GPT2, NominalParams: p, HiddenSize: 8, Intermediate: 32,
			Layers: 2, AttentionHeads: 2, VocabSize: 10, SeqLen: 4, MicroBatch: 1}
		return c.CheckpointBytes() == float64(p)*12 &&
			c.ResidentStateBytes() == float64(p)*16 &&
			c.ResidentStateBytes() > c.CheckpointBytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
