package netsim

import (
	"fmt"

	"gemini/internal/simclock"
	"gemini/internal/trace"
)

// Copier models a machine's GPU→CPU (device-to-host) copy channel. GEMINI's
// pipeline overlaps these copies with inter-machine flows (§5.2, Fig. 5d);
// the copy bandwidth on p4d instances is comparable to the network
// bandwidth (~400 Gbps), which is why unpipelined copies create bubbles
// nearly as long as the transfers themselves.
//
// Copies are served FIFO at the configured bandwidth, one at a time: a
// single DMA engine dedicated to checkpoint movement.
type Copier struct {
	engine    *simclock.Engine
	bandwidth float64 // bytes/sec
	queue     []*Copy // pending copies are queue[head:]; backing array reused
	head      int
	busy      bool
	busyTotal simclock.Duration
	busySince simclock.Time
	track     *trace.Track // nil = untraced
}

// Copy is one queued or in-flight GPU→CPU copy.
type Copy struct {
	Bytes  float64
	Label  string
	onDone func(*Copy)
	state  FlowState
}

// State returns the copy's lifecycle state (FlowStarting while queued,
// FlowActive while copying, FlowDone when complete).
func (c *Copy) State() FlowState { return c.state }

// NewCopier creates a copy channel with the given bandwidth in bytes/sec.
func NewCopier(engine *simclock.Engine, bandwidthBytesPerSec float64) (*Copier, error) {
	if bandwidthBytesPerSec <= 0 {
		return nil, fmt.Errorf("netsim: copier bandwidth must be positive, got %v", bandwidthBytesPerSec)
	}
	return &Copier{engine: engine, bandwidth: bandwidthBytesPerSec}, nil
}

// MustNewCopier is NewCopier for statically-known-good bandwidths.
func MustNewCopier(engine *simclock.Engine, bw float64) *Copier {
	c, err := NewCopier(engine, bw)
	if err != nil {
		panic(err)
	}
	return c
}

// Bandwidth returns the channel bandwidth in bytes/sec.
func (c *Copier) Bandwidth() float64 { return c.bandwidth }

// QueueLen returns the number of copies waiting or in flight.
func (c *Copier) QueueLen() int {
	n := len(c.queue) - c.head
	if c.busy {
		n++
	}
	return n
}

// Submit enqueues a copy of size bytes; onDone fires when it completes.
func (c *Copier) Submit(bytes float64, label string, onDone func(*Copy)) *Copy {
	if bytes < 0 {
		panic(fmt.Sprintf("netsim: invalid copy size %v", bytes))
	}
	cp := &Copy{Bytes: bytes, Label: label, onDone: onDone, state: FlowStarting}
	c.queue = append(c.queue, cp)
	c.kick()
	return cp
}

// CopyTime returns how long a copy of the given size takes in isolation.
func (c *Copier) CopyTime(bytes float64) simclock.Duration {
	return simclock.Duration(bytes / c.bandwidth)
}

// BusyTime returns the cumulative time the channel has spent copying.
func (c *Copier) BusyTime() simclock.Duration {
	total := c.busyTotal
	if c.busy {
		total += c.engine.Now().Sub(c.busySince)
	}
	return total
}

func (c *Copier) kick() {
	if c.busy {
		return
	}
	if c.head == len(c.queue) {
		if c.head > 0 {
			c.queue = c.queue[:0]
			c.head = 0
		}
		return
	}
	cp := c.queue[c.head]
	c.queue[c.head] = nil
	c.head++
	c.busy = true
	c.busySince = c.engine.Now()
	cp.state = FlowActive
	c.engine.After(c.CopyTime(cp.Bytes), func() {
		cp.state = FlowDone
		c.busy = false
		c.busyTotal += c.engine.Now().Sub(c.busySince)
		c.track.Span(trace.CatNetsim, cp.Label, c.busySince, c.engine.Now())
		if cp.onDone != nil {
			cb := cp.onDone
			cp.onDone = nil
			cb(cp)
		}
		c.kick()
	})
}
