// Package netsim simulates the training-cluster network: point-to-point
// flows over per-machine NICs with max-min fair bandwidth sharing, the
// α + s/B transfer-time model GEMINI uses (§5.3), per-machine GPU→CPU copy
// channels, and cost models for the collective operations that make up
// ZeRO-3 training traffic.
//
// The fluid model is what lets the interference experiments (§7.4) emerge
// rather than be assumed: when checkpoint flows overlap training flows on
// the same NIC they share bandwidth and both slow down, exactly the
// contention GEMINI's scheduler is designed to avoid.
package netsim

import (
	"fmt"
	"math"

	"gemini/internal/simclock"
)

// Config describes the fabric connecting training machines.
type Config struct {
	// EgressBytesPerSec is each machine's NIC send capacity.
	EgressBytesPerSec float64
	// IngressBytesPerSec is each machine's NIC receive capacity.
	// Zero means "same as egress".
	IngressBytesPerSec float64
	// Alpha is the per-transfer startup latency (the α in f(s) = α + s/B).
	Alpha simclock.Duration
}

func (c Config) validate() error {
	if c.EgressBytesPerSec <= 0 {
		return fmt.Errorf("netsim: egress bandwidth must be positive, got %v", c.EgressBytesPerSec)
	}
	if c.IngressBytesPerSec < 0 {
		return fmt.Errorf("netsim: ingress bandwidth must be nonnegative, got %v", c.IngressBytesPerSec)
	}
	if c.Alpha < 0 {
		return fmt.Errorf("netsim: alpha must be nonnegative, got %v", c.Alpha)
	}
	return nil
}

// FlowState is the lifecycle state of a flow.
type FlowState int

const (
	// FlowStarting means the flow is in its α startup window.
	FlowStarting FlowState = iota
	// FlowActive means the flow is transferring bytes.
	FlowActive
	// FlowDone means all bytes were delivered.
	FlowDone
	// FlowFailed means an endpoint went down before completion.
	FlowFailed
	// FlowCanceled means the flow was canceled by its owner.
	FlowCanceled
)

func (s FlowState) String() string {
	switch s {
	case FlowStarting:
		return "starting"
	case FlowActive:
		return "active"
	case FlowDone:
		return "done"
	case FlowFailed:
		return "failed"
	case FlowCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("FlowState(%d)", int(s))
	}
}

// Flow is an in-flight point-to-point transfer.
type Flow struct {
	Src, Dst int
	Label    string

	fabric    *Fabric
	bytes     float64 // total size
	remaining float64
	rate      float64 // current share, bytes/sec
	state     FlowState
	started   simclock.Time
	finished  simclock.Time
	onDone    func(*Flow)
	startEv   simclock.EventID
}

// State returns the flow's lifecycle state.
func (f *Flow) State() FlowState { return f.state }

// Bytes returns the flow's total size in bytes.
func (f *Flow) Bytes() float64 { return f.bytes }

// Remaining returns how many bytes are still to be delivered, as of the
// last fabric event.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the flow's current max-min share in bytes/sec.
func (f *Flow) Rate() float64 { return f.rate }

// StartedAt returns when the flow was submitted.
func (f *Flow) StartedAt() simclock.Time { return f.started }

// FinishedAt returns when the flow reached a terminal state; it is zero
// for flows still in flight.
func (f *Flow) FinishedAt() simclock.Time { return f.finished }

// Cancel removes the flow from the fabric without delivering remaining
// bytes. The completion callback fires with state FlowCanceled.
func (f *Flow) Cancel() {
	if f.state == FlowDone || f.state == FlowFailed || f.state == FlowCanceled {
		return
	}
	f.fabric.settle()
	f.startEv.Cancel()
	f.fabric.finishFlow(f, FlowCanceled)
	f.fabric.reschedule()
}

type node struct {
	up         bool
	egressCap  float64
	ingressCap float64
	// busy accounting for idle-time measurement
	activeFlows int
	busySince   simclock.Time
	busyTotal   simclock.Duration
}

// Fabric simulates the cluster network. It must only be used from within
// the simulation goroutine (callbacks of the same engine).
type Fabric struct {
	engine *simclock.Engine
	cfg    Config
	nodes  []*node
	flows  map[*Flow]struct{}

	// partition assigns each node a partition id; nil means fully
	// connected. Flows may only cross between nodes with equal ids.
	partition []int
	// linkFactor caps a directed link at a fraction of its endpoints'
	// NIC bandwidth; absent links are undegraded.
	linkFactor map[[2]int]float64
	// nodeFactor scales a node's effective NIC bandwidth (straggler
	// injection); nil means every node runs at full speed.
	nodeFactor []float64

	lastSettle simclock.Time
	completion simclock.EventID
}

// NewFabric creates a fabric with n machine endpoints.
func NewFabric(engine *simclock.Engine, n int, cfg Config) (*Fabric, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("netsim: fabric needs at least one node, got %d", n)
	}
	if cfg.IngressBytesPerSec == 0 {
		cfg.IngressBytesPerSec = cfg.EgressBytesPerSec
	}
	f := &Fabric{
		engine: engine,
		cfg:    cfg,
		nodes:  make([]*node, n),
		flows:  make(map[*Flow]struct{}),
	}
	for i := range f.nodes {
		f.nodes[i] = &node{up: true, egressCap: cfg.EgressBytesPerSec, ingressCap: cfg.IngressBytesPerSec}
	}
	return f, nil
}

// MustNewFabric is NewFabric for statically-known-good configs.
func MustNewFabric(engine *simclock.Engine, n int, cfg Config) *Fabric {
	f, err := NewFabric(engine, n, cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Nodes returns the number of endpoints.
func (fb *Fabric) Nodes() int { return len(fb.nodes) }

// Config returns the fabric configuration.
func (fb *Fabric) Config() Config { return fb.cfg }

// ActiveFlows returns the number of flows not yet in a terminal state.
func (fb *Fabric) ActiveFlows() int { return len(fb.flows) }

// StartFlow submits a transfer of size bytes from src to dst. After the α
// startup latency the flow competes for bandwidth under max-min fairness.
// onDone fires exactly once when the flow reaches a terminal state.
// A zero-byte flow completes after just the startup latency.
func (fb *Fabric) StartFlow(src, dst int, bytes float64, label string, onDone func(*Flow)) *Flow {
	fb.checkNode(src)
	fb.checkNode(dst)
	if bytes < 0 || math.IsNaN(bytes) || math.IsInf(bytes, 0) {
		panic(fmt.Sprintf("netsim: invalid flow size %v", bytes))
	}
	if src == dst {
		panic("netsim: flow source and destination must differ")
	}
	fl := &Flow{
		Src: src, Dst: dst, Label: label,
		fabric: fb, bytes: bytes, remaining: bytes,
		state: FlowStarting, started: fb.engine.Now(), onDone: onDone,
	}
	if !fb.nodes[src].up || !fb.nodes[dst].up || !fb.Reachable(src, dst) {
		// Fail asynchronously so callers never observe a callback during
		// StartFlow itself.
		fb.engine.After(0, func() {
			if fl.state == FlowStarting {
				fb.finishFlow(fl, FlowFailed)
			}
		})
		return fl
	}
	fl.startEv = fb.engine.After(fb.cfg.Alpha, func() {
		if fl.state != FlowStarting {
			return
		}
		// An endpoint may have failed or been partitioned away during the
		// startup window; such flows never carried a byte and fail here.
		if !fb.nodes[fl.Src].up || !fb.nodes[fl.Dst].up || !fb.Reachable(fl.Src, fl.Dst) {
			fb.finishFlow(fl, FlowFailed)
			return
		}
		fb.settle()
		fl.state = FlowActive
		fb.flows[fl] = struct{}{}
		fb.nodeActivate(fl.Src)
		fb.nodeActivate(fl.Dst)
		fb.reschedule()
	})
	return fl
}

func (fb *Fabric) checkNode(i int) {
	if i < 0 || i >= len(fb.nodes) {
		panic(fmt.Sprintf("netsim: node %d out of range [0,%d)", i, len(fb.nodes)))
	}
}

// SetNodeUp marks an endpoint healthy or failed. Taking a node down fails
// every flow that touches it.
func (fb *Fabric) SetNodeUp(i int, up bool) {
	fb.checkNode(i)
	n := fb.nodes[i]
	if n.up == up {
		return
	}
	fb.settle()
	n.up = up
	if !up {
		for fl := range fb.flows {
			if fl.Src == i || fl.Dst == i {
				fb.finishFlow(fl, FlowFailed)
			}
		}
	}
	fb.reschedule()
}

// SetNodeCapacity overrides one endpoint's egress and ingress bandwidth.
// This is how a remote persistent storage service (whose ~20 Gbps
// aggregate is far below the training NICs) joins the same fabric, so
// storage traffic and training traffic contend realistically.
func (fb *Fabric) SetNodeCapacity(i int, egressBytesPerSec, ingressBytesPerSec float64) {
	fb.checkNode(i)
	if egressBytesPerSec <= 0 || ingressBytesPerSec <= 0 {
		panic(fmt.Sprintf("netsim: node capacity must be positive, got %v/%v", egressBytesPerSec, ingressBytesPerSec))
	}
	fb.settle()
	fb.nodes[i].egressCap = egressBytesPerSec
	fb.nodes[i].ingressCap = ingressBytesPerSec
	fb.reschedule()
}

// NodeCapacity returns endpoint i's (egress, ingress) bandwidth.
func (fb *Fabric) NodeCapacity(i int) (egress, ingress float64) {
	fb.checkNode(i)
	return fb.nodes[i].egressCap, fb.nodes[i].ingressCap
}

// NodeUp reports whether endpoint i is healthy.
func (fb *Fabric) NodeUp(i int) bool {
	fb.checkNode(i)
	return fb.nodes[i].up
}

// SetPartition splits the fabric: each listed group can only talk within
// itself, and all unlisted nodes form one residual component. Active
// flows crossing a partition boundary fail immediately; flows in their
// startup window fail when the window elapses. A later call replaces the
// previous partition wholesale.
func (fb *Fabric) SetPartition(groups ...[]int) {
	part := make([]int, len(fb.nodes))
	for gi, group := range groups {
		for _, i := range group {
			fb.checkNode(i)
			if part[i] != 0 {
				panic(fmt.Sprintf("netsim: node %d listed in two partition groups", i))
			}
			part[i] = gi + 1
		}
	}
	fb.settle()
	fb.partition = part
	for fl := range fb.flows {
		if !fb.Reachable(fl.Src, fl.Dst) {
			fb.finishFlow(fl, FlowFailed)
		}
	}
	fb.reschedule()
}

// ClearPartition heals all partitions.
func (fb *Fabric) ClearPartition() {
	fb.partition = nil
}

// Reachable reports whether two endpoints can currently exchange bytes,
// considering only partitions (not node health).
func (fb *Fabric) Reachable(i, j int) bool {
	fb.checkNode(i)
	fb.checkNode(j)
	if fb.partition == nil {
		return true
	}
	return fb.partition[i] == fb.partition[j]
}

// SetLinkFactor degrades the directed link src→dst to the given fraction
// of its endpoints' NIC bandwidth. factor must be in (0, 1]; 1 removes
// the degradation.
func (fb *Fabric) SetLinkFactor(src, dst int, factor float64) {
	fb.checkNode(src)
	fb.checkNode(dst)
	if factor <= 0 || factor > 1 || math.IsNaN(factor) {
		panic(fmt.Sprintf("netsim: link factor must be in (0,1], got %v", factor))
	}
	fb.settle()
	if factor == 1 {
		delete(fb.linkFactor, [2]int{src, dst})
	} else {
		if fb.linkFactor == nil {
			fb.linkFactor = make(map[[2]int]float64)
		}
		fb.linkFactor[[2]int{src, dst}] = factor
	}
	fb.reschedule()
}

// SetNodeFactor scales endpoint i's effective NIC bandwidth — straggler
// injection. factor must be in (0, 1]; 1 restores full speed.
func (fb *Fabric) SetNodeFactor(i int, factor float64) {
	fb.checkNode(i)
	if factor <= 0 || factor > 1 || math.IsNaN(factor) {
		panic(fmt.Sprintf("netsim: node factor must be in (0,1], got %v", factor))
	}
	fb.settle()
	if fb.nodeFactor == nil {
		fb.nodeFactor = make([]float64, len(fb.nodes))
		for j := range fb.nodeFactor {
			fb.nodeFactor[j] = 1
		}
	}
	fb.nodeFactor[i] = factor
	fb.reschedule()
}

// NodeFactor returns endpoint i's current bandwidth scale.
func (fb *Fabric) NodeFactor(i int) float64 {
	fb.checkNode(i)
	if fb.nodeFactor == nil {
		return 1
	}
	return fb.nodeFactor[i]
}

// nodeScale is NodeFactor without the bounds re-check, for hot paths.
func (fb *Fabric) nodeScale(i int) float64 {
	if fb.nodeFactor == nil {
		return 1
	}
	return fb.nodeFactor[i]
}

// flowCap returns the per-flow rate ceiling imposed by link degradation,
// or +Inf when the flow's link is undegraded.
func (fb *Fabric) flowCap(fl *Flow) float64 {
	f, ok := fb.linkFactor[[2]int{fl.Src, fl.Dst}]
	if !ok {
		return math.Inf(1)
	}
	eff := math.Min(
		fb.nodes[fl.Src].egressCap*fb.nodeScale(fl.Src),
		fb.nodes[fl.Dst].ingressCap*fb.nodeScale(fl.Dst),
	)
	return f * eff
}

// BusyTime returns how long endpoint i has had at least one active flow
// (sending or receiving), up to the current instant. The network-idle
// measurements of Figures 8 and 13b subtract this from elapsed time.
func (fb *Fabric) BusyTime(i int) simclock.Duration {
	fb.checkNode(i)
	n := fb.nodes[i]
	total := n.busyTotal
	if n.activeFlows > 0 {
		total += fb.engine.Now().Sub(n.busySince)
	}
	return total
}

// ResetBusyTime zeroes the busy-time accumulator for all endpoints,
// typically at an iteration boundary.
func (fb *Fabric) ResetBusyTime() {
	now := fb.engine.Now()
	for _, n := range fb.nodes {
		n.busyTotal = 0
		if n.activeFlows > 0 {
			n.busySince = now
		}
	}
}

func (fb *Fabric) nodeActivate(i int) {
	n := fb.nodes[i]
	if n.activeFlows == 0 {
		n.busySince = fb.engine.Now()
	}
	n.activeFlows++
}

func (fb *Fabric) nodeDeactivate(i int) {
	n := fb.nodes[i]
	n.activeFlows--
	if n.activeFlows == 0 {
		n.busyTotal += fb.engine.Now().Sub(n.busySince)
	}
	if n.activeFlows < 0 {
		panic("netsim: node active-flow count went negative")
	}
}

// settle advances every active flow's remaining bytes to the current
// instant at the rates computed at the previous settle point.
func (fb *Fabric) settle() {
	now := fb.engine.Now()
	dt := now.Sub(fb.lastSettle).Seconds()
	if dt > 0 {
		for fl := range fb.flows {
			fl.remaining -= fl.rate * dt
			// Sub-byte residue is float error, not payload.
			if fl.remaining < 1e-3 {
				fl.remaining = 0
			}
		}
	}
	fb.lastSettle = now
}

func (fb *Fabric) finishFlow(fl *Flow, state FlowState) {
	if fl.state == FlowActive {
		delete(fb.flows, fl)
		fb.nodeDeactivate(fl.Src)
		fb.nodeDeactivate(fl.Dst)
	}
	fl.state = state
	fl.rate = 0
	fl.finished = fb.engine.Now()
	if fl.onDone != nil {
		cb := fl.onDone
		fl.onDone = nil
		cb(fl)
	}
}

// reschedule recomputes max-min fair rates and schedules the next flow
// completion. Flows that already hit zero remaining complete immediately.
func (fb *Fabric) reschedule() {
	fb.completion.Cancel()

	// Complete flows that already drained (can happen after settle).
	for {
		var doneFlow *Flow
		for fl := range fb.flows {
			if fl.remaining == 0 {
				doneFlow = fl
				break
			}
		}
		if doneFlow == nil {
			break
		}
		fb.finishFlow(doneFlow, FlowDone)
	}

	fb.computeRates()

	now := fb.engine.Now()
	next := simclock.Forever
	for fl := range fb.flows {
		if fl.rate <= 0 {
			continue
		}
		eta := now.Add(simclock.Duration(fl.remaining / fl.rate))
		if eta <= now {
			// The residual transfer time is below the clock's resolution
			// at this timestamp; treating it as pending would loop at the
			// same instant forever. Finish the flow now.
			fl.remaining = 0
			fb.finishFlow(fl, FlowDone)
			fb.reschedule()
			return
		}
		if eta < next {
			next = eta
		}
	}
	if next == simclock.Forever {
		return
	}
	fb.completion = fb.engine.AtPriority(next, -10, func() {
		fb.settle()
		fb.reschedule()
	})
}

// computeRates runs max-min water-filling over per-node egress and
// ingress capacities.
func (fb *Fabric) computeRates() {
	if len(fb.flows) == 0 {
		return
	}
	type cap struct {
		remaining float64
		flows     []*Flow
	}
	egress := make(map[int]*cap)
	ingress := make(map[int]*cap)
	unfrozen := make(map[*Flow]bool, len(fb.flows))
	for fl := range fb.flows {
		fl.rate = 0
		unfrozen[fl] = true
		e := egress[fl.Src]
		if e == nil {
			e = &cap{remaining: fb.nodes[fl.Src].egressCap * fb.nodeScale(fl.Src)}
			egress[fl.Src] = e
		}
		e.flows = append(e.flows, fl)
		in := ingress[fl.Dst]
		if in == nil {
			in = &cap{remaining: fb.nodes[fl.Dst].ingressCap * fb.nodeScale(fl.Dst)}
			ingress[fl.Dst] = in
		}
		in.flows = append(in.flows, fl)
	}
	countUnfrozen := func(c *cap) int {
		k := 0
		for _, fl := range c.flows {
			if unfrozen[fl] {
				k++
			}
		}
		return k
	}
	eps := 1e-6 * fb.cfg.EgressBytesPerSec
	for len(unfrozen) > 0 {
		// Find the tightest constraint: min over caps of remaining/unfrozen,
		// and min over unfrozen flows of headroom to their link cap.
		limit := math.Inf(1)
		for _, group := range []map[int]*cap{egress, ingress} {
			for _, c := range group {
				k := countUnfrozen(c)
				if k == 0 {
					continue
				}
				if share := c.remaining / float64(k); share < limit {
					limit = share
				}
			}
		}
		for fl := range unfrozen {
			if head := fb.flowCap(fl) - fl.rate; head < limit {
				limit = head
			}
		}
		if math.IsInf(limit, 1) {
			break
		}
		if limit < 0 {
			limit = 0
		}
		// Raise every unfrozen flow by limit, then freeze flows on any
		// capacity that is now exhausted and flows that hit their link cap.
		for fl := range unfrozen {
			fl.rate += limit
		}
		for _, group := range []map[int]*cap{egress, ingress} {
			for _, c := range group {
				k := countUnfrozen(c)
				c.remaining -= limit * float64(k)
			}
		}
		froze := false
		for _, group := range []map[int]*cap{egress, ingress} {
			for _, c := range group {
				if c.remaining <= eps {
					for _, fl := range c.flows {
						if unfrozen[fl] {
							delete(unfrozen, fl)
							froze = true
						}
					}
				}
			}
		}
		for fl := range unfrozen {
			if fl.rate >= fb.flowCap(fl)-eps {
				delete(unfrozen, fl)
				froze = true
			}
		}
		if !froze {
			break
		}
	}
}

// TransferTime returns the α + s/B point-to-point time for a transfer of
// size bytes on an otherwise idle network — the f(s) of Algorithm 2.
func (fb *Fabric) TransferTime(bytes float64) simclock.Duration {
	return TransferTime(bytes, fb.cfg.EgressBytesPerSec, fb.cfg.Alpha)
}

// TransferTime is the α + s/B model as a pure function.
func TransferTime(bytes, bandwidthBytesPerSec float64, alpha simclock.Duration) simclock.Duration {
	return alpha + simclock.Duration(bytes/bandwidthBytesPerSec)
}
