// Package netsim simulates the training-cluster network: point-to-point
// flows over per-machine NICs with max-min fair bandwidth sharing, the
// α + s/B transfer-time model GEMINI uses (§5.3), per-machine GPU→CPU copy
// channels, and cost models for the collective operations that make up
// ZeRO-3 training traffic.
//
// The fluid model is what lets the interference experiments (§7.4) emerge
// rather than be assumed: when checkpoint flows overlap training flows on
// the same NIC they share bandwidth and both slow down, exactly the
// contention GEMINI's scheduler is designed to avoid.
//
// The rate engine is incremental and allocation-free in steady state:
// flows live in persistent per-node lists, completions come off an
// indexed min-heap of ETAs ordered by (ETA, flow sequence), and a flow
// start/finish/failure marks only its endpoints dirty — one coalesced
// recompute per simulated instant then re-waterfills just the connected
// component those nodes belong to. See DESIGN.md for the full data
// structures and the determinism guarantees.
package netsim

import (
	"fmt"
	"math"
	"slices"

	"gemini/internal/simclock"
	"gemini/internal/trace"
)

// Config describes the fabric connecting training machines.
type Config struct {
	// EgressBytesPerSec is each machine's NIC send capacity.
	EgressBytesPerSec float64
	// IngressBytesPerSec is each machine's NIC receive capacity.
	// Zero means "same as egress".
	IngressBytesPerSec float64
	// Alpha is the per-transfer startup latency (the α in f(s) = α + s/B).
	Alpha simclock.Duration
}

func (c Config) validate() error {
	if c.EgressBytesPerSec <= 0 {
		return fmt.Errorf("netsim: egress bandwidth must be positive, got %v", c.EgressBytesPerSec)
	}
	if c.IngressBytesPerSec < 0 {
		return fmt.Errorf("netsim: ingress bandwidth must be nonnegative, got %v", c.IngressBytesPerSec)
	}
	if c.Alpha < 0 {
		return fmt.Errorf("netsim: alpha must be nonnegative, got %v", c.Alpha)
	}
	return nil
}

// FlowState is the lifecycle state of a flow.
type FlowState int

const (
	// FlowStarting means the flow is in its α startup window.
	FlowStarting FlowState = iota
	// FlowActive means the flow is transferring bytes.
	FlowActive
	// FlowDone means all bytes were delivered.
	FlowDone
	// FlowFailed means an endpoint went down before completion.
	FlowFailed
	// FlowCanceled means the flow was canceled by its owner.
	FlowCanceled
)

func (s FlowState) String() string {
	switch s {
	case FlowStarting:
		return "starting"
	case FlowActive:
		return "active"
	case FlowDone:
		return "done"
	case FlowFailed:
		return "failed"
	case FlowCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("FlowState(%d)", int(s))
	}
}

// Event-priority layout within one simulated instant: completions fire
// before user events (priority 0), and the coalesced rate recompute fires
// after every mutation of the instant has landed.
const (
	completionPriority = -10
	recomputePriority  = 10
)

// Flow is an in-flight point-to-point transfer.
type Flow struct {
	Src, Dst int
	Label    string

	fabric    *Fabric
	bytes     float64 // total size
	remaining float64 // as of lastUpdate
	rate      float64 // current share, bytes/sec
	state     FlowState
	started   simclock.Time
	finished  simclock.Time
	onDone    func(*Flow)
	startEv   simclock.EventID

	seq        uint64        // global start order; the deterministic tie-break
	lastUpdate simclock.Time // instant remaining was last settled to
	eta        simclock.Time // projected completion; valid while heapIdx >= 0
	outIdx     int32         // position in nodes[Src].out
	inIdx      int32         // position in nodes[Dst].in
	activeIdx  int32         // position in fabric.active
	heapIdx    int32         // position in fabric.byETA; -1 when parked
	visited    uint64        // component-collection generation mark
	frozen     bool          // waterfill scratch
}

// State returns the flow's lifecycle state.
func (f *Flow) State() FlowState { return f.state }

// Bytes returns the flow's total size in bytes.
func (f *Flow) Bytes() float64 { return f.bytes }

// Remaining returns how many bytes are still to be delivered, as of the
// current instant.
func (f *Flow) Remaining() float64 {
	rem := f.remaining
	if f.state == FlowActive && f.rate > 0 {
		rem -= f.rate * f.fabric.engine.Now().Sub(f.lastUpdate).Seconds()
		if rem < 0 {
			rem = 0
		}
	}
	return rem
}

// Rate returns the flow's current max-min share in bytes/sec.
func (f *Flow) Rate() float64 { return f.rate }

// StartedAt returns when the flow was submitted.
func (f *Flow) StartedAt() simclock.Time { return f.started }

// FinishedAt returns when the flow reached a terminal state; it is zero
// for flows still in flight.
func (f *Flow) FinishedAt() simclock.Time { return f.finished }

// Cancel removes the flow from the fabric without delivering remaining
// bytes. The completion callback fires with state FlowCanceled.
func (f *Flow) Cancel() {
	if f.state == FlowDone || f.state == FlowFailed || f.state == FlowCanceled {
		return
	}
	f.startEv.Cancel()
	fb := f.fabric
	if f.state == FlowActive {
		fb.settleFlow(f, fb.engine.Now())
	}
	fb.finishFlow(f, FlowCanceled)
	fb.armRecompute()
}

type node struct {
	up         bool
	egressCap  float64
	ingressCap float64

	// Persistent flow lists: every active flow sits in its source's out
	// list and its destination's in list (swap-removed on finish).
	out []*Flow
	in  []*Flow

	// busy accounting for idle-time measurement
	activeFlows int
	busySince   simclock.Time
	busyTotal   simclock.Duration

	// scratch owned by the component collector and the waterfill
	egRem, inRem float64
	egN, inN     int32
	visited      uint64
	dirtySeen    uint64
}

// Fabric simulates the cluster network. It must only be used from within
// the simulation goroutine (callbacks of the same engine).
type Fabric struct {
	engine *simclock.Engine
	cfg    Config
	nodes  []node

	active []*Flow // all FlowActive flows
	byETA  []*Flow // indexed min-heap on (eta, seq); active flows with rate > 0

	// partition assigns each node a partition id; nil means fully
	// connected. Flows may only cross between nodes with equal ids.
	partition []int
	// linkFactor caps a directed link at a fraction of its endpoints'
	// NIC bandwidth; absent links are undegraded.
	linkFactor map[[2]int]float64
	// nodeFactor scales a node's effective NIC bandwidth (straggler
	// injection); nil means every node runs at full speed.
	nodeFactor []float64

	flowSeq uint64

	// Dirty set and pooled scratch, reused across events so steady-state
	// flow traffic never allocates.
	dirty     []int
	dirtyGen  uint64
	visitGen  uint64
	seeds     []int
	compNodes []int
	compFlows []*Flow
	drained   []*Flow

	inRecompute bool
	recomputeEv simclock.EventID
	recomputeAt simclock.Time
	completion  simclock.EventID
	completeAt  simclock.Time

	stats fabricStats

	// nicTracks[i] is machine i's NIC trace track; nil when tracing is
	// off, which must keep finishFlow allocation-free.
	nicTracks []*trace.Track
}

// NewFabric creates a fabric with n machine endpoints.
func NewFabric(engine *simclock.Engine, n int, cfg Config) (*Fabric, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("netsim: fabric needs at least one node, got %d", n)
	}
	if cfg.IngressBytesPerSec == 0 {
		cfg.IngressBytesPerSec = cfg.EgressBytesPerSec
	}
	f := &Fabric{
		engine:   engine,
		cfg:      cfg,
		nodes:    make([]node, n),
		dirtyGen: 1,
		visitGen: 1,
	}
	for i := range f.nodes {
		f.nodes[i] = node{up: true, egressCap: cfg.EgressBytesPerSec, ingressCap: cfg.IngressBytesPerSec}
	}
	return f, nil
}

// MustNewFabric is NewFabric for statically-known-good configs.
func MustNewFabric(engine *simclock.Engine, n int, cfg Config) *Fabric {
	f, err := NewFabric(engine, n, cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Nodes returns the number of endpoints.
func (fb *Fabric) Nodes() int { return len(fb.nodes) }

// Config returns the fabric configuration.
func (fb *Fabric) Config() Config { return fb.cfg }

// ActiveFlows returns the number of flows not yet in a terminal state.
func (fb *Fabric) ActiveFlows() int { return len(fb.active) }

// StartFlow submits a transfer of size bytes from src to dst. After the α
// startup latency the flow competes for bandwidth under max-min fairness.
// onDone fires exactly once when the flow reaches a terminal state.
// A zero-byte flow completes after just the startup latency.
func (fb *Fabric) StartFlow(src, dst int, bytes float64, label string, onDone func(*Flow)) *Flow {
	fb.checkNode(src)
	fb.checkNode(dst)
	if bytes < 0 || math.IsNaN(bytes) || math.IsInf(bytes, 0) {
		panic(fmt.Sprintf("netsim: invalid flow size %v", bytes))
	}
	if src == dst {
		panic("netsim: flow source and destination must differ")
	}
	fl := &Flow{
		Src: src, Dst: dst, Label: label,
		fabric: fb, bytes: bytes, remaining: bytes,
		state: FlowStarting, started: fb.engine.Now(), onDone: onDone,
		seq: fb.flowSeq, outIdx: -1, inIdx: -1, activeIdx: -1, heapIdx: -1,
	}
	fb.flowSeq++
	fb.stats.flowsStarted++
	if !fb.nodes[src].up || !fb.nodes[dst].up || !fb.Reachable(src, dst) {
		// Fail asynchronously so callers never observe a callback during
		// StartFlow itself.
		fb.engine.After(0, func() {
			if fl.state == FlowStarting {
				fb.finishFlow(fl, FlowFailed)
			}
		})
		return fl
	}
	fl.startEv = fb.engine.After(fb.cfg.Alpha, func() {
		if fl.state != FlowStarting {
			return
		}
		// An endpoint may have failed or been partitioned away during the
		// startup window; such flows never carried a byte and fail here.
		if !fb.nodes[fl.Src].up || !fb.nodes[fl.Dst].up || !fb.Reachable(fl.Src, fl.Dst) {
			fb.finishFlow(fl, FlowFailed)
			return
		}
		fl.state = FlowActive
		fl.lastUpdate = fb.engine.Now()
		fb.attachFlow(fl)
		fb.armRecompute()
	})
	return fl
}

func (fb *Fabric) checkNode(i int) {
	if i < 0 || i >= len(fb.nodes) {
		panic(fmt.Sprintf("netsim: node %d out of range [0,%d)", i, len(fb.nodes)))
	}
}

// SetNodeUp marks an endpoint healthy or failed. Taking a node down fails
// every flow that touches it, in flow-start order.
func (fb *Fabric) SetNodeUp(i int, up bool) {
	fb.checkNode(i)
	n := &fb.nodes[i]
	if n.up == up {
		return
	}
	n.up = up
	if !up {
		// Snapshot into a fresh slice: callbacks may fail further nodes.
		doomed := make([]*Flow, 0, len(n.out)+len(n.in))
		doomed = append(doomed, n.out...)
		doomed = append(doomed, n.in...)
		fb.failFlows(doomed)
	}
	fb.armRecompute()
}

// SetNodeCapacity overrides one endpoint's egress and ingress bandwidth.
// This is how a remote persistent storage service (whose ~20 Gbps
// aggregate is far below the training NICs) joins the same fabric, so
// storage traffic and training traffic contend realistically.
func (fb *Fabric) SetNodeCapacity(i int, egressBytesPerSec, ingressBytesPerSec float64) {
	fb.checkNode(i)
	if egressBytesPerSec <= 0 || ingressBytesPerSec <= 0 {
		panic(fmt.Sprintf("netsim: node capacity must be positive, got %v/%v", egressBytesPerSec, ingressBytesPerSec))
	}
	fb.nodes[i].egressCap = egressBytesPerSec
	fb.nodes[i].ingressCap = ingressBytesPerSec
	fb.markDirty(i)
	fb.armRecompute()
}

// NodeCapacity returns endpoint i's (egress, ingress) bandwidth.
func (fb *Fabric) NodeCapacity(i int) (egress, ingress float64) {
	fb.checkNode(i)
	return fb.nodes[i].egressCap, fb.nodes[i].ingressCap
}

// NodeUp reports whether endpoint i is healthy.
func (fb *Fabric) NodeUp(i int) bool {
	fb.checkNode(i)
	return fb.nodes[i].up
}

// SetPartition splits the fabric: each listed group can only talk within
// itself, and all unlisted nodes form one residual component. Active
// flows crossing a partition boundary fail immediately, in flow-start
// order; flows in their startup window fail when the window elapses. A
// later call replaces the previous partition wholesale.
func (fb *Fabric) SetPartition(groups ...[]int) {
	part := make([]int, len(fb.nodes))
	for gi, group := range groups {
		for _, i := range group {
			fb.checkNode(i)
			if part[i] != 0 {
				panic(fmt.Sprintf("netsim: node %d listed in two partition groups", i))
			}
			part[i] = gi + 1
		}
	}
	fb.partition = part
	var doomed []*Flow
	for _, fl := range fb.active {
		if !fb.Reachable(fl.Src, fl.Dst) {
			doomed = append(doomed, fl)
		}
	}
	fb.failFlows(doomed)
	fb.armRecompute()
}

// failFlows settles and fails the given flows in flow-start order.
// Callbacks run synchronously and may mutate the fabric further; flows a
// callback already finished are skipped.
func (fb *Fabric) failFlows(doomed []*Flow) {
	slices.SortFunc(doomed, func(a, b *Flow) int {
		switch {
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		default:
			return 0
		}
	})
	now := fb.engine.Now()
	for _, fl := range doomed {
		if fl.state != FlowActive {
			continue
		}
		fb.settleFlow(fl, now)
		fb.finishFlow(fl, FlowFailed)
	}
}

// ClearPartition heals all partitions.
func (fb *Fabric) ClearPartition() {
	fb.partition = nil
}

// Reachable reports whether two endpoints can currently exchange bytes,
// considering only partitions (not node health).
func (fb *Fabric) Reachable(i, j int) bool {
	fb.checkNode(i)
	fb.checkNode(j)
	if fb.partition == nil {
		return true
	}
	return fb.partition[i] == fb.partition[j]
}

// SetLinkFactor degrades the directed link src→dst to the given fraction
// of its endpoints' NIC bandwidth. factor must be in (0, 1]; 1 removes
// the degradation.
func (fb *Fabric) SetLinkFactor(src, dst int, factor float64) {
	fb.checkNode(src)
	fb.checkNode(dst)
	if factor <= 0 || factor > 1 || math.IsNaN(factor) {
		panic(fmt.Sprintf("netsim: link factor must be in (0,1], got %v", factor))
	}
	if factor == 1 {
		delete(fb.linkFactor, [2]int{src, dst})
	} else {
		if fb.linkFactor == nil {
			fb.linkFactor = make(map[[2]int]float64)
		}
		fb.linkFactor[[2]int{src, dst}] = factor
	}
	fb.markDirty(src)
	fb.markDirty(dst)
	fb.armRecompute()
}

// SetNodeFactor scales endpoint i's effective NIC bandwidth — straggler
// injection. factor must be in [0, 1]; 1 restores full speed, and 0
// parks the node's flows at rate zero until bandwidth returns.
func (fb *Fabric) SetNodeFactor(i int, factor float64) {
	fb.checkNode(i)
	if factor < 0 || factor > 1 || math.IsNaN(factor) {
		panic(fmt.Sprintf("netsim: node factor must be in [0,1], got %v", factor))
	}
	if fb.nodeFactor == nil {
		if factor == 1 {
			return
		}
		fb.nodeFactor = make([]float64, len(fb.nodes))
		for j := range fb.nodeFactor {
			fb.nodeFactor[j] = 1
		}
	}
	fb.nodeFactor[i] = factor
	fb.markDirty(i)
	fb.armRecompute()
}

// NodeFactor returns endpoint i's current bandwidth scale.
func (fb *Fabric) NodeFactor(i int) float64 {
	fb.checkNode(i)
	if fb.nodeFactor == nil {
		return 1
	}
	return fb.nodeFactor[i]
}

// nodeScale is NodeFactor without the bounds re-check, for hot paths.
func (fb *Fabric) nodeScale(i int) float64 {
	if fb.nodeFactor == nil {
		return 1
	}
	return fb.nodeFactor[i]
}

// flowCap returns the per-flow rate ceiling imposed by link degradation,
// or +Inf when the flow's link is undegraded.
func (fb *Fabric) flowCap(fl *Flow) float64 {
	f, ok := fb.linkFactor[[2]int{fl.Src, fl.Dst}]
	if !ok {
		return math.Inf(1)
	}
	eff := math.Min(
		fb.nodes[fl.Src].egressCap*fb.nodeScale(fl.Src),
		fb.nodes[fl.Dst].ingressCap*fb.nodeScale(fl.Dst),
	)
	return f * eff
}

// BusyTime returns how long endpoint i has had at least one active flow
// (sending or receiving), up to the current instant. The network-idle
// measurements of Figures 8 and 13b subtract this from elapsed time.
func (fb *Fabric) BusyTime(i int) simclock.Duration {
	fb.checkNode(i)
	n := &fb.nodes[i]
	total := n.busyTotal
	if n.activeFlows > 0 {
		total += fb.engine.Now().Sub(n.busySince)
	}
	return total
}

// ResetBusyTime zeroes the busy-time accumulator for all endpoints,
// typically at an iteration boundary.
func (fb *Fabric) ResetBusyTime() {
	now := fb.engine.Now()
	for i := range fb.nodes {
		n := &fb.nodes[i]
		n.busyTotal = 0
		if n.activeFlows > 0 {
			n.busySince = now
		}
	}
}

func (fb *Fabric) nodeActivate(i int) {
	n := &fb.nodes[i]
	if n.activeFlows == 0 {
		n.busySince = fb.engine.Now()
	}
	n.activeFlows++
}

func (fb *Fabric) nodeDeactivate(i int) {
	n := &fb.nodes[i]
	n.activeFlows--
	if n.activeFlows == 0 {
		n.busyTotal += fb.engine.Now().Sub(n.busySince)
	}
	if n.activeFlows < 0 {
		panic("netsim: node active-flow count went negative")
	}
}

// settleFlow advances one flow's remaining bytes to now at its current
// rate. Rates only change at recompute instants, so per-flow settling is
// exact; flows at rate zero only refresh their settle point.
func (fb *Fabric) settleFlow(fl *Flow, now simclock.Time) {
	if fl.rate == 0 || fl.lastUpdate == now {
		fl.lastUpdate = now
		return
	}
	fb.stats.settleOps++
	fl.remaining -= fl.rate * now.Sub(fl.lastUpdate).Seconds()
	// Sub-byte residue is float error, not payload.
	if fl.remaining < 1e-3 {
		fl.remaining = 0
	}
	fl.lastUpdate = now
}

// attachFlow inserts a newly active flow into the persistent per-node
// lists, the active list, and busy accounting. It enters the ETA heap at
// the next recompute.
func (fb *Fabric) attachFlow(fl *Flow) {
	src := &fb.nodes[fl.Src]
	fl.outIdx = int32(len(src.out))
	src.out = append(src.out, fl)
	dst := &fb.nodes[fl.Dst]
	fl.inIdx = int32(len(dst.in))
	dst.in = append(dst.in, fl)
	fl.activeIdx = int32(len(fb.active))
	fb.active = append(fb.active, fl)
	if len(fb.active) > fb.stats.peakFlows {
		fb.stats.peakFlows = len(fb.active)
	}
	fb.nodeActivate(fl.Src)
	fb.nodeActivate(fl.Dst)
	fb.markDirty(fl.Src)
	fb.markDirty(fl.Dst)
}

// detachFlow swap-removes an active flow from every engine structure and
// marks its endpoints dirty.
func (fb *Fabric) detachFlow(fl *Flow) {
	src := &fb.nodes[fl.Src]
	last := len(src.out) - 1
	moved := src.out[last]
	src.out[fl.outIdx] = moved
	moved.outIdx = fl.outIdx
	src.out[last] = nil
	src.out = src.out[:last]
	fl.outIdx = -1

	dst := &fb.nodes[fl.Dst]
	last = len(dst.in) - 1
	moved = dst.in[last]
	dst.in[fl.inIdx] = moved
	moved.inIdx = fl.inIdx
	dst.in[last] = nil
	dst.in = dst.in[:last]
	fl.inIdx = -1

	last = len(fb.active) - 1
	moved = fb.active[last]
	fb.active[fl.activeIdx] = moved
	moved.activeIdx = fl.activeIdx
	fb.active[last] = nil
	fb.active = fb.active[:last]
	fl.activeIdx = -1

	fb.heapRemove(fl)
	fb.nodeDeactivate(fl.Src)
	fb.nodeDeactivate(fl.Dst)
	fb.markDirty(fl.Src)
	fb.markDirty(fl.Dst)
}

func (fb *Fabric) finishFlow(fl *Flow, state FlowState) {
	if fl.state == FlowActive {
		fb.detachFlow(fl)
	}
	fl.state = state
	fl.rate = 0
	fl.finished = fb.engine.Now()
	fb.stats.flowsFinished++
	if fb.nicTracks != nil {
		// Constant arg strings: the traced path may allocate (appends),
		// but never formats.
		switch state {
		case FlowDone:
			fb.nicTracks[fl.Src].Span(trace.CatNetsim, fl.Label, fl.started, fl.finished)
		case FlowFailed:
			fb.nicTracks[fl.Src].SpanArgs(trace.CatNetsim, fl.Label, fl.started, fl.finished, "state=failed")
		case FlowCanceled:
			fb.nicTracks[fl.Src].SpanArgs(trace.CatNetsim, fl.Label, fl.started, fl.finished, "state=canceled")
		}
	}
	if fl.onDone != nil {
		cb := fl.onDone
		fl.onDone = nil
		cb(fl)
	}
}

// markDirty records that node i's capacity allocation may have changed;
// the next recompute re-waterfills i's connected component.
func (fb *Fabric) markDirty(i int) {
	if fb.nodes[i].dirtySeen == fb.dirtyGen {
		return
	}
	fb.nodes[i].dirtySeen = fb.dirtyGen
	fb.dirty = append(fb.dirty, i)
}

// armRecompute schedules the coalesced rate recompute for the current
// instant. Mutations within one instant share a single recompute, which
// is what makes a ring round O(N) instead of O(N²).
func (fb *Fabric) armRecompute() {
	if fb.inRecompute || len(fb.dirty) == 0 {
		return
	}
	now := fb.engine.Now()
	if fb.recomputeEv.Pending() && fb.recomputeAt == now {
		return
	}
	fb.recomputeAt = now
	if fb.recomputeEv == (simclock.EventID{}) {
		fb.recomputeEv = fb.engine.AtPriority(now, recomputePriority, fb.recompute)
	} else {
		fb.engine.Rearm(fb.recomputeEv, now)
	}
}

// recompute is the once-per-instant rate pass: settle and re-waterfill
// the connected components of all dirty nodes, complete flows that
// drained, and re-aim the completion event at the new earliest ETA.
func (fb *Fabric) recompute() {
	fb.inRecompute = true
	fb.stats.recomputes++
	now := fb.engine.Now()
	for len(fb.dirty) > 0 {
		fb.collectComponent(now)
		if len(fb.drained) > 0 {
			// Completion callbacks fire in (ETA, flow-sequence) order and
			// may mutate the fabric, so collect again afterwards.
			slices.SortFunc(fb.drained, flowETACmp)
			for _, fl := range fb.drained {
				if fl.state == FlowActive {
					fb.finishFlow(fl, FlowDone)
				}
			}
			continue
		}
		fb.waterfill()
		if fb.updateETAs(now) {
			continue
		}
	}
	fb.inRecompute = false
	fb.armCompletion()
}

// collectComponent snapshots the dirty set and walks the union of its
// nodes' connected components over the persistent flow lists, settling
// every flow it reaches. Flows that drained end up in fb.drained.
func (fb *Fabric) collectComponent(now simclock.Time) {
	fb.seeds = append(fb.seeds[:0], fb.dirty...)
	fb.dirty = fb.dirty[:0]
	fb.dirtyGen++
	fb.visitGen++
	gen := fb.visitGen
	fb.compNodes = fb.compNodes[:0]
	fb.compFlows = fb.compFlows[:0]
	fb.drained = fb.drained[:0]
	for _, s := range fb.seeds {
		if fb.nodes[s].visited == gen {
			continue
		}
		fb.nodes[s].visited = gen
		fb.compNodes = append(fb.compNodes, s)
	}
	for qi := 0; qi < len(fb.compNodes); qi++ {
		n := &fb.nodes[fb.compNodes[qi]]
		for _, fl := range n.out {
			fb.visitFlow(fl, gen, now)
		}
		for _, fl := range n.in {
			fb.visitFlow(fl, gen, now)
		}
	}
	fb.stats.flowsRecomputed += uint64(len(fb.compFlows))
	fb.stats.activeAtRecompute += uint64(len(fb.active))
}

func (fb *Fabric) visitFlow(fl *Flow, gen uint64, now simclock.Time) {
	if fl.visited == gen {
		return
	}
	fl.visited = gen
	fb.settleFlow(fl, now)
	fb.compFlows = append(fb.compFlows, fl)
	if fl.remaining == 0 {
		fb.drained = append(fb.drained, fl)
	}
	if n := &fb.nodes[fl.Src]; n.visited != gen {
		n.visited = gen
		fb.compNodes = append(fb.compNodes, fl.Src)
	}
	if n := &fb.nodes[fl.Dst]; n.visited != gen {
		n.visited = gen
		fb.compNodes = append(fb.compNodes, fl.Dst)
	}
}

// waterfill runs max-min water-filling over the collected component,
// using the scratch fields embedded in the nodes themselves.
func (fb *Fabric) waterfill() {
	flows := fb.compFlows
	if len(flows) == 0 {
		return
	}
	fb.stats.waterfills++
	for _, fl := range flows {
		fl.rate = 0
		fl.frozen = false
	}
	for _, ni := range fb.compNodes {
		n := &fb.nodes[ni]
		sc := fb.nodeScale(ni)
		n.egRem = n.egressCap * sc
		n.inRem = n.ingressCap * sc
		n.egN = int32(len(n.out))
		n.inN = int32(len(n.in))
	}
	unfrozen := len(flows)
	linked := len(fb.linkFactor) > 0
	eps := 1e-6 * fb.cfg.EgressBytesPerSec
	freeze := func(fl *Flow) {
		fl.frozen = true
		fb.nodes[fl.Src].egN--
		fb.nodes[fl.Dst].inN--
		unfrozen--
	}
	for unfrozen > 0 {
		fb.stats.waterfillRounds++
		// Find the tightest constraint: min over node caps of
		// remaining/unfrozen, and min over unfrozen flows of headroom to
		// their link cap.
		limit := math.Inf(1)
		for _, ni := range fb.compNodes {
			n := &fb.nodes[ni]
			if n.egN > 0 {
				if share := n.egRem / float64(n.egN); share < limit {
					limit = share
				}
			}
			if n.inN > 0 {
				if share := n.inRem / float64(n.inN); share < limit {
					limit = share
				}
			}
		}
		if linked {
			for _, fl := range flows {
				if !fl.frozen {
					if head := fb.flowCap(fl) - fl.rate; head < limit {
						limit = head
					}
				}
			}
		}
		if math.IsInf(limit, 1) {
			break
		}
		if limit < 0 {
			limit = 0
		}
		// Raise every unfrozen flow by limit, then freeze flows on any
		// capacity that is now exhausted and flows that hit their link cap.
		for _, fl := range flows {
			if !fl.frozen {
				fl.rate += limit
			}
		}
		for _, ni := range fb.compNodes {
			n := &fb.nodes[ni]
			n.egRem -= limit * float64(n.egN)
			n.inRem -= limit * float64(n.inN)
		}
		froze := false
		for _, ni := range fb.compNodes {
			n := &fb.nodes[ni]
			if n.egRem <= eps {
				for _, fl := range n.out {
					if !fl.frozen {
						freeze(fl)
						froze = true
					}
				}
			}
			if n.inRem <= eps {
				for _, fl := range n.in {
					if !fl.frozen {
						freeze(fl)
						froze = true
					}
				}
			}
		}
		if linked {
			for _, fl := range flows {
				if !fl.frozen && fl.rate >= fb.flowCap(fl)-eps {
					freeze(fl)
					froze = true
				}
			}
		}
		if !froze {
			break
		}
	}
}

// updateETAs refreshes the completion heap for the component's flows. A
// flow whose residual transfer time is below the clock's resolution at
// this timestamp finishes immediately — exactly one per pass, lowest
// (ETA, sequence) first, so callbacks stay deterministic; it reports
// whether it finished one (the recompute loop then runs again).
func (fb *Fabric) updateETAs(now simclock.Time) bool {
	var forced *Flow
	for _, fl := range fb.compFlows {
		if fl.state != FlowActive {
			continue
		}
		if fl.rate <= 0 {
			// Parked (zero-bandwidth endpoint): no ETA, no event-loop spin.
			fb.heapRemove(fl)
			continue
		}
		fl.eta = now.Add(simclock.Duration(fl.remaining / fl.rate))
		fb.heapFix(fl)
		if fl.eta <= now && (forced == nil || flowETACmp(fl, forced) < 0) {
			forced = fl
		}
	}
	if forced != nil {
		forced.remaining = 0
		fb.finishFlow(forced, FlowDone)
		return true
	}
	return false
}

// armCompletion re-aims the persistent completion event at the heap's
// earliest ETA, or parks it when no flow is progressing.
func (fb *Fabric) armCompletion() {
	if len(fb.byETA) == 0 {
		fb.completion.Cancel()
		return
	}
	eta := fb.byETA[0].eta
	if fb.completion.Pending() && fb.completeAt == eta {
		return
	}
	fb.completeAt = eta
	if fb.completion == (simclock.EventID{}) {
		fb.completion = fb.engine.AtPriority(eta, completionPriority, fb.onCompletion)
	} else {
		fb.engine.Rearm(fb.completion, eta)
	}
}

// onCompletion fires at the earliest ETA: every due flow completes, in
// heap order — (ETA, flow sequence) — with callbacks running inside this
// event, before same-instant user events, as the priority layout demands.
func (fb *Fabric) onCompletion() {
	now := fb.engine.Now()
	for len(fb.byETA) > 0 && fb.byETA[0].eta <= now {
		fl := fb.byETA[0]
		fb.settleFlow(fl, now)
		fl.remaining = 0
		fb.finishFlow(fl, FlowDone)
	}
	if len(fb.dirty) > 0 {
		fb.armRecompute()
	} else {
		fb.armCompletion()
	}
}

// flowETACmp orders flows by (ETA, start sequence) — the engine's
// deterministic completion order.
func flowETACmp(a, b *Flow) int {
	switch {
	case a.eta < b.eta:
		return -1
	case a.eta > b.eta:
		return 1
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	default:
		return 0
	}
}

func flowLess(a, b *Flow) bool {
	return a.eta < b.eta || (a.eta == b.eta && a.seq < b.seq)
}

// heapFix inserts fl into the ETA heap or restores heap order after its
// ETA changed.
func (fb *Fabric) heapFix(fl *Flow) {
	if fl.heapIdx < 0 {
		fl.heapIdx = int32(len(fb.byETA))
		fb.byETA = append(fb.byETA, fl)
		fb.heapUp(int(fl.heapIdx))
		return
	}
	i := int(fl.heapIdx)
	fb.heapUp(i)
	if int(fl.heapIdx) == i {
		fb.heapDown(i)
	}
}

func (fb *Fabric) heapRemove(fl *Flow) {
	i := int(fl.heapIdx)
	if i < 0 {
		return
	}
	h := fb.byETA
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	fb.byETA = h[:n]
	fl.heapIdx = -1
	if i == n {
		return
	}
	h[i] = last
	last.heapIdx = int32(i)
	fb.heapUp(i)
	if int(last.heapIdx) == i {
		fb.heapDown(i)
	}
}

func (fb *Fabric) heapUp(i int) {
	h := fb.byETA
	fl := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if !flowLess(fl, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].heapIdx = int32(i)
		i = p
	}
	h[i] = fl
	fl.heapIdx = int32(i)
}

func (fb *Fabric) heapDown(i int) {
	h := fb.byETA
	n := len(h)
	fl := h[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && flowLess(h[r], h[l]) {
			c = r
		}
		if !flowLess(h[c], fl) {
			break
		}
		h[i] = h[c]
		h[i].heapIdx = int32(i)
		i = c
	}
	h[i] = fl
	fl.heapIdx = int32(i)
}

// TransferTime returns the α + s/B point-to-point time for a transfer of
// size bytes on an otherwise idle network — the f(s) of Algorithm 2.
func (fb *Fabric) TransferTime(bytes float64) simclock.Duration {
	return TransferTime(bytes, fb.cfg.EgressBytesPerSec, fb.cfg.Alpha)
}

// TransferTime is the α + s/B model as a pure function.
func TransferTime(bytes, bandwidthBytesPerSec float64, alpha simclock.Duration) simclock.Duration {
	return alpha + simclock.Duration(bytes/bandwidthBytesPerSec)
}
