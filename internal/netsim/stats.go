package netsim

import "gemini/internal/metrics"

// fabricStats are the engine's internal monotonic counters.
type fabricStats struct {
	flowsStarted      uint64
	flowsFinished     uint64
	settleOps         uint64
	recomputes        uint64
	waterfills        uint64
	waterfillRounds   uint64
	flowsRecomputed   uint64
	activeAtRecompute uint64
	peakFlows         int
}

// FabricStats is a snapshot of the fabric engine's counters: how many
// flows it carried, how much rate-recomputation work the dirty-set core
// actually did, and how much a full-fabric engine would have done.
type FabricStats struct {
	// FlowsStarted and FlowsFinished count flow lifecycle transitions.
	FlowsStarted, FlowsFinished uint64
	// SettleOps counts per-flow byte-accounting advances at nonzero rate.
	SettleOps uint64
	// Recomputes counts coalesced once-per-instant rate passes.
	Recomputes uint64
	// Waterfills counts component re-waterfills; WaterfillRounds the
	// freeze rounds inside them.
	Waterfills, WaterfillRounds uint64
	// FlowsRecomputed sums component sizes over all collect passes;
	// ActiveFlowSum sums the total active-flow count at those passes.
	// Their ratio is what the dirty-set core saved.
	FlowsRecomputed, ActiveFlowSum uint64
	// PeakConcurrentFlows is the high-water mark of simultaneously
	// active flows.
	PeakConcurrentFlows int
}

// Stats snapshots the fabric's engine counters.
func (fb *Fabric) Stats() FabricStats {
	return FabricStats{
		FlowsStarted:        fb.stats.flowsStarted,
		FlowsFinished:       fb.stats.flowsFinished,
		SettleOps:           fb.stats.settleOps,
		Recomputes:          fb.stats.recomputes,
		Waterfills:          fb.stats.waterfills,
		WaterfillRounds:     fb.stats.waterfillRounds,
		FlowsRecomputed:     fb.stats.flowsRecomputed,
		ActiveFlowSum:       fb.stats.activeAtRecompute,
		PeakConcurrentFlows: fb.stats.peakFlows,
	}
}

// DirtyHitRate is the fraction of active flows the dirty-set core did
// NOT have to touch, averaged over recompute passes: 0 means every pass
// re-waterfilled the whole fabric (what the old engine always did), 1
// means passes were free.
func (s FabricStats) DirtyHitRate() float64 {
	if s.ActiveFlowSum == 0 {
		return 0
	}
	return 1 - float64(s.FlowsRecomputed)/float64(s.ActiveFlowSum)
}

// Counters exports the snapshot through the metrics package, for
// surfacing in CLI output.
func (s FabricStats) Counters() metrics.CounterSet {
	return metrics.CounterSet{
		{Name: "flows_started", Value: float64(s.FlowsStarted)},
		{Name: "flows_finished", Value: float64(s.FlowsFinished)},
		{Name: "peak_concurrent_flows", Value: float64(s.PeakConcurrentFlows)},
		{Name: "settle_ops", Value: float64(s.SettleOps)},
		{Name: "recomputes", Value: float64(s.Recomputes)},
		{Name: "waterfills", Value: float64(s.Waterfills)},
		{Name: "waterfill_rounds", Value: float64(s.WaterfillRounds)},
		{Name: "dirty_hit_rate", Value: s.DirtyHitRate()},
	}
}
