package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gemini/internal/simclock"
)

const (
	gbps = 1e9 / 8 // bytes per second in one Gbit/s
)

func newTestFabric(t *testing.T, n int, cfg Config) (*simclock.Engine, *Fabric) {
	t.Helper()
	e := simclock.NewEngine()
	f, err := NewFabric(e, n, cfg)
	if err != nil {
		t.Fatalf("NewFabric: %v", err)
	}
	return e, f
}

func TestSingleFlowTakesAlphaPlusBytesOverB(t *testing.T) {
	e, f := newTestFabric(t, 2, Config{EgressBytesPerSec: 100, Alpha: 0.5})
	var done simclock.Time
	f.StartFlow(0, 1, 1000, "t", func(fl *Flow) {
		if fl.State() != FlowDone {
			t.Errorf("flow state %v, want done", fl.State())
		}
		done = e.Now()
	})
	e.RunAll()
	want := simclock.Time(0.5 + 1000.0/100)
	if math.Abs(float64(done-want)) > 1e-9 {
		t.Fatalf("flow finished at %v, want %v", done, want)
	}
}

func TestTransferTimeMatchesFlow(t *testing.T) {
	e, f := newTestFabric(t, 2, Config{EgressBytesPerSec: 250, Alpha: 0.01})
	var done simclock.Time
	f.StartFlow(0, 1, 5000, "t", func(*Flow) { done = e.Now() })
	e.RunAll()
	if got := f.TransferTime(5000); math.Abs(float64(done)-got.Seconds()) > 1e-9 {
		t.Fatalf("TransferTime %v but flow finished at %v", got, done)
	}
}

func TestZeroByteFlowCompletesAfterAlpha(t *testing.T) {
	e, f := newTestFabric(t, 2, Config{EgressBytesPerSec: 100, Alpha: 0.25})
	var done simclock.Time
	f.StartFlow(0, 1, 0, "t", func(*Flow) { done = e.Now() })
	e.RunAll()
	if math.Abs(float64(done)-0.25) > 1e-9 {
		t.Fatalf("zero-byte flow finished at %v, want 0.25", done)
	}
}

func TestTwoFlowsShareEgress(t *testing.T) {
	// Two flows leaving node 0 share its egress capacity: each gets B/2,
	// so both finish at 2·s/B.
	e, f := newTestFabric(t, 3, Config{EgressBytesPerSec: 100})
	var t1, t2 simclock.Time
	f.StartFlow(0, 1, 1000, "a", func(*Flow) { t1 = e.Now() })
	f.StartFlow(0, 2, 1000, "b", func(*Flow) { t2 = e.Now() })
	e.RunAll()
	if math.Abs(float64(t1)-20) > 1e-6 || math.Abs(float64(t2)-20) > 1e-6 {
		t.Fatalf("shared flows finished at %v and %v, want 20 and 20", t1, t2)
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	// Flows of 1000 and 3000 bytes share 100 B/s: the short one finishes
	// at t=20 (rate 50); the long one then speeds up to 100 and finishes
	// at 20 + (3000-1000)/100 = 40.
	e, f := newTestFabric(t, 3, Config{EgressBytesPerSec: 100})
	var tShort, tLong simclock.Time
	f.StartFlow(0, 1, 1000, "short", func(*Flow) { tShort = e.Now() })
	f.StartFlow(0, 2, 3000, "long", func(*Flow) { tLong = e.Now() })
	e.RunAll()
	if math.Abs(float64(tShort)-20) > 1e-6 {
		t.Fatalf("short flow finished at %v, want 20", tShort)
	}
	if math.Abs(float64(tLong)-40) > 1e-6 {
		t.Fatalf("long flow finished at %v, want 40", tLong)
	}
}

func TestIngressIsABottleneckToo(t *testing.T) {
	// Two different sources into one destination share the ingress cap.
	e, f := newTestFabric(t, 3, Config{EgressBytesPerSec: 100})
	var t1, t2 simclock.Time
	f.StartFlow(0, 2, 1000, "a", func(*Flow) { t1 = e.Now() })
	f.StartFlow(1, 2, 1000, "b", func(*Flow) { t2 = e.Now() })
	e.RunAll()
	if math.Abs(float64(t1)-20) > 1e-6 || math.Abs(float64(t2)-20) > 1e-6 {
		t.Fatalf("ingress-shared flows finished at %v, %v, want 20, 20", t1, t2)
	}
}

func TestDisjointFlowsDoNotInterfere(t *testing.T) {
	e, f := newTestFabric(t, 4, Config{EgressBytesPerSec: 100})
	var t1, t2 simclock.Time
	f.StartFlow(0, 1, 1000, "a", func(*Flow) { t1 = e.Now() })
	f.StartFlow(2, 3, 1000, "b", func(*Flow) { t2 = e.Now() })
	e.RunAll()
	if math.Abs(float64(t1)-10) > 1e-6 || math.Abs(float64(t2)-10) > 1e-6 {
		t.Fatalf("disjoint flows finished at %v, %v, want 10, 10", t1, t2)
	}
}

func TestMaxMinUnevenShares(t *testing.T) {
	// Node 0 sends to 1 and 2; node 3 also sends to 2.
	// Ingress at 2 is shared by two flows (50 each); flow 0→1 can then take
	// the leftover egress at node 0 (also 50, since 0's egress splits...).
	// Water-filling: all flows rise to 50 together, which saturates both
	// node-0 egress (2 flows × 50) and node-2 ingress (2 flows × 50).
	e, f := newTestFabric(t, 4, Config{EgressBytesPerSec: 100})
	var done [3]simclock.Time
	f.StartFlow(0, 1, 500, "a", func(*Flow) { done[0] = e.Now() })
	f.StartFlow(0, 2, 500, "b", func(*Flow) { done[1] = e.Now() })
	f.StartFlow(3, 2, 500, "c", func(*Flow) { done[2] = e.Now() })
	e.RunAll()
	for i, d := range done {
		if math.Abs(float64(d)-10) > 1e-6 {
			t.Fatalf("flow %d finished at %v, want 10", i, d)
		}
	}
}

func TestFlowToDownNodeFails(t *testing.T) {
	e, f := newTestFabric(t, 2, Config{EgressBytesPerSec: 100})
	f.SetNodeUp(1, false)
	var state FlowState = -1
	f.StartFlow(0, 1, 1000, "t", func(fl *Flow) { state = fl.State() })
	e.RunAll()
	if state != FlowFailed {
		t.Fatalf("flow to down node ended %v, want failed", state)
	}
}

func TestNodeFailureKillsInFlightFlows(t *testing.T) {
	e, f := newTestFabric(t, 3, Config{EgressBytesPerSec: 100})
	var states []FlowState
	f.StartFlow(0, 1, 10000, "dies", func(fl *Flow) { states = append(states, fl.State()) })
	f.StartFlow(0, 2, 10000, "survives", func(fl *Flow) { states = append(states, fl.State()) })
	e.At(10, func() { f.SetNodeUp(1, false) })
	e.RunAll()
	if len(states) != 2 {
		t.Fatalf("got %d completions, want 2", len(states))
	}
	if states[0] != FlowFailed {
		t.Fatalf("first completion %v, want failed", states[0])
	}
	if states[1] != FlowDone {
		t.Fatalf("second completion %v, want done", states[1])
	}
	if !f.NodeUp(0) || f.NodeUp(1) {
		t.Fatal("node up/down state wrong")
	}
}

func TestSurvivorSpeedsUpAfterPeerFailure(t *testing.T) {
	// Two flows share node-0 egress at 50 B/s each. At t=10 the first
	// flow's destination dies; the survivor should finish at
	// 10 + (2000-500)/100 = 25.
	e, f := newTestFabric(t, 3, Config{EgressBytesPerSec: 100})
	var tDone simclock.Time
	f.StartFlow(0, 1, 10000, "dies", nil)
	f.StartFlow(0, 2, 2000, "survives", func(*Flow) { tDone = e.Now() })
	e.At(10, func() { f.SetNodeUp(1, false) })
	e.RunAll()
	if math.Abs(float64(tDone)-25) > 1e-6 {
		t.Fatalf("survivor finished at %v, want 25", tDone)
	}
}

func TestCancelStopsFlow(t *testing.T) {
	e, f := newTestFabric(t, 2, Config{EgressBytesPerSec: 100})
	var state FlowState = -1
	fl := f.StartFlow(0, 1, 10000, "t", func(fl *Flow) { state = fl.State() })
	e.At(5, func() { fl.Cancel() })
	e.RunAll()
	if state != FlowCanceled {
		t.Fatalf("canceled flow ended %v, want canceled", state)
	}
	if rem := fl.Remaining(); math.Abs(rem-9500) > 1e-6 {
		t.Fatalf("canceled flow remaining %v, want 9500", rem)
	}
	// Cancel again is a no-op.
	fl.Cancel()
}

func TestBusyTimeAccounting(t *testing.T) {
	e, f := newTestFabric(t, 2, Config{EgressBytesPerSec: 100})
	f.StartFlow(0, 1, 1000, "t", nil)
	e.RunAll()
	if bt := f.BusyTime(0); math.Abs(bt.Seconds()-10) > 1e-9 {
		t.Fatalf("busy time %v, want 10s", bt)
	}
	if bt := f.BusyTime(1); math.Abs(bt.Seconds()-10) > 1e-9 {
		t.Fatalf("receiver busy time %v, want 10s", bt)
	}
	f.ResetBusyTime()
	if bt := f.BusyTime(0); bt != 0 {
		t.Fatalf("busy time after reset %v, want 0", bt)
	}
}

func TestBusyTimeWithGap(t *testing.T) {
	e, f := newTestFabric(t, 2, Config{EgressBytesPerSec: 100})
	f.StartFlow(0, 1, 1000, "a", nil)
	e.At(50, func() { f.StartFlow(0, 1, 1000, "b", nil) })
	e.RunAll()
	if bt := f.BusyTime(0); math.Abs(bt.Seconds()-20) > 1e-9 {
		t.Fatalf("busy time %v, want 20s (two 10s transfers)", bt)
	}
	if e.Now() != 60 {
		t.Fatalf("clock %v, want 60", e.Now())
	}
}

func TestConfigValidation(t *testing.T) {
	e := simclock.NewEngine()
	if _, err := NewFabric(e, 2, Config{EgressBytesPerSec: 0}); err == nil {
		t.Error("zero egress accepted")
	}
	if _, err := NewFabric(e, 2, Config{EgressBytesPerSec: 1, Alpha: -1}); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := NewFabric(e, 0, Config{EgressBytesPerSec: 1}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewFabric(e, 2, Config{EgressBytesPerSec: 1, IngressBytesPerSec: -2}); err == nil {
		t.Error("negative ingress accepted")
	}
}

func TestSelfFlowPanics(t *testing.T) {
	e, f := newTestFabric(t, 2, Config{EgressBytesPerSec: 100})
	_ = e
	defer func() {
		if recover() == nil {
			t.Fatal("self flow did not panic")
		}
	}()
	f.StartFlow(1, 1, 10, "t", nil)
}

func TestFlowAccessors(t *testing.T) {
	e, f := newTestFabric(t, 2, Config{EgressBytesPerSec: 100, Alpha: 1})
	fl := f.StartFlow(0, 1, 500, "label", nil)
	if fl.Bytes() != 500 || fl.Label != "label" || fl.StartedAt() != 0 {
		t.Fatalf("accessors wrong: %+v", fl)
	}
	if fl.State() != FlowStarting {
		t.Fatalf("initial state %v, want starting", fl.State())
	}
	e.Run(2)
	if fl.State() != FlowActive {
		t.Fatalf("state after alpha %v, want active", fl.State())
	}
	if fl.Rate() != 100 {
		t.Fatalf("rate %v, want 100", fl.Rate())
	}
	e.RunAll()
	if fl.State() != FlowDone || fl.Remaining() != 0 {
		t.Fatalf("final state %v remaining %v", fl.State(), fl.Remaining())
	}
	if fl.FinishedAt() != 6 { // 1s alpha + 5s transfer
		t.Fatalf("finished at %v, want 6", fl.FinishedAt())
	}
}

func TestFlowStateString(t *testing.T) {
	names := map[FlowState]string{
		FlowStarting: "starting", FlowActive: "active", FlowDone: "done",
		FlowFailed: "failed", FlowCanceled: "canceled", FlowState(99): "FlowState(99)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("FlowState(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

// Property: total bytes delivered per unit time never exceeds any node's
// capacity, and all flows eventually complete with the right byte totals.
func TestPropertyConservationAndCompletion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		e := simclock.NewEngine()
		fab := MustNewFabric(e, n, Config{EgressBytesPerSec: 1000})
		flows := 1 + rng.Intn(20)
		completed := 0
		for i := 0; i < flows; i++ {
			src := rng.Intn(n)
			dst := rng.Intn(n)
			if dst == src {
				dst = (dst + 1) % n
			}
			bytes := rng.Float64() * 1e5
			start := simclock.Time(rng.Float64() * 10)
			e.At(start, func() {
				fab.StartFlow(src, dst, bytes, "p", func(fl *Flow) {
					if fl.State() == FlowDone && fl.Remaining() == 0 {
						completed++
					}
				})
			})
		}
		e.RunAll()
		if completed != flows {
			return false
		}
		// With egress cap 1000 and max total bytes 20*1e5, everything must
		// finish within a loose horizon (sanity that rates were positive).
		return e.Now() < simclock.Time(10+20*1e5/1000*float64(flows)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: completion time of k equal flows from one source scales
// linearly with k (perfect fair sharing of one bottleneck).
func TestPropertyFairSharingScalesLinearly(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := int(kRaw%8) + 1
		e := simclock.NewEngine()
		fab := MustNewFabric(e, k+1, Config{EgressBytesPerSec: 100})
		var last simclock.Time
		for i := 1; i <= k; i++ {
			fab.StartFlow(0, i, 1000, "p", func(*Flow) { last = e.Now() })
		}
		e.RunAll()
		want := 10 * float64(k)
		return math.Abs(float64(last)-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
