package netsim

import (
	"math"
	"testing"

	"gemini/internal/simclock"
)

func TestCopierServesFIFO(t *testing.T) {
	e := simclock.NewEngine()
	c := MustNewCopier(e, 100)
	var order []string
	var times []simclock.Time
	c.Submit(1000, "a", func(cp *Copy) { order = append(order, cp.Label); times = append(times, e.Now()) })
	c.Submit(500, "b", func(cp *Copy) { order = append(order, cp.Label); times = append(times, e.Now()) })
	if c.QueueLen() != 2 {
		t.Fatalf("queue length %d, want 2", c.QueueLen())
	}
	e.RunAll()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("completion order %v, want [a b]", order)
	}
	if math.Abs(float64(times[0])-10) > 1e-9 || math.Abs(float64(times[1])-15) > 1e-9 {
		t.Fatalf("completion times %v, want [10 15]", times)
	}
	if c.QueueLen() != 0 {
		t.Fatalf("queue length %d after drain, want 0", c.QueueLen())
	}
}

func TestCopierBusyTime(t *testing.T) {
	e := simclock.NewEngine()
	c := MustNewCopier(e, 100)
	c.Submit(1000, "a", nil)
	e.At(50, func() { c.Submit(2000, "b", nil) })
	e.RunAll()
	if bt := c.BusyTime(); math.Abs(bt.Seconds()-30) > 1e-9 {
		t.Fatalf("busy time %v, want 30s", bt)
	}
	if e.Now() != 70 {
		t.Fatalf("clock %v, want 70", e.Now())
	}
}

func TestCopierCopyTime(t *testing.T) {
	e := simclock.NewEngine()
	c := MustNewCopier(e, 50*gbps)
	want := 1e9 / (50 * gbps)
	if got := c.CopyTime(1e9).Seconds(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CopyTime = %v, want %v", got, want)
	}
	if c.Bandwidth() != 50*gbps {
		t.Fatalf("Bandwidth = %v", c.Bandwidth())
	}
}

func TestCopierStateTransitions(t *testing.T) {
	e := simclock.NewEngine()
	c := MustNewCopier(e, 100)
	first := c.Submit(1000, "a", nil)
	second := c.Submit(1000, "b", nil)
	if first.State() != FlowActive {
		t.Fatalf("first copy state %v, want active", first.State())
	}
	if second.State() != FlowStarting {
		t.Fatalf("queued copy state %v, want starting", second.State())
	}
	e.RunAll()
	if first.State() != FlowDone || second.State() != FlowDone {
		t.Fatalf("final states %v, %v", first.State(), second.State())
	}
}

func TestCopierRejectsBadConfig(t *testing.T) {
	e := simclock.NewEngine()
	if _, err := NewCopier(e, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := NewCopier(e, -1); err == nil {
		t.Error("negative bandwidth accepted")
	}
	c := MustNewCopier(e, 1)
	defer func() {
		if recover() == nil {
			t.Error("negative copy size did not panic")
		}
	}()
	c.Submit(-5, "bad", nil)
}
