package netsim

import (
	"fmt"

	"gemini/internal/simclock"
)

// Collective cost models. ZeRO-3 training traffic consists of all-gathers
// (parameter fetch before each layer's forward and backward compute),
// reduce-scatters (gradient synchronization), and the broadcasts GEMINI's
// group placement uses to replicate checkpoints. These are the standard
// ring-algorithm α–β costs (Thakur et al., cited as [72] in the paper).

// CollectiveKind names a collective communication operation.
type CollectiveKind int

const (
	AllGather CollectiveKind = iota
	ReduceScatter
	AllReduce
	Broadcast
)

func (k CollectiveKind) String() string {
	switch k {
	case AllGather:
		return "all-gather"
	case ReduceScatter:
		return "reduce-scatter"
	case AllReduce:
		return "all-reduce"
	case Broadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("CollectiveKind(%d)", int(k))
	}
}

// CollectiveTime returns the completion time of a ring collective over n
// participants where totalBytes is the full (unsharded) payload, each link
// runs at bandwidthBytesPerSec, and each of the ring steps pays the α
// startup latency.
//
//   - AllGather / ReduceScatter: (n−1) steps moving totalBytes·(n−1)/n
//     per participant.
//   - AllReduce: reduce-scatter followed by all-gather, 2(n−1) steps.
//   - Broadcast: pipelined ring broadcast, totalBytes over (n−1) hop
//     latencies plus the bandwidth term.
func CollectiveTime(kind CollectiveKind, n int, totalBytes, bandwidthBytesPerSec float64, alpha simclock.Duration) simclock.Duration {
	if n <= 0 {
		panic(fmt.Sprintf("netsim: collective over %d participants", n))
	}
	if totalBytes < 0 || bandwidthBytesPerSec <= 0 {
		panic(fmt.Sprintf("netsim: invalid collective parameters bytes=%v bw=%v", totalBytes, bandwidthBytesPerSec))
	}
	if n == 1 {
		return 0
	}
	steps := float64(n - 1)
	perStepBytes := totalBytes / float64(n)
	switch kind {
	case AllGather, ReduceScatter:
		return simclock.Duration(steps)*alpha + simclock.Duration(steps*perStepBytes/bandwidthBytesPerSec)
	case AllReduce:
		return simclock.Duration(2*steps)*alpha + simclock.Duration(2*steps*perStepBytes/bandwidthBytesPerSec)
	case Broadcast:
		return simclock.Duration(steps)*alpha + simclock.Duration(totalBytes/bandwidthBytesPerSec)
	default:
		panic(fmt.Sprintf("netsim: unknown collective kind %d", int(kind)))
	}
}

// BusyFraction estimates the fraction of a collective's duration during
// which a participant's NIC is actually transmitting (the bandwidth term
// over the total). Scheduling in §5 treats latency gaps inside collectives
// as unavailable, so only whole-op boundaries yield usable idle spans;
// this helper supports idle-time accounting in the profiler.
func BusyFraction(kind CollectiveKind, n int, totalBytes, bandwidthBytesPerSec float64, alpha simclock.Duration) float64 {
	total := CollectiveTime(kind, n, totalBytes, bandwidthBytesPerSec, alpha)
	if total <= 0 {
		return 0
	}
	latency := total - CollectiveTime(kind, n, totalBytes, bandwidthBytesPerSec, 0)
	return float64((total - latency) / total)
}
