package netsim

// Tracer attachment for the fabric and copy channels. Tracing observes
// completed transfers only — a flow's span is emitted at finish time,
// when its extent is finally known — so it cannot perturb the event
// schedule, and the nil-track fast path keeps the untraced engine
// allocation-free (pinned by alloc_test.go).

import (
	"fmt"

	"gemini/internal/trace"
)

// SetTracer attaches per-machine NIC tracks: every flow that finishes
// (done, failed, or canceled) becomes a span labeled with the flow label
// on its source machine's "machine-<i>/nic" track. Nil disables.
func (fb *Fabric) SetTracer(tr *trace.Tracer) {
	if tr == nil {
		fb.nicTracks = nil
		return
	}
	tr.SetNow(fb.engine.Now)
	fb.nicTracks = make([]*trace.Track, len(fb.nodes))
	for i := range fb.nodes {
		fb.nicTracks[i] = tr.Track(fmt.Sprintf("machine-%d", i), "nic")
	}
}

// SetTrack attaches a trace track to the copy channel: each completed
// copy becomes a span over its active (not queued) time. Nil disables.
func (c *Copier) SetTrack(tk *trace.Track) { c.track = tk }
