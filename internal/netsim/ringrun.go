package netsim

import (
	"fmt"

	"gemini/internal/simclock"
)

// RingRun executes a collective for real on the fabric, step by step:
// (N−1) rounds (2(N−1) for all-reduce) in which every participant sends
// one 1/N-slice of the payload to its ring successor, with a barrier
// between rounds — the synchronous structure NCCL's ring algorithms
// impose. It exists to validate the closed-form CollectiveTime model
// against the fluid simulator, and to measure collectives under
// contention (e.g. with checkpoint traffic in flight).
type RingRun struct {
	fabric       *Fabric
	participants []int
	kind         CollectiveKind
	totalBytes   float64
	onDone       func(*RingRun)

	started  simclock.Time
	finished simclock.Time
	step     int
	steps    int
	failed   bool
}

// StartRingRun launches the collective over the given participant nodes.
// onDone fires once, when the last step's slowest flow completes or a
// participant fails mid-collective.
func StartRingRun(fabric *Fabric, kind CollectiveKind, participants []int,
	totalBytes float64, onDone func(*RingRun)) (*RingRun, error) {
	if len(participants) < 1 {
		return nil, fmt.Errorf("netsim: ring run needs participants")
	}
	if totalBytes < 0 {
		return nil, fmt.Errorf("netsim: negative payload %v", totalBytes)
	}
	seen := make(map[int]bool, len(participants))
	for _, p := range participants {
		if seen[p] {
			return nil, fmt.Errorf("netsim: duplicate participant %d", p)
		}
		seen[p] = true
	}
	steps := len(participants) - 1
	if kind == AllReduce {
		steps *= 2
	}
	r := &RingRun{
		fabric:       fabric,
		participants: participants,
		kind:         kind,
		totalBytes:   totalBytes,
		onDone:       onDone,
		started:      fabric.engine.Now(),
		steps:        steps,
	}
	if steps == 0 || totalBytes == 0 {
		fabric.engine.After(0, func() { r.finish(false) })
		return r, nil
	}
	r.runStep()
	return r, nil
}

// Elapsed returns the collective's duration; valid after completion.
func (r *RingRun) Elapsed() simclock.Duration { return r.finished.Sub(r.started) }

// Failed reports whether a participant died mid-collective.
func (r *RingRun) Failed() bool { return r.failed }

func (r *RingRun) finish(failed bool) {
	r.failed = failed
	r.finished = r.fabric.engine.Now()
	if r.onDone != nil {
		cb := r.onDone
		r.onDone = nil
		cb(r)
	}
}

// runStep launches one round: every participant sends totalBytes/N to its
// successor; the round barrier releases when the slowest flow lands.
func (r *RingRun) runStep() {
	n := len(r.participants)
	slice := r.totalBytes / float64(n)
	remaining := n
	anyFailed := false
	label := fmt.Sprintf("%v-step%d", r.kind, r.step)
	// One label and one callback per round, shared by all n flows: the
	// barrier state is per-round, not per-flow.
	onDone := func(fl *Flow) {
		if fl.State() != FlowDone {
			anyFailed = true
		}
		remaining--
		if remaining > 0 {
			return
		}
		if anyFailed {
			r.finish(true)
			return
		}
		r.step++
		if r.step >= r.steps {
			r.finish(false)
			return
		}
		r.runStep()
	}
	for i := 0; i < n; i++ {
		src := r.participants[i]
		dst := r.participants[(i+1)%n]
		r.fabric.StartFlow(src, dst, slice, label, onDone)
	}
}
