package netsim

import (
	"math"
	"testing"

	"gemini/internal/simclock"
)

func TestPartitionKillsCrossFlows(t *testing.T) {
	e, f := newTestFabric(t, 4, Config{EgressBytesPerSec: 100})
	var crossState, innerState FlowState
	f.StartFlow(0, 2, 1000, "cross", func(fl *Flow) { crossState = fl.State() })
	f.StartFlow(2, 3, 1000, "inner", func(fl *Flow) { innerState = fl.State() })
	e.After(1, func() { f.SetPartition([]int{2, 3}) })
	e.RunAll()
	if crossState != FlowFailed {
		t.Fatalf("cross-partition flow state %v, want failed", crossState)
	}
	if innerState != FlowDone {
		t.Fatalf("intra-partition flow state %v, want done", innerState)
	}
	if f.Reachable(0, 2) || !f.Reachable(2, 3) || !f.Reachable(0, 1) {
		t.Fatal("Reachable disagrees with partition")
	}
}

func TestPartitionBlocksNewFlowsUntilHealed(t *testing.T) {
	e, f := newTestFabric(t, 3, Config{EgressBytesPerSec: 100})
	f.SetPartition([]int{2})
	var firstState FlowState
	f.StartFlow(0, 2, 500, "blocked", func(fl *Flow) { firstState = fl.State() })
	e.RunAll()
	if firstState != FlowFailed {
		t.Fatalf("flow into partition state %v, want failed", firstState)
	}
	f.ClearPartition()
	var secondState FlowState
	f.StartFlow(0, 2, 500, "healed", func(fl *Flow) { secondState = fl.State() })
	e.RunAll()
	if secondState != FlowDone {
		t.Fatalf("flow after heal state %v, want done", secondState)
	}
}

// A partition landing inside a flow's α startup window must fail the flow
// when the window elapses, not let it transfer across the cut.
func TestPartitionDuringStartupWindow(t *testing.T) {
	e, f := newTestFabric(t, 2, Config{EgressBytesPerSec: 100, Alpha: 1})
	var state FlowState
	f.StartFlow(0, 1, 500, "t", func(fl *Flow) { state = fl.State() })
	e.After(0.5, func() { f.SetPartition([]int{1}) })
	e.RunAll()
	if state != FlowFailed {
		t.Fatalf("flow partitioned mid-startup state %v, want failed", state)
	}
}

func TestNodeFailureDuringStartupWindow(t *testing.T) {
	e, f := newTestFabric(t, 2, Config{EgressBytesPerSec: 100, Alpha: 1})
	var state FlowState
	f.StartFlow(0, 1, 500, "t", func(fl *Flow) { state = fl.State() })
	e.After(0.5, func() { f.SetNodeUp(1, false) })
	e.RunAll()
	if state != FlowFailed {
		t.Fatalf("flow whose destination died mid-startup state %v, want failed", state)
	}
}

func TestNodeFactorSlowsFlows(t *testing.T) {
	e, f := newTestFabric(t, 2, Config{EgressBytesPerSec: 100})
	f.SetNodeFactor(1, 0.25)
	var done simclock.Time
	f.StartFlow(0, 1, 1000, "t", func(*Flow) { done = e.Now() })
	e.RunAll()
	want := simclock.Time(1000.0 / 25) // 100 B/s scaled to 25 B/s
	if math.Abs(float64(done-want)) > 1e-6 {
		t.Fatalf("straggler flow finished at %v, want %v", done, want)
	}
	if f.NodeFactor(1) != 0.25 || f.NodeFactor(0) != 1 {
		t.Fatal("NodeFactor accessors wrong")
	}
}

func TestLinkFactorCapsOneLinkOnly(t *testing.T) {
	e, f := newTestFabric(t, 3, Config{EgressBytesPerSec: 100})
	f.SetLinkFactor(0, 1, 0.1)
	var slow, fast simclock.Time
	f.StartFlow(0, 1, 100, "slow", func(*Flow) { slow = e.Now() })
	f.StartFlow(2, 1, 100, "fast", func(*Flow) { fast = e.Now() })
	e.RunAll()
	// Degraded link runs at 10 B/s; the other flow gets the ingress
	// remainder (90 B/s) once water-filling frees it.
	if math.Abs(float64(slow)-10) > 1e-6 {
		t.Fatalf("degraded flow finished at %v, want 10", slow)
	}
	if fast >= slow {
		t.Fatalf("undegraded flow (%v) not faster than degraded (%v)", fast, slow)
	}
	// Clearing the factor restores full speed.
	f.SetLinkFactor(0, 1, 1)
	var again simclock.Time
	f.StartFlow(0, 1, 100, "restored", func(*Flow) { again = e.Now() })
	e.RunAll()
	if math.Abs(float64(again-slow)-1) > 1e-6 {
		t.Fatalf("restored flow took %v, want 1s", again-slow)
	}
}

func TestPartitionGroupOverlapPanics(t *testing.T) {
	_, f := newTestFabric(t, 4, Config{EgressBytesPerSec: 100})
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping partition groups accepted")
		}
	}()
	f.SetPartition([]int{0, 1}, []int{1, 2})
}

func TestBadFactorsPanic(t *testing.T) {
	_, f := newTestFabric(t, 2, Config{EgressBytesPerSec: 100})
	for _, fn := range []func(){
		func() { f.SetNodeFactor(0, -0.25) },
		func() { f.SetNodeFactor(0, 1.5) },
		func() { f.SetLinkFactor(0, 1, -0.5) },
		func() { f.SetLinkFactor(0, 1, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad factor accepted")
				}
			}()
			fn()
		}()
	}
}
