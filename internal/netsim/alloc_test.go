// The steady-state allocation gate runs without the race detector: -race
// instruments allocations and would skew AllocsPerRun.
//go:build !race

package netsim

import (
	"testing"

	"gemini/internal/simclock"
)

// TestSteadyStateFabricEventsDoNotAllocate pins the engine's core
// guarantee: once a fabric's scratch is warm, rate recomputation — settle,
// component collection, waterfill, ETA-heap maintenance, and event
// rearming — allocates nothing. Only flow creation allocates.
func TestSteadyStateFabricEventsDoNotAllocate(t *testing.T) {
	e := simclock.NewEngine()
	f := MustNewFabric(e, 32, Config{EgressBytesPerSec: 1e9})
	for i := 0; i < 32; i++ {
		f.StartFlow(i, (i+1)%32, 1e15, "bg", nil)
	}
	e.Run(1)
	// Each toggle dirties node 1, re-collects its component (the whole
	// ring), re-waterfills 32 flows, fixes their heap ETAs, and rearms
	// both persistent events — the full steady-state event path.
	toggle := func(factor float64) {
		f.SetNodeFactor(1, factor)
		e.Run(e.Now())
	}
	toggle(0.5)
	toggle(1)
	allocs := testing.AllocsPerRun(50, func() {
		toggle(0.5)
		toggle(1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state fabric events allocate %v times/op, want 0", allocs)
	}
}
