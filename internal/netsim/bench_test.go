package netsim

import (
	"testing"

	"gemini/internal/simclock"
)

// BenchmarkFabricManyFlows measures the fluid simulator's event cost:
// 16 machines, 200 sequential collectives' worth of neighbor flows.
func BenchmarkFabricManyFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := simclock.NewEngine()
		f := MustNewFabric(e, 16, Config{EgressBytesPerSec: 50e9, Alpha: 0.001})
		for round := 0; round < 200; round++ {
			at := simclock.Time(round) * 0.05
			e.At(at, func() {
				for m := 0; m < 16; m++ {
					f.StartFlow(m, (m+1)%16, 1e8, "ag", nil)
				}
			})
		}
		e.RunAll()
	}
}

// BenchmarkRingRunAllGather measures a full step-by-step ring all-gather
// over 16 machines.
func BenchmarkRingRunAllGather(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := simclock.NewEngine()
		f := MustNewFabric(e, 16, Config{EgressBytesPerSec: 50e9, Alpha: 0.001})
		parts := make([]int, 16)
		for j := range parts {
			parts[j] = j
		}
		if _, err := StartRingRun(f, AllGather, parts, 1e9, nil); err != nil {
			b.Fatal(err)
		}
		e.RunAll()
	}
}

// BenchmarkMaxMinRecompute stresses the water-filling under a dense
// all-to-all flow pattern.
func BenchmarkMaxMinRecompute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := simclock.NewEngine()
		f := MustNewFabric(e, 8, Config{EgressBytesPerSec: 1e9})
		for src := 0; src < 8; src++ {
			for dst := 0; dst < 8; dst++ {
				if src != dst {
					f.StartFlow(src, dst, float64(1e6*(src+dst+1)), "x", nil)
				}
			}
		}
		e.RunAll()
	}
}
