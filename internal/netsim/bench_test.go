package netsim

import (
	"testing"

	"gemini/internal/simclock"
)

// BenchmarkFabricManyFlows measures the fluid simulator's event cost:
// 16 machines, 200 sequential collectives' worth of neighbor flows.
func BenchmarkFabricManyFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := simclock.NewEngine()
		f := MustNewFabric(e, 16, Config{EgressBytesPerSec: 50e9, Alpha: 0.001})
		for round := 0; round < 200; round++ {
			at := simclock.Time(round) * 0.05
			e.At(at, func() {
				for m := 0; m < 16; m++ {
					f.StartFlow(m, (m+1)%16, 1e8, "ag", nil)
				}
			})
		}
		e.RunAll()
	}
}

// BenchmarkRingRunAllGather measures a full step-by-step ring all-gather
// over 16 machines.
func BenchmarkRingRunAllGather(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := simclock.NewEngine()
		f := MustNewFabric(e, 16, Config{EgressBytesPerSec: 50e9, Alpha: 0.001})
		parts := make([]int, 16)
		for j := range parts {
			parts[j] = j
		}
		if _, err := StartRingRun(f, AllGather, parts, 1e9, nil); err != nil {
			b.Fatal(err)
		}
		e.RunAll()
	}
}

// benchFabricRingCkpt drives the fabric the way the §7 experiments do
// at scale: a synchronous ring all-gather over all n machines (every
// round starts n flows and barriers on the slowest) with n long-lived
// checkpoint flows overlapping it on the same NICs.
func benchFabricRingCkpt(b *testing.B, n, rounds int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := simclock.NewEngine()
		f := MustNewFabric(e, n, Config{EgressBytesPerSec: 50e9, Alpha: 0.001})
		for m := 0; m < n; m++ {
			f.StartFlow(m, (m+n/2)%n, 5e8, "ckpt", nil)
		}
		round := 0
		var step func()
		step = func() {
			remaining := n
			for m := 0; m < n; m++ {
				f.StartFlow(m, (m+1)%n, 1e8, "ag", func(*Flow) {
					remaining--
					if remaining == 0 {
						round++
						if round < rounds {
							step()
						}
					}
				})
			}
		}
		step()
		e.RunAll()
	}
}

func BenchmarkFabricRing64(b *testing.B)   { benchFabricRingCkpt(b, 64, 8) }
func BenchmarkFabricRing512(b *testing.B)  { benchFabricRingCkpt(b, 512, 8) }
func BenchmarkFabricRing4096(b *testing.B) { benchFabricRingCkpt(b, 4096, 8) }

// BenchmarkMaxMinRecompute stresses the water-filling under a dense
// all-to-all flow pattern.
func BenchmarkMaxMinRecompute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := simclock.NewEngine()
		f := MustNewFabric(e, 8, Config{EgressBytesPerSec: 1e9})
		for src := 0; src < 8; src++ {
			for dst := 0; dst < 8; dst++ {
				if src != dst {
					f.StartFlow(src, dst, float64(1e6*(src+dst+1)), "x", nil)
				}
			}
		}
		e.RunAll()
	}
}
