package netsim

import (
	"math"
	"testing"

	"gemini/internal/simclock"
)

func ringFixture(t *testing.T, n int, alpha simclock.Duration) (*simclock.Engine, *Fabric, []int) {
	t.Helper()
	e := simclock.NewEngine()
	f := MustNewFabric(e, n, Config{EgressBytesPerSec: 1000, Alpha: alpha})
	parts := make([]int, n)
	for i := range parts {
		parts[i] = i
	}
	return e, f, parts
}

// The headline validation: the step-by-step ring execution on the fluid
// fabric reproduces the closed-form CollectiveTime exactly when the
// network is otherwise idle.
func TestRingRunMatchesAnalyticModel(t *testing.T) {
	for _, c := range []struct {
		n     int
		kind  CollectiveKind
		bytes float64
		alpha simclock.Duration
	}{
		{4, AllGather, 4000, 0},
		{4, AllGather, 4000, 0.5},
		{8, ReduceScatter, 16000, 0.25},
		{4, AllReduce, 4000, 0.1},
		{2, AllGather, 1000, 0},
	} {
		e, f, parts := ringFixture(t, c.n, c.alpha)
		var run *RingRun
		var err error
		run, err = StartRingRun(f, c.kind, parts, c.bytes, nil)
		if err != nil {
			t.Fatal(err)
		}
		e.RunAll()
		want := CollectiveTime(c.kind, c.n, c.bytes, 1000, c.alpha)
		if got := run.Elapsed(); math.Abs((got - want).Seconds()) > 1e-9 {
			t.Errorf("%v n=%d α=%v: ring run %v, analytic %v", c.kind, c.n, c.alpha, got, want)
		}
		if run.Failed() {
			t.Errorf("%v run failed", c.kind)
		}
	}
}

func TestRingRunSingleParticipantFree(t *testing.T) {
	e, f, _ := ringFixture(t, 2, 0)
	done := false
	if _, err := StartRingRun(f, AllGather, []int{0}, 1000, func(r *RingRun) {
		done = true
		if r.Elapsed() != 0 {
			t.Errorf("single-participant collective took %v", r.Elapsed())
		}
	}); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if !done {
		t.Fatal("callback never fired")
	}
}

func TestRingRunContentionSlowsItDown(t *testing.T) {
	// A competing bulk flow on one link steals bandwidth; the collective
	// must take longer than the analytic uncontended time.
	e, f, parts := ringFixture(t, 4, 0)
	f.StartFlow(0, 1, 50_000, "bulk", nil)
	var run *RingRun
	var err error
	run, err = StartRingRun(f, AllGather, parts, 4000, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	uncontended := CollectiveTime(AllGather, 4, 4000, 1000, 0)
	if run.Elapsed() <= uncontended {
		t.Fatalf("contended run %v not slower than uncontended %v", run.Elapsed(), uncontended)
	}
}

func TestRingRunParticipantFailure(t *testing.T) {
	e, f, parts := ringFixture(t, 4, 0)
	var failed bool
	if _, err := StartRingRun(f, AllGather, parts, 40_000, func(r *RingRun) {
		failed = r.Failed()
	}); err != nil {
		t.Fatal(err)
	}
	e.At(1, func() { f.SetNodeUp(2, false) })
	e.RunAll()
	if !failed {
		t.Fatal("collective survived a participant failure")
	}
}

func TestRingRunValidation(t *testing.T) {
	_, f, _ := ringFixture(t, 4, 0)
	if _, err := StartRingRun(f, AllGather, nil, 100, nil); err == nil {
		t.Error("empty participants accepted")
	}
	if _, err := StartRingRun(f, AllGather, []int{0, 0}, 100, nil); err == nil {
		t.Error("duplicate participants accepted")
	}
	if _, err := StartRingRun(f, AllGather, []int{0, 1}, -1, nil); err == nil {
		t.Error("negative payload accepted")
	}
}

func TestRingRunZeroBytes(t *testing.T) {
	e, f, parts := ringFixture(t, 4, 0)
	done := false
	if _, err := StartRingRun(f, AllGather, parts, 0, func(*RingRun) { done = true }); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if !done {
		t.Fatal("zero-byte collective never completed")
	}
}
