package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"gemini/internal/simclock"
)

func TestCollectiveSingleParticipantIsFree(t *testing.T) {
	for _, k := range []CollectiveKind{AllGather, ReduceScatter, AllReduce, Broadcast} {
		if got := CollectiveTime(k, 1, 1e9, 100, 0.1); got != 0 {
			t.Errorf("%v over 1 participant = %v, want 0", k, got)
		}
	}
}

func TestAllGatherCost(t *testing.T) {
	// n=4, total 4000 bytes, B=100, α=0: 3 steps × 1000 bytes / 100 = 30s.
	got := CollectiveTime(AllGather, 4, 4000, 100, 0)
	if math.Abs(got.Seconds()-30) > 1e-9 {
		t.Fatalf("all-gather = %v, want 30s", got)
	}
	// With α=1: add 3 step latencies.
	got = CollectiveTime(AllGather, 4, 4000, 100, 1)
	if math.Abs(got.Seconds()-33) > 1e-9 {
		t.Fatalf("all-gather with alpha = %v, want 33s", got)
	}
}

func TestAllReduceIsTwiceReduceScatter(t *testing.T) {
	rs := CollectiveTime(ReduceScatter, 8, 1e6, 1000, 0.01)
	ar := CollectiveTime(AllReduce, 8, 1e6, 1000, 0.01)
	if math.Abs(ar.Seconds()-2*rs.Seconds()) > 1e-9 {
		t.Fatalf("all-reduce %v, want 2× reduce-scatter %v", ar, rs)
	}
}

func TestBroadcastPipelined(t *testing.T) {
	// Pipelined broadcast: bandwidth term is the full payload once.
	got := CollectiveTime(Broadcast, 4, 4000, 100, 0)
	if math.Abs(got.Seconds()-40) > 1e-9 {
		t.Fatalf("broadcast = %v, want 40s", got)
	}
}

func TestCollectivePanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { CollectiveTime(AllGather, 0, 1, 1, 0) },
		func() { CollectiveTime(AllGather, 2, -1, 1, 0) },
		func() { CollectiveTime(AllGather, 2, 1, 0, 0) },
		func() { CollectiveTime(CollectiveKind(42), 2, 1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad collective input did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestBusyFraction(t *testing.T) {
	// With α=0 the NIC is busy the whole time.
	if got := BusyFraction(AllGather, 8, 1e6, 1000, 0); math.Abs(got-1) > 1e-9 {
		t.Fatalf("busy fraction with zero alpha = %v, want 1", got)
	}
	// With huge α the fraction tends to zero.
	if got := BusyFraction(AllGather, 8, 1, 1e12, 10); got > 0.01 {
		t.Fatalf("busy fraction with huge alpha = %v, want ≈0", got)
	}
}

func TestCollectiveKindString(t *testing.T) {
	cases := map[CollectiveKind]string{
		AllGather: "all-gather", ReduceScatter: "reduce-scatter",
		AllReduce: "all-reduce", Broadcast: "broadcast",
		CollectiveKind(9): "CollectiveKind(9)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

// Property: collective time is monotone in payload size and in participant
// count for ring all-gather, and inversely monotone in bandwidth.
func TestPropertyCollectiveMonotonicity(t *testing.T) {
	f := func(b1, b2 uint32, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		lo, hi := float64(b1%1e6), float64(b2%1e6)
		if lo > hi {
			lo, hi = hi, lo
		}
		tLo := CollectiveTime(AllGather, n, lo, 1000, 0.001)
		tHi := CollectiveTime(AllGather, n, hi, 1000, 0.001)
		if tLo > tHi {
			return false
		}
		// Doubling bandwidth cannot increase time.
		tFast := CollectiveTime(AllGather, n, hi, 2000, 0.001)
		return tFast <= tHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the per-participant bytes of an all-gather approach the full
// payload as n grows: time(n) is increasing in n for fixed total bytes
// only through the latency term; the bandwidth term (n−1)/n·S/B increases
// toward S/B.
func TestPropertyAllGatherBandwidthTermBounded(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%62) + 2
		tt := CollectiveTime(AllGather, n, 1e6, 1000, 0)
		limit := simclock.Duration(1e6 / 1000.0)
		return tt < limit && tt >= limit/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
