package netsim

import (
	"fmt"
	"math"
	"testing"

	"gemini/internal/simclock"
)

// runContendedFabric drives a fabric through simultaneous completions, a
// node failure, and a partition, recording every callback. The engine
// promises the exact same sequence on every run: completions fire in
// (ETA, flow-sequence) order and failures in flow-start order, never in
// Go map-iteration order.
func runContendedFabric() []string {
	e := simclock.NewEngine()
	f := MustNewFabric(e, 8, Config{EgressBytesPerSec: 1000, Alpha: 0.01})
	var order []string
	for i := 0; i < 8; i++ {
		i := i
		record := func(fl *Flow) {
			order = append(order, fmt.Sprintf("%s:%v@%v", fl.Label, fl.State(), e.Now()))
		}
		f.StartFlow(i, (i+1)%8, 5000, fmt.Sprintf("ring%d", i), record)
		f.StartFlow(i, (i+4)%8, 5000, fmt.Sprintf("cross%d", i), record)
	}
	e.At(2, func() { f.SetNodeUp(3, false) })
	e.At(4, func() { f.SetPartition([]int{0, 1, 2}) })
	e.RunAll()
	return order
}

func TestCompletionOrderDeterministic(t *testing.T) {
	first := runContendedFabric()
	if len(first) != 16 {
		t.Fatalf("got %d callbacks, want 16 (every flow terminal)", len(first))
	}
	for run := 0; run < 3; run++ {
		again := runContendedFabric()
		if len(again) != len(first) {
			t.Fatalf("run %d: %d callbacks, want %d", run, len(again), len(first))
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("run %d: callback %d = %q, want %q", run, i, again[i], first[i])
			}
		}
	}
}

func TestSameInstantCompletionsFireInStartOrder(t *testing.T) {
	// Four equal flows from one source saturate its egress together and
	// drain at the same instant; callbacks must fire in start order.
	e, f := newTestFabric(t, 5, Config{EgressBytesPerSec: 100})
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		f.StartFlow(0, i+1, 1000, "eq", func(*Flow) { order = append(order, i) })
	}
	e.RunAll()
	if len(order) != 4 {
		t.Fatalf("got %d completions, want 4", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("completion order %v, want [0 1 2 3]", order)
		}
	}
}

func TestCancelDuringStartupWindow(t *testing.T) {
	e, f := newTestFabric(t, 2, Config{EgressBytesPerSec: 100, Alpha: 1})
	var state FlowState = -1
	fl := f.StartFlow(0, 1, 1000, "t", func(fl *Flow) { state = fl.State() })
	e.At(0.5, func() { fl.Cancel() })
	e.RunAll()
	if state != FlowCanceled {
		t.Fatalf("flow canceled mid-startup ended %v, want canceled", state)
	}
	if fl.FinishedAt() != 0.5 {
		t.Fatalf("finished at %v, want 0.5", fl.FinishedAt())
	}
	if fl.Remaining() != 1000 {
		t.Fatalf("remaining %v, want 1000 (never carried a byte)", fl.Remaining())
	}
	if f.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows %d, want 0", f.ActiveFlows())
	}
	if bt := f.BusyTime(0); bt != 0 {
		t.Fatalf("busy time %v, want 0 (flow never activated)", bt)
	}
}

// A completion and an endpoint failure landing at the same instant: the
// completion (priority −10) fires before the user event, and the failure
// settles the victim's bytes before failing it.
func TestEndpointFailureAtCompletionInstant(t *testing.T) {
	e, f := newTestFabric(t, 4, Config{EgressBytesPerSec: 100})
	var order []string
	a := f.StartFlow(0, 1, 1000, "a", func(fl *Flow) {
		order = append(order, fmt.Sprintf("a:%v", fl.State()))
	})
	b := f.StartFlow(2, 3, 10000, "b", func(fl *Flow) {
		order = append(order, fmt.Sprintf("b:%v", fl.State()))
	})
	e.At(10, func() { f.SetNodeUp(3, false) })
	e.RunAll()
	if len(order) != 2 || order[0] != "a:done" || order[1] != "b:failed" {
		t.Fatalf("callback order %v, want [a:done b:failed]", order)
	}
	if a.FinishedAt() != 10 || b.FinishedAt() != 10 {
		t.Fatalf("finish times %v/%v, want 10/10", a.FinishedAt(), b.FinishedAt())
	}
	if rem := b.Remaining(); math.Abs(rem-9000) > 1e-6 {
		t.Fatalf("failed flow remaining %v, want 9000", rem)
	}
}

func TestZeroBandwidthNodeParksFlows(t *testing.T) {
	e, f := newTestFabric(t, 3, Config{EgressBytesPerSec: 100})
	var done simclock.Time
	fl := f.StartFlow(0, 1, 1000, "parked", func(*Flow) { done = e.Now() })
	e.At(5, func() { f.SetNodeFactor(1, 0) })
	e.At(8, func() { f.SetNodeFactor(1, 1) })
	e.Run(6)
	if fl.State() != FlowActive || fl.Rate() != 0 {
		t.Fatalf("parked flow state %v rate %v, want active at rate 0", fl.State(), fl.Rate())
	}
	if rem := fl.Remaining(); math.Abs(rem-500) > 1e-6 {
		t.Fatalf("parked flow remaining %v, want 500", rem)
	}
	// A parked flow must not spin the event loop: nothing fires while the
	// node stays at zero bandwidth.
	if fired := e.Run(7.9); fired != 0 {
		t.Fatalf("event loop fired %d events while parked, want 0", fired)
	}
	e.RunAll()
	// 5 s at 100 B/s, 3 s parked, then the remaining 500 bytes.
	if math.Abs(float64(done)-13) > 1e-6 {
		t.Fatalf("flow finished at %v, want 13", done)
	}
}

func TestFlowIntoZeroBandwidthNodeParksImmediately(t *testing.T) {
	e, f := newTestFabric(t, 2, Config{EgressBytesPerSec: 100})
	f.SetNodeFactor(1, 0)
	fl := f.StartFlow(0, 1, 1000, "t", nil)
	fired := e.RunAll()
	if fl.State() != FlowActive || fl.Rate() != 0 || fl.Remaining() != 1000 {
		t.Fatalf("flow state %v rate %v remaining %v, want parked active", fl.State(), fl.Rate(), fl.Remaining())
	}
	if fired > 4 {
		t.Fatalf("event loop fired %d events for a parked flow, want a handful", fired)
	}
	if e.Now() != 0 {
		t.Fatalf("clock advanced to %v for a parked flow", e.Now())
	}
	f.SetNodeFactor(1, 1)
	e.RunAll()
	if fl.State() != FlowDone || fl.FinishedAt() != 10 {
		t.Fatalf("unparked flow state %v finished %v, want done at 10", fl.State(), fl.FinishedAt())
	}
}

func TestFabricStatsCounters(t *testing.T) {
	e, f := newTestFabric(t, 4, Config{EgressBytesPerSec: 100})
	f.StartFlow(0, 1, 1000, "a", nil)
	f.StartFlow(0, 2, 1000, "b", nil)
	f.StartFlow(2, 3, 1000, "c", nil)
	e.RunAll()
	s := f.Stats()
	if s.FlowsStarted != 3 || s.FlowsFinished != 3 {
		t.Fatalf("flow counts %d/%d, want 3/3", s.FlowsStarted, s.FlowsFinished)
	}
	if s.PeakConcurrentFlows != 3 {
		t.Fatalf("peak flows %d, want 3", s.PeakConcurrentFlows)
	}
	if s.Recomputes == 0 || s.Waterfills == 0 || s.WaterfillRounds < s.Waterfills {
		t.Fatalf("recompute counters not advancing: %+v", s)
	}
	if hr := s.DirtyHitRate(); hr < 0 || hr > 1 {
		t.Fatalf("dirty hit rate %v out of [0,1]", hr)
	}
	cs := s.Counters()
	if v, ok := cs.Get("flows_started"); !ok || v != 3 {
		t.Fatalf("counter flows_started = %v/%v, want 3", v, ok)
	}
	if _, ok := cs.Get("dirty_hit_rate"); !ok {
		t.Fatal("dirty_hit_rate counter missing")
	}
}
