package experiments

import (
	"fmt"
	"strings"

	"gemini/internal/baselines"
	"gemini/internal/cloud"
	"gemini/internal/cluster"
	"gemini/internal/failure"
	"gemini/internal/placement"
	"gemini/internal/runsim"
	"gemini/internal/simclock"
)

// Fig14 reproduces the failure-recovery timeline: GPT-2 100B training on
// 16 p4d machines, one hardware failure during iteration 4, driven
// through the live agent system. The output is the event trace with the
// per-phase durations the paper annotates (detection 15 s, serialization
// 162 s, replacement 4–7 min, retrieval <3 s, warmup >4 min).
func Fig14() (string, error) {
	job, err := jobFor("GPT-2 100B", "p4d.24xlarge")
	if err != nil {
		return "", err
	}
	engine, sys, err := job.RecoverySystem(cloud.DefaultConfig())
	if err != nil {
		return "", err
	}
	sys.Start()
	iter := job.Timeline.Iteration
	engine.At(simclock.Time(3*iter)+simclock.Time(iter)/2, func() {
		sys.InjectFailure(7, cluster.HardwareFailed)
	})
	engine.Run(simclock.Time(30 * iter))
	if sys.Recoveries() != 1 {
		return "", fmt.Errorf("experiments: fig14 expected one recovery, got %d", sys.Recoveries())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "iteration time %.1f s; failure injected during iteration 4\n\n", iter.Seconds())
	var prev simclock.Time
	for _, ev := range sys.Log().Events() {
		fmt.Fprintf(&b, "%10.1fs  (+%6.1fs)  %-12s %-18s %s\n",
			float64(ev.At), float64(ev.At.Sub(prev)), ev.Subject, ev.Kind, ev.Detail)
		prev = ev.At
	}
	return b.String(), nil
}

// fig15Specs builds the three solutions for the §7.3 simulations using
// the 16-machine testbed overheads, per the paper's methodology.
func fig15Specs() (straw, high, gem baselines.Spec, err error) {
	job, err := jobFor("GPT-2 100B", "p4d.24xlarge")
	if err != nil {
		return
	}
	return job.StrawmanSpec(), job.HighFreqSpec(), job.GeminiSpec(), nil
}

// simulateRatio averages the effective ratio over several Poisson
// failure schedules (fixed seeds, so output stays deterministic) to avoid
// phase aliasing between failure spacing and checkpoint intervals.
func simulateRatio(spec baselines.Spec, n int, failuresPerDay float64, horizon simclock.Duration) (float64, error) {
	const seeds = 5
	var plc *placement.Placement
	if spec.UsesCPUMemory {
		var err error
		if plc, err = placement.Mixed(n, 2); err != nil {
			return 0, err
		}
	}
	m := failure.Model{PerInstancePerDay: failuresPerDay / float64(n)}
	var sum float64
	for seed := int64(1); seed <= seeds; seed++ {
		fs, err := m.Generate(n, horizon, seed)
		if err != nil {
			return 0, err
		}
		res, err := runsim.Run(runsim.Config{Spec: spec, Placement: plc, Machines: n, Failures: fs, Horizon: horizon})
		if err != nil {
			return 0, err
		}
		sum += res.EffectiveRatio
	}
	return sum / seeds, nil
}

// Fig15a sweeps the failure rate (software failures, standby machines
// assumed for hardware per §7.3) at 16 instances.
func Fig15a() (string, error) {
	straw, high, gem, err := fig15Specs()
	if err != nil {
		return "", err
	}
	horizon := 10 * simclock.Day
	t := newTable("Failures/day", "Strawman", "HighFreq", "GEMINI")
	for _, perDay := range []float64{0, 2, 4, 6, 8} {
		s, err := simulateRatio(straw, testbedMachines, perDay, horizon)
		if err != nil {
			return "", err
		}
		h, err := simulateRatio(high, testbedMachines, perDay, horizon)
		if err != nil {
			return "", err
		}
		g, err := simulateRatio(gem, testbedMachines, perDay, horizon)
		if err != nil {
			return "", err
		}
		t.addf("%.0f|%.3f|%.3f|%.3f", perDay, s, h, g)
	}
	return t.String(), nil
}

// Fig15b sweeps the cluster size with the OPT-175B failure rate (1.5% of
// instances per day).
func Fig15b() (string, error) {
	straw, high, gem, err := fig15Specs()
	if err != nil {
		return "", err
	}
	horizon := 10 * simclock.Day
	rate := failure.OPTModel()
	t := newTable("Instances", "Failures/day", "Strawman", "HighFreq", "GEMINI")
	for _, n := range []int{16, 100, 200, 400, 600, 800, 1000} {
		perDay := rate.ClusterFailuresPerDay(n)
		s, err := simulateRatio(straw, n, perDay, horizon)
		if err != nil {
			return "", err
		}
		h, err := simulateRatio(high, n, perDay, horizon)
		if err != nil {
			return "", err
		}
		g, err := simulateRatio(gem, n, perDay, horizon)
		if err != nil {
			return "", err
		}
		t.addf("%d|%.1f|%.3f|%.3f|%.3f", n, perDay, s, h, g)
	}
	return t.String(), nil
}
