package experiments

import (
	"gemini/internal/agent"
	"gemini/internal/chaos"
	"gemini/internal/cloud"
	"gemini/internal/cluster"
	"gemini/internal/core"
	"gemini/internal/metrics"
	"gemini/internal/simclock"
	"gemini/internal/strategy"
)

// raceRow is one strategy's outcome under the shared failure schedule.
type raceRow struct {
	name       string
	recoveries int
	wasted     simclock.Duration
	lost       simclock.Duration
	recovery   simclock.Duration
	traffic    agent.Traffic
	switches   float64
	final      string
}

// strategyRaceSchedule builds the three-phase mixed-failure scenario
// every strategy runs against. A hardware wave (machines die, their
// GPU buffers with them, and replacements arrive) punishes the tiered
// policy's coarse CPU cadence and rewards GEMINI's per-iteration
// replication; a software-crash burst (process faults — machines and
// their device memory survive) rewards the tiered GPU fast path, which
// skips both the serialize stall and any iteration loss; a closing
// quiet stretch (sporadic crashes, observed MTBF above the adaptive
// rule's threshold) is where sparse's cheap delta replication is the
// right trade. No fixed policy wins all three phases. Failures hit one
// rank at a time, never rank 0 (the root) and never two ranks of the
// same replica group at once, so every recovery stays on the in-memory
// tier and the comparison isolates strategy effects from
// remote-fallback noise.
func strategyRaceSchedule(iter simclock.Duration) (chaos.Schedule, simclock.Time, error) {
	b := chaos.NewBuilder()
	hard := []int{14, 2, 12, 4, 8, 15, 5, 9, 13, 3}
	soft := []int{5, 9, 13, 3, 7, 11, 15, 1, 6, 10}
	quiet := []int{2, 11, 6, 14, 7}
	at := 20*iter + iter/2
	const spacing = 100 // iterations between burst-phase failures
	for _, rank := range hard {
		b.Crash(simclock.Time(at), rank, cluster.HardwareFailed)
		at += spacing * iter
	}
	for _, rank := range soft {
		b.Crash(simclock.Time(at), rank, cluster.SoftwareFailed)
		at += spacing * iter
	}
	for _, rank := range quiet {
		at += 300 * iter // 4× the burst spacing: MTBF climbs past quiet
		b.Crash(simclock.Time(at), rank, cluster.SoftwareFailed)
		at += spacing * iter
	}
	sched, err := b.Build(testbedMachines)
	if err != nil {
		return nil, 0, err
	}
	return sched, simclock.Time(at + 150*iter), nil
}

// strategyRaceRows runs every registered strategy against the shared
// schedule and returns one row per strategy, in registry order.
func strategyRaceRows() ([]raceRow, error) {
	base, err := jobFor("GPT-2 40B", "p3dn.24xlarge")
	if err != nil {
		return nil, err
	}
	sched, horizon, err := strategyRaceSchedule(base.Timeline.Iteration)
	if err != nil {
		return nil, err
	}
	rows := make([]raceRow, 0, len(strategy.Names()))
	for _, name := range strategy.Names() {
		reg := metrics.NewRegistry()
		job, err := core.NewJob(core.JobSpec{
			Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: testbedMachines,
			Strategy: name, Faults: sched, Metrics: reg,
		})
		if err != nil {
			return nil, err
		}
		engine, sys, err := job.RecoverySystem(cloud.DefaultConfig())
		if err != nil {
			return nil, err
		}
		sys.Start()
		engine.Run(horizon)
		row := raceRow{name: name, recoveries: sys.Recoveries(), traffic: sys.Traffic(), final: sys.Strategy().Active()}
		for _, ev := range sys.WastedEvents() {
			row.wasted += ev.Wasted()
			row.lost += ev.TLost
			row.recovery += ev.TRecovery
		}
		if v, ok := reg.Snapshot().Get("strategy.switches"); ok {
			row.switches = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// StrategyRace races the registered checkpoint strategies — gemini,
// tiered, sparse, and the adaptive selector — through one identical
// seeded mixed-failure schedule (GPT-2 40B on 16 p3dn machines: a
// hardware wave, a software-crash burst, then a quiet stretch) and
// tabulates the §7 axes: total wasted time (Eq. 1), its
// T_lost/T_recovery split, and the bytes each policy moved for
// replication, recovery retrieval, and remote persistence. The
// adaptive row should match or beat the best fixed policy on wasted
// time by switching phases mid-run; its switch count and final policy
// make the trajectory visible.
func StrategyRace() (string, error) {
	rows, err := strategyRaceRows()
	if err != nil {
		return "", err
	}
	t := newTable("Strategy", "Recoveries", "Wasted", "T_lost", "T_recovery",
		"Replication", "Retrieval", "Remote", "Switches", "Final policy")
	for _, r := range rows {
		t.addf("%s|%d|%.0f s|%.0f s|%.0f s|%s|%s|%s|%.0f|%s",
			r.name, r.recoveries, r.wasted.Seconds(), r.lost.Seconds(), r.recovery.Seconds(),
			gb(r.traffic.Replication), gb(r.traffic.Retrieval), gb(r.traffic.Remote),
			r.switches, r.final)
	}
	return t.String(), nil
}
