package experiments

import (
	"strings"
	"testing"
)

// Every experiment must run and produce a non-trivial table. Content
// correctness is asserted by the per-package tests; here we verify the
// harness end to end and a few headline numbers embedded in the output.

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(strings.Split(out, "\n")) < 3 {
				t.Fatalf("%s produced a trivial table:\n%s", e.ID, out)
			}
		})
	}
}

func TestAblationsRun(t *testing.T) {
	for _, e := range Ablations() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(strings.Split(out, "\n")) < 3 {
				t.Fatalf("%s produced a trivial table:\n%s", e.ID, out)
			}
		})
	}
}

func TestAblationGammaShowsOverflowAtLowGamma(t *testing.T) {
	out, err := AblationGamma()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "false") {
		t.Fatalf("γ sweep never overflows — the knob does nothing:\n%s", out)
	}
	if !strings.Contains(out, "true") {
		t.Fatalf("γ sweep never fits:\n%s", out)
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig9")
	if err != nil || e.ID != "fig9" {
		t.Fatalf("ByID(fig9) = %+v, %v", e, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestTable1ShowsRatioAboveOne(t *testing.T) {
	out, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "p4d.24xlarge") || !strings.Contains(out, "1152 GB") {
		t.Fatalf("Table 1 missing p4d row:\n%s", out)
	}
}

func TestFig9ShowsPaperNumbers(t *testing.T) {
	out, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// N=16 row: GEMINI k=2 0.933, k=3 0.800, ring k=3 0.600.
	var found bool
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "16 ") {
			found = true
			for _, want := range []string{"0.933", "0.800", "0.600"} {
				if !strings.Contains(line, want) {
					t.Fatalf("Fig 9 N=16 row %q missing %s", line, want)
				}
			}
		}
	}
	if !found {
		t.Fatalf("Fig 9 has no N=16 row:\n%s", out)
	}
}

func TestFig16ShowsNaiveOOM(t *testing.T) {
	out, err := Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "OOM") {
		t.Fatalf("Fig 16 missing the naive-interleave OOM:\n%s", out)
	}
	if !strings.Contains(out, "GEMINI") || !strings.Contains(out, "Blocking") {
		t.Fatalf("Fig 16 missing schemes:\n%s", out)
	}
}

func TestFig14ShowsRecoveryPhases(t *testing.T) {
	out, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"failure-detected", "serialized", "replaced", "retrieved", "recovery-complete"} {
		if !strings.Contains(out, phase) {
			t.Fatalf("Fig 14 timeline missing %q:\n%s", phase, out)
		}
	}
}
