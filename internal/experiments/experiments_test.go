package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// Every experiment must run and produce a non-trivial table. Content
// correctness is asserted by the per-package tests; here we verify the
// harness end to end and a few headline numbers embedded in the output.

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(strings.Split(out, "\n")) < 3 {
				t.Fatalf("%s produced a trivial table:\n%s", e.ID, out)
			}
		})
	}
}

func TestAblationsRun(t *testing.T) {
	for _, e := range Ablations() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(strings.Split(out, "\n")) < 3 {
				t.Fatalf("%s produced a trivial table:\n%s", e.ID, out)
			}
		})
	}
}

func TestAblationGammaShowsOverflowAtLowGamma(t *testing.T) {
	out, err := AblationGamma()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "false") {
		t.Fatalf("γ sweep never overflows — the knob does nothing:\n%s", out)
	}
	if !strings.Contains(out, "true") {
		t.Fatalf("γ sweep never fits:\n%s", out)
	}
}

// RunAll must return the same outputs as running each experiment
// serially, in the same order, at every worker count. Running this under
// `go test -race` is also the proof that the experiments are safe to run
// concurrently — they share no mutable state.
func TestRunAllMatchesSerial(t *testing.T) {
	exps := append(All(), Ablations()...)
	want := make([]string, len(exps))
	for i, e := range exps {
		out, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		want[i] = out
	}
	for _, workers := range []int{1, 4} {
		results := RunAll(context.Background(), exps, workers)
		if len(results) != len(exps) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(results), len(exps))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d %s: %v", workers, r.ID, r.Err)
			}
			if r.ID != exps[i].ID {
				t.Fatalf("workers=%d slot %d: got %s, want %s (order lost)", workers, i, r.ID, exps[i].ID)
			}
			if r.Output != want[i] {
				t.Errorf("workers=%d %s: concurrent output differs from serial", workers, r.ID)
			}
		}
	}
}

// A failing experiment must be reported in its own Result without
// aborting the rest of the sweep.
func TestRunAllIsolatesFailures(t *testing.T) {
	boom := errors.New("boom")
	exps := []Experiment{
		{ID: "ok1", Title: "ok", Run: func() (string, error) { return "a", nil }},
		{ID: "bad", Title: "bad", Run: func() (string, error) { return "", boom }},
		{ID: "ok2", Title: "ok", Run: func() (string, error) { return "b", nil }},
	}
	results := RunAll(context.Background(), exps, 2)
	if results[0].Err != nil || results[0].Output != "a" {
		t.Fatalf("ok1: %+v", results[0])
	}
	if !errors.Is(results[1].Err, boom) {
		t.Fatalf("bad: err = %v, want boom", results[1].Err)
	}
	if results[2].Err != nil || results[2].Output != "b" {
		t.Fatalf("ok2: %+v", results[2])
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig9")
	if err != nil || e.ID != "fig9" {
		t.Fatalf("ByID(fig9) = %+v, %v", e, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestTable1ShowsRatioAboveOne(t *testing.T) {
	out, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "p4d.24xlarge") || !strings.Contains(out, "1152 GB") {
		t.Fatalf("Table 1 missing p4d row:\n%s", out)
	}
}

func TestFig9ShowsPaperNumbers(t *testing.T) {
	out, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// N=16 row: GEMINI k=2 0.933, k=3 0.800, ring k=3 0.600.
	var found bool
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "16 ") {
			found = true
			for _, want := range []string{"0.933", "0.800", "0.600"} {
				if !strings.Contains(line, want) {
					t.Fatalf("Fig 9 N=16 row %q missing %s", line, want)
				}
			}
		}
	}
	if !found {
		t.Fatalf("Fig 9 has no N=16 row:\n%s", out)
	}
}

func TestFig16ShowsNaiveOOM(t *testing.T) {
	out, err := Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "OOM") {
		t.Fatalf("Fig 16 missing the naive-interleave OOM:\n%s", out)
	}
	if !strings.Contains(out, "GEMINI") || !strings.Contains(out, "Blocking") {
		t.Fatalf("Fig 16 missing schemes:\n%s", out)
	}
}

func TestFig14ShowsRecoveryPhases(t *testing.T) {
	out, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"failure-detected", "serialized", "replaced", "retrieved", "recovery-complete"} {
		if !strings.Contains(out, phase) {
			t.Fatalf("Fig 14 timeline missing %q:\n%s", phase, out)
		}
	}
}
