package experiments

import "testing"

// The adaptive selector's reason to exist: on a schedule whose phases
// favor different fixed policies, switching must cost less than being
// wrong for a whole phase. Every strategy must survive all 25 injected
// failures, and adaptive's total wasted time must be no worse than the
// best fixed strategy's.
func TestStrategyRaceAdaptiveMatchesBestFixed(t *testing.T) {
	rows, err := strategyRaceRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 strategies", len(rows))
	}
	byName := map[string]raceRow{}
	for _, r := range rows {
		if r.recoveries != 25 {
			t.Errorf("%s: %d recoveries, want all 25 failures recovered", r.name, r.recoveries)
		}
		if r.wasted <= 0 {
			t.Errorf("%s: non-positive wasted time %v", r.name, r.wasted)
		}
		byName[r.name] = r
	}
	adaptive := byName["adaptive"]
	for _, fixed := range []string{"gemini", "sparse", "tiered"} {
		if f := byName[fixed]; adaptive.wasted > f.wasted {
			t.Errorf("adaptive wasted %.0f s > fixed %s %.0f s", adaptive.wasted.Seconds(),
				fixed, f.wasted.Seconds())
		}
	}
	// The schedule's three phases argue for different policies, so the
	// selector must actually have moved: gemini through the hardware
	// wave (its starting policy — no switch), to tiered once the
	// software burst dominates the window, to sparse once the quiet
	// stretch lifts the observed MTBF past the threshold.
	if adaptive.switches < 2 {
		t.Errorf("adaptive switched %v times, want ≥ 2 (burst → tiered, quiet → sparse)", adaptive.switches)
	}
	if adaptive.final != "sparse" {
		t.Errorf("adaptive ended on %q, want sparse after the quiet stretch", adaptive.final)
	}
	// Sparse's delta scheme must show up on the cost axis: strictly less
	// replication traffic than gemini's full-shard-per-iteration.
	if byName["sparse"].traffic.Replication >= byName["gemini"].traffic.Replication {
		t.Errorf("sparse replication %v B not below gemini %v B",
			byName["sparse"].traffic.Replication, byName["gemini"].traffic.Replication)
	}
}
