package experiments

import (
	"context"
	"sync"
	"testing"

	"gemini/internal/baselines"
	"gemini/internal/derive"
)

func expsByID(t *testing.T, ids ...string) []Experiment {
	t.Helper()
	out := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

// The -race hammer: many goroutines resolve the same and different
// derivation keys concurrently — some through experiments.RunAll (the
// 18 job-construction sites collapse onto the shared cache), some
// through direct cache gets, with periodic Clear calls forcing misses,
// rebuilds, and evictions mid-flight. The test asserts nothing beyond
// "no error": its job is to put the cache's locking in front of the
// race detector under realistic contention.
func TestDerivationCacheRaceHammer(t *testing.T) {
	exps := expsByID(t, "fig10", "fig11", "fig12")
	keys := []derive.Key{
		{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16, Replicas: 2, RemoteBandwidth: baselines.DefaultRemoteBandwidth},
		{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16, Replicas: 3, RemoteBandwidth: baselines.DefaultRemoteBandwidth},
		{Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: 16, Replicas: 2, RemoteBandwidth: baselines.DefaultRemoteBandwidth},
	}

	var wg sync.WaitGroup
	// Sweep runners: concurrent RunAll invocations, each itself parallel.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for _, r := range RunAll(context.Background(), exps, 3) {
					if r.Err != nil {
						t.Errorf("%s: %v", r.ID, r.Err)
					}
				}
			}
		}()
	}
	// Direct resolvers: tight loops over a mix of hot and distinct keys.
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := derive.Shared().Get(keys[(g+i)%len(keys)]); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Churn: clear the cache while everyone else is resolving.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			derive.Shared().Clear()
		}
	}()
	wg.Wait()
}

// The determinism sweep extended to the cache dimension: experiment
// output must be bit-identical whether the derivation cache is cold or
// warm, and at any worker count.
func TestRunAllBitIdenticalAcrossCacheStatesAndWorkers(t *testing.T) {
	exps := expsByID(t, "table1", "fig9", "fig10", "fig12")

	derive.Shared().Clear()
	ref := RunAll(context.Background(), exps, 1)
	for _, r := range ref {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
	}

	for _, bc := range []struct {
		name    string
		workers int
		cold    bool
	}{
		{"warm-serial", 1, false},
		{"warm-parallel", 4, false},
		{"cold-serial", 1, true},
		{"cold-parallel", 4, true},
	} {
		t.Run(bc.name, func(t *testing.T) {
			if bc.cold {
				derive.Shared().Clear()
			}
			got := RunAll(context.Background(), exps, bc.workers)
			for i, r := range got {
				if r.Err != nil {
					t.Fatalf("%s: %v", r.ID, r.Err)
				}
				if r.Output != ref[i].Output {
					t.Errorf("%s output diverged from the cold-serial reference", r.ID)
				}
			}
		})
	}
}
