package experiments

import (
	"fmt"

	"gemini/internal/baselines"
	"gemini/internal/cluster"
	"gemini/internal/model"
	"gemini/internal/simclock"
	"gemini/internal/training"
)

// Fig10 reports the average wasted time (Equation 1) for GPT-2 100B on
// 16 p4d machines as a function of how many instances must be replaced:
// 0 (software failure), 1 or 2-recoverable (peer retrieval), and the
// 2-instances-same-group case where GEMINI degrades to Strawman.
func Fig10() (string, error) {
	job, err := jobFor("GPT-2 100B", "p4d.24xlarge")
	if err != nil {
		return "", err
	}
	straw, high, gem := job.StrawmanSpec(), job.HighFreqSpec(), job.GeminiSpec()
	t := newTable("Replaced instances", "Strawman", "HighFreq", "GEMINI")
	row := func(label string, src baselines.RecoverySource) {
		t.addf("%s|%.0f s|%.0f s|%.0f s", label,
			straw.AverageWasted(baselines.FromRemote).Seconds(),
			high.AverageWasted(baselines.FromRemote).Seconds(),
			gem.AverageWasted(src).Seconds())
	}
	row("0 (software failure)", baselines.FromLocal)
	row("1", baselines.FromPeer)
	row("2 (different groups, p=93.3%)", baselines.FromPeer)
	row("2 (same group, p=6.7%)", baselines.FromRemote)
	return t.String(), nil
}

// Fig11 reports GEMINI's checkpoint-time reduction over the remote-
// storage baselines as the cluster and its network bandwidth grow. The
// baselines' checkpoint time is pinned by the remote store's fixed
// 20 Gbps aggregate; GEMINI's shrinks with the aggregate NIC bandwidth.
func Fig11() (string, error) {
	m := model.MustByName("GPT-2 100B")
	t := newTable("Machines", "100 Gbps network", "200 Gbps network", "400 Gbps network")
	for _, n := range []int{4, 8, 12, 16} {
		cells := make([]string, 0, 3)
		for _, gbit := range []float64{100, 200, 400} {
			it := cluster.MustInstance("p4d.24xlarge")
			it.NetworkBytesPerSec = gbit * 1e9 / 8
			it.GPUToCPUBytesPerSec = it.NetworkBytesPerSec
			cfg, err := training.NewConfig(m, it, n)
			if err != nil {
				return "", err
			}
			remote := remoteCkptTime(cfg)
			gem := training.StandaloneCheckpointTime(cfg, 2, 8*128e6, 4)
			cells = append(cells, fmtTimes(remote.Seconds()/gem.Seconds()))
		}
		t.addf("%d|%s|%s|%s", n, cells[0], cells[1], cells[2])
	}
	return t.String(), nil
}

func remoteCkptTime(cfg training.Config) simclock.Duration {
	return simclock.Duration(cfg.Model.CheckpointBytes() / baselines.DefaultRemoteBandwidth)
}

func fmtTimes(x float64) string { return fmt.Sprintf("%.0f×", x) }

// Fig12 reports the checkpoint frequency of the three solutions.
func Fig12() (string, error) {
	job, err := jobFor("GPT-2 100B", "p4d.24xlarge")
	if err != nil {
		return "", err
	}
	t := newTable("Solution", "Interval", "Checkpoints/day", "vs GEMINI")
	gem := job.GeminiSpec()
	for _, s := range []baselines.Spec{gem, job.HighFreqSpec(), job.StrawmanSpec()} {
		t.addf("%s|%.0f s|%.0f|%s", s.Name, s.Interval.Seconds(), s.CheckpointsPerDay(),
			fmt.Sprintf("%.0f× less frequent", baselines.FrequencyRatio(gem, s)))
	}
	return t.String(), nil
}
