package experiments

import (
	"fmt"

	"gemini/internal/core"
	"gemini/internal/schedule"
	"gemini/internal/training"
)

// the 16-machine testbeds of §7.1.
const testbedMachines = 16

var p4dModels = []string{"GPT-2 100B", "RoBERTa 100B", "BERT 100B"}

var p3dnModels = []string{"GPT-2 10B", "GPT-2 20B", "GPT-2 40B", "RoBERTa 40B", "BERT 40B"}

func jobFor(modelName, instance string) (*core.Job, error) {
	return core.NewJob(core.JobSpec{Model: modelName, Instance: instance, Machines: testbedMachines})
}

// Fig7 compares iteration times without checkpointing and with GEMINI's
// per-iteration checkpointing for the three 100B models on p4d.
func Fig7() (string, error) {
	t := newTable("Model", "No checkpoint", "GEMINI", "Overhead")
	for _, name := range p4dModels {
		job, err := jobFor(name, "p4d.24xlarge")
		if err != nil {
			return "", err
		}
		res, err := job.ExecuteScheme(schedule.SchemeGemini)
		if err != nil {
			return "", err
		}
		t.addf("%s|%.1f s|%.1f s|%.2f%%",
			name, res.BaselineIteration.Seconds(), res.IterationTime.Seconds(), res.Overhead()*100)
	}
	return t.String(), nil
}

// Fig8 reports the network idle time without checkpoints, GEMINI's
// checkpoint time, and the idle time left after checkpoint insertion.
func Fig8() (string, error) {
	t := newTable("Model", "Idle w/o ckpt", "GEMINI ckpt time", "Idle w/ GEMINI")
	for _, name := range p4dModels {
		job, err := jobFor(name, "p4d.24xlarge")
		if err != nil {
			return "", err
		}
		res, err := job.ExecuteScheme(schedule.SchemeGemini)
		if err != nil {
			return "", err
		}
		t.addf("%s|%.1f s|%.1f s|%.1f s",
			name, job.Timeline.IdleTime().Seconds(), res.CheckpointTime.Seconds(), res.NetworkIdle.Seconds())
	}
	return t.String(), nil
}

// Fig13 runs the p3dn generalization: iteration times (13a) and idle
// times (13b) for the 10B–40B models.
func Fig13() (string, error) {
	t := newTable("Model", "No checkpoint", "GEMINI", "Overhead", "Idle w/o ckpt", "Ckpt time", "Idle w/ GEMINI")
	for _, name := range p3dnModels {
		job, err := jobFor(name, "p3dn.24xlarge")
		if err != nil {
			return "", err
		}
		res, err := job.ExecuteScheme(schedule.SchemeGemini)
		if err != nil {
			return "", err
		}
		t.addf("%s|%.1f s|%.1f s|%.2f%%|%.1f s|%.1f s|%.1f s",
			name, res.BaselineIteration.Seconds(), res.IterationTime.Seconds(), res.Overhead()*100,
			job.Timeline.IdleTime().Seconds(), res.CheckpointTime.Seconds(), res.NetworkIdle.Seconds())
	}
	return t.String(), nil
}

// Fig16 is the §7.4 ablation: GPT-2 40B on p3dn under the five
// interleaving schemes.
func Fig16() (string, error) {
	job, err := jobFor("GPT-2 40B", "p3dn.24xlarge")
	if err != nil {
		return "", err
	}
	t := newTable("Scheme", "Iteration time", "Overhead", "GPU buffer needed")
	for _, s := range []schedule.Scheme{
		schedule.SchemeBaseline, schedule.SchemeBlocking, schedule.SchemeNaive,
		schedule.SchemeNoPipeline, schedule.SchemeGemini,
	} {
		res, err := job.ExecuteScheme(s)
		if err != nil {
			return "", err
		}
		if res.OOM {
			t.addf("%s|OOM|—|%s", s, gb(res.RequiredBufferBytes))
			continue
		}
		t.addf("%s|%.1f s|%+.1f%%|%s", s, res.IterationTime.Seconds(), res.Overhead()*100,
			gb(res.RequiredBufferBytes))
	}
	return t.String(), nil
}

// SchemeResult exposes one scheme's executor result for the ablation
// benchmarks.
func SchemeResult(modelName, instance string, s schedule.Scheme) (*training.ExecResult, error) {
	job, err := jobFor(modelName, instance)
	if err != nil {
		return nil, err
	}
	return job.ExecuteScheme(s)
}

var _ = fmt.Sprintf
