package experiments

import (
	"fmt"

	"gemini/internal/placement"
)

// Fig9 plots the probability of recovering from CPU memory against the
// cluster size for GEMINI's placement and the ring strategy, with m=2
// replicas and k ∈ {2,3} simultaneous failures — the paper's Figure 9.
// The curves use the paper's analytic forms (Corollary 1 and the ring
// union bound); the exact enumerated values are included for the sizes
// where enumeration is cheap, showing the bound's tightness.
func Fig9() (string, error) {
	t := newTable("N", "GEMINI m=2 k=2", "GEMINI m=2 k=3", "Ring m=2 k=2", "Ring m=2 k=3", "exact GEMINI k=3", "exact Ring k=3")
	for _, n := range []int{8, 16, 24, 32, 48, 64, 96, 128} {
		g2, err := placement.Corollary1(n, 2, 2)
		if err != nil {
			return "", err
		}
		g3, err := placement.Corollary1(n, 2, 3)
		if err != nil {
			return "", err
		}
		r2, err := placement.RingBound(n, 2, 2)
		if err != nil {
			return "", err
		}
		r3, err := placement.RingBound(n, 2, 3)
		if err != nil {
			return "", err
		}
		exactG, exactR := "—", "—"
		if n <= 24 {
			p, err := placement.Mixed(n, 2)
			if err != nil {
				return "", err
			}
			r, err := placement.Ring(n, 2)
			if err != nil {
				return "", err
			}
			exactG = fmt.Sprintf("%.3f", placement.BitmaskProbability(p, 3))
			exactR = fmt.Sprintf("%.3f", placement.BitmaskProbability(r, 3))
		}
		t.addf("%d|%.3f|%.3f|%.3f|%.3f|%s|%s", n, g2, g3, r2, r3, exactG, exactR)
	}
	return t.String(), nil
}
