package experiments

import (
	"fmt"

	"gemini/internal/placement"
)

// Fig9 plots the probability of recovering from CPU memory against the
// cluster size for GEMINI's placement and the ring strategy, with m=2
// replicas and k ∈ {2,3} simultaneous failures — the paper's Figure 9.
// The curves use the paper's analytic forms (Corollary 1 and the ring
// union bound); the exact enumerated values are included for the sizes
// where enumeration is cheap, showing the bound's tightness.
func Fig9() (string, error) {
	t := newTable("N", "GEMINI m=2 k=2", "GEMINI m=2 k=3", "Ring m=2 k=2", "Ring m=2 k=3", "exact GEMINI k=3", "exact Ring k=3")
	for _, n := range []int{8, 16, 24, 32, 48, 64, 96, 128} {
		g2, err := placement.Corollary1(n, 2, 2)
		if err != nil {
			return "", err
		}
		g3, err := placement.Corollary1(n, 2, 3)
		if err != nil {
			return "", err
		}
		r2, err := placement.RingBound(n, 2, 2)
		if err != nil {
			return "", err
		}
		r3, err := placement.RingBound(n, 2, 3)
		if err != nil {
			return "", err
		}
		exactG, exactR := "—", "—"
		if n <= 24 {
			p, err := placement.Mixed(n, 2)
			if err != nil {
				return "", err
			}
			r, err := placement.Ring(n, 2)
			if err != nil {
				return "", err
			}
			exactG = fmt.Sprintf("%.3f", placement.BitmaskProbability(p, 3))
			exactR = fmt.Sprintf("%.3f", placement.BitmaskProbability(r, 3))
		}
		t.addf("%d|%.3f|%.3f|%.3f|%.3f|%s|%s", n, g2, g3, r2, r3, exactG, exactR)
	}
	return t.String(), nil
}

// Correlated compares recovery probability under the paper's independent
// fail-stop model against correlated whole-rack failures, for Algorithm
// 1's group placement (whose groups align with racks of size m) and the
// rack-aware variant (whose groups deliberately span racks). Independent
// failures cannot tell the two apart; losing even one rack wipes an
// aligned group while the rack-aware layout survives every single-rack
// loss by construction.
func Correlated() (string, error) {
	const n, m, rackSize = 16, 2, 2
	aligned, err := placement.Mixed(n, m)
	if err != nil {
		return "", err
	}
	rackAware, err := placement.RackAware(n, m, rackSize)
	if err != nil {
		return "", err
	}
	racks, err := placement.Racks(n, rackSize)
	if err != nil {
		return "", err
	}
	t := newTable("k", "independent, group", "independent, rack-aware", "k racks down, group", "k racks down, rack-aware")
	for k := 1; k <= 4; k++ {
		cg, err := placement.CorrelatedProbability(aligned, racks, k)
		if err != nil {
			return "", err
		}
		cr, err := placement.CorrelatedProbability(rackAware, racks, k)
		if err != nil {
			return "", err
		}
		t.addf("%d|%.3f|%.3f|%.3f|%.3f", k,
			placement.BitmaskProbability(aligned, k),
			placement.BitmaskProbability(rackAware, k), cg, cr)
	}
	return t.String(), nil
}
