package experiments

import (
	"fmt"

	"gemini/internal/cluster"
	"gemini/internal/model"
)

// Table1 renders the instance catalog with the paper's observation — CPU
// memory far exceeds GPU memory everywhere.
func Table1() (string, error) {
	t := newTable("Instance type", "Cloud", "GPU", "GPU memory", "CPU memory", "CPU/GPU ratio")
	for _, it := range cluster.Table1() {
		t.addf("%s|%s|%d× %s|%d × %d GB|%d GB|%.1f×",
			it.Name, it.Cloud, it.GPUs, gpuName(it), it.GPUs, it.GPUMemBytes>>30,
			it.CPUMemBytes>>30, it.CPUOverGPURatio())
	}
	return t.String(), nil
}

func gpuName(it cluster.InstanceType) string {
	if it.GPUMemBytes >= 40<<30 {
		return "A100"
	}
	return "V100"
}

// Table2 renders the model configurations plus the sizes everything else
// derives from.
func Table2() (string, error) {
	t := newTable("Model", "Hidden", "Intermediate", "#Layers", "#AH", "Ckpt size", "Shard/machine (N=16)")
	for _, m := range model.Table2() {
		shard := model.Sharding{Machines: 16, GPUsPerNode: 8}.ShardBytesPerMachine(m)
		t.addf("%s|%d|%d|%d|%d|%.1f GB|%.1f GB",
			m.Name(), m.HiddenSize, m.Intermediate, m.Layers, m.AttentionHeads,
			m.CheckpointBytes()/1e9, shard/1e9)
	}
	return t.String(), nil
}

func gb(bytes float64) string { return fmt.Sprintf("%.1f GB", bytes/1e9) }
