package experiments

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"gemini/internal/metrics"
	"gemini/internal/trace"
)

// Tracers and metrics registries are per-run sinks: not locked, one per
// concurrent experiment, merged only after the RunAll barrier. This test
// is the benchtables -trace wiring in miniature and, under `go test
// -race`, the proof that the per-run-sink discipline is actually
// race-free — every worker writes spans and counters while the others
// do the same.
func TestRunAllPerRunSinksUnderRace(t *testing.T) {
	const runs = 8
	exps := make([]Experiment, runs)
	tracers := make([]*trace.Tracer, runs)
	regs := make([]*metrics.Registry, runs)
	for i := range exps {
		i := i
		tr := trace.NewTracer(nil)
		reg := metrics.NewRegistry()
		tracers[i], regs[i] = tr, reg
		tk := tr.Track("experiments", fmt.Sprintf("run-%d", i))
		id := fmt.Sprintf("exp-%d", i)
		exps[i] = Experiment{
			ID:    id,
			Title: id,
			Run: func() (string, error) {
				tk.Begin(trace.CatExperiments, id)
				defer tk.End()
				for j := 0; j < 100; j++ {
					tk.Instant(trace.CatExperiments, "step")
					reg.Counter("steps").Inc()
					reg.Histogram("work").Observe(float64(i*1000 + j))
				}
				reg.Gauge("last").Set(float64(i))
				return id, nil
			},
		}
	}

	for _, r := range RunAll(context.Background(), exps, 4) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
	}

	// Merge after the barrier: every sink saw exactly its own run.
	for i, tr := range tracers {
		tk := tr.Track("experiments", fmt.Sprintf("run-%d", i))
		if n := len(tk.Spans()); n != 1 {
			t.Fatalf("run %d: %d spans, want 1", i, n)
		}
		if n := len(tk.Instants()); n != 100 {
			t.Fatalf("run %d: %d instants, want 100", i, n)
		}
		if got := regs[i].Counter("steps").Value(); got != 100 {
			t.Fatalf("run %d: steps counter %v, want 100", i, got)
		}
		if got := regs[i].Gauge("last").Value(); got != float64(i) {
			t.Fatalf("run %d: gauge %v, want %d", i, got, i)
		}
		h := regs[i].Histogram("work")
		if h.Count() != 100 || h.Min() != float64(i*1000) {
			t.Fatalf("run %d: histogram count=%d min=%v", i, h.Count(), h.Min())
		}
	}
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, tracers...); err != nil {
		t.Fatal(err)
	}
	st, err := trace.StatsFromJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != runs*101 {
		t.Fatalf("merged export has %d events, want %d", st.Events, runs*101)
	}
	if len(st.Processes) != runs {
		t.Fatalf("merged export has %d processes, want %d", len(st.Processes), runs)
	}
}
