// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) plus the two catalog tables. Each experiment returns
// structured rows and renders a text table, so the same code backs both
// cmd/benchtables and the root bench_test.go benchmarks.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"gemini/internal/parallel"
)

// Experiment identifies one table or figure.
type Experiment struct {
	ID    string // "table1", "fig9", "fig15a", …
	Title string
	Run   func() (string, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: GPU vs CPU memory of cloud GPU instances", Table1},
		{"table2", "Table 2: language model configurations", Table2},
		{"fig7", "Figure 7: iteration time of 100B models, no-checkpoint vs GEMINI", Fig7},
		{"fig8", "Figure 8: network idle time and checkpoint time, 100B models", Fig8},
		{"fig9", "Figure 9: probability of recovery from CPU memory", Fig9},
		{"fig10", "Figure 10: average wasted time vs replaced instances", Fig10},
		{"fig11", "Figure 11: checkpoint-time reduction over the baselines", Fig11},
		{"fig12", "Figure 12: checkpoint frequency", Fig12},
		{"fig13", "Figure 13: p3dn.24xlarge generalization (10B–40B models)", Fig13},
		{"fig14", "Figure 14: failure-recovery timeline", Fig14},
		{"fig15a", "Figure 15a: effective training-time ratio vs failure rate", Fig15a},
		{"fig15b", "Figure 15b: effective training-time ratio vs cluster size", Fig15b},
		{"fig16", "Figure 16: interleaving-scheme ablation (GPT-2 40B)", Fig16},
	}
}

// ByID returns the experiment (including ablations) with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range append(All(), Ablations()...) {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// Result is the outcome of one experiment run.
type Result struct {
	ID      string
	Title   string
	Output  string
	Err     error
	Elapsed time.Duration
}

// RunAll executes the experiments concurrently on up to workers
// goroutines (≤ 0 means GOMAXPROCS) and returns one Result per
// experiment, in input order regardless of completion order — the
// regenerate-everything run is bounded by the slowest experiment, not
// the sum. Every experiment builds its own jobs and tables, so runs are
// independent; a failure is recorded in its Result rather than aborting
// the sweep. Cancelling the context stops scheduling new experiments.
func RunAll(ctx context.Context, exps []Experiment, workers int) []Result {
	out := make([]Result, len(exps))
	parallel.ForEachErr(ctx, workers, len(exps), func(i int) error {
		start := time.Now()
		text, err := exps[i].Run()
		out[i] = Result{
			ID:      exps[i].ID,
			Title:   exps[i].Title,
			Output:  text,
			Err:     err,
			Elapsed: time.Since(start),
		}
		return ctx.Err()
	})
	return out
}

// table is a tiny text-table builder.
type table struct {
	header []string
	rows   [][]string
}

// tableRowHint pre-sizes the row buffer: every experiment table in the
// repo lands under 16 rows (the largest is the instance catalog), so the
// builder never regrows mid-experiment.
const tableRowHint = 16

func newTable(header ...string) *table {
	return &table{header: header, rows: make([][]string, 0, tableRowHint)}
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	// One row is the padded cell widths plus separators; pre-size for
	// header + rule + rows so String renders with a single grow.
	lineWidth := 1
	for _, w := range widths {
		lineWidth += w + 2
	}
	b.Grow(lineWidth * (len(t.rows) + 2))
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
