package experiments

import (
	"gemini/internal/core"
	"gemini/internal/failure"
	"gemini/internal/placement"
	"gemini/internal/schedule"
	"gemini/internal/simclock"
	"gemini/internal/training"
)

// Ablations returns the design-choice studies beyond the paper's figures
// (DESIGN.md §5), in the same Experiment shape as the tables/figures.
func Ablations() []Experiment {
	return []Experiment{
		{"ablation-replicas", "Ablation: replica count m vs recovery probability and cost", AblationReplicas},
		{"ablation-pipeline", "Ablation: pipeline sub-buffer count p", AblationPipeline},
		{"ablation-gamma", "Ablation: Algorithm 2 safety coefficient γ", AblationGamma},
		{"ablation-standby", "Ablation: standby machines vs on-demand replacement", AblationStandby},
		{"ablation-parallelism", "Extension: checkpoint scheduling under other parallelisms (§9)", AblationParallelism},
		{"ablation-correlated", "Ablation: independent vs correlated rack failures, group vs rack-aware placement", Correlated},
		{"strategy-race", "Comparison: checkpoint strategies under one mixed-failure schedule", StrategyRace},
	}
}

// AblationParallelism builds the §9 future-work extension table: the
// same model under ZeRO-3, data-parallel, and pipeline-parallel training
// — differently shaped idle time, same Algorithm 2 scheduling on top.
// Iteration times are not comparable across rows (each parallelism
// implies a different global batch); the point is the idle-time shape
// and that the checkpoint still fits.
func AblationParallelism() (string, error) {
	t := newTable("Parallelism", "Iteration", "Network busy", "Idle", "Ckpt fits in idle")
	for _, p := range []training.Parallelism{training.ZeRO3, training.DataParallel, training.PipelineParallel} {
		job, err := core.NewJob(core.JobSpec{
			Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: testbedMachines, Parallelism: p,
		})
		if err != nil {
			return "", err
		}
		tr := job.Timeline.Trace()
		t.addf("%v|%.1f s|%.1f s|%.1f s|%v", p,
			job.Timeline.Iteration.Seconds(), tr.BusyTime().Seconds(),
			job.Timeline.IdleTime().Seconds(), job.Plan.Fits)
	}
	return t.String(), nil
}

// AblationReplicas sweeps the replica count m: recovery probability under
// k simultaneous failures vs the CPU memory and network traffic m costs.
func AblationReplicas() (string, error) {
	job, err := jobFor("GPT-2 100B", "p4d.24xlarge")
	if err != nil {
		return "", err
	}
	shard := job.Config.ShardBytesPerMachine()
	t := newTable("m", "P(recover|k=2)", "P(recover|k=3)", "CPU memory/machine", "Remote traffic/iter")
	for _, m := range []int{1, 2, 3, 4} {
		p, err := placement.Mixed(16, m)
		if err != nil {
			return "", err
		}
		t.addf("%d|%.3f|%.3f|%s|%s", m,
			placement.BitmaskProbability(p, 2),
			placement.BitmaskProbability(p, 3),
			gb(2*float64(m)*shard),
			gb(float64(m-1)*shard))
	}
	return t.String(), nil
}

// AblationPipeline sweeps the sub-buffer count p on GPT-2 40B / p3dn.
func AblationPipeline() (string, error) {
	job, err := jobFor("GPT-2 40B", "p3dn.24xlarge")
	if err != nil {
		return "", err
	}
	t := newTable("p", "Iteration time", "Overhead", "Chunk size")
	for _, p := range []int{1, 2, 4, 8, 16} {
		res, err := job.ExecuteSchemeWithBuffers(schedule.SchemeGemini, 8*128e6, p)
		if err != nil {
			return "", err
		}
		t.addf("%d|%.2f s|%+.2f%%|%.0f MB", p,
			res.IterationTime.Seconds(), res.Overhead()*100, 8*128e6/float64(p)/1e6)
	}
	return t.String(), nil
}

// AblationGamma sweeps Algorithm 2's idle-span discount and reports where
// the checkpoint stops fitting and what overflow costs.
func AblationGamma() (string, error) {
	job, err := jobFor("GPT-2 100B", "p4d.24xlarge")
	if err != nil {
		return "", err
	}
	t := newTable("γ", "Fits", "Overflow", "Overflow time")
	for _, gamma := range []float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0} {
		plan, err := schedule.Partition(schedule.Params{
			Spans:                job.Profile.Spans,
			CheckpointBytes:      job.Config.ShardBytesPerMachine(),
			Replicas:             job.Spec.Replicas,
			BufferBytes:          8 * 128e6,
			BufferParts:          4,
			BandwidthBytesPerSec: job.Config.Instance.NetworkBytesPerSec,
			Alpha:                job.Config.Calib.CollectiveAlpha,
			Gamma:                gamma,
		})
		if err != nil {
			return "", err
		}
		t.addf("%.1f|%v|%s|%.2f s", gamma, plan.Fits, gb(plan.OverflowBytes), plan.OverflowTime.Seconds())
	}
	return t.String(), nil
}

// AblationStandby compares standby-pool and on-demand replacement under
// hardware-failure load.
func AblationStandby() (string, error) {
	job, err := jobFor("GPT-2 100B", "p4d.24xlarge")
	if err != nil {
		return "", err
	}
	horizon := 10 * simclock.Day
	t := newTable("Replacement", "Effective ratio", "Mean wasted", "p99 wasted")
	for _, row := range []struct {
		name  string
		delay simclock.Duration
	}{
		{"standby pool (instant)", 0},
		{"on-demand ASG (5.5 min)", simclock.Duration(5.5 * 60)},
	} {
		fs, err := failure.FixedRate(16, 4, 1.0, horizon)
		if err != nil {
			return "", err
		}
		res, err := job.SimulateRun(job.GeminiSpec(), fs, horizon, row.delay)
		if err != nil {
			return "", err
		}
		sum := res.WastedSummary()
		t.addf("%s|%.4f|%.1f min|%.1f min", row.name, res.EffectiveRatio, sum.Mean/60, sum.P99/60)
	}
	return t.String(), nil
}
