package profile

import (
	"math"
	"testing"
	"testing/quick"

	"gemini/internal/simclock"
)

func TestIdleSpansSimple(t *testing.T) {
	tr := IterationTrace{
		Duration: 10,
		Ops: []Op{
			{Start: 1, End: 3},
			{Start: 5, End: 6},
		},
	}
	spans := tr.IdleSpans()
	want := []Span{{0, 1}, {3, 2}, {6, 4}}
	if len(spans) != len(want) {
		t.Fatalf("spans %v, want %v", spans, want)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("span %d = %v, want %v", i, spans[i], want[i])
		}
	}
	if bt := tr.BusyTime(); bt != 3 {
		t.Fatalf("busy time %v, want 3", bt)
	}
}

func TestIdleSpansMergeOverlaps(t *testing.T) {
	tr := IterationTrace{
		Duration: 10,
		Ops: []Op{
			{Start: 0, End: 4},
			{Start: 2, End: 5},  // overlaps
			{Start: 5, End: 7},  // adjacent
			{Start: 9, End: 15}, // clipped to duration
		},
	}
	spans := tr.IdleSpans()
	want := []Span{{7, 2}}
	if len(spans) != 1 || spans[0] != want[0] {
		t.Fatalf("spans %v, want %v", spans, want)
	}
	if bt := tr.BusyTime(); bt != 8 {
		t.Fatalf("busy time %v, want 8", bt)
	}
}

func TestIdleSpansFullyBusyAndFullyIdle(t *testing.T) {
	busy := IterationTrace{Duration: 5, Ops: []Op{{Start: 0, End: 5}}}
	if spans := busy.IdleSpans(); len(spans) != 0 {
		t.Fatalf("fully busy iteration has idle spans %v", spans)
	}
	idle := IterationTrace{Duration: 5}
	spans := idle.IdleSpans()
	if len(spans) != 1 || spans[0] != (Span{0, 5}) {
		t.Fatalf("fully idle iteration spans %v", spans)
	}
}

func TestRecorderLifecyclePanics(t *testing.T) {
	r := MustNewRecorder(5)
	for _, fn := range []func(){
		func() { r.RecordOp(0, 1, "x") },
		func() { r.EndIteration(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("op outside iteration did not panic")
				}
			}()
			fn()
		}()
	}
	r.BeginIteration(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nested BeginIteration did not panic")
			}
		}()
		r.BeginIteration(1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("backwards op did not panic")
			}
		}()
		r.RecordOp(5, 2, "x")
	}()
}

func TestRecorderAveragesAcrossIterations(t *testing.T) {
	r := MustNewRecorder(20)
	// Two iterations with the same shape but slightly different lengths.
	for i := 0; i < 2; i++ {
		base := simclock.Time(i * 100)
		jitter := simclock.Duration(i) // 0 then 1
		r.BeginIteration(base)
		r.RecordOp(base.Add(1), base.Add(3+jitter), "comm1")
		r.RecordOp(base.Add(6), base.Add(8), "comm2")
		r.EndIteration(base.Add(10))
	}
	prof, err := r.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if prof.Iterations != 2 {
		t.Fatalf("iterations %d, want 2", prof.Iterations)
	}
	if prof.IterationTime != 10 {
		t.Fatalf("iteration time %v, want 10", prof.IterationTime)
	}
	// Spans: [0,1), [3+j,6), [8,10) → averaged middle span = (3+2.5... )
	if len(prof.Spans) != 3 {
		t.Fatalf("spans %v, want 3 spans", prof.Spans)
	}
	if prof.Spans[0].Length != 1 {
		t.Errorf("span 0 length %v, want 1", prof.Spans[0].Length)
	}
	if got := prof.Spans[1].Length; math.Abs(got.Seconds()-2.5) > 1e-9 {
		t.Errorf("span 1 length %v, want 2.5 (mean of 3 and 2)", got)
	}
	if got := prof.TotalIdle(); math.Abs(got.Seconds()-5.5) > 1e-9 {
		t.Errorf("total idle %v, want 5.5", got)
	}
	if prof.NormalizedStdDev <= 0 || prof.NormalizedStdDev > 0.5 {
		t.Errorf("normalized stddev %v out of plausible range", prof.NormalizedStdDev)
	}
}

func TestRecorderWindowCapsTraces(t *testing.T) {
	r := MustNewRecorder(3)
	for i := 0; i < 6; i++ {
		base := simclock.Time(i * 10)
		r.BeginIteration(base)
		r.RecordOp(base.Add(1), base.Add(2), "c")
		r.EndIteration(base.Add(10))
		if i >= 2 && !r.Done() {
			t.Fatalf("recorder not done after %d iterations", i+1)
		}
	}
	if r.Iterations() != 3 {
		t.Fatalf("recorded %d iterations, want 3", r.Iterations())
	}
}

func TestRecorderDiscardsOutlierShapes(t *testing.T) {
	r := MustNewRecorder(10)
	// Three iterations with 2 idle spans, one outlier with 1.
	for i := 0; i < 3; i++ {
		base := simclock.Time(i * 10)
		r.BeginIteration(base)
		r.RecordOp(base.Add(2), base.Add(4), "c")
		r.EndIteration(base.Add(10))
	}
	r.BeginIteration(100)
	r.RecordOp(100, 104, "weird")
	r.EndIteration(110)
	prof, err := r.Build()
	if err != nil {
		t.Fatal(err)
	}
	if prof.Iterations != 3 {
		t.Fatalf("used %d iterations, want 3 (outlier dropped)", prof.Iterations)
	}
	if prof.Discarded != 1 {
		t.Fatalf("Discarded = %d, want 1", prof.Discarded)
	}
	if len(prof.Spans) != 2 {
		t.Fatalf("spans %v, want 2", prof.Spans)
	}
}

func TestBuildReportsDiscardCounts(t *testing.T) {
	cases := []struct {
		name               string
		shapes             []int // idle-span count per recorded iteration
		wantUsed, wantDrop int
	}{
		{"uniform", []int{2, 2, 2}, 3, 0},
		{"single iteration", []int{1}, 1, 0},
		{"one outlier", []int{2, 2, 1}, 2, 1},
		{"majority outvoted", []int{3, 1, 1}, 2, 1},
		{"tie keeps larger count", []int{2, 2, 1, 1}, 2, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := MustNewRecorder(len(tc.shapes))
			for i, spans := range tc.shapes {
				base := simclock.Time(i * 100)
				r.BeginIteration(base)
				// spans idle gaps need spans ops splitting [0, 100): op k
				// covers [10k, 10k+5), leaving a gap after each op and
				// none before the first (op 0 starts at 0).
				for k := 0; k < spans; k++ {
					r.RecordOp(base.Add(simclock.Duration(10*k)), base.Add(simclock.Duration(10*k+5)), "c")
				}
				r.EndIteration(base.Add(simclock.Duration(10 * spans)))
			}
			prof, err := r.Build()
			if err != nil {
				t.Fatal(err)
			}
			if prof.Iterations != tc.wantUsed || prof.Discarded != tc.wantDrop {
				t.Fatalf("used/discarded = %d/%d, want %d/%d",
					prof.Iterations, prof.Discarded, tc.wantUsed, tc.wantDrop)
			}
		})
	}
}

func TestBuildRequiresData(t *testing.T) {
	r := MustNewRecorder(5)
	if _, err := r.Build(); err == nil {
		t.Fatal("Build with no iterations accepted")
	}
}

func TestBuildNoIdleSpans(t *testing.T) {
	r := MustNewRecorder(2)
	r.BeginIteration(0)
	r.RecordOp(0, 10, "solid")
	r.EndIteration(10)
	prof, err := r.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Spans) != 0 || prof.TotalIdle() != 0 {
		t.Fatalf("profile %+v, want no idle", prof)
	}
	if prof.IterationTime != 10 {
		t.Fatalf("iteration time %v", prof.IterationTime)
	}
}

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Fatal("zero window accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewRecorder(0) did not panic")
		}
	}()
	MustNewRecorder(-1)
}

// Property: idle time + busy time always equals the iteration duration,
// for arbitrary op layouts.
func TestPropertyIdlePlusBusyIsDuration(t *testing.T) {
	f := func(opsRaw []uint16, durRaw uint16) bool {
		dur := simclock.Duration(durRaw%100) + 1
		tr := IterationTrace{Duration: dur}
		for _, raw := range opsRaw {
			s := simclock.Duration(raw % 100)
			e := s + simclock.Duration((raw/100)%20)
			tr.Ops = append(tr.Ops, Op{Start: s, End: e})
		}
		var idle simclock.Duration
		for _, sp := range tr.IdleSpans() {
			if sp.Length <= 0 {
				return false
			}
			idle += sp.Length
		}
		return math.Abs((idle + tr.BusyTime() - dur).Seconds()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: spans returned are disjoint and ordered.
func TestPropertySpansDisjointOrdered(t *testing.T) {
	f := func(opsRaw []uint16) bool {
		tr := IterationTrace{Duration: 200}
		for _, raw := range opsRaw {
			s := simclock.Duration(raw % 180)
			tr.Ops = append(tr.Ops, Op{Start: s, End: s + simclock.Duration(raw%13)})
		}
		prev := simclock.Duration(-1)
		for _, sp := range tr.IdleSpans() {
			if sp.Offset <= prev {
				return false
			}
			prev = sp.Offset + sp.Length
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
