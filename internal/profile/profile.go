// Package profile implements GEMINI's online profiling (§5.4): during the
// first several training iterations (20 in the paper), it timestamps
// every communication operation, derives the network idle timespans
// within an iteration, and averages them across iterations. The profile
// feeds Algorithm 2's checkpoint partitioning.
package profile

import (
	"fmt"
	"math"
	"sort"

	"gemini/internal/simclock"
)

// Op is one recorded communication operation within an iteration,
// expressed relative to the iteration start.
type Op struct {
	Start, End simclock.Duration
	Label      string
}

// IterationTrace is the communication timeline of a single iteration.
type IterationTrace struct {
	Duration simclock.Duration
	Ops      []Op
}

// IdleSpans returns the gaps in the iteration where the network is idle:
// the complement of the union of op intervals within [0, Duration].
// Zero-length gaps are dropped.
func (it *IterationTrace) IdleSpans() []Span {
	merged := mergeOps(it.Ops, it.Duration)
	var spans []Span
	cursor := simclock.Duration(0)
	for _, iv := range merged {
		if iv.start > cursor {
			spans = append(spans, Span{Offset: cursor, Length: iv.start - cursor})
		}
		if iv.end > cursor {
			cursor = iv.end
		}
	}
	if it.Duration > cursor {
		spans = append(spans, Span{Offset: cursor, Length: it.Duration - cursor})
	}
	return spans
}

// BusyTime returns the total time the network is occupied in the trace.
func (it *IterationTrace) BusyTime() simclock.Duration {
	var busy simclock.Duration
	for _, iv := range mergeOps(it.Ops, it.Duration) {
		busy += iv.end - iv.start
	}
	return busy
}

type interval struct{ start, end simclock.Duration }

func mergeOps(ops []Op, limit simclock.Duration) []interval {
	ivs := make([]interval, 0, len(ops))
	for _, op := range ops {
		s, e := op.Start, op.End
		if e > limit {
			e = limit
		}
		if s < 0 {
			s = 0
		}
		if e > s {
			ivs = append(ivs, interval{s, e})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	var merged []interval
	for _, iv := range ivs {
		if n := len(merged); n > 0 && iv.start <= merged[n-1].end {
			if iv.end > merged[n-1].end {
				merged[n-1].end = iv.end
			}
			continue
		}
		merged = append(merged, iv)
	}
	return merged
}

// Span is one network idle timespan within an iteration.
type Span struct {
	// Offset is where the span begins, relative to iteration start.
	Offset simclock.Duration
	// Length is the idle duration (the t_i of Algorithm 2).
	Length simclock.Duration
}

// Profile is the averaged result of online profiling.
type Profile struct {
	// Spans are the per-iteration idle timespans, averaged across the
	// profiled iterations, in time order.
	Spans []Span
	// IterationTime is the mean iteration duration.
	IterationTime simclock.Duration
	// Iterations is how many iterations were profiled.
	Iterations int
	// NormalizedStdDev is the largest coefficient of variation observed
	// across the per-span lengths — the <10% stability the paper reports.
	NormalizedStdDev float64
	// Discarded is how many recorded iterations were dropped as outliers
	// (span count differing from the modal shape). A large value means
	// the profile rests on fewer iterations than the window suggests.
	Discarded int
}

// TotalIdle returns the sum of idle span lengths per iteration.
func (p *Profile) TotalIdle() simclock.Duration {
	var total simclock.Duration
	for _, s := range p.Spans {
		total += s.Length
	}
	return total
}

// Recorder accumulates iteration traces during the profiling window.
type Recorder struct {
	window int
	traces []IterationTrace

	iterStart simclock.Time
	ops       []Op
	inIter    bool
}

// NewRecorder profiles up to window iterations; further iterations are
// ignored. The paper uses a 20-iteration window.
func NewRecorder(window int) (*Recorder, error) {
	if window <= 0 {
		return nil, fmt.Errorf("profile: window must be positive, got %d", window)
	}
	return &Recorder{window: window, traces: make([]IterationTrace, 0, window)}, nil
}

// MustNewRecorder is NewRecorder for known-good windows.
func MustNewRecorder(window int) *Recorder {
	r, err := NewRecorder(window)
	if err != nil {
		panic(err)
	}
	return r
}

// Done reports whether the profiling window is full.
func (r *Recorder) Done() bool { return len(r.traces) >= r.window }

// Iterations returns how many complete iterations have been recorded.
func (r *Recorder) Iterations() int { return len(r.traces) }

// BeginIteration marks an iteration start at absolute time t.
func (r *Recorder) BeginIteration(t simclock.Time) {
	if r.inIter {
		panic("profile: BeginIteration without EndIteration")
	}
	r.inIter = true
	r.iterStart = t
	r.ops = r.ops[:0]
}

// RecordOp logs a communication op by absolute start/end times.
func (r *Recorder) RecordOp(start, end simclock.Time, label string) {
	if !r.inIter {
		panic("profile: RecordOp outside an iteration")
	}
	if end < start {
		panic(fmt.Sprintf("profile: op %q ends %v before it starts %v", label, end, start))
	}
	r.ops = append(r.ops, Op{
		Start: start.Sub(r.iterStart),
		End:   end.Sub(r.iterStart),
		Label: label,
	})
}

// EndIteration closes the current iteration at absolute time t.
func (r *Recorder) EndIteration(t simclock.Time) {
	if !r.inIter {
		panic("profile: EndIteration without BeginIteration")
	}
	r.inIter = false
	if r.Done() {
		return
	}
	r.traces = append(r.traces, IterationTrace{
		Duration: t.Sub(r.iterStart),
		Ops:      append([]Op(nil), r.ops...),
	})
}

// Build averages the recorded traces into a Profile. It requires at least
// one complete iteration. Iterations are assumed to share the same
// communication shape (§5.4 observes the timeline is nearly constant);
// spans are matched by index, and iterations with a differing span count
// from the majority are discarded as outliers.
func (r *Recorder) Build() (*Profile, error) {
	if len(r.traces) == 0 {
		return nil, fmt.Errorf("profile: no complete iterations recorded")
	}
	// Derive each trace's idle spans once (IdleSpans sorts and merges per
	// call — computing it three times per trace dominated Build).
	spans := make([][]Span, len(r.traces))
	for i := range r.traces {
		spans[i] = r.traces[i].IdleSpans()
	}
	// Find the modal span count.
	counts := make(map[int]int)
	for i := range spans {
		counts[len(spans[i])]++
	}
	modal, best := 0, 0
	for c, n := range counts {
		if n > best || (n == best && c > modal) {
			modal, best = c, n
		}
	}
	used := 0
	for i := range spans {
		if len(spans[i]) == modal {
			used++
		}
	}
	prof := &Profile{Iterations: used, Discarded: len(r.traces) - used}
	if modal == 0 {
		var iterSum simclock.Duration
		for i, tr := range r.traces {
			if len(spans[i]) == modal {
				iterSum += tr.Duration
			}
		}
		prof.IterationTime = iterSum / simclock.Duration(used)
		return prof, nil
	}
	offsets := make([]float64, modal)
	lengths := make([]float64, modal)
	sq := make([]float64, modal)
	var iterSum simclock.Duration
	for ti, tr := range r.traces {
		if len(spans[ti]) != modal {
			continue
		}
		iterSum += tr.Duration
		for i, s := range spans[ti] {
			offsets[i] += s.Offset.Seconds()
			lengths[i] += s.Length.Seconds()
			sq[i] += s.Length.Seconds() * s.Length.Seconds()
		}
	}
	n := float64(used)
	prof.IterationTime = iterSum / simclock.Duration(n)
	for i := 0; i < modal; i++ {
		mean := lengths[i] / n
		prof.Spans = append(prof.Spans, Span{
			Offset: simclock.Duration(offsets[i] / n),
			Length: simclock.Duration(mean),
		})
		if mean > 0 && n > 1 {
			variance := math.Max(0, sq[i]/n-mean*mean)
			if cv := math.Sqrt(variance) / mean; cv > prof.NormalizedStdDev {
				prof.NormalizedStdDev = cv
			}
		}
	}
	return prof, nil
}
