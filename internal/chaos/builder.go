package chaos

import (
	"gemini/internal/cluster"
	"gemini/internal/simclock"
)

// Builder composes a fault schedule fluently. Window-style faults
// (partitions, stragglers, KV outages) take a duration and emit both the
// opening and the closing event:
//
//	sched, err := chaos.NewBuilder().
//		Partition(190, 40*simclock.Second, 3).
//		CrashGroup(190, cluster.HardwareFailed, 2, 4).
//		Build(16)
type Builder struct {
	events Schedule
}

// NewBuilder returns an empty schedule builder.
func NewBuilder() *Builder { return &Builder{} }

// Crash fails one machine at the given time.
func (b *Builder) Crash(at simclock.Time, rank int, state cluster.MachineState) *Builder {
	b.events = append(b.events, Event{At: at, Kind: KindCrash, Ranks: []int{rank}, Machine: state})
	return b
}

// CrashGroup fails several machines together at the given time — a
// correlated failure of a rack or placement group.
func (b *Builder) CrashGroup(at simclock.Time, state cluster.MachineState, ranks ...int) *Builder {
	b.events = append(b.events, Event{At: at, Kind: KindCorrelatedCrash, Ranks: append([]int(nil), ranks...), Machine: state})
	return b
}

// Partition isolates ranks from the rest of the cluster at the given
// time and heals after healAfter.
func (b *Builder) Partition(at simclock.Time, healAfter simclock.Duration, ranks ...int) *Builder {
	b.events = append(b.events,
		Event{At: at, Kind: KindPartitionStart, Ranks: append([]int(nil), ranks...)},
		Event{At: at.Add(healAfter), Kind: KindPartitionHeal})
	return b
}

// Straggler degrades a rank to factor of its bandwidth for the given
// duration.
func (b *Builder) Straggler(at simclock.Time, dur simclock.Duration, rank int, factor float64) *Builder {
	b.events = append(b.events,
		Event{At: at, Kind: KindStragglerStart, Ranks: []int{rank}, Factor: factor},
		Event{At: at.Add(dur), Kind: KindStragglerEnd, Ranks: []int{rank}})
	return b
}

// KVOutage takes the key-value store down for the given duration.
func (b *Builder) KVOutage(at simclock.Time, dur simclock.Duration) *Builder {
	b.events = append(b.events,
		Event{At: at, Kind: KindKVOutage},
		Event{At: at.Add(dur), Kind: KindKVRestore})
	return b
}

// LeaseJitter enables lease-expiry jitter of up to max from the given
// time onward.
func (b *Builder) LeaseJitter(at simclock.Time, max simclock.Duration) *Builder {
	b.events = append(b.events, Event{At: at, Kind: KindLeaseJitter, Jitter: max})
	return b
}

// Build sorts the schedule deterministically and validates it against a
// cluster of n machines.
func (b *Builder) Build(n int) (Schedule, error) {
	out := append(Schedule(nil), b.events...)
	out.Sort()
	if err := out.Validate(n); err != nil {
		return nil, err
	}
	return out, nil
}

// MustBuild is Build, panicking on error — for statically-known-good
// schedules in examples and tests.
func (b *Builder) MustBuild(n int) Schedule {
	s, err := b.Build(n)
	if err != nil {
		panic(err)
	}
	return s
}
