// Package chaos is the fault-injection engine layered over the
// discrete-event substrate: it turns a declarative schedule of faults —
// crashes, correlated (rack-level) crashes, network partitions,
// stragglers, key-value store outages, lease jitter — into timed
// injections against the agent control plane (and, for traffic
// experiments, the netsim fabric). The paper's fail-stop independent
// model (§6) is the easy case; this package exists to exercise the
// recovery paths that model hides.
package chaos

import (
	"fmt"
	"sort"

	"gemini/internal/agent"
	"gemini/internal/cluster"
	"gemini/internal/failure"
	"gemini/internal/netsim"
	"gemini/internal/simclock"
)

// Kind enumerates fault event kinds.
type Kind int

// Enum order doubles as same-timestamp precedence in Sort: window
// closers come before openers (so back-to-back windows validate), and
// connectivity faults come before crashes (a crash at the same instant
// is observed under the partition, which is the interesting case).
const (
	// KindPartitionHeal reconnects all partitioned ranks.
	KindPartitionHeal Kind = iota
	// KindKVRestore brings the key-value store back.
	KindKVRestore
	// KindStragglerEnd restores degraded ranks to full bandwidth.
	KindStragglerEnd
	// KindPartitionStart cuts a set of ranks off from the network.
	KindPartitionStart
	// KindKVOutage makes the key-value store unavailable.
	KindKVOutage
	// KindStragglerStart degrades ranks to a fraction of their bandwidth.
	KindStragglerStart
	// KindLeaseJitter enables deterministic lease-expiry jitter.
	KindLeaseJitter
	// KindCrash fails one machine (software or hardware).
	KindCrash
	// KindCorrelatedCrash fails several machines at the same instant —
	// a rack or placement group sharing a failure domain.
	KindCorrelatedCrash
)

func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindCorrelatedCrash:
		return "correlated-crash"
	case KindPartitionStart:
		return "partition-start"
	case KindPartitionHeal:
		return "partition-heal"
	case KindStragglerStart:
		return "straggler-start"
	case KindStragglerEnd:
		return "straggler-end"
	case KindKVOutage:
		return "kv-outage"
	case KindKVRestore:
		return "kv-restore"
	case KindLeaseJitter:
		return "lease-jitter"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	At   simclock.Time
	Kind Kind
	// Ranks targets machines; unused by KV and jitter events.
	Ranks []int
	// Machine is the failure state for crash kinds.
	Machine cluster.MachineState
	// Factor is the bandwidth fraction for straggler starts, in (0, 1].
	Factor float64
	// Jitter is the maximum lease-expiry extension for KindLeaseJitter.
	Jitter simclock.Duration
}

// Schedule is a time-ordered fault schedule.
type Schedule []Event

// Sort orders the schedule deterministically: by time, then kind, then
// first rank. Injection order is then fully determined by contents.
func (s Schedule) Sort() {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].At != s[j].At {
			return s[i].At < s[j].At
		}
		if s[i].Kind != s[j].Kind {
			return s[i].Kind < s[j].Kind
		}
		return firstRank(s[i]) < firstRank(s[j])
	})
}

func firstRank(ev Event) int {
	if len(ev.Ranks) == 0 {
		return -1
	}
	min := ev.Ranks[0]
	for _, r := range ev.Ranks {
		if r < min {
			min = r
		}
	}
	return min
}

// Validate checks the schedule against a cluster of n machines: ordered
// events, in-range ranks, sane parameters, and properly paired windows
// (partition and KV-outage windows cannot nest or overlap, because heal
// and restore apply to everything at once).
func (s Schedule) Validate(n int) error {
	partitionOpen := false
	kvDown := false
	degraded := map[int]bool{}
	for i, ev := range s {
		if ev.At < 0 {
			return fmt.Errorf("chaos: event %d at negative time %v", i, ev.At)
		}
		if i > 0 && ev.At < s[i-1].At {
			return fmt.Errorf("chaos: events out of order at %d (sort the schedule)", i)
		}
		for _, r := range ev.Ranks {
			if r < 0 || r >= n {
				return fmt.Errorf("chaos: event %d rank %d out of range [0,%d)", i, r, n)
			}
		}
		switch ev.Kind {
		case KindCrash, KindCorrelatedCrash:
			if len(ev.Ranks) == 0 {
				return fmt.Errorf("chaos: event %d (%v) has no target ranks", i, ev.Kind)
			}
			if ev.Machine != cluster.SoftwareFailed && ev.Machine != cluster.HardwareFailed {
				return fmt.Errorf("chaos: event %d has non-failure machine state %v", i, ev.Machine)
			}
			if ev.Kind == KindCorrelatedCrash && len(ev.Ranks) < 2 {
				return fmt.Errorf("chaos: event %d correlated crash needs ≥ 2 ranks", i)
			}
		case KindPartitionStart:
			if len(ev.Ranks) == 0 {
				return fmt.Errorf("chaos: event %d partition has no ranks", i)
			}
			if partitionOpen {
				return fmt.Errorf("chaos: event %d opens a partition inside another partition window", i)
			}
			partitionOpen = true
		case KindPartitionHeal:
			if !partitionOpen {
				return fmt.Errorf("chaos: event %d heals with no open partition", i)
			}
			partitionOpen = false
		case KindStragglerStart:
			if len(ev.Ranks) == 0 {
				return fmt.Errorf("chaos: event %d straggler has no ranks", i)
			}
			if ev.Factor <= 0 || ev.Factor > 1 {
				return fmt.Errorf("chaos: event %d straggler factor %v out of (0,1]", i, ev.Factor)
			}
			for _, r := range ev.Ranks {
				if degraded[r] {
					return fmt.Errorf("chaos: event %d degrades rank %d inside another straggler window", i, r)
				}
				degraded[r] = true
			}
		case KindStragglerEnd:
			if len(ev.Ranks) == 0 {
				return fmt.Errorf("chaos: event %d straggler end has no ranks", i)
			}
			// Ends sort before starts at the same instant, so a
			// zero-duration straggler fails here instead of leaving its
			// rank degraded forever.
			for _, r := range ev.Ranks {
				if !degraded[r] {
					return fmt.Errorf("chaos: event %d ends a straggler on rank %d that is not degraded", i, r)
				}
				delete(degraded, r)
			}
		case KindKVOutage:
			if kvDown {
				return fmt.Errorf("chaos: event %d opens a KV outage inside another outage window", i)
			}
			kvDown = true
		case KindKVRestore:
			if !kvDown {
				return fmt.Errorf("chaos: event %d restores a store that is not down", i)
			}
			kvDown = false
		case KindLeaseJitter:
			if ev.Jitter < 0 {
				return fmt.Errorf("chaos: event %d negative jitter %v", i, ev.Jitter)
			}
		default:
			return fmt.Errorf("chaos: event %d has unknown kind %v", i, ev.Kind)
		}
	}
	return nil
}

// Failures lowers the machine-killing subset of the schedule — crashes
// and correlated crashes — into a failure.Schedule for the long-run
// simulator. Partitions, stragglers, KV outages, and lease jitter have
// no analogue in runsim's §7.3 accounting and are dropped. The result
// is ordered and deduplicated through failure.Merge, so a rank hit by a
// software and a hardware crash at the same instant collapses to one
// hardware failure.
func (s Schedule) Failures() failure.Schedule {
	var out failure.Schedule
	for _, ev := range s {
		switch ev.Kind {
		case KindCrash, KindCorrelatedCrash:
			for _, r := range ev.Ranks {
				out = append(out, failure.Event{At: ev.At, Rank: r, Kind: ev.Machine})
			}
		}
	}
	if out == nil {
		return nil
	}
	return failure.Merge(out)
}

// Arm schedules every event in the schedule against the agent control
// plane. The schedule should already be sorted and validated (Build does
// both).
func Arm(engine *simclock.Engine, sys *agent.System, s Schedule) {
	for _, ev := range s {
		ev := ev
		engine.At(ev.At, func() {
			switch ev.Kind {
			case KindCrash:
				for _, r := range ev.Ranks {
					sys.InjectFailure(r, ev.Machine)
				}
			case KindCorrelatedCrash:
				sys.InjectCorrelated(ev.Machine, ev.Ranks...)
			case KindPartitionStart:
				sys.StartPartition(ev.Ranks...)
			case KindPartitionHeal:
				sys.HealPartition()
			case KindStragglerStart:
				for _, r := range ev.Ranks {
					sys.SetStraggler(r, ev.Factor)
				}
			case KindStragglerEnd:
				for _, r := range ev.Ranks {
					sys.SetStraggler(r, 1)
				}
			case KindKVOutage:
				sys.SetKVAvailable(false)
			case KindKVRestore:
				sys.SetKVAvailable(true)
			case KindLeaseJitter:
				sys.SetLeaseJitter(ev.Jitter)
			}
		})
	}
}

// ArmFabric schedules the network-visible subset of the schedule against
// a netsim fabric, for traffic experiments that bypass the control
// plane: crashes take nodes down, partitions split the fabric,
// stragglers scale node bandwidth. KV and jitter events do not touch the
// fabric.
func ArmFabric(engine *simclock.Engine, fb *netsim.Fabric, s Schedule) {
	for _, ev := range s {
		ev := ev
		engine.At(ev.At, func() {
			switch ev.Kind {
			case KindCrash, KindCorrelatedCrash:
				for _, r := range ev.Ranks {
					fb.SetNodeUp(r, false)
				}
			case KindPartitionStart:
				fb.SetPartition(ev.Ranks)
			case KindPartitionHeal:
				fb.ClearPartition()
			case KindStragglerStart:
				for _, r := range ev.Ranks {
					fb.SetNodeFactor(r, ev.Factor)
				}
			case KindStragglerEnd:
				for _, r := range ev.Ranks {
					fb.SetNodeFactor(r, 1)
				}
			}
		})
	}
}
