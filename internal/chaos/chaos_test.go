package chaos

import (
	"strings"
	"testing"

	"gemini/internal/agent"
	"gemini/internal/ckpt"
	"gemini/internal/cloud"
	"gemini/internal/cluster"
	"gemini/internal/placement"
	"gemini/internal/simclock"
	"gemini/internal/trace"
)

const iterTime = 60 * simclock.Second

func newSystem(t *testing.T, n, m int) (*simclock.Engine, *agent.System, *trace.Log) {
	t.Helper()
	engine := simclock.NewEngine()
	clus := cluster.MustNew(n, cluster.MustInstance("p4d.24xlarge"), engine.Now)
	ck := ckpt.MustNewEngine(placement.MustMixed(n, m), 75e9)
	op := cloud.MustNewOperator(engine, cloud.Config{Standby: n, StandbyActivation: 10 * simclock.Second})
	log := trace.NewLog(engine.Now)
	opts := agent.DefaultOptions(iterTime)
	opts.SerializeTime = 10 * simclock.Second
	opts.WarmupTime = 30 * simclock.Second
	opts.RetryBase = 2 * simclock.Second
	opts.RetryMax = 3
	sys, err := agent.NewSystem(engine, clus, ck, op, opts, log)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return engine, sys, log
}

// kindsInOrder returns, for each requested kind, the index of its first
// occurrence in the log, asserting presence.
func firstIndex(t *testing.T, log *trace.Log, kind string) int {
	t.Helper()
	for i, ev := range log.Events() {
		if ev.Kind == kind {
			return i
		}
	}
	t.Fatalf("no %q event in trace", kind)
	return -1
}

// The acceptance scenario: a partition during checkpointing plus a
// correlated two-machine group failure. The surviving replica holders
// are unreachable, so the root retries with backoff, exhausts its
// budget, and falls back down the hierarchy to remote persistent
// storage — all asserted end-to-end from the trace log.
func TestPartitionPlusCorrelatedFailureFallsBackToRemote(t *testing.T) {
	engine, sys, log := newSystem(t, 6, 2)
	// Groups are {0,1}, {2,3}, {4,5}: crash 2 and 4 (hardware, wiped),
	// partition away 3 and 5 (the only other holders of shards 2–5).
	at := simclock.Time(3*iterTime + 10)
	sched := NewBuilder().
		Partition(at, 4*simclock.Minute, 3, 5).
		CrashGroup(at, cluster.HardwareFailed, 2, 4).
		Build
	s, err := sched(6)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sys.Start()
	sys.SetRemoteEvery(2)
	Arm(engine, sys, s)
	engine.Run(simclock.Time(30 * iterTime))

	if sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", sys.Recoveries())
	}
	// Full causal order in the trace.
	iPart := firstIndex(t, log, "partition")
	iCorr := firstIndex(t, log, "correlated-failure")
	iDet := firstIndex(t, log, "failure-detected")
	iRetry := firstIndex(t, log, "retry-backoff")
	iFall := firstIndex(t, log, "fallback-remote")
	iRetr := firstIndex(t, log, "retrieved")
	iDone := firstIndex(t, log, "recovery-complete")
	if !(iPart < iCorr && iCorr < iDet && iDet < iRetry && iRetry < iFall && iFall < iRetr && iRetr < iDone) {
		t.Fatalf("trace out of order: partition=%d correlated=%d detected=%d retry=%d fallback=%d retrieved=%d complete=%d",
			iPart, iCorr, iDet, iRetry, iFall, iRetr, iDone)
	}
	if got := len(log.Filter("retry-backoff")); got != 3 {
		t.Fatalf("%d retry-backoff events, want RetryMax=3", got)
	}
	ret := log.Events()[iRetr]
	if !strings.Contains(ret.Detail, "from remote") {
		t.Fatalf("retrieved %q, want remote source", ret.Detail)
	}
	heal := log.Filter("partition-heal")
	if len(heal) != 1 {
		t.Fatalf("%d partition-heal events, want 1", len(heal))
	}
	// After the heal, training is running again with every machine in.
	if !sys.Training() {
		t.Fatal("training did not resume")
	}
}

// Same fault pattern, but the partition heals while the root is still
// backing off: recovery completes via peer retrieval, never touching
// remote storage.
func TestPartitionHealDuringBackoffUsesPeers(t *testing.T) {
	engine, sys, log := newSystem(t, 6, 2)
	at := simclock.Time(3*iterTime + 10)
	s := NewBuilder().
		Partition(at, 40*simclock.Second, 3, 5).
		CrashGroup(at, cluster.HardwareFailed, 2, 4).
		MustBuild(6)
	sys.Start()
	Arm(engine, sys, s)
	engine.Run(simclock.Time(30 * iterTime))

	if sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", sys.Recoveries())
	}
	if len(log.Filter("retry-backoff")) == 0 {
		t.Fatal("no retries before the heal")
	}
	if len(log.Filter("fallback-remote")) != 0 {
		t.Fatal("fell back to remote despite the heal")
	}
	ret, ok := log.Last("retrieved")
	if !ok || !strings.Contains(ret.Detail, "from peer") {
		t.Fatalf("retrieved %+v, want peer source", ret)
	}
}

// A schedule mixing every event kind arms and runs without disturbing a
// healthy cluster (faults target the store and bandwidth only).
func TestBenignScheduleLeavesTrainingAlone(t *testing.T) {
	engine, sys, log := newSystem(t, 4, 2)
	s := NewBuilder().
		LeaseJitter(0, 2*simclock.Second).
		Straggler(simclock.Time(iterTime), 30*simclock.Second, 1, 0.5).
		KVOutage(simclock.Time(2*iterTime), 30*simclock.Second).
		MustBuild(4)
	sys.Start()
	Arm(engine, sys, s)
	engine.Run(simclock.Time(10 * iterTime))

	if sys.Recoveries() != 0 {
		t.Fatalf("%d recoveries from benign faults, want 0", sys.Recoveries())
	}
	if got := sys.Iteration(); got != 10 {
		t.Fatalf("iteration %d, want 10", got)
	}
	for _, kind := range []string{"lease-jitter", "straggler", "straggler-end", "kv-outage", "kv-restore"} {
		if len(log.Filter(kind)) == 0 {
			t.Errorf("no %q event traced", kind)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	cases := []struct {
		name string
		b    *Builder
	}{
		{"overlapping partitions", NewBuilder().Partition(0, 100, 1).Partition(50, 100, 2)},
		{"overlapping outages", NewBuilder().KVOutage(0, 100).KVOutage(50, 100)},
		{"rank out of range", NewBuilder().Crash(0, 99, cluster.SoftwareFailed)},
		{"bad factor", NewBuilder().Straggler(0, 10, 1, 1.5)},
		{"healthy crash kind", NewBuilder().Crash(0, 1, cluster.Healthy)},
		{"single-rank correlated", NewBuilder().CrashGroup(0, cluster.HardwareFailed, 1)},
		{"negative time", NewBuilder().Crash(-5, 1, cluster.SoftwareFailed)},
	}
	for _, tc := range cases {
		if _, err := tc.b.Build(4); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Sequential (non-overlapping) windows are fine.
	if _, err := NewBuilder().Partition(0, 10, 1).Partition(20, 10, 2).KVOutage(40, 5).Build(4); err != nil {
		t.Errorf("sequential windows rejected: %v", err)
	}
}

func TestScheduleSortDeterministic(t *testing.T) {
	a := NewBuilder().
		Crash(10, 3, cluster.SoftwareFailed).
		Crash(10, 1, cluster.SoftwareFailed).
		Partition(5, 100, 2).
		MustBuild(4)
	b := NewBuilder().
		Partition(5, 100, 2).
		Crash(10, 1, cluster.SoftwareFailed).
		Crash(10, 3, cluster.SoftwareFailed).
		MustBuild(4)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Kind != b[i].Kind || firstRank(a[i]) != firstRank(b[i]) {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindCrash, KindCorrelatedCrash, KindPartitionStart, KindPartitionHeal,
		KindStragglerStart, KindStragglerEnd, KindKVOutage, KindKVRestore, KindLeaseJitter}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") || seen[s] {
			t.Errorf("kind %d has bad or duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Kind(99).String(), "Kind(") {
		t.Error("unknown kind not reported as such")
	}
}

// TestBuildValidationEdges pins the Build(n) edges the scenario
// compiler leans on: rank bounds on both sides, overlapping windows,
// and the zero-duration degenerate — a window whose closer lands at the
// same instant as its opener sorts closer-first (Kind order is the
// same-timestamp precedence), so the opener finds its window already
// shut and validation rejects the schedule rather than arming a
// zero-length fault.
func TestBuildValidationEdges(t *testing.T) {
	cases := []struct {
		name string
		b    *Builder
	}{
		{"negative rank crash", NewBuilder().Crash(0, -1, cluster.SoftwareFailed)},
		{"negative rank partition", NewBuilder().Partition(0, 10, -3)},
		{"rank == n", NewBuilder().Crash(0, 8, cluster.SoftwareFailed)},
		{"rank beyond n", NewBuilder().CrashGroup(0, cluster.HardwareFailed, 1, 100)},
		{"overlapping partitions", NewBuilder().Partition(0, 100, 1).Partition(50, 100, 2)},
		{"partition inside partition", NewBuilder().Partition(0, 100, 1).Partition(10, 20, 2)},
		{"zero-duration partition", NewBuilder().Partition(5, 0, 1)},
		{"zero-duration kv outage", NewBuilder().KVOutage(5, 0)},
		{"zero-duration straggler", NewBuilder().Straggler(5, 0, 1, 0.5)},
	}
	for _, tc := range cases {
		if _, err := tc.b.Build(8); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Back-to-back windows share an instant (heal at t=10, next start at
	// t=10); closers sorting before openers makes that legal.
	if _, err := NewBuilder().Partition(0, 10, 1).Partition(10, 10, 2).Build(8); err != nil {
		t.Errorf("back-to-back windows rejected: %v", err)
	}
}

// TestFailuresLoweringHardwareWins drives the chaos→failure lowering
// with the shapes the scenario compiler emits: a software crash and a
// correlated hardware crash sharing an instant and a rank must collapse
// to one hardware failure, and non-crash kinds must vanish.
func TestFailuresLoweringHardwareWins(t *testing.T) {
	sched := NewBuilder().
		Crash(100, 2, cluster.SoftwareFailed).
		CrashGroup(100, cluster.HardwareFailed, 2, 3).
		Crash(200, 1, cluster.SoftwareFailed).
		Partition(50, 25, 4).
		KVOutage(300, 10).
		LeaseJitter(0, 3*simclock.Second).
		MustBuild(8)
	fs := sched.Failures()
	if len(fs) != 3 {
		t.Fatalf("lowered %d events, want 3 (dedup + crash kinds only): %+v", len(fs), fs)
	}
	if fs[0].At != 100 || fs[0].Rank != 2 || fs[0].Kind != cluster.HardwareFailed {
		t.Errorf("rank 2 double-hit lowered to %+v, want hardware at t=100", fs[0])
	}
	if fs[1].At != 100 || fs[1].Rank != 3 || fs[1].Kind != cluster.HardwareFailed {
		t.Errorf("event 1 = %+v, want rank 3 hardware at t=100", fs[1])
	}
	if fs[2].At != 200 || fs[2].Rank != 1 || fs[2].Kind != cluster.SoftwareFailed {
		t.Errorf("event 2 = %+v, want rank 1 software at t=200", fs[2])
	}
	if err := fs.Validate(8); err != nil {
		t.Fatalf("lowered schedule invalid: %v", err)
	}
	if got := Schedule(nil).Failures(); got != nil {
		t.Fatalf("empty schedule lowered to %+v, want nil", got)
	}
}
