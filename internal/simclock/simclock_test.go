package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	times := []Time{5, 1, 3, 2, 4}
	for _, at := range times {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	if n := e.RunAll(); n != len(times) {
		t.Fatalf("fired %d events, want %d", n, len(times))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("events out of order: %v", got)
		}
	}
	if e.Now() != 5 {
		t.Fatalf("clock at %v, want 5", e.Now())
	}
}

func TestEngineTieBreaksBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order %v, want ascending scheduling order", got)
		}
	}
}

func TestEngineTieBreaksByPriority(t *testing.T) {
	e := NewEngine()
	var got []int
	e.AtPriority(1, 5, func() { got = append(got, 5) })
	e.AtPriority(1, -1, func() { got = append(got, -1) })
	e.AtPriority(1, 2, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{-1, 2, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("priority order %v, want %v", got, want)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestNilEventPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil event function did not panic")
		}
	}()
	e.At(1, nil)
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.At(1, func() { fired = true })
	if !id.Pending() {
		t.Fatal("event should be pending before run")
	}
	if !id.Cancel() {
		t.Fatal("cancel of pending event returned false")
	}
	if id.Cancel() {
		t.Fatal("second cancel returned true")
	}
	e.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
	if id.Pending() {
		t.Fatal("canceled event still pending")
	}
}

func TestRunBoundedByHorizon(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	n := e.Run(3)
	if n != 3 {
		t.Fatalf("fired %d events, want 3", n)
	}
	if e.Now() != 3 {
		t.Fatalf("clock at %v, want 3", e.Now())
	}
	// Events exactly at the horizon fire; later ones wait.
	n = e.Run(4.5)
	if n != 1 || fired[len(fired)-1] != 4 {
		t.Fatalf("second run fired %d ending %v, want 1 ending 4", n, fired)
	}
	if e.Now() != 4.5 {
		t.Fatalf("clock advanced to %v, want horizon 4.5", e.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	if n := e.Run(Forever); n != 4 {
		t.Fatalf("run fired %d, want 4", n)
	}
	if e.Len() != 6 {
		t.Fatalf("%d events left, want 6", e.Len())
	}
}

func TestStepFiresOneEvent(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++ })
	e.At(2, func() { count++ })
	if !e.Step() || count != 1 {
		t.Fatalf("first step fired %d, want 1", count)
	}
	if !e.Step() || count != 2 {
		t.Fatalf("second step fired %d, want 2", count)
	}
	if e.Step() {
		t.Fatal("step on empty queue returned true")
	}
}

func TestPeekTimeSkipsCanceled(t *testing.T) {
	e := NewEngine()
	id := e.At(1, func() {})
	e.At(2, func() {})
	id.Cancel()
	if got := e.PeekTime(); got != 2 {
		t.Fatalf("PeekTime = %v, want 2", got)
	}
	e2 := NewEngine()
	if got := e2.PeekTime(); got != Forever {
		t.Fatalf("PeekTime on empty = %v, want Forever", got)
	}
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	e := NewEngine()
	depth := 0
	var grow func()
	grow = func() {
		depth++
		if depth < 100 {
			e.After(1, grow)
		}
	}
	e.At(0, grow)
	e.RunAll()
	if depth != 100 {
		t.Fatalf("chained depth %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("clock at %v, want 99", e.Now())
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	e := NewEngine()
	var fires []Time
	tk := NewTicker(e, 10, func(at Time) {
		fires = append(fires, at)
		if len(fires) == 5 {
			// stop from inside the callback
		}
	})
	e.Run(45)
	tk.Stop()
	e.RunAll()
	want := []Time{10, 20, 30, 40}
	if len(fires) != len(want) {
		t.Fatalf("ticker fired %d times (%v), want %d", len(fires), fires, len(want))
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("ticker fire %d at %v, want %v", i, fires[i], want[i])
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = NewTicker(e, 1, func(Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.RunAll()
	if count != 3 {
		t.Fatalf("ticker fired %d times, want 3", count)
	}
	if !tk.Stopped() {
		t.Fatal("ticker not stopped")
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("zero ticker period did not panic")
		}
	}()
	NewTicker(e, 0, func(Time) {})
}

// Property: for any random batch of event times, the engine fires them in
// nondecreasing time order and ends with the clock at the maximum.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%64) + 1
		times := make([]Time, count)
		var fired []Time
		for i := range times {
			times[i] = Time(rng.Float64() * 1000)
			at := times[i]
			e.At(at, func() { fired = append(fired, at) })
		}
		e.RunAll()
		if len(fired) != count {
			return false
		}
		sorted := append([]Time(nil), times...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range sorted {
			// Ties fire in scheduling order but carry equal values, so a
			// positional compare against the sorted times is exact.
			if fired[i] != sorted[i] {
				return false
			}
			if i > 0 && fired[i-1] > fired[i] {
				return false
			}
		}
		return e.Now() == sorted[count-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationFormatting(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{7200, "2.00h"},
		{90, "1.50m"},
		{1.5, "1.500s"},
		{0.25, "250.000ms"},
		{5e-6, "5.000us"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%v).String() = %q, want %q", float64(c.d), got, c.want)
		}
	}
	if Forever.String() != "forever" {
		t.Errorf("Forever.String() = %q", Forever.String())
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(10).Add(5)
	if tm != 15 {
		t.Fatalf("Add = %v, want 15", tm)
	}
	if d := Time(15).Sub(10); d != 5 {
		t.Fatalf("Sub = %v, want 5", d)
	}
	if s := Duration(2.5).Seconds(); s != 2.5 {
		t.Fatalf("Seconds = %v, want 2.5", s)
	}
}

func TestReentrantRunPanics(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("reentrant Run did not panic")
			}
		}()
		e.RunAll()
	})
	e.RunAll()
}

func TestRearmMovesPendingEvent(t *testing.T) {
	e := NewEngine()
	var fired []Time
	id := e.At(5, func() { fired = append(fired, e.Now()) })
	e.Rearm(id, 2)
	e.RunAll()
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("rearmed event fired at %v, want [2]", fired)
	}
}

func TestRearmRevivesFiredAndCanceledEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	id := e.At(1, func() { count++ })
	e.RunAll()
	if count != 1 {
		t.Fatalf("event fired %d times, want 1", count)
	}
	// Revive the fired event.
	e.Rearm(id, 3)
	e.RunAll()
	if count != 2 || e.Now() != 3 {
		t.Fatalf("revived event: count %d at %v, want 2 at 3", count, e.Now())
	}
	// Revive a canceled event.
	id.Cancel()
	e.Rearm(id, 4)
	e.RunAll()
	if count != 3 || e.Now() != 4 {
		t.Fatalf("revived canceled event: count %d at %v, want 3 at 4", count, e.Now())
	}
}

func TestRearmKeepsPriorityAndResequences(t *testing.T) {
	e := NewEngine()
	var order []string
	low := e.AtPriority(10, -5, func() { order = append(order, "low") })
	e.At(1, func() {
		// Move the priority −5 event to the same instant as a priority-0
		// event scheduled later: priority still wins the tie.
		e.At(2, func() { order = append(order, "plain") })
		e.Rearm(low, 2)
	})
	e.RunAll()
	if len(order) != 2 || order[0] != "low" || order[1] != "plain" {
		t.Fatalf("order %v, want [low plain]", order)
	}
}

func TestRearmSequencesAfterExistingTies(t *testing.T) {
	e := NewEngine()
	var order []string
	a := e.At(1, func() { order = append(order, "a") })
	e.RunAll()
	// Same instant, same priority: the freshly scheduled event keeps its
	// earlier sequence, the rearmed one fires after it.
	e.At(1, func() { order = append(order, "b") })
	e.Rearm(a, 1)
	e.RunAll()
	if len(order) != 3 || order[1] != "b" || order[2] != "a" {
		t.Fatalf("order %v, want [a b a]", order)
	}
}

func TestRearmIntoPastPanics(t *testing.T) {
	e := NewEngine()
	id := e.At(1, func() {})
	e.At(5, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("rearming into the past did not panic")
		}
	}()
	e.Rearm(id, 2)
}

func TestRearmZeroEventPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("rearming a zero EventID did not panic")
		}
	}()
	e.Rearm(EventID{}, 1)
}
