// Package simclock provides a deterministic discrete-event simulation
// engine with a virtual clock. All GEMINI experiments run on virtual time,
// so results are reproducible and independent of the host machine.
//
// Time is represented as float64 seconds since the start of the simulation.
// The engine delivers events in (time, priority, sequence) order; ties on
// time are broken first by priority and then by scheduling order, which
// keeps runs fully deterministic.
package simclock

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration float64

// Common durations, for readability at call sites.
const (
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
	Hour        Duration = 3600
	Day         Duration = 86400
)

// Forever is a time later than any event the engine will ever reach.
const Forever Time = Time(math.MaxFloat64)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return formatSeconds(float64(t)) }

func (d Duration) String() string { return formatSeconds(float64(d)) }

// Seconds returns the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) }

func formatSeconds(s float64) string {
	switch {
	case s == math.MaxFloat64:
		return "forever"
	case s >= 3600:
		return fmt.Sprintf("%.2fh", s/3600)
	case s >= 60:
		return fmt.Sprintf("%.2fm", s/60)
	case s >= 1:
		return fmt.Sprintf("%.3fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fus", s*1e6)
	}
}

// An event is a callback scheduled at a point in virtual time.
type event struct {
	at       Time
	priority int
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 if popped
}

// EventID identifies a scheduled event so it can be canceled.
type EventID struct{ ev *event }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. It reports whether the event was
// still pending.
func (id EventID) Cancel() bool {
	if id.ev == nil || id.ev.canceled || id.ev.index < 0 {
		return false
	}
	id.ev.canceled = true
	return true
}

// Pending reports whether the event has neither fired nor been canceled.
func (id EventID) Pending() bool {
	return id.ev != nil && !id.ev.canceled && id.ev.index >= 0
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct one with NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	running bool
	stopped bool
}

// NewEngine returns an engine whose clock starts at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending events (including canceled ones that
// have not yet been discarded).
func (e *Engine) Len() int { return len(e.queue) }

// At schedules fn to run at the absolute virtual time at. Scheduling in
// the past panics: it would silently reorder causality.
func (e *Engine) At(at Time, fn func()) EventID {
	return e.at(at, 0, fn)
}

// AtPriority schedules fn at time at with an explicit tie-break priority;
// lower priorities fire first among events at the same instant.
func (e *Engine) AtPriority(at Time, priority int, fn func()) EventID {
	return e.at(at, priority, fn)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) EventID {
	return e.at(e.now.Add(d), 0, fn)
}

func (e *Engine) at(at Time, priority int, fn func()) EventID {
	if at < e.now {
		panic(fmt.Sprintf("simclock: scheduling event at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("simclock: nil event function")
	}
	ev := &event{at: at, priority: priority, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventID{ev}
}

// Rearm reschedules an existing event to fire at the absolute time at,
// reusing its allocation: a still-pending event is moved in place, and a
// fired or canceled one is revived. The event keeps its callback and
// priority but is sequenced as if newly scheduled, so among same-instant
// same-priority events it fires after those already queued. Like At,
// rearming into the past panics.
//
// Rearm exists for long-lived periodic events (the netsim fabric's
// completion and recompute events) that would otherwise allocate a fresh
// event on every reschedule.
func (e *Engine) Rearm(id EventID, at Time) {
	ev := id.ev
	if ev == nil {
		panic("simclock: Rearm of zero EventID")
	}
	if at < e.now {
		panic(fmt.Sprintf("simclock: rearming event at %v before now %v", at, e.now))
	}
	ev.at = at
	ev.canceled = false
	ev.seq = e.seq
	e.seq++
	if ev.index >= 0 {
		heap.Fix(&e.queue, ev.index)
	} else {
		heap.Push(&e.queue, ev)
	}
}

// Stop makes the current Run call return after the in-flight event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue empties or the clock would
// pass until. It returns the number of events fired. Events scheduled
// exactly at until still fire.
func (e *Engine) Run(until Time) int {
	if e.running {
		panic("simclock: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	fired := 0
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if ev.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = ev.at
		ev.fn()
		fired++
	}
	if e.now < until && until != Forever {
		// Advance the clock to the horizon so successive bounded runs
		// observe monotonic time even across empty stretches.
		e.now = until
	}
	return fired
}

// RunAll executes events until none remain.
func (e *Engine) RunAll() int { return e.Run(Forever) }

// Step fires exactly one pending event, if any, and reports whether an
// event fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// PeekTime returns the time of the next pending event, or Forever if the
// queue is empty.
func (e *Engine) PeekTime() Time {
	for len(e.queue) > 0 {
		if e.queue[0].canceled {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0].at
	}
	return Forever
}
