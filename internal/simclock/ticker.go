package simclock

// Ticker fires a callback at a fixed period until stopped, mirroring the
// heartbeat loops that GEMINI agents run against the key-value store.
type Ticker struct {
	engine *Engine
	period Duration
	fn     func(Time)
	next   EventID
	stop   bool
}

// NewTicker schedules fn to run every period, with the first firing one
// period from now. The callback receives the firing time.
func NewTicker(e *Engine, period Duration, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("simclock: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.next = t.engine.After(t.period, func() {
		if t.stop {
			return
		}
		t.fn(t.engine.Now())
		if !t.stop {
			t.schedule()
		}
	})
}

// Stop cancels future firings. It is safe to call from within the callback.
func (t *Ticker) Stop() {
	t.stop = true
	t.next.Cancel()
}

// Stopped reports whether Stop has been called.
func (t *Ticker) Stopped() bool { return t.stop }
