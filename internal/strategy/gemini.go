package strategy

import "fmt"

// Gemini is the paper's checkpoint scheme, extracted verbatim from the
// pre-seam agent loop: every iteration, each healthy owner replicates
// its full shard to each healthy placement holder; the remote
// persistent tier commits on the system cadence; recovery prefers a
// consistent CPU-memory version (local or peer retrieval) and falls
// back to the remote store, retrying first when the blocker is
// reachability rather than data loss. Its decisions are pinned
// bit-identical to the hard-wired path by the golden-trace and
// determinism tests.
type Gemini struct {
	env Env
}

// NewGemini returns the registry's "gemini" strategy.
func NewGemini() *Gemini { return &Gemini{} }

// Name implements Strategy.
func (g *Gemini) Name() string { return "gemini" }

// Active implements Strategy.
func (g *Gemini) Active() string { return "gemini" }

// Bind implements Strategy.
func (g *Gemini) Bind(env Env) { g.env = env }

// OnActivate implements Strategy. Gemini keeps no tier state to reset.
func (g *Gemini) OnActivate(int64) {}

// PlanCommit replicates every healthy owner's full shard to each of its
// healthy holders, in owner-major placement order — the exact call
// sequence of the original loop.
func (g *Gemini) PlanCommit(iteration int64, healthy func(int) bool) CommitPlan {
	plan := CommitPlan{Remote: iteration%g.env.RemoteEvery() == 0}
	for owner := 0; owner < g.env.Placement.N; owner++ {
		if !healthy(owner) {
			continue
		}
		for _, holder := range g.env.Placement.Replicas(owner) {
			if !healthy(holder) {
				continue
			}
			plan.Commits = append(plan.Commits, Commit{Holder: holder, Owner: owner, Kind: CommitFull})
		}
	}
	return plan
}

// SerializeNeeded implements Strategy: GEMINI always serializes the
// resident CPU-memory checkpoints before touching them (§6.2 step 2).
func (g *Gemini) SerializeNeeded([]int, map[int]bool) bool { return true }

// PlanRecovery walks the §3.1 storage hierarchy: a consistent version
// among reachable CPU memories wins; otherwise fall back to the remote
// store, retryable iff the data still survives beyond the partition.
func (g *Gemini) PlanRecovery(ctx RecoveryContext) Recovery {
	version, ok := g.env.Ckpt.ConsistentVersion(ctx.Reachable)
	if !ok {
		_, healable := g.env.Ckpt.ConsistentVersion(ctx.Surviving)
		return Recovery{Tier: TierRemote, Version: ctx.RemoteVersion, Retryable: healable}
	}
	plan, err := g.env.Ckpt.PlanRecovery(version, ctx.Reachable)
	if err != nil {
		panic(fmt.Sprintf("strategy: consistent version %d but no plan: %v", version, err))
	}
	return Recovery{Tier: TierMemory, Version: version, Plan: plan}
}

// OnFailure implements Strategy.
func (g *Gemini) OnFailure(int, bool) {}

// OnRecovered implements Strategy.
func (g *Gemini) OnRecovered(Outcome) {}
