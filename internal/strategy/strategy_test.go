package strategy

import (
	"reflect"
	"testing"

	"gemini/internal/ckpt"
	"gemini/internal/placement"
	"gemini/internal/simclock"
)

// testEnv builds a bound Env over a fresh n-machine engine with m
// replicas and unit-free shard size.
func testEnv(t *testing.T, n, m int, remoteEvery int64) (Env, *ckpt.Engine) {
	t.Helper()
	p := placement.MustMixed(n, m)
	ck := ckpt.MustNewEngine(p, 100)
	var now simclock.Time
	return Env{
		Ckpt:          ck,
		Placement:     p,
		IterationTime: 60 * simclock.Second,
		Now:           func() simclock.Time { return now },
		RemoteEvery:   func() int64 { return remoteEvery },
		Emit:          func(event, detail string) {},
	}, ck
}

// applyPlan executes a commit plan against the engine the way the agent
// does.
func applyPlan(ck *ckpt.Engine, plan CommitPlan, iter int64) {
	for _, c := range plan.Commits {
		switch c.Kind {
		case CommitFull:
			ck.Begin(c.Holder, c.Owner, iter)
			ck.Receive(c.Holder, c.Owner, iter, ck.ShardBytes())
			ck.Commit(c.Holder, c.Owner, iter, 0)
		case CommitDelta:
			ck.BeginDelta(c.Holder, c.Owner, iter, c.Bytes)
			ck.Receive(c.Holder, c.Owner, iter, c.Bytes)
			ck.Commit(c.Holder, c.Owner, iter, 0)
		case CommitRefresh:
			ck.Refresh(c.Holder, c.Owner, iter)
		}
	}
}

func allHealthy(int) bool { return true }

func TestRegistryNamesAndLookup(t *testing.T) {
	want := []string{"adaptive", "gemini", "sparse", "tiered"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i, name := range want {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
		if Index(name) != i {
			t.Errorf("Index(%q) = %d, want %d", name, Index(name), i)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Fatal("New(nope) succeeded; want error listing registered names")
	}
	if Index("nope") != -1 {
		t.Errorf("Index(nope) = %d, want -1", Index("nope"))
	}
	// Fresh instances each time: strategies are stateful and single-run.
	a, b := MustNew("tiered"), MustNew("tiered")
	if a == b {
		t.Fatal("New returned the same instance twice")
	}
}

func TestGeminiPlanCommitMatchesPlacementOrder(t *testing.T) {
	env, _ := testEnv(t, 4, 2, 10)
	g := NewGemini()
	g.Bind(env)

	plan := g.PlanCommit(1, allHealthy)
	var want []Commit
	for owner := 0; owner < 4; owner++ {
		for _, holder := range env.Placement.Replicas(owner) {
			want = append(want, Commit{Holder: holder, Owner: owner, Kind: CommitFull})
		}
	}
	if !reflect.DeepEqual(plan.Commits, want) {
		t.Fatalf("commit order diverged from placement order:\n got %v\nwant %v", plan.Commits, want)
	}
	if plan.Remote {
		t.Error("iteration 1 committed remote; cadence is 10")
	}
	if p := g.PlanCommit(10, allHealthy); !p.Remote {
		t.Error("iteration 10 skipped the remote cadence")
	}
	// Unhealthy ranks drop out both as owners and as holders.
	plan = g.PlanCommit(2, func(rank int) bool { return rank != 0 })
	for _, c := range plan.Commits {
		if c.Holder == 0 || c.Owner == 0 {
			t.Fatalf("commit %v involves the unhealthy rank", c)
		}
	}
}

func TestGeminiRecoveryLadder(t *testing.T) {
	env, ck := testEnv(t, 4, 2, 10)
	g := NewGemini()
	g.Bind(env)
	applyPlan(ck, g.PlanCommit(1, allHealthy), 1)

	rec := g.PlanRecovery(RecoveryContext{Reachable: allHealthy, Surviving: allHealthy})
	if rec.Tier != TierMemory || rec.Version != 1 || len(rec.Plan) != 4 {
		t.Fatalf("want memory-tier recovery of version 1 for all 4 ranks, got %+v", rec)
	}
	// Nothing reachable but data survives → retryable remote fallback.
	none := func(int) bool { return false }
	rec = g.PlanRecovery(RecoveryContext{Reachable: none, Surviving: allHealthy, RemoteVersion: 0})
	if rec.Tier != TierRemote || !rec.Retryable {
		t.Fatalf("partitioned survivors should yield a retryable remote fallback, got %+v", rec)
	}
	// Data truly gone → remote, not retryable.
	rec = g.PlanRecovery(RecoveryContext{Reachable: none, Surviving: none, RemoteVersion: 0})
	if rec.Tier != TierRemote || rec.Retryable {
		t.Fatalf("wiped cluster should yield a non-retryable remote fallback, got %+v", rec)
	}
}

func TestTieredGPUFastPath(t *testing.T) {
	env, ck := testEnv(t, 4, 2, 100)
	tr := NewTiered()
	tr.Bind(env)

	// Iterations 1..7: GPU snapshots only, no CPU traffic.
	for iter := int64(1); iter < 8; iter++ {
		plan := tr.PlanCommit(iter, allHealthy)
		if len(plan.Commits) != 0 {
			t.Fatalf("iteration %d: tiered committed to CPU off the cadence: %v", iter, plan.Commits)
		}
		applyPlan(ck, plan, iter)
	}
	// A software failure now: GPU tier serves, serialize is skipped.
	if tr.SerializeNeeded([]int{2}, map[int]bool{}) {
		t.Error("software failure with resident GPU snapshots still wants the serialize stall")
	}
	rec := tr.PlanRecovery(RecoveryContext{Failed: []int{2}, Hardware: map[int]bool{}, Reachable: allHealthy, Surviving: allHealthy})
	if rec.Tier != TierGPU || rec.Version != 7 {
		t.Fatalf("want GPU-tier recovery at iteration 7, got %+v", rec)
	}
	// Iteration 8 is on the CPU cadence.
	plan := tr.PlanCommit(8, allHealthy)
	if len(plan.Commits) == 0 {
		t.Fatal("iteration 8: tiered skipped its CPU cadence")
	}
	applyPlan(ck, plan, 8)

	// A hardware failure wipes rank 1's GPU buffers: serialize returns,
	// recovery falls to the CPU tier.
	tr.OnFailure(1, true)
	hw := map[int]bool{1: true}
	if !tr.SerializeNeeded([]int{1}, hw) {
		t.Error("hardware failure skipped the serialize stall")
	}
	surviving := func(rank int) bool { return rank != 1 }
	rec = tr.PlanRecovery(RecoveryContext{Failed: []int{1}, Hardware: hw, Reachable: surviving, Surviving: surviving})
	if rec.Tier != TierMemory || rec.Version != 8 {
		t.Fatalf("want CPU-tier recovery at iteration 8, got %+v", rec)
	}

	// After a rollback, newer GPU snapshots must be dropped.
	tr.OnRecovered(Outcome{Version: 8})
	if _, ok := tr.gpuVersion(); ok {
		t.Error("GPU snapshots newer than the resumed version survived OnRecovered")
	}
	// OnActivate resets the tier outright (adaptive switched in).
	tr.PlanCommit(9, allHealthy)
	tr.OnActivate(9)
	if tr.SerializeNeeded(nil, map[int]bool{}) == false {
		t.Error("freshly activated tiered trusted stale GPU buffers")
	}
}

func TestSparseDeltaRefreshAndResync(t *testing.T) {
	env, ck := testEnv(t, 4, 2, 100)
	sp := NewSparse()
	sp.Bind(env)

	// First iteration: no committed copies anywhere → all full.
	plan := sp.PlanCommit(1, allHealthy)
	for _, c := range plan.Commits {
		if c.Kind != CommitFull {
			t.Fatalf("iteration 1 commit %v should be full (no base)", c)
		}
	}
	applyPlan(ck, plan, 1)

	// Steady state: touched owners delta, the rest refresh.
	plan = sp.PlanCommit(2, allHealthy)
	kinds := map[CommitKind]int{}
	for _, c := range plan.Commits {
		kinds[c.Kind]++
		wantTouched := (2+int64(c.Owner))%sp.TouchPeriod == 0
		if wantTouched && c.Kind != CommitDelta {
			t.Fatalf("touched owner %d got %v, want delta", c.Owner, c.Kind)
		}
		if !wantTouched && c.Kind != CommitRefresh {
			t.Fatalf("untouched owner %d got %v, want refresh", c.Owner, c.Kind)
		}
		if c.Kind == CommitDelta && c.Bytes != sp.DeltaFraction*ck.ShardBytes() {
			t.Fatalf("delta bytes %v, want %v", c.Bytes, sp.DeltaFraction*ck.ShardBytes())
		}
	}
	if kinds[CommitFull] != 0 || kinds[CommitDelta] == 0 || kinds[CommitRefresh] == 0 {
		t.Fatalf("iteration 2 kind mix %v, want deltas and refreshes only", kinds)
	}
	applyPlan(ck, plan, 2)
	if v, ok := ck.ConsistentVersion(nil); !ok || v != 2 {
		t.Fatalf("after delta+refresh round, consistent version = %d (%v), want 2", v, ok)
	}

	// A holder that missed a round (gap) takes a full resync.
	ck.Wipe(0)
	plan = sp.PlanCommit(3, allHealthy)
	for _, c := range plan.Commits {
		if c.Holder == 0 && c.Kind != CommitFull {
			t.Fatalf("wiped holder 0 got %v for owner %d, want full resync", c.Kind, c.Owner)
		}
	}

	// Recovery charges the delta-replay cost on every tier.
	rec := sp.PlanRecovery(RecoveryContext{Reachable: allHealthy, Surviving: allHealthy})
	if rec.ReplayTime != sp.Replay {
		t.Errorf("memory-tier replay %v, want %v", rec.ReplayTime, sp.Replay)
	}
	none := func(int) bool { return false }
	rec = sp.PlanRecovery(RecoveryContext{Reachable: none, Surviving: none})
	if rec.ReplayTime != sp.Replay {
		t.Errorf("remote-tier replay %v, want %v", rec.ReplayTime, sp.Replay)
	}
}

func TestAdaptiveDecisionRule(t *testing.T) {
	env, _ := testEnv(t, 4, 2, 100)
	var switches []string
	env.Emit = func(event, detail string) {
		if event == "strategy-switch" {
			switches = append(switches, detail)
		}
	}
	a := NewAdaptive()
	a.Bind(env)
	if a.Active() != "gemini" {
		t.Fatalf("adaptive starts on %q, want gemini", a.Active())
	}

	// A burst of software failures 2 minutes apart → tiered.
	at := simclock.Time(0)
	for i := 0; i < 4; i++ {
		at = at.Add(2 * simclock.Minute)
		a.OnRecovered(Outcome{At: at, Source: "local", Hardware: false})
	}
	a.PlanCommit(10, allHealthy)
	if a.Active() != "tiered" {
		t.Fatalf("software-dominated burst selected %q, want tiered", a.Active())
	}
	if len(switches) != 1 {
		t.Fatalf("switch events = %v, want exactly one", switches)
	}

	// Hardware takes over the window → gemini.
	for i := 0; i < 8; i++ {
		at = at.Add(2 * simclock.Minute)
		a.OnRecovered(Outcome{At: at, Source: "peer", Hardware: true})
	}
	a.PlanCommit(20, allHealthy)
	if a.Active() != "gemini" {
		t.Fatalf("hardware-heavy burst selected %q, want gemini", a.Active())
	}

	// Failures spread out far beyond QuietMTBF → sparse.
	for i := 0; i < 8; i++ {
		at = at.Add(10 * simclock.Hour)
		a.OnRecovered(Outcome{At: at, Source: "local", Hardware: false})
	}
	a.PlanCommit(30, allHealthy)
	if a.Active() != "sparse" {
		t.Fatalf("quiet stretch selected %q, want sparse", a.Active())
	}
	if len(switches) != 3 {
		t.Fatalf("switch events = %d (%v), want 3", len(switches), switches)
	}
}

func TestAdaptiveDelegatesToActive(t *testing.T) {
	env, ck := testEnv(t, 4, 2, 100)
	a := NewAdaptive()
	a.Bind(env)
	// On gemini: full commits every iteration.
	plan := a.PlanCommit(1, allHealthy)
	if len(plan.Commits) == 0 || plan.Commits[0].Kind != CommitFull {
		t.Fatalf("adaptive-on-gemini plan %v, want full commits", plan.Commits)
	}
	applyPlan(ck, plan, 1)
	if !a.SerializeNeeded([]int{0}, map[int]bool{}) {
		t.Error("adaptive-on-gemini skipped the serialize stall")
	}
	rec := a.PlanRecovery(RecoveryContext{Reachable: allHealthy, Surviving: allHealthy})
	if rec.Tier != TierMemory || rec.Version != 1 {
		t.Fatalf("adaptive-on-gemini recovery %+v, want memory tier at 1", rec)
	}
}
