package strategy

import "fmt"

// Tiered is a TierCheck-style checkpoint ladder. The fastest tier is a
// per-iteration GPU-buffer snapshot: the checkpoint daemon pins a copy
// of each rank's shard in spare GPU memory every iteration, so a pure
// software failure (process crash — the machine and its device memory
// survive) resumes from the very last iteration with no network
// retrieval and no serialize stall. The middle tier is GEMINI-style
// CPU-memory replication, but at a coarser cadence (every CPUEvery
// iterations) since the GPU tier absorbs the common case; hardware
// failures lose the machine's GPU buffers and pay up to CPUEvery-1
// iterations of staleness. The remote persistent tier is unchanged.
type Tiered struct {
	env Env
	// CPUEvery is the CPU-memory replication cadence in iterations.
	CPUEvery int64
	// gpu holds each rank's newest GPU-buffer snapshot iteration.
	// Hardware failures delete the rank's entry (device memory is gone);
	// replacements re-enter on their next completed iteration.
	gpu map[int]int64
}

// NewTiered returns the registry's "tiered" strategy.
func NewTiered() *Tiered {
	return &Tiered{CPUEvery: 8, gpu: map[int]int64{}}
}

// Name implements Strategy.
func (t *Tiered) Name() string { return "tiered" }

// Active implements Strategy.
func (t *Tiered) Active() string { return "tiered" }

// Bind implements Strategy.
func (t *Tiered) Bind(env Env) { t.env = env }

// OnActivate drops stale GPU snapshots: while dormant (adaptive ran a
// different policy) the daemon was not refreshing the buffers, so
// whatever they hold is unusable.
func (t *Tiered) OnActivate(int64) { t.gpu = map[int]int64{} }

// PlanCommit snapshots every healthy rank into its GPU buffer (free —
// device-local copy) and replicates to CPU memory on the CPUEvery grid.
func (t *Tiered) PlanCommit(iteration int64, healthy func(int) bool) CommitPlan {
	for rank := 0; rank < t.env.Placement.N; rank++ {
		if healthy(rank) {
			t.gpu[rank] = iteration
		}
	}
	plan := CommitPlan{Remote: iteration%t.env.RemoteEvery() == 0}
	if iteration%t.CPUEvery != 0 {
		return plan
	}
	for owner := 0; owner < t.env.Placement.N; owner++ {
		if !healthy(owner) {
			continue
		}
		for _, holder := range t.env.Placement.Replicas(owner) {
			if !healthy(holder) {
				continue
			}
			plan.Commits = append(plan.Commits, Commit{Holder: holder, Owner: owner, Kind: CommitFull})
		}
	}
	return plan
}

// gpuVersion reports the iteration the GPU tier can resume from: every
// rank must hold a snapshot, and all snapshots must agree (a rank that
// lagged or was replaced breaks tier consistency until its next
// completed iteration).
func (t *Tiered) gpuVersion() (int64, bool) {
	var version int64
	for rank := 0; rank < t.env.Placement.N; rank++ {
		v, ok := t.gpu[rank]
		if !ok {
			return 0, false
		}
		if rank == 0 {
			version = v
		} else if v != version {
			return 0, false
		}
	}
	return version, t.env.Placement.N > 0
}

// SerializeNeeded skips the serialize stall when the GPU tier will
// serve the recovery: the snapshots are already materialized in device
// memory, there is nothing to torch.save.
func (t *Tiered) SerializeNeeded(failed []int, hardware map[int]bool) bool {
	if len(hardware) > 0 {
		return true
	}
	_, ok := t.gpuVersion()
	return !ok
}

// PlanRecovery prefers the GPU tier for pure software failures, then
// falls down the GEMINI ladder: consistent CPU memory, then remote.
func (t *Tiered) PlanRecovery(ctx RecoveryContext) Recovery {
	if len(ctx.Hardware) == 0 {
		if version, ok := t.gpuVersion(); ok {
			return Recovery{Tier: TierGPU, Version: version}
		}
	}
	version, ok := t.env.Ckpt.ConsistentVersion(ctx.Reachable)
	if !ok {
		_, healable := t.env.Ckpt.ConsistentVersion(ctx.Surviving)
		return Recovery{Tier: TierRemote, Version: ctx.RemoteVersion, Retryable: healable}
	}
	plan, err := t.env.Ckpt.PlanRecovery(version, ctx.Reachable)
	if err != nil {
		panic(fmt.Sprintf("strategy: consistent version %d but no plan: %v", version, err))
	}
	return Recovery{Tier: TierMemory, Version: version, Plan: plan}
}

// OnFailure wipes the rank's GPU buffer on hardware failure — device
// memory dies with the machine, and the replacement arrives empty.
func (t *Tiered) OnFailure(rank int, hardware bool) {
	if hardware {
		delete(t.gpu, rank)
	}
}

// OnRecovered implements Strategy. After a rollback the surviving GPU
// snapshots may be newer than the resumed version; drop them so the
// tier only ever offers snapshots of the current timeline.
func (t *Tiered) OnRecovered(outcome Outcome) {
	for rank, v := range t.gpu {
		if v > outcome.Version {
			delete(t.gpu, rank)
		}
	}
}
