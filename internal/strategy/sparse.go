package strategy

import (
	"fmt"

	"gemini/internal/simclock"
)

// Sparse replicates deltas instead of full shards — the MoE-style
// observation that between consecutive iterations only the touched
// experts' parameters and their optimizer states actually change. Each
// iteration, a deterministic 1/TouchPeriod of the owners are "touched"
// and ship a DeltaFraction-sized delta on top of the holder's previous
// committed copy; untouched owners re-stamp the holder's existing bytes
// at the new iteration for free (CommitRefresh). A holder whose copy
// fell behind the previous iteration (fresh replacement, post-recovery
// gap) takes a full resync. Recovery uses GEMINI's ladder but pays a
// fixed delta-replay cost on top of retrieval — the price of
// reconstructing a full state from base + deltas.
type Sparse struct {
	env Env
	// TouchPeriod is the expert-touch cadence: owner o is touched when
	// (iteration + o) % TouchPeriod == 0, so touches stagger across the
	// cluster instead of bursting.
	TouchPeriod int64
	// DeltaFraction is a delta's size as a fraction of the full shard.
	DeltaFraction float64
	// Replay is the delta-replay cost added to every recovery.
	Replay simclock.Duration
}

// NewSparse returns the registry's "sparse" strategy.
func NewSparse() *Sparse {
	return &Sparse{TouchPeriod: 4, DeltaFraction: 0.25, Replay: 30 * simclock.Second}
}

// Name implements Strategy.
func (s *Sparse) Name() string { return "sparse" }

// Active implements Strategy.
func (s *Sparse) Active() string { return "sparse" }

// Bind implements Strategy.
func (s *Sparse) Bind(env Env) { s.env = env }

// OnActivate implements Strategy. Sparse needs no reset: its first plan
// after a dormant stretch sees stale holder copies and issues full
// resyncs on its own.
func (s *Sparse) OnActivate(int64) {}

// touched says whether owner's experts changed this iteration.
func (s *Sparse) touched(owner int, iteration int64) bool {
	return (iteration+int64(owner))%s.TouchPeriod == 0
}

// PlanCommit ships deltas for touched owners, re-stamps untouched ones,
// and full-resyncs holders whose committed copy lags more than one
// iteration (deltas only apply on top of the immediately previous
// version).
func (s *Sparse) PlanCommit(iteration int64, healthy func(int) bool) CommitPlan {
	plan := CommitPlan{Remote: iteration%s.env.RemoteEvery() == 0}
	for owner := 0; owner < s.env.Placement.N; owner++ {
		if !healthy(owner) {
			continue
		}
		for _, holder := range s.env.Placement.Replicas(owner) {
			if !healthy(holder) {
				continue
			}
			c := Commit{Holder: holder, Owner: owner}
			newest, ok := s.env.Ckpt.Completed(holder, owner)
			switch {
			case !ok || newest.Iteration < iteration-1:
				c.Kind = CommitFull
			case s.touched(owner, iteration):
				c.Kind = CommitDelta
				c.Bytes = s.DeltaFraction * s.env.Ckpt.ShardBytes()
			default:
				c.Kind = CommitRefresh
			}
			plan.Commits = append(plan.Commits, c)
		}
	}
	return plan
}

// SerializeNeeded implements Strategy: the in-memory base+delta chain
// must be serialized before recovery touches it, same as GEMINI.
func (s *Sparse) SerializeNeeded([]int, map[int]bool) bool { return true }

// PlanRecovery walks GEMINI's ladder and charges the delta-replay cost
// on whichever tier serves the recovery.
func (s *Sparse) PlanRecovery(ctx RecoveryContext) Recovery {
	version, ok := s.env.Ckpt.ConsistentVersion(ctx.Reachable)
	if !ok {
		_, healable := s.env.Ckpt.ConsistentVersion(ctx.Surviving)
		return Recovery{Tier: TierRemote, Version: ctx.RemoteVersion, Retryable: healable, ReplayTime: s.Replay}
	}
	plan, err := s.env.Ckpt.PlanRecovery(version, ctx.Reachable)
	if err != nil {
		panic(fmt.Sprintf("strategy: consistent version %d but no plan: %v", version, err))
	}
	return Recovery{Tier: TierMemory, Version: version, Plan: plan, ReplayTime: s.Replay}
}

// OnFailure implements Strategy.
func (s *Sparse) OnFailure(int, bool) {}

// OnRecovered implements Strategy.
func (s *Sparse) OnRecovered(Outcome) {}
