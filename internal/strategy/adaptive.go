package strategy

import (
	"fmt"

	"gemini/internal/simclock"
)

// Adaptive is a Chameleon-style meta-strategy: it runs one of the fixed
// policies at a time and re-evaluates the choice at every iteration
// boundary from the observed recovery stream — the same WastedEvent
// signal the health monitor exports. The decision rule over the last
// Window recoveries:
//
//   - failures are rare (observed MTBF ≥ QuietMTBF) → sparse: minimize
//     steady-state replication traffic, recovery is an edge case;
//   - failures are frequent and mostly software → tiered: the GPU tier
//     turns the dominant failure mode into zero-loss, no-stall restarts;
//   - failures are frequent and hardware-heavy → gemini: full CPU
//     replication every iteration minimizes staleness when machines
//     (and their GPU buffers) actually die.
//
// Every switch is emitted through Env.Emit ("strategy-switch"), which
// the agent records as a run-log event, a trace instant, and a
// strategy.switches counter tick.
type Adaptive struct {
	env Env
	// Window is how many recent recoveries the rule looks at.
	Window int
	// QuietMTBF is the observed-MTBF threshold separating "failures are
	// an edge case" from "failures are the workload". Zero means 200
	// iterations' worth, resolved at Bind.
	QuietMTBF simclock.Duration

	subs   []Strategy
	active int
	obs    []Outcome
}

// NewAdaptive returns the registry's "adaptive" strategy, starting on
// gemini until observations argue otherwise.
func NewAdaptive() *Adaptive {
	return &Adaptive{
		Window: 8,
		subs:   []Strategy{NewGemini(), NewTiered(), NewSparse()},
	}
}

// Name implements Strategy.
func (a *Adaptive) Name() string { return "adaptive" }

// Active returns the sub-strategy currently in force.
func (a *Adaptive) Active() string { return a.subs[a.active].Name() }

// Bind implements Strategy.
func (a *Adaptive) Bind(env Env) {
	a.env = env
	if a.QuietMTBF == 0 {
		a.QuietMTBF = simclock.Duration(200) * env.IterationTime
	}
	for _, sub := range a.subs {
		sub.Bind(env)
	}
}

// OnActivate implements Strategy.
func (a *Adaptive) OnActivate(iteration int64) { a.subs[a.active].OnActivate(iteration) }

// window returns the last Window observations.
func (a *Adaptive) window() []Outcome {
	if len(a.obs) <= a.Window {
		return a.obs
	}
	return a.obs[len(a.obs)-a.Window:]
}

// signals computes the decision inputs over the window: observed mean
// time between recoveries and the hardware fraction.
func (a *Adaptive) signals() (mtbf simclock.Duration, hwFrac float64, ok bool) {
	w := a.window()
	if len(w) < 2 {
		return 0, 0, false
	}
	span := w[len(w)-1].At.Sub(w[0].At)
	mtbf = span / simclock.Duration(len(w)-1)
	hw := 0
	for _, o := range w {
		if o.Hardware {
			hw++
		}
	}
	return mtbf, float64(hw) / float64(len(w)), true
}

// decide picks the sub-strategy index the rule wants right now; with
// fewer than two observations it keeps the current one.
func (a *Adaptive) decide() int {
	mtbf, hwFrac, ok := a.signals()
	if !ok {
		return a.active
	}
	switch {
	case mtbf >= a.QuietMTBF:
		return a.index("sparse")
	case hwFrac < 0.5:
		return a.index("tiered")
	default:
		return a.index("gemini")
	}
}

func (a *Adaptive) index(name string) int {
	for i, sub := range a.subs {
		if sub.Name() == name {
			return i
		}
	}
	panic(fmt.Sprintf("strategy: adaptive has no sub-strategy %q", name))
}

// PlanCommit re-evaluates the policy choice (iteration boundaries are
// the only switch points — never mid-recovery) and delegates.
func (a *Adaptive) PlanCommit(iteration int64, healthy func(int) bool) CommitPlan {
	if want := a.decide(); want != a.active {
		mtbf, hwFrac, _ := a.signals()
		from, to := a.subs[a.active].Name(), a.subs[want].Name()
		a.active = want
		a.subs[a.active].OnActivate(iteration)
		a.env.Emit("strategy-switch",
			fmt.Sprintf("from=%s to=%s iter=%d mtbf=%.0fs hw-frac=%.2f", from, to, iteration, mtbf.Seconds(), hwFrac))
	}
	return a.subs[a.active].PlanCommit(iteration, healthy)
}

// SerializeNeeded delegates to the policy in force.
func (a *Adaptive) SerializeNeeded(failed []int, hardware map[int]bool) bool {
	return a.subs[a.active].SerializeNeeded(failed, hardware)
}

// PlanRecovery delegates to the policy in force.
func (a *Adaptive) PlanRecovery(ctx RecoveryContext) Recovery {
	return a.subs[a.active].PlanRecovery(ctx)
}

// OnFailure fans out to every sub-strategy: physical tier state (GPU
// buffers) is lost whether or not its policy is active.
func (a *Adaptive) OnFailure(rank int, hardware bool) {
	for _, sub := range a.subs {
		sub.OnFailure(rank, hardware)
	}
}

// OnRecovered records the observation and fans out.
func (a *Adaptive) OnRecovered(outcome Outcome) {
	a.obs = append(a.obs, outcome)
	if len(a.obs) > 4*a.Window {
		a.obs = append(a.obs[:0:0], a.obs[len(a.obs)-a.Window:]...)
	}
	for _, sub := range a.subs {
		sub.OnRecovered(outcome)
	}
}
