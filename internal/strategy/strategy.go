// Package strategy is the pluggable checkpoint-policy seam of the
// recovery control plane. A Strategy owns the decisions the agent loop
// used to hard-wire to GEMINI's scheme: where and how often checkpoint
// shards are placed (the per-iteration commit plan), how the remote
// persistent tier is fed, whether a failure needs the serialize stall,
// and which storage tier a recovery reads from. The agent keeps the
// mechanism — leases, detection, retries, event scheduling, rollback —
// and asks the installed strategy for policy at each decision point.
//
// Four strategies ship in the registry:
//
//   - gemini: the paper's scheme, extracted unchanged — full replication
//     to every placement holder each iteration, peer retrieval, remote
//     fallback (bit-identical to the pre-seam control plane).
//   - tiered: a TierCheck-style ladder — per-iteration GPU-buffer
//     snapshots (daemon-held, surviving software failures), a coarser
//     CPU-memory cadence, and the remote tier; software failures recover
//     from the GPU tier with zero lost iterations and no serialize stall.
//   - sparse: delta/changed-shards-only replication for MoE-like models —
//     only shards whose experts were touched this iteration move bytes,
//     at a small delta-replay cost on recovery.
//   - adaptive: a Chameleon-style meta-strategy that watches the observed
//     failure stream (MTBF, hardware fraction) and switches among the
//     three at iteration boundaries, recording every switch.
//
// Strategies are deterministic and single-run: give each run a fresh
// instance (strategy.New) and bind it to the run's engine state.
package strategy

import (
	"fmt"
	"sort"

	"gemini/internal/ckpt"
	"gemini/internal/placement"
	"gemini/internal/simclock"
)

// Env binds a strategy to one run's control surface. The checkpoint
// engine and placement are shared with the agent system; Emit routes
// strategy-level events (e.g. adaptive switches) into the run's event
// log, trace, and metrics.
type Env struct {
	// Ckpt is the run's checkpoint bookkeeping engine.
	Ckpt *ckpt.Engine
	// Placement is the Algorithm 1 replica placement.
	Placement *placement.Placement
	// IterationTime is the training iteration duration — the unit
	// cadences and MTBF thresholds scale with.
	IterationTime simclock.Duration
	// Now reads the simulation clock.
	Now func() simclock.Time
	// RemoteEvery returns the remote persistent tier's cadence in
	// iterations (the system's SetRemoteEvery value).
	RemoteEvery func() int64
	// Emit records a strategy-level event. Never nil once bound.
	Emit func(event, detail string)
}

// CommitKind says how one (holder, owner) pair commits this iteration.
type CommitKind int

const (
	// CommitFull moves the whole shard: Begin + Receive(shard) + Commit.
	CommitFull CommitKind = iota
	// CommitDelta moves only Bytes of delta on top of the holder's
	// previous committed copy; the result is a full logical copy at the
	// new iteration.
	CommitDelta
	// CommitRefresh moves nothing: the shard did not change, so the
	// holder's existing bytes ARE the new version and are re-stamped.
	CommitRefresh
)

// Commit is one (holder, owner) replication instruction.
type Commit struct {
	Holder, Owner int
	Kind          CommitKind
	// Bytes is the network traffic of a CommitDelta; ignored for
	// CommitFull (the full shard size) and CommitRefresh (zero).
	Bytes float64
}

// CommitPlan is the replication work for one completed iteration.
type CommitPlan struct {
	// Commits execute in order against the checkpoint engine.
	Commits []Commit
	// Remote commits this iteration to the remote persistent tier.
	Remote bool
}

// Tier is the storage tier a recovery reads from.
type Tier int

const (
	// TierMemory recovers from CPU memory (local or peer), driven by a
	// per-rank retrieval plan.
	TierMemory Tier = iota
	// TierGPU recovers from per-machine GPU-buffer snapshots: zero
	// network bytes, zero lost iterations (tiered strategy).
	TierGPU
	// TierRemote reloads everyone from the remote persistent store.
	TierRemote
)

func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierGPU:
		return "gpu"
	case TierRemote:
		return "remote"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// RecoveryContext is what the agent knows when it asks for a recovery
// decision.
type RecoveryContext struct {
	// Failed are the ranks the root declared failed; Hardware flags the
	// subset needing machine replacement.
	Failed   []int
	Hardware map[int]bool
	// Reachable reports ranks whose CPU memory survived AND can serve
	// fetches right now (not partitioned away).
	Reachable func(int) bool
	// Surviving reports ranks whose CPU memory survived, reachable or
	// not — the basis of the is-waiting-worth-it retry check.
	Surviving func(int) bool
	// RemoteVersion is the newest iteration actually committed to the
	// remote persistent tier.
	RemoteVersion int64
	// Attempt counts retrieval attempts for this recovery, from 0.
	Attempt int
}

// Recovery is a strategy's recovery-source decision.
type Recovery struct {
	Tier    Tier
	Version int64
	// Plan carries the per-rank retrieval instructions for TierMemory.
	Plan []ckpt.Retrieval
	// Retryable (TierRemote only) says waiting could still surface a
	// memory-tier recovery — e.g. the holders are partitioned, not dead.
	Retryable bool
	// ReplayTime is extra restore cost charged on top of retrieval
	// (sparse delta replay); zero for plain full-copy strategies.
	ReplayTime simclock.Duration
}

// Outcome reports one completed recovery back to the strategy.
type Outcome struct {
	// At is the resume time (recovery completion).
	At simclock.Time
	// Source is the tier recovery read from: gpu, local, peer, remote.
	Source string
	// Version is the iteration training resumed from.
	Version int64
	// LostIterations is the rolled-back progress.
	LostIterations int64
	// TLost and TRecovery are the Eq. 1 terms.
	TLost, TRecovery simclock.Duration
	// Hardware says the wave included at least one machine replacement.
	Hardware bool
}

// Strategy owns checkpoint placement/cadence, commit behavior, and the
// recovery-source policy for one run. Implementations must be
// deterministic: the same call sequence yields the same decisions.
type Strategy interface {
	// Name is the registry name.
	Name() string
	// Active is the concrete policy currently in force — Name() for
	// fixed strategies, the selected sub-strategy for adaptive.
	Active() string
	// Bind attaches the strategy to a run. Called once, before Start.
	Bind(env Env)
	// OnActivate tells the strategy it just became the policy in force
	// at the given iteration (adaptive switches); tier state that decays
	// while dormant (GPU buffers) resets here.
	OnActivate(iteration int64)
	// PlanCommit returns the replication work for a completed iteration.
	PlanCommit(iteration int64, healthy func(int) bool) CommitPlan
	// SerializeNeeded says whether this failure needs the pre-recovery
	// serialize stall (torch.save of the in-memory checkpoints).
	SerializeNeeded(failed []int, hardware map[int]bool) bool
	// PlanRecovery chooses the recovery tier, version, and plan.
	PlanRecovery(ctx RecoveryContext) Recovery
	// OnFailure reports a machine failure the instant it happens
	// (physical tier state like GPU buffers is lost here, before
	// detection).
	OnFailure(rank int, hardware bool)
	// OnRecovered reports a completed recovery's accounting — the
	// adaptive controller's observation stream.
	OnRecovered(outcome Outcome)
}

// registry of named strategy factories. Factories return fresh,
// unbound instances — strategies are stateful and single-run.
var registry = map[string]func() Strategy{}

// Register adds a named strategy factory. Registering a duplicate name
// panics — names are a public API surface.
func Register(name string, factory func() Strategy) {
	if name == "" || factory == nil {
		panic("strategy: Register needs a name and a factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("strategy: duplicate registration of %q", name))
	}
	registry[name] = factory
}

// New returns a fresh instance of the named strategy.
func New(name string) (Strategy, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("strategy: unknown strategy %q (registered: %v)", name, Names())
	}
	return f(), nil
}

// MustNew is New for known-good names.
func MustNew(name string) Strategy {
	s, err := New(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns the registered strategy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Index returns the name's position in Names(), or -1 — the stable
// numeric encoding behind the strategy.active gauge.
func Index(name string) int {
	for i, n := range Names() {
		if n == name {
			return i
		}
	}
	return -1
}

func init() {
	Register("gemini", func() Strategy { return NewGemini() })
	Register("tiered", func() Strategy { return NewTiered() })
	Register("sparse", func() Strategy { return NewSparse() })
	Register("adaptive", func() Strategy { return NewAdaptive() })
}
