// Package cloud models the cloud operator GEMINI's root agent asks for
// machine replacements (§3.2, §6.2): an Auto-Scaling-Group-like service
// with a stochastic provisioning delay (4–7 minutes measured on EC2 in
// §7.3) and an optional pool of pre-allocated standby machines that make
// replacement nearly instantaneous.
package cloud

import (
	"fmt"
	"math/rand"

	"gemini/internal/simclock"
)

// Config describes the operator's behavior.
type Config struct {
	// ProvisionMin/Max bound the uniform provisioning delay for a fresh
	// machine (the paper measured 4–7 minutes on EC2 ASG).
	ProvisionMin, ProvisionMax simclock.Duration
	// Standby is the number of pre-allocated standby machines.
	Standby int
	// StandbyActivation is the (small) delay to activate a standby.
	StandbyActivation simclock.Duration
	// Seed makes provisioning delays deterministic.
	Seed int64
}

// DefaultConfig returns the §7.3 measured behavior with no standbys.
func DefaultConfig() Config {
	return Config{
		ProvisionMin:      4 * simclock.Minute,
		ProvisionMax:      7 * simclock.Minute,
		StandbyActivation: 10 * simclock.Second,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.ProvisionMin < 0 || c.ProvisionMax < c.ProvisionMin:
		return fmt.Errorf("cloud: bad provisioning window [%v, %v]", c.ProvisionMin, c.ProvisionMax)
	case c.Standby < 0:
		return fmt.Errorf("cloud: negative standby count %d", c.Standby)
	case c.StandbyActivation < 0:
		return fmt.Errorf("cloud: negative standby activation %v", c.StandbyActivation)
	}
	return nil
}

// Operator provisions replacement machines on virtual time.
type Operator struct {
	engine  *simclock.Engine
	cfg     Config
	rng     *rand.Rand
	standby int

	requests int
	viaPool  int
}

// NewOperator creates an operator bound to the simulation engine.
func NewOperator(engine *simclock.Engine, cfg Config) (*Operator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Operator{
		engine:  engine,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		standby: cfg.Standby,
	}, nil
}

// MustNewOperator is NewOperator for known-good configurations.
func MustNewOperator(engine *simclock.Engine, cfg Config) *Operator {
	o, err := NewOperator(engine, cfg)
	if err != nil {
		panic(err)
	}
	return o
}

// StandbyAvailable returns the current standby pool size.
func (o *Operator) StandbyAvailable() int { return o.standby }

// Requests returns how many replacements have been requested.
func (o *Operator) Requests() int { return o.requests }

// ViaStandby returns how many replacements were served from the pool.
func (o *Operator) ViaStandby() int { return o.viaPool }

// provisionDelay draws a fresh-machine provisioning delay.
func (o *Operator) provisionDelay() simclock.Duration {
	span := o.cfg.ProvisionMax - o.cfg.ProvisionMin
	if span == 0 {
		return o.cfg.ProvisionMin
	}
	return o.cfg.ProvisionMin + simclock.Duration(o.rng.Float64())*span
}

// RequestReplacement asks for a replacement machine for the failed rank.
// ready fires when the machine is available, with the delay it took.
// If a standby machine is available it activates almost immediately and
// a background request refills the pool (§6.2 "Standby machines").
func (o *Operator) RequestReplacement(rank int, ready func(delay simclock.Duration)) {
	if ready == nil {
		panic("cloud: nil ready callback")
	}
	o.requests++
	if o.standby > 0 {
		o.standby--
		o.viaPool++
		delay := o.cfg.StandbyActivation
		o.engine.After(delay, func() { ready(delay) })
		// Refill the pool in the background.
		o.engine.After(o.provisionDelay(), func() { o.standby++ })
		return
	}
	delay := o.provisionDelay()
	o.engine.After(delay, func() { ready(delay) })
}
