package cloud

import (
	"testing"

	"gemini/internal/simclock"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ProvisionMin != 4*simclock.Minute || cfg.ProvisionMax != 7*simclock.Minute {
		t.Fatalf("provisioning window [%v, %v], want [4m, 7m] (§7.3)", cfg.ProvisionMin, cfg.ProvisionMax)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplacementDelayWithinWindow(t *testing.T) {
	e := simclock.NewEngine()
	op := MustNewOperator(e, DefaultConfig())
	var delays []simclock.Duration
	for i := 0; i < 10; i++ {
		op.RequestReplacement(i, func(d simclock.Duration) { delays = append(delays, d) })
	}
	e.RunAll()
	if len(delays) != 10 {
		t.Fatalf("%d replacements completed, want 10", len(delays))
	}
	for _, d := range delays {
		if d < 4*simclock.Minute || d > 7*simclock.Minute {
			t.Fatalf("delay %v outside [4m, 7m]", d)
		}
	}
	if op.Requests() != 10 || op.ViaStandby() != 0 {
		t.Fatalf("requests=%d viaStandby=%d", op.Requests(), op.ViaStandby())
	}
}

func TestStandbyReplacementIsFast(t *testing.T) {
	e := simclock.NewEngine()
	cfg := DefaultConfig()
	cfg.Standby = 2
	op := MustNewOperator(e, cfg)
	var delays []simclock.Duration
	for i := 0; i < 3; i++ {
		op.RequestReplacement(i, func(d simclock.Duration) { delays = append(delays, d) })
	}
	e.RunAll()
	if len(delays) != 3 {
		t.Fatalf("%d replacements, want 3", len(delays))
	}
	fast := 0
	for _, d := range delays {
		if d <= cfg.StandbyActivation {
			fast++
		}
	}
	if fast != 2 {
		t.Fatalf("%d fast replacements, want 2 (pool size)", fast)
	}
	if op.ViaStandby() != 2 {
		t.Fatalf("viaStandby=%d, want 2", op.ViaStandby())
	}
	// The pool refills in the background.
	if op.StandbyAvailable() != 2 {
		t.Fatalf("standby pool %d after refill, want 2", op.StandbyAvailable())
	}
}

func TestStandbyRefillServesLaterFailures(t *testing.T) {
	e := simclock.NewEngine()
	cfg := DefaultConfig()
	cfg.Standby = 1
	op := MustNewOperator(e, cfg)
	var first, second simclock.Duration
	op.RequestReplacement(0, func(d simclock.Duration) { first = d })
	// A second failure an hour later hits a refilled pool.
	e.At(simclock.Time(simclock.Hour), func() {
		op.RequestReplacement(1, func(d simclock.Duration) { second = d })
	})
	e.RunAll()
	if first > cfg.StandbyActivation || second > cfg.StandbyActivation {
		t.Fatalf("delays %v / %v, want both via standby", first, second)
	}
}

func TestDeterministicDelays(t *testing.T) {
	run := func() []simclock.Duration {
		e := simclock.NewEngine()
		op := MustNewOperator(e, DefaultConfig())
		var out []simclock.Duration
		for i := 0; i < 5; i++ {
			op.RequestReplacement(i, func(d simclock.Duration) { out = append(out, d) })
		}
		e.RunAll()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFixedDelayWindow(t *testing.T) {
	e := simclock.NewEngine()
	cfg := Config{ProvisionMin: simclock.Minute, ProvisionMax: simclock.Minute}
	op := MustNewOperator(e, cfg)
	var got simclock.Duration
	op.RequestReplacement(0, func(d simclock.Duration) { got = d })
	e.RunAll()
	if got != simclock.Minute {
		t.Fatalf("delay %v, want exactly 1m", got)
	}
}

func TestValidation(t *testing.T) {
	e := simclock.NewEngine()
	bad := []Config{
		{ProvisionMin: -1, ProvisionMax: 0},
		{ProvisionMin: 10, ProvisionMax: 5},
		{Standby: -1},
		{StandbyActivation: -1},
	}
	for i, cfg := range bad {
		if _, err := NewOperator(e, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	op := MustNewOperator(e, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("nil callback accepted")
		}
	}()
	op.RequestReplacement(0, nil)
}
