package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"gemini/internal/obs"
	"gemini/internal/trace"
)

func compiledSmall(t *testing.T) *Compiled {
	t.Helper()
	s, err := Parse([]byte(smallYAML))
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The headline acceptance criterion: with aggregation and records on,
// the JSON/HTML reports and the aggregated Prometheus exposition are
// byte-identical at workers=1 and workers=8.
func TestCampaignAggregationDeterministicAcrossWorkers(t *testing.T) {
	c := compiledSmall(t)
	runWith := func(workers int) *Report {
		rep, err := RunCampaign(context.Background(), c, CampaignOptions{
			Workers: workers, Aggregate: true, RecordRuns: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1, r8 := runWith(1), runWith(8)
	j1, _ := r1.JSON()
	j8, _ := r8.JSON()
	if !bytes.Equal(j1, j8) {
		t.Fatalf("worker count changed the aggregated report:\n%s\nvs\n%s", j1, j8)
	}
	var p1, p8 bytes.Buffer
	if err := r1.WriteAggregatedProm(&p1); err != nil {
		t.Fatal(err)
	}
	if err := r8.WriteAggregatedProm(&p8); err != nil {
		t.Fatal(err)
	}
	if p1.Len() == 0 || !bytes.Equal(p1.Bytes(), p8.Bytes()) {
		t.Fatalf("worker count changed the aggregated prom exposition:\n%s\nvs\n%s", p1.String(), p8.String())
	}
	var h1, h8 bytes.Buffer
	if err := WriteHTML(&h1, r1); err != nil {
		t.Fatal(err)
	}
	if err := WriteHTML(&h8, r8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(h1.Bytes(), h8.Bytes()) {
		t.Error("worker count changed the aggregated HTML report")
	}
	if !strings.Contains(h1.String(), "Aggregated run metrics") {
		t.Error("HTML report missing the aggregates section")
	}

	// Shape checks on the rollup.
	if r1.Aggregates == nil || len(r1.Aggregates.Specs) != 3 {
		t.Fatalf("aggregates = %+v", r1.Aggregates)
	}
	var wastedCount, ratioCount uint64
	for _, row := range r1.Aggregates.Campaign {
		switch row.Name {
		case "run.wasted_seconds":
			wastedCount = row.Count
		case "run.effective_ratio":
			ratioCount = row.Count
		}
	}
	if ratioCount != uint64(r1.Variations*3) {
		t.Errorf("campaign-wide ratio count %d, want %d (one per run)", ratioCount, r1.Variations*3)
	}
	if wastedCount == 0 {
		t.Error("campaign-wide wasted histogram is empty")
	}
	if len(r1.Runs) != r1.Variations*3 {
		t.Fatalf("%d run records, want %d", len(r1.Runs), r1.Variations*3)
	}
	// The per-spec registries partition the campaign-wide one.
	var specTotal uint64
	for si := range r1.Aggregates.Specs {
		for _, row := range r1.Aggregates.Specs[si].Rows {
			if row.Name == "run.wasted_seconds" {
				specTotal += row.Count
			}
		}
	}
	if specTotal != wastedCount {
		t.Errorf("per-spec wasted counts sum to %d, campaign-wide has %d", specTotal, wastedCount)
	}
}

// Default options must keep the report exactly as before: no aggregate
// or runs keys in the JSON (the ci.sh pinned hash depends on it).
func TestCampaignDefaultReportUnchangedByNewFields(t *testing.T) {
	c := compiledSmall(t)
	rep, err := RunCampaign(context.Background(), c, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := rep.JSON()
	for _, forbidden := range []string{`"aggregates"`, `"runs"`} {
		if bytes.Contains(j, []byte(forbidden)) {
			t.Errorf("default report contains %s:\n%s", forbidden, j)
		}
	}
	if err := rep.WriteAggregatedProm(&bytes.Buffer{}); err == nil {
		t.Error("WriteAggregatedProm without Aggregate did not error")
	}
}

func TestCampaignProgressSink(t *testing.T) {
	c := compiledSmall(t)
	prog := obs.NewProgress()
	live := obs.NewSyncRegistry()
	rep, err := RunCampaign(context.Background(), c, CampaignOptions{
		Workers: 4, Progress: prog, Live: live,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := prog.Snapshot()
	if snap.TotalRuns != int64(rep.Variations) || snap.DoneRuns != int64(rep.Variations) {
		t.Fatalf("progress %+v, want %d runs done", snap, rep.Variations)
	}
	var wantFails int64
	for _, sp := range rep.Specs {
		wantFails += int64(sp.Failures)
	}
	if snap.Failures != wantFails {
		t.Errorf("progress failures %d, want %d", snap.Failures, wantFails)
	}
	if snap.SimSecondsDone != snap.SimSecondsTotal || snap.SimSecondsDone == 0 {
		t.Errorf("sim seconds %v/%v, want all done", snap.SimSecondsDone, snap.SimSecondsTotal)
	}
	// The live registry saw every run, whatever the arrival order.
	if v, ok := live.Snapshot().Get("run.effective_ratio.count"); !ok || v != float64(rep.Variations*3) {
		t.Errorf("live ratio count %v/%v, want %d", v, ok, rep.Variations*3)
	}
}

func TestOutliersRanking(t *testing.T) {
	rep := &Report{Runs: []RunRecord{
		{Variation: 0, Spec: "A", WastedSeconds: 100, EffectiveRatio: 0.99},
		{Variation: 1, Spec: "A", WastedSeconds: 300, EffectiveRatio: 0.97},
		{Variation: 0, Spec: "B", WastedSeconds: 900, EffectiveRatio: 0.91},
		{Variation: 1, Spec: "B", WastedSeconds: 950, EffectiveRatio: 0.90},
	}}
	worst, err := Outliers(rep, "wasted", 2)
	if err != nil {
		t.Fatal(err)
	}
	if worst[0].WastedSeconds != 950 || worst[1].WastedSeconds != 900 {
		t.Fatalf("wasted ranking %+v", worst)
	}
	worst, err = Outliers(rep, "ratio", 1)
	if err != nil {
		t.Fatal(err)
	}
	if worst[0].EffectiveRatio != 0.90 {
		t.Fatalf("ratio ranking %+v", worst)
	}
	// wasted-vs-spec: A's worst is +100 over its mean of 200; B's is +25
	// over 925 — so the A run is the bigger outlier for its spec.
	worst, err = Outliers(rep, "wasted-vs-spec", 1)
	if err != nil {
		t.Fatal(err)
	}
	if worst[0].Spec != "A" || worst[0].Variation != 1 {
		t.Fatalf("wasted-vs-spec ranking %+v", worst)
	}
	if _, err := Outliers(rep, "bogus", 1); err == nil {
		t.Fatal("unknown key did not error")
	}
	if _, err := Outliers(&Report{}, "wasted", 1); err == nil {
		t.Fatal("record-less report did not error")
	}
	// k beyond the record count returns everything.
	all, err := Outliers(rep, "wasted", 99)
	if err != nil || len(all) != 4 {
		t.Fatalf("k=99: %d records, err=%v", len(all), err)
	}
}

// The flight-recorder replay contract: re-execution reproduces the
// campaign-recorded result exactly and emits a lint-clean trace plus a
// time-ordered timeline.
func TestFlightReplayMatchesRecord(t *testing.T) {
	c := compiledSmall(t)
	rep, err := RunCampaign(context.Background(), c, CampaignOptions{Workers: 8, RecordRuns: true})
	if err != nil {
		t.Fatal(err)
	}
	worst, err := Outliers(rep, "wasted", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range worst {
		fr, err := c.Replay(rec)
		if err != nil {
			t.Fatalf("replay of %+v: %v", rec, err)
		}
		var traceBuf bytes.Buffer
		if err := fr.WriteTrace(&traceBuf); err != nil {
			t.Fatal(err)
		}
		issues, err := trace.Lint(traceBuf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if len(issues) != 0 {
			t.Fatalf("flight trace has lint issues: %v", issues)
		}
		st, err := trace.StatsFromJSON(traceBuf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if rec.Failures > 0 && st.Events == 0 {
			t.Fatal("flight trace has no events despite recorded failures")
		}
		var csv bytes.Buffer
		if err := fr.WriteTimeline(&csv); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
		if lines[0] != "time,wasted_seconds,effective_ratio" {
			t.Fatalf("timeline header %q", lines[0])
		}
		recoveries := rec.FromLocal + rec.FromPeer + rec.FromRemote
		if len(lines)-1 != recoveries {
			t.Fatalf("%d timeline rows, want %d recoveries", len(lines)-1, recoveries)
		}
		var prom bytes.Buffer
		if err := fr.WriteProm(&prom); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(prom.String(), "run_failures") {
			t.Fatalf("flight prom missing run_failures:\n%s", prom.String())
		}
	}
}

func TestFlightReplayDetectsDivergence(t *testing.T) {
	c := compiledSmall(t)
	rep, err := RunCampaign(context.Background(), c, CampaignOptions{Workers: 2, RecordRuns: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := rep.Runs[0]
	rec.WastedSeconds += 1 // corrupt the record
	if _, err := c.Replay(rec); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("corrupted record replay err = %v, want divergence", err)
	}
	rec = rep.Runs[0]
	rec.Spec = "nope"
	if _, err := c.Replay(rec); err == nil {
		t.Fatal("unknown spec replay did not error")
	}
}
