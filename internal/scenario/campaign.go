package scenario

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"gemini/internal/metrics"
	"gemini/internal/parallel"
	"gemini/internal/runsim"
	"gemini/internal/simclock"
)

// CampaignOptions tune a campaign run without touching the scenario.
type CampaignOptions struct {
	// Workers bounds fan-out concurrency (0 = GOMAXPROCS). Never
	// affects results: variations land in pre-sized slots and aggregate
	// in variation order.
	Workers int
	// Variations overrides the scenario's width when positive.
	Variations int
}

// Report is a campaign's aggregate result. It contains no wall-clock or
// host-dependent data, so for a fixed scenario and seed the marshalled
// report is byte-identical at any worker count; Hash seals it.
type Report struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	Seed        int64  `json:"seed"`
	Variations  int    `json:"variations"`
	Model       string `json:"model"`
	Instance    string `json:"instance"`
	Machines    int    `json:"machines"`
	Replicas    int    `json:"replicas"`
	HorizonDays float64 `json:"horizon_days"`
	// FailuresPerDay is the expected (Poisson) or exact (fixed)
	// cluster-wide background failure rate.
	FailuresPerDay float64 `json:"failures_per_day"`
	// ChaosEvents counts compiled chaos schedule entries.
	ChaosEvents int          `json:"chaos_events"`
	Specs       []SpecReport `json:"specs"`
	// Hash is the SHA-256 of this report marshalled with Hash empty —
	// the campaign's deterministic fingerprint.
	Hash string `json:"hash"`
}

// SpecReport aggregates one solution across all variations.
type SpecReport struct {
	Name string `json:"name"`
	// EffectiveRatio summarizes the per-variation §7.3 effective
	// training time ratio.
	EffectiveRatio Stats `json:"effective_ratio"`
	// WastedHours summarizes per-variation total wasted time.
	WastedHours Stats `json:"wasted_hours"`
	// Failures is the total failures processed across variations.
	Failures int `json:"failures"`
	// FromLocal/FromPeer/FromRemote total the recovery sources.
	FromLocal  int `json:"from_local"`
	FromPeer   int `json:"from_peer"`
	FromRemote int `json:"from_remote"`
	// InMemoryFraction is (local+peer)/total recoveries — the paper's
	// headline probability of recovering from CPU memory.
	InMemoryFraction float64 `json:"in_memory_fraction"`
}

// Stats is a JSON-friendly metrics.Summary.
type Stats struct {
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	StdDev float64 `json:"stddev"`
}

func toStats(s metrics.Summary) Stats {
	return Stats{Mean: s.Mean, Min: s.Min, Max: s.Max, P50: s.P50, P90: s.P90, P99: s.P99, StdDev: s.StdDev}
}

// variationResult is one variation's per-spec outcomes, in spec order.
type variationResult struct {
	ratio  []float64
	wasted []simclock.Duration
	fails  []int
	local  []int
	peer   []int
	remote []int
}

// RunCampaign expands the compiled scenario into its seeded variations,
// fans them across workers, and aggregates. Variation v uses failure
// seed Seed+v; results are collected into slot v and reduced in
// variation order, so the report does not depend on the worker count.
func RunCampaign(ctx context.Context, c *Compiled, opts CampaignOptions) (*Report, error) {
	s := c.Scenario
	variations := s.Variations
	if opts.Variations > 0 {
		variations = opts.Variations
	}
	nspecs := len(c.Specs)
	if nspecs == 0 {
		return nil, fmt.Errorf("scenario: no specs to run")
	}

	slots := make([]variationResult, variations)
	err := parallel.ForEachErr(ctx, opts.Workers, variations, func(v int) error {
		fs, err := c.FailureSchedule(v)
		if err != nil {
			return err
		}
		vr := variationResult{
			ratio:  make([]float64, nspecs),
			wasted: make([]simclock.Duration, nspecs),
			fails:  make([]int, nspecs),
			local:  make([]int, nspecs),
			peer:   make([]int, nspecs),
			remote: make([]int, nspecs),
		}
		for si, spec := range c.Specs {
			cfg := runsim.Config{
				Spec:               spec,
				Machines:           s.Job.Machines,
				Failures:           fs,
				Horizon:            s.Horizon,
				ReplacementDelay:   s.Run.ReplacementDelay,
				SimultaneityWindow: s.Run.SimultaneityWindow,
			}
			if spec.UsesCPUMemory {
				cfg.Placement = c.Job.Placement
			}
			res, err := runsim.Run(cfg)
			if err != nil {
				return fmt.Errorf("scenario: variation %d spec %s: %w", v, spec.Name, err)
			}
			vr.ratio[si] = res.EffectiveRatio
			vr.wasted[si] = res.TotalWasted
			vr.fails[si] = res.Failures
			vr.local[si] = res.FromLocal
			vr.peer[si] = res.FromPeer
			vr.remote[si] = res.FromRemote
			res.Release()
		}
		slots[v] = vr
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Scenario:    s.Name,
		Description: s.Description,
		Seed:        s.Seed,
		Variations:  variations,
		Model:       s.Job.Model,
		Instance:    c.Job.Spec.Instance,
		Machines:    s.Job.Machines,
		Replicas:    c.Job.Spec.Replicas,
		HorizonDays: s.Horizon.Seconds() / simclock.Day.Seconds(),
		ChaosEvents: len(c.Chaos),
	}
	switch s.Failures.Kind {
	case "poisson":
		rep.FailuresPerDay = c.Model.ClusterFailuresPerDay(s.Job.Machines)
	case "fixed":
		rep.FailuresPerDay = s.Failures.PerDay
	}

	ratios := make([]float64, variations)
	wastedH := make([]float64, variations)
	for si, spec := range c.Specs {
		sr := SpecReport{Name: spec.Name}
		for v := range slots {
			ratios[v] = slots[v].ratio[si]
			wastedH[v] = slots[v].wasted[si].Seconds() / 3600
			sr.Failures += slots[v].fails[si]
			sr.FromLocal += slots[v].local[si]
			sr.FromPeer += slots[v].peer[si]
			sr.FromRemote += slots[v].remote[si]
		}
		sr.EffectiveRatio = toStats(metrics.Summarize(ratios))
		sr.WastedHours = toStats(metrics.Summarize(wastedH))
		if total := sr.FromLocal + sr.FromPeer + sr.FromRemote; total > 0 {
			sr.InMemoryFraction = float64(sr.FromLocal+sr.FromPeer) / float64(total)
		}
		rep.Specs = append(rep.Specs, sr)
	}
	rep.Hash = rep.ComputeHash()
	return rep, nil
}

// ComputeHash returns the SHA-256 hex digest of the report marshalled
// with the Hash field empty. Verification: recompute and compare.
func (r *Report) ComputeHash() string {
	clone := *r
	clone.Hash = ""
	data, err := json.Marshal(&clone)
	if err != nil {
		// Report marshalling cannot fail: all fields are plain data.
		panic(fmt.Sprintf("scenario: report marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// JSON marshals the report indented, ready to write to disk.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
