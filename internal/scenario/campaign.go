package scenario

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"gemini/internal/metrics"
	"gemini/internal/obs"
	"gemini/internal/parallel"
	"gemini/internal/runsim"
	"gemini/internal/simclock"
)

// CampaignOptions tune a campaign run without touching the scenario.
type CampaignOptions struct {
	// Workers bounds fan-out concurrency (0 = GOMAXPROCS). Never
	// affects results: variations land in pre-sized slots and aggregate
	// in variation order.
	Workers int
	// Variations overrides the scenario's width when positive.
	Variations int
	// Progress optionally receives live lifecycle events (one "run" =
	// one variation, covering every spec). Nil is off and costs
	// nothing; the sink is updated from worker goroutines.
	Progress *obs.Progress
	// Aggregate collects each (variation, spec) run's health registry
	// and merges them — post-barrier, in variation order — into
	// per-solution and campaign-wide rollups (Report.Aggregates, plus
	// the live registries behind Report.WriteAggregatedProm). Off by
	// default: the extra fields would change the report bytes existing
	// golden hashes pin.
	Aggregate bool
	// RecordRuns keeps every (variation, spec) run's scalar outcome in
	// Report.Runs — the flight recorder ranks these and replays the
	// worst offenders. Off by default, same reason as Aggregate.
	RecordRuns bool
	// Live, when non-nil, receives each run's registry as it finishes
	// (arrival order — for serving /metrics while the campaign runs,
	// not for golden files; the deterministic rollup is Aggregates).
	Live *obs.SyncRegistry
}

// Report is a campaign's aggregate result. It contains no wall-clock or
// host-dependent data, so for a fixed scenario and seed the marshalled
// report is byte-identical at any worker count; Hash seals it.
type Report struct {
	Scenario    string  `json:"scenario"`
	Description string  `json:"description,omitempty"`
	Seed        int64   `json:"seed"`
	Variations  int     `json:"variations"`
	Model       string  `json:"model"`
	Instance    string  `json:"instance"`
	Machines    int     `json:"machines"`
	Replicas    int     `json:"replicas"`
	HorizonDays float64 `json:"horizon_days"`
	// FailuresPerDay is the expected (Poisson) or exact (fixed)
	// cluster-wide background failure rate.
	FailuresPerDay float64 `json:"failures_per_day"`
	// ChaosEvents counts compiled chaos schedule entries.
	ChaosEvents int          `json:"chaos_events"`
	Specs       []SpecReport `json:"specs"`
	// Aggregates holds the cross-run metric rollups when the campaign
	// ran with Aggregate; omitted otherwise so default reports keep
	// their historical bytes.
	Aggregates *AggregateReport `json:"aggregates,omitempty"`
	// Runs holds every (variation, spec) outcome when the campaign ran
	// with RecordRuns — the flight recorder's input.
	Runs []RunRecord `json:"runs,omitempty"`
	// Hash is the SHA-256 of this report marshalled with Hash empty —
	// the campaign's deterministic fingerprint.
	Hash string `json:"hash"`

	// Merged live registries behind Aggregates (campaign-wide, then one
	// per spec in spec order). Unexported: they serve WriteAggregatedProm
	// and never enter the JSON or the hash.
	agg      *metrics.Registry
	specAggs []*metrics.Registry
}

// AggregateReport is the cross-run metric rollup: one table for the
// whole campaign and one per solution. Tables render every merged
// instrument in registration order — deterministic because the merge
// happens post-barrier in variation order.
type AggregateReport struct {
	Campaign []AggregateRow  `json:"campaign"`
	Specs    []SpecAggregate `json:"specs"`
}

// SpecAggregate is one solution's rollup table.
type SpecAggregate struct {
	Name string         `json:"name"`
	Rows []AggregateRow `json:"rows"`
}

// AggregateRow is one merged instrument. Counters and gauges carry
// Value; histograms carry the distribution columns.
type AggregateRow struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value,omitempty"`
	Count uint64  `json:"count,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P99   float64 `json:"p99,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
}

// aggregateRows flattens a merged registry into report rows.
func aggregateRows(reg *metrics.Registry) []AggregateRow {
	var rows []AggregateRow
	reg.Visit(func(name string, c *metrics.CounterVar, g *metrics.Gauge, h *metrics.Histogram) {
		switch {
		case c != nil:
			rows = append(rows, AggregateRow{Name: name, Kind: "counter", Value: c.Value()})
		case g != nil:
			rows = append(rows, AggregateRow{Name: name, Kind: "gauge", Value: g.Value()})
		case h != nil:
			rows = append(rows, AggregateRow{
				Name: name, Kind: "histogram",
				Count: h.Count(), Mean: h.Mean(),
				P50: h.Quantile(0.50), P99: h.Quantile(0.99),
				Max: h.Max(), Sum: h.Sum(),
			})
		}
	})
	return rows
}

// WriteAggregatedProm renders the campaign-wide merged registry in
// Prometheus text exposition format — byte-stable at any worker count.
// It errors when the campaign did not run with Aggregate (or the report
// was loaded from JSON, which does not carry the live registries).
func (r *Report) WriteAggregatedProm(w io.Writer) error {
	if r.agg == nil {
		return fmt.Errorf("scenario: report has no aggregated registry (run the campaign with Aggregate)")
	}
	return metrics.WriteProm(w, r.agg)
}

// SpecRegistry returns the merged per-solution registry for spec index
// si; nil when aggregation was off or the index is out of range.
func (r *Report) SpecRegistry(si int) *metrics.Registry {
	if si < 0 || si >= len(r.specAggs) {
		return nil
	}
	return r.specAggs[si]
}

// SpecReport aggregates one solution across all variations.
type SpecReport struct {
	Name string `json:"name"`
	// EffectiveRatio summarizes the per-variation §7.3 effective
	// training time ratio.
	EffectiveRatio Stats `json:"effective_ratio"`
	// WastedHours summarizes per-variation total wasted time.
	WastedHours Stats `json:"wasted_hours"`
	// Failures is the total failures processed across variations.
	Failures int `json:"failures"`
	// FromLocal/FromPeer/FromRemote total the recovery sources.
	FromLocal  int `json:"from_local"`
	FromPeer   int `json:"from_peer"`
	FromRemote int `json:"from_remote"`
	// InMemoryFraction is (local+peer)/total recoveries — the paper's
	// headline probability of recovering from CPU memory.
	InMemoryFraction float64 `json:"in_memory_fraction"`
}

// Stats is a JSON-friendly metrics.Summary.
type Stats struct {
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	StdDev float64 `json:"stddev"`
}

func toStats(s metrics.Summary) Stats {
	return Stats{Mean: s.Mean, Min: s.Min, Max: s.Max, P50: s.P50, P90: s.P90, P99: s.P99, StdDev: s.StdDev}
}

// variationResult is one variation's per-spec outcomes, in spec order.
type variationResult struct {
	ratio  []float64
	wasted []simclock.Duration
	fails  []int
	local  []int
	peer   []int
	remote []int
	// records and regs are populated only under RecordRuns/Aggregate.
	records []RunRecord
	regs    []*metrics.Registry
}

// RunCampaign expands the compiled scenario into its seeded variations,
// fans them across workers, and aggregates. Variation v uses failure
// seed Seed+v; results are collected into slot v and reduced in
// variation order, so the report does not depend on the worker count.
func RunCampaign(ctx context.Context, c *Compiled, opts CampaignOptions) (*Report, error) {
	s := c.Scenario
	variations := s.Variations
	if opts.Variations > 0 {
		variations = opts.Variations
	}
	nspecs := len(c.Specs)
	if nspecs == 0 {
		return nil, fmt.Errorf("scenario: no specs to run")
	}

	collectRegs := opts.Aggregate || opts.Live != nil
	simPerRun := s.Horizon.Seconds() * float64(nspecs)
	opts.Progress.Begin(variations, simPerRun)

	slots := make([]variationResult, variations)
	hooks := parallel.RunHooks{}
	if opts.Progress != nil {
		hooks.Started = func(int) { opts.Progress.RunStarted() }
		// Done fires after fn stored slots[v], so the failure totals are
		// ready to read.
		hooks.Done = func(v int) {
			fails := 0
			for _, n := range slots[v].fails {
				fails += n
			}
			opts.Progress.RunDone(fails, simPerRun)
		}
	}
	err := parallel.ForEachErrHooks(ctx, opts.Workers, variations, hooks, func(v int) error {
		fs, err := c.FailureSchedule(v)
		if err != nil {
			return err
		}
		vr := variationResult{
			ratio:  make([]float64, nspecs),
			wasted: make([]simclock.Duration, nspecs),
			fails:  make([]int, nspecs),
			local:  make([]int, nspecs),
			peer:   make([]int, nspecs),
			remote: make([]int, nspecs),
		}
		if opts.RecordRuns {
			vr.records = make([]RunRecord, nspecs)
		}
		if collectRegs {
			vr.regs = make([]*metrics.Registry, nspecs)
		}
		for si, spec := range c.Specs {
			cfg := runsim.Config{
				Spec:               spec,
				Machines:           s.Job.Machines,
				Failures:           fs,
				Horizon:            s.Horizon,
				ReplacementDelay:   s.Run.ReplacementDelay,
				SimultaneityWindow: s.Run.SimultaneityWindow,
			}
			if spec.UsesCPUMemory {
				cfg.Placement = c.Job.Placement
			}
			var reg *metrics.Registry
			if collectRegs {
				reg = metrics.NewRegistry()
				cfg.Obs.Metrics = reg
			}
			res, err := runsim.Run(cfg)
			if err != nil {
				return fmt.Errorf("scenario: variation %d spec %s: %w", v, spec.Name, err)
			}
			vr.ratio[si] = res.EffectiveRatio
			vr.wasted[si] = res.TotalWasted
			vr.fails[si] = res.Failures
			vr.local[si] = res.FromLocal
			vr.peer[si] = res.FromPeer
			vr.remote[si] = res.FromRemote
			if opts.RecordRuns {
				vr.records[si] = makeRecord(v, spec.Name, res)
			}
			if collectRegs {
				vr.regs[si] = reg
				opts.Live.Merge(reg)
			}
			res.Release()
		}
		slots[v] = vr
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Scenario:    s.Name,
		Description: s.Description,
		Seed:        s.Seed,
		Variations:  variations,
		Model:       s.Job.Model,
		Instance:    c.Job.Spec.Instance,
		Machines:    s.Job.Machines,
		Replicas:    c.Job.Spec.Replicas,
		HorizonDays: s.Horizon.Seconds() / simclock.Day.Seconds(),
		ChaosEvents: len(c.Chaos),
	}
	switch s.Failures.Kind {
	case "poisson":
		rep.FailuresPerDay = c.Model.ClusterFailuresPerDay(s.Job.Machines)
	case "fixed":
		rep.FailuresPerDay = s.Failures.PerDay
	}

	ratios := make([]float64, variations)
	wastedH := make([]float64, variations)
	for si, spec := range c.Specs {
		sr := SpecReport{Name: spec.Name}
		for v := range slots {
			ratios[v] = slots[v].ratio[si]
			wastedH[v] = slots[v].wasted[si].Seconds() / 3600
			sr.Failures += slots[v].fails[si]
			sr.FromLocal += slots[v].local[si]
			sr.FromPeer += slots[v].peer[si]
			sr.FromRemote += slots[v].remote[si]
		}
		sr.EffectiveRatio = toStats(metrics.Summarize(ratios))
		sr.WastedHours = toStats(metrics.Summarize(wastedH))
		if total := sr.FromLocal + sr.FromPeer + sr.FromRemote; total > 0 {
			sr.InMemoryFraction = float64(sr.FromLocal+sr.FromPeer) / float64(total)
		}
		rep.Specs = append(rep.Specs, sr)
	}
	if opts.RecordRuns {
		rep.Runs = make([]RunRecord, 0, variations*nspecs)
		for v := range slots {
			rep.Runs = append(rep.Runs, slots[v].records...)
		}
	}
	if opts.Aggregate {
		// Deterministic rollup: merge per-run registries strictly in
		// (variation, spec) order, after the parallel barrier — the
		// resulting registration order, and therefore every rendering,
		// is independent of the worker count.
		rep.agg = metrics.NewRegistry()
		rep.specAggs = make([]*metrics.Registry, nspecs)
		for si := range c.Specs {
			rep.specAggs[si] = metrics.NewRegistry()
		}
		for v := range slots {
			for si, reg := range slots[v].regs {
				rep.agg.Merge(reg)
				rep.specAggs[si].Merge(reg)
			}
		}
		ar := &AggregateReport{Campaign: aggregateRows(rep.agg)}
		for si, spec := range c.Specs {
			ar.Specs = append(ar.Specs, SpecAggregate{Name: spec.Name, Rows: aggregateRows(rep.specAggs[si])})
		}
		rep.Aggregates = ar
	}
	rep.Hash = rep.ComputeHash()
	return rep, nil
}

// ComputeHash returns the SHA-256 hex digest of the report marshalled
// with the Hash field empty. Verification: recompute and compare.
func (r *Report) ComputeHash() string {
	clone := *r
	clone.Hash = ""
	data, err := json.Marshal(&clone)
	if err != nil {
		// Report marshalling cannot fail: all fields are plain data.
		panic(fmt.Sprintf("scenario: report marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// JSON marshals the report indented, ready to write to disk.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
