package scenario

import (
	"fmt"
	"html"
	"io"
	"strings"
)

// WriteHTML renders the report as one self-contained HTML page: no
// external assets, charts as inline SVG, deterministic output (the page
// is a pure function of the report, so it inherits the report's
// worker-count independence).
func WriteHTML(w io.Writer, r *Report) error {
	var b strings.Builder
	esc := html.EscapeString
	fmt.Fprintf(&b, `<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>%s — campaign report</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; color: #1a1a2e; max-width: 60rem; margin: 2rem auto; padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #d0d0e0; padding: .3rem .7rem; text-align: right; }
th:first-child, td:first-child { text-align: left; }
thead th { background: #eef0f8; }
.meta td { text-align: left; }
.hash { font-family: monospace; font-size: .8rem; color: #666; word-break: break-all; }
figure { margin: 1rem 0; }
figcaption { font-size: .85rem; color: #555; }
</style></head><body>
<h1>Campaign: %s</h1>
`, esc(r.Scenario), esc(r.Scenario))
	if r.Description != "" {
		fmt.Fprintf(&b, "<p>%s</p>\n", esc(r.Description))
	}

	fmt.Fprintf(&b, `<table class="meta"><tbody>
<tr><td>Model</td><td>%s on %d× %s, m=%d replicas</td></tr>
<tr><td>Horizon</td><td>%.3g days × %d variations (seed %d)</td></tr>
<tr><td>Background failures</td><td>%.4g/day cluster-wide</td></tr>
<tr><td>Chaos events</td><td>%d</td></tr>
</tbody></table>
`, esc(r.Model), r.Machines, esc(r.Instance), r.Replicas,
		r.HorizonDays, r.Variations, r.Seed, r.FailuresPerDay, r.ChaosEvents)

	b.WriteString("<h2>Effective training time ratio</h2>\n")
	writeRatioChart(&b, r)

	b.WriteString("<h2>Recovery sources</h2>\n")
	writeSourceChart(&b, r)

	b.WriteString(`<h2>Statistics</h2>
<table><thead><tr><th>solution</th><th>ratio mean</th><th>p50</th><th>p90</th><th>p99</th><th>min</th><th>max</th><th>wasted h (mean)</th><th>failures</th><th>in-memory</th></tr></thead><tbody>
`)
	for _, sp := range r.Specs {
		er := sp.EffectiveRatio
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%.4f</td><td>%.4f</td><td>%.4f</td><td>%.4f</td><td>%.4f</td><td>%.4f</td><td>%.2f</td><td>%d</td><td>%.1f%%</td></tr>\n",
			esc(sp.Name), er.Mean, er.P50, er.P90, er.P99, er.Min, er.Max,
			sp.WastedHours.Mean, sp.Failures, sp.InMemoryFraction*100)
	}
	b.WriteString("</tbody></table>\n")
	if r.Aggregates != nil {
		writeAggregates(&b, r.Aggregates)
	}
	fmt.Fprintf(&b, `<p class="hash">report hash: %s</p>
</body></html>
`, esc(r.Hash))
	_, err := io.WriteString(w, b.String())
	return err
}

// writeAggregates renders the cross-run metric rollups: the
// campaign-wide distribution table, then one per solution. Rows follow
// merged registration order, so the section is as worker-count
// independent as the rest of the page.
func writeAggregates(b *strings.Builder, ar *AggregateReport) {
	b.WriteString("<h2>Aggregated run metrics</h2>\n")
	writeAggregateTable(b, "campaign-wide", ar.Campaign)
	for _, sp := range ar.Specs {
		writeAggregateTable(b, sp.Name, sp.Rows)
	}
}

func writeAggregateTable(b *strings.Builder, title string, rows []AggregateRow) {
	fmt.Fprintf(b, "<h3>%s</h3>\n", html.EscapeString(title))
	b.WriteString("<table><thead><tr><th>metric</th><th>kind</th><th>value / count</th><th>mean</th><th>p50</th><th>p99</th><th>max</th><th>sum</th></tr></thead><tbody>\n")
	for _, row := range rows {
		if row.Kind == "histogram" {
			fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%.4g</td><td>%.4g</td><td>%.4g</td><td>%.4g</td><td>%.4g</td></tr>\n",
				html.EscapeString(row.Name), row.Kind, row.Count, row.Mean, row.P50, row.P99, row.Max, row.Sum)
			continue
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%.6g</td><td></td><td></td><td></td><td></td><td></td></tr>\n",
			html.EscapeString(row.Name), row.Kind, row.Value)
	}
	b.WriteString("</tbody></table>\n")
}

var specColors = []string{"#4169b0", "#d98032", "#5a9e5a", "#a05ab0", "#b05a5a"}

// writeRatioChart draws one horizontal bar per spec: the mean effective
// ratio, with a min–max whisker.
func writeRatioChart(b *strings.Builder, r *Report) {
	const width, rowH, left = 700, 34, 110
	plotW := width - left - 60
	height := rowH*len(r.Specs) + 30
	fmt.Fprintf(b, `<figure><svg viewBox="0 0 %d %d" width="%d" height="%d" role="img">`+"\n",
		width, height, width, height)
	// Gridlines at 0, 0.25 … 1.
	for g := 0; g <= 4; g++ {
		x := left + plotW*g/4
		fmt.Fprintf(b, `<line x1="%d" y1="0" x2="%d" y2="%d" stroke="#e5e5ef"/><text x="%d" y="%d" font-size="11" fill="#777" text-anchor="middle">%.2f</text>`+"\n",
			x, x, height-20, x, height-6, float64(g)/4)
	}
	for i, sp := range r.Specs {
		y := i * rowH
		er := sp.EffectiveRatio
		barW := int(er.Mean * float64(plotW))
		color := specColors[i%len(specColors)]
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" text-anchor="end">%s</text>`+"\n",
			left-8, y+rowH/2+4, html.EscapeString(sp.Name))
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" opacity="0.85"/>`+"\n",
			left, y+7, barW, rowH-14, color)
		// min–max whisker.
		x0 := left + int(er.Min*float64(plotW))
		x1 := left + int(er.Max*float64(plotW))
		ym := y + rowH/2
		fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#222" stroke-width="1.5"/>`+"\n", x0, ym, x1, ym)
		fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#222"/>`+"\n", x0, ym-5, x0, ym+5)
		fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#222"/>`+"\n", x1, ym-5, x1, ym+5)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11" fill="#333">%.4f</text>`+"\n",
			maxInt(barW+left, x1)+6, ym+4, er.Mean)
	}
	fmt.Fprintf(b, "</svg><figcaption>Mean effective training time ratio over %d variations; whiskers span min–max.</figcaption></figure>\n", r.Variations)
}

// writeSourceChart draws a 100%%-stacked bar of recovery sources.
func writeSourceChart(b *strings.Builder, r *Report) {
	const width, rowH, left = 700, 34, 110
	plotW := width - left - 60
	height := rowH*len(r.Specs) + 34
	tiers := []struct {
		name  string
		color string
		of    func(SpecReport) int
	}{
		{"local CPU", "#2e7d32", func(s SpecReport) int { return s.FromLocal }},
		{"peer CPU", "#7cb342", func(s SpecReport) int { return s.FromPeer }},
		{"remote", "#c62828", func(s SpecReport) int { return s.FromRemote }},
	}
	fmt.Fprintf(b, `<figure><svg viewBox="0 0 %d %d" width="%d" height="%d" role="img">`+"\n",
		width, height, width, height)
	for i, sp := range r.Specs {
		y := i * rowH
		total := sp.FromLocal + sp.FromPeer + sp.FromRemote
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" text-anchor="end">%s</text>`+"\n",
			left-8, y+rowH/2+4, html.EscapeString(sp.Name))
		if total == 0 {
			fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11" fill="#777">no recoveries</text>`+"\n",
				left, y+rowH/2+4)
			continue
		}
		x := left
		for _, tier := range tiers {
			seg := int(float64(tier.of(sp)) / float64(total) * float64(plotW))
			if seg > 0 {
				fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
					x, y+7, seg, rowH-14, tier.color)
			}
			x += seg
		}
	}
	// Legend.
	lx := left
	ly := rowH*len(r.Specs) + 14
	for _, tier := range tiers {
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/><text x="%d" y="%d" font-size="11">%s</text>`+"\n",
			lx, ly, tier.color, lx+14, ly+9, tier.name)
		lx += 110
	}
	fmt.Fprintf(b, "</svg><figcaption>Share of recoveries served from each checkpoint tier, summed over all variations.</figcaption></figure>\n")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
