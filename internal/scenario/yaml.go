package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// parseYAML decodes the YAML subset the scenario format uses into the
// same value shapes encoding/json produces — map[string]any, []any,
// float64, bool, string, nil — so one binder serves both formats. The
// subset covers what declarative scenarios need and nothing more:
//
//   - two-or-more-space indentation for nesting (tabs are rejected)
//   - `key: value` and `key:` + indented block mappings
//   - `- item` block lists, including `- key: value` mapping items
//   - inline lists `[a, b, c]`
//   - double- and single-quoted strings, `#` comments, blank lines
//   - unquoted scalars: numbers, true/false, null/~, everything else a
//     string
//
// Anchors, aliases, multi-document streams, flow mappings, and
// multi-line strings are out of scope and fail with a line-numbered
// error.
func parseYAML(data []byte) (any, error) {
	lines, err := yamlLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	p := &yamlParser{lines: lines}
	v, err := p.block(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, yamlErr(p.lines[p.pos], "content outside the top-level block (check indentation)")
	}
	return v, nil
}

type yamlLine struct {
	indent int
	text   string
	num    int // 1-based source line number
}

func yamlErr(ln yamlLine, format string, args ...any) error {
	return fmt.Errorf("scenario: yaml line %d: %s", ln.num, fmt.Sprintf(format, args...))
}

// yamlLines strips comments and blanks and records indentation.
func yamlLines(data []byte) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		ln := yamlLine{num: i + 1}
		rest := strings.TrimRight(raw, " \r")
		indent := 0
		for indent < len(rest) && rest[indent] == ' ' {
			indent++
		}
		rest = rest[indent:]
		if strings.HasPrefix(rest, "\t") {
			return nil, yamlErr(yamlLine{num: i + 1}, "tab indentation is not supported (use spaces)")
		}
		rest = stripComment(rest)
		rest = strings.TrimRight(rest, " ")
		if rest == "" || rest == "---" {
			continue
		}
		ln.indent, ln.text = indent, rest
		out = append(out, ln)
	}
	return out, nil
}

// stripComment removes a trailing `#` comment, respecting quotes.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		switch {
		case quote != 0:
			if s[i] == quote {
				quote = 0
			}
		case s[i] == '"' || s[i] == '\'':
			quote = s[i]
		case s[i] == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// block parses the value starting at the current line, which must be
// indented at least min columns; an absent or outdented block is nil.
func (p *yamlParser) block(min int) (any, error) {
	if p.pos >= len(p.lines) || p.lines[p.pos].indent < min {
		return nil, nil
	}
	base := p.lines[p.pos].indent
	if isListItem(p.lines[p.pos].text) {
		return p.list(base)
	}
	return p.mapping(base)
}

func isListItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func (p *yamlParser) mapping(indent int) (map[string]any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, yamlErr(ln, "unexpected indentation (mapping keys must align)")
		}
		if isListItem(ln.text) {
			return nil, yamlErr(ln, "list item inside a mapping")
		}
		key, rest, ok := cutKey(ln.text)
		if !ok {
			return nil, yamlErr(ln, "expected `key: value` or `key:`")
		}
		if _, dup := m[key]; dup {
			return nil, yamlErr(ln, "duplicate key %q", key)
		}
		p.pos++
		if rest == "" {
			v, err := p.block(indent + 1)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = yamlScalar(rest)
		}
	}
	return m, nil
}

func (p *yamlParser) list(indent int) ([]any, error) {
	out := []any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent || !isListItem(ln.text) {
			return nil, yamlErr(ln, "expected a `- ` list item at column %d", indent+1)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		switch {
		case rest == "":
			p.pos++
			v, err := p.block(indent + 1)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		case isKeyLine(rest):
			// A mapping item: re-read the inline `key: value` as the
			// first key of a mapping indented two past the dash, where
			// the item's remaining keys physically live.
			p.lines[p.pos] = yamlLine{indent: indent + 2, text: rest, num: ln.num}
			v, err := p.mapping(indent + 2)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		default:
			p.pos++
			out = append(out, yamlScalar(rest))
		}
	}
	return out, nil
}

// isKeyLine reports whether a list item's inline content is a mapping
// key rather than a scalar. Quoted strings are always scalars.
func isKeyLine(s string) bool {
	if strings.HasPrefix(s, `"`) || strings.HasPrefix(s, "'") {
		return false
	}
	_, _, ok := cutKey(s)
	return ok
}

// cutKey splits `key: value` or `key:`; the key may not contain spaces
// or quotes.
func cutKey(s string) (key, rest string, ok bool) {
	i := strings.IndexByte(s, ':')
	if i <= 0 || (i+1 < len(s) && s[i+1] != ' ') {
		return "", "", false
	}
	key = s[:i]
	if strings.ContainsAny(key, " \"'[]{}") {
		return "", "", false
	}
	return key, strings.TrimSpace(s[i+1:]), true
}

// yamlScalar interprets an inline value.
func yamlScalar(s string) any {
	switch {
	case len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"':
		return strings.ReplaceAll(s[1:len(s)-1], `\"`, `"`)
	case len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'':
		return s[1 : len(s)-1]
	case len(s) >= 2 && s[0] == '[' && s[len(s)-1] == ']':
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}
		}
		parts := strings.Split(inner, ",")
		out := make([]any, 0, len(parts))
		for _, part := range parts {
			out = append(out, yamlScalar(strings.TrimSpace(part)))
		}
		return out
	case s == "true":
		return true
	case s == "false":
		return false
	case s == "null" || s == "~":
		return nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
