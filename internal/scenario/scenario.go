// Package scenario is the declarative front door to the simulator: a
// YAML/JSON scenario file names a training job, a fleet composition, an
// MTBF-driven failure model, a chaos schedule, and the solutions to
// compare, and the package compiles it onto the existing engines —
// failure.Model / failure.FixedRate for the background schedule,
// internal/chaos for injected faults, the derivation cache for job
// artifacts, and internal/runsim for the §7.3 long-run accounting. A
// campaign expands one scenario into N seeded variations and fans them
// across internal/parallel; for a fixed scenario seed the aggregate
// report is bit-identical at any worker count.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"gemini/internal/cluster"
	"gemini/internal/model"
	"gemini/internal/simclock"
	"gemini/internal/strategy"
)

// Scenario is one parsed scenario file.
type Scenario struct {
	// Name identifies the scenario in reports.
	Name string
	// Description is free-form prose carried into reports.
	Description string
	// Seed is the base seed; variation v runs with Seed+v.
	Seed int64
	// Variations is the campaign width (default 1).
	Variations int
	// Horizon is the simulated duration of every variation.
	Horizon simclock.Duration
	Job     JobConfig
	// Fleet optionally describes a heterogeneous fleet; nil means every
	// machine is Job.Instance.
	Fleet    *FleetConfig
	Failures FailureConfig
	Chaos    []ChaosConfig
	Run      RunConfig
	Report   ReportConfig
}

// JobConfig sizes the training job.
type JobConfig struct {
	// Model is a Table 2 name.
	Model string
	// Instance is a Table 1 name; optional when Fleet lists templates
	// (the heaviest template then sizes the job).
	Instance string
	// Machines is the cluster size N.
	Machines int
	// Replicas is the checkpoint replica count m (default 2).
	Replicas int
	// RemoteGbps is the persistent store bandwidth (0 = default).
	RemoteGbps float64
	// Strategy names the checkpoint strategy (default gemini).
	Strategy string
	// Parallelism is zero-3, data-parallel, or pipeline-parallel.
	Parallelism string
}

// FleetConfig describes fleet composition. Weights are relative; the
// compiler assigns machines by largest-remainder quota and a seeded
// shuffle, so region and provider outages target realistic rank sets.
type FleetConfig struct {
	Templates []Template
	Regions   []Weight
	Providers []Weight
}

// Template is one weighted instance type in the fleet.
type Template struct {
	Instance string
	Weight   float64
}

// Weight is one weighted name (region or provider).
type Weight struct {
	Name   string
	Weight float64
}

// FailureConfig selects the background failure distribution.
type FailureConfig struct {
	// Kind is poisson or fixed; empty means no background failures
	// (chaos events may still kill machines).
	Kind string
	// PerInstancePerDay is the Poisson per-machine daily failure
	// probability (the paper's MTBF framing, e.g. OPT-175B's 0.015).
	PerInstancePerDay float64
	// PerDay is the fixed-spacing cluster-wide daily failure count.
	PerDay float64
	// HardwareFraction is the share of failures needing replacement.
	HardwareFraction float64
}

// ChaosConfig is one declarative fault. Window kinds (partition,
// straggler, kv-outage) pair an opener at At with a closer at
// At+Duration; outage kinds (region-outage, provider-outage) resolve to
// a correlated crash of the fleet ranks assigned to the named region or
// provider.
type ChaosConfig struct {
	At       simclock.Duration
	Kind     string
	Rank     int
	Ranks    []int
	State    string // software or hardware, for crash kinds
	Duration simclock.Duration
	Factor   float64
	Jitter   simclock.Duration
	Region   string
	Provider string
	// MaxRanks caps how many ranks an outage kills (0 = all assigned).
	MaxRanks int
}

// RunConfig tunes the long-run simulation.
type RunConfig struct {
	// Specs lists the solutions to compare: gemini, highfreq, strawman
	// (default all three).
	Specs              []string
	ReplacementDelay   simclock.Duration
	SimultaneityWindow simclock.Duration
}

// ReportConfig names default output paths (flags can override).
type ReportConfig struct {
	JSON string
	HTML string
}

// scenarioKinds is the chaos vocabulary the compiler accepts.
var scenarioKinds = map[string]bool{
	"crash": true, "correlated-crash": true, "partition": true,
	"straggler": true, "kv-outage": true, "lease-jitter": true,
	"region-outage": true, "provider-outage": true,
}

var parallelisms = map[string]bool{
	"": true, "zero-3": true, "data-parallel": true, "pipeline-parallel": true,
}

// Load reads and parses a scenario file. The format is sniffed: content
// whose first non-space byte is '{' is JSON, everything else YAML.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Parse decodes a scenario from YAML or JSON and validates it.
func Parse(data []byte) (*Scenario, error) {
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	var raw any
	if strings.HasPrefix(trimmed, "{") {
		if err := json.Unmarshal(data, &raw); err != nil {
			return nil, fmt.Errorf("scenario: json: %w", err)
		}
	} else {
		var err error
		if raw, err = parseYAML(data); err != nil {
			return nil, err
		}
	}
	s, err := bindScenario(raw)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Validate checks everything checkable without compiling: names resolve
// against the catalogs, weights and rates are in range, chaos entries
// carry the fields their kind needs.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("scenario: horizon must be positive, got %v", s.Horizon)
	}
	if s.Variations < 1 {
		return fmt.Errorf("scenario: variations must be ≥ 1, got %d", s.Variations)
	}
	if err := s.Job.validate(s.Fleet); err != nil {
		return err
	}
	if s.Fleet != nil {
		if err := s.Fleet.validate(); err != nil {
			return err
		}
	}
	if err := s.Failures.validate(); err != nil {
		return err
	}
	for i, c := range s.Chaos {
		if err := c.validate(i, s.Fleet); err != nil {
			return err
		}
	}
	return s.Run.validate()
}

func (j JobConfig) validate(fleet *FleetConfig) error {
	if j.Model == "" {
		return fmt.Errorf("scenario: job.model is required")
	}
	if _, err := model.ByName(j.Model); err != nil {
		return fmt.Errorf("scenario: job.model: %w", err)
	}
	if j.Instance == "" && (fleet == nil || len(fleet.Templates) == 0) {
		return fmt.Errorf("scenario: job.instance is required without fleet templates")
	}
	if j.Instance != "" {
		if _, err := cluster.InstanceByName(j.Instance); err != nil {
			return fmt.Errorf("scenario: job.instance: %w", err)
		}
	}
	if j.Machines <= 0 {
		return fmt.Errorf("scenario: job.machines must be positive, got %d", j.Machines)
	}
	if j.Replicas < 0 {
		return fmt.Errorf("scenario: job.replicas must be ≥ 0, got %d", j.Replicas)
	}
	if j.RemoteGbps < 0 {
		return fmt.Errorf("scenario: job.remote_gbps must be ≥ 0, got %v", j.RemoteGbps)
	}
	if j.Strategy != "" {
		if _, err := strategy.New(j.Strategy); err != nil {
			return fmt.Errorf("scenario: job.strategy: %w", err)
		}
	}
	if !parallelisms[j.Parallelism] {
		return fmt.Errorf("scenario: job.parallelism %q unknown (zero-3, data-parallel, pipeline-parallel)", j.Parallelism)
	}
	return nil
}

func (f *FleetConfig) validate() error {
	for i, t := range f.Templates {
		if _, err := cluster.InstanceByName(t.Instance); err != nil {
			return fmt.Errorf("scenario: fleet.templates[%d]: %w", i, err)
		}
		if t.Weight <= 0 {
			return fmt.Errorf("scenario: fleet.templates[%d] (%s) weight must be positive, got %v", i, t.Instance, t.Weight)
		}
	}
	for _, group := range []struct {
		name string
		ws   []Weight
	}{{"regions", f.Regions}, {"providers", f.Providers}} {
		for _, w := range group.ws {
			if w.Weight <= 0 {
				return fmt.Errorf("scenario: fleet.%s[%s] weight must be positive, got %v", group.name, w.Name, w.Weight)
			}
		}
	}
	return nil
}

func (f FailureConfig) validate() error {
	switch f.Kind {
	case "":
		if f.PerInstancePerDay != 0 || f.PerDay != 0 {
			return fmt.Errorf("scenario: failures needs kind: poisson or fixed when rates are set")
		}
		return nil
	case "poisson":
		if f.PerDay != 0 {
			return fmt.Errorf("scenario: failures.per_day belongs to kind: fixed (poisson takes per_instance_per_day)")
		}
		if f.PerInstancePerDay < 0 || f.PerInstancePerDay > 1 {
			return fmt.Errorf("scenario: failures.per_instance_per_day %v out of [0,1]", f.PerInstancePerDay)
		}
	case "fixed":
		if f.PerInstancePerDay != 0 {
			return fmt.Errorf("scenario: failures.per_instance_per_day belongs to kind: poisson (fixed takes per_day)")
		}
		if f.PerDay < 0 {
			return fmt.Errorf("scenario: failures.per_day must be ≥ 0, got %v", f.PerDay)
		}
	default:
		return fmt.Errorf("scenario: failures.kind %q unknown (poisson or fixed)", f.Kind)
	}
	if f.HardwareFraction < 0 || f.HardwareFraction > 1 {
		return fmt.Errorf("scenario: failures.hardware_fraction %v out of [0,1]", f.HardwareFraction)
	}
	return nil
}

func (c ChaosConfig) validate(i int, fleet *FleetConfig) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario: chaos[%d] (%s): %s", i, c.Kind, fmt.Sprintf(format, args...))
	}
	if !scenarioKinds[c.Kind] {
		return fmt.Errorf("scenario: chaos[%d] kind %q unknown", i, c.Kind)
	}
	if c.At < 0 {
		return bad("at must be ≥ 0, got %v", c.At)
	}
	if c.MaxRanks < 0 {
		return bad("max_ranks must be ≥ 0, got %d", c.MaxRanks)
	}
	targets := len(c.Ranks)
	if c.Rank >= 0 {
		targets++
	}
	needState := func() error {
		if c.State != "software" && c.State != "hardware" {
			return bad("state must be software or hardware, got %q", c.State)
		}
		return nil
	}
	switch c.Kind {
	case "crash":
		if targets == 0 {
			return bad("needs rank or ranks")
		}
		return needState()
	case "correlated-crash":
		if targets < 2 {
			return bad("needs ≥ 2 ranks")
		}
		return needState()
	case "partition":
		if targets == 0 {
			return bad("needs ranks")
		}
		if c.Duration <= 0 {
			return bad("needs a positive duration, got %v", c.Duration)
		}
	case "straggler":
		if targets == 0 {
			return bad("needs ranks")
		}
		if c.Factor <= 0 || c.Factor > 1 {
			return bad("factor %v out of (0,1]", c.Factor)
		}
		if c.Duration <= 0 {
			return bad("needs a positive duration, got %v", c.Duration)
		}
	case "kv-outage":
		if c.Duration <= 0 {
			return bad("needs a positive duration, got %v", c.Duration)
		}
	case "lease-jitter":
		if c.Jitter < 0 {
			return bad("jitter must be ≥ 0, got %v", c.Jitter)
		}
	case "region-outage", "provider-outage":
		name, field, group := c.Region, "region", []Weight(nil)
		if c.Kind == "provider-outage" {
			name, field = c.Provider, "provider"
		}
		if name == "" {
			return bad("needs %s", field)
		}
		if fleet != nil {
			if c.Kind == "region-outage" {
				group = fleet.Regions
			} else {
				group = fleet.Providers
			}
		}
		if !hasWeight(group, name) {
			return bad("%s %q is not in the fleet", field, name)
		}
		return needState()
	}
	return nil
}

func hasWeight(ws []Weight, name string) bool {
	for _, w := range ws {
		if w.Name == name {
			return true
		}
	}
	return false
}

func (r RunConfig) validate() error {
	for _, name := range r.Specs {
		switch name {
		case "gemini", "highfreq", "strawman":
		default:
			return fmt.Errorf("scenario: run.specs entry %q unknown (gemini, highfreq, strawman)", name)
		}
	}
	if r.ReplacementDelay < 0 {
		return fmt.Errorf("scenario: run.replacement_delay must be ≥ 0, got %v", r.ReplacementDelay)
	}
	if r.SimultaneityWindow < 0 {
		return fmt.Errorf("scenario: run.simultaneity_window must be ≥ 0, got %v", r.SimultaneityWindow)
	}
	return nil
}

// ---- binding: raw parsed values → typed Scenario ----

// node wraps one raw mapping and tracks which keys the binder consumed,
// so unknown keys — usually typos — are rejected with their path.
type node struct {
	path string
	m    map[string]any
	seen map[string]bool
}

func newNode(path string, v any) (*node, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("scenario: %s must be a mapping, got %s", path, typeName(v))
	}
	return &node{path: path, m: m, seen: map[string]bool{}}, nil
}

func (n *node) get(key string) (any, bool) {
	n.seen[key] = true
	v, ok := n.m[key]
	return v, ok
}

// finish rejects unconsumed keys.
func (n *node) finish() error {
	var unknown []string
	for k := range n.m {
		if !n.seen[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	return fmt.Errorf("scenario: unknown key %q under %s", unknown[0], n.path)
}

func typeName(v any) string {
	switch v.(type) {
	case nil:
		return "nothing"
	case map[string]any:
		return "a mapping"
	case []any:
		return "a list"
	case string:
		return "a string"
	case float64:
		return "a number"
	case bool:
		return "a boolean"
	}
	return fmt.Sprintf("%T", v)
}

func (n *node) str(key string, into *string) error {
	v, ok := n.get(key)
	if !ok || v == nil {
		return nil
	}
	s, ok := v.(string)
	if !ok {
		return fmt.Errorf("scenario: %s.%s must be a string, got %s", n.path, key, typeName(v))
	}
	*into = s
	return nil
}

func (n *node) integer(key string, into *int) error {
	v, ok := n.get(key)
	if !ok || v == nil {
		return nil
	}
	f, ok := v.(float64)
	if !ok || f != float64(int(f)) {
		return fmt.Errorf("scenario: %s.%s must be an integer, got %v", n.path, key, v)
	}
	*into = int(f)
	return nil
}

func (n *node) float(key string, into *float64) error {
	v, ok := n.get(key)
	if !ok || v == nil {
		return nil
	}
	f, ok := v.(float64)
	if !ok {
		return fmt.Errorf("scenario: %s.%s must be a number, got %s", n.path, key, typeName(v))
	}
	*into = f
	return nil
}

// duration accepts a bare number (seconds) or a string with a unit
// suffix: 10d, 36h, 5m, 30s, 250ms, or a compound like 1h30m.
func (n *node) duration(key string, into *simclock.Duration) error {
	v, ok := n.get(key)
	if !ok || v == nil {
		return nil
	}
	switch x := v.(type) {
	case float64:
		*into = simclock.Duration(x)
		return nil
	case string:
		d, err := parseDuration(x)
		if err != nil {
			return fmt.Errorf("scenario: %s.%s: %w", n.path, key, err)
		}
		*into = d
		return nil
	}
	return fmt.Errorf("scenario: %s.%s must be a duration (number of seconds or e.g. \"12h\"), got %s", n.path, key, typeName(v))
}

var durationUnits = []struct {
	suffix  string
	seconds float64
}{
	{"ms", 1e-3}, {"d", simclock.Day.Seconds()}, {"h", 3600}, {"m", 60}, {"s", 1},
}

func parseDuration(s string) (simclock.Duration, error) {
	total, rest := 0.0, strings.TrimSpace(s)
	if rest == "" {
		return 0, fmt.Errorf("empty duration")
	}
	for rest != "" {
		// Longest numeric prefix, then a unit.
		i := 0
		for i < len(rest) && (rest[i] == '.' || rest[i] == '-' || (rest[i] >= '0' && rest[i] <= '9')) {
			i++
		}
		f, err := strconv.ParseFloat(rest[:i], 64)
		if err != nil {
			return 0, fmt.Errorf("bad duration %q", s)
		}
		rest = rest[i:]
		matched := false
		for _, u := range durationUnits {
			if strings.HasPrefix(rest, u.suffix) {
				total += f * u.seconds
				rest = rest[len(u.suffix):]
				matched = true
				break
			}
		}
		if !matched {
			return 0, fmt.Errorf("bad duration %q (units: d h m s ms)", s)
		}
	}
	return simclock.Duration(total), nil
}

func (n *node) strList(key string, into *[]string) error {
	v, ok := n.get(key)
	if !ok || v == nil {
		return nil
	}
	items, ok := v.([]any)
	if !ok {
		return fmt.Errorf("scenario: %s.%s must be a list of strings, got %s", n.path, key, typeName(v))
	}
	out := make([]string, 0, len(items))
	for _, item := range items {
		s, ok := item.(string)
		if !ok {
			return fmt.Errorf("scenario: %s.%s entries must be strings, got %s", n.path, key, typeName(item))
		}
		out = append(out, s)
	}
	*into = out
	return nil
}

func (n *node) intList(key string, into *[]int) error {
	v, ok := n.get(key)
	if !ok || v == nil {
		return nil
	}
	items, ok := v.([]any)
	if !ok {
		return fmt.Errorf("scenario: %s.%s must be a list of integers, got %s", n.path, key, typeName(v))
	}
	out := make([]int, 0, len(items))
	for _, item := range items {
		f, ok := item.(float64)
		if !ok || f != float64(int(f)) {
			return fmt.Errorf("scenario: %s.%s entries must be integers, got %v", n.path, key, item)
		}
		out = append(out, int(f))
	}
	*into = out
	return nil
}

// weights binds a {name: weight} mapping into a name-sorted slice, so
// map iteration order never leaks into compilation.
func (n *node) weights(key string, into *[]Weight) error {
	v, ok := n.get(key)
	if !ok || v == nil {
		return nil
	}
	m, ok := v.(map[string]any)
	if !ok {
		return fmt.Errorf("scenario: %s.%s must be a mapping of name: weight, got %s", n.path, key, typeName(v))
	}
	out := make([]Weight, 0, len(m))
	for name, wv := range m {
		f, ok := wv.(float64)
		if !ok {
			return fmt.Errorf("scenario: %s.%s[%s] must be a number, got %s", n.path, key, name, typeName(wv))
		}
		out = append(out, Weight{Name: name, Weight: f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	*into = out
	return nil
}

func bindScenario(raw any) (*Scenario, error) {
	root, err := newNode("scenario", raw)
	if err != nil {
		return nil, err
	}
	s := &Scenario{Seed: 1, Variations: 1}
	steps := []func() error{
		func() error { return root.str("name", &s.Name) },
		func() error { return root.str("description", &s.Description) },
		func() error {
			seed := int(s.Seed)
			if err := root.integer("seed", &seed); err != nil {
				return err
			}
			s.Seed = int64(seed)
			return nil
		},
		func() error { return root.integer("variations", &s.Variations) },
		func() error { return root.duration("horizon", &s.Horizon) },
		func() error { return bindJob(root, &s.Job) },
		func() error { return bindFleet(root, &s.Fleet) },
		func() error { return bindFailures(root, &s.Failures) },
		func() error { return bindChaos(root, &s.Chaos) },
		func() error { return bindRun(root, &s.Run) },
		func() error { return bindReport(root, &s.Report) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}
	if err := root.finish(); err != nil {
		return nil, err
	}
	if len(s.Run.Specs) == 0 {
		s.Run.Specs = []string{"gemini", "highfreq", "strawman"}
	}
	return s, nil
}

func bindJob(root *node, j *JobConfig) error {
	v, ok := root.get("job")
	if !ok {
		return fmt.Errorf("scenario: job is required")
	}
	n, err := newNode("job", v)
	if err != nil {
		return err
	}
	j.Replicas = 2
	for _, step := range []func() error{
		func() error { return n.str("model", &j.Model) },
		func() error { return n.str("instance", &j.Instance) },
		func() error { return n.integer("machines", &j.Machines) },
		func() error { return n.integer("replicas", &j.Replicas) },
		func() error { return n.float("remote_gbps", &j.RemoteGbps) },
		func() error { return n.str("strategy", &j.Strategy) },
		func() error { return n.str("parallelism", &j.Parallelism) },
	} {
		if err := step(); err != nil {
			return err
		}
	}
	return n.finish()
}

func bindFleet(root *node, into **FleetConfig) error {
	v, ok := root.get("fleet")
	if !ok || v == nil {
		return nil
	}
	n, err := newNode("fleet", v)
	if err != nil {
		return err
	}
	f := &FleetConfig{}
	if tv, ok := n.get("templates"); ok && tv != nil {
		items, ok := tv.([]any)
		if !ok {
			return fmt.Errorf("scenario: fleet.templates must be a list, got %s", typeName(tv))
		}
		for i, item := range items {
			tn, err := newNode(fmt.Sprintf("fleet.templates[%d]", i), item)
			if err != nil {
				return err
			}
			t := Template{Weight: 1}
			if err := tn.str("instance", &t.Instance); err != nil {
				return err
			}
			if err := tn.float("weight", &t.Weight); err != nil {
				return err
			}
			if err := tn.finish(); err != nil {
				return err
			}
			f.Templates = append(f.Templates, t)
		}
	}
	if err := n.weights("regions", &f.Regions); err != nil {
		return err
	}
	if err := n.weights("providers", &f.Providers); err != nil {
		return err
	}
	if err := n.finish(); err != nil {
		return err
	}
	*into = f
	return nil
}

func bindFailures(root *node, f *FailureConfig) error {
	v, ok := root.get("failures")
	if !ok || v == nil {
		return nil
	}
	n, err := newNode("failures", v)
	if err != nil {
		return err
	}
	for _, step := range []func() error{
		func() error { return n.str("kind", &f.Kind) },
		func() error { return n.float("per_instance_per_day", &f.PerInstancePerDay) },
		func() error { return n.float("per_day", &f.PerDay) },
		func() error { return n.float("hardware_fraction", &f.HardwareFraction) },
	} {
		if err := step(); err != nil {
			return err
		}
	}
	return n.finish()
}

func bindChaos(root *node, into *[]ChaosConfig) error {
	v, ok := root.get("chaos")
	if !ok || v == nil {
		return nil
	}
	items, ok := v.([]any)
	if !ok {
		return fmt.Errorf("scenario: chaos must be a list, got %s", typeName(v))
	}
	for i, item := range items {
		n, err := newNode(fmt.Sprintf("chaos[%d]", i), item)
		if err != nil {
			return err
		}
		c := ChaosConfig{Rank: -1}
		for _, step := range []func() error{
			func() error { return n.duration("at", &c.At) },
			func() error { return n.str("kind", &c.Kind) },
			func() error { return n.integer("rank", &c.Rank) },
			func() error { return n.intList("ranks", &c.Ranks) },
			func() error { return n.str("state", &c.State) },
			func() error { return n.duration("duration", &c.Duration) },
			func() error { return n.float("factor", &c.Factor) },
			func() error { return n.duration("jitter", &c.Jitter) },
			func() error { return n.str("region", &c.Region) },
			func() error { return n.str("provider", &c.Provider) },
			func() error { return n.integer("max_ranks", &c.MaxRanks) },
		} {
			if err := step(); err != nil {
				return err
			}
		}
		if err := n.finish(); err != nil {
			return err
		}
		*into = append(*into, c)
	}
	return nil
}

func bindRun(root *node, r *RunConfig) error {
	v, ok := root.get("run")
	if !ok || v == nil {
		return nil
	}
	n, err := newNode("run", v)
	if err != nil {
		return err
	}
	for _, step := range []func() error{
		func() error { return n.strList("specs", &r.Specs) },
		func() error { return n.duration("replacement_delay", &r.ReplacementDelay) },
		func() error { return n.duration("simultaneity_window", &r.SimultaneityWindow) },
	} {
		if err := step(); err != nil {
			return err
		}
	}
	return n.finish()
}

func bindReport(root *node, r *ReportConfig) error {
	v, ok := root.get("report")
	if !ok || v == nil {
		return nil
	}
	n, err := newNode("report", v)
	if err != nil {
		return err
	}
	if err := n.str("json", &r.JSON); err != nil {
		return err
	}
	if err := n.str("html", &r.HTML); err != nil {
		return err
	}
	return n.finish()
}
