package scenario

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"gemini/internal/simclock"
)

const smallYAML = `
name: small
description: 16-machine test scenario
seed: 3
variations: 4
horizon: 2d

job:
  model: GPT-2 100B
  instance: p4d.24xlarge
  machines: 16
  replicas: 2

failures:
  kind: poisson
  per_instance_per_day: 0.25   # 4/day cluster-wide
  hardware_fraction: 0.5

run:
  specs: [gemini, highfreq, strawman]
  simultaneity_window: 10s
`

const smallJSON = `{
  "name": "small",
  "description": "16-machine test scenario",
  "seed": 3,
  "variations": 4,
  "horizon": "2d",
  "job": {"model": "GPT-2 100B", "instance": "p4d.24xlarge", "machines": 16, "replicas": 2},
  "failures": {"kind": "poisson", "per_instance_per_day": 0.25, "hardware_fraction": 0.5},
  "run": {"specs": ["gemini", "highfreq", "strawman"], "simultaneity_window": "10s"}
}`

func TestParseYAMLAndJSONAgree(t *testing.T) {
	fromYAML, err := Parse([]byte(smallYAML))
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Parse([]byte(smallJSON))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromYAML, fromJSON) {
		t.Fatalf("formats disagree:\nyaml: %+v\njson: %+v", fromYAML, fromJSON)
	}
	if fromYAML.Horizon != 2*simclock.Day {
		t.Errorf("horizon %v, want 2d", fromYAML.Horizon)
	}
	if fromYAML.Run.SimultaneityWindow != 10*simclock.Second {
		t.Errorf("window %v, want 10s", fromYAML.Run.SimultaneityWindow)
	}
}

func TestYAMLSubsetShapes(t *testing.T) {
	v, err := parseYAML([]byte(`
# comment
top: "quoted # not a comment"
block:
  inner: 3.5
  flag: true
  nothing: null
list:
  - 1
  - name: a
    w: 2
inline: [1, two, 'three']
`))
	if err != nil {
		t.Fatal(err)
	}
	m := v.(map[string]any)
	if m["top"] != "quoted # not a comment" {
		t.Errorf("quoted string: %v", m["top"])
	}
	block := m["block"].(map[string]any)
	if block["inner"] != 3.5 || block["flag"] != true || block["nothing"] != nil {
		t.Errorf("block scalars: %+v", block)
	}
	list := m["list"].([]any)
	if list[0] != float64(1) {
		t.Errorf("list[0]: %v", list[0])
	}
	item := list[1].(map[string]any)
	if item["name"] != "a" || item["w"] != float64(2) {
		t.Errorf("mapping list item: %+v", item)
	}
	inline := m["inline"].([]any)
	if inline[0] != float64(1) || inline[1] != "two" || inline[2] != "three" {
		t.Errorf("inline list: %+v", inline)
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"tab indent", "a:\n\tb: 1", "tab indentation"},
		{"duplicate key", "a: 1\na: 2", "duplicate key"},
		{"misaligned key", "a:\n  b: 1\n   c: 2", "indentation"},
		{"list in mapping", "a: 1\n- b", "list item"},
		{"bare text", "just words here", "key"},
	}
	for _, tc := range cases {
		if _, err := parseYAML([]byte(tc.src)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestParseRejections(t *testing.T) {
	base := func(mutate string) string { return smallYAML + mutate }
	cases := []struct{ name, src, want string }{
		{"unknown top key", base("bogus: 1\n"), `unknown key "bogus"`},
		{"unknown job key", strings.Replace(smallYAML, "machines: 16", "machines: 16\n  gpus: 8", 1), `unknown key "gpus"`},
		{"bad model", strings.Replace(smallYAML, "GPT-2 100B", "GPT-9", 1), "job.model"},
		{"bad instance", strings.Replace(smallYAML, "p4d.24xlarge", "x1.enormous", 1), "job.instance"},
		{"zero machines", strings.Replace(smallYAML, "machines: 16", "machines: 0", 1), "machines"},
		{"bad spec name", strings.Replace(smallYAML, "strawman", "vaporware", 1), "vaporware"},
		{"bad kind", strings.Replace(smallYAML, "kind: poisson", "kind: weibull", 1), "failures.kind"},
		{"rate for wrong kind", strings.Replace(smallYAML, "per_instance_per_day: 0.25", "per_day: 4", 1), "per_day"},
		{"negative horizon", strings.Replace(smallYAML, "horizon: 2d", "horizon: -1d", 1), "horizon"},
		{"zero variations", strings.Replace(smallYAML, "variations: 4", "variations: 0", 1), "variations"},
		{"bad duration", strings.Replace(smallYAML, "10s", "10parsecs", 1), "duration"},
		{"missing name", strings.Replace(smallYAML, "name: small\n", "", 1), "name"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.src))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestChaosValidation(t *testing.T) {
	withChaos := func(entry string) string {
		return smallYAML + "\nchaos:\n" + entry
	}
	cases := []struct{ name, entry, want string }{
		{"unknown kind", "  - at: 1h\n    kind: meteor\n", "unknown"},
		{"crash without rank", "  - at: 1h\n    kind: crash\n    state: software\n", "rank"},
		{"crash without state", "  - at: 1h\n    kind: crash\n    rank: 1\n", "state"},
		{"correlated needs two", "  - at: 1h\n    kind: correlated-crash\n    ranks: [1]\n    state: hardware\n", "2 ranks"},
		{"partition needs duration", "  - at: 1h\n    kind: partition\n    ranks: [1, 2]\n", "duration"},
		{"straggler factor", "  - at: 1h\n    kind: straggler\n    ranks: [1]\n    factor: 2\n    duration: 5m\n", "factor"},
		{"region without fleet", "  - at: 1h\n    kind: region-outage\n    region: mars\n    state: hardware\n", "not in the fleet"},
		{"rank out of range compiles", "  - at: 1h\n    kind: crash\n    rank: 99\n    state: software\n", ""},
	}
	for _, tc := range cases {
		s, err := Parse([]byte(withChaos(tc.entry)))
		if tc.want == "" {
			// Passes validation (rank bounds need the cluster size) but
			// must fail at compile, where chaos.Validate(n) sees n.
			if err != nil {
				t.Errorf("%s: parse failed early: %v", tc.name, err)
				continue
			}
			if _, err := s.Compile(); err == nil || !strings.Contains(err.Error(), "out of range") {
				t.Errorf("%s: compile error %v, want rank-out-of-range", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestDurationParsing(t *testing.T) {
	cases := map[string]simclock.Duration{
		"10d":   10 * simclock.Day,
		"36h":   36 * simclock.Hour,
		"5m":    5 * simclock.Minute,
		"30s":   30 * simclock.Second,
		"250ms": 250 * simclock.Millisecond,
		"1h30m": 90 * simclock.Minute,
		"1.5d":  36 * simclock.Hour,
	}
	for src, want := range cases {
		got, err := parseDuration(src)
		if err != nil || got != want {
			t.Errorf("parseDuration(%q) = %v, %v; want %v", src, got, err, want)
		}
	}
	for _, bad := range []string{"", "10", "h", "10x", "1h30"} {
		if _, err := parseDuration(bad); err == nil {
			t.Errorf("parseDuration(%q) accepted", bad)
		}
	}
}

func fleetScenario(t *testing.T) *Scenario {
	t.Helper()
	s, err := Parse([]byte(`
name: fleet
seed: 11
variations: 2
horizon: 1d
job:
  model: GPT-2 100B
  machines: 100
  replicas: 2
fleet:
  templates:
    - instance: p4d.24xlarge
      weight: 3
    - instance: p3dn.24xlarge
      weight: 1
  regions:
    east: 0.5
    west: 0.3
    eu: 0.2
failures:
  kind: fixed
  per_day: 4
  hardware_fraction: 0.5
chaos:
  - at: 6h
    kind: region-outage
    region: eu
    state: hardware
    max_ranks: 8
run:
  specs: [gemini]
`))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFleetAssignmentQuotasAndOutage(t *testing.T) {
	s := fleetScenario(t)
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Job sizes on the heaviest template.
	if c.Job.Spec.Instance != "p4d.24xlarge" {
		t.Errorf("job instance %s, want heaviest template", c.Job.Spec.Instance)
	}
	// Largest-remainder quotas are exact for these weights.
	counts := map[string]int{}
	for _, inst := range c.Fleet.Instances {
		counts[inst]++
	}
	if counts["p4d.24xlarge"] != 75 || counts["p3dn.24xlarge"] != 25 {
		t.Errorf("template quotas %v, want 75/25", counts)
	}
	regions := map[string]int{}
	for _, r := range c.Fleet.Regions {
		regions[r]++
	}
	if regions["east"] != 50 || regions["west"] != 30 || regions["eu"] != 20 {
		t.Errorf("region quotas %v, want 50/30/20", regions)
	}
	// The region outage compiled to a correlated crash capped at 8 of
	// eu's 20 ranks, all actually assigned to eu.
	if len(c.Chaos) != 1 || len(c.Chaos[0].Ranks) != 8 {
		t.Fatalf("chaos = %+v, want one 8-rank event", c.Chaos)
	}
	euRanks := map[int]bool{}
	for _, r := range c.Fleet.RegionRanks("eu") {
		euRanks[r] = true
	}
	for _, r := range c.Chaos[0].Ranks {
		if !euRanks[r] {
			t.Errorf("outage rank %d not assigned to eu", r)
		}
	}
	// Same seed → identical assignment; different seed → different.
	again, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Fleet, again.Fleet) {
		t.Error("fleet assignment not deterministic for a fixed seed")
	}
	s2 := fleetScenario(t)
	s2.Seed = 12
	other, err := s2.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(c.Fleet.Regions, other.Fleet.Regions) {
		t.Error("different seeds produced identical region shuffles")
	}
}

func TestFailureScheduleMergesChaos(t *testing.T) {
	s := fleetScenario(t)
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := c.FailureSchedule(0)
	if err != nil {
		t.Fatal(err)
	}
	// fixed 4/day over 1d = 4 background + 8 outage ranks.
	if len(fs) != 12 {
		t.Fatalf("schedule has %d events, want 12", len(fs))
	}
	if err := fs.Validate(100); err != nil {
		t.Fatalf("merged schedule invalid: %v", err)
	}
}

func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	s, err := Parse([]byte(smallYAML))
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunCampaign(context.Background(), c, CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunCampaign(context.Background(), c, CampaignOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j8, err := r8.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j8) {
		t.Fatalf("worker count changed the report:\n%s\nvs\n%s", j1, j8)
	}
	if r1.Hash == "" || r1.Hash != r1.ComputeHash() {
		t.Errorf("hash %q does not verify", r1.Hash)
	}
	var h1, h8 bytes.Buffer
	if err := WriteHTML(&h1, r1); err != nil {
		t.Fatal(err)
	}
	if err := WriteHTML(&h8, r8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(h1.Bytes(), h8.Bytes()) {
		t.Error("worker count changed the HTML report")
	}
	if len(r1.Specs) != 3 || r1.Specs[0].Name != "GEMINI" {
		t.Fatalf("specs = %+v", r1.Specs)
	}
	if r1.Specs[0].EffectiveRatio.Mean <= 0 || r1.Specs[0].EffectiveRatio.Mean > 1 {
		t.Errorf("GEMINI ratio %v out of (0,1]", r1.Specs[0].EffectiveRatio.Mean)
	}
}

// TestParallelismReachesSpecs pins the baselines fix: the checkpoint
// cadence must follow the scenario's parallelism, not an assumed ZeRO-3
// timeline (pipeline iterations are much shorter at scale, so GEMINI's
// per-iteration interval shrinks with them).
func TestParallelismReachesSpecs(t *testing.T) {
	build := func(par string) *Compiled {
		t.Helper()
		src := strings.Replace(smallYAML, "replicas: 2", "replicas: 2\n  parallelism: "+par, 1)
		s, err := Parse([]byte(src))
		if err != nil {
			t.Fatal(err)
		}
		c, err := s.Compile()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	zero := build("zero-3")
	pipe := build("pipeline-parallel")
	if zero.Job.Timeline.Iteration == pipe.Job.Timeline.Iteration {
		t.Fatal("parallelism did not change the timeline")
	}
	if zero.Specs[0].Interval == pipe.Specs[0].Interval {
		t.Error("parallelism did not reach the GEMINI spec's checkpoint interval")
	}
	if zero.Specs[0].Interval != simclock.Duration(zero.Job.Timeline.Iteration) {
		t.Errorf("GEMINI interval %v != iteration %v", zero.Specs[0].Interval, zero.Job.Timeline.Iteration)
	}
	if pipe.Specs[0].Interval != simclock.Duration(pipe.Job.Timeline.Iteration) {
		t.Errorf("pipeline GEMINI interval %v != iteration %v", pipe.Specs[0].Interval, pipe.Job.Timeline.Iteration)
	}
}
