package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"gemini/internal/baselines"
	"gemini/internal/chaos"
	"gemini/internal/cluster"
	"gemini/internal/core"
	"gemini/internal/failure"
	"gemini/internal/simclock"
	"gemini/internal/training"
)

// Compiled is a scenario lowered onto the simulator's native types: the
// derived job (resolved through the shared derivation cache), the specs
// to compare, the seeded fleet assignment, the chaos schedule validated
// against the cluster size, and the chaos events' failure-schedule
// shadow for the long-run accounting.
type Compiled struct {
	Scenario *Scenario
	Job      *core.Job
	// Specs are the solutions under comparison, in scenario order.
	Specs []baselines.Spec
	// Fleet is the per-rank instance/region/provider assignment; nil
	// when the scenario has no fleet section.
	Fleet *FleetAssignment
	// Chaos is the compiled fault schedule (sorted, validated).
	Chaos chaos.Schedule
	// ChaosFailures is Chaos lowered to the machine-killing subset.
	ChaosFailures failure.Schedule
	// Model is the Poisson background model; zero when Kind is fixed or
	// background failures are off.
	Model failure.Model
}

// FleetAssignment maps each rank to its fleet attributes. Slices are
// empty when the corresponding dimension is not declared. The
// assignment depends only on the scenario seed — not the variation — so
// one fleet underlies the whole campaign.
type FleetAssignment struct {
	Instances []string
	Regions   []string
	Providers []string
}

// RegionRanks returns the ascending ranks assigned to a region.
func (fa *FleetAssignment) RegionRanks(name string) []int { return ranksOf(fa.Regions, name) }

// ProviderRanks returns the ascending ranks assigned to a provider.
func (fa *FleetAssignment) ProviderRanks(name string) []int { return ranksOf(fa.Providers, name) }

func ranksOf(assigned []string, name string) []int {
	var out []int
	for r, a := range assigned {
		if a == name {
			out = append(out, r)
		}
	}
	return out
}

// Compile lowers the scenario: derive the job, resolve specs, assign
// the fleet, and compile + validate the chaos schedule. The scenario
// must already be valid (Parse validates; call Validate after manual
// construction).
func (s *Scenario) Compile() (*Compiled, error) {
	instance := s.Job.Instance
	if instance == "" {
		instance = heaviestTemplate(s.Fleet.Templates)
	}
	job, err := core.NewJob(core.JobSpec{
		Model:           s.Job.Model,
		Instance:        instance,
		Machines:        s.Job.Machines,
		Replicas:        s.Job.Replicas,
		RemoteBandwidth: s.Job.RemoteGbps,
		Strategy:        s.Job.Strategy,
		Parallelism:     parallelismByName(s.Job.Parallelism),
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	c := &Compiled{Scenario: s, Job: job}
	for _, name := range s.Run.Specs {
		switch name {
		case "gemini":
			c.Specs = append(c.Specs, job.GeminiSpec())
		case "highfreq":
			c.Specs = append(c.Specs, job.HighFreqSpec())
		case "strawman":
			c.Specs = append(c.Specs, job.StrawmanSpec())
		}
	}

	if s.Fleet != nil {
		c.Fleet = assignFleet(s.Job.Machines, s.Fleet, s.Seed)
	}

	sched, err := compileChaos(s, c.Fleet)
	if err != nil {
		return nil, err
	}
	if len(sched) > 0 {
		sched.Sort()
		if err := sched.Validate(s.Job.Machines); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		c.Chaos = sched
		c.ChaosFailures = sched.Failures()
	}

	if s.Failures.Kind == "poisson" {
		c.Model = failure.Model{
			PerInstancePerDay: s.Failures.PerInstancePerDay,
			HardwareFraction:  s.Failures.HardwareFraction,
		}
	}
	return c, nil
}

// FailureSchedule builds variation v's full failure schedule: the
// background distribution (seeded with Seed+v for Poisson; FixedRate is
// seed-free) merged with the chaos schedule's crash events. Merge
// collapses a rank hit by both at the same instant to one failure with
// HardwareFailed winning.
func (c *Compiled) FailureSchedule(v int) (failure.Schedule, error) {
	s := c.Scenario
	var base failure.Schedule
	var err error
	switch s.Failures.Kind {
	case "poisson":
		base, err = c.Model.Generate(s.Job.Machines, s.Horizon, s.Seed+int64(v))
	case "fixed":
		base, err = failure.FixedRate(s.Job.Machines, s.Failures.PerDay, s.Failures.HardwareFraction, s.Horizon)
	}
	if err != nil {
		return nil, fmt.Errorf("scenario: variation %d: %w", v, err)
	}
	if len(c.ChaosFailures) == 0 {
		return base, nil
	}
	return failure.Merge(base, c.ChaosFailures), nil
}

// heaviestTemplate picks the job-sizing instance from a fleet: the
// highest weight, ties broken by lexicographically smallest name, so
// the choice is independent of declaration order.
func heaviestTemplate(ts []Template) string {
	best := ts[0]
	for _, t := range ts[1:] {
		if t.Weight > best.Weight || (t.Weight == best.Weight && t.Instance < best.Instance) {
			best = t
		}
	}
	return best.Instance
}

// assignFleet distributes n ranks across each declared dimension by
// largest-remainder quota, then shuffles each assignment with a PRNG
// seeded only by the scenario seed — region membership is scattered
// across ranks (as in a real heterogeneous fleet) but fixed for the
// whole campaign.
func assignFleet(n int, f *FleetConfig, seed int64) *FleetAssignment {
	rng := rand.New(rand.NewSource(seed))
	fa := &FleetAssignment{}
	if len(f.Templates) > 0 {
		ws := make([]Weight, len(f.Templates))
		for i, t := range f.Templates {
			ws[i] = Weight{Name: t.Instance, Weight: t.Weight}
		}
		fa.Instances = assignDimension(n, ws, rng)
	}
	fa.Regions = assignDimension(n, f.Regions, rng)
	fa.Providers = assignDimension(n, f.Providers, rng)
	return fa
}

// assignDimension splits n slots across weighted names: each name gets
// ⌊n·w/W⌋ slots, the remainder goes to the largest fractional parts
// (ties to the earlier entry), and the resulting block assignment is
// shuffled.
func assignDimension(n int, ws []Weight, rng *rand.Rand) []string {
	if len(ws) == 0 {
		return nil
	}
	var total float64
	for _, w := range ws {
		total += w.Weight
	}
	counts := make([]int, len(ws))
	fracs := make([]float64, len(ws))
	assigned := 0
	for i, w := range ws {
		exact := float64(n) * w.Weight / total
		counts[i] = int(exact)
		fracs[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	order := make([]int, len(ws))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return fracs[order[a]] > fracs[order[b]] })
	for k := 0; assigned < n; k++ {
		counts[order[k%len(order)]]++
		assigned++
	}
	out := make([]string, 0, n)
	for i, w := range ws {
		for k := 0; k < counts[i]; k++ {
			out = append(out, w.Name)
		}
	}
	rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// compileChaos lowers the declarative chaos entries onto chaos.Schedule
// events, resolving outage kinds through the fleet assignment.
func compileChaos(s *Scenario, fleet *FleetAssignment) (chaos.Schedule, error) {
	var sched chaos.Schedule
	for i, cc := range s.Chaos {
		at := simclock.Time(cc.At)
		switch cc.Kind {
		case "crash":
			sched = append(sched, chaos.Event{
				At: at, Kind: chaos.KindCrash, Ranks: targetRanks(cc), Machine: machineState(cc.State),
			})
		case "correlated-crash":
			sched = append(sched, chaos.Event{
				At: at, Kind: chaos.KindCorrelatedCrash, Ranks: targetRanks(cc), Machine: machineState(cc.State),
			})
		case "partition":
			sched = append(sched,
				chaos.Event{At: at, Kind: chaos.KindPartitionStart, Ranks: targetRanks(cc)},
				chaos.Event{At: at.Add(cc.Duration), Kind: chaos.KindPartitionHeal})
		case "straggler":
			ranks := targetRanks(cc)
			sched = append(sched,
				chaos.Event{At: at, Kind: chaos.KindStragglerStart, Ranks: ranks, Factor: cc.Factor},
				chaos.Event{At: at.Add(cc.Duration), Kind: chaos.KindStragglerEnd, Ranks: ranks})
		case "kv-outage":
			sched = append(sched,
				chaos.Event{At: at, Kind: chaos.KindKVOutage},
				chaos.Event{At: at.Add(cc.Duration), Kind: chaos.KindKVRestore})
		case "lease-jitter":
			sched = append(sched, chaos.Event{At: at, Kind: chaos.KindLeaseJitter, Jitter: cc.Jitter})
		case "region-outage", "provider-outage":
			if fleet == nil {
				return nil, fmt.Errorf("scenario: chaos[%d] (%s) needs a fleet section", i, cc.Kind)
			}
			name, ranks := cc.Region, fleet.RegionRanks(cc.Region)
			if cc.Kind == "provider-outage" {
				name, ranks = cc.Provider, fleet.ProviderRanks(cc.Provider)
			}
			if cc.MaxRanks > 0 && len(ranks) > cc.MaxRanks {
				ranks = ranks[:cc.MaxRanks]
			}
			if len(ranks) == 0 {
				return nil, fmt.Errorf("scenario: chaos[%d] (%s) %q resolves to no machines", i, cc.Kind, name)
			}
			kind := chaos.KindCorrelatedCrash
			if len(ranks) == 1 {
				kind = chaos.KindCrash
			}
			sched = append(sched, chaos.Event{At: at, Kind: kind, Ranks: ranks, Machine: machineState(cc.State)})
		}
	}
	return sched, nil
}

// targetRanks merges the singular rank and plural ranks fields.
func targetRanks(cc ChaosConfig) []int {
	out := append([]int(nil), cc.Ranks...)
	if cc.Rank >= 0 {
		out = append(out, cc.Rank)
	}
	sort.Ints(out)
	return out
}

func machineState(s string) cluster.MachineState {
	if s == "hardware" {
		return cluster.HardwareFailed
	}
	return cluster.SoftwareFailed
}

func parallelismByName(name string) training.Parallelism {
	switch name {
	case "data-parallel":
		return training.DataParallel
	case "pipeline-parallel":
		return training.PipelineParallel
	default:
		return training.ZeRO3
	}
}
