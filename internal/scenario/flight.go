package scenario

// The campaign flight recorder. A campaign runs thousands of
// simulations with observability off (the hot path is pooled and
// alloc-free); when one run's outcome looks pathological, we want its
// full trace — after the fact. Determinism makes that free: every run
// is a pure function of (scenario, variation), so re-executing the
// worst offenders with tracer + metrics + timeline attached reproduces
// the recorded outcome exactly. Replay asserts that equality, turning
// the flight recorder into a standing bit-reproducibility check.

import (
	"fmt"
	"io"
	"sort"

	"gemini/internal/metrics"
	"gemini/internal/runsim"
	"gemini/internal/trace"
)

// RunRecord is one (variation, spec) outcome a campaign kept for the
// flight recorder (CampaignOptions.RecordRuns). The float fields are
// the run's exact values — replay compares bit-for-bit.
type RunRecord struct {
	Variation       int     `json:"variation"`
	Spec            string  `json:"spec"`
	EffectiveRatio  float64 `json:"effective_ratio"`
	WastedSeconds   float64 `json:"wasted_seconds"`
	LostSeconds     float64 `json:"lost_seconds"`
	DowntimeSeconds float64 `json:"downtime_seconds"`
	StallSeconds    float64 `json:"stall_seconds"`
	Failures        int     `json:"failures"`
	FromLocal       int     `json:"from_local"`
	FromPeer        int     `json:"from_peer"`
	FromRemote      int     `json:"from_remote"`
}

func makeRecord(v int, spec string, res *runsim.Result) RunRecord {
	return RunRecord{
		Variation:       v,
		Spec:            spec,
		EffectiveRatio:  res.EffectiveRatio,
		WastedSeconds:   res.TotalWasted.Seconds(),
		LostSeconds:     res.TotalLost.Seconds(),
		DowntimeSeconds: res.TotalDowntime.Seconds(),
		StallSeconds:    res.StallTime.Seconds(),
		Failures:        res.Failures,
		FromLocal:       res.FromLocal,
		FromPeer:        res.FromPeer,
		FromRemote:      res.FromRemote,
	}
}

// FlightKeys lists the badness rankings Outliers accepts.
//   - "wasted": most total wasted seconds first.
//   - "ratio": lowest effective training-time ratio first.
//   - "wasted-vs-spec": largest excess over the run's own solution's
//     mean wasted seconds first — surfaces runs that are outliers for
//     their spec, not just runs of the weakest spec.
var FlightKeys = []string{"wasted", "ratio", "wasted-vs-spec"}

// Outliers ranks the report's recorded runs by key and returns the
// worst k (all of them when k exceeds the record count). Ties break by
// (variation, spec) so the ranking is fully deterministic. It errors on
// an unknown key or a report without records.
func Outliers(rep *Report, key string, k int) ([]RunRecord, error) {
	if len(rep.Runs) == 0 {
		return nil, fmt.Errorf("scenario: report has no run records (run the campaign with RecordRuns)")
	}
	badness := func(r RunRecord) float64 { return r.WastedSeconds }
	switch key {
	case "wasted":
	case "ratio":
		badness = func(r RunRecord) float64 { return -r.EffectiveRatio }
	case "wasted-vs-spec":
		type acc struct {
			sum float64
			n   int
		}
		means := make(map[string]acc)
		for _, r := range rep.Runs {
			a := means[r.Spec]
			a.sum += r.WastedSeconds
			a.n++
			means[r.Spec] = a
		}
		badness = func(r RunRecord) float64 {
			a := means[r.Spec]
			return r.WastedSeconds - a.sum/float64(a.n)
		}
	default:
		return nil, fmt.Errorf("scenario: unknown flight key %q (have %v)", key, FlightKeys)
	}
	ranked := append([]RunRecord(nil), rep.Runs...)
	sort.SliceStable(ranked, func(i, j int) bool {
		bi, bj := badness(ranked[i]), badness(ranked[j])
		if bi != bj {
			return bi > bj
		}
		if ranked[i].Variation != ranked[j].Variation {
			return ranked[i].Variation < ranked[j].Variation
		}
		return ranked[i].Spec < ranked[j].Spec
	})
	if k < len(ranked) {
		ranked = ranked[:k]
	}
	return ranked, nil
}

// FlightRun is one outlier re-executed with full observability.
type FlightRun struct {
	Record   RunRecord
	Result   *runsim.Result
	Tracer   *trace.Tracer
	Registry *metrics.Registry
	// Wasted and Ratio are the per-recovery timelines (cumulative
	// wasted seconds; progress over elapsed sim time).
	Wasted, Ratio *metrics.Series
}

// Replay deterministically re-executes a recorded run with tracer,
// metrics, and timeline taps attached, then asserts the re-run's
// outcome equals the record exactly — any divergence is an error, not a
// warning, because it falsifies the determinism contract every report
// hash in this repo rests on.
func (c *Compiled) Replay(rec RunRecord) (*FlightRun, error) {
	s := c.Scenario
	var spec int = -1
	for si := range c.Specs {
		if c.Specs[si].Name == rec.Spec {
			spec = si
			break
		}
	}
	if spec < 0 {
		return nil, fmt.Errorf("scenario: flight replay: spec %q not in scenario", rec.Spec)
	}
	fs, err := c.FailureSchedule(rec.Variation)
	if err != nil {
		return nil, err
	}
	capacity := len(fs) + 1 // ≤ one recovery per failure event
	fr := &FlightRun{
		Record:   rec,
		Tracer:   trace.NewTracer(nil),
		Registry: metrics.NewRegistry(),
		Wasted:   metrics.NewSeries("wasted_seconds", capacity),
		Ratio:    metrics.NewSeries("effective_ratio", capacity),
	}
	cfg := runsim.Config{
		Spec:               c.Specs[spec],
		Machines:           s.Job.Machines,
		Failures:           fs,
		Horizon:            s.Horizon,
		ReplacementDelay:   s.Run.ReplacementDelay,
		SimultaneityWindow: s.Run.SimultaneityWindow,
		Obs: runsim.Observer{
			Tracer:  fr.Tracer,
			Metrics: fr.Registry,
			Wasted:  fr.Wasted,
			Ratio:   fr.Ratio,
		},
	}
	if cfg.Spec.UsesCPUMemory {
		cfg.Placement = c.Job.Placement
	}
	res, err := runsim.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: flight replay: %w", err)
	}
	fr.Result = res
	if got := makeRecord(rec.Variation, rec.Spec, res); got != rec {
		return nil, fmt.Errorf("scenario: flight replay diverged from campaign record:\nrecorded %+v\nreplayed %+v", rec, got)
	}
	return fr, nil
}

// WriteTrace renders the replay's Perfetto trace JSON.
func (f *FlightRun) WriteTrace(w io.Writer) error {
	return trace.WriteJSON(w, f.Tracer)
}

// WriteTimeline renders the replay's per-recovery timeline CSV (time,
// cumulative wasted seconds, effective ratio).
func (f *FlightRun) WriteTimeline(w io.Writer) error {
	return metrics.WriteSeriesCSV(w, []*metrics.Series{f.Wasted, f.Ratio})
}

// WriteProm renders the replay's run.* registry in Prometheus text
// exposition format.
func (f *FlightRun) WriteProm(w io.Writer) error {
	return metrics.WriteProm(w, f.Registry)
}
