package trace

// Chrome trace-event exporter: renders one or more Tracers as a JSON
// document loadable by Perfetto (ui.perfetto.dev) and chrome://tracing.
// Layout: every Track.Process becomes a process (pid), every Track a
// thread (tid) inside it. Spans on one track may overlap (concurrent
// flows on one NIC), which the "X" complete-event format cannot express
// on a single thread row, so the exporter lays overlapping spans out
// into lanes — extra tids named "thread·2", "thread·3", … — at export
// time. Runtime emission stays a plain append.
//
// Everything about the output is deterministic: pids/tids follow track
// creation order, spans keep (start, emission) order, and args maps are
// marshaled with sorted keys by encoding/json.

import (
	"encoding/json"
	"fmt"
	"io"

	"gemini/internal/simclock"
)

// chromeEvent is one trace-event JSON object. The zero Dur is omitted,
// which instants and metadata events rely on.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope: "t" = thread
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON-object container format; Perfetto accepts both
// the bare-array and the object form, and the object form leaves room
// for metadata.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func micros(t simclock.Time) float64 { return float64(t) * 1e6 }

// WriteJSON renders the tracers' contents as one Chrome trace-event JSON
// document. Multiple tracers merge into one timeline with disjoint pid
// ranges (per-run sinks from concurrent runs, or the separate engines of
// one CLI invocation). Spans still open at export time are closed at the
// tracer's current clock and tagged open=true.
func WriteJSON(w io.Writer, tracers ...*Tracer) error {
	var events []chromeEvent
	pid := 0
	tid := 0
	for _, tr := range tracers {
		if tr == nil {
			continue
		}
		// Processes in first-track order, tracks grouped under them.
		procPid := make(map[string]int)
		for _, tk := range tr.tracks {
			p, ok := procPid[tk.Process]
			if !ok {
				pid++
				p = pid
				procPid[tk.Process] = p
				events = append(events, chromeEvent{
					Name: "process_name", Ph: "M", Pid: p,
					Args: map[string]any{"name": tk.Process},
				})
			}
			tid = appendTrack(&events, tk, p, tid, tr.now())
		}
	}
	doc := chromeDoc{TraceEvents: events, DisplayTimeUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []chromeEvent{}
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("trace: encoding chrome trace: %w", err)
	}
	_, err = w.Write(data)
	return err
}

// appendTrack lays one track's spans out into non-overlapping lanes and
// emits its events; it returns the next free tid.
func appendTrack(events *[]chromeEvent, tk *Track, pid, tid int, now simclock.Time) int {
	// Spans in (start, emission-order): emission order already never puts
	// an earlier-starting span after a later one on the same lane
	// incorrectly, but completed-at-finish producers (flows) emit in end
	// order, so re-sort stably by start.
	spans := make([]Span, 0, len(tk.spans)+len(tk.open))
	spans = append(spans, tk.spans...)
	for _, sp := range tk.open { // close still-open spans at "now"
		sp.End = now
		if sp.Args == "" {
			sp.Args = "open=true"
		} else {
			sp.Args += " open=true"
		}
		spans = append(spans, sp)
	}
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	// Stable insertion-friendly sort by start time.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && spans[order[j]].Start < spans[order[j-1]].Start; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	// Greedy lane assignment: first lane whose last span ended by Start.
	var laneEnd []simclock.Time
	lane := make([]int, len(spans))
	for _, si := range order {
		sp := spans[si]
		placed := -1
		for li, end := range laneEnd {
			if end <= sp.Start {
				placed = li
				break
			}
		}
		if placed < 0 {
			placed = len(laneEnd)
			laneEnd = append(laneEnd, sp.End)
		} else {
			laneEnd[placed] = sp.End
		}
		lane[si] = placed
	}
	lanes := len(laneEnd)
	if lanes == 0 {
		lanes = 1 // instants and samples still need a row
	}
	laneTid := make([]int, lanes)
	for li := 0; li < lanes; li++ {
		tid++
		laneTid[li] = tid
		name := tk.Thread
		if li > 0 {
			name = fmt.Sprintf("%s·%d", tk.Thread, li+1)
		}
		*events = append(*events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	for _, si := range order {
		sp := spans[si]
		ev := chromeEvent{
			Name: sp.Name, Ph: "X", Cat: sp.Cat,
			Ts: micros(sp.Start), Dur: micros(sp.End) - micros(sp.Start),
			Pid: pid, Tid: laneTid[lane[si]],
		}
		if sp.Args != "" {
			ev.Args = map[string]any{"detail": sp.Args}
		}
		*events = append(*events, ev)
	}
	for _, in := range tk.instants {
		ev := chromeEvent{
			Name: in.Name, Ph: "i", Cat: in.Cat, S: "t",
			Ts: micros(in.At), Pid: pid, Tid: laneTid[0],
		}
		if in.Args != "" {
			ev.Args = map[string]any{"detail": in.Args}
		}
		*events = append(*events, ev)
	}
	for _, sm := range tk.samples {
		*events = append(*events, chromeEvent{
			Name: sm.Name, Ph: "C",
			Ts: micros(sm.At), Pid: pid, Tid: laneTid[0],
			Args: map[string]any{"value": sm.Value},
		})
	}
	return tid
}

// JSONStats summarizes a Chrome trace-event document — what the CI
// smoke gate and cmd/tracelint assert on.
type JSONStats struct {
	// Events counts non-metadata trace events.
	Events int
	// Categories counts events per category ("training", "netsim", …).
	Categories map[string]int
	// Processes lists process names in pid order.
	Processes []string
}

// StatsFromJSON parses a document produced by WriteJSON (or any Chrome
// trace-event JSON in object form) and summarizes it.
func StatsFromJSON(data []byte) (*JSONStats, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("trace: invalid chrome trace JSON: %w", err)
	}
	st := &JSONStats{Categories: make(map[string]int)}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			if ev.Name == "process_name" {
				if name, ok := ev.Args["name"].(string); ok {
					st.Processes = append(st.Processes, name)
				}
			}
			continue
		}
		st.Events++
		if ev.Cat != "" {
			st.Categories[ev.Cat]++
		}
	}
	return st, nil
}
