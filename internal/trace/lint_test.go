package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// The regression corpus under testdata/lint: each file's expected
// findings, in the deterministic order Lint promises.
func TestLintCorpus(t *testing.T) {
	cases := map[string][]LintIssue{
		"clean.json": nil,
		"unmatched_end.json": {
			{Code: "unmatched-end", Pid: 1, Tid: 1, Name: "stray"},
		},
		"unclosed_begin.json": {
			{Code: "unclosed-begin", Pid: 1, Tid: 1, Name: "outer"},
		},
		"orphan_counter.json": {
			{Code: "orphan-counter", Pid: 1, Tid: 7, Name: "wasted"},
		},
		"mixed.json": {
			{Code: "unmatched-end", Pid: 1, Tid: 2, Name: "stray"},
			{Code: "orphan-counter", Pid: 2, Tid: 3, Name: "lost"},
			{Code: "unclosed-begin", Pid: 1, Tid: 1, Name: "b"},
		},
	}
	for name, want := range cases {
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", "lint", name))
			if err != nil {
				t.Fatal(err)
			}
			got, err := Lint(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("issues %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("issue %d = %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestLintRejectsInvalidJSON(t *testing.T) {
	if _, err := Lint([]byte("not json")); err == nil {
		t.Fatal("invalid JSON did not error")
	}
}

// Anything WriteJSON emits must lint clean: spans are complete "X"
// events and every lane (including counter-bearing ones) gets
// thread_name metadata.
func TestWriteJSONLintsClean(t *testing.T) {
	tr := NewTracer(nil)
	tk := tr.Track("run", "recovery")
	tk.Span("recovery", "peer", 10, 40)
	tk.Span("recovery", "local", 20, 30) // overlapping: forces a second lane
	tk.InstantAt("failure", "hardware-failed", 10)
	tk.SampleAt("wasted_seconds", 40, 120)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	issues, err := Lint(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Fatalf("WriteJSON output has lint issues: %v", issues)
	}
}

func TestLintIssueString(t *testing.T) {
	is := LintIssue{Code: "orphan-counter", Pid: 2, Tid: 3, Name: "lost"}
	if got := is.String(); got != `orphan-counter: pid 2 tid 3 event "lost"` {
		t.Fatalf("String() = %q", got)
	}
}
