package trace

// This file is the structured half of the observability layer: where Log
// records printf events for tests and humans, the Tracer records spans
// (begin/end with nesting), instants, and counter samples on named tracks
// — enough structure for the Perfetto exporter to render one simulated
// run as a timeline. Tracing is strictly an observer: it reads the clock
// and appends records, never schedules events, so a traced run replays
// bit-identically to an untraced one.
//
// The disabled path is free: a nil *Tracer yields nil *Track handles, and
// every Track method no-ops on a nil receiver without allocating. Hot
// paths therefore call tracing hooks unconditionally with already-built
// arguments; anything that needs formatting checks Enabled() first.

import (
	"fmt"

	"gemini/internal/simclock"
)

// Subsystem categories, used as the `cat` of exported events. The
// tracelint tool and the CI smoke gate count distinct categories.
const (
	CatTraining    = "training"
	CatNetsim      = "netsim"
	CatAgent       = "agent"
	CatChaos       = "chaos"
	CatKVStore     = "kvstore"
	CatExperiments = "experiments"
)

// Span is one completed interval on a track.
type Span struct {
	Name       string
	Cat        string
	Start, End simclock.Time
	// Args is a preformatted "k=v k=v" detail string shown in the
	// Perfetto event pane; empty means no arguments.
	Args string
}

// Instant is a point event on a track.
type Instant struct {
	Name string
	Cat  string
	At   simclock.Time
	Args string
}

// Sample is one counter observation on a track.
type Sample struct {
	Name  string
	At    simclock.Time
	Value float64
}

// Tracer collects the structured trace of one simulated run. It is not
// safe for concurrent use: give each run its own tracer (per-run sinks)
// and merge at export time — WriteJSON accepts several tracers.
//
// A nil *Tracer is the disabled tracer; all methods are safe no-ops.
type Tracer struct {
	now    func() simclock.Time
	tracks []*Track
	index  map[[2]string]*Track
}

// NewTracer creates a tracer reading timestamps from now. A nil now
// records zeros until SetNow installs a clock — convenient when the
// simulation engine is built after the tracer.
func NewTracer(now func() simclock.Time) *Tracer {
	if now == nil {
		now = func() simclock.Time { return 0 }
	}
	return &Tracer{now: now, index: make(map[[2]string]*Track)}
}

// SetNow installs the clock the tracer reads for Begin/End/Instant
// timestamps. Explicit-time methods (Track.Span) are unaffected.
func (t *Tracer) SetNow(now func() simclock.Time) {
	if t == nil || now == nil {
		return
	}
	t.now = now
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Track returns the track named (process, thread), creating it on first
// use. Tracks keep creation order, which fixes the exported pid/tid
// layout deterministically. A nil tracer returns a nil (disabled) track.
func (t *Tracer) Track(process, thread string) *Track {
	if t == nil {
		return nil
	}
	key := [2]string{process, thread}
	if tk, ok := t.index[key]; ok {
		return tk
	}
	tk := &Track{Process: process, Thread: thread, tracer: t}
	t.index[key] = tk
	t.tracks = append(t.tracks, tk)
	return tk
}

// Tracks returns every track in creation order; nil for a nil tracer.
func (t *Tracer) Tracks() []*Track {
	if t == nil {
		return nil
	}
	return t.tracks
}

// Track is one named timeline (a machine's NIC, the root agent, …) a
// subsystem emits onto. A nil *Track is disabled; methods no-op.
type Track struct {
	Process, Thread string

	tracer   *Tracer
	spans    []Span
	open     []Span // LIFO stack of Begin'd, not-yet-End'd spans
	instants []Instant
	samples  []Sample
}

// Enabled reports whether emissions on this track are recorded. Call
// sites that must format arguments guard on this to keep the disabled
// path allocation-free.
func (tk *Track) Enabled() bool { return tk != nil }

// Begin opens a span at the current time. Spans nest LIFO per track:
// End closes the innermost open span.
func (tk *Track) Begin(cat, name string) {
	if tk == nil {
		return
	}
	tk.open = append(tk.open, Span{Name: name, Cat: cat, Start: tk.tracer.now()})
}

// BeginArgs is Begin with a preformatted argument string.
func (tk *Track) BeginArgs(cat, name, args string) {
	if tk == nil {
		return
	}
	tk.open = append(tk.open, Span{Name: name, Cat: cat, Start: tk.tracer.now(), Args: args})
}

// End closes the innermost open span at the current time. Ending with no
// open span panics — it is always a pairing bug.
func (tk *Track) End() {
	if tk == nil {
		return
	}
	n := len(tk.open) - 1
	if n < 0 {
		panic(fmt.Sprintf("trace: End on track %s/%s with no open span", tk.Process, tk.Thread))
	}
	sp := tk.open[n]
	tk.open = tk.open[:n]
	sp.End = tk.tracer.now()
	tk.spans = append(tk.spans, sp)
}

// Span records an already-completed interval with explicit bounds — the
// pattern for producers that only learn a span's extent when it finishes
// (a network flow, a copy). All arguments are plain values, so the
// disabled (nil-receiver) call neither allocates nor boxes.
func (tk *Track) Span(cat, name string, start, end simclock.Time) {
	if tk == nil {
		return
	}
	tk.spans = append(tk.spans, Span{Name: name, Cat: cat, Start: start, End: end})
}

// SpanArgs is Span with a preformatted argument string.
func (tk *Track) SpanArgs(cat, name string, start, end simclock.Time, args string) {
	if tk == nil {
		return
	}
	tk.spans = append(tk.spans, Span{Name: name, Cat: cat, Start: start, End: end, Args: args})
}

// Instant records a point event at the current time.
func (tk *Track) Instant(cat, name string) {
	if tk == nil {
		return
	}
	tk.instants = append(tk.instants, Instant{Name: name, Cat: cat, At: tk.tracer.now()})
}

// InstantArgs is Instant with a preformatted argument string.
func (tk *Track) InstantArgs(cat, name, args string) {
	if tk == nil {
		return
	}
	tk.instants = append(tk.instants, Instant{Name: name, Cat: cat, At: tk.tracer.now(), Args: args})
}

// InstantAt records a point event with an explicit timestamp — for
// producers that walk precomputed event lists (runsim) rather than a
// live clock.
func (tk *Track) InstantAt(cat, name string, at simclock.Time) {
	if tk == nil {
		return
	}
	tk.instants = append(tk.instants, Instant{Name: name, Cat: cat, At: at})
}

// InstantArgsAt is InstantAt with a preformatted argument string.
func (tk *Track) InstantArgsAt(cat, name string, at simclock.Time, args string) {
	if tk == nil {
		return
	}
	tk.instants = append(tk.instants, Instant{Name: name, Cat: cat, At: at, Args: args})
}

// Sample records a counter observation at the current time; exported as
// a Perfetto counter track.
func (tk *Track) Sample(name string, value float64) {
	if tk == nil {
		return
	}
	tk.samples = append(tk.samples, Sample{Name: name, At: tk.tracer.now(), Value: value})
}

// SampleAt is Sample with an explicit timestamp.
func (tk *Track) SampleAt(name string, at simclock.Time, value float64) {
	if tk == nil {
		return
	}
	tk.samples = append(tk.samples, Sample{Name: name, At: at, Value: value})
}

// Spans returns the completed spans in completion order.
func (tk *Track) Spans() []Span {
	if tk == nil {
		return nil
	}
	return tk.spans
}

// OpenSpans returns the number of Begin'd spans not yet ended.
func (tk *Track) OpenSpans() int {
	if tk == nil {
		return 0
	}
	return len(tk.open)
}

// Instants returns the recorded point events in order.
func (tk *Track) Instants() []Instant {
	if tk == nil {
		return nil
	}
	return tk.instants
}

// Samples returns the recorded counter samples in order.
func (tk *Track) Samples() []Sample {
	if tk == nil {
		return nil
	}
	return tk.samples
}
