package trace

// Structural lint for Chrome trace-event JSON. WriteJSON itself cannot
// produce these defects (it emits only complete "X" events and names
// every lane), but traces also arrive from hand-built corpora and from
// refactors of the exporter — cmd/tracelint gates both, and the flight
// recorder's outlier traces pass through it in CI.

import (
	"encoding/json"
	"fmt"
)

// LintIssue is one structural defect in a trace document.
type LintIssue struct {
	// Code identifies the defect class: "unmatched-end" (an "E" with no
	// open "B" on its thread), "unclosed-begin" (a "B" never ended), or
	// "orphan-counter" (a "C" event on a thread with no thread_name
	// metadata — Perfetto renders such counters detached from any named
	// track).
	Code     string
	Pid, Tid int
	// Name is the offending event's name (the begin name for
	// unclosed-begin, the counter name for orphan-counter).
	Name string
}

func (i LintIssue) String() string {
	return fmt.Sprintf("%s: pid %d tid %d event %q", i.Code, i.Pid, i.Tid, i.Name)
}

// Lint checks a Chrome trace-event document (object form, as WriteJSON
// produces) for unbalanced Begin/End span nesting and counter events on
// unnamed threads. Issues come back in deterministic order: document
// order for unmatched ends and orphan counters (one per thread+name),
// then still-open begins in document order of their "B" events. An
// empty slice means the trace is clean.
func Lint(data []byte) ([]LintIssue, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("trace: invalid chrome trace JSON: %w", err)
	}
	type threadKey struct{ pid, tid int }
	type openBegin struct {
		key  threadKey
		name string
	}
	var issues []LintIssue
	stacks := make(map[threadKey][]int) // per-thread LIFO of begin indices
	named := make(map[threadKey]bool)
	seenOrphan := make(map[string]bool) // "pid/tid/name" dedupe for counters
	var begins []openBegin              // every B in document order

	for _, ev := range doc.TraceEvents {
		key := threadKey{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				named[key] = true
			}
		case "B":
			stacks[key] = append(stacks[key], len(begins))
			begins = append(begins, openBegin{key, ev.Name})
		case "E":
			st := stacks[key]
			if len(st) == 0 {
				issues = append(issues, LintIssue{Code: "unmatched-end", Pid: ev.Pid, Tid: ev.Tid, Name: ev.Name})
				continue
			}
			stacks[key] = st[:len(st)-1]
		case "C":
			if !named[key] {
				id := fmt.Sprintf("%d/%d/%s", ev.Pid, ev.Tid, ev.Name)
				if !seenOrphan[id] {
					seenOrphan[id] = true
					issues = append(issues, LintIssue{Code: "orphan-counter", Pid: ev.Pid, Tid: ev.Tid, Name: ev.Name})
				}
			}
		}
	}
	// Surviving stack entries are exactly the never-ended begins; report
	// them in document order of their "B" events.
	unclosed := make(map[int]bool)
	for _, st := range stacks {
		for _, bi := range st {
			unclosed[bi] = true
		}
	}
	for bi, b := range begins {
		if unclosed[bi] {
			issues = append(issues, LintIssue{Code: "unclosed-begin", Pid: b.key.pid, Tid: b.key.tid, Name: b.name})
		}
	}
	return issues, nil
}
