package trace

import (
	"strings"
	"testing"

	"gemini/internal/simclock"
)

func TestLogRecordsInOrder(t *testing.T) {
	now := simclock.Time(0)
	l := NewLog(func() simclock.Time { return now })
	l.Add("a", "start", "begin %d", 1)
	now = 5
	l.Add("b", "step", "middle")
	now = 9
	l.Add("a", "start", "begin %d", 2)
	if l.Len() != 3 {
		t.Fatalf("len %d, want 3", l.Len())
	}
	starts := l.Filter("start")
	if len(starts) != 2 || starts[0].Detail != "begin 1" || starts[1].Detail != "begin 2" {
		t.Fatalf("Filter = %+v", starts)
	}
	last, ok := l.Last("start")
	if !ok || last.At != 9 {
		t.Fatalf("Last = %+v %v", last, ok)
	}
	if _, ok := l.Last("absent"); ok {
		t.Fatal("Last invented an event")
	}
}

func TestLogWriteTo(t *testing.T) {
	l := NewLog(nil)
	l.Add("subj", "kind", "detail here")
	var b strings.Builder
	if _, err := l.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"subj", "kind", "detail here"} {
		if !strings.Contains(out, want) {
			t.Errorf("output %q missing %q", out, want)
		}
	}
	if len(l.Events()) != 1 {
		t.Fatal("Events length wrong")
	}
}
