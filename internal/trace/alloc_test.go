//go:build !race

package trace

import "testing"

// The whole point of the nil-receiver design is that instrumented hot
// paths (fabric finishFlow, executor compute callbacks, agent recovery)
// cost nothing when tracing is off. Pin it: every disabled emission must
// allocate exactly 0 bytes. Mirrors netsim/alloc_test.go; skipped under
// -race because the race runtime instruments allocation.
func TestDisabledTracingAllocsZero(t *testing.T) {
	var tr *Tracer
	tk := tr.Track("machine-0", "nic")
	cases := []struct {
		name string
		fn   func()
	}{
		{"Span", func() { tk.Span(CatNetsim, "flow", 1, 2) }},
		{"SpanArgs", func() { tk.SpanArgs(CatNetsim, "flow", 1, 2, "state=done") }},
		{"BeginEnd", func() { tk.Begin(CatAgent, "phase"); tk.End() }},
		{"Instant", func() { tk.Instant(CatChaos, "crash") }},
		{"InstantArgs", func() { tk.InstantArgs(CatChaos, "crash", "rank=3") }},
		{"Sample", func() { tk.Sample("active", 7) }},
		{"Track", func() { _ = tr.Track("machine-1", "nic") }},
		{"Enabled", func() { _ = tk.Enabled() }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(200, c.fn); n != 0 {
			t.Errorf("disabled %s allocates %.1f bytes/op, want 0", c.name, n)
		}
	}
}
