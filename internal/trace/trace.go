// Package trace is a lightweight structured event log for the simulator:
// every subsystem appends timestamped events, and tests and tools inspect
// or print them. It deliberately has no levels or sinks — the simulator
// is deterministic, so the trace is a complete, replayable account.
package trace

import (
	"fmt"
	"io"
	"strings"

	"gemini/internal/simclock"
)

// Event is one recorded occurrence.
type Event struct {
	At      simclock.Time
	Subject string // e.g. "root-agent", "worker-3"
	Kind    string // e.g. "failure-detected", "recovery-complete"
	Detail  string
}

func (e Event) String() string {
	return fmt.Sprintf("%12s  %-12s %-20s %s", e.At, e.Subject, e.Kind, e.Detail)
}

// Log accumulates events in order of insertion (the simulator fires
// callbacks in time order, so insertion order is time order).
//
// By default the log is unbounded — the complete-account guarantee tests
// rely on. Long soak runs (geminisim -days 365) can bound it with SetCap,
// which turns the backing slice into a ring that keeps the newest events
// and counts the evicted ones.
type Log struct {
	now    func() simclock.Time
	events []Event
	cap    int    // 0 = unbounded
	head   int    // index of the oldest event once the ring has wrapped
	dropped uint64
}

// NewLog creates a log reading timestamps from now; nil records zeros.
func NewLog(now func() simclock.Time) *Log {
	if now == nil {
		now = func() simclock.Time { return 0 }
	}
	return &Log{now: now}
}

// SetCap bounds the log at n events; once full, each Add evicts the
// oldest event and bumps Dropped. n <= 0 restores the unbounded default.
// If more than n events are already recorded, the oldest are dropped now.
func (l *Log) SetCap(n int) {
	// Normalize to a flat, oldest-first slice before changing geometry.
	l.events = l.snapshot()
	l.head = 0
	if n <= 0 {
		l.cap = 0
		return
	}
	l.cap = n
	if excess := len(l.events) - n; excess > 0 {
		l.dropped += uint64(excess)
		l.events = append(l.events[:0], l.events[excess:]...)
	}
}

// Dropped returns how many events have been evicted by the cap.
func (l *Log) Dropped() uint64 { return l.dropped }

// Add records an event at the current time. Detail follows Sprintf rules.
func (l *Log) Add(subject, kind, format string, args ...any) {
	ev := Event{
		At:      l.now(),
		Subject: subject,
		Kind:    kind,
		Detail:  fmt.Sprintf(format, args...),
	}
	if l.cap > 0 && len(l.events) == l.cap {
		l.events[l.head] = ev
		l.head++
		if l.head == l.cap {
			l.head = 0
		}
		l.dropped++
		return
	}
	l.events = append(l.events, ev)
}

// at returns the i-th oldest retained event.
func (l *Log) at(i int) Event {
	if l.head > 0 {
		i += l.head
		if i >= len(l.events) {
			i -= len(l.events)
		}
	}
	return l.events[i]
}

// snapshot returns the retained events oldest-first. When the ring has
// wrapped this is a fresh copy; otherwise it is the backing slice.
func (l *Log) snapshot() []Event {
	if l.head == 0 {
		return l.events
	}
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.head:]...)
	out = append(out, l.events[:l.head]...)
	return out
}

// Events returns all retained events, oldest first.
func (l *Log) Events() []Event { return l.snapshot() }

// Len returns the number of retained events.
func (l *Log) Len() int { return len(l.events) }

// Filter returns events whose kind matches exactly.
func (l *Log) Filter(kind string) []Event {
	var out []Event
	for i := 0; i < len(l.events); i++ {
		if e := l.at(i); e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Last returns the most recent event of the given kind, if any.
func (l *Log) Last(kind string) (Event, bool) {
	for i := len(l.events) - 1; i >= 0; i-- {
		if e := l.at(i); e.Kind == kind {
			return e, true
		}
	}
	return Event{}, false
}

// WriteTo dumps the log in a human-readable table.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for i := 0; i < len(l.events); i++ {
		b.WriteString(l.at(i).String())
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
