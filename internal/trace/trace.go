// Package trace is a lightweight structured event log for the simulator:
// every subsystem appends timestamped events, and tests and tools inspect
// or print them. It deliberately has no levels or sinks — the simulator
// is deterministic, so the trace is a complete, replayable account.
package trace

import (
	"fmt"
	"io"
	"strings"

	"gemini/internal/simclock"
)

// Event is one recorded occurrence.
type Event struct {
	At      simclock.Time
	Subject string // e.g. "root-agent", "worker-3"
	Kind    string // e.g. "failure-detected", "recovery-complete"
	Detail  string
}

func (e Event) String() string {
	return fmt.Sprintf("%12s  %-12s %-20s %s", e.At, e.Subject, e.Kind, e.Detail)
}

// Log accumulates events in order of insertion (the simulator fires
// callbacks in time order, so insertion order is time order).
type Log struct {
	now    func() simclock.Time
	events []Event
}

// NewLog creates a log reading timestamps from now; nil records zeros.
func NewLog(now func() simclock.Time) *Log {
	if now == nil {
		now = func() simclock.Time { return 0 }
	}
	return &Log{now: now}
}

// Add records an event at the current time. Detail follows Sprintf rules.
func (l *Log) Add(subject, kind, format string, args ...any) {
	l.events = append(l.events, Event{
		At:      l.now(),
		Subject: subject,
		Kind:    kind,
		Detail:  fmt.Sprintf(format, args...),
	})
}

// Events returns all recorded events.
func (l *Log) Events() []Event { return l.events }

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Filter returns events whose kind matches exactly.
func (l *Log) Filter(kind string) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Last returns the most recent event of the given kind, if any.
func (l *Log) Last(kind string) (Event, bool) {
	for i := len(l.events) - 1; i >= 0; i-- {
		if l.events[i].Kind == kind {
			return l.events[i], true
		}
	}
	return Event{}, false
}

// WriteTo dumps the log in a human-readable table.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, e := range l.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
