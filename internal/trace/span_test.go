package trace

import (
	"bytes"
	"strings"
	"testing"

	"gemini/internal/simclock"
)

func TestTracerNilIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer claims enabled")
	}
	tk := tr.Track("p", "t")
	if tk != nil {
		t.Fatal("nil tracer returned a live track")
	}
	if tk.Enabled() {
		t.Fatal("nil track claims enabled")
	}
	// Every emission must be a safe no-op.
	tk.Begin(CatAgent, "x")
	tk.BeginArgs(CatAgent, "x", "a=1")
	tk.End()
	tk.Span(CatNetsim, "flow", 1, 2)
	tk.SpanArgs(CatNetsim, "flow", 1, 2, "a=1")
	tk.Instant(CatChaos, "crash")
	tk.InstantArgs(CatChaos, "crash", "rank=3")
	tk.Sample("active", 4)
	if tk.Spans() != nil || tk.Instants() != nil || tk.Samples() != nil || tk.OpenSpans() != 0 {
		t.Fatal("nil track recorded something")
	}
	if tr.Tracks() != nil {
		t.Fatal("nil tracer has tracks")
	}
	tr.SetNow(func() simclock.Time { return 1 }) // must not panic
}

func TestSpanNestingLIFO(t *testing.T) {
	now := simclock.Time(0)
	tr := NewTracer(func() simclock.Time { return now })
	tk := tr.Track("machine-0", "agent")
	tk.Begin(CatAgent, "outer")
	now = 1
	tk.BeginArgs(CatAgent, "inner", "k=v")
	now = 2
	tk.End() // closes inner
	now = 5
	tk.End() // closes outer
	spans := tk.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	inner, outer := spans[0], spans[1]
	if inner.Name != "inner" || inner.Start != 1 || inner.End != 2 || inner.Args != "k=v" {
		t.Fatalf("inner = %+v", inner)
	}
	if outer.Name != "outer" || outer.Start != 0 || outer.End != 5 {
		t.Fatalf("outer = %+v", outer)
	}
	if tk.OpenSpans() != 0 {
		t.Fatalf("OpenSpans = %d after balanced End", tk.OpenSpans())
	}
}

func TestEndWithoutBeginPanics(t *testing.T) {
	tr := NewTracer(nil)
	tk := tr.Track("p", "t")
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("unbalanced End did not panic")
		}
	}()
	tk.End()
}

func TestTrackRegistryDeduplicates(t *testing.T) {
	tr := NewTracer(nil)
	a := tr.Track("m0", "nic")
	b := tr.Track("m1", "nic")
	c := tr.Track("m0", "nic")
	if a != c {
		t.Fatal("same (process, thread) returned distinct tracks")
	}
	if a == b {
		t.Fatal("distinct processes shared a track")
	}
	tracks := tr.Tracks()
	if len(tracks) != 2 || tracks[0] != a || tracks[1] != b {
		t.Fatalf("Tracks() = %v, want creation order [a b]", tracks)
	}
}

func TestSetNowInstallsClockLate(t *testing.T) {
	tr := NewTracer(nil)
	tk := tr.Track("p", "t")
	tk.Instant(CatKVStore, "before")
	now := simclock.Time(42)
	tr.SetNow(func() simclock.Time { return now })
	tk.Instant(CatKVStore, "after")
	ins := tk.Instants()
	if ins[0].At != 0 || ins[1].At != 42 {
		t.Fatalf("instants = %+v", ins)
	}
}

func TestWriteJSONLaneLayout(t *testing.T) {
	tr := NewTracer(nil)
	nic := tr.Track("machine-0", "nic")
	// Two overlapping flows plus one that fits back on lane 0.
	nic.Span(CatNetsim, "flowA", 0, 10)
	nic.Span(CatNetsim, "flowB", 5, 12)
	nic.Span(CatNetsim, "flowC", 10, 15)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	st, err := StatsFromJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 3 || st.Categories[CatNetsim] != 3 {
		t.Fatalf("stats = %+v", st)
	}
	out := buf.String()
	// Overlap forces a second lane, named after the base thread.
	if !strings.Contains(out, "nic·2") {
		t.Fatalf("no second lane in output:\n%s", out)
	}
	if strings.Contains(out, "nic·3") {
		t.Fatalf("flowC should reuse lane 0, not open a third lane:\n%s", out)
	}
}

func TestWriteJSONMergesTracersAndClosesOpenSpans(t *testing.T) {
	now := simclock.Time(0)
	a := NewTracer(func() simclock.Time { return now })
	a.Track("cluster", "iteration").Begin(CatTraining, "iter0")
	now = 7 // export-time clock: the open span closes here

	b := NewTracer(nil)
	b.Track("control-plane", "root").Instant(CatKVStore, "elected")

	var buf bytes.Buffer
	if err := WriteJSON(&buf, a, nil, b); err != nil {
		t.Fatal(err)
	}
	st, err := StatsFromJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 2 {
		t.Fatalf("events = %d, want 2", st.Events)
	}
	wantProcs := []string{"cluster", "control-plane"}
	if len(st.Processes) != 2 || st.Processes[0] != wantProcs[0] || st.Processes[1] != wantProcs[1] {
		t.Fatalf("processes = %v, want %v", st.Processes, wantProcs)
	}
	if !strings.Contains(buf.String(), "open=true") {
		t.Fatal("open span not tagged open=true at export")
	}
	if !strings.Contains(buf.String(), `"dur":7000000`) {
		t.Fatalf("open span not closed at now=7s:\n%s", buf.String())
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := StatsFromJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 0 {
		t.Fatalf("events = %d, want 0", st.Events)
	}
}

func TestStatsFromJSONRejectsGarbage(t *testing.T) {
	if _, err := StatsFromJSON([]byte("{not json")); err == nil {
		t.Fatal("garbage parsed")
	}
}

func TestSamplesExportAsCounters(t *testing.T) {
	now := simclock.Time(3)
	tr := NewTracer(func() simclock.Time { return now })
	tk := tr.Track("cluster", "stats")
	tk.Sample("active-flows", 12)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"ph":"C"`) || !strings.Contains(out, `"value":12`) {
		t.Fatalf("counter sample missing:\n%s", out)
	}
}

func TestLogRingCap(t *testing.T) {
	now := simclock.Time(0)
	l := NewLog(func() simclock.Time { return now })
	l.SetCap(3)
	for i := 0; i < 5; i++ {
		now = simclock.Time(i)
		l.Add("s", "tick", "n=%d", i)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if l.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", l.Dropped())
	}
	evs := l.Events()
	for i, want := range []string{"n=2", "n=3", "n=4"} {
		if evs[i].Detail != want {
			t.Fatalf("Events[%d] = %+v, want detail %s (full: %+v)", i, evs[i], want, evs)
		}
	}
	// Ordered iteration must hold for the other accessors too.
	if got := l.Filter("tick"); len(got) != 3 || got[0].Detail != "n=2" {
		t.Fatalf("Filter = %+v", got)
	}
	if last, ok := l.Last("tick"); !ok || last.Detail != "n=4" {
		t.Fatalf("Last = %+v %v", last, ok)
	}
	var b strings.Builder
	if _, err := l.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if out := b.String(); strings.Index(out, "n=2") > strings.Index(out, "n=4") {
		t.Fatalf("WriteTo out of order:\n%s", out)
	}
}

func TestLogSetCapMidStream(t *testing.T) {
	l := NewLog(nil)
	for i := 0; i < 10; i++ {
		l.Add("s", "tick", "n=%d", i)
	}
	l.SetCap(4) // drops the 6 oldest immediately
	if l.Len() != 4 || l.Dropped() != 6 {
		t.Fatalf("Len=%d Dropped=%d, want 4/6", l.Len(), l.Dropped())
	}
	if evs := l.Events(); evs[0].Detail != "n=6" || evs[3].Detail != "n=9" {
		t.Fatalf("Events = %+v", evs)
	}
	// Growing the cap keeps retained events; shrinking to 0 unbounds.
	l.SetCap(0)
	for i := 10; i < 20; i++ {
		l.Add("s", "tick", "n=%d", i)
	}
	if l.Len() != 14 || l.Dropped() != 6 {
		t.Fatalf("after unbound: Len=%d Dropped=%d", l.Len(), l.Dropped())
	}
	if evs := l.Events(); evs[0].Detail != "n=6" || evs[13].Detail != "n=19" {
		t.Fatalf("after unbound: Events = %+v", evs)
	}
}

func TestLogUncappedUnchanged(t *testing.T) {
	l := NewLog(nil)
	for i := 0; i < 100; i++ {
		l.Add("s", "tick", "n=%d", i)
	}
	if l.Len() != 100 || l.Dropped() != 0 {
		t.Fatalf("unbounded log dropped events: Len=%d Dropped=%d", l.Len(), l.Dropped())
	}
}
