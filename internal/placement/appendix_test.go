package placement

// Numerical verification of the paper's appendices: the proof of
// Theorem 1 (Appendix A) argues through the count n of unique replica
// sets and a probability upper bound; Corollary 1 (Appendix B) counts
// failure combinations. These tests check each intermediate claim, not
// just the final statements.

import (
	"math"
	"testing"
)

// uniqueReplicaSets counts |S'| = |unique({s_1, …, s_N})| — the n of
// Appendix A.
func uniqueReplicaSets(p *Placement) int {
	seen := make(map[string]bool)
	for i := 0; i < p.N; i++ {
		key := ""
		for _, r := range p.Replicas(i) {
			key += string(rune(r)) + ","
		}
		seen[key] = true
	}
	return len(seen)
}

func TestAppendixAUniqueSetCounts(t *testing.T) {
	// Group placement: N/m unique sets (each group shares one set).
	for _, c := range []struct{ n, m int }{{4, 2}, {16, 2}, {12, 3}} {
		p, err := Group(c.n, c.m)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := uniqueReplicaSets(p), c.n/c.m; got != want {
			t.Errorf("group N=%d m=%d: %d unique sets, want %d", c.n, c.m, got, want)
		}
	}
	// Ring placement: N unique sets (each machine's window is distinct).
	for _, c := range []struct{ n, m int }{{4, 2}, {16, 2}, {9, 3}} {
		p, err := Ring(c.n, c.m)
		if err != nil {
			t.Fatal(err)
		}
		if got := uniqueReplicaSets(p); got != c.n {
			t.Errorf("ring N=%d m=%d: %d unique sets, want %d", c.n, c.m, got, c.n)
		}
	}
	// Mixed placement with m ∤ N: N − (m−1)(⌊N/m⌋ − 1) unique sets
	// (Appendix A's count: ⌊N/m⌋−1 full groups contribute one set each,
	// the trailing ring of N − m(⌊N/m⌋−1) machines one set each).
	for _, c := range []struct{ n, m int }{{5, 2}, {7, 2}, {7, 3}, {11, 3}} {
		p := MustMixed(c.n, c.m)
		want := c.n - (c.m-1)*(c.n/c.m-1)
		if got := uniqueReplicaSets(p); got != want {
			t.Errorf("mixed N=%d m=%d: %d unique sets, want %d", c.n, c.m, got, want)
		}
	}
}

// Appendix A: for k = m, the loss probability is n/C(N,m), linear in the
// number of unique sets — verified against enumeration for group and
// ring.
func TestAppendixALossLinearInUniqueSets(t *testing.T) {
	for _, c := range []struct{ n, m int }{{6, 2}, {8, 2}, {9, 3}, {12, 3}} {
		for _, build := range []func(int, int) (*Placement, error){Ring, Mixed} {
			p, err := build(c.n, c.m)
			if err != nil {
				t.Fatal(err)
			}
			nSets := uniqueReplicaSets(p)
			wantLoss := float64(nSets) / binomial(c.n, c.m)
			gotLoss := 1 - BitmaskProbability(p, c.m)
			if math.Abs(gotLoss-wantLoss) > 1e-12 {
				t.Errorf("%v N=%d m=%d: loss %v, want n/C(N,m) = %v", p.Kind, c.n, c.m, gotLoss, wantLoss)
			}
		}
	}
}

// Appendix A's probability upper bound: n ≥ ⌈N/m⌉, so the recovery
// probability at k=m is at most 1 − ⌈N/m⌉/C(N,m). Every strategy must
// respect it; the group strategy must attain it when m | N.
func TestAppendixAUpperBound(t *testing.T) {
	for _, c := range []struct{ n, m int }{{4, 2}, {6, 2}, {6, 3}, {8, 2}, {9, 3}, {5, 2}, {7, 3}} {
		upper := 1 - math.Ceil(float64(c.n)/float64(c.m))/binomial(c.n, c.m)
		for _, build := range []func(int, int) (*Placement, error){Mixed, Ring} {
			p, err := build(c.n, c.m)
			if err != nil {
				t.Fatal(err)
			}
			if got := BitmaskProbability(p, c.m); got > upper+1e-12 {
				t.Errorf("%v N=%d m=%d: probability %v exceeds upper bound %v", p.Kind, c.n, c.m, got, upper)
			}
		}
		if c.n%c.m == 0 {
			p, err := Group(c.n, c.m)
			if err != nil {
				t.Fatal(err)
			}
			if got := BitmaskProbability(p, c.m); math.Abs(got-upper) > 1e-12 {
				t.Errorf("group N=%d m=%d: probability %v does not attain the bound %v", c.n, c.m, got, upper)
			}
		}
	}
}

// Appendix B, case m ≤ k < 2m: the count of losing combinations is
// exactly (N/m)·C(N−m, k−m) — no double counting is possible because two
// whole groups cannot both fit in fewer than 2m failures.
func TestAppendixBExactCountSmallK(t *testing.T) {
	for _, c := range []struct{ n, m, k int }{{8, 2, 2}, {8, 2, 3}, {12, 3, 3}, {12, 3, 5}, {12, 4, 7}} {
		p, err := Group(c.n, c.m)
		if err != nil {
			t.Fatal(err)
		}
		losing := 0.0
		total := binomial(c.n, c.k)
		losing = (1 - BitmaskProbability(p, c.k)) * total
		want := float64(c.n) / float64(c.m) * binomial(c.n-c.m, c.k-c.m)
		if math.Abs(losing-want) > 1e-6 {
			t.Errorf("N=%d m=%d k=%d: %v losing sets, want (N/m)·C(N−m,k−m) = %v",
				c.n, c.m, c.k, losing, want)
		}
	}
}

// Appendix B, case k ≥ 2m: the same expression over-counts (sets
// containing two whole groups are counted twice), so the true number of
// losing combinations is strictly smaller when two groups can fail.
func TestAppendixBOvercountLargeK(t *testing.T) {
	for _, c := range []struct{ n, m, k int }{{8, 2, 4}, {8, 2, 5}, {12, 2, 6}, {12, 3, 6}} {
		p, err := Group(c.n, c.m)
		if err != nil {
			t.Fatal(err)
		}
		total := binomial(c.n, c.k)
		losing := (1 - BitmaskProbability(p, c.k)) * total
		bound := float64(c.n) / float64(c.m) * binomial(c.n-c.m, c.k-c.m)
		if losing >= bound {
			t.Errorf("N=%d m=%d k=%d: losing %v not below the over-count %v", c.n, c.m, c.k, losing, bound)
		}
	}
}

// ExactProbability (map-based) and BitmaskProbability (bitmask-based)
// must agree everywhere they both apply.
func TestEnumerationImplementationsAgree(t *testing.T) {
	for _, c := range []struct{ n, m, k int }{{5, 2, 2}, {6, 2, 3}, {7, 3, 3}, {8, 2, 4}} {
		p := MustMixed(c.n, c.m)
		a := ExactProbability(p, c.k)
		b := BitmaskProbability(p, c.k)
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("N=%d m=%d k=%d: map %v != bitmask %v", c.n, c.m, c.k, a, b)
		}
	}
}

// The Theorem 1 gap bound (2m−3)/C(N,m) must always dominate the actual
// optimum-vs-mixed gap on exhaustively searchable instances, including
// m=3 cases.
func TestTheorem1GapAcrossInstances(t *testing.T) {
	for _, c := range []struct{ n, m int }{{5, 2}, {7, 2}, {4, 3}, {5, 3}} {
		if c.n%c.m == 0 {
			continue
		}
		mixed := BitmaskProbability(MustMixed(c.n, c.m), c.m)
		best := OptimalProbability(c.n, c.m, c.m)
		if gap, bound := best-mixed, Theorem1Gap(c.n, c.m); gap > bound+1e-12 {
			t.Errorf("N=%d m=%d: gap %v exceeds bound %v", c.n, c.m, gap, bound)
		}
	}
}
