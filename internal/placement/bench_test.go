package placement

import (
	"fmt"
	"testing"
)

func BenchmarkMixedConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Mixed(1000, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBitmaskProbabilityN16K3(b *testing.B) {
	p := MustMixed(16, 2)
	for i := 0; i < b.N; i++ {
		_ = BitmaskProbability(p, 3)
	}
}

func BenchmarkMonteCarloN1000(b *testing.B) {
	p := MustMixed(1000, 2)
	for i := 0; i < b.N; i++ {
		_ = MonteCarlo(p, 3, 10_000, 1)
	}
}

// BenchmarkMonteCarloWorkers sweeps the worker count on a large trial
// budget — the parallel-speedup headline for EXPERIMENTS.md. Every
// variant computes the identical estimate (see determinism_test.go);
// only the wall clock changes.
func BenchmarkMonteCarloWorkers(b *testing.B) {
	p := MustMixed(1000, 2)
	const trials = 200_000
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = MonteCarloWorkers(p, 3, trials, 1, workers)
			}
		})
	}
}

// BenchmarkMonteCarloN10000 is the acceptance benchmark for the bitset
// kernel at the ROADMAP's next scale target: N=10000, m=4, k=8, 10k
// trials on one worker. The seed's map-based O(N)-per-trial kernel ran
// this at ≈1.09 s/op; the O(k·m) SurvivesFailed kernel must be ≥20×
// faster with bit-identical estimates (TestMonteCarloPinnedLargeN).
func BenchmarkMonteCarloN10000(b *testing.B) {
	p := MustMixed(10000, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MonteCarloWorkers(p, 8, 10_000, 1, 1)
	}
}

// BenchmarkMonteCarloN50000 stretches the kernel to 50k machines (seed:
// ≈4.28 s/op for the same trial budget).
func BenchmarkMonteCarloN50000(b *testing.B) {
	p := MustMixed(50000, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MonteCarloWorkers(p, 8, 10_000, 1, 1)
	}
}

// BenchmarkSurvivesFailed isolates one kernel probe: k=8 failed ranks on
// a 10k-machine group placement, O(k·m) replica reads and bitset tests.
func BenchmarkSurvivesFailed(b *testing.B) {
	p := MustMixed(10000, 4)
	set := NewFailSet(p.N)
	failed := make([]int, 0, 8)
	for i := 0; i < 8; i++ {
		rank := i * 1237
		set.Set(rank)
		failed = append(failed, rank)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.SurvivesFailed(failed, set)
	}
}

func BenchmarkCorollary1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Corollary1(1024, 2, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingExactDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RingExact(128, 2, 8); err != nil {
			b.Fatal(err)
		}
	}
}
