package placement

import "testing"

func BenchmarkMixedConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Mixed(1000, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBitmaskProbabilityN16K3(b *testing.B) {
	p := MustMixed(16, 2)
	for i := 0; i < b.N; i++ {
		_ = BitmaskProbability(p, 3)
	}
}

func BenchmarkMonteCarloN1000(b *testing.B) {
	p := MustMixed(1000, 2)
	for i := 0; i < b.N; i++ {
		_ = MonteCarlo(p, 3, 10_000, 1)
	}
}

func BenchmarkCorollary1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Corollary1(1024, 2, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingExactDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RingExact(128, 2, 8); err != nil {
			b.Fatal(err)
		}
	}
}
