package placement

import (
	"fmt"
	"testing"
)

func BenchmarkMixedConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Mixed(1000, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBitmaskProbabilityN16K3(b *testing.B) {
	p := MustMixed(16, 2)
	for i := 0; i < b.N; i++ {
		_ = BitmaskProbability(p, 3)
	}
}

func BenchmarkMonteCarloN1000(b *testing.B) {
	p := MustMixed(1000, 2)
	for i := 0; i < b.N; i++ {
		_ = MonteCarlo(p, 3, 10_000, 1)
	}
}

// BenchmarkMonteCarloWorkers sweeps the worker count on a large trial
// budget — the parallel-speedup headline for EXPERIMENTS.md. Every
// variant computes the identical estimate (see determinism_test.go);
// only the wall clock changes.
func BenchmarkMonteCarloWorkers(b *testing.B) {
	p := MustMixed(1000, 2)
	const trials = 200_000
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = MonteCarloWorkers(p, 3, trials, 1, workers)
			}
		})
	}
}

func BenchmarkCorollary1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Corollary1(1024, 2, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingExactDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RingExact(128, 2, 8); err != nil {
			b.Fatal(err)
		}
	}
}
