// Package placement implements GEMINI's checkpoint placement strategies
// (§4): given N machines and m checkpoint replicas, decide which machines
// hold each machine's checkpoint so that the probability of recovering
// from CPU memory under simultaneous failures is maximized.
//
// The package provides Algorithm 1 (the mixed group/ring strategy), the
// pure group and ring strategies it composes, the closed-form recovery
// probability of Corollary 1, exact probabilities by enumeration and by
// dynamic programming, a Monte-Carlo estimator for large clusters, and an
// exhaustive optimality checker used to validate Theorem 1 on small
// instances.
package placement

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"

	"gemini/internal/parallel"
)

// Kind names a placement strategy.
type Kind string

const (
	// KindGroup is the pure group strategy: machines are partitioned into
	// groups of exactly m, and every member replicates to the whole group.
	KindGroup Kind = "group"
	// KindRing is the pure ring strategy: machine i replicates to itself
	// and its next m−1 ring successors.
	KindRing Kind = "ring"
	// KindMixed is Algorithm 1's output when m does not divide N: group
	// placement for the first ⌊N/m⌋−1 groups and a ring over the rest.
	KindMixed Kind = "mixed"
)

// Placement is a concrete replica assignment: for every machine rank, the
// set of ranks that hold a copy of its checkpoint. Every replica set
// includes the owner itself (the local replica, one tier of GEMINI's
// hierarchical storage).
//
// All N replica sets (each exactly M ranks, sorted) live in one
// contiguous backing array: rank i's set is flat[i*M : (i+1)*M]. The flat
// layout is a single allocation per placement and keeps the survival
// kernel's probes on sequential cache lines.
type Placement struct {
	N, M   int
	Kind   Kind
	Groups [][]int // diagnostic grouping, as Algorithm 1 reports it
	flat   []int   // flat[i*M:(i+1)*M] = sorted ranks holding rank i's checkpoint
}

// newPlacement allocates a placement's flat replica storage in one shot.
func newPlacement(n, m int, kind Kind) *Placement {
	return &Placement{N: n, M: m, Kind: kind, flat: make([]int, n*m)}
}

// replicaSet returns rank's replica set without bounds checking — the
// kernel-internal accessor.
func (p *Placement) replicaSet(rank int) []int {
	return p.flat[rank*p.M : (rank+1)*p.M]
}

// Replicas returns the ranks storing machine rank's checkpoint, in
// ascending order, always including rank itself. The returned slice
// aliases the placement's backing array with capacity clamped to its
// length; callers must not modify it.
func (p *Placement) Replicas(rank int) []int {
	if rank < 0 || rank >= p.N {
		panic(fmt.Sprintf("placement: rank %d out of range [0,%d)", rank, p.N))
	}
	return p.flat[rank*p.M : (rank+1)*p.M : (rank+1)*p.M]
}

// Stores returns the ranks whose checkpoints machine rank holds (the
// inverse of Replicas), in ascending order.
func (p *Placement) Stores(rank int) []int {
	if rank < 0 || rank >= p.N {
		panic(fmt.Sprintf("placement: rank %d out of range [0,%d)", rank, p.N))
	}
	var out []int
	for owner := 0; owner < p.N; owner++ {
		for _, r := range p.replicaSet(owner) {
			if r == rank {
				out = append(out, owner)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// PeersOf returns the remote ranks machine rank must send its checkpoint
// to: its replica set minus itself. Its length is always m−1 for the
// strategies in this package (the communication-optimality property of
// Theorem 1's proof).
func (p *Placement) PeersOf(rank int) []int {
	set := p.Replicas(rank)
	out := make([]int, 0, len(set)-1)
	for _, r := range set {
		if r != rank {
			out = append(out, r)
		}
	}
	return out
}

// Validate checks the structural invariants: every replica set has
// exactly m distinct in-range members including the owner.
func (p *Placement) Validate() error {
	if p.M < 1 || p.M > p.N {
		return fmt.Errorf("placement: m=%d out of range [1,%d]", p.M, p.N)
	}
	if len(p.flat) != p.N*p.M {
		return fmt.Errorf("placement: %d replica entries for %d machines × %d replicas", len(p.flat), p.N, p.M)
	}
	for i := 0; i < p.N; i++ {
		set := p.replicaSet(i)
		hasSelf := false
		seen := make(map[int]bool, len(set))
		for _, r := range set {
			if r < 0 || r >= p.N {
				return fmt.Errorf("placement: rank %d replica %d out of range", i, r)
			}
			if seen[r] {
				return fmt.Errorf("placement: rank %d has duplicate replica %d", i, r)
			}
			seen[r] = true
			if r == i {
				hasSelf = true
			}
		}
		if !hasSelf {
			return fmt.Errorf("placement: rank %d lacks its local replica", i)
		}
	}
	return nil
}

// Survives reports whether recovery from CPU memory is possible when the
// given set of ranks fail simultaneously: every machine's replica set
// must retain at least one healthy member (for failed machines, so a
// replacement can fetch their shard; healthy machines keep their local
// copy trivially).
//
// Survives is the map-accepting compatibility wrapper; it converts the
// map once and delegates to SurvivesFailed. Hot paths (Monte Carlo,
// exact enumeration, correlated enumeration) keep a FailSet and a
// failed-rank list directly and never touch a map.
func (p *Placement) Survives(failed map[int]bool) bool {
	list, set := failSetOf(p.N, failed)
	return p.SurvivesFailed(list, set)
}

// SurvivesFailed is the availability kernel: given the failed ranks both
// as an explicit list and as a bitset over [0,N), it reports whether
// every failed rank's replica set retains a healthy member. Only the k
// failed ranks' sets are probed — O(k·m) work regardless of N, versus
// the O(N) scan of the map-based kernel it replaces. Both views must
// describe the same set; healthy ranks survive via their local replica
// and are never inspected.
func (p *Placement) SurvivesFailed(failed []int, set FailSet) bool {
	m := p.M
	for _, rank := range failed {
		alive := false
		for _, r := range p.flat[rank*m : (rank+1)*m] {
			if !set.Has(r) {
				alive = true
				break
			}
		}
		if !alive {
			return false
		}
	}
	return true
}

// SurvivesSet is SurvivesFailed for callers who hold only the bitset: it
// walks the set's words to recover the failed ranks, costing an extra
// O(N/64) sweep on top of the O(k·m) probes.
func (p *Placement) SurvivesSet(set FailSet) bool {
	m := p.M
	for wi, w := range set {
		base := wi << 6
		for w != 0 {
			rank := base + bits.TrailingZeros64(w)
			w &= w - 1
			alive := false
			for _, r := range p.flat[rank*m : (rank+1)*m] {
				if !set.Has(r) {
					alive = true
					break
				}
			}
			if !alive {
				return false
			}
		}
	}
	return true
}

func checkArgs(n, m int) error {
	if n < 1 {
		return fmt.Errorf("placement: need at least one machine, got %d", n)
	}
	if m < 1 || m > n {
		return fmt.Errorf("placement: replicas m=%d out of range [1,%d]", m, n)
	}
	return nil
}

// Group builds the pure group strategy. It fails unless m divides N.
func Group(n, m int) (*Placement, error) {
	if err := checkArgs(n, m); err != nil {
		return nil, err
	}
	if n%m != 0 {
		return nil, fmt.Errorf("placement: group strategy needs m | N, got N=%d m=%d", n, m)
	}
	p := newPlacement(n, m, KindGroup)
	for g := 0; g < n/m; g++ {
		group := make([]int, m)
		for j := 0; j < m; j++ {
			group[j] = g*m + j
		}
		p.Groups = append(p.Groups, group)
		for _, rank := range group {
			copy(p.replicaSet(rank), group)
		}
	}
	return p, nil
}

// Ring builds the pure ring strategy over all N machines: rank i
// replicates to {i, i+1, …, i+m−1} mod N.
func Ring(n, m int) (*Placement, error) {
	if err := checkArgs(n, m); err != nil {
		return nil, err
	}
	p := newPlacement(n, m, KindRing)
	ring := make([]int, n)
	for i := range ring {
		ring[i] = i
	}
	p.Groups = [][]int{ring}
	for i := 0; i < n; i++ {
		set := p.replicaSet(i)
		for j := 0; j < m; j++ {
			set[j] = (i + j) % n
		}
		sort.Ints(set)
	}
	return p, nil
}

// Mixed is Algorithm 1: group placement when m divides N; otherwise group
// placement for the first ⌊N/m⌋−1 groups and ring placement over the
// remaining N − m(⌊N/m⌋−1) machines.
func Mixed(n, m int) (*Placement, error) {
	if err := checkArgs(n, m); err != nil {
		return nil, err
	}
	if n%m == 0 {
		return Group(n, m)
	}
	p := newPlacement(n, m, KindMixed)
	fullGroups := n/m - 1
	for g := 0; g < fullGroups; g++ {
		group := make([]int, m)
		for j := 0; j < m; j++ {
			group[j] = g*m + j
		}
		p.Groups = append(p.Groups, group)
		for _, rank := range group {
			copy(p.replicaSet(rank), group)
		}
	}
	// The trailing ring has between m+1 and 2m−1 members.
	start := fullGroups * m
	ring := make([]int, 0, n-start)
	for r := start; r < n; r++ {
		ring = append(ring, r)
	}
	p.Groups = append(p.Groups, ring)
	s := len(ring)
	for idx, rank := range ring {
		set := p.replicaSet(rank)
		for j := 0; j < m; j++ {
			set[j] = ring[(idx+j)%s]
		}
		sort.Ints(set)
	}
	return p, nil
}

// MustMixed is Mixed for statically-known-good arguments.
func MustMixed(n, m int) *Placement {
	p, err := Mixed(n, m)
	if err != nil {
		panic(err)
	}
	return p
}

// CPUMemoryPerMachine returns how many checkpoint shards each machine
// stores under the placement, as a (min, max) pair. Group placement
// stores exactly m everywhere; the mixed ring tail also stores m.
func (p *Placement) CPUMemoryPerMachine() (minShards, maxShards int) {
	counts := make([]int, p.N)
	for _, r := range p.flat {
		counts[r]++
	}
	minShards, maxShards = counts[0], counts[0]
	for _, c := range counts[1:] {
		minShards = min(minShards, c)
		maxShards = max(maxShards, c)
	}
	return minShards, maxShards
}

// binomial returns C(n, k) as a float64 (exact for the magnitudes used
// here; overflows gracefully to +Inf for absurd inputs).
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1.0
	for i := 1; i <= k; i++ {
		res = res * float64(n-k+i) / float64(i)
	}
	return res
}

// Corollary1 returns the paper's closed-form lower bound on the
// probability that GEMINI recovers from CPU memory with the group
// strategy: 1 when k < m, otherwise max{0, 1 − (N/m)·C(N−m,k−m)/C(N,k)}.
// The bound is exact for m ≤ k < 2m. It requires m | N.
func Corollary1(n, m, k int) (float64, error) {
	if err := checkArgs(n, m); err != nil {
		return 0, err
	}
	if n%m != 0 {
		return 0, fmt.Errorf("placement: Corollary 1 requires m | N, got N=%d m=%d", n, m)
	}
	if k < 0 || k > n {
		return 0, fmt.Errorf("placement: k=%d out of range [0,%d]", k, n)
	}
	if k < m {
		return 1, nil
	}
	loss := float64(n) / float64(m) * binomial(n-m, k-m) / binomial(n, k)
	return math.Max(0, 1-loss), nil
}

// GroupExact returns the exact recovery probability of the group strategy
// by inclusion–exclusion over which of the N/m groups are fully failed:
//
//	P(some group ⊆ failed) = Σ_{j≥1} (−1)^{j+1} C(g,j) C(N−jm, k−jm) / C(N,k)
//
// with g = N/m. Requires m | N.
func GroupExact(n, m, k int) (float64, error) {
	if err := checkArgs(n, m); err != nil {
		return 0, err
	}
	if n%m != 0 {
		return 0, fmt.Errorf("placement: GroupExact requires m | N, got N=%d m=%d", n, m)
	}
	if k < 0 || k > n {
		return 0, fmt.Errorf("placement: k=%d out of range [0,%d]", k, n)
	}
	if k < m {
		return 1, nil
	}
	g := n / m
	total := binomial(n, k)
	lost := 0.0
	sign := 1.0
	for j := 1; j*m <= k && j <= g; j++ {
		lost += sign * binomial(g, j) * binomial(n-j*m, k-j*m)
		sign = -sign
	}
	return 1 - lost/total, nil
}

// RingExact returns the exact recovery probability of the pure ring
// strategy: recovery fails iff some m cyclically-consecutive machines are
// all failed. Computed by counting k-subsets of a cycle of N with no run
// of m consecutive chosen elements, via linear-arrangement DP conditioned
// on the boundary.
func RingExact(n, m, k int) (float64, error) {
	if err := checkArgs(n, m); err != nil {
		return 0, err
	}
	if k < 0 || k > n {
		return 0, fmt.Errorf("placement: k=%d out of range [0,%d]", k, n)
	}
	if k < m {
		return 1, nil
	}
	if m == n {
		// Only the all-failed set loses the checkpoint.
		if k == n {
			return 0, nil
		}
		return 1, nil
	}
	good := circularNoRun(n, k, m)
	return good / binomial(n, k), nil
}

// circularNoRun counts binary necklaces-as-strings of length n with k
// ones and no m consecutive ones cyclically. It conditions on the length
// of the run of ones wrapping position 0: suppose the run covering the
// boundary has a ones at the end of the string and b at the start
// (a+b < m), with zeros adjacent; sum linear counts for the interior.
func circularNoRun(n, k, m int) float64 {
	if k == 0 {
		return 1
	}
	// Case 1: position 0 is a zero. The remaining n−1 positions form a
	// line with k ones, no run of m, and the boundary is broken.
	total := linearNoRun(n-1, k, m)
	// Case 2: position 0 is a one. Let the cyclic run containing position
	// 0 have b ones going forward from 0 (b ≥ 1) and a ones backward from
	// n−1 (a ≥ 0), a+b ≤ m−1, each flanked by a zero. The interior line
	// has length n − a − b − 2 and k − a − b ones.
	for b := 1; b < m; b++ {
		for a := 0; a+b < m; a++ {
			ones := k - a - b
			length := n - a - b - 2
			if ones < 0 || length < 0 {
				continue
			}
			total += linearNoRun(length, ones, m)
		}
	}
	return total
}

// linearNoRun counts binary strings of length n with k ones and no run of
// m consecutive ones, by DP over (position, ones used, current run).
func linearNoRun(n, k, m int) float64 {
	if k == 0 {
		return 1
	}
	if n <= 0 {
		return 0
	}
	// dp[ones][run] after processing a prefix.
	dp := make([][]float64, k+1)
	for i := range dp {
		dp[i] = make([]float64, m)
	}
	dp[0][0] = 1
	for pos := 0; pos < n; pos++ {
		next := make([][]float64, k+1)
		for i := range next {
			next[i] = make([]float64, m)
		}
		for ones := 0; ones <= k; ones++ {
			for run := 0; run < m; run++ {
				v := dp[ones][run]
				if v == 0 {
					continue
				}
				next[ones][0] += v // place a zero
				if ones+1 <= k && run+1 < m {
					next[ones+1][run+1] += v // place a one
				}
			}
		}
		dp = next
	}
	var total float64
	for run := 0; run < m; run++ {
		total += dp[k][run]
	}
	return total
}

// RingBound returns the union-bound estimate of the ring strategy's
// recovery probability that the paper plots in Figure 9: the ring has
// n distinct replica sets (vs. N/m for group), so the loss term scales by
// n rather than N/m. It lower-bounds RingExact and equals it for k = m.
func RingBound(n, m, k int) (float64, error) {
	if err := checkArgs(n, m); err != nil {
		return 0, err
	}
	if k < 0 || k > n {
		return 0, fmt.Errorf("placement: k=%d out of range [0,%d]", k, n)
	}
	if k < m {
		return 1, nil
	}
	loss := float64(n) * binomial(n-m, k-m) / binomial(n, k)
	return math.Max(0, 1-loss), nil
}

// ExactProbability computes the recovery probability of an arbitrary
// placement by enumerating all C(N,k) simultaneous-failure sets. It is
// exponential in k and meant for validation at small scale.
func ExactProbability(p *Placement, k int) float64 {
	if k < 0 || k > p.N {
		panic(fmt.Sprintf("placement: k=%d out of range [0,%d]", k, p.N))
	}
	if k == 0 {
		return 1
	}
	set := NewFailSet(p.N)
	failed := make([]int, 0, k)
	var survived, total float64
	var walk func(start, left int)
	walk = func(start, left int) {
		if left == 0 {
			total++
			if p.SurvivesFailed(failed, set) {
				survived++
			}
			return
		}
		for i := start; i <= p.N-left; i++ {
			set.Set(i)
			failed = append(failed, i)
			walk(i+1, left-1)
			failed = failed[:len(failed)-1]
			set.Clear(i)
		}
	}
	walk(0, k)
	return survived / total
}

// mcShardTrials is the fixed Monte-Carlo shard size. Sharding is a
// function of the trial count alone — never of the worker count — so the
// estimate for a given (seed, trials) is bit-identical whether the shards
// run serially or across any number of goroutines.
const mcShardTrials = 4096

// MonteCarlo estimates the recovery probability under k simultaneous
// failures with the given number of uniformly random failure sets. The
// estimate is deterministic for a fixed seed: trials are partitioned into
// fixed-size shards, shard i draws from its own SplitMix64 stream seeded
// seed+i, and the per-shard survival counts are summed. Shards run on up
// to GOMAXPROCS goroutines; use MonteCarloWorkers to bound them.
func MonteCarlo(p *Placement, k, trials int, seed int64) float64 {
	return MonteCarloWorkers(p, k, trials, seed, 0)
}

// MonteCarloWorkers is MonteCarlo with an explicit worker bound
// (workers ≤ 0 means GOMAXPROCS). The result depends only on
// (p, k, trials, seed) — the worker count affects wall-clock time, never
// the estimate.
func MonteCarloWorkers(p *Placement, k, trials int, seed int64, workers int) float64 {
	if k < 0 || k > p.N {
		panic(fmt.Sprintf("placement: k=%d out of range [0,%d]", k, p.N))
	}
	if k == 0 || trials <= 0 {
		return 1
	}
	shards := (trials + mcShardTrials - 1) / mcShardTrials
	survived := parallel.SumInt64(workers, shards, func(shard int) int64 {
		n := mcShardTrials
		if shard == shards-1 {
			n = trials - shard*mcShardTrials
		}
		return mcShard(p, k, n, seed+int64(shard))
	})
	return float64(survived) / float64(trials)
}

// mcScratch is one shard's reusable trial state: the partial-Fisher–Yates
// permutation and the failure bitset. Shards check scratch out of a pool
// so steady-state Monte-Carlo trials allocate exactly 0 bytes (gated by
// TestMonteCarloShardSteadyStateAllocsZero, same discipline as the
// fabric engine's event scratch).
type mcScratch struct {
	perm []int
	set  FailSet
}

var mcScratchPool = sync.Pool{New: func() any { return new(mcScratch) }}

// reset sizes the scratch for n ranks and restores the state a freshly
// allocated shard would start from: an identity permutation and an empty
// failure set. Reinitializing the permutation keeps the RNG draw sequence
// — and therefore every estimate — bit-identical to the pre-pool kernel.
func (s *mcScratch) reset(n int) {
	if cap(s.perm) < n {
		s.perm = make([]int, n)
		s.set = NewFailSet(n)
	}
	s.perm = s.perm[:n]
	for i := range s.perm {
		s.perm[i] = i
	}
	s.set = s.set[:(n+63)>>6]
	s.set.Reset()
}

// mcShard runs one shard's trials on a private PRNG stream and pooled
// scratch state, returning the number of survived failure sets. Each
// trial draws k ranks by partial Fisher–Yates (the identical draw
// sequence the map-based kernel used), marks them in the bitset, and
// probes only those k ranks' replica sets — O(k·m) per trial instead of
// the old O(N) full-cluster scan.
func mcShard(p *Placement, k, trials int, seed int64) int64 {
	rng := newSplitMix(uint64(seed))
	scratch := mcScratchPool.Get().(*mcScratch)
	scratch.reset(p.N)
	perm, set := scratch.perm, scratch.set
	var survived int64
	for t := 0; t < trials; t++ {
		// Partial Fisher–Yates: draw the first k elements.
		for i := 0; i < k; i++ {
			j := i + int(rng.next()%uint64(p.N-i))
			perm[i], perm[j] = perm[j], perm[i]
			set.Set(perm[i])
		}
		if p.SurvivesFailed(perm[:k], set) {
			survived++
		}
		for i := 0; i < k; i++ {
			set.Clear(perm[i])
		}
	}
	mcScratchPool.Put(scratch)
	return survived
}

// splitMix is a tiny deterministic PRNG (SplitMix64), used instead of
// math/rand so probability estimates are stable across Go releases.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Theorem1Gap returns the paper's bound on how far the mixed strategy's
// recovery probability can fall below the optimum when m ∤ N:
// (2m−3)/C(N,m).
func Theorem1Gap(n, m int) float64 {
	return float64(2*m-3) / binomial(n, m)
}
