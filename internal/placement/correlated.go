package placement

import (
	"fmt"
	"math/bits"

	"gemini/internal/parallel"
)

// This file extends the §4 probability analysis from independent machine
// failures to correlated ones: machines sharing a rack (a power feed, a
// top-of-rack switch) fail together. Under that model the group strategy
// of Algorithm 1 is fragile exactly when a checkpoint group is co-located
// in one rack, which motivates the rack-aware variant below.

// KindRackAware is the rack-aware group strategy: every checkpoint group
// spans m distinct racks, so no single rack failure can erase all
// replicas of any shard.
const KindRackAware Kind = "rack-aware"

// Racks partitions ranks [0,n) into contiguous racks of rackSize, the
// same layout cluster.Topology uses. rackSize must divide n.
func Racks(n, rackSize int) ([][]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("placement: need at least one machine, got %d", n)
	}
	if rackSize < 1 || n%rackSize != 0 {
		return nil, fmt.Errorf("placement: rack size %d must be positive and divide n=%d", rackSize, n)
	}
	out := make([][]int, n/rackSize)
	for r := range out {
		rack := make([]int, rackSize)
		for i := range rack {
			rack[i] = r*rackSize + i
		}
		out[r] = rack
	}
	return out, nil
}

// RackAware builds a group placement in which each group takes one member
// from each of m consecutive racks: racks are processed in blocks of m,
// and within block b, slot s of every rack forms a group. It requires
// rackSize | n and m | (n / rackSize).
func RackAware(n, m, rackSize int) (*Placement, error) {
	if err := checkArgs(n, m); err != nil {
		return nil, err
	}
	if rackSize < 1 || n%rackSize != 0 {
		return nil, fmt.Errorf("placement: rack size %d must be positive and divide n=%d", rackSize, n)
	}
	numRacks := n / rackSize
	if numRacks%m != 0 {
		return nil, fmt.Errorf("placement: rack-aware strategy needs m | racks, got racks=%d m=%d", numRacks, m)
	}
	p := newPlacement(n, m, KindRackAware)
	for b := 0; b < numRacks/m; b++ {
		for s := 0; s < rackSize; s++ {
			group := make([]int, m)
			for t := 0; t < m; t++ {
				group[t] = (b*m+t)*rackSize + s
			}
			p.Groups = append(p.Groups, group)
			for _, rank := range group {
				copy(p.replicaSet(rank), group)
			}
		}
	}
	return p, nil
}

// MustRackAware is RackAware, panicking on error.
func MustRackAware(n, m, rackSize int) *Placement {
	p, err := RackAware(n, m, rackSize)
	if err != nil {
		panic(err)
	}
	return p
}

// CorrelatedProbability computes the probability that the placement
// survives k whole-rack failures: every k-subset of racks is equally
// likely, all machines in a failed rack fail together, and survival is
// Survives over the union. It is the rack-level analogue of
// BitmaskProbability and needs at most 31 racks.
func CorrelatedProbability(p *Placement, racks [][]int, k int) (float64, error) {
	if len(racks) > 31 {
		return 0, fmt.Errorf("placement: correlated enumeration needs ≤ 31 racks, got %d", len(racks))
	}
	if k < 0 || k > len(racks) {
		return 0, fmt.Errorf("placement: failed-rack count k=%d out of range [0,%d]", k, len(racks))
	}
	seen := make([]bool, p.N)
	for ri, rack := range racks {
		for _, rank := range rack {
			if rank < 0 || rank >= p.N {
				return 0, fmt.Errorf("placement: rack %d member %d out of range [0,%d)", ri, rank, p.N)
			}
			if seen[rank] {
				return 0, fmt.Errorf("placement: rank %d appears in two racks", rank)
			}
			seen[rank] = true
		}
	}
	for rank, ok := range seen {
		if !ok {
			return 0, fmt.Errorf("placement: rank %d missing from rack list", rank)
		}
	}
	failureSets := kSubsets(len(racks), k)
	// Shard the enumeration into fixed-size chunks of the subset list and
	// count survivals per chunk on private bitset scratch. The chunking
	// depends only on len(failureSets), and summing exact integer counts
	// is order-independent, so the probability is identical for any
	// worker count — same discipline as MonteCarloWorkers.
	const chunk = 1 << 12
	chunks := (len(failureSets) + chunk - 1) / chunk
	survived := parallel.SumInt64(0, chunks, func(c int) int64 {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > len(failureSets) {
			hi = len(failureSets)
		}
		failSet := NewFailSet(p.N)
		failed := make([]int, 0, p.N)
		var n int64
		for _, set := range failureSets[lo:hi] {
			for _, rank := range failed {
				failSet.Clear(rank)
			}
			failed = failed[:0]
			rem := set
			for rem != 0 {
				rack := bits.TrailingZeros32(rem)
				rem &= rem - 1
				for _, rank := range racks[rack] {
					failSet.Set(rank)
					failed = append(failed, rank)
				}
			}
			if p.SurvivesFailed(failed, failSet) {
				n++
			}
		}
		return n
	})
	return float64(survived) / float64(len(failureSets)), nil
}

// WorstCorrelatedK returns the smallest number of simultaneous rack
// failures that can make recovery impossible for some choice of racks
// (i.e. the first k with CorrelatedProbability < 1), or 0 if even losing
// every rack is survivable (only possible for trivial placements).
func WorstCorrelatedK(p *Placement, racks [][]int) (int, error) {
	for k := 1; k <= len(racks); k++ {
		prob, err := CorrelatedProbability(p, racks, k)
		if err != nil {
			return 0, err
		}
		if prob < 1 {
			return k, nil
		}
	}
	return 0, nil
}

// RackSpan returns, for diagnostics, the minimum and maximum number of
// distinct racks any single checkpoint group spans. A min span of 1
// means some group can be erased by one rack failure.
func RackSpan(p *Placement, racks [][]int) (minSpan, maxSpan int) {
	rackOf := make(map[int]int)
	for ri, rack := range racks {
		for _, rank := range rack {
			rackOf[rank] = ri
		}
	}
	minSpan, maxSpan = -1, 0
	for rank := 0; rank < p.N; rank++ {
		set := map[int]bool{}
		for _, r := range p.Replicas(rank) {
			set[rackOf[r]] = true
		}
		span := len(set)
		if minSpan < 0 || span < minSpan {
			minSpan = span
		}
		if span > maxSpan {
			maxSpan = span
		}
	}
	if minSpan < 0 {
		minSpan = 0
	}
	return minSpan, maxSpan
}
