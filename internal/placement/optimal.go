package placement

import (
	"fmt"
	"math/bits"
)

// This file contains the brute-force optimality search used to validate
// Theorem 1 empirically: over *every* possible placement (each machine
// choosing any m-subset containing itself to hold its checkpoint), find
// the maximum recovery probability under k simultaneous failures. The
// search space is C(N−1, m−1)^N, so this is strictly a small-N
// verification tool; the production strategy is Mixed.

// OptimalProbability exhaustively searches all placements of m replicas
// per machine (each including the owner) over n ≤ 16 machines, and
// returns the best achievable recovery probability under k simultaneous
// failures. Panics if the search space is unreasonably large.
func OptimalProbability(n, m, k int) float64 {
	if err := checkArgs(n, m); err != nil {
		panic(err)
	}
	if n > 16 {
		panic(fmt.Sprintf("placement: optimal search over n=%d machines is infeasible", n))
	}
	choices := subsetsContaining(n, m)
	if cost := pow(len(choices), n); cost > 50_000_000 {
		panic(fmt.Sprintf("placement: optimal search space %d too large", cost))
	}
	failureSets := kSubsets(n, k)

	assignment := make([]uint32, n)
	best := -1.0
	var walk func(rank int)
	walk = func(rank int) {
		if rank == n {
			if p := survivalFraction(assignment, failureSets); p > best {
				best = p
			}
			return
		}
		for _, mask := range choices[rank] {
			assignment[rank] = mask
			walk(rank + 1)
		}
	}
	walk(0)
	return best
}

// survivalFraction returns the fraction of the failure sets the bitmask
// placement survives.
func survivalFraction(replicas []uint32, failureSets []uint32) float64 {
	survived := 0
	for _, failed := range failureSets {
		ok := true
		rem := failed
		for rem != 0 {
			rank := bits.TrailingZeros32(rem)
			rem &= rem - 1
			if replicas[rank]&^failed == 0 {
				ok = false
				break
			}
		}
		if ok {
			survived++
		}
	}
	return float64(survived) / float64(len(failureSets))
}

// BitmaskProbability computes the recovery probability of a Placement
// under k failures using bitmask enumeration — the same result as
// ExactProbability but considerably faster, for n ≤ 31 (the subset
// generator works in uint32 space).
func BitmaskProbability(p *Placement, k int) float64 {
	if p.N > 31 {
		panic(fmt.Sprintf("placement: bitmask enumeration needs n ≤ 31, got %d", p.N))
	}
	replicas := make([]uint32, p.N)
	for i := 0; i < p.N; i++ {
		var mask uint32
		for _, r := range p.Replicas(i) {
			mask |= 1 << uint(r)
		}
		replicas[i] = mask
	}
	return survivalFraction(replicas, kSubsets(p.N, k))
}

// subsetsContaining returns, per rank, every m-subset bitmask of [0,n)
// containing that rank.
func subsetsContaining(n, m int) [][]uint32 {
	all := kSubsets(n, m)
	out := make([][]uint32, n)
	for _, mask := range all {
		for rank := 0; rank < n; rank++ {
			if mask&(1<<uint(rank)) != 0 {
				out[rank] = append(out[rank], mask)
			}
		}
	}
	return out
}

// kSubsets enumerates all k-subsets of [0,n) as bitmasks, in ascending
// mask order via Gosper's hack.
func kSubsets(n, k int) []uint32 {
	if k == 0 {
		return []uint32{0}
	}
	var out []uint32
	limit := uint32(1) << uint(n)
	v := uint32(1)<<uint(k) - 1
	for v < limit {
		out = append(out, v)
		// Gosper's hack: next integer with the same popcount.
		c := v & -v
		r := v + c
		v = (((r ^ v) >> 2) / c) | r
		if r == 0 {
			break
		}
	}
	return out
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
		if out < 0 || out > 1<<62 {
			return 1 << 62
		}
	}
	return out
}
