package placement

import "math/bits"

// FailSet is a bitset over machine ranks, the allocation-free failure-set
// representation used by the availability kernel. A FailSet for N ranks
// has ⌈N/64⌉ words; rank i lives at bit i&63 of word i>>6.
//
// The zero-length FailSet is valid and empty. Mutators do not bounds-check
// beyond the slice itself: callers size the set with NewFailSet(n) and
// pass ranks in [0,n).
type FailSet []uint64

// NewFailSet returns an empty FailSet able to hold ranks [0,n).
func NewFailSet(n int) FailSet { return make(FailSet, (n+63)>>6) }

// Set marks rank i failed.
func (s FailSet) Set(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Clear marks rank i healthy.
func (s FailSet) Clear(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether rank i is failed.
func (s FailSet) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Reset clears every rank in O(words).
func (s FailSet) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// Count returns the number of failed ranks.
func (s FailSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// AppendRanks appends the failed ranks to dst in ascending order and
// returns the extended slice. With a pre-sized dst this is alloc-free.
func (s FailSet) AppendRanks(dst []int) []int {
	for wi, w := range s {
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// failSetOf converts a map-based failure set into (failed-rank list,
// bitset) form for the kernel. Only the compatibility wrappers pay this
// conversion; hot paths keep a FailSet and a rank list directly.
func failSetOf(n int, failed map[int]bool) ([]int, FailSet) {
	set := NewFailSet(n)
	list := make([]int, 0, len(failed))
	for rank, ok := range failed {
		if !ok || rank < 0 || rank >= n {
			continue
		}
		if !set.Has(rank) {
			set.Set(rank)
			list = append(list, rank)
		}
	}
	return list, set
}
