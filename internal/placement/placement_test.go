package placement

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGroupRequiresDivisibility(t *testing.T) {
	if _, err := Group(5, 2); err == nil {
		t.Fatal("group with m ∤ N accepted")
	}
	p, err := Group(6, 2)
	if err != nil {
		t.Fatalf("Group(6,2): %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Group(6,2) invalid: %v", err)
	}
	if p.Kind != KindGroup || len(p.Groups) != 3 {
		t.Fatalf("Group(6,2) kind=%v groups=%v", p.Kind, p.Groups)
	}
}

func TestMixedEqualsGroupWhenDivisible(t *testing.T) {
	for _, c := range []struct{ n, m int }{{4, 2}, {16, 2}, {12, 3}, {8, 4}, {6, 1}} {
		mixed := MustMixed(c.n, c.m)
		group, err := Group(c.n, c.m)
		if err != nil {
			t.Fatalf("Group(%d,%d): %v", c.n, c.m, err)
		}
		if mixed.Kind != KindGroup {
			t.Errorf("Mixed(%d,%d) kind %v, want group", c.n, c.m, mixed.Kind)
		}
		for i := 0; i < c.n; i++ {
			a, b := mixed.Replicas(i), group.Replicas(i)
			if len(a) != len(b) {
				t.Fatalf("replica sets differ at rank %d", i)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("replica sets differ at rank %d: %v vs %v", i, a, b)
				}
			}
		}
	}
}

func TestMixedStructureWhenNotDivisible(t *testing.T) {
	// N=5, m=2: Figure 3c — machines {0,1} form a group, {2,3,4} a ring.
	p := MustMixed(5, 2)
	if p.Kind != KindMixed {
		t.Fatalf("kind %v, want mixed", p.Kind)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if len(p.Groups) != 2 || len(p.Groups[0]) != 2 || len(p.Groups[1]) != 3 {
		t.Fatalf("groups %v, want [[0 1] [2 3 4]]", p.Groups)
	}
	// Group members replicate to each other.
	if got := p.Replicas(0); got[0] != 0 || got[1] != 1 {
		t.Errorf("Replicas(0) = %v, want [0 1]", got)
	}
	// Ring members replicate to their successor in the ring.
	wantRing := map[int][]int{2: {2, 3}, 3: {3, 4}, 4: {2, 4}}
	for rank, want := range wantRing {
		got := p.Replicas(rank)
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("Replicas(%d) = %v, want %v", rank, got, want)
		}
	}
}

func TestEveryStrategySendsExactlyMMinus1Copies(t *testing.T) {
	for _, c := range []struct{ n, m int }{{4, 2}, {5, 2}, {7, 3}, {16, 2}, {10, 4}, {9, 3}} {
		for _, build := range []func(int, int) (*Placement, error){Mixed, Ring} {
			p, err := build(c.n, c.m)
			if err != nil {
				t.Fatalf("build(%d,%d): %v", c.n, c.m, err)
			}
			for i := 0; i < c.n; i++ {
				if got := len(p.PeersOf(i)); got != c.m-1 {
					t.Errorf("%v(%d,%d): rank %d sends %d copies, want %d",
						p.Kind, c.n, c.m, i, got, c.m-1)
				}
			}
			lo, hi := p.CPUMemoryPerMachine()
			if lo != c.m || hi != c.m {
				t.Errorf("%v(%d,%d): shards per machine [%d,%d], want exactly %d",
					p.Kind, c.n, c.m, lo, hi, c.m)
			}
		}
	}
}

func TestStoresIsInverseOfReplicas(t *testing.T) {
	p := MustMixed(7, 3)
	for holder := 0; holder < p.N; holder++ {
		for _, owner := range p.Stores(holder) {
			found := false
			for _, r := range p.Replicas(owner) {
				if r == holder {
					found = true
				}
			}
			if !found {
				t.Fatalf("Stores(%d) lists %d but Replicas(%d) lacks %d", holder, owner, owner, holder)
			}
		}
	}
}

func TestFigure3Probabilities(t *testing.T) {
	// Figure 3 narrative: N=4, m=2, two simultaneous failures. Group loses
	// in 2 of 6 cases; ring loses in 4 of 6.
	group, _ := Group(4, 2)
	ring, _ := Ring(4, 2)
	if got := ExactProbability(group, 2); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("group N=4 m=2 k=2 probability %v, want 2/3", got)
	}
	if got := ExactProbability(ring, 2); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("ring N=4 m=2 k=2 probability %v, want 1/3", got)
	}
}

func TestCorollary1PaperNumbers(t *testing.T) {
	// §4: N=16, m=2, k=2 ⇒ 93.3%. §7.2: k=3 ⇒ 80.0%.
	got, err := Corollary1(16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9333) > 5e-4 {
		t.Errorf("Corollary1(16,2,2) = %v, want 0.933", got)
	}
	got, err = Corollary1(16, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.8) > 1e-9 {
		t.Errorf("Corollary1(16,2,3) = %v, want 0.8", got)
	}
	// k < m always recovers.
	got, _ = Corollary1(16, 2, 1)
	if got != 1 {
		t.Errorf("Corollary1(16,2,1) = %v, want 1", got)
	}
}

func TestRingBoundPaperNumber(t *testing.T) {
	// §7.2: N=16, m=2, k=3: ring is 25% (absolute 0.20) below GEMINI's 0.8.
	got, err := RingBound(16, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.6) > 1e-9 {
		t.Errorf("RingBound(16,2,3) = %v, want 0.6", got)
	}
}

func TestCorollary1MatchesEnumerationForSmallK(t *testing.T) {
	// The bound is exact for m ≤ k < 2m.
	for _, c := range []struct{ n, m, k int }{{8, 2, 2}, {8, 2, 3}, {12, 3, 3}, {12, 3, 4}, {12, 3, 5}, {8, 4, 5}} {
		p, err := Group(c.n, c.m)
		if err != nil {
			t.Fatal(err)
		}
		exact := BitmaskProbability(p, c.k)
		bound, err := Corollary1(c.n, c.m, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-bound) > 1e-9 {
			t.Errorf("N=%d m=%d k=%d: enumeration %v != Corollary 1 %v", c.n, c.m, c.k, exact, bound)
		}
	}
}

func TestCorollary1IsLowerBoundForLargeK(t *testing.T) {
	for _, c := range []struct{ n, m, k int }{{8, 2, 4}, {8, 2, 5}, {12, 2, 6}, {12, 3, 7}} {
		p, err := Group(c.n, c.m)
		if err != nil {
			t.Fatal(err)
		}
		exact := BitmaskProbability(p, c.k)
		bound, err := Corollary1(c.n, c.m, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if bound > exact+1e-9 {
			t.Errorf("N=%d m=%d k=%d: Corollary 1 %v exceeds exact %v", c.n, c.m, c.k, bound, exact)
		}
	}
}

func TestGroupExactMatchesEnumeration(t *testing.T) {
	for _, c := range []struct{ n, m, k int }{{8, 2, 4}, {8, 2, 6}, {12, 3, 6}, {12, 2, 5}, {8, 4, 8}} {
		p, err := Group(c.n, c.m)
		if err != nil {
			t.Fatal(err)
		}
		enum := BitmaskProbability(p, c.k)
		closed, err := GroupExact(c.n, c.m, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(enum-closed) > 1e-9 {
			t.Errorf("N=%d m=%d k=%d: enumeration %v != inclusion-exclusion %v", c.n, c.m, c.k, enum, closed)
		}
	}
}

func TestRingExactMatchesEnumeration(t *testing.T) {
	for _, c := range []struct{ n, m, k int }{{6, 2, 2}, {6, 2, 3}, {8, 2, 4}, {9, 3, 4}, {10, 3, 6}, {7, 2, 7}} {
		p, err := Ring(c.n, c.m)
		if err != nil {
			t.Fatal(err)
		}
		enum := BitmaskProbability(p, c.k)
		closed, err := RingExact(c.n, c.m, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(enum-closed) > 1e-9 {
			t.Errorf("ring N=%d m=%d k=%d: enumeration %v != DP %v", c.n, c.m, c.k, enum, closed)
		}
	}
}

func TestRingExactKnownCount(t *testing.T) {
	// Circular non-adjacent selections: 3 of 16 with no two adjacent =
	// 16/13 · C(13,3) = 352 of C(16,3) = 560.
	got, err := RingExact(16, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := 352.0 / 560; math.Abs(got-want) > 1e-12 {
		t.Errorf("RingExact(16,2,3) = %v, want %v", got, want)
	}
}

func TestRingBoundLowerBoundsRingExact(t *testing.T) {
	for n := 5; n <= 14; n++ {
		for m := 2; m <= 3; m++ {
			for k := m; k <= n/2+1 && k <= n; k++ {
				exact, err := RingExact(n, m, k)
				if err != nil {
					t.Fatal(err)
				}
				bound, err := RingBound(n, m, k)
				if err != nil {
					t.Fatal(err)
				}
				if bound > exact+1e-9 {
					t.Errorf("N=%d m=%d k=%d: RingBound %v exceeds RingExact %v", n, m, k, bound, exact)
				}
			}
		}
	}
}

func TestGroupBeatsRing(t *testing.T) {
	// The pivot claim of §4: group recovers more often than ring at equal
	// replica count.
	for _, c := range []struct{ n, m, k int }{{4, 2, 2}, {8, 2, 2}, {8, 2, 3}, {12, 2, 4}, {12, 3, 3}, {12, 3, 4}} {
		g, err := Group(c.n, c.m)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Ring(c.n, c.m)
		if err != nil {
			t.Fatal(err)
		}
		pg := BitmaskProbability(g, c.k)
		pr := BitmaskProbability(r, c.k)
		if pg < pr {
			t.Errorf("N=%d m=%d k=%d: group %v < ring %v", c.n, c.m, c.k, pg, pr)
		}
	}
}

func TestTheorem1GroupIsOptimalWhenDivisible(t *testing.T) {
	// Exhaustive over every possible placement for small instances: the
	// group strategy achieves the optimum when m | N.
	for _, c := range []struct{ n, m int }{{4, 2}, {6, 2}} {
		k := c.m
		p, err := Group(c.n, c.m)
		if err != nil {
			t.Fatal(err)
		}
		group := BitmaskProbability(p, k)
		best := OptimalProbability(c.n, c.m, k)
		if math.Abs(group-best) > 1e-12 {
			t.Errorf("N=%d m=%d k=%d: group %v, optimum %v", c.n, c.m, k, group, best)
		}
	}
}

func TestTheorem1MixedNearOptimalWhenNotDivisible(t *testing.T) {
	// When m ∤ N, the mixed strategy must be within (2m−3)/C(N,m) of the
	// exhaustive optimum.
	for _, c := range []struct{ n, m int }{{5, 2}, {7, 2}, {5, 3}} {
		k := c.m
		p := MustMixed(c.n, c.m)
		mixed := BitmaskProbability(p, k)
		best := OptimalProbability(c.n, c.m, k)
		gap := Theorem1Gap(c.n, c.m)
		if mixed > best+1e-12 {
			t.Errorf("N=%d m=%d: mixed %v beats 'optimum' %v — search is broken", c.n, c.m, mixed, best)
		}
		if best-mixed > gap+1e-12 {
			t.Errorf("N=%d m=%d k=%d: gap %v exceeds Theorem 1 bound %v (mixed %v, best %v)",
				c.n, c.m, k, best-mixed, gap, mixed, best)
		}
	}
}

func TestBitmaskProbabilityBoundaries(t *testing.T) {
	// Regression: the uint32 subset generator must work up to n=31 and
	// refuse n=32 (where 1<<n overflows).
	p := MustMixed(31, 2)
	got := BitmaskProbability(p, 2)
	want, err := GroupExact(30, 2, 2) // sanity anchor: nearby divisible case
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(got) || got <= 0 || got > 1 {
		t.Fatalf("BitmaskProbability(31,2,k=2) = %v, want a probability", got)
	}
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("n=31 probability %v far from n=30 anchor %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("n=32 enumeration did not panic")
		}
	}()
	BitmaskProbability(MustMixed(32, 2), 2)
}

func TestMonteCarloAgreesWithExact(t *testing.T) {
	p := MustMixed(16, 2)
	exact := BitmaskProbability(p, 3)
	est := MonteCarlo(p, 3, 200_000, 42)
	if math.Abs(est-exact) > 0.01 {
		t.Errorf("Monte Carlo %v vs exact %v", est, exact)
	}
	if MonteCarlo(p, 0, 100, 1) != 1 {
		t.Error("k=0 should always recover")
	}
}

func TestMonteCarloDeterministicPerSeed(t *testing.T) {
	p := MustMixed(32, 2)
	a := MonteCarlo(p, 4, 10_000, 7)
	b := MonteCarlo(p, 4, 10_000, 7)
	if a != b {
		t.Fatalf("same seed gave %v and %v", a, b)
	}
}

func TestSurvivesSemantics(t *testing.T) {
	p, _ := Group(4, 2)
	// Failing one machine per group always survives.
	if !p.Survives(map[int]bool{0: true, 2: true}) {
		t.Error("cross-group pair should survive")
	}
	// Failing a whole group loses that group's checkpoints.
	if p.Survives(map[int]bool{0: true, 1: true}) {
		t.Error("whole-group failure should not survive")
	}
	if !p.Survives(nil) {
		t.Error("no failures should survive")
	}
}

func TestArgumentValidation(t *testing.T) {
	if _, err := Mixed(0, 1); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Mixed(4, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Mixed(4, 5); err == nil {
		t.Error("m>N accepted")
	}
	if _, err := Corollary1(5, 2, 2); err == nil {
		t.Error("Corollary1 with m ∤ N accepted")
	}
	if _, err := Corollary1(4, 2, 9); err == nil {
		t.Error("Corollary1 with k>N accepted")
	}
	if _, err := RingExact(4, 2, -1); err == nil {
		t.Error("RingExact with k<0 accepted")
	}
	if _, err := GroupExact(4, 2, 5); err == nil {
		t.Error("GroupExact with k>N accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustMixed on bad args did not panic")
		}
	}()
	MustMixed(2, 3)
}

func TestReplicasPanicsOutOfRange(t *testing.T) {
	p := MustMixed(4, 2)
	for _, fn := range []func(){
		func() { p.Replicas(-1) },
		func() { p.Replicas(4) },
		func() { p.Stores(9) },
		func() { ExactProbability(p, 5) },
		func() { MonteCarlo(p, -1, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestM1DegeneratesToLocalOnly(t *testing.T) {
	p := MustMixed(5, 1)
	for i := 0; i < 5; i++ {
		set := p.Replicas(i)
		if len(set) != 1 || set[0] != i {
			t.Fatalf("m=1 Replicas(%d) = %v, want [%d]", i, set, i)
		}
	}
	// With a single replica, any failure of that machine loses the shard.
	if got := ExactProbability(p, 1); got != 0 {
		t.Fatalf("m=1 k=1 probability %v, want 0", got)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{16, 2, 120}, {16, 3, 560}, {5, 0, 1}, {5, 5, 1}, {5, 6, 0}, {5, -1, 0}}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestKSubsetsCount(t *testing.T) {
	for _, c := range []struct{ n, k int }{{5, 2}, {8, 3}, {6, 0}, {6, 6}} {
		got := len(kSubsets(c.n, c.k))
		want := int(binomial(c.n, c.k))
		if got != want {
			t.Errorf("kSubsets(%d,%d) has %d entries, want %d", c.n, c.k, got, want)
		}
	}
}

// Property: probability ordering Ring ≤ Mixed holds for arbitrary small
// instances and k = m, and all probabilities are in [0,1].
func TestPropertyStrategyOrdering(t *testing.T) {
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%10) + 2
		m := int(mRaw)%(n-1) + 1
		if m < 2 {
			m = 2
		}
		if m > n {
			return true
		}
		mixed := MustMixed(n, m)
		ring, err := Ring(n, m)
		if err != nil {
			return false
		}
		pm := BitmaskProbability(mixed, m)
		pr := BitmaskProbability(ring, m)
		if pm < 0 || pm > 1 || pr < 0 || pr > 1 {
			return false
		}
		return pm >= pr-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: probabilities are nonincreasing in k for the mixed strategy.
func TestPropertyMonotoneInFailures(t *testing.T) {
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%8) + 4
		m := 2 + int(mRaw%2)
		if m > n {
			return true
		}
		p := MustMixed(n, m)
		prev := 1.0
		for k := 0; k <= n; k++ {
			cur := BitmaskProbability(p, k)
			if cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Corollary 1's probability increases with N at fixed m, k —
// the trend Figure 9 plots.
func TestPropertyCorollary1IncreasesWithN(t *testing.T) {
	prev := 0.0
	for n := 4; n <= 128; n += 2 {
		got, err := Corollary1(n, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev-1e-12 {
			t.Fatalf("Corollary1(%d,2,3) = %v decreased from %v", n, got, prev)
		}
		prev = got
	}
}
