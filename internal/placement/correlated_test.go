package placement

import (
	"math"
	"testing"
)

func TestRackAwareStructure(t *testing.T) {
	p, err := RackAware(8, 2, 2)
	if err != nil {
		t.Fatalf("RackAware: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Kind != KindRackAware {
		t.Fatalf("kind %v", p.Kind)
	}
	racks, err := Racks(8, 2)
	if err != nil {
		t.Fatalf("Racks: %v", err)
	}
	minSpan, maxSpan := RackSpan(p, racks)
	if minSpan != 2 || maxSpan != 2 {
		t.Fatalf("rack span %d..%d, want every group spanning exactly m=2 racks", minSpan, maxSpan)
	}
	// Contrast: an aligned Mixed group placement co-locates each group in
	// one rack.
	g := MustMixed(8, 2)
	minSpan, _ = RackSpan(g, racks)
	if minSpan != 1 {
		t.Fatalf("aligned group placement min span %d, want 1", minSpan)
	}
}

func TestRackAwareErrors(t *testing.T) {
	for _, tc := range []struct{ n, m, size int }{
		{8, 2, 3},  // rack size does not divide n
		{8, 3, 2},  // m does not divide rack count
		{8, 2, 0},  // zero rack size
		{0, 2, 2},  // no machines
		{8, 9, 2},  // m > n
	} {
		if _, err := RackAware(tc.n, tc.m, tc.size); err == nil {
			t.Errorf("RackAware(%d,%d,%d) accepted", tc.n, tc.m, tc.size)
		}
	}
}

// Under whole-rack failures the aligned group strategy loses everything
// to a single rack, while the rack-aware strategy survives any one rack
// and most pairs — the quantitative case for rack awareness.
func TestCorrelatedProbabilityAlignedVsRackAware(t *testing.T) {
	racks, err := Racks(8, 2)
	if err != nil {
		t.Fatalf("Racks: %v", err)
	}
	aligned := MustMixed(8, 2)
	aware := MustRackAware(8, 2, 2)

	pAligned, err := CorrelatedProbability(aligned, racks, 1)
	if err != nil {
		t.Fatalf("CorrelatedProbability: %v", err)
	}
	if pAligned != 0 {
		t.Fatalf("aligned k=1 probability %v, want 0 (any rack erases a whole group)", pAligned)
	}
	pAware, err := CorrelatedProbability(aware, racks, 1)
	if err != nil {
		t.Fatalf("CorrelatedProbability: %v", err)
	}
	if pAware != 1 {
		t.Fatalf("rack-aware k=1 probability %v, want 1", pAware)
	}
	pAware2, err := CorrelatedProbability(aware, racks, 2)
	if err != nil {
		t.Fatalf("CorrelatedProbability: %v", err)
	}
	if math.Abs(pAware2-4.0/6.0) > 1e-12 {
		t.Fatalf("rack-aware k=2 probability %v, want 4/6", pAware2)
	}

	if k, _ := WorstCorrelatedK(aligned, racks); k != 1 {
		t.Fatalf("aligned worst k = %d, want 1", k)
	}
	if k, _ := WorstCorrelatedK(aware, racks); k != 2 {
		t.Fatalf("rack-aware worst k = %d, want 2", k)
	}
}

// With one machine per rack, correlated failures degenerate to
// independent ones, so CorrelatedProbability must agree with
// BitmaskProbability.
func TestCorrelatedDegeneratesToIndependent(t *testing.T) {
	p := MustMixed(9, 2)
	racks, err := Racks(9, 1)
	if err != nil {
		t.Fatalf("Racks: %v", err)
	}
	for k := 0; k <= 3; k++ {
		got, err := CorrelatedProbability(p, racks, k)
		if err != nil {
			t.Fatalf("CorrelatedProbability(k=%d): %v", k, err)
		}
		want := BitmaskProbability(p, k)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("k=%d: correlated %v != independent %v", k, got, want)
		}
	}
}

func TestCorrelatedProbabilityValidation(t *testing.T) {
	p := MustMixed(4, 2)
	good, _ := Racks(4, 2)
	if _, err := CorrelatedProbability(p, good, 5); err == nil {
		t.Error("k beyond rack count accepted")
	}
	if _, err := CorrelatedProbability(p, [][]int{{0, 1}, {1, 2}, {3}}, 1); err == nil {
		t.Error("overlapping racks accepted")
	}
	if _, err := CorrelatedProbability(p, [][]int{{0, 1}}, 1); err == nil {
		t.Error("racks not covering all ranks accepted")
	}
	if _, err := CorrelatedProbability(p, [][]int{{0, 1}, {2, 9}}, 1); err == nil {
		t.Error("out-of-range rank accepted")
	}
}
