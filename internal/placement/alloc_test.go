// The steady-state allocation gate runs without the race detector: -race
// instruments allocations and would skew AllocsPerRun.
//go:build !race

package placement

import "testing"

// TestMonteCarloShardSteadyStateAllocsZero pins the pooled-scratch
// guarantee: once the shard scratch pool is warm, a full Monte-Carlo
// shard — partial Fisher–Yates draws, bitset marking, O(k·m) survival
// probes, bitset clearing — allocates nothing. 0 allocs per trial is the
// contract ci.sh gates, mirroring the fabric engine's steady-state gate.
func TestMonteCarloShardSteadyStateAllocsZero(t *testing.T) {
	p := MustMixed(10000, 4)
	// Warm the pool (the first shard allocates the perm + bitset scratch).
	_ = mcShard(p, 8, mcShardTrials, 1)
	allocs := testing.AllocsPerRun(10, func() {
		_ = mcShard(p, 8, mcShardTrials, 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Monte-Carlo shard allocates %v times/run (%v per trial), want 0",
			allocs, allocs/float64(mcShardTrials))
	}
}

// TestSurvivesFailedAllocsZero: the kernel itself must never allocate.
func TestSurvivesFailedAllocsZero(t *testing.T) {
	p := MustMixed(10000, 4)
	set := NewFailSet(p.N)
	failed := make([]int, 0, 8)
	for i := 0; i < 8; i++ {
		rank := i * 1237
		set.Set(rank)
		failed = append(failed, rank)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if !p.SurvivesFailed(failed, set) {
			t.Fatal("spread-out failures should survive")
		}
	})
	if allocs != 0 {
		t.Fatalf("SurvivesFailed allocates %v times/op, want 0", allocs)
	}
}
