package placement

import (
	"runtime"
	"testing"
)

// The determinism contract of the sharded Monte-Carlo estimator: for a
// fixed (placement, k, trials, seed), the estimate is a pinned constant —
// the value obtained by running the fixed-size shards serially — and the
// worker count must never change it. A drift in any of these constants
// means the seed-sharding scheme (seed+shardIndex per mcShardTrials-sized
// shard) changed, which silently invalidates every recorded experiment.
func TestMonteCarloPinnedAcrossWorkerCounts(t *testing.T) {
	cases := []struct {
		name   string
		p      *Placement
		k      int
		trials int
		seed   int64
		want   float64 // serial-run value, pinned
	}{
		{"N1000-k3-t10000-s1", MustMixed(1000, 2), 3, 10_000, 1, 0.9975},
		{"N16-k3-t200000-s42", MustMixed(16, 2), 3, 200_000, 42, 0.80086},
		{"N16-k4-t10000-s7", MustMixed(16, 2), 4, 10_000, 7, 0.6189},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 2, 8} {
			if got := MonteCarloWorkers(c.p, c.k, c.trials, c.seed, workers); got != c.want {
				t.Errorf("%s workers=%d: got %.17g, want %.17g", c.name, workers, got, c.want)
			}
		}
		// The default entry point (GOMAXPROCS workers) must agree too.
		if got := MonteCarlo(c.p, c.k, c.trials, c.seed); got != c.want {
			t.Errorf("%s default workers (GOMAXPROCS=%d): got %.17g, want %.17g",
				c.name, runtime.GOMAXPROCS(0), got, c.want)
		}
	}
}

// Trial counts that do not divide evenly into shards must still cover
// exactly `trials` trials: the last, short shard changes the estimate, so
// two adjacent counts around a shard boundary must differ only by the
// marginal trials, and every worker count must agree on both.
func TestMonteCarloShardBoundary(t *testing.T) {
	p := MustMixed(64, 2)
	for _, trials := range []int{1, mcShardTrials - 1, mcShardTrials, mcShardTrials + 1, 3 * mcShardTrials} {
		want := MonteCarloWorkers(p, 3, trials, 11, 1)
		for _, workers := range []int{2, 8} {
			if got := MonteCarloWorkers(p, 3, trials, 11, workers); got != want {
				t.Errorf("trials=%d workers=%d: got %.17g, want %.17g", trials, workers, got, want)
			}
		}
	}
}

// CorrelatedProbability is an exact enumeration; its chunked parallel
// count must match a straightforward serial recount exactly.
func TestCorrelatedProbabilityMatchesSerialRecount(t *testing.T) {
	const n, m, rackSize = 16, 2, 2
	p := MustRackAware(n, m, rackSize)
	racks, err := Racks(n, rackSize)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 4; k++ {
		got, err := CorrelatedProbability(p, racks, k)
		if err != nil {
			t.Fatal(err)
		}
		// Serial recount over the same subset enumeration.
		sets := kSubsets(len(racks), k)
		survived := 0
		for _, set := range sets {
			failed := map[int]bool{}
			for rack := 0; rack < len(racks); rack++ {
				if set&(1<<uint(rack)) != 0 {
					for _, rank := range racks[rack] {
						failed[rank] = true
					}
				}
			}
			if p.Survives(failed) {
				survived++
			}
		}
		want := float64(survived) / float64(len(sets))
		if got != want {
			t.Errorf("k=%d: chunked %v != serial %v", k, got, want)
		}
	}
}
