package placement

import (
	"testing"
)

// survivesMapRef is the seed's map-based O(N) survival kernel, kept as
// the reference implementation the bitset kernel must agree with: scan
// every rank, and for each failed one require a healthy replica.
func survivesMapRef(p *Placement, failed map[int]bool) bool {
	for rank := 0; rank < p.N; rank++ {
		if !failed[rank] {
			continue
		}
		alive := false
		for _, r := range p.Replicas(rank) {
			if !failed[r] {
				alive = true
				break
			}
		}
		if !alive {
			return false
		}
	}
	return true
}

// kernelPlacements builds one instance of every placement kind at the
// given scale knobs, skipping combinations the constructors reject.
func kernelPlacements(t *testing.T, n, m, rackSize int) []*Placement {
	t.Helper()
	var out []*Placement
	out = append(out, MustMixed(n, m))
	if r, err := Ring(n, m); err == nil {
		out = append(out, r)
	}
	if n%m == 0 {
		if g, err := Group(n, m); err == nil {
			out = append(out, g)
		}
	}
	if ra, err := RackAware(n, m, rackSize); err == nil {
		out = append(out, ra)
	}
	return out
}

// TestKernelAgreesWithMapReference is the bitset-kernel property test:
// on randomized Group/Ring/Mixed/RackAware placements and randomized
// failure sets of every size, Survives (map wrapper), SurvivesFailed
// (list+bitset kernel), and SurvivesSet (bitset-only kernel) must all
// agree with the seed's map-based reference implementation.
func TestKernelAgreesWithMapReference(t *testing.T) {
	rng := newSplitMix(0xC0FFEE)
	for _, dims := range []struct{ n, m, rackSize int }{
		{8, 2, 2}, {12, 3, 2}, {16, 4, 4}, {23, 3, 1}, {64, 2, 8}, {96, 4, 8}, {129, 5, 1},
	} {
		for _, p := range kernelPlacements(t, dims.n, dims.m, dims.rackSize) {
			for trial := 0; trial < 64; trial++ {
				k := int(rng.next() % uint64(p.N+1))
				failedMap := make(map[int]bool, k)
				set := NewFailSet(p.N)
				var failed []int
				for len(failed) < k {
					rank := int(rng.next() % uint64(p.N))
					if failedMap[rank] {
						continue
					}
					failedMap[rank] = true
					set.Set(rank)
					failed = append(failed, rank)
				}
				want := survivesMapRef(p, failedMap)
				if got := p.Survives(failedMap); got != want {
					t.Fatalf("%s N=%d m=%d k=%d: Survives=%v, reference=%v", p.Kind, p.N, p.M, k, got, want)
				}
				if got := p.SurvivesFailed(failed, set); got != want {
					t.Fatalf("%s N=%d m=%d k=%d: SurvivesFailed=%v, reference=%v", p.Kind, p.N, p.M, k, got, want)
				}
				if got := p.SurvivesSet(set); got != want {
					t.Fatalf("%s N=%d m=%d k=%d: SurvivesSet=%v, reference=%v", p.Kind, p.N, p.M, k, got, want)
				}
			}
		}
	}
}

// TestSurvivesWrapperIgnoresFalseAndOutOfRangeEntries pins the wrapper's
// map semantics: entries mapped to false and out-of-range keys behave
// exactly as they did for the map kernel (false = healthy; a key outside
// [0,N) never matches any replica, so it cannot affect the verdict).
func TestSurvivesWrapperIgnoresFalseAndOutOfRangeEntries(t *testing.T) {
	p, _ := Group(4, 2)
	if !p.Survives(map[int]bool{0: true, 1: false, 2: true}) {
		t.Error("false-valued entry treated as failed")
	}
	if p.Survives(map[int]bool{0: true, 1: true, -7: true, 99: true}) {
		t.Error("whole-group failure masked by out-of-range entries")
	}
}

// TestFailSetOperations exercises the bitset primitives across word
// boundaries.
func TestFailSetOperations(t *testing.T) {
	s := NewFailSet(130)
	if len(s) != 3 {
		t.Fatalf("NewFailSet(130) has %d words, want 3", len(s))
	}
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		if s.Has(i) {
			t.Fatalf("fresh set has bit %d", i)
		}
		s.Set(i)
		if !s.Has(i) {
			t.Fatalf("Set(%d) not visible", i)
		}
	}
	if got := s.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	got := s.AppendRanks(nil)
	want := []int{0, 63, 64, 127, 128, 129}
	if len(got) != len(want) {
		t.Fatalf("AppendRanks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendRanks = %v, want %v", got, want)
		}
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 5 {
		t.Fatalf("Clear(64) left %v", s.AppendRanks(nil))
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("Reset left %d bits", s.Count())
	}
}

// TestMonteCarloPinnedLargeN pins Monte-Carlo estimates at the 10k–50k
// machine scale to the exact values the seed's map-based kernel produced
// for the same (placement, k, trials, seed). The bitset kernel reuses
// the seed's RNG draw sequence verbatim, so any drift here means the
// rewrite changed the estimator, not just its speed.
func TestMonteCarloPinnedLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N pinned estimates skipped in -short mode")
	}
	cases := []struct {
		n, m, k, trials int
		seed            int64
		want            float64 // seed-kernel value, pinned
	}{
		{10000, 4, 8, 8192, 1, 1},
		{10000, 4, 8, 10000, 1, 1},
		{50000, 4, 8, 4096, 1, 1},
		{4096, 2, 6, 8192, 9, 0.995849609375},
		{1000, 3, 5, 12345, 3, 1},
		{10000, 2, 64, 10000, 1, 0.8175},
		{10000, 2, 8, 10000, 5, 0.99690000000000001},
		{50000, 2, 64, 4096, 2, 0.953369140625},
		{999, 2, 12, 8192, 17, 0.9346923828125},
	}
	for _, c := range cases {
		p := MustMixed(c.n, c.m)
		for _, workers := range []int{1, 4} {
			if got := MonteCarloWorkers(p, c.k, c.trials, c.seed, workers); got != c.want {
				t.Errorf("N=%d m=%d k=%d trials=%d seed=%d workers=%d: got %.17g, want %.17g",
					c.n, c.m, c.k, c.trials, c.seed, workers, got, c.want)
			}
		}
	}
}

// TestExactAndCorrelatedUnchangedByKernel cross-checks the enumeration
// entry points against the independent bitmask enumerator after the
// kernel swap.
func TestExactAndCorrelatedUnchangedByKernel(t *testing.T) {
	for _, c := range []struct{ n, m, k int }{{8, 2, 3}, {9, 3, 4}, {12, 3, 5}} {
		p := MustMixed(c.n, c.m)
		if got, want := ExactProbability(p, c.k), BitmaskProbability(p, c.k); got != want {
			t.Errorf("ExactProbability(N=%d,m=%d,k=%d) = %v, bitmask %v", c.n, c.m, c.k, got, want)
		}
	}
	p := MustRackAware(16, 2, 2)
	racks, err := Racks(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		got, err := CorrelatedProbability(p, racks, k)
		if err != nil {
			t.Fatal(err)
		}
		// Map-reference recount over the same subset enumeration.
		sets := kSubsets(len(racks), k)
		survived := 0
		for _, set := range sets {
			failed := map[int]bool{}
			for rack := range racks {
				if set&(1<<uint(rack)) != 0 {
					for _, rank := range racks[rack] {
						failed[rank] = true
					}
				}
			}
			if survivesMapRef(p, failed) {
				survived++
			}
		}
		if want := float64(survived) / float64(len(sets)); got != want {
			t.Errorf("CorrelatedProbability k=%d: %v, map reference %v", k, got, want)
		}
	}
}

// TestFlatReplicasLayout pins the contiguous backing array: every kind's
// replica sets are windows of one allocation, and Replicas caps its
// return so appends cannot clobber the neighbor rank's set.
func TestFlatReplicasLayout(t *testing.T) {
	for _, p := range kernelPlacements(t, 16, 4, 4) {
		if len(p.flat) != p.N*p.M {
			t.Fatalf("%s: flat len %d, want %d", p.Kind, len(p.flat), p.N*p.M)
		}
		for rank := 0; rank < p.N; rank++ {
			set := p.Replicas(rank)
			if len(set) != p.M || cap(set) != p.M {
				t.Fatalf("%s Replicas(%d): len=%d cap=%d, want both %d", p.Kind, rank, len(set), cap(set), p.M)
			}
		}
		grown := append(p.Replicas(0), -1) // must copy, not spill into rank 1
		_ = grown
		if err := p.Validate(); err != nil {
			t.Fatalf("%s corrupted by append: %v", p.Kind, err)
		}
	}
}
