// Package core assembles the GEMINI system out of its parts: given a
// training job (model × instance type × machine count) and a replica
// count, it derives the checkpoint placement (Algorithm 1), profiles the
// iteration timeline, partitions checkpoint traffic (Algorithm 2), and
// exposes the solution specs, the interference executor, the long-run
// failure simulator, and the live agent-based recovery system. The public
// gemini package is a thin veneer over this one.
package core

import (
	"fmt"

	"gemini/internal/agent"
	"gemini/internal/baselines"
	"gemini/internal/chaos"
	"gemini/internal/ckpt"
	"gemini/internal/cloud"
	"gemini/internal/cluster"
	"gemini/internal/derive"
	"gemini/internal/failure"
	"gemini/internal/metrics"
	"gemini/internal/placement"
	"gemini/internal/profile"
	"gemini/internal/runsim"
	"gemini/internal/schedule"
	"gemini/internal/simclock"
	"gemini/internal/strategy"
	"gemini/internal/tensor"
	"gemini/internal/trace"
	"gemini/internal/training"
)

// JobSpec names a training job in user terms.
type JobSpec struct {
	// Model is a Table 2 name, e.g. "GPT-2 100B".
	Model string
	// Instance is a Table 1 name, e.g. "p4d.24xlarge".
	Instance string
	// Machines is the cluster size N.
	Machines int
	// Replicas is the checkpoint replica count m (default 2).
	Replicas int
	// RemoteBandwidth is the persistent store's aggregate bandwidth
	// (default 20 Gbps, the paper's FSx setup).
	RemoteBandwidth float64
	// Parallelism selects the distribution strategy (default ZeRO-3, the
	// paper's setting; data-parallel and pipeline-parallel are the §9
	// future-work extensions).
	Parallelism training.Parallelism
	// Faults is an optional chaos schedule armed against the recovery
	// system: crashes, correlated failures, partitions, stragglers, store
	// outages. Build one with chaos.NewBuilder.
	Faults chaos.Schedule
	// Strategy names the checkpoint strategy the recovery system runs
	// ("gemini", "tiered", "sparse", "adaptive"; default gemini). The
	// name is resolved against the strategy registry at job construction
	// and instantiated fresh per RecoverySystem call.
	Strategy string
	// Tracer, when set, is attached to every run the job starts: the
	// interference executor's tracks and the recovery control plane's
	// spans both land on it. Nil leaves tracing disabled and free.
	Tracer *trace.Tracer
	// Metrics, when set, receives every run's instruments: training.*
	// from the executor, health.* and strategy.* from the control plane.
	// Nil leaves monitoring disabled and free.
	Metrics *metrics.Registry
	// NoCache opts this job out of the shared derivation cache: every
	// artifact (placement, timeline, profile, plan, baselines) is built
	// fresh and privately owned. The escape hatch for callers that want
	// isolation from cross-job sharing; results are bit-identical either
	// way.
	NoCache bool
}

func (j JobSpec) withDefaults() JobSpec {
	if j.Replicas == 0 {
		j.Replicas = 2
	}
	if j.RemoteBandwidth == 0 {
		j.RemoteBandwidth = baselines.DefaultRemoteBandwidth
	}
	return j
}

// Job is a fully derived GEMINI deployment for one training job.
type Job struct {
	Spec      JobSpec
	Config    training.Config
	Placement *placement.Placement
	Timeline  *training.Timeline
	Profile   *profile.Profile
	Plan      *schedule.Plan
	Costs     tensor.CostModel

	specGemini, specStrawman, specHighFreq baselines.Spec
}

// CacheKey returns the derivation-cache key for a spec: exactly the
// fields the derivation pipeline reads. Faults, strategy, observability
// sinks, and NoCache configure runs, not derivations, so they do not
// appear.
func (j JobSpec) CacheKey() derive.Key {
	j = j.withDefaults()
	return derive.Key{
		Model:           j.Model,
		Instance:        j.Instance,
		Machines:        j.Machines,
		Replicas:        j.Replicas,
		RemoteBandwidth: j.RemoteBandwidth,
		Parallelism:     j.Parallelism,
	}
}

// NewJob derives everything from a job spec. The derivation pipeline
// (placement, timeline, profile, plan, cost model, baseline specs) is a
// pure function of the spec's CacheKey fields and is resolved through
// the shared content-keyed cache: a warm key does zero derivation work
// and the resulting artifacts are shared read-only across jobs. Set
// JobSpec.NoCache to build privately instead.
func NewJob(spec JobSpec) (*Job, error) {
	spec = spec.withDefaults()
	if err := spec.Faults.Validate(spec.Machines); err != nil {
		return nil, err
	}
	if spec.Strategy != "" {
		if _, err := strategy.New(spec.Strategy); err != nil {
			return nil, err
		}
	}
	var art *derive.Artifacts
	var err error
	if spec.NoCache {
		art, err = derive.Build(spec.CacheKey())
	} else {
		art, err = derive.Shared().Get(spec.CacheKey())
	}
	if err != nil {
		return nil, err
	}
	return &Job{
		Spec:         spec,
		Config:       art.Config,
		Placement:    art.Placement,
		Timeline:     art.Timeline,
		Profile:      art.Profile,
		Plan:         art.Plan,
		Costs:        art.Costs,
		specGemini:   art.Gemini,
		specStrawman: art.Strawman,
		specHighFreq: art.HighFreq,
	}, nil
}

// MustNewJob is NewJob for known-good specs.
func MustNewJob(spec JobSpec) *Job {
	j, err := NewJob(spec)
	if err != nil {
		panic(err)
	}
	return j
}

// GeminiSpec returns GEMINI's checkpointing behavior for the job.
func (j *Job) GeminiSpec() baselines.Spec { return j.specGemini }

// StrawmanSpec returns the three-hourly remote baseline.
func (j *Job) StrawmanSpec() baselines.Spec { return j.specStrawman }

// HighFreqSpec returns the saturate-the-remote-store baseline.
func (j *Job) HighFreqSpec() baselines.Spec { return j.specHighFreq }

// RecoveryProbability returns the probability that GEMINI recovers from
// CPU memory when k machines fail simultaneously, by exact enumeration
// for small clusters and Monte Carlo beyond.
func (j *Job) RecoveryProbability(k int) float64 {
	if j.Placement.N <= 31 {
		return placement.BitmaskProbability(j.Placement, k)
	}
	return placement.MonteCarlo(j.Placement, k, 200_000, 1)
}

// ExecuteScheme runs the interference executor with one of the §7.4
// schemes, attaching the job's observability surface (JobSpec.Tracer,
// JobSpec.Metrics) when present. The fluid executor models the ZeRO-3
// traffic pattern; for the other parallelisms use the analytic plan
// (Job.Plan) instead.
func (j *Job) ExecuteScheme(s schedule.Scheme) (*training.ExecResult, error) {
	return j.executeScheme(s, j.Spec.Tracer, j.Spec.Metrics)
}

func (j *Job) executeScheme(s schedule.Scheme, tr *trace.Tracer, reg *metrics.Registry) (*training.ExecResult, error) {
	if j.Spec.Parallelism != training.ZeRO3 {
		return nil, fmt.Errorf("core: the interference executor supports ZeRO-3 only, job uses %v", j.Spec.Parallelism)
	}
	opts := training.DefaultExecOptions(j.Placement, s)
	opts.Timeline = j.Timeline
	opts.Profile = j.Profile
	opts.Tracer = tr
	opts.Metrics = reg
	return training.Execute(j.Config, opts)
}

// ExecuteSchemeTraced is ExecuteScheme with an explicit tracer.
//
// Deprecated: set the tracer on the job instead (gemini.WithTracer) and
// call ExecuteScheme.
func (j *Job) ExecuteSchemeTraced(s schedule.Scheme, tr *trace.Tracer) (*training.ExecResult, error) {
	return j.executeScheme(s, tr, j.Spec.Metrics)
}

// ExecuteSchemeObserved is ExecuteScheme with an explicit tracer and
// metrics registry.
//
// Deprecated: set both on the job instead (gemini.WithTracer,
// gemini.WithMetrics) and call ExecuteScheme.
func (j *Job) ExecuteSchemeObserved(s schedule.Scheme, tr *trace.Tracer, reg *metrics.Registry) (*training.ExecResult, error) {
	return j.executeScheme(s, tr, reg)
}

// ExecuteSchemeWithBuffers runs the executor with an explicit reserved
// GPU buffer size R and sub-buffer count p — the pipeline-depth ablation.
func (j *Job) ExecuteSchemeWithBuffers(s schedule.Scheme, bufferBytes float64, parts int) (*training.ExecResult, error) {
	opts := training.DefaultExecOptions(j.Placement, s)
	opts.Timeline = j.Timeline
	opts.Profile = j.Profile
	opts.BufferBytes = bufferBytes
	opts.BufferParts = parts
	return training.Execute(j.Config, opts)
}

// SimulateRun plays a failure schedule against a solution spec and
// returns the effective-training-time accounting of §7.3.
func (j *Job) SimulateRun(spec baselines.Spec, fs failure.Schedule, horizon simclock.Duration,
	replacementDelay simclock.Duration) (*runsim.Result, error) {
	return runsim.Run(runsim.Config{
		Spec:             spec,
		Placement:        j.Placement,
		Machines:         j.Spec.Machines,
		Failures:         fs,
		Horizon:          horizon,
		ReplacementDelay: replacementDelay,
	})
}

// SimulateRunScaled is SimulateRun with the placement rebuilt over a
// different cluster size — the Fig. 15b methodology, where the testbed's
// measured overheads are kept while the failure frequency scales with N.
func (j *Job) SimulateRunScaled(spec baselines.Spec, machines int, fs failure.Schedule,
	horizon simclock.Duration, replacementDelay simclock.Duration) (*runsim.Result, error) {
	plc, err := placement.Mixed(machines, j.Spec.Replicas)
	if err != nil {
		return nil, err
	}
	return runsim.Run(runsim.Config{
		Spec:             spec,
		Placement:        plc,
		Machines:         machines,
		Failures:         fs,
		Horizon:          horizon,
		ReplacementDelay: replacementDelay,
	})
}

// RecoverySystem assembles the live agent-based control plane for the
// job on a fresh simulation engine. The spec's checkpoint strategy is
// instantiated fresh and installed, its tracer and metrics registry are
// attached, and if the spec carries a fault schedule it is armed
// against the system before the engine runs.
func (j *Job) RecoverySystem(cloudCfg cloud.Config) (*simclock.Engine, *agent.System, error) {
	engine := simclock.NewEngine()
	clus, err := cluster.New(j.Spec.Machines, j.Config.Instance, engine.Now)
	if err != nil {
		return nil, nil, err
	}
	ck, err := ckpt.NewEngine(j.Placement, j.Config.ShardBytesPerMachine())
	if err != nil {
		return nil, nil, err
	}
	op, err := cloud.NewOperator(engine, cloudCfg)
	if err != nil {
		return nil, nil, err
	}
	opts := agent.DefaultOptions(j.Timeline.Iteration)
	opts.RetrievalPeerBandwidth = j.Config.Instance.NetworkBytesPerSec
	opts.RetrievalRemoteBandwidth = j.Spec.RemoteBandwidth
	opts.SerializeTime = j.Costs.SerializeTime(2 * j.Config.ShardBytesPerMachine())
	log := trace.NewLog(engine.Now)
	sys, err := agent.NewSystem(engine, clus, ck, op, opts, log)
	if err != nil {
		return nil, nil, err
	}
	if name := j.Spec.Strategy; name != "" {
		st, err := strategy.New(name)
		if err != nil {
			return nil, nil, err
		}
		sys.SetStrategy(st)
	}
	if j.Spec.Tracer != nil {
		sys.SetTracer(j.Spec.Tracer)
	}
	if j.Spec.Metrics != nil {
		sys.SetMetrics(j.Spec.Metrics)
	}
	if len(j.Spec.Faults) > 0 {
		chaos.Arm(engine, sys, j.Spec.Faults)
	}
	return engine, sys, nil
}
