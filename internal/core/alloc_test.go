//go:build !race

package core

import "testing"

// TestNewJobWarmKeyAllocs is the campaign-engine gate: once a key is
// warm in the derivation cache, NewJob must do zero derivation work —
// just the spec validation, one cache lookup, and the Job struct itself.
// The ceiling is deliberately tight; cold derivation costs thousands of
// allocations, so any accidental re-derivation on the warm path blows
// straight through it.
func TestNewJobWarmKeyAllocs(t *testing.T) {
	spec := JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16}
	if _, err := NewJob(spec); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := NewJob(spec); err != nil {
			t.Fatal(err)
		}
	})
	// One allocation for the Job value; one of headroom for the runtime.
	if allocs > 2 {
		t.Errorf("warm-key NewJob allocates %.0f times per call, want ≤ 2 "+
			"(the derivation pipeline must be fully cache-resident)", allocs)
	}
}
