package core

import (
	"math"
	"testing"

	"gemini/internal/cloud"
	"gemini/internal/cluster"
	"gemini/internal/failure"
	"gemini/internal/metrics"
	"gemini/internal/schedule"
	"gemini/internal/simclock"
	"gemini/internal/trace"
)

func paperJob(t *testing.T) *Job {
	t.Helper()
	j, err := NewJob(JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16})
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	return j
}

func TestNewJobDerivesEverything(t *testing.T) {
	j := paperJob(t)
	if j.Spec.Replicas != 2 {
		t.Fatalf("default replicas %d, want 2", j.Spec.Replicas)
	}
	if j.Placement.N != 16 || j.Placement.M != 2 {
		t.Fatalf("placement %dx%d", j.Placement.N, j.Placement.M)
	}
	if j.Timeline.Iteration <= 0 || len(j.Profile.Spans) == 0 {
		t.Fatal("timeline/profile empty")
	}
	if !j.Plan.Fits {
		t.Fatal("checkpoint plan does not fit the idle spans for the paper's flagship config")
	}
	if j.GeminiSpec().Name != "GEMINI" || j.StrawmanSpec().Name != "Strawman" || j.HighFreqSpec().Name != "HighFreq" {
		t.Fatal("spec names wrong")
	}
}

func TestNewJobValidatesResources(t *testing.T) {
	if _, err := NewJob(JobSpec{Model: "GPT-2 100B", Instance: "p3dn.24xlarge", Machines: 16}); err == nil {
		t.Error("100B on p3dn should fail GPU memory validation")
	}
	if _, err := NewJob(JobSpec{Model: "Nonexistent 1B", Instance: "p4d.24xlarge", Machines: 16}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := NewJob(JobSpec{Model: "GPT-2 100B", Instance: "z9.metal", Machines: 16}); err == nil {
		t.Error("unknown instance accepted")
	}
	if _, err := NewJob(JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 0}); err == nil {
		t.Error("zero machines accepted")
	}
	// CPU-memory budget: m huge enough to exceed 1152 GB of host memory.
	// Shard on 2 machines = 600 GB; two buffers × m=2 replicas = 2.4 TB.
	if _, err := NewJob(JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 2, Replicas: 2}); err == nil {
		t.Error("CPU-memory over-budget accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewJob did not panic on bad spec")
		}
	}()
	MustNewJob(JobSpec{Model: "nope", Instance: "p4d.24xlarge", Machines: 16})
}

func TestRecoveryProbabilityMatchesCorollary(t *testing.T) {
	j := paperJob(t)
	if got := j.RecoveryProbability(2); math.Abs(got-0.9333) > 1e-3 {
		t.Fatalf("P(recover | k=2) = %v, want 0.933", got)
	}
	if got := j.RecoveryProbability(3); math.Abs(got-0.8) > 1e-3 {
		t.Fatalf("P(recover | k=3) = %v, want 0.8", got)
	}
	// Large clusters switch to Monte Carlo.
	big := MustNewJob(JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 64})
	if got := big.RecoveryProbability(2); got < 0.97 || got > 1 {
		t.Fatalf("P(recover | N=64, k=2) = %v, want ≈0.984", got)
	}
}

func TestExecuteSchemeThroughJob(t *testing.T) {
	j := paperJob(t)
	res, err := j.ExecuteScheme(schedule.SchemeGemini)
	if err != nil {
		t.Fatal(err)
	}
	if ov := res.Overhead(); ov > 0.02 {
		t.Fatalf("GEMINI overhead %.2f%%", ov*100)
	}
}

func TestExecuteSchemeWithBuffers(t *testing.T) {
	j := MustNewJob(JobSpec{Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: 16})
	single, err := j.ExecuteSchemeWithBuffers(schedule.SchemeGemini, 8*128e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := j.ExecuteSchemeWithBuffers(schedule.SchemeGemini, 8*128e6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if single.IterationTime <= piped.IterationTime {
		t.Fatalf("p=1 (%v) should be slower than p=4 (%v)", single.IterationTime, piped.IterationTime)
	}
}

func TestSimulateRunScaled(t *testing.T) {
	j := paperJob(t)
	horizon := 3 * simclock.Day
	fs, err := failure.FixedRate(100, 10, 0, horizon) // ranks up to 29 over 3 days
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.SimulateRunScaled(j.GeminiSpec(), 100, fs, horizon, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveRatio <= 0.5 || res.EffectiveRatio >= 1 {
		t.Fatalf("scaled ratio %.3f implausible", res.EffectiveRatio)
	}
	// A failure rank ≥ the job's own 16 machines proves the placement
	// really was rebuilt at the scaled size.
	if _, err := j.SimulateRun(j.GeminiSpec(), fs, horizon, 0); err == nil {
		t.Fatal("unscaled run should reject ranks beyond the testbed size")
	}
}

func TestSimulateRunThroughJob(t *testing.T) {
	j := paperJob(t)
	horizon := 5 * simclock.Day
	fs, err := failure.FixedRate(16, 4, 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	gem, err := j.SimulateRun(j.GeminiSpec(), fs, horizon, 0)
	if err != nil {
		t.Fatal(err)
	}
	straw, err := j.SimulateRun(j.StrawmanSpec(), fs, horizon, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gem.EffectiveRatio <= straw.EffectiveRatio {
		t.Fatalf("GEMINI %.3f should beat Strawman %.3f", gem.EffectiveRatio, straw.EffectiveRatio)
	}
}

func TestRecoverySystemEndToEnd(t *testing.T) {
	j := MustNewJob(JobSpec{Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: 16})
	engine, sys, err := j.RecoverySystem(cloud.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	iter := j.Timeline.Iteration
	engine.At(simclock.Time(3*iter+1), func() {
		sys.InjectFailure(5, cluster.HardwareFailed)
	})
	engine.Run(simclock.Time(40 * iter))
	if sys.Recoveries() != 1 {
		t.Fatalf("%d recoveries, want 1", sys.Recoveries())
	}
	if !sys.Training() {
		t.Fatal("training did not resume")
	}
}

// ExecuteSchemeObserved attaches both observability surfaces at once:
// the tracer records the run's spans, the registry fills with training.*
// instruments, and the measured result matches the unobserved run.
func TestExecuteSchemeObserved(t *testing.T) {
	j := paperJob(t)
	tr := trace.NewTracer(nil)
	reg := metrics.NewRegistry()
	res, err := j.ExecuteSchemeObserved(schedule.SchemeGemini, tr, reg)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := j.ExecuteScheme(schedule.SchemeGemini)
	if err != nil {
		t.Fatal(err)
	}
	if res.IterationTime != bare.IterationTime {
		t.Fatalf("observed run measured %v, bare run %v — observation perturbed the sim",
			res.IterationTime, bare.IterationTime)
	}
	if res.IdleUtilization != 1 {
		t.Fatalf("idle utilization %v, want 1 (plan fits for the flagship config)", res.IdleUtilization)
	}
	cs := reg.Snapshot()
	if v, ok := cs.Get("training.iteration_seconds.count"); !ok || v == 0 {
		t.Fatalf("no iteration observations in registry: %v", cs)
	}
	if v, ok := cs.Get("training.idle_utilization"); !ok || v != 1 {
		t.Fatalf("idle_utilization gauge %v/%v, want 1", v, ok)
	}
	if len(tr.Tracks()) == 0 {
		t.Fatal("tracer recorded no tracks")
	}
	// Both nil is legal: plain execution.
	if _, err := j.ExecuteSchemeObserved(schedule.SchemeGemini, nil, nil); err != nil {
		t.Fatal(err)
	}
}
