package core

import (
	"reflect"
	"testing"

	"gemini/internal/cloud"
	"gemini/internal/cluster"
	"gemini/internal/derive"
	"gemini/internal/failure"
	"gemini/internal/schedule"
	"gemini/internal/simclock"
)

func cacheSpec() JobSpec {
	return JobSpec{Model: "GPT-2 100B", Instance: "p4d.24xlarge", Machines: 16}
}

// Two jobs with the same cache key share one set of derived artifacts.
func TestNewJobSharesCachedArtifacts(t *testing.T) {
	a := MustNewJob(cacheSpec())
	// Faults/strategy/sinks are run configuration, not derivation inputs:
	// a spec differing only there must still collapse onto the same entry.
	spec := cacheSpec()
	spec.Strategy = "tiered"
	b := MustNewJob(spec)
	if a.Placement != b.Placement || a.Timeline != b.Timeline || a.Profile != b.Profile || a.Plan != b.Plan {
		t.Fatal("same-key jobs did not share cached artifacts")
	}
}

// NoCache builds privately owned artifacts.
func TestNoCacheBuildsPrivateArtifacts(t *testing.T) {
	cached := MustNewJob(cacheSpec())
	spec := cacheSpec()
	spec.NoCache = true
	private := MustNewJob(spec)
	if cached.Placement == private.Placement || cached.Timeline == private.Timeline ||
		cached.Profile == private.Profile || cached.Plan == private.Plan {
		t.Fatal("NoCache job shares artifacts with the cache")
	}
	if !reflect.DeepEqual(cached.Profile, private.Profile) || !reflect.DeepEqual(cached.Plan, private.Plan) {
		t.Fatal("NoCache derivation differs from the cached one")
	}
}

// Cached and uncached jobs must produce bit-identical run results — the
// cache is a pure memoization, never a behavior change.
func TestCachedRunsBitIdenticalToUncached(t *testing.T) {
	cached := MustNewJob(cacheSpec())
	spec := cacheSpec()
	spec.NoCache = true
	private := MustNewJob(spec)

	for _, s := range []schedule.Scheme{schedule.SchemeGemini, schedule.SchemeBlocking} {
		rc, err := cached.ExecuteScheme(s)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := private.ExecuteScheme(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rc, rp) {
			t.Fatalf("scheme %v: cached executor result differs from uncached", s)
		}
	}

	horizon := 5 * simclock.Day
	fs, err := failure.FixedRate(16, 6, 0.5, horizon)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := cached.SimulateRun(cached.GeminiSpec(), fs, horizon, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := private.SimulateRun(private.GeminiSpec(), fs, horizon, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, sp) {
		t.Fatalf("cached simulation %+v differs from uncached %+v", sc, sp)
	}
}

// The immutability guard: running every consumer of the shared artifacts
// (executor, long-run simulator, live recovery system) must leave the
// cache-shared Timeline/Profile/Plan/Placement bit-identical to a fresh
// private build. A regression that mutates shared state in place fails
// here instead of corrupting concurrent campaigns.
func TestRunDoesNotMutateSharedArtifacts(t *testing.T) {
	job := MustNewJob(cacheSpec())
	pristine, err := derive.Build(cacheSpec().CacheKey())
	if err != nil {
		t.Fatal(err)
	}

	if _, err := job.ExecuteScheme(schedule.SchemeGemini); err != nil {
		t.Fatal(err)
	}
	if _, err := job.ExecuteSchemeWithBuffers(schedule.SchemeGemini, 8*128e6, 2); err != nil {
		t.Fatal(err)
	}
	horizon := 3 * simclock.Day
	fs, err := failure.FixedRate(16, 8, 0.5, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.SimulateRun(job.GeminiSpec(), fs, horizon, 0); err != nil {
		t.Fatal(err)
	}
	engine, sys, err := job.RecoverySystem(cloud.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	iter := job.Timeline.Iteration
	engine.At(simclock.Time(2*iter+1), func() { sys.InjectFailure(3, cluster.HardwareFailed) })
	engine.Run(simclock.Time(20 * iter))

	if !reflect.DeepEqual(job.Timeline, pristine.Timeline) {
		t.Error("a run mutated the cache-shared Timeline")
	}
	if !reflect.DeepEqual(job.Profile, pristine.Profile) {
		t.Error("a run mutated the cache-shared Profile")
	}
	if !reflect.DeepEqual(job.Plan, pristine.Plan) {
		t.Error("a run mutated the cache-shared Plan")
	}
	if !reflect.DeepEqual(job.Placement, pristine.Placement) {
		t.Error("a run mutated the cache-shared Placement")
	}
}
