// Allocation gates run without the race detector: -race instruments
// allocations and would skew AllocsPerRun.
//go:build !race

package training

import (
	"testing"

	"gemini/internal/cluster"
	"gemini/internal/model"
)

// TestProfileWithJitterAllocationFlat pins the profiling loop's
// allocation behavior: the comm-op list is derived once per profile (not
// once per window iteration), the recorder's trace store is pre-sized,
// and each extra window iteration costs only the per-trace op copy plus
// the per-trace idle-span derivation in Build — a small constant,
// independent of how many comm ops the timeline has being re-sliced.
// Before the hoist, each iteration re-built CommOps() (~29 allocs and
// ~96 KB per iteration at GPT-2 100B depth); the marginal bound below
// fails if that regresses.
func TestProfileWithJitterAllocationFlat(t *testing.T) {
	cfg := MustNewConfig(model.MustByName("GPT-2 100B"), cluster.MustInstance("p4d.24xlarge"), 16)
	tl := MustBuildTimeline(cfg)
	allocsAt := func(window int) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := tl.ProfileWithJitter(window, 0.05, 7); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := allocsAt(32), allocsAt(160)
	marginal := (large - small) / 128
	if marginal > 12 {
		t.Fatalf("profiling loop allocates %.1f times per marginal window iteration, want ≤ 12 "+
			"(CommOps rebuilt inside the loop?)", marginal)
	}
}

// TestBuildTimelineSteadyStateAllocs pins the cached-label guarantee:
// once a layer depth's labels are interned, building another timeline
// allocates only the handful of result slices (ops, steps, rs queue,
// compute starts) — no per-step label formatting.
func TestBuildTimelineSteadyStateAllocs(t *testing.T) {
	cfg := MustNewConfig(model.MustByName("GPT-2 100B"), cluster.MustInstance("p4d.24xlarge"), 16)
	MustBuildTimeline(cfg) // intern this depth's labels
	allocs := testing.AllocsPerRun(20, func() {
		MustBuildTimeline(cfg)
	})
	if allocs > 8 {
		t.Fatalf("steady-state BuildTimeline allocates %v times/op, want ≤ 8", allocs)
	}
}
