package training

import (
	"fmt"

	"gemini/internal/netsim"
	"gemini/internal/profile"
	"gemini/internal/simclock"
)

// ProfileFromExecution performs §5.4's online profiling the way the real
// system does it: run `window` checkpoint-free iterations on the fluid
// network simulator, timestamp every communication operation observed on
// a machine's NIC, and build the averaged idle-span profile. It validates
// (and in tests is validated against) the analytic Timeline.Profile path.
func ProfileFromExecution(cfg Config, window int) (*profile.Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if window < 1 {
		return nil, fmt.Errorf("training: profile window must be positive, got %d", window)
	}

	rec, err := profile.NewRecorder(window)
	if err != nil {
		return nil, err
	}

	engine := simclock.NewEngine()
	fabric := netsim.MustNewFabric(engine, cfg.Machines, netsim.Config{
		EgressBytesPerSec: cfg.Instance.NetworkBytesPerSec,
		Alpha:             cfg.Calib.CollectiveAlpha,
	})
	copiers := make([]*netsim.Copier, cfg.Machines)
	for i := range copiers {
		copiers[i] = netsim.MustNewCopier(engine, cfg.Instance.GPUToCPUBytesPerSec)
	}
	obs := &flowObserver{engine: engine, rec: rec}
	sc := execScratchPool.Get().(*execScratch)
	defer execScratchPool.Put(sc)
	ex := &executor{
		cfg:      cfg,
		opts:     ExecOptions{Placement: nil},
		shard:    cfg.ShardBytesPerMachine(),
		enabled:  false,
		engine:   engine,
		fabric:   fabric,
		copiers:  copiers,
		observer: obs,
		scratch:  sc,
	}
	for iter := 0; iter < window; iter++ {
		start := engine.Now()
		rec.BeginIteration(start)
		obs.armed = true
		ex.iterStart = start
		ex.startIteration()
		engine.RunAll()
		obs.armed = false
		rec.EndIteration(engine.Now())
	}
	return rec.Build()
}

// flowObserver records node-0 communication intervals into the profiler.
type flowObserver struct {
	engine *simclock.Engine
	rec    *profile.Recorder
	armed  bool
}

// observe returns a completion hook recording the [start, completion]
// interval of machine 0's flow for one labeled collective. (The plain
// executor measures idle time through the fabric's busy counters, which
// cannot attribute intervals to labeled ops; profiling needs the op
// boundaries.)
func (o *flowObserver) observe(label string, start simclock.Time) func(*netsim.Flow) {
	return func(fl *netsim.Flow) {
		if !o.armed {
			return
		}
		o.rec.RecordOp(start, o.engine.Now(), label)
	}
}
