package training

import (
	"reflect"
	"testing"

	"gemini/internal/placement"
	"gemini/internal/schedule"
)

// The whole evaluation rests on the simulator being deterministic: the
// same configuration must produce bit-identical results run to run —
// no map-iteration order, wall clock, or scheduling nondeterminism may
// leak into outcomes.
func TestExecutorFullyDeterministic(t *testing.T) {
	cfg := cfg40Bp3dn(t)
	run := func() *ExecResult {
		opts := DefaultExecOptions(placement.MustMixed(cfg.Machines, 2), schedule.SchemeGemini)
		opts.Iterations = 2
		res, err := Execute(cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestTimelineFullyDeterministic(t *testing.T) {
	cfg := cfg100B(t)
	a := MustBuildTimeline(cfg)
	b := MustBuildTimeline(cfg)
	if a.Iteration != b.Iteration || len(a.Ops) != len(b.Ops) {
		t.Fatal("timelines diverged")
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d diverged: %+v vs %+v", i, a.Ops[i], b.Ops[i])
		}
	}
}

func TestOnlineProfileDeterministic(t *testing.T) {
	cfg := cfg40Bp3dn(t)
	a, err := ProfileFromExecution(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProfileFromExecution(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.IterationTime != b.IterationTime || len(a.Spans) != len(b.Spans) {
		t.Fatal("online profiles diverged")
	}
	for i := range a.Spans {
		if a.Spans[i] != b.Spans[i] {
			t.Fatalf("span %d diverged: %+v vs %+v", i, a.Spans[i], b.Spans[i])
		}
	}
}
